// Command hlpowerd serves the HLPower reproduction flow over HTTP:
// binding-as-a-service on a shared artifact cache with an optional
// crash-safe durable store.
//
// Usage:
//
//	hlpowerd -addr :7090 -store /var/lib/hlpower
//
// Endpoints:
//
//	POST /v1/bind       {"bench":"pr","binder":"hlpower","alpha":0.5}
//	POST /v1/sweep      {"alphas":[0,0.5,1],"keepgoing":true}
//	POST /v1/archsweep  {"targets":["k4","k6","asic"]}
//	POST /v1/ingest     {"name":"g","inputs":[...],"ops":[...],"outputs":[...],"rc":{"add":2,"mult":2}}
//	GET  /healthz       liveness ("ok", or 503 "draining")
//	GET  /statsz        admission/cache/store/ingest counters as JSON
//
// /v1/ingest accepts small CDFGs inline and batches concurrent
// submissions: arrivals within -batchwindow of each other (up to
// -batchmax) share one admission slot, so a stream of small graphs
// cannot exhaust admission. Identical submissions collapse in the
// content-addressed run cache.
//
// Every flow endpoint accepts "arch", "width", "vectors" configuration
// overrides and "timeout_ms"; /v1/bind additionally accepts
// "stream":true for NDJSON per-stage progress. Concurrency is bounded:
// -maxconcurrent requests execute at once, -queue more may wait, and
// anything beyond that is shed with 429 + Retry-After.
//
// With -store DIR the daemon persists simulation counts, power reports,
// SA-table entries, and whole run results to DIR (atomic writes,
// per-entry checksums, corrupt entries quarantined and recomputed, LRU
// eviction under -storemax). A restarted daemon warm-starts from the
// store; a second daemon on the same DIR is refused by its lock.
//
// Shutdown: the first SIGINT/SIGTERM stops accepting connections,
// drains in-flight requests for up to -drain, then flushes and closes
// the store. A second signal forces exit with status 2. Exit status:
// 0 clean shutdown, 1 serve/drain failure, 2 bad usage or forced exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/arch"
	"repro/internal/flow"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/sigctx"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7090", "listen address")
		storeDir = flag.String("store", "", "durable artifact store directory (empty = memory-only)")
		storeMax = flag.Int64("storemax", 0, "store size bound in bytes, LRU-evicted past it (0 = unbounded)")
		archName = flag.String("arch", "k4", "base target architecture: k4, k6, or asic (requests may override)")
		width    = flag.Int("width", 8, "base datapath bit width")
		vectors  = flag.Int("vectors", 1000, "base random simulation vectors")
		jobs     = flag.Int("j", 0, "intra-request sweep workers (0 = GOMAXPROCS)")
		mapJobs  = flag.Int("mapjobs", 0, "back-end workers for datapath elaboration, LUT covering, and the power scan; bit-identical output at any count (0 = GOMAXPROCS, 1 = serial)")
		maxConc  = flag.Int("maxconcurrent", 0, "flow requests executing at once (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "flow requests waiting for a slot before 429 (0 = 2x maxconcurrent)")
		reqTO    = flag.Duration("reqtimeout", 2*time.Minute, "default per-request deadline")
		maxTO    = flag.Duration("maxtimeout", 10*time.Minute, "cap on client-requested deadlines")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown wait for in-flight requests")
		batchWin = flag.Duration("batchwindow", 25*time.Millisecond, "ingest batch accumulation window")
		batchMax = flag.Int("batchmax", 16, "max ingest submissions per batch")
		inject   = flag.String("inject", "", "arm the fault injector (hlpower -inject syntax, plus class/pshortwrite/pchecksumflip/penospc disk faults)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "hlpowerd: ", log.LstdFlags)

	target, ok := arch.ByName(*archName)
	if !ok {
		usageErr(fmt.Errorf("unknown -arch %q (want k4, k6, or asic)", *archName))
	}
	cfg := flow.DefaultConfig()
	cfg.Width = *width
	cfg.Vectors = *vectors
	cfg.MapJobs = *mapJobs
	cfg = cfg.WithArch(target)

	var fi *pipeline.FaultInjector
	if *inject != "" {
		var err error
		if fi, err = pipeline.ParseInjectSpec(*inject); err != nil {
			usageErr(err)
		}
		logger.Printf("fault injection armed: %s", *inject)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax, Logf: logger.Printf})
		if err != nil {
			usageErr(fmt.Errorf("open store: %w", err))
		}
		logger.Printf("store %s: %d entries", st.Dir(), st.Len())
	}

	// First SIGINT/SIGTERM cancels ctx (Serve drains); a second forces
	// exit 2 inside sigctx.
	ctx, stop := sigctx.Notify(context.Background())
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if st != nil {
			st.Close()
		}
		usageErr(err)
	}
	logger.Printf("listening on %s", ln.Addr())

	srv := server.New(server.Options{
		Cfg:            cfg,
		Store:          st, // Serve flushes and closes it after the drain
		MaxConcurrent:  *maxConc,
		MaxQueue:       *queue,
		DefaultTimeout: *reqTO,
		MaxTimeout:     *maxTO,
		DrainTimeout:   *drain,
		Jobs:           *jobs,
		BatchWindow:    *batchWin,
		BatchMax:       *batchMax,
		Injector:       fi,
		Logf:           logger.Printf,
	})
	if err := srv.Serve(ctx, ln); err != nil {
		logger.Printf("serve: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained; store flushed; bye")
}

func usageErr(err error) {
	fmt.Fprintf(os.Stderr, "hlpowerd: %v\n", err)
	os.Exit(2)
}

// Command equiv formally checks combinational equivalence of two BLIF
// netlists with a BDD miter, printing a counterexample on mismatch.
//
// Usage:
//
//	equiv [-m1 MODEL] [-m2 MODEL] [-maxnodes N] A.blif B.blif
//
// Exit status: 0 equivalent, 1 different, 2 usage/abort.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/verify"
)

func main() {
	var (
		m1       = flag.String("m1", "", "model in the first file (default: first)")
		m2       = flag.String("m2", "", "model in the second file (default: first)")
		maxNodes = flag.Int("maxnodes", 0, "BDD node budget (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a := load(flag.Arg(0), *m1)
	b := load(flag.Arg(1), *m2)

	res, err := verify.Equivalent(a, b, verify.Options{MaxNodes: *maxNodes})
	if err != nil {
		fmt.Fprintln(os.Stderr, "equiv:", err)
		os.Exit(2)
	}
	if res.Equivalent {
		fmt.Printf("EQUIVALENT: %s == %s\n", a.Name, b.Name)
		return
	}
	fmt.Printf("DIFFERENT at output %s\ncounterexample:\n", res.FailedOutput)
	names := make([]string, 0, len(res.Counterexample))
	for n := range res.Counterexample {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := 0
		if res.Counterexample[n] {
			v = 1
		}
		fmt.Printf("  %s = %d\n", n, v)
	}
	os.Exit(1)
}

func load(path, model string) *logic.Network {
	lib, err := blif.ParseFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "equiv:", err)
		os.Exit(2)
	}
	name := model
	if name == "" {
		if len(lib.Order) == 0 {
			fmt.Fprintf(os.Stderr, "equiv: no models in %s\n", path)
			os.Exit(2)
		}
		name = lib.Order[0]
	}
	net, err := blif.Flatten(lib, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "equiv:", err)
		os.Exit(2)
	}
	return net
}

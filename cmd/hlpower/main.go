// Command hlpower runs the HLPower reproduction flow and regenerates the
// paper's tables and figures.
//
// Usage:
//
//	hlpower -table 1|2|3|4        regenerate a paper table
//	hlpower -figure 3             regenerate Figure 3
//	hlpower -all                  run every experiment
//	hlpower -validate             check the headline result shapes
//	hlpower -ablation             run the binder/estimator ablation study
//	hlpower -bench NAME           run one benchmark through both binders
//	hlpower -alphasweep LIST      sweep HLPower's alpha over LIST (e.g. 0,0.25,0.5,0.75,1)
//	hlpower -satable FILE         precompute and save the SA table
//
// Common flags: -width, -vectors, -alpha, -benchset (comma-separated
// benchmark subset), -loadsatable FILE, -j N (parallel workers; every
// run is independently seeded, so the output is identical for any -j),
// -trace FILE (write pipeline stage spans as JSON to FILE, or "-" for
// stdout, and print a per-stage cache summary to stderr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/flow"
	"repro/internal/satable"
	"repro/internal/workload"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate paper table 1-4")
		figure    = flag.Int("figure", 0, "regenerate paper figure (3)")
		all       = flag.Bool("all", false, "run every table and figure")
		validate  = flag.Bool("validate", false, "validate headline result shapes against the paper")
		ablation  = flag.Bool("ablation", false, "run the ablation study (binder/estimator variants, module selection)")
		bench     = flag.String("bench", "", "run a single benchmark through LOPASS and HLPower")
		width     = flag.Int("width", 8, "datapath bit width")
		vectors   = flag.Int("vectors", 1000, "random simulation vectors")
		benchset  = flag.String("benchset", "", "comma-separated benchmark subset (default: all)")
		saveTable = flag.String("satable", "", "precompute the SA table up to -maxmux and save to FILE")
		loadTable = flag.String("loadsatable", "", "load a precomputed SA table from FILE")
		maxMux    = flag.Int("maxmux", 8, "mux size bound for -satable precompute")
		jobs      = flag.Int("j", 0, "parallel workers for sweeps and precompute (0 = GOMAXPROCS)")
		alphaList = flag.String("alphasweep", "", "comma-separated alpha values to sweep HLPower over")
		traceOut  = flag.String("trace", "", "write pipeline stage spans as JSON to FILE (\"-\" = stdout) plus a per-stage summary to stderr")
	)
	flag.Parse()

	cfg := flow.DefaultConfig()
	cfg.Width = *width
	cfg.Vectors = *vectors
	// Normalize replaces the default width-8 SA tables when -width
	// changed them out from under us.
	cfg = cfg.Normalize()
	if *loadTable != "" {
		f, err := os.Open(*loadTable)
		if err != nil {
			fatal(err)
		}
		t, err := satable.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if t.Width != *width {
			fatal(fmt.Errorf("SA table width %d does not match -width %d", t.Width, *width))
		}
		cfg.Table = t
	}

	if *saveTable != "" {
		fmt.Fprintf(os.Stderr, "precomputing SA table (width %d, mux sizes 1..%d)...\n", *width, *maxMux)
		cfg.Table.PrecomputeParallel(*maxMux, *jobs)
		f, err := os.Create(*saveTable)
		if err != nil {
			fatal(err)
		}
		if err := cfg.Table.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d entries to %s\n", cfg.Table.Len(), *saveTable)
		return
	}

	se := flow.NewSession(cfg)
	se.Jobs = *jobs
	if *benchset != "" {
		var profs []workload.Profile
		for _, name := range strings.Split(*benchset, ",") {
			p, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown benchmark %q", name))
			}
			profs = append(profs, p)
		}
		se.Benchmarks = profs
	}

	switch {
	case *bench != "":
		p, ok := workload.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		for _, b := range []flow.Binder{flow.BinderLOPASS, flow.BinderHLPower05} {
			r, err := se.Run(p, b)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s power=%8.2f mW  clk=%5.2f ns  LUTs=%5d  largestMUX=%2d  muxLen=%4d  toggle=%8.2f M/s  glitch=%4.1f%%\n",
				b.Name, r.Power.DynamicPowerMW, r.Power.ClockPeriodNs, r.LUTs,
				r.FUMux.Largest, r.FUMux.Length, r.Power.AvgToggleRateMHz, r.Power.GlitchShare*100)
		}
	case *ablation:
		fmt.Println("=== Ablation study ===")
		if err := flow.Ablation(os.Stdout, se); err != nil {
			fatal(err)
		}
	case *alphaList != "":
		alphas, err := parseAlphas(*alphaList)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Alpha sweep ===")
		if err := flow.AlphaSweep(os.Stdout, se, alphas); err != nil {
			fatal(err)
		}
	case *validate:
		devs, err := flow.ValidateAgainstPaper(se)
		if err != nil {
			fatal(err)
		}
		if len(devs) == 0 {
			fmt.Println("all headline result shapes hold")
		} else {
			for _, d := range devs {
				fmt.Println("DEVIATION:", d)
			}
			os.Exit(1)
		}
	case *all:
		// Warm the whole (benchmark x binder) matrix in one parallel
		// sweep; the table/figure generators then read the cache.
		if err := se.RunAll(); err != nil {
			fatal(err)
		}
		runTable(se, 1)
		runTable(se, 2)
		runTable(se, 3)
		runTable(se, 4)
		fmt.Println("\n=== Figure 3 ===")
		if err := flow.Figure3(os.Stdout, se); err != nil {
			fatal(err)
		}
	case *figure == 3:
		if err := flow.Figure3(os.Stdout, se); err != nil {
			fatal(err)
		}
	case *table >= 1 && *table <= 4:
		runTable(se, *table)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		if err := emitTrace(se, *traceOut); err != nil {
			fatal(err)
		}
	}
}

// parseAlphas parses the -alphasweep value list.
func parseAlphas(s string) ([]float64, error) {
	var alphas []float64
	for _, f := range strings.Split(s, ",") {
		a, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -alphasweep value %q: %w", f, err)
		}
		alphas = append(alphas, a)
	}
	return alphas, nil
}

// emitTrace writes the session's stage spans as a JSON array to dest
// ("-" = stdout) and prints a per-stage cache summary to stderr.
func emitTrace(se *flow.Session, dest string) error {
	spans := se.TraceSpans()
	out := os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spans); err != nil {
		return err
	}

	// Per-stage rollup: demands, hit rate, and where the compute time
	// actually went.
	type agg struct {
		demands, hits int
		compute, wait time.Duration
	}
	byStage := make(map[string]*agg)
	for _, sp := range spans {
		a := byStage[sp.Stage]
		if a == nil {
			a = &agg{}
			byStage[sp.Stage] = a
		}
		a.demands++
		if sp.CacheHit {
			a.hits++
			a.wait += sp.Duration()
		} else {
			a.compute += sp.Duration()
		}
	}
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tdemands\thits\tmisses\tcompute\thit-wait")
	for _, name := range flow.StageNames {
		a := byStage[name]
		if a == nil {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%v\t%v\n",
			name, a.demands, a.hits, a.demands-a.hits,
			a.compute.Round(time.Microsecond), a.wait.Round(time.Microsecond))
	}
	return tw.Flush()
}

func runTable(se *flow.Session, n int) {
	fmt.Printf("\n=== Table %d ===\n", n)
	var err error
	switch n {
	case 1:
		err = flow.Table1(os.Stdout)
	case 2:
		err = flow.Table2(os.Stdout, se)
	case 3:
		err = flow.Table3(os.Stdout, se)
	case 4:
		err = flow.Table4(os.Stdout, se)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hlpower:", err)
	os.Exit(1)
}

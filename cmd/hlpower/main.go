// Command hlpower runs the HLPower reproduction flow and regenerates the
// paper's tables and figures.
//
// Usage:
//
//	hlpower -table 1|2|3|4        regenerate a paper table
//	hlpower -figure 3             regenerate Figure 3
//	hlpower -all                  run every experiment
//	hlpower -validate             check the headline result shapes
//	hlpower -ablation             run the binder/estimator ablation study
//	hlpower -bench NAME           run one benchmark through both binders
//	hlpower -alphasweep LIST      sweep HLPower's alpha over LIST (e.g. 0,0.25,0.5,0.75,1)
//	hlpower -archsweep            compare target architectures (K=4 vs K=6 vs ASIC projection)
//	hlpower -satable FILE         precompute and save the SA table
//
// Common flags: -arch k4|k6|asic (target architecture: Cyclone-II-like
// 4-LUTs, Stratix-like 6-LUTs, or the K=4 fabric with Kuon & Rose's
// FPGA→ASIC gap factors applied to the final report; SA tables loaded
// with -loadsatable must have been characterized under the same arch),
// -width, -vectors, -alpha, -benchset (comma-separated
// benchmark subset), -loadsatable FILE, -j N (parallel workers for the
// sweep, the binding engine's edge scoring, and the word-parallel
// simulator's lane groups; every run is independently seeded and both
// bindings and transition counts are bit-identical at every worker
// count, so the output is identical for any -j), -simjobs N (override
// the simulator's worker count independently of -j; -1, the default,
// follows -j), -simwide N (64-cycle lane groups per simulation event
// pass; a throughput knob with bit-identical output), -trace FILE (write
// pipeline stage spans as JSON to FILE, or "-" for stdout, and print a
// per-stage cache summary to stderr), -bindstats FILE (write the
// binding engine's per-run reports — edges scored vs reused,
// invalidation ratio, store mode and peak memory, per-iteration
// timings — as JSON to FILE, "-" for stdout), -bindk N (candidate-store
// row budget for HLPower's sparse mode; 0 keeps the engine default),
// -exact (force the exact dense edge store at any problem size; both
// knobs are semantic and participate in run cache keys and the config
// fingerprint).
//
// Failure handling: -timeout D bounds the whole invocation (the sweep
// cancels cooperatively, like Ctrl-C/SIGTERM), -keepgoing finishes the
// remaining (benchmark × binder) pairs after a failure instead of
// aborting, and -failures FILE writes the machine-readable failure
// report ("-" = stdout). -inject SPEC arms the deterministic fault
// injector (e.g. -inject 'seed=1,stage=map,perror=1') to rehearse
// failure handling. Exit status: 0 success, 1 run failure or paper-
// shape deviation, 2 bad usage or malformed input files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/arch"
	"repro/internal/flow"
	"repro/internal/pipeline"
	"repro/internal/satable"
	"repro/internal/sigctx"
	"repro/internal/workload"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate paper table 1-4")
		figure    = flag.Int("figure", 0, "regenerate paper figure (3)")
		all       = flag.Bool("all", false, "run every table and figure")
		validate  = flag.Bool("validate", false, "validate headline result shapes against the paper")
		ablation  = flag.Bool("ablation", false, "run the ablation study (binder/estimator variants, module selection)")
		bench     = flag.String("bench", "", "run a single benchmark through LOPASS and HLPower")
		archName  = flag.String("arch", "k4", "target architecture: k4 (Cyclone-II-like 4-LUT), k6 (Stratix-like 6-LUT), asic (K=4 with FPGA->ASIC projection)")
		archSweep = flag.Bool("archsweep", false, "run the cross-architecture comparison (K=4 vs K=6 vs ASIC projection) over the benchmark set")
		width     = flag.Int("width", 8, "datapath bit width")
		vectors   = flag.Int("vectors", 1000, "random simulation vectors")
		benchset  = flag.String("benchset", "", "comma-separated benchmark subset (default: all)")
		saveTable = flag.String("satable", "", "precompute the SA table up to -maxmux and save to FILE")
		loadTable = flag.String("loadsatable", "", "load a precomputed SA table from FILE")
		maxMux    = flag.Int("maxmux", 8, "mux size bound for -satable precompute")
		jobs      = flag.Int("j", 0, "parallel workers for sweeps and precompute (0 = GOMAXPROCS)")
		simJobs   = flag.Int("simjobs", -1, "simulation lane-group workers (0 = GOMAXPROCS, -1 = follow -j)")
		mapJobs   = flag.Int("mapjobs", -1, "back-end workers for datapath elaboration, LUT covering, and the power scan; bit-identical output at any count (0 = GOMAXPROCS, -1 = follow -j)")
		simWide   = flag.Int("simwide", 0, "64-cycle lane groups per simulation event pass (0 = engine default; results identical at every width)")
		alphaList = flag.String("alphasweep", "", "comma-separated alpha values to sweep HLPower over")
		traceOut  = flag.String("trace", "", "write pipeline stage spans as JSON to FILE (\"-\" = stdout) plus a per-stage summary to stderr")
		bindStats = flag.String("bindstats", "", "write the binding engine's per-run statistics as JSON to FILE (\"-\" = stdout)")
		bindK     = flag.Int("bindk", 0, "candidate-store row budget for HLPower's sparse mode (0 = engine default)")
		bindExact = flag.Bool("exact", false, "force HLPower's exact dense edge store (disables the sparse candidate store at any size)")
		timeout   = flag.Duration("timeout", 0, "cancel the whole invocation after this long (0 = no limit)")
		keepGoing = flag.Bool("keepgoing", false, "after a pair fails, keep sweeping the remaining (benchmark, binder) pairs and report partial results")
		failOut   = flag.String("failures", "", "write the machine-readable failure report as JSON to FILE (\"-\" = stdout)")
		inject    = flag.String("inject", "", "arm the fault injector: comma-separated key=value list (seed, stage, bench, binder, perror, ppanic, pdelay, delay), e.g. 'seed=1,stage=map,perror=1'")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM / -timeout all cancel the same context; every
	// pipeline stage and the sim inner loop observe it cooperatively. A
	// second signal during the wind-down forces exit 2 (sigctx) instead
	// of leaving a stuck sweep unkillable.
	ctx, stop := sigctx.Notify(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *inject != "" {
		fi, err := parseInject(*inject)
		if err != nil {
			usageErr(err)
		}
		ctx = pipeline.WithInjector(ctx, fi)
	}

	target, ok := arch.ByName(*archName)
	if !ok {
		usageErr(fmt.Errorf("unknown -arch %q (want k4, k6, or asic)", *archName))
	}
	cfg := flow.DefaultConfig()
	cfg.Width = *width
	cfg.Vectors = *vectors
	// WithArch retargets the mapper K, power model, and SA tables to
	// -arch, and (via Normalize) replaces the default width-8 SA tables
	// when -width changed them out from under us.
	cfg = cfg.WithArch(target)
	if *loadTable != "" {
		f, err := os.Open(*loadTable)
		if err != nil {
			usageErr(err)
		}
		t, err := satable.Load(f)
		f.Close()
		if err != nil {
			// Malformed input file: reject cleanly, never panic.
			usageErr(fmt.Errorf("%s: %w", *loadTable, err))
		}
		if t.Width != *width {
			usageErr(fmt.Errorf("SA table width %d does not match -width %d", t.Width, *width))
		}
		if err := t.CheckArch(cfg.Arch); err != nil {
			// A table characterized under another fabric must never
			// silently weight this one's bindings.
			usageErr(fmt.Errorf("%s: %w", *loadTable, err))
		}
		cfg.Table = t
	}

	if *saveTable != "" {
		fmt.Fprintf(os.Stderr, "precomputing SA table (arch %s, width %d, mux sizes 1..%d)...\n", cfg.Arch.Name, *width, *maxMux)
		if err := cfg.Table.PrecomputeCtx(ctx, *maxMux, *jobs); err != nil {
			fatal(err)
		}
		f, err := os.Create(*saveTable)
		if err != nil {
			fatal(err)
		}
		if err := cfg.Table.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d entries to %s\n", cfg.Table.Len(), *saveTable)
		return
	}

	if *bindK < 0 {
		usageErr(fmt.Errorf("-bindk must be >= 0, got %d", *bindK))
	}
	if *bindK > 0 && *bindExact {
		usageErr(fmt.Errorf("-bindk and -exact are mutually exclusive"))
	}
	cfg.BindK = *bindK
	cfg.BindExact = *bindExact
	cfg.BindJobs = *jobs
	cfg.SimJobs = *jobs
	if *simJobs >= 0 {
		cfg.SimJobs = *simJobs
	}
	cfg.SimWide = *simWide
	cfg.MapJobs = *jobs
	if *mapJobs >= 0 {
		cfg.MapJobs = *mapJobs
	}
	se := flow.NewSession(cfg)
	se.Jobs = *jobs
	if *benchset != "" {
		var profs []workload.Profile
		for _, name := range strings.Split(*benchset, ",") {
			p, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				usageErr(fmt.Errorf("unknown benchmark %q", name))
			}
			profs = append(profs, p)
		}
		se.Benchmarks = profs
	}

	switch {
	case *bench != "":
		p, ok := workload.ByName(*bench)
		if !ok {
			usageErr(fmt.Errorf("unknown benchmark %q", *bench))
		}
		for _, b := range []flow.Binder{flow.BinderLOPASS, flow.BinderHLPower05} {
			r, err := se.Run(ctx, p, b)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s power=%8.2f mW  clk=%5.2f ns  LUTs=%5d  largestMUX=%2d  muxLen=%4d  toggle=%8.2f M/s  glitch=%4.1f%%\n",
				b.Name, r.Power.DynamicPowerMW, r.Power.ClockPeriodNs, r.LUTs,
				r.FUMux.Largest, r.FUMux.Length, r.Power.AvgToggleRateMHz, r.Power.GlitchShare*100)
		}
	case *ablation:
		fmt.Println("=== Ablation study ===")
		if err := flow.Ablation(ctx, os.Stdout, se); err != nil {
			fatal(err)
		}
	case *alphaList != "":
		alphas, err := parseAlphas(*alphaList)
		if err != nil {
			usageErr(err)
		}
		fmt.Println("=== Alpha sweep ===")
		if err := flow.AlphaSweep(ctx, os.Stdout, se, alphas); err != nil {
			fatal(err)
		}
	case *archSweep:
		fmt.Println("=== Architecture sweep ===")
		if err := flow.ArchSweep(ctx, os.Stdout, se, arch.Presets()); err != nil {
			fatal(err)
		}
	case *validate:
		devs, err := flow.ValidateAgainstPaper(ctx, se)
		if err != nil {
			fatal(err)
		}
		if len(devs) == 0 {
			fmt.Println("all headline result shapes hold")
		} else {
			for _, d := range devs {
				fmt.Println("DEVIATION:", d)
			}
			os.Exit(1)
		}
	case *all:
		// Warm the whole (benchmark x binder) matrix in one parallel
		// sweep; the table/figure generators then read the cache. Under
		// -keepgoing a partial sweep still prints what completed, and the
		// failures land in the report.
		rep, err := se.Sweep(ctx, flow.SweepOptions{KeepGoing: *keepGoing})
		if werr := writeFailures(rep, *failOut); werr != nil {
			fatal(werr)
		}
		if err != nil && !*keepGoing {
			fatal(err)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlpower: %d/%d pairs failed (first: %v); continuing with partial results\n",
				len(rep.Failures()), len(rep.Pairs), err)
		}
		if rep.Completed() == len(rep.Pairs) {
			runTable(ctx, se, 1)
			runTable(ctx, se, 2)
			runTable(ctx, se, 3)
			runTable(ctx, se, 4)
			fmt.Println("\n=== Figure 3 ===")
			if ferr := flow.Figure3(ctx, os.Stdout, se); ferr != nil {
				fatal(ferr)
			}
		} else {
			printPartial(rep)
		}
		if err != nil {
			os.Exit(1)
		}
	case *figure == 3:
		if err := flow.Figure3(ctx, os.Stdout, se); err != nil {
			fatal(err)
		}
	case *table >= 1 && *table <= 4:
		runTable(ctx, se, *table)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		if err := emitTrace(se, *traceOut); err != nil {
			fatal(err)
		}
	}
	if *bindStats != "" {
		if err := emitBindStats(se.BindStats(), *bindStats); err != nil {
			fatal(err)
		}
	}
}

// parseAlphas parses the -alphasweep value list.
func parseAlphas(s string) ([]float64, error) {
	var alphas []float64
	for _, f := range strings.Split(s, ",") {
		a, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -alphasweep value %q: %w", f, err)
		}
		alphas = append(alphas, a)
	}
	return alphas, nil
}

// parseInject parses the -inject spec: a comma-separated key=value list
// building one seeded FaultRule (pipeline.ParseInjectSpec, shared with
// hlpowerd, which also accepts the durable-store disk-fault keys).
// Example:
//
//	-inject 'seed=42,stage=map,bench=chem,perror=1'
func parseInject(s string) (*pipeline.FaultInjector, error) {
	return pipeline.ParseInjectSpec(s)
}

// writeFailures writes the sweep's failure report to dest ("" = skip,
// "-" = stdout).
func writeFailures(rep *flow.SweepReport, dest string) error {
	if dest == "" {
		return nil
	}
	if dest == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printPartial summarizes the completed pairs of a partial sweep.
func printPartial(rep *flow.SweepReport) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tBinder\tStatus\tPower(mW)\tLUTs")
	for _, ps := range rep.Pairs {
		if ps.OK() {
			fmt.Fprintf(tw, "%s\t%s\tok\t%.2f\t%d\n",
				ps.Bench, ps.Binder, ps.Result.Power.DynamicPowerMW, ps.Result.LUTs)
		} else {
			status := "failed"
			if ps.Failure.Canceled {
				status = "canceled"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t\t\n", ps.Bench, ps.Binder, status)
		}
	}
	tw.Flush()
}

// emitBindStats writes the binding-engine reports as JSON to dest
// ("-" = stdout): {"bind_stats": [{bench, algo, report}, ...]}, sorted
// by (bench, algo). The shape is pinned by TestBindStatsGolden.
func emitBindStats(stats []flow.BindStat, dest string) error {
	out := os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return writeBindStats(out, stats)
}

// writeBindStats renders the -bindstats JSON document.
func writeBindStats(w io.Writer, stats []flow.BindStat) error {
	if stats == nil {
		stats = []flow.BindStat{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		BindStats []flow.BindStat `json:"bind_stats"`
	}{stats})
}

// emitTrace writes the session's stage spans as a JSON array to dest
// ("-" = stdout) and prints a per-stage cache summary to stderr.
func emitTrace(se *flow.Session, dest string) error {
	spans := se.TraceSpans()
	out := os.Stdout
	if dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spans); err != nil {
		return err
	}

	// Per-stage rollup: demands, hit rate, and cumulative wall-clock
	// (total includes cache-hit waits; compute is the time actually
	// burned executing the stage).
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tdemands\thits\tmisses\twallclock\tcompute")
	for _, w := range se.StageWallclock() {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%v\t%v\n",
			w.Stage, w.Count, w.CacheHits, w.Count-w.CacheHits,
			time.Duration(w.TotalNs).Round(time.Microsecond),
			time.Duration(w.ComputeNs).Round(time.Microsecond))
	}
	return tw.Flush()
}

func runTable(ctx context.Context, se *flow.Session, n int) {
	fmt.Printf("\n=== Table %d ===\n", n)
	var err error
	switch n {
	case 1:
		err = flow.Table1(os.Stdout)
	case 2:
		err = flow.Table2(ctx, os.Stdout, se)
	case 3:
		err = flow.Table3(ctx, os.Stdout, se)
	case 4:
		err = flow.Table4(ctx, os.Stdout, se)
	}
	if err != nil {
		fatal(err)
	}
}

// fatal reports a runtime failure (exit 1).
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hlpower:", err)
	os.Exit(1)
}

// usageErr reports bad usage or malformed input (exit 2), the contract
// the de-panicked parsers feed: untrusted input is rejected with a
// message, never a panic.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "hlpower:", err)
	os.Exit(2)
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
)

// TestBindStatsGolden pins the -bindstats JSON shape against a golden
// fixture. The report is fabricated (deterministic timings included),
// so this guards the serialization contract — field names, nesting,
// ordering — not engine behaviour. Regenerate the fixture with
// -update after an intentional shape change.
func TestBindStatsGolden(t *testing.T) {
	stats := []flow.BindStat{
		{
			Bench: "pr",
			Algo:  "hlpower alpha=0.5",
			Report: &core.Report{
				Iterations:     2,
				EdgesScored:    40,
				EdgesReused:    25,
				WeightShapes:   6,
				TableMisses:    3,
				Mode:           "sparse",
				EdgesResident:  18,
				StoreBytes:     1440,
				PeakEdges:      40,
				PeakStoreBytes: 2944,
				Runtime:        1500 * time.Microsecond,
				Iters: []core.IterationStat{
					{Iter: 1, UNodes: 4, VNodes: 10, EdgesScored: 40, EdgesReused: 0, Merges: 1, ScoreNs: 900000, SolveNs: 100000},
					{Iter: 2, UNodes: 4, VNodes: 9, EdgesScored: 0, EdgesReused: 25, Merges: 1, ScoreNs: 300000, SolveNs: 90000},
				},
			},
		},
		{
			Bench: "wang",
			Algo:  "hlpower alpha=1",
			Report: &core.Report{
				Iterations:  1,
				EdgesScored: 12,
				Mode:        "exact",
				Runtime:     200 * time.Microsecond,
				Iters: []core.IterationStat{
					{Iter: 1, UNodes: 2, VNodes: 6, EdgesScored: 12, Merges: 2, ScoreNs: 150000, SolveNs: 40000},
				},
			},
		},
	}

	var buf bytes.Buffer
	if err := writeBindStats(&buf, stats); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "bindstats.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("-bindstats JSON shape diverges from golden fixture\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestBindStatsEmpty: with no HLPower runs the document still carries
// an (empty) bind_stats array, never null.
func TestBindStatsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeBindStats(&buf, nil); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"bind_stats\": []\n}\n"
	if buf.String() != want {
		t.Fatalf("empty document = %q, want %q", buf.String(), want)
	}
}

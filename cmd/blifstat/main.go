// Command blifstat inspects BLIF netlists: it parses a file (following
// .search includes), flattens a model, and reports structural statistics
// plus optional switching-activity estimates.
//
// Usage:
//
//	blifstat [-model NAME] [-sa] [-flat] FILE.blif
//	blifstat -fig2 kind,kl,kr,width     # emit a Figure-2 partial datapath
//
// Exit codes: 0 on success, 1 on internal failure, 2 on bad usage or
// malformed input (unparseable or unflattenable BLIF).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/blif"
	"repro/internal/datapath"
	"repro/internal/glitch"
	"repro/internal/netgen"
	"repro/internal/prob"
)

func main() {
	var (
		model = flag.String("model", "", "model to flatten (default: first in file)")
		sa    = flag.Bool("sa", false, "estimate switching activity (glitch-aware and zero-delay)")
		flat  = flag.Bool("flat", false, "print the flattened netlist as BLIF")
		fig2  = flag.String("fig2", "", "emit a partial-datapath library: kind,kl,kr,width (e.g. mult,2,3,8)")
	)
	flag.Parse()

	if *fig2 != "" {
		emitFig2(*fig2)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	lib, err := blif.ParseFile(flag.Arg(0))
	if err != nil {
		usageErr(err)
	}
	name := *model
	if name == "" {
		if len(lib.Order) == 0 {
			usageErr(fmt.Errorf("no models in %s", flag.Arg(0)))
		}
		name = lib.Order[0]
	}
	net, err := blif.Flatten(lib, name)
	if err != nil {
		usageErr(err)
	}
	st := net.Stats()
	fmt.Printf("model %s: %s\n", name, st)
	if *sa {
		g := glitch.EstimateNetwork(net, prob.DefaultSources())
		zd := prob.EstimateNetwork(net, prob.MethodChouRoy, prob.DefaultSources())
		fmt.Printf("estimated SA (glitch-aware): %.3f (glitch portion %.3f)\n",
			g.TotalActivity(net), g.TotalGlitch(net))
		fmt.Printf("estimated SA (zero-delay):   %.3f\n", zd.TotalActivity(net))
	}
	if *flat {
		if err := blif.WriteModel(os.Stdout, blif.FromNetwork(net)); err != nil {
			fatal(err)
		}
	}
}

func emitFig2(spec string) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		usageErr(fmt.Errorf("-fig2 wants kind,kl,kr,width"))
	}
	kind := netgen.FUAdd
	if parts[0] == "mult" {
		kind = netgen.FUMult
	}
	kl, err1 := strconv.Atoi(parts[1])
	kr, err2 := strconv.Atoi(parts[2])
	w, err3 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		usageErr(fmt.Errorf("-fig2 sizes must be integers"))
	}
	lib, top := datapath.PartialDatapathLibrary(kind, kl, kr, w)
	fmt.Printf("# Figure 2 partial datapath: top model %s\n", top)
	if err := blif.WriteLibrary(os.Stdout, lib); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blifstat:", err)
	os.Exit(1)
}

// usageErr reports bad usage or malformed input and exits 2, keeping
// exit 1 for internal failures.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "blifstat:", err)
	os.Exit(2)
}

// Command mapnet technology-maps a BLIF netlist to K-input LUTs with the
// glitch-aware mapper and reports area, depth, estimated switching
// activity, and (optionally) simulated toggle counts.
//
// Usage:
//
//	mapnet [-k 4] [-mode power|depth|area] [-sim N] [-o out.blif] FILE.blif
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blif"
	"repro/internal/mapper"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/timing"
)

func main() {
	var (
		k     = flag.Int("k", 4, "LUT input count")
		mode  = flag.String("mode", "power", "mapping objective: power, depth, or area")
		simN  = flag.Int("sim", 0, "simulate N random vectors after mapping")
		vcd   = flag.String("vcd", "", "dump a VCD of the simulation to this file (requires -sim)")
		sta   = flag.Bool("timing", false, "run static timing analysis and print the critical path")
		out   = flag.String("o", "", "write the mapped netlist as BLIF to this file")
		model = flag.String("model", "", "model to map (default: first)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	lib, err := blif.ParseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	name := *model
	if name == "" {
		if len(lib.Order) == 0 {
			fatal(fmt.Errorf("no models in %s", flag.Arg(0)))
		}
		name = lib.Order[0]
	}
	net, err := blif.Flatten(lib, name)
	if err != nil {
		fatal(err)
	}

	opt := mapper.DefaultOptions()
	opt.K = *k
	switch *mode {
	case "power":
		opt.Mode = mapper.ModePower
	case "depth":
		opt.Mode = mapper.ModeDepth
	case "area":
		opt.Mode = mapper.ModeArea
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	res, err := mapper.Map(net, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model %s: %d gates -> %d LUT%d, depth %d\n",
		name, net.NumGates(), res.LUTs, *k, res.Depth)
	fmt.Printf("estimated SA %.3f (glitch %.3f)\n", res.EstSA, res.EstGlitch)

	if *sta {
		an := timing.Analyze(res.Mapped, timing.CycloneII())
		fmt.Print(an.Report(res.Mapped))
	}
	if *simN > 0 {
		s, err := sim.New(res.Mapped)
		if err != nil {
			fatal(err)
		}
		var vcdFile *os.File
		if *vcd != "" {
			vcdFile, err = os.Create(*vcd)
			if err != nil {
				fatal(err)
			}
			defer vcdFile.Close()
			if err := s.EnableVCD(vcdFile, nil); err != nil {
				fatal(err)
			}
		}
		counts := s.RunRandom(*simN, 1)
		if err := s.VCDErr(); err != nil {
			fatal(err)
		}
		rep := power.CycloneII().Analyze(res.Mapped, counts)
		fmt.Printf("simulated %d vectors: %.2f toggles/cycle, glitch share %.1f%%, est. dynamic power %.2f mW at %.1f ns\n",
			*simN, counts.TogglesPerCycle(), rep.GlitchShare*100, rep.DynamicPowerMW, rep.ClockPeriodNs)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := blif.WriteModel(f, blif.FromNetwork(res.Mapped)); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapnet:", err)
	os.Exit(1)
}

// Command cdfggen emits the benchmark CDFGs: statistics, Graphviz DOT,
// schedules, or the generated VHDL of a bound implementation.
//
// Usage:
//
//	cdfggen -list
//	cdfggen -bench chem [-dot] [-sched] [-vhdl] [-width 8]
//	cdfggen -kernel dct8|fir16|bfly8 [-dot] [-vhdl]
//	cdfggen -scale ctrl-10k [-dot] [-sched]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/vhdl"
	"repro/internal/workload"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list benchmark profiles")
		bench  = flag.String("bench", "", "benchmark name")
		kernel = flag.String("kernel", "", "real kernel: dct8, fir16, bfly8, iir2, or matmul3")
		scale  = flag.String("scale", "", "scale-tier workload: dsp-2k, mm-4k, fft-4k, ctrl-2k, or ctrl-10k")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT")
		sched  = flag.Bool("sched", false, "print the schedule")
		emitV  = flag.Bool("vhdl", false, "emit VHDL of an HLPower-bound implementation")
		width  = flag.Int("width", 8, "datapath width for -vhdl")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmark  PIs POs adds mults  rc(add/mult) cycle")
		for _, p := range workload.Benchmarks {
			fmt.Printf("%-9s  %3d %3d %4d %5d  %d/%d %11d\n",
				p.Name, p.PIs, p.POs, p.Adds, p.Mults, p.RC.Add, p.RC.Mult, p.Cycle)
		}
		fmt.Println("\nscale tier  ops   rc(add/mult)")
		for _, p := range workload.ScaleBenchmarks {
			st := p.Build().Stats()
			fmt.Printf("%-10s  %5d  %d/%d\n", p.Name, st.Adds+st.Mults, p.RC.Add, p.RC.Mult)
		}
		return
	}

	var g *cdfg.Graph
	var rc cdfg.ResourceConstraint
	var s *cdfg.Schedule
	var err error
	switch {
	case *bench != "":
		p, ok := workload.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		g = workload.Generate(p)
		rc = p.RC
		s, err = workload.Schedule(p, g)
	case *kernel != "":
		switch *kernel {
		case "dct8":
			g = workload.DCT8()
		case "fir16":
			g = workload.FIR(16)
		case "bfly8":
			g = workload.Butterfly(3)
		case "iir2":
			g = workload.IIR(2)
		case "matmul3":
			g = workload.MatMul(3)
		default:
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		rc = cdfg.ResourceConstraint{Add: 2, Mult: 2}
		s, err = cdfg.ListSchedule(g, rc)
	case *scale != "":
		p, ok := workload.ScaleByName(*scale)
		if !ok {
			fatal(fmt.Errorf("unknown scale workload %q", *scale))
		}
		g = p.Build()
		rc = p.RC
		s, err = cdfg.ListSchedule(g, rc)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	st := g.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d PIs, %d POs, %d adds, %d mults, %d edges; %d csteps under rc{add:%d mult:%d}\n",
		g.Name, st.PIs, st.POs, st.Adds, st.Mults, st.Edges, s.Len, rc.Add, rc.Mult)

	switch {
	case *dot:
		fmt.Print(g.DOT(s))
	case *sched:
		for t := 1; t <= s.Len; t++ {
			fmt.Printf("cstep %2d:", t)
			for _, id := range g.Ops() {
				if s.Step[id] == t {
					fmt.Printf(" %s(%d)", g.Nodes[id].Kind, id)
				}
			}
			fmt.Println()
		}
	case *emitV:
		rb, err := regbind.Bind(g, s)
		if err != nil {
			fatal(err)
		}
		table := satable.New(*width, satable.EstimatorGlitch)
		res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
		if err != nil {
			fatal(err)
		}
		if err := vhdl.Emit(os.Stdout, g, s, rb, res, *width); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdfggen:", err)
	os.Exit(1)
}

package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/glitch"
	"repro/internal/logic"
	"repro/internal/lopass"
	"repro/internal/mapper"
	"repro/internal/netgen"
	"repro/internal/prob"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (run `go test -bench=.` here, or `go run ./cmd/hlpower
// -all` for the full seven-benchmark sweep with 1000 vectors). To keep
// `-bench=.` affordable they default to a two-benchmark subset with a
// reduced vector count; set HLPOWER_BENCH_FULL=1 for the full suite.

func benchConfig() flow.Config {
	cfg := flow.DefaultConfig()
	cfg.Vectors = 200
	return cfg
}

// bgCtx is the background context benchmarks drive the harness with.
var bgCtx = context.Background()

func benchSession() *flow.Session {
	se := flow.NewSession(benchConfig())
	if os.Getenv("HLPOWER_BENCH_FULL") == "" {
		var subset []workload.Profile
		for _, name := range []string{"pr", "wang", "honda"} {
			p, _ := workload.ByName(name)
			subset = append(subset, p)
		}
		se.Benchmarks = subset
	}
	return se
}

var benchOnce sync.Once

// BenchmarkTable1 regenerates the benchmark-profile table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := flow.Table1(&sb); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTable2 regenerates resource constraints, schedule lengths,
// register counts, and HLPower runtimes.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		se := benchSession()
		var sb strings.Builder
		if err := flow.Table2(bgCtx, &sb, se); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTable3 regenerates the LOPASS-vs-HLPower power/area
// comparison (the paper's headline table).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		se := benchSession()
		var sb strings.Builder
		if err := flow.Table3(bgCtx, &sb, se); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTable4 regenerates the muxDiff mean/variance statistics.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		se := benchSession()
		var sb strings.Builder
		if err := flow.Table4(bgCtx, &sb, se); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkFigure3 regenerates the average-toggle-rate comparison.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		se := benchSession()
		var sb strings.Builder
		if err := flow.Figure3(bgCtx, &sb, se); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkParallelSweep measures the full (benchmark × binder) sweep —
// the paper's whole evaluation — at -j 1 (serial) vs -j GOMAXPROCS vs
// -j 8. Every iteration starts a cold session, so the wall-clock ratio
// between sub-benchmarks is the fan-out speedup of flow.Session.RunAll.
// On an N-core host the parallel sweeps approach min(N, #pairs)× the
// serial one (the pairs are fully independent); on a single core all
// three tie. The results are identical at any -j (see
// flow.TestParallelMatchesSerial).
func BenchmarkParallelSweep(b *testing.B) {
	jobSet := []int{1, runtime.GOMAXPROCS(0), 8}
	for _, jobs := range jobSet {
		jobs := jobs
		b.Run(fmt.Sprintf("j=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				se := benchSession()
				se.Jobs = jobs
				if err := se.RunAll(bgCtx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// frontEnd prepares the shared front end of one benchmark.
func frontEnd(b *testing.B, name string) (*cdfg.Graph, *cdfg.Schedule, *regbind.Binding, []bool) {
	b.Helper()
	p, _ := workload.ByName(name)
	g := workload.Generate(p)
	s, err := workload.Schedule(p, g)
	if err != nil {
		b.Fatal(err)
	}
	swap := binding.RandomPortAssignment(g, 26)
	rb, err := regbind.BindOpt(g, s, regbind.Options{Swap: swap})
	if err != nil {
		b.Fatal(err)
	}
	return g, s, rb, swap
}

// BenchmarkBindHLPower measures the binder itself (Table 2's runtime
// column) on the pr benchmark.
func BenchmarkBindHLPower(b *testing.B) {
	g, s, rb, swap := frontEnd(b, "pr")
	p, _ := workload.ByName("pr")
	table := satable.New(8, satable.EstimatorGlitch)
	opt := core.DefaultOptions(table)
	opt.Swap = swap
	opt.MergesPerIteration = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Bind(g, s, rb, p.RC, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBind measures the incremental binding engine across problem
// sizes (small/medium/large synthetic CDFGs) with MergesPerIteration=1
// — the many-round regime the persistent edge store exists for. The
// edges-scored/op and edges-reused/op metrics expose the engine's work
// avoidance: scored counts fresh Eq. 4 evaluations, reused counts
// store hits; their sum is what the pre-engine implementation
// evaluated every run. CI runs this once as a smoke test.
func BenchmarkBind(b *testing.B) {
	for _, tc := range []struct{ size, bench string }{
		{"small", "pr"}, {"medium", "honda"}, {"large", "chem"},
	} {
		tc := tc
		b.Run(tc.size, func(b *testing.B) {
			g, s, rb, swap := frontEnd(b, tc.bench)
			p, _ := workload.ByName(tc.bench)
			table := satable.New(8, satable.EstimatorGlitch)
			opt := core.DefaultOptions(table)
			opt.Swap = swap
			opt.MergesPerIteration = 1
			// Warm run: SA characterizations cache in the shared table, so
			// the timed iterations measure the engine, not the estimator.
			if _, _, err := core.Bind(g, s, rb, p.RC, opt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var scored, reused int
			for i := 0; i < b.N; i++ {
				_, rep, err := core.Bind(g, s, rb, p.RC, opt)
				if err != nil {
					b.Fatal(err)
				}
				scored, reused = rep.EdgesScored, rep.EdgesReused
			}
			b.ReportMetric(float64(scored), "edges-scored/op")
			b.ReportMetric(float64(reused), "edges-reused/op")
		})
	}
	// xlarge is the scale tier: the 10k-operation control-heavy CDFG
	// bound with default options, which auto-engage the sparse candidate
	// store. The memory-budget gate in CI reads B/op (allocated bytes
	// per bind) and store-bytes/op (the engine's own peak edge-store
	// estimate); both must stay bounded as the binder scales.
	b.Run("xlarge", func(b *testing.B) {
		sp, _ := workload.ScaleByName("ctrl-10k")
		g := sp.Build()
		s, err := cdfg.ListSchedule(g, sp.RC)
		if err != nil {
			b.Fatal(err)
		}
		swap := binding.RandomPortAssignment(g, 26)
		rb, err := regbind.BindOpt(g, s, regbind.Options{Swap: swap})
		if err != nil {
			b.Fatal(err)
		}
		table := satable.New(8, satable.EstimatorGlitch)
		opt := core.DefaultOptions(table)
		opt.Swap = swap
		var rep *core.Report
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			_, rep, err = core.Bind(g, s, rb, sp.RC, opt)
			if err != nil {
				b.Fatal(err)
			}
		}
		if rep.Mode != "sparse" {
			b.Fatalf("xlarge bind ran in mode %q, want auto-sparse", rep.Mode)
		}
		b.ReportMetric(float64(rep.PeakStoreBytes), "store-bytes/op")
		b.ReportMetric(float64(rep.PeakEdges), "store-edges/op")
	})
}

// BenchmarkSim measures the simulation stage across mapped netlist
// sizes: the scalar reference engine vs the word-parallel 64-lane
// engine the flow runs (small/medium = combinational array
// multipliers, large = a latched pipelined multiplier). cycles/sec is
// the throughput metric; transitions/op records the (engine-identical)
// workload so runs are comparable. CI runs this once as a smoke test.
func BenchmarkSim(b *testing.B) {
	const vectors = 256
	for _, tc := range []struct {
		size string
		net  *logic.Network
	}{
		{"small", netgen.MultiplierNetwork(6)},
		{"medium", netgen.MultiplierNetwork(8)},
		{"large", netgen.PipelinedMultiplierNetwork(12, 2)},
	} {
		tc := tc
		res, err := mapper.Map(tc.net, mapper.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		vec := sim.RandomVectors(len(res.Mapped.Inputs), vectors, 1)
		report := func(b *testing.B, c sim.Counts) {
			b.ReportMetric(float64(int64(b.N)*vectors)/b.Elapsed().Seconds(), "cycles/sec")
			b.ReportMetric(float64(c.Total()), "transitions/op")
		}
		b.Run(tc.size+"/scalar", func(b *testing.B) {
			s, err := sim.NewWithDelays(res.Mapped, sim.DelayHeterogeneous, 7)
			if err != nil {
				b.Fatal(err)
			}
			var c sim.Counts
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset()
				c = s.RunVectors(vec)
			}
			report(b, c)
		})
		b.Run(tc.size+"/word", func(b *testing.B) {
			w, err := sim.NewWordWithDelays(res.Mapped, sim.DelayHeterogeneous, 7)
			if err != nil {
				b.Fatal(err)
			}
			var c sim.Counts
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c = w.RunVectors(vec, 0)
			}
			report(b, c)
		})
	}
}

// BenchmarkMap measures the cut-based technology mapper across target
// architectures: the K=4 CycloneII fabric vs the K=6 Stratix-like one
// on the same netlists. Wider LUTs enumerate more cuts per node (more
// work) but emit fewer, shallower LUTs; luts/op and depth/op record the
// cover so a quality regression shows up alongside a speed one. CI runs
// this once as a smoke test.
func BenchmarkMap(b *testing.B) {
	for _, tc := range []struct {
		size string
		net  *logic.Network
	}{
		{"medium", netgen.MultiplierNetwork(8)},
		{"large", netgen.PipelinedMultiplierNetwork(12, 2)},
	} {
		for _, target := range []arch.Target{arch.CycloneII(), arch.StratixLike6LUT()} {
			tc, target := tc, target
			b.Run(fmt.Sprintf("%s/%s", tc.size, target.Name), func(b *testing.B) {
				opt := mapper.OptionsForArch(target)
				b.ReportAllocs()
				var res *mapper.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = mapper.Map(tc.net, opt)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.LUTs), "luts/op")
				b.ReportMetric(float64(res.Depth), "depth/op")
			})
		}
	}
}

// BenchmarkEstimate measures the analytical switching-activity
// estimator across mapped netlist sizes — the computation behind every
// SA-table miss (satable §5.2.2 dynamic path). The glitch arm is the
// paper's unit-delay Chou–Roy waveform propagation; the zerodelay arm
// is the glitch-blind prob.EstimateNetwork ablation on the same
// netlist. sa/op reports the (implementation-invariant) estimate so a
// numerical regression shows up alongside a speed one. CI runs this
// once as a smoke test.
func BenchmarkEstimate(b *testing.B) {
	src := prob.DefaultSources()
	for _, tc := range []struct {
		size string
		net  *logic.Network
	}{
		{"small", netgen.PartialDatapathNetwork(netgen.FUAdd, 4, 4, 8)},
		{"medium", netgen.MultiplierNetwork(8)},
		{"large", netgen.PartialDatapathNetwork(netgen.FUMult, 8, 8, 8)},
	} {
		tc := tc
		res, err := mapper.Map(tc.net, mapper.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.size+"/glitch", func(b *testing.B) {
			b.ReportAllocs()
			var sa float64
			for i := 0; i < b.N; i++ {
				e := glitch.EstimateNetwork(res.Mapped, src)
				sa = e.TotalActivity(res.Mapped)
			}
			b.ReportMetric(sa, "sa/op")
		})
		b.Run(tc.size+"/zerodelay", func(b *testing.B) {
			b.ReportAllocs()
			var sa float64
			for i := 0; i < b.N; i++ {
				e := prob.EstimateNetwork(res.Mapped, prob.MethodChouRoy, src)
				sa = e.TotalActivity(res.Mapped)
			}
			b.ReportMetric(sa, "sa/op")
		})
	}
}

// BenchmarkBindLOPASS measures the baseline binder on the pr benchmark.
func BenchmarkBindLOPASS(b *testing.B) {
	g, s, rb, swap := frontEnd(b, "pr")
	p, _ := workload.ByName("pr")
	zd := satable.New(8, satable.EstimatorZeroDelay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lopass.Bind(g, s, rb, p.RC, lopass.Options{Swap: swap, Table: zd}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlphaSweep is the Eq. 4 ablation: alpha in {0, 0.25, 0.5,
// 0.75, 1} on one benchmark, reporting the muxDiff trade-off.
func BenchmarkAlphaSweep(b *testing.B) {
	g, s, rb, swap := frontEnd(b, "wang")
	p, _ := workload.ByName("wang")
	table := satable.New(8, satable.EstimatorGlitch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
			opt := core.DefaultOptions(table)
			opt.Alpha = alpha
			opt.Swap = swap
			res, _, err := core.Bind(g, s, rb, p.RC, opt)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				st := binding.ComputeMuxStats(g, rb, res)
				b.Logf("alpha=%.2f muxDiff=%.2f/%.2f len=%d", alpha, st.DiffMean, st.DiffVar, st.Length)
			}
		}
	}
}

// BenchmarkBetaSweep is the beta-sensitivity ablation of Eq. 4.
func BenchmarkBetaSweep(b *testing.B) {
	g, s, rb, swap := frontEnd(b, "wang")
	p, _ := workload.ByName("wang")
	table := satable.New(8, satable.EstimatorGlitch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, beta := range [][2]float64{{30, 1000}, {300, 10000}, {3000, 100000}} {
			opt := core.DefaultOptions(table)
			opt.BetaAdd, opt.BetaMult = beta[0], beta[1]
			opt.Swap = swap
			res, _, err := core.Bind(g, s, rb, p.RC, opt)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				st := binding.ComputeMuxStats(g, rb, res)
				b.Logf("beta=%v/%v muxDiff=%.2f len=%d", beta[0], beta[1], st.DiffMean, st.Length)
			}
		}
	}
}

// BenchmarkSATableVsDynamic quantifies the precalculated-table speedup
// the paper reports in §5.2.2 (same binding results, shorter runtime).
func BenchmarkSATableVsDynamic(b *testing.B) {
	g, s, rb, swap := frontEnd(b, "pr")
	p, _ := workload.ByName("pr")
	b.Run("precalculated", func(b *testing.B) {
		table := satable.New(8, satable.EstimatorGlitch)
		table.Precompute(10) // warm: every lookup is a hash hit
		opt := core.DefaultOptions(table)
		opt.Swap = swap
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Bind(g, s, rb, p.RC, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Fresh table every iteration: every lookup maps a partial
			// datapath and runs the estimator (the dynamic path).
			table := satable.New(8, satable.EstimatorGlitch)
			opt := core.DefaultOptions(table)
			opt.Swap = swap
			if _, _, err := core.Bind(g, s, rb, p.RC, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGlitchAwareVsZeroDelay is the estimator ablation: bind with
// the glitch-aware SA table vs the zero-delay (glitch-blind) table.
func BenchmarkGlitchAwareVsZeroDelay(b *testing.B) {
	g, s, rb, swap := frontEnd(b, "wang")
	p, _ := workload.ByName("wang")
	for _, est := range []satable.Estimator{satable.EstimatorGlitch, satable.EstimatorZeroDelay, satable.EstimatorNajm} {
		est := est
		b.Run(est.String(), func(b *testing.B) {
			table := satable.New(8, est)
			opt := core.DefaultOptions(table)
			opt.Swap = swap
			for i := 0; i < b.N; i++ {
				res, _, err := core.Bind(g, s, rb, p.RC, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					st := binding.ComputeMuxStats(g, rb, res)
					b.Logf("%s: muxDiff=%.2f len=%d largest=%d", est, st.DiffMean, st.Length, st.Largest)
				}
			}
		})
	}
}

// TestFigure1Example verifies the paper's worked example end to end as a
// test (the quickstart example prints the same walk-through).
func TestFigure1Example(t *testing.T) {
	g := cdfg.NewGraph("fig1")
	in := make([]int, 6)
	for i := range in {
		in[i] = g.AddInput("")
	}
	op1 := g.AddOp(cdfg.KindAdd, "1", in[0], in[1])
	op2 := g.AddOp(cdfg.KindAdd, "2", in[1], in[2])
	op3 := g.AddOp(cdfg.KindMult, "3", in[3], in[4])
	op4 := g.AddOp(cdfg.KindAdd, "4", op1, op2)
	op5 := g.AddOp(cdfg.KindMult, "5", op3, in[5])
	op6 := g.AddOp(cdfg.KindAdd, "6", op4, op5)
	op7 := g.AddOp(cdfg.KindMult, "7", op5, op4)
	op8 := g.AddOp(cdfg.KindAdd, "8", op4, op3)
	g.MarkOutput(op6)
	g.MarkOutput(op7)
	g.MarkOutput(op8)
	s := &cdfg.Schedule{Step: make([]int, len(g.Nodes)), Len: 3}
	for op, step := range map[int]int{op1: 1, op2: 1, op3: 1, op4: 2, op5: 2, op6: 3, op7: 3, op8: 3} {
		s.Step[op] = step
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(8, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, cdfg.ResourceConstraint{Add: 2, Mult: 1}, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Counts()
	if len(res.FUs) != 3 {
		t.Fatalf("figure 1 wants 2 adders + 1 multiplier, got %v", counts)
	}
}

// TestHeadlineShapes asserts the paper's qualitative results hold on the
// benchmark subset (the full-suite record lives in EXPERIMENTS.md).
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline comparison")
	}
	benchOnce.Do(func() {})
	se := benchSession()
	devs, err := flow.ValidateAgainstPaper(bgCtx, se)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		t.Errorf("deviation: %s", d)
	}
}

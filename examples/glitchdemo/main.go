// Glitch demo: show the unit-delay glitch estimator at work and validate
// it against event-driven simulation — the paper's §4 machinery.
//
// The example walks three experiments:
//  1. ripple-carry adders of growing width (glitch grows with depth),
//  2. the array multiplier (a glitch hot spot),
//  3. balanced vs unbalanced input multiplexers on an adder — the
//     physical basis of HLPower's muxDiff term (Eq. 4).
//
// Run with: go run ./examples/glitchdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/glitch"
	"repro/internal/logic"
	"repro/internal/netgen"
	"repro/internal/prob"
	"repro/internal/sim"
)

func main() {
	fmt.Println("1. Ripple-carry adders: estimated vs simulated switching per cycle")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "width", "est.total", "est.glitch", "sim.total", "sim.glitch")
	for _, w := range []int{4, 8, 12, 16} {
		report(netgen.AdderNetwork(w), fmt.Sprintf("add%d", w))
	}

	fmt.Println("\n2. Array multipliers")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "width", "est.total", "est.glitch", "sim.total", "sim.glitch")
	for _, w := range []int{4, 6, 8} {
		report(netgen.MultiplierNetwork(w), fmt.Sprintf("mult%d", w))
	}

	fmt.Println("\n3. Mux balancing: same total inputs, different split (adder, width 8)")
	fmt.Printf("%8s %12s %12s\n", "split", "est.total", "sim.total")
	for _, split := range [][2]int{{4, 4}, {5, 3}, {6, 2}, {7, 1}} {
		net := netgen.PartialDatapathNetwork(netgen.FUAdd, split[0], split[1], 8)
		est := glitch.EstimateNetwork(net, prob.DefaultSources())
		s, err := sim.New(net)
		if err != nil {
			log.Fatal(err)
		}
		c := s.RunRandom(2000, 42)
		fmt.Printf("%5d/%-2d %12.2f %12.2f\n",
			split[0], split[1], est.TotalActivity(net), float64(c.Gate)/float64(c.Cycles))
	}
	fmt.Println("\nBalanced muxes switch least — the muxDiff term of Eq. 4 rewards")
	fmt.Println("exactly this, even when the SA estimate is imperfect (paper §5.2.2).")
}

func report(net *logic.Network, name string) {
	est := glitch.EstimateNetwork(net, prob.DefaultSources())
	s, err := sim.New(net)
	if err != nil {
		log.Fatal(err)
	}
	c := s.RunRandom(2000, 7)
	fmt.Printf("%8s %12.2f %12.2f %12.2f %12.2f\n", name,
		est.TotalActivity(net), est.TotalGlitch(net),
		float64(c.Gate)/float64(c.Cycles), float64(c.Glitches())/float64(c.Cycles))
}

// Mux-balance example: sweep HLPower's alpha (Eq. 4) on one benchmark
// and watch the trade-off the paper's Table 4 reports — alpha = 1 uses
// only the glitch-aware SA estimate, lower alphas mix in explicit
// multiplexer balancing, shrinking muxDiff mean and variance.
//
// Run with: go run ./examples/muxbalance
package main

import (
	"fmt"
	"log"

	"repro/internal/binding"
	"repro/internal/core"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/workload"
)

func main() {
	p, _ := workload.ByName("steam")
	g := workload.Generate(p)
	s, err := workload.Schedule(p, g)
	if err != nil {
		log.Fatal(err)
	}
	swap := binding.RandomPortAssignment(g, 26)
	rb, err := regbind.BindOpt(g, s, regbind.Options{Swap: swap})
	if err != nil {
		log.Fatal(err)
	}
	table := satable.New(8, satable.EstimatorGlitch)

	fmt.Printf("benchmark %s: %d ops, rc{add:%d mult:%d}, %d csteps, %d registers\n\n",
		p.Name, len(g.Ops()), p.RC.Add, p.RC.Mult, s.Len, rb.NumRegs)
	fmt.Printf("%6s %10s %10s %10s %10s\n", "alpha", "muxDiff", "variance", "largest", "muxLen")
	for _, alpha := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
		opt := core.DefaultOptions(table)
		opt.Alpha = alpha
		opt.BetaAdd, opt.BetaMult = 300, 10000
		opt.MergesPerIteration = 1
		opt.Swap = swap
		res, _, err := core.Bind(g, s, rb, p.RC, opt)
		if err != nil {
			log.Fatal(err)
		}
		st := binding.ComputeMuxStats(g, rb, res)
		fmt.Printf("%6.2f %10.2f %10.2f %10d %10d\n", alpha, st.DiffMean, st.DiffVar, st.Largest, st.Length)
	}
	fmt.Println("\nLower alpha weights the muxDiff term more heavily: port muxes even")
	fmt.Println("out (smaller mean/variance), balancing arrival paths into the FU.")
}

// DCT example: run a real 8-point DCT kernel through the complete
// HLPower flow — scheduling, register binding, LOPASS and HLPower
// functional-unit binding, gate-level datapath elaboration, glitch-aware
// 4-LUT technology mapping, random-vector simulation, and power
// analysis — and compare the two bindings like the paper's Table 3.
//
// Run with: go run ./examples/dct
package main

import (
	"fmt"
	"log"

	"repro/internal/cdfg"
	"repro/internal/flow"
	"repro/internal/satable"
	"repro/internal/workload"
)

func main() {
	g := workload.DCT8()
	st := g.Stats()
	fmt.Printf("dct8 kernel: %d inputs, %d outputs, %d additions, %d multiplications\n",
		st.PIs, st.POs, st.Adds, st.Mults)

	cfg := flow.DefaultConfig()
	cfg.Width = 8
	cfg.Vectors = 500
	cfg.Table = satable.New(cfg.Width, satable.EstimatorGlitch)
	cfg.BaselineTable = satable.New(cfg.Width, satable.EstimatorZeroDelay)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 3}

	fmt.Printf("\n%-14s %10s %8s %6s %10s %8s %8s\n",
		"binder", "power(mW)", "clk(ns)", "LUTs", "muxLen", "toggle", "glitch%")
	var results []*flow.Result
	for _, b := range []flow.Binder{flow.BinderLOPASS, flow.BinderHLPower05} {
		r, err := flow.RunGraph(g, "dct8", rc, b, cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
		fmt.Printf("%-14s %10.2f %8.2f %6d %10d %8.2f %7.1f%%\n",
			b.Name, r.Power.DynamicPowerMW, r.Power.ClockPeriodNs, r.LUTs,
			r.FUMux.Length, r.Power.AvgToggleRateMHz, r.Power.GlitchShare*100)
	}
	lo, hi := results[0], results[1]
	fmt.Printf("\nHLPower vs LOPASS: power %+.1f%%, LUTs %+.1f%%, toggle rate %+.1f%%\n",
		pct(lo.Power.DynamicPowerMW, hi.Power.DynamicPowerMW),
		pct(float64(lo.LUTs), float64(hi.LUTs)),
		pct(lo.Power.AvgToggleRateMHz, hi.Power.AvgToggleRateMHz))
}

func pct(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}

// Quickstart: bind the paper's Figure 1 CDFG with HLPower.
//
// The example builds the 8-operation scheduled dataflow graph from the
// paper's worked example, allocates and binds registers, runs the
// HLPower iterative bipartite binding, and prints the resulting
// allocation (2 adders + 1 multiplier, matching the figure) together
// with the multiplexer statistics that drive the algorithm's cost.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/regbind"
	"repro/internal/satable"
)

func main() {
	// The Figure 1 CDFG: three control steps, ops 1..8.
	g := cdfg.NewGraph("fig1")
	in := make([]int, 6)
	for i := range in {
		in[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	op1 := g.AddOp(cdfg.KindAdd, "1", in[0], in[1])
	op2 := g.AddOp(cdfg.KindAdd, "2", in[1], in[2])
	op3 := g.AddOp(cdfg.KindMult, "3", in[3], in[4])
	op4 := g.AddOp(cdfg.KindAdd, "4", op1, op2)
	op5 := g.AddOp(cdfg.KindMult, "5", op3, in[5])
	op6 := g.AddOp(cdfg.KindAdd, "6", op4, op5)
	op7 := g.AddOp(cdfg.KindMult, "7", op5, op4)
	op8 := g.AddOp(cdfg.KindAdd, "8", op4, op3)
	for _, o := range []int{op6, op7, op8} {
		g.MarkOutput(o)
	}
	sched := &cdfg.Schedule{Step: make([]int, len(g.Nodes)), Len: 3}
	for op, step := range map[int]int{op1: 1, op2: 1, op3: 1, op4: 2, op5: 2, op6: 3, op7: 3, op8: 3} {
		sched.Step[op] = step
	}

	// Register binding first (paper §5.1), then HLPower FU binding.
	rb, err := regbind.Bind(g, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registers allocated: %d\n", rb.NumRegs)

	table := satable.New(8, satable.EstimatorGlitch)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 1}
	res, rep, err := core.Bind(g, sched, rb, rc, core.DefaultOptions(table))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("binding finished in %d matching iterations (%v)\n", rep.Iterations, rep.Runtime.Round(1000))
	for _, fu := range res.FUs {
		kl, kr := binding.MuxSizes(g, rb, res, fu)
		fmt.Printf("  FU%d (%s): ops", fu.ID, fu.Kind)
		for _, op := range fu.Ops {
			fmt.Printf(" %s", g.Nodes[op].Name)
		}
		fmt.Printf("  | input muxes %d/%d (muxDiff %d)\n", kl, kr, binding.MuxDiff(g, rb, res, fu))
	}
	st := binding.ComputeMuxStats(g, rb, res)
	fmt.Printf("allocation: %d FUs, largest mux %d, mux length %d, muxDiff mean %.2f\n",
		st.NumFUs, st.Largest, st.Length, st.DiffMean)
}

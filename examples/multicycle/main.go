// Multicycle example: the paper's future-work extensions working
// together. An 8-tap FIR kernel is implemented three ways:
//
//  1. the paper's single-cycle library (array multiplier),
//  2. a 2-cycle multi-cycle multiplier (multi-cycle timing paths allow a
//     much faster clock at the cost of schedule length),
//  3. the 2-cycle schedule plus module selection (Wallace-tree
//     multipliers and carry-lookahead adders where they pay off).
//
// For each variant the example reports schedule length, mapped area,
// STA-derived clock period, and simulated dynamic power.
//
// Run with: go run ./examples/multicycle
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/mapper"
	"repro/internal/modsel"
	"repro/internal/netgen"
	"repro/internal/power"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/workload"
)

const width = 8

func main() {
	g := workload.FIR(8)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	table := satable.New(width, satable.EstimatorGlitch)

	fmt.Printf("%-28s %6s %6s %9s %9s %10s\n",
		"variant", "steps", "LUTs", "Tclk(ns)", "f(MHz)", "power(mW)")

	single, err := cdfg.ListScheduleLat(g, rc, cdfg.SingleCycle())
	if err != nil {
		log.Fatal(err)
	}
	run("single-cycle, array mult", g, single, rc, table, nil, 1)

	lib := cdfg.Library{AddLatency: 1, MultLatency: 2}
	multi, err := cdfg.ListScheduleLat(g, rc, lib)
	if err != nil {
		log.Fatal(err)
	}
	run("2-cycle mult", g, multi, rc, table, nil, 2)
	run("2-cycle mult + modsel", g, multi, rc, table, &modsel.Options{Width: width, MapOpt: mapper.DefaultOptions()}, 2)

	// Pipelined multipliers: same latency, initiation interval 1 — the
	// schedule shrinks back toward single-cycle length while the clock
	// keeps the multi-cycle benefit (the pipeline cut shortens the
	// multiplier's combinational cone for real).
	plib := cdfg.Library{AddLatency: 1, MultLatency: 2, MultPipelined: true}
	piped, err := cdfg.ListScheduleLat(g, rc, plib)
	if err != nil {
		log.Fatal(err)
	}
	run("2-cycle pipelined mult", g, piped, rc, table, nil, 1)
}

func run(label string, g *cdfg.Graph, s *cdfg.Schedule, rc cdfg.ResourceConstraint, table *satable.Table, ms *modsel.Options, multAllowance int) {
	rb, err := regbind.Bind(g, s)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		log.Fatal(err)
	}

	var arch *datapath.Arch
	if ms != nil {
		sel, err := modsel.NewSelector(*ms).Select(g, rb, res)
		if err != nil {
			log.Fatal(err)
		}
		adder, mult := sel.Arch()
		arch = &datapath.Arch{Adder: adder, Mult: mult}
	}
	d, err := datapath.ElaborateArch(g, s, rb, res, width, arch)
	if err != nil {
		log.Fatal(err)
	}
	m, err := mapper.Map(d.Net, mapper.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	tm := timing.CycloneII()
	an := timing.Analyze(m.Mapped, tm)
	// Multi-cycle timing exception: a register whose worst path passes
	// through a multiplier gets `multAllowance` periods to settle.
	multPrefix := map[string]bool{}
	for _, fu := range res.FUs {
		if fu.Kind == netgen.FUMult {
			multPrefix[fmt.Sprintf("fu%d_", fu.ID)] = true
		}
	}
	throughMult := func(sink int) int {
		for _, id := range an.PathTo(sink) {
			name := m.Mapped.Node(id).Name
			if i := strings.Index(name, "_"); i > 0 && multPrefix[name[:i+1]] {
				return multAllowance
			}
		}
		return 1
	}
	period := timing.PeriodWithAllowance(m.Mapped, an, tm, throughMult)

	sr, err := sim.NewWithDelays(m.Mapped, sim.DelayHeterogeneous, 7)
	if err != nil {
		log.Fatal(err)
	}
	counts := sr.RunRandom(500, 2009)
	pm := power.CycloneII()
	pm.LUTDelayNs = 0 // period comes from STA below
	f := 1e9 / period
	gateTps := float64(counts.Gate) / float64(counts.Cycles) * f
	latchTps := float64(counts.Latch) / float64(counts.Cycles) * f
	mw := 0.5 * pm.Vdd * pm.Vdd * (pm.CLut*gateTps + pm.CReg*latchTps) * 1e3

	fmt.Printf("%-28s %6d %6d %9.2f %9.1f %10.2f\n",
		label, s.Len, m.LUTs, period, 1e3/period, mw)
}

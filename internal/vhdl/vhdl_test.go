package vhdl

import (
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/lopass"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/workload"
)

var testTable = satable.New(4, satable.EstimatorGlitch)

func emitKernel(t *testing.T, g *cdfg.Graph, rc cdfg.ResourceConstraint) string {
	t.Helper()
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(testTable))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Emit(&sb, g, s, rb, res, 8); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestEmitFIRStructure(t *testing.T) {
	text := emitKernel(t, workload.FIR(4), cdfg.ResourceConstraint{Add: 2, Mult: 2})
	for _, want := range []string{
		"entity fir4 is",
		"architecture rtl of fir4",
		"clk : in std_logic",
		"signal cstep",
		"rising_edge(clk)",
		"end architecture;",
		"unsigned(7 downto 0)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("VHDL missing %q:\n%s", want, text)
		}
	}
	// Every FU declared is also driven.
	if !strings.Contains(text, "fu0_y <=") {
		t.Fatal("FU output not driven")
	}
}

func TestEmitSubtractionUsesMinus(t *testing.T) {
	text := emitKernel(t, workload.Butterfly(2), cdfg.ResourceConstraint{Add: 4, Mult: 2})
	if !strings.Contains(text, " - fu") {
		t.Fatalf("butterfly kernel should synthesize subtraction:\n%s", text)
	}
	if !strings.Contains(text, "when cstep =") {
		t.Fatal("sub/add mode should be step-conditional")
	}
}

func TestEmitMultUsesResize(t *testing.T) {
	text := emitKernel(t, workload.FIR(2), cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if !strings.Contains(text, "resize(") {
		t.Fatal("multiplication should resize to the datapath width")
	}
}

func TestEmitAllOutputsDriven(t *testing.T) {
	g := workload.DCT8()
	text := emitKernel(t, g, cdfg.ResourceConstraint{Add: 3, Mult: 4})
	for i := range g.Outputs {
		if !strings.Contains(text, "out"+string(rune('0'+i))+" <=") {
			t.Fatalf("output %d not driven", i)
		}
	}
}

func TestEmitWorksWithLOPASSBinding(t *testing.T) {
	g := workload.FIR(4)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := lopass.Bind(g, s, rb, rc, lopass.Options{PortSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Emit(&sb, g, s, rb, res, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "entity fir4") {
		t.Fatal("missing entity")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"fir4":     "fir4",
		"8tap":     "_tap",
		"a-b.c":    "a_b_c",
		"":         "design",
		"ok_name9": "ok_name9",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

package vhdl

import (
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/workload"
)

func TestEmitMultiCycleCapturesAtCompletion(t *testing.T) {
	g := workload.FIR(3)
	rc := cdfg.ResourceConstraint{Add: 1, Mult: 1}
	lib := cdfg.Library{AddLatency: 1, MultLatency: 2}
	s, err := cdfg.ListScheduleLat(g, rc, lib)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Emit(&sb, g, s, rb, res, 8); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	// Every multiplication's register capture fires at its completion
	// counter value (start+1 for 2-cycle mults), i.e. at cstep =
	// Completion-1, never at the start step's counter value.
	for _, id := range g.Ops() {
		if g.Nodes[id].Kind != cdfg.KindMult {
			continue
		}
		if rb.Reg[id] < 0 {
			continue
		}
		comp := s.Completion(g, id)
		if comp == s.Step[id] {
			t.Fatalf("mult %d not multi-cycle in schedule", id)
		}
	}
	if !strings.Contains(text, "architecture rtl") {
		t.Fatal("VHDL malformed")
	}
}

func TestEmitMultiCycleSubMode(t *testing.T) {
	// A 2-cycle subtraction must keep its '-' mode across both occupied
	// counter values: the when-condition must reference two csteps.
	g := cdfg.NewGraph("mcsub")
	a := g.AddInput("a")
	b := g.AddInput("b")
	d := g.AddOp(cdfg.KindSub, "d", a, b)
	e := g.AddOp(cdfg.KindAdd, "e", d, a)
	g.MarkOutput(e)
	lib := cdfg.Library{AddLatency: 2, MultLatency: 1}
	s, err := cdfg.ListScheduleLat(g, cdfg.ResourceConstraint{Add: 1, Mult: 1}, lib)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, cdfg.ResourceConstraint{Add: 1, Mult: 1}, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Emit(&sb, g, s, rb, res, 8); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	subLine := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, " - fu") {
			subLine = line
		}
	}
	if subLine == "" {
		t.Fatalf("no subtraction emitted:\n%s", text)
	}
	if !strings.Contains(subLine, "or cstep =") {
		t.Fatalf("sub mode should span the occupation interval: %q", subLine)
	}
}

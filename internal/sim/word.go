package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

// WordSimulator is the word-parallel counterpart of Simulator: it packs
// 64 independent clock cycles into the bit lanes of one uint64 per
// signal and propagates events word-wise — and, with SetWide, N such
// words (N×64 cycles) per event pass — producing Counts and
// NodeTransitions bit-identical to the scalar engine at any worker
// count and any width.
//
// The engine exploits a structural property of transport-delay
// simulation over an acyclic network: each cycle settles to the
// zero-delay functional evaluation of its inputs and latch state
// (asserted by TestStepMatchesZeroDelayEval). The only cross-cycle
// dependency is therefore the latch trajectory, which a cheap
// sequential pre-pass tracks by evaluating just the latch D-input cone
// per cycle (nothing for combinational networks); each cycle's full
// start state is then derived word-parallel inside the workers by one
// levelized evaluation of the one-cycle-shifted stimulus, after which
// the expensive glitch-counting event simulations of the cycles are
// mutually independent and run 64 to a word, lane groups fanned across
// a worker pool.
//
// Per-lane equivalence with the scalar engine holds because lanes never
// mix under bitwise gate evaluation, the shared event times are a
// superset of each lane's own change times (an event in a lane whose
// inputs did not change carries that lane's current value and applies
// as a no-op), and transitions are counted per lane with
// popcount(new XOR old) masked to the group's active lanes.
//
// A WordSimulator holds no mutable simulation state between runs; each
// Run* call is self-contained. It is not safe for concurrent use (the
// run accumulates into shared counters), but a single run parallelizes
// internally.
type WordSimulator struct {
	net      *logic.Network
	fanouts  [][]int
	delays   []int
	maxDelay int
	plans    []gatePlan
	gateIDs  []int
	// Latch-trajectory plan. When the latch dependency graph (latch A
	// depends on latch B if B's Q is in A's D-input cone) is acyclic —
	// every pipeline — the trajectory is computed word-parallel rank by
	// rank: ranked is true, latchRanks[r] lists the latch indices of
	// rank r, and rankGates[r] the cone gates first needed at rank r
	// (ascending ID, topological). Otherwise coneOps holds the
	// levelized per-cycle cone program the sequential fallback
	// evaluates. Combinational networks need neither.
	ranked     bool
	latchRanks [][]int
	rankGates  [][]int
	coneOps    []coneOp
	// constIDs/constVals list the constant sources once; their node
	// values never change.
	constIDs  []int
	constVals []bool
	// wide is the number of 64-cycle lane groups event-simulated per
	// block (see SetWide).
	wide int

	// NodeTransitions holds the per-node transition tallies of the most
	// recent run, indexed by node ID — same contract as
	// Simulator.NodeTransitions.
	NodeTransitions []int64

	counts Counts
}

// coneOp is one levelized gate evaluation of the latch-cone program.
// For gates of up to 6 inputs the truth table is the single word tt;
// wider gates fall back to the full table.
type coneOp struct {
	id     int
	fanins []int
	tt     uint64
	big    *bitvec.TruthTable
}

// gatePlan is the word-level evaluation plan of one gate: the minterm
// expansion of its truth table over fanin words. minterms enumerates
// the smaller polarity (the function's on-set, or its off-set with
// invert) so evaluation cost is at most 2^(k-1) terms.
type gatePlan struct {
	isGate   bool
	fanins   []int
	minterms []uint16
	invert   bool
}

func newGatePlan(nd *logic.Node) gatePlan {
	p := gatePlan{isGate: true, fanins: nd.Fanins}
	p.minterms, p.invert = nd.Func.CompactCover()
	return p
}

// eval computes the gate's 64-lane output word from the fanin words.
func (p *gatePlan) eval(val []uint64) uint64 {
	var out uint64
	for _, m := range p.minterms {
		term := ^uint64(0)
		for i, f := range p.fanins {
			w := val[f]
			if m>>uint(i)&1 == 0 {
				w = ^w
			}
			term &= w
		}
		out |= term
	}
	if p.invert {
		out = ^out
	}
	return out
}

// MaxWide bounds the lane-group width of one event pass: up to
// MaxWide×64 cycles share each cone traversal. The cap keeps the
// per-event payload a small fixed array.
const MaxWide = 8

// DefaultWide is the width new simulators start with — wide enough to
// amortize fan-out walks and ring bookkeeping, narrow enough that the
// strided node state stays cache-resident for typical netlists.
const DefaultWide = 4

// SetWide sets the number of 64-cycle lane groups simulated per event
// pass (clamped to [1, MaxWide]). Width is a throughput knob only:
// counts and NodeTransitions are bit-identical at every setting,
// because blocks only union the groups' event times — an event in a
// group whose inputs did not change applies as a no-op and masked
// popcount counting charges it nothing.
func (w *WordSimulator) SetWide(n int) {
	if n < 1 {
		n = 1
	}
	if n > MaxWide {
		n = MaxWide
	}
	w.wide = n
}

// evalInto computes the gate's output words for wdt lane groups at
// once, reading fanin f's group-j word at val[f*wdt+j] and writing the
// wdt output words to out (which may alias val: the result is staged in
// a register array). One pass over the minterm expansion serves all
// wdt groups.
func (p *gatePlan) evalInto(val []uint64, wdt int, out []uint64) {
	var acc [MaxWide]uint64
	for _, m := range p.minterms {
		var term [MaxWide]uint64
		for j := 0; j < wdt; j++ {
			term[j] = ^uint64(0)
		}
		for i, f := range p.fanins {
			fw := val[f*wdt : f*wdt+wdt]
			if m>>uint(i)&1 == 0 {
				for j := 0; j < wdt; j++ {
					term[j] &= ^fw[j]
				}
			} else {
				for j := 0; j < wdt; j++ {
					term[j] &= fw[j]
				}
			}
		}
		for j := 0; j < wdt; j++ {
			acc[j] |= term[j]
		}
	}
	if p.invert {
		for j := 0; j < wdt; j++ {
			acc[j] = ^acc[j]
		}
	}
	copy(out, acc[:wdt])
}

// NewWord creates a unit-delay word-parallel simulator.
func NewWord(net *logic.Network) (*WordSimulator, error) {
	return NewWordWithDelays(net, DelayUnit, 0)
}

// NewWordWithDelays creates a word-parallel simulator under the given
// delay model; (model, seed) select the same deterministic delay
// assignment as the scalar NewWithDelays.
func NewWordWithDelays(net *logic.Network, model DelayModel, seed int64) (*WordSimulator, error) {
	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	w := &WordSimulator{
		net:             net,
		fanouts:         net.Fanouts(),
		NodeTransitions: make([]int64, net.NumNodes()),
		plans:           make([]gatePlan, net.NumNodes()),
		wide:            DefaultWide,
	}
	w.delays, w.maxDelay = assignDelays(net, model, seed)
	for _, nd := range net.Nodes {
		switch nd.Kind {
		case logic.KindGate:
			w.plans[nd.ID] = newGatePlan(nd)
			w.gateIDs = append(w.gateIDs, nd.ID)
		case logic.KindConst:
			w.constIDs = append(w.constIDs, nd.ID)
			w.constVals = append(w.constVals, nd.ConstVal)
		}
	}
	w.buildTrajectoryPlan()
	return w, nil
}

// buildTrajectoryPlan analyzes the latch D-input cones — the only part
// of the network that stands between one cycle's latch state and the
// next. If the latch dependency graph is acyclic (pipelines always
// are), latches are assigned longest-path ranks and each cone gate the
// minimum rank that needs it, enabling the word-parallel ranked
// trajectory of the pre-pass. Feedback (an FSM-style latch reachable
// from its own Q) falls back to a levelized per-cycle cone program.
// Combinational networks need no plan at all.
func (w *WordSimulator) buildTrajectoryPlan() {
	numL := len(w.net.Latches)
	if numL == 0 {
		return
	}
	cones := w.net.LatchCones()

	// Longest-path latch ranks; a dependency cycle aborts to the
	// sequential fallback.
	const unranked, inProgress = -1, -2
	rank := make([]int, numL)
	for i := range rank {
		rank[i] = unranked
	}
	acyclic := true
	var rankOf func(i int) int
	rankOf = func(i int) int {
		if rank[i] == inProgress {
			acyclic = false
			return 0
		}
		if rank[i] >= 0 {
			return rank[i]
		}
		rank[i] = inProgress
		r := 0
		for _, j := range cones.Deps[i] {
			if rj := rankOf(j) + 1; rj > r {
				r = rj
			}
			if !acyclic {
				return 0
			}
		}
		rank[i] = r
		return r
	}
	maxRank := 0
	for i := 0; i < numL && acyclic; i++ {
		if r := rankOf(i); r > maxRank {
			maxRank = r
		}
	}

	// gateRank[id] is the minimum rank whose cones need gate id, or
	// unranked for gates outside every cone.
	gateRank := make([]int, w.net.NumNodes())
	for id := range gateRank {
		gateRank[id] = unranked
	}
	for i := 0; i < numL; i++ {
		r := 0
		if acyclic {
			r = rank[i]
		}
		for _, id := range cones.Gates[i] {
			if gateRank[id] == unranked || r < gateRank[id] {
				gateRank[id] = r
			}
		}
	}

	if !acyclic {
		// Sequential fallback: the levelized cone program evaluated
		// once per cycle. Gates of up to 6 inputs inline their truth
		// table into a single word.
		for _, nd := range w.net.Nodes {
			if nd.Kind != logic.KindGate || gateRank[nd.ID] == unranked {
				continue
			}
			op := coneOp{id: nd.ID, fanins: nd.Fanins}
			if nd.Func.NumVars() <= 6 {
				for m := 0; m < nd.Func.Size(); m++ {
					if nd.Func.Get(uint(m)) {
						op.tt |= 1 << uint(m)
					}
				}
			} else {
				op.big = nd.Func
			}
			w.coneOps = append(w.coneOps, op)
		}
		return
	}

	w.ranked = true
	w.latchRanks = make([][]int, maxRank+1)
	for i := 0; i < numL; i++ {
		w.latchRanks[rank[i]] = append(w.latchRanks[rank[i]], i)
	}
	// A gate is evaluated at the minimum rank whose cones need it; its
	// fanins always have an equal or lower rank, so evaluating rank
	// buckets in order, ascending IDs within each, is topological.
	w.rankGates = make([][]int, maxRank+1)
	for _, nd := range w.net.Nodes {
		if nd.Kind != logic.KindGate || gateRank[nd.ID] == unranked {
			continue
		}
		w.rankGates[gateRank[nd.ID]] = append(w.rankGates[gateRank[nd.ID]], nd.ID)
	}
}

// Counts returns the transition counts of the most recent run.
func (w *WordSimulator) Counts() Counts { return w.counts }

// laneGroup is the pre-pass product for one block of up to 64
// consecutive cycles: everything a lane-group event simulation needs,
// with cycle base+L in bit lane L. Only stimulus words are stored —
// per-node start words are derived inside the worker (see simGroup),
// so the sequential pre-pass never touches the full node array.
type laneGroup struct {
	base  int // index of the first cycle in the group
	lanes int // active lanes (1..64; the tail group may be partial)
	// inputs and latchQ hold the cycle's primary-input vector and the
	// latch outputs captured at its clock edge, indexed like
	// Network.Inputs / Network.Latches.
	inputs []uint64
	latchQ []uint64
	// startInputs and startLatch hold the same stimulus shifted one
	// cycle back (lane L carries cycle base+L-1; cycle -1 is the
	// power-on state: inputs low, latches at init). Zero-delay
	// evaluation of this shifted stimulus yields each lane's start
	// state — the previous cycle's settled values.
	startInputs []uint64
	startLatch  []uint64
}

// mask returns the active-lane mask transition counting applies.
// Inactive tail lanes still simulate (as harmless all-zero cycles) but
// never count.
func (g *laneGroup) mask() uint64 {
	if g.lanes >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(g.lanes) - 1
}

// prepass runs the sequential cycle-independence pre-pass. The only
// true cross-cycle dependency is the latch trajectory, and the only
// logic between one cycle's state and the next is the latch D-input
// cone, so the sequential sweep evaluates just the cone program per
// cycle (nothing at all for combinational networks) while packing the
// stimulus words — both in-cycle (inputs, latchQ) and shifted one
// cycle back (startInputs, startLatch). Everything else, including
// each cycle's start-state derivation, runs lane-parallel in the
// workers.
func (w *WordSimulator) prepass(ctx context.Context, vectors [][]bool) ([]laneGroup, error) {
	numIn := len(w.net.Inputs)
	numL := len(w.net.Latches)
	groups := make([]laneGroup, (len(vectors)+63)/64)
	// inPrev/stPrev describe cycle c-1 — the cycle whose settled values
	// are the start state of cycle c. Cycle -1 is the power-on state of
	// Simulator.Reset: inputs low, latches at their init values.
	inPrev := make([]bool, numIn)
	stPrev := w.net.InitialLatchState()
	stCur := make([]bool, numL)
	seqCone := numL > 0 && !w.ranked
	var coneVal []bool
	if seqCone {
		coneVal = make([]bool, w.net.NumNodes())
		for i, id := range w.constIDs {
			coneVal[id] = w.constVals[i]
		}
	}
	for c, in := range vectors {
		if len(in) != numIn {
			panic("sim: input vector length mismatch")
		}
		g := &groups[c/64]
		if c&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			g.base = c
			g.inputs = make([]uint64, numIn)
			g.startInputs = make([]uint64, numIn)
			g.latchQ = make([]uint64, numL)
			g.startLatch = make([]uint64, numL)
		}
		bit := uint64(1) << uint(c&63)
		g.lanes++
		for i := range in {
			if inPrev[i] {
				g.startInputs[i] |= bit
			}
			if in[i] {
				g.inputs[i] |= bit
			}
		}
		if seqCone {
			// st_c is the D slice of cycle c-1's settled state — the
			// two-phase capture of Step, reached through the cone
			// program alone.
			for i, id := range w.net.Inputs {
				coneVal[id] = inPrev[i]
			}
			for i, q := range w.net.Latches {
				coneVal[q] = stPrev[i]
			}
			for _, op := range w.coneOps {
				var assign uint
				for i, f := range op.fanins {
					if coneVal[f] {
						assign |= 1 << uint(i)
					}
				}
				if op.big != nil {
					coneVal[op.id] = op.big.Eval(assign)
				} else {
					coneVal[op.id] = op.tt>>assign&1 == 1
				}
			}
			for i, q := range w.net.Latches {
				stCur[i] = coneVal[w.net.Node(q).LatchInput]
				if stPrev[i] {
					g.startLatch[i] |= bit
				}
				if stCur[i] {
					g.latchQ[i] |= bit
				}
			}
			stPrev, stCur = stCur, stPrev
		}
		copy(inPrev, in)
	}
	if numL > 0 && w.ranked {
		if err := w.rankedTrajectory(ctx, groups); err != nil {
			return nil, err
		}
	}
	return groups, nil
}

// rankedTrajectory computes the latch trajectory word-parallel for an
// acyclic latch dependency graph. Rank-0 latch cones read only primary
// inputs, so their D words fall out of one levelized word evaluation
// over the shifted input stimulus; each latch's captured-Q word is its
// D word, and shifting it one lane (with cross-group carry, lane 0 of
// group 0 seeded from the init value) yields the st_{c-1} word the
// next rank's cones read. Every cycle of a rank's trajectory is thus
// computed 64 at a time — the pre-pass does no per-cycle logic
// evaluation at all.
func (w *WordSimulator) rankedTrajectory(ctx context.Context, groups []laneGroup) error {
	numNodes := w.net.NumNodes()
	init := w.net.InitialLatchState()
	vals := make([][]uint64, len(groups))
	for gi := range groups {
		v := make([]uint64, numNodes)
		for i, id := range w.constIDs {
			if w.constVals[i] {
				v[id] = ^uint64(0)
			}
		}
		for i, id := range w.net.Inputs {
			v[id] = groups[gi].startInputs[i]
		}
		vals[gi] = v
	}
	for r, gates := range w.rankGates {
		if err := ctx.Err(); err != nil {
			return err
		}
		for gi := range groups {
			v := vals[gi]
			for _, id := range gates {
				v[id] = w.plans[id].eval(v)
			}
		}
		for _, li := range w.latchRanks[r] {
			q := w.net.Latches[li]
			d := w.net.Node(q).LatchInput
			var carry uint64
			if init[li] {
				carry = 1
			}
			for gi := range groups {
				g := &groups[gi]
				t := vals[gi][d]
				g.latchQ[li] = t
				g.startLatch[li] = t<<1 | carry
				carry = t >> 63
				vals[gi][q] = g.startLatch[li]
			}
		}
	}
	return nil
}

// wordEvent is one scheduled gate-output change: the node and its new
// value words for every lane group of the block (only the first wdt
// entries are meaningful).
type wordEvent struct {
	node int
	w    [MaxWide]uint64
}

// wordScratch is the per-worker reusable event-simulation state — the
// word-level mirror of the scalar Simulator's scratch fields. Per-node
// value arrays are strided: node i's group-j word lives at [i*wdt+j].
type wordScratch struct {
	wdt int
	// start holds the block's derived start-state words. Constant nodes
	// are preset once at creation; input, latch, and gate slots are
	// overwritten per block.
	start      []uint64
	val        []uint64
	futureVal  []uint64
	futureSeen []uint64
	evalSeen   []uint64
	stepGen    uint64
	evalGen    uint64
	ring       [][]wordEvent
	npending   int
	changed    []int
}

func (w *WordSimulator) newScratch(wdt int) *wordScratch {
	n := w.net.NumNodes()
	sc := &wordScratch{
		wdt:        wdt,
		start:      make([]uint64, n*wdt),
		val:        make([]uint64, n*wdt),
		futureVal:  make([]uint64, n*wdt),
		futureSeen: make([]uint64, n),
		evalSeen:   make([]uint64, n),
		ring:       make([][]wordEvent, w.maxDelay+1),
	}
	for i, id := range w.constIDs {
		if w.constVals[i] {
			for j := 0; j < wdt; j++ {
				sc.start[id*wdt+j] = ^uint64(0)
			}
		}
	}
	return sc
}

// simBlock event-simulates one block of up to wdt lane groups to
// settlement, accumulating per-node tallies into trans and returning
// the block's counts. Missing tail groups ride along as inactive words
// (zero stimulus, zero count mask), so a partial final block needs no
// special casing past the mask.
//
// Per-lane equivalence with the one-group engine: each group's words
// evolve exactly as they would alone, because blocking only unions the
// groups' event times — an evaluation triggered by another group's
// change recomputes this group's pending value unchanged, and applying
// it is a no-op that masked popcount counting charges nothing.
func (w *WordSimulator) simBlock(groups []laneGroup, sc *wordScratch, trans []int64) Counts {
	var c Counts
	wdt := sc.wdt
	var masks [MaxWide]uint64
	for j := range groups {
		masks[j] = groups[j].mask()
	}

	// Derive the block's start state word-parallel: one levelized eval
	// over the shifted stimulus gives each lane the settled values of
	// its previous cycle — wdt×64 cycles of start state for the price
	// of one sweep. Ascending gateIDs are topological; consts are
	// preset in the scratch.
	start := sc.start
	for i, id := range w.net.Inputs {
		for j := 0; j < wdt; j++ {
			start[id*wdt+j] = 0
		}
		for j := range groups {
			start[id*wdt+j] = groups[j].startInputs[i]
		}
	}
	for i, q := range w.net.Latches {
		for j := 0; j < wdt; j++ {
			start[q*wdt+j] = 0
		}
		for j := range groups {
			start[q*wdt+j] = groups[j].startLatch[i]
		}
	}
	for _, id := range w.gateIDs {
		w.plans[id].evalInto(start, wdt, start[id*wdt:id*wdt+wdt])
	}
	copy(sc.val, start)
	sc.stepGen++
	sc.changed = sc.changed[:0]

	// Time 0: latch outputs and primary inputs change together.
	for i, q := range w.net.Latches {
		any := false
		for j := range groups {
			nv := groups[j].latchQ[i]
			if diff := sc.val[q*wdt+j] ^ nv; diff != 0 {
				sc.val[q*wdt+j] = nv
				n := int64(bits.OnesCount64(diff & masks[j]))
				c.Latch += n
				trans[q] += n
				any = true
			}
		}
		if any {
			sc.changed = append(sc.changed, q)
		}
	}
	for i, id := range w.net.Inputs {
		any := false
		for j := range groups {
			if nv := groups[j].inputs[i]; sc.val[id*wdt+j] != nv {
				sc.val[id*wdt+j] = nv
				any = true
			}
		}
		if any {
			sc.changed = append(sc.changed, id)
		}
	}

	// Word-wise transport-delay event loop, lockstep time steps over
	// the same delay ring as the scalar engine.
	w.evalFanoutsWord(sc, 0)
	for t := 0; sc.npending > 0; {
		t++
		slot := t % len(sc.ring)
		events := sc.ring[slot]
		if len(events) == 0 {
			continue
		}
		sc.ring[slot] = events[:0]
		sc.npending -= len(events)
		sc.changed = sc.changed[:0]
		for _, e := range events {
			any := false
			for j := 0; j < wdt; j++ {
				diff := sc.val[e.node*wdt+j] ^ e.w[j]
				if diff == 0 {
					continue
				}
				sc.val[e.node*wdt+j] = e.w[j]
				n := int64(bits.OnesCount64(diff & masks[j]))
				c.Gate += n
				trans[e.node] += n
				any = true
			}
			if any {
				sc.changed = append(sc.changed, e.node)
			}
		}
		w.evalFanoutsWord(sc, t)
	}

	// Functional transitions: settled word differs from start word.
	for _, id := range w.gateIDs {
		for j := 0; j < wdt; j++ {
			if diff := sc.val[id*wdt+j] ^ start[id*wdt+j]; diff != 0 {
				c.GateFunctional += int64(bits.OnesCount64(diff & masks[j]))
			}
		}
	}
	for j := range groups {
		c.Cycles += int64(groups[j].lanes)
	}
	return c
}

// evalFanoutsWord re-evaluates every gate fed by a changed node and
// schedules word-level output changes at t + delay, mirroring the
// scalar evalFanouts (evalSeen dedup, futureVal-aware comparison). A
// change in any of the block's words schedules the full wdt-word event;
// words whose pending value is unchanged apply as no-ops.
func (w *WordSimulator) evalFanoutsWord(sc *wordScratch, t int) {
	sc.evalGen++
	wdt := sc.wdt
	for _, id := range sc.changed {
		for _, gid := range w.fanouts[id] {
			p := &w.plans[gid]
			if !p.isGate || sc.evalSeen[gid] == sc.evalGen {
				continue
			}
			sc.evalSeen[gid] = sc.evalGen
			var nv [MaxWide]uint64
			p.evalInto(sc.val, wdt, nv[:wdt])
			cur := sc.val[gid*wdt : gid*wdt+wdt]
			if sc.futureSeen[gid] == sc.stepGen {
				cur = sc.futureVal[gid*wdt : gid*wdt+wdt]
			}
			differs := false
			for j := 0; j < wdt; j++ {
				if nv[j] != cur[j] {
					differs = true
					break
				}
			}
			if differs {
				copy(sc.futureVal[gid*wdt:gid*wdt+wdt], nv[:wdt])
				sc.futureSeen[gid] = sc.stepGen
				slot := (t + w.delays[gid]) % len(sc.ring)
				sc.ring[slot] = append(sc.ring[slot], wordEvent{node: gid, w: nv})
				sc.npending++
			}
		}
	}
}

// RunVectors applies the given vectors with the given worker count
// (0 = GOMAXPROCS) and returns the transition counts.
func (w *WordSimulator) RunVectors(vectors [][]bool, workers int) Counts {
	c, _ := w.RunVectorsCtx(context.Background(), vectors, workers)
	return c
}

// RunVectorsCtx is RunVectors with cooperative cancellation: the
// pre-pass checks ctx at every lane-group boundary and each worker
// checks it before starting a group. On cancellation the counts
// accumulated from completed groups are returned alongside ctx's error
// (a coarser partial than the scalar engine's per-vector boundary —
// callers treat errored counts as incomplete either way).
//
// Aggregation is deterministic at every worker count: group results are
// collected into fixed slots by group index and summed in that order,
// and per-worker NodeTransitions accumulators are folded in worker
// order, so Counts and NodeTransitions are byte-identical however the
// groups were scheduled.
func (w *WordSimulator) RunVectorsCtx(ctx context.Context, vectors [][]bool, workers int) (Counts, error) {
	w.counts = Counts{}
	for i := range w.NodeTransitions {
		w.NodeTransitions[i] = 0
	}
	if len(vectors) == 0 {
		return w.counts, ctx.Err()
	}
	groups, err := w.prepass(ctx, vectors)
	if err != nil {
		return w.counts, err
	}
	wdt := w.wide
	blocks := (len(groups) + wdt - 1) / wdt
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}

	perBlock := make([]Counts, blocks)
	perWorker := make([][]int64, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		trans := make([]int64, w.net.NumNodes())
		perWorker[wk] = trans
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := w.newScratch(wdt)
			for {
				i := int(next.Add(1)) - 1
				if i >= blocks || ctx.Err() != nil {
					return
				}
				lo := i * wdt
				hi := lo + wdt
				if hi > len(groups) {
					hi = len(groups)
				}
				perBlock[i] = w.simBlock(groups[lo:hi], sc, trans)
			}
		}()
	}
	wg.Wait()

	for _, c := range perBlock {
		w.counts.Gate += c.Gate
		w.counts.GateFunctional += c.GateFunctional
		w.counts.Latch += c.Latch
		w.counts.Cycles += c.Cycles
	}
	for _, trans := range perWorker {
		for id, n := range trans {
			w.NodeTransitions[id] += n
		}
	}
	return w.counts, ctx.Err()
}

// RunRandom applies n uniformly random input vectors from the given
// seed — the same stimulus sequence as Simulator.RunRandom — and
// returns the transition counts.
func (w *WordSimulator) RunRandom(n int, seed int64, workers int) Counts {
	c, _ := w.RunRandomCtx(context.Background(), n, seed, workers)
	return c
}

// RunRandomCtx is RunRandom with cooperative cancellation (see
// RunVectorsCtx for the cancellation and determinism contracts).
func (w *WordSimulator) RunRandomCtx(ctx context.Context, n int, seed int64, workers int) (Counts, error) {
	return w.RunVectorsCtx(ctx, RandomVectors(len(w.net.Inputs), n, seed), workers)
}

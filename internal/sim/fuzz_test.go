package sim

import (
	"strings"
	"testing"
)

// FuzzVCD throws arbitrary text at the VCD reader. ParseVCD must return
// an error for anything malformed — never panic — and any dump it does
// accept must satisfy the type's invariants (non-negative counters,
// per-signal transitions only for declared signals).
func FuzzVCD(f *testing.F) {
	f.Add("$timescale 1ns $end\n$scope module top $end\n" +
		"$var wire 1 ! a $end\n$var wire 1 \" y $end\n" +
		"$upscope $end\n$enddefinitions $end\n" +
		"$dumpvars\n0!\n0\"\n$end\n" +
		"#0\n1!\n#1\n1\"\n#100\n0!\n#101\n0\"\n")
	f.Add("$var wire 1 ! a $end\n$enddefinitions $end\n#0\nx!\n#5\n1!\n#9\nz!\n")
	f.Add("$comment junk $end\n$enddefinitions $end\n")
	f.Add("#0\n1!\n") // value change for an undeclared code
	f.Add("$var wire 8 ! bus $end\n$enddefinitions $end\n#0\nb101 !\n")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := ParseVCD(strings.NewReader(text))
		if err != nil {
			return
		}
		if d.EndTime < 0 || d.Changes < 0 {
			t.Fatalf("negative counters: end=%d changes=%d", d.EndTime, d.Changes)
		}
		declared := make(map[string]bool, len(d.Signals))
		for _, s := range d.Signals {
			declared[s] = true
		}
		var total int64
		for name, n := range d.Transitions {
			if !declared[name] {
				t.Fatalf("transitions for undeclared signal %q", name)
			}
			if n < 0 {
				t.Fatalf("negative transition count for %q", name)
			}
			total += n
		}
		if total > d.Changes {
			t.Fatalf("more transitions (%d) than value changes (%d)", total, d.Changes)
		}
	})
}

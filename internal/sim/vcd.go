package sim

import (
	"fmt"
	"io"
	"sort"
)

// vcdSpan is the number of VCD time units per clock cycle; event times
// within a cycle (gate delays) land inside the span.
const vcdSpan = 100

// vcdState carries an attached value-change-dump writer.
type vcdState struct {
	w     io.Writer
	codes map[int]string // node ID -> VCD identifier code
	err   error
}

// EnableVCD attaches a VCD (value change dump) writer to the simulator:
// every subsequent Step appends the transitions of the watched nodes,
// timestamped cycle*100 + event time, viewable in GTKWave & co. Pass nil
// for watch to dump every named node. Must be called before the first
// Step of the run; call Reset first to restart a dump.
func (s *Simulator) EnableVCD(w io.Writer, watch []int) error {
	if s.counts.Cycles != 0 {
		return fmt.Errorf("sim: EnableVCD requires a reset simulator")
	}
	if watch == nil {
		for _, nd := range s.net.Nodes {
			if nd.Name != "" {
				watch = append(watch, nd.ID)
			}
		}
	}
	sort.Ints(watch)
	st := &vcdState{w: w, codes: make(map[int]string, len(watch))}
	var b []byte
	b = append(b, "$timescale 1ns $end\n$scope module top $end\n"...)
	for i, id := range watch {
		code := vcdCode(i)
		st.codes[id] = code
		name := s.net.Node(id).Name
		if name == "" {
			name = fmt.Sprintf("n%d", id)
		}
		b = append(b, fmt.Sprintf("$var wire 1 %s %s $end\n", code, name)...)
	}
	b = append(b, "$upscope $end\n$enddefinitions $end\n$dumpvars\n"...)
	for _, id := range watch {
		b = append(b, fmt.Sprintf("%s%s\n", vcdBit(s.val[id]), st.codes[id])...)
	}
	b = append(b, "$end\n"...)
	if _, err := st.w.Write(b); err != nil {
		return err
	}
	s.vcd = st
	return nil
}

// vcdEmit records one value change at an intra-cycle event time.
func (s *Simulator) vcdEmit(node, eventTime int, v bool) {
	st := s.vcd
	if st == nil || st.err != nil {
		return
	}
	code, watched := st.codes[node]
	if !watched {
		return
	}
	ts := s.counts.Cycles*vcdSpan + int64(eventTime)
	_, st.err = fmt.Fprintf(st.w, "#%d\n%s%s\n", ts, vcdBit(v), code)
}

// VCDErr reports any write error encountered while dumping.
func (s *Simulator) VCDErr() error {
	if s.vcd == nil {
		return nil
	}
	return s.vcd.err
}

func vcdBit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// vcdCode generates short printable identifier codes (!, ", #, ... then
// multi-character).
func vcdCode(i int) string {
	const base = 94 // printable ASCII 33..126
	var out []byte
	for {
		out = append(out, byte(33+i%base))
		i /= base
		if i == 0 {
			break
		}
		i--
	}
	return string(out)
}

package sim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// VCDDump is the parsed form of a value-change dump: the declared
// signals and the per-signal transition counts the dump records. It is
// the read-side counterpart of Simulator.EnableVCD — parsing a dump the
// simulator wrote recovers exactly the per-node transition tallies of
// the run — and accepts the common single-bit subset of IEEE 1364 VCD
// produced by other tools as well.
type VCDDump struct {
	// Signals lists the declared wire names in declaration order.
	Signals []string
	// Transitions counts the value changes of each signal (by name),
	// excluding the initial $dumpvars values and changes to/from the
	// unknown value 'x'.
	Transitions map[string]int64
	// Changes is the total number of value-change records (including
	// x-transitions, excluding $dumpvars initialization).
	Changes int64
	// EndTime is the largest timestamp seen.
	EndTime int64
}

// Limits the parser enforces on untrusted input. A dump the simulator
// writes stays far below both.
const (
	maxVCDSignals = 1 << 20
	maxVCDCodeLen = 16
)

// ParseVCD reads a value-change dump. The input is treated as
// untrusted: structural violations (values for undeclared identifier
// codes, malformed timestamps, time running backwards, unterminated
// declarations, vector values wider than 1 bit) are errors, never
// panics. Scalar values 0, 1, x, z are accepted; z is treated as x.
func ParseVCD(r io.Reader) (*VCDDump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sc.Split(bufio.ScanWords)

	d := &VCDDump{Transitions: make(map[string]int64)}
	codes := make(map[string]string) // identifier code -> signal name
	vals := make(map[string]byte)    // identifier code -> current value ('0','1','x')
	inDefs := true
	var time int64

	next := func() (string, bool) { ok := sc.Scan(); return sc.Text(), ok }
	// skipToEnd consumes tokens through the closing $end of a
	// declaration command.
	skipToEnd := func(cmd string) error {
		for {
			tok, ok := next()
			if !ok {
				return fmt.Errorf("sim: vcd: unterminated %s", cmd)
			}
			if tok == "$end" {
				return nil
			}
		}
	}

	for {
		tok, ok := next()
		if !ok {
			break
		}
		switch {
		case tok == "$var":
			if !inDefs {
				return nil, fmt.Errorf("sim: vcd: $var after $enddefinitions")
			}
			// $var <type> <width> <code> <name...> $end
			var fields []string
			for {
				t, ok := next()
				if !ok {
					return nil, fmt.Errorf("sim: vcd: unterminated $var")
				}
				if t == "$end" {
					break
				}
				fields = append(fields, t)
				if len(fields) > 64 {
					return nil, fmt.Errorf("sim: vcd: runaway $var declaration")
				}
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("sim: vcd: short $var declaration %v", fields)
			}
			width, err := strconv.Atoi(fields[1])
			if err != nil || width != 1 {
				return nil, fmt.Errorf("sim: vcd: only 1-bit wires supported, got width %q", fields[1])
			}
			code := fields[2]
			if len(code) > maxVCDCodeLen {
				return nil, fmt.Errorf("sim: vcd: identifier code %q too long", code)
			}
			name := strings.Join(fields[3:], " ")
			if _, dup := codes[code]; dup {
				return nil, fmt.Errorf("sim: vcd: identifier code %q declared twice", code)
			}
			if len(codes) >= maxVCDSignals {
				return nil, fmt.Errorf("sim: vcd: more than %d signals", maxVCDSignals)
			}
			codes[code] = name
			vals[code] = 'x'
			d.Signals = append(d.Signals, name)
		case tok == "$enddefinitions":
			if err := skipToEnd(tok); err != nil {
				return nil, err
			}
			inDefs = false
		case tok == "$dumpvars" || tok == "$dumpall" || tok == "$dumpon" || tok == "$dumpoff":
			// Initialization block: value entries up to $end set state
			// without counting as transitions.
			for {
				t, ok := next()
				if !ok {
					// The writer in this package terminates $dumpvars with
					// $end, but some emitters leave it open; treat EOF as
					// end of the block.
					return d, nil
				}
				if t == "$end" {
					break
				}
				code, v, err := scalarChange(t)
				if err != nil {
					return nil, err
				}
				if _, ok := codes[code]; !ok {
					return nil, fmt.Errorf("sim: vcd: value for undeclared code %q", code)
				}
				vals[code] = v
			}
		case strings.HasPrefix(tok, "$"):
			// $date, $version, $timescale, $scope, $upscope, $comment.
			if err := skipToEnd(tok); err != nil {
				return nil, err
			}
		case strings.HasPrefix(tok, "#"):
			ts, err := strconv.ParseInt(tok[1:], 10, 64)
			if err != nil || ts < 0 {
				return nil, fmt.Errorf("sim: vcd: bad timestamp %q", tok)
			}
			if ts < time {
				return nil, fmt.Errorf("sim: vcd: time runs backwards (%d after %d)", ts, time)
			}
			time = ts
			if ts > d.EndTime {
				d.EndTime = ts
			}
		default:
			if inDefs {
				return nil, fmt.Errorf("sim: vcd: value change %q before $enddefinitions", tok)
			}
			code, v, err := scalarChange(tok)
			if err != nil {
				return nil, err
			}
			name, ok := codes[code]
			if !ok {
				return nil, fmt.Errorf("sim: vcd: value for undeclared code %q", code)
			}
			d.Changes++
			if old := vals[code]; old != 'x' && v != 'x' && old != v {
				d.Transitions[name]++
			}
			vals[code] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: vcd: %w", err)
	}
	return d, nil
}

// scalarChange splits a scalar value-change token ("1!", "0#", "xA")
// into its identifier code and normalized value.
func scalarChange(tok string) (code string, v byte, err error) {
	if len(tok) < 2 {
		return "", 0, fmt.Errorf("sim: vcd: malformed value change %q", tok)
	}
	switch tok[0] {
	case '0', '1':
		v = tok[0]
	case 'x', 'X', 'z', 'Z':
		v = 'x'
	case 'b', 'B', 'r', 'R':
		return "", 0, fmt.Errorf("sim: vcd: vector value %q unsupported (1-bit wires only)", tok)
	default:
		return "", 0, fmt.Errorf("sim: vcd: malformed value change %q", tok)
	}
	code = tok[1:]
	if len(code) > maxVCDCodeLen {
		return "", 0, fmt.Errorf("sim: vcd: identifier code in %q too long", tok)
	}
	return code, v, nil
}

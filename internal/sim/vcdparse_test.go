package sim

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netgen"
)

// TestVCDRoundTrip checks that ParseVCD recovers exactly what EnableVCD
// wrote: the declared signals and the per-node transition activity of
// the run.
func TestVCDRoundTrip(t *testing.T) {
	net := netgen.AdderNetwork(4)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.EnableVCD(&sb, nil); err != nil {
		t.Fatal(err)
	}
	s.RunRandom(50, 7)
	if err := s.VCDErr(); err != nil {
		t.Fatal(err)
	}

	d, err := ParseVCD(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing our own dump: %v", err)
	}
	if d.EndTime == 0 || d.Changes == 0 {
		t.Fatalf("empty dump: %+v", d)
	}
	// Every named node was watched; the dump's per-signal tallies must
	// match the simulator's own transition counters. Inputs are dumped
	// but not tallied in NodeTransitions, so compare gates and latches.
	inputs := make(map[int]bool, len(net.Inputs))
	for _, id := range net.Inputs {
		inputs[id] = true
	}
	var fromDump, fromSim int64
	for _, nd := range net.Nodes {
		if nd.Name == "" || inputs[nd.ID] {
			continue
		}
		fromDump += d.Transitions[nd.Name]
		fromSim += s.NodeTransitions[nd.ID]
	}
	if fromDump != fromSim {
		t.Fatalf("dump records %d transitions, simulator counted %d", fromDump, fromSim)
	}
}

func TestVCDRoundTripSubset(t *testing.T) {
	net := logic.NewNetwork("v")
	a := net.AddInput("a")
	b := net.AddInput("b")
	y := net.AddGate("y", logic.TTXor2(), a, b)
	net.MarkOutput("y", y)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.EnableVCD(&sb, []int{y}); err != nil {
		t.Fatal(err)
	}
	s.RunRandom(40, 11)
	d, err := ParseVCD(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Signals) != 1 || d.Signals[0] != "y" {
		t.Fatalf("signals = %v, want [y]", d.Signals)
	}
	if got, want := d.Transitions["y"], s.NodeTransitions[y]; got != want {
		t.Fatalf("y transitions = %d, simulator counted %d", got, want)
	}
}

func TestParseVCDErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared code":   "$enddefinitions $end\n#0\n1!\n",
		"vector value":      "$var wire 1 ! a $end\n$enddefinitions $end\n#0\nb101 !\n",
		"wide wire":         "$var wire 8 ! a $end\n$enddefinitions $end\n",
		"dup code":          "$var wire 1 ! a $end\n$var wire 1 ! b $end\n$enddefinitions $end\n",
		"backwards time":    "$var wire 1 ! a $end\n$enddefinitions $end\n#5\n1!\n#3\n0!\n",
		"negative time":     "$var wire 1 ! a $end\n$enddefinitions $end\n#-2\n",
		"change in defs":    "$var wire 1 ! a $end\n1!\n",
		"unterminated var":  "$var wire 1 ! a\n",
		"short var":         "$var wire 1 $end\n$enddefinitions $end\n",
		"malformed change":  "$enddefinitions $end\n!\n",
		"var after enddefs": "$enddefinitions $end\n$var wire 1 ! a $end\n",
	}
	for name, text := range cases {
		if _, err := ParseVCD(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ParseVCD accepted %q", name, text)
		}
	}
}

// TestParseVCDTolerance pins the deliberate leniencies: z is read as x,
// an EOF inside $dumpvars is accepted (some emitters never close the
// block), and x-transitions count as changes but not as signal activity.
func TestParseVCDTolerance(t *testing.T) {
	d, err := ParseVCD(strings.NewReader(
		"$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1!\n#1\nz!\n#2\n0!\n#3\n1!\n"))
	if err != nil {
		t.Fatal(err)
	}
	// 1 -> z(x) -> 0 -> 1: the x hop breaks the first pair, so only the
	// final 0->1 counts as a transition; all four records are changes.
	if d.Changes != 4 || d.Transitions["a"] != 1 {
		t.Fatalf("changes=%d transitions=%d, want 4 and 1", d.Changes, d.Transitions["a"])
	}
	if d.EndTime != 3 {
		t.Fatalf("EndTime = %d, want 3", d.EndTime)
	}

	if _, err := ParseVCD(strings.NewReader("$var wire 1 ! a $end\n$enddefinitions $end\n$dumpvars\n0!")); err != nil {
		t.Fatalf("EOF inside $dumpvars should be tolerated: %v", err)
	}
}

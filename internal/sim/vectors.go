package sim

import "math/rand"

// This file is the single source of random stimulus. Every engine —
// the scalar Simulator, the word-parallel WordSimulator, and callers
// materializing shared .vwf-equivalent vector sets — draws vectors
// through one generator, so the scalar and word paths can never drift
// on stimulus: same (numInputs, seed) means bit-identical vectors
// everywhere.

// vectorSource streams the reproducible random vector sequence for a
// given input count and seed, reusing one buffer across cycles.
type vectorSource struct {
	rng *rand.Rand
	buf []bool
}

func newVectorSource(numInputs int, seed int64) *vectorSource {
	return &vectorSource{
		rng: rand.New(rand.NewSource(seed)),
		buf: make([]bool, numInputs),
	}
}

// next returns the next vector of the sequence. The returned slice is
// reused by the following call.
func (v *vectorSource) next() []bool {
	for i := range v.buf {
		v.buf[i] = v.rng.Intn(2) == 0
	}
	return v.buf
}

// RandomVectors generates n reproducible input vectors for a network,
// shared between designs under comparison (the paper reuses one .vwf
// for LOPASS and HLPower solutions). The sequence is identical to what
// Simulator.RunRandom and WordSimulator.RunRandom apply for the same
// seed.
func RandomVectors(numInputs, n int, seed int64) [][]bool {
	vs := newVectorSource(numInputs, seed)
	out := make([][]bool, n)
	for c := range out {
		out[c] = append([]bool(nil), vs.next()...)
	}
	return out
}

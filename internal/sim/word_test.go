package sim

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/netgen"
)

// randomNetwork builds a random DAG of 1..4-input gates with random
// truth tables, optionally latched (latch D inputs wired to arbitrary
// nodes, including forward references), for scalar-vs-word property
// testing.
func randomNetwork(rng *rand.Rand, inputs, latches, gates int) *logic.Network {
	net := logic.NewNetwork("rand")
	for i := 0; i < inputs; i++ {
		net.AddInput(fmt.Sprintf("i%d", i))
	}
	var qs []int
	for i := 0; i < latches; i++ {
		qs = append(qs, net.AddLatch(fmt.Sprintf("q%d", i), rng.Intn(2) == 0))
	}
	net.AddConst("c0", rng.Intn(2) == 0)
	for i := 0; i < gates; i++ {
		k := 1 + rng.Intn(4)
		fanins := make([]int, k)
		for j := range fanins {
			fanins[j] = rng.Intn(net.NumNodes())
		}
		tt := bitvec.FromFunc(k, func(uint) bool { return rng.Intn(2) == 0 })
		net.AddGate(fmt.Sprintf("g%d", i), tt, fanins...)
	}
	for _, q := range qs {
		net.ConnectLatch(q, rng.Intn(net.NumNodes()))
	}
	net.MarkOutput("out", net.NumNodes()-1)
	return net
}

// requireSameRun asserts the word engine reproduces the scalar engine's
// Counts and NodeTransitions exactly on the given stimulus, at every
// worker count in 1..8.
func requireSameRun(t *testing.T, net *logic.Network, model DelayModel, delaySeed int64, vectors [][]bool, label string) {
	t.Helper()
	sc, err := NewWithDelays(net, model, delaySeed)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.RunVectors(vectors)
	for workers := 1; workers <= 8; workers++ {
		w, err := NewWordWithDelays(net, model, delaySeed)
		if err != nil {
			t.Fatal(err)
		}
		got := w.RunVectors(vectors, workers)
		if got != want {
			t.Fatalf("%s workers=%d: word counts %+v, scalar %+v", label, workers, got, want)
		}
		for id := range sc.NodeTransitions {
			if w.NodeTransitions[id] != sc.NodeTransitions[id] {
				t.Fatalf("%s workers=%d: node %d transitions %d, scalar %d",
					label, workers, id, w.NodeTransitions[id], sc.NodeTransitions[id])
			}
		}
	}
}

// TestWordMatchesScalarRandomNetworks is the core equivalence property:
// random combinational and latched networks, both delay models, Counts
// and NodeTransitions identical to the scalar engine at workers 1..8.
func TestWordMatchesScalarRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		latches := 0
		if trial%2 == 1 {
			latches = 2 + rng.Intn(5)
		}
		net := randomNetwork(rng, 3+rng.Intn(6), latches, 20+rng.Intn(60))
		vectors := RandomVectors(len(net.Inputs), 100, int64(trial))
		for _, model := range []DelayModel{DelayUnit, DelayHeterogeneous} {
			requireSameRun(t, net, model, 5, vectors,
				fmt.Sprintf("trial=%d latches=%d model=%d", trial, latches, model))
		}
	}
}

// TestWordMatchesScalarMapped covers the flow's actual workload shape:
// 4-LUT technology-mapped netlists, combinational (array multiplier)
// and sequential (pipelined multiplier), both delay models.
func TestWordMatchesScalarMapped(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *logic.Network
	}{
		{"mult6", netgen.MultiplierNetwork(6)},
		{"pipemult6", netgen.PipelinedMultiplierNetwork(6, 2)},
	} {
		res, err := mapper.Map(tc.net, mapper.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		vectors := RandomVectors(len(res.Mapped.Inputs), 200, 17)
		for _, model := range []DelayModel{DelayUnit, DelayHeterogeneous} {
			requireSameRun(t, res.Mapped, model, 7, vectors,
				fmt.Sprintf("%s model=%d", tc.name, model))
		}
	}
}

// TestWordTailGroups exercises partial lane groups: vector counts
// around the 64-lane boundary must mask inactive tail lanes out of
// every count.
func TestWordTailGroups(t *testing.T) {
	net := netgen.PipelinedMultiplierNetwork(4, 2)
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		vectors := RandomVectors(len(net.Inputs), n, 3)
		requireSameRun(t, net, DelayHeterogeneous, 11, vectors, fmt.Sprintf("n=%d", n))
	}
}

// TestWordWideMatchesScalar sweeps the lane-group width: every setting
// must reproduce the scalar engine's Counts and NodeTransitions exactly,
// including blocks with partial and missing tail groups (vector counts
// straddling the width×64 boundary).
func TestWordWideMatchesScalar(t *testing.T) {
	nets := []struct {
		name string
		net  *logic.Network
	}{
		{"pipemult4", netgen.PipelinedMultiplierNetwork(4, 2)},
		{"mult5", netgen.MultiplierNetwork(5)},
	}
	for _, tc := range nets {
		for _, n := range []int{1, 64, 100, 257, 520} {
			sc, err := NewWithDelays(tc.net, DelayHeterogeneous, 11)
			if err != nil {
				t.Fatal(err)
			}
			vectors := RandomVectors(len(tc.net.Inputs), n, 3)
			want := sc.RunVectors(vectors)
			for _, wide := range []int{1, 2, 3, 4, 8} {
				w, err := NewWordWithDelays(tc.net, DelayHeterogeneous, 11)
				if err != nil {
					t.Fatal(err)
				}
				w.SetWide(wide)
				got := w.RunVectors(vectors, 2)
				if got != want {
					t.Fatalf("%s n=%d wide=%d: word counts %+v, scalar %+v", tc.name, n, wide, got, want)
				}
				for id := range sc.NodeTransitions {
					if w.NodeTransitions[id] != sc.NodeTransitions[id] {
						t.Fatalf("%s n=%d wide=%d: node %d transitions %d, scalar %d",
							tc.name, n, wide, id, w.NodeTransitions[id], sc.NodeTransitions[id])
					}
				}
			}
		}
	}
}

// TestWordRunRandomSharesStimulus asserts the scalar and word engines
// draw the identical random vector sequence for a seed (the shared
// generator contract).
func TestWordRunRandomSharesStimulus(t *testing.T) {
	net := netgen.MultiplierNetwork(5)
	sc, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWord(net)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.RunRandom(150, 23)
	got := w.RunRandom(150, 23, 4)
	if got != want {
		t.Fatalf("RunRandom diverged: word %+v, scalar %+v", got, want)
	}
}

// TestWordRerunResets asserts back-to-back runs on one WordSimulator
// start from clean counters and the power-on state.
func TestWordRerunResets(t *testing.T) {
	net := netgen.PipelinedMultiplierNetwork(4, 2)
	w, err := NewWordWithDelays(net, DelayHeterogeneous, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := w.RunRandom(100, 9, 2)
	b := w.RunRandom(100, 9, 2)
	if a != b {
		t.Fatalf("rerun diverged: %+v vs %+v", a, b)
	}
}

// TestWordCancellation asserts a cancelled context stops the run and
// surfaces the context error.
func TestWordCancellation(t *testing.T) {
	net := netgen.MultiplierNetwork(6)
	w, err := NewWord(net)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.RunRandomCtx(ctx, 500, 1, 4); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

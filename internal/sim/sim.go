// Package sim implements an event-driven, unit-delay, gate-level logic
// simulator with transition counting. It substitutes for the Quartus II
// simulation step of the paper's flow (§6.1): 1000 random input vectors
// are applied (one per clock cycle, glitch filtering off) and every
// signal transition — functional or glitch — is counted, yielding the
// measured switching-activity file the power analysis consumes.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
)

// Counts aggregates transition counts over a run.
type Counts struct {
	// Gate counts transitions at combinational gate/LUT outputs.
	Gate int64
	// GateFunctional counts the subset that are functional (net value
	// change over a full cycle); Gate - GateFunctional is glitches.
	GateFunctional int64
	// Latch counts register-output transitions (at most 1 per cycle).
	Latch int64
	// Cycles is the number of simulated clock cycles.
	Cycles int64
}

// Glitches returns the spurious gate transitions.
func (c Counts) Glitches() int64 { return c.Gate - c.GateFunctional }

// Total returns all counted transitions (gates + latches).
func (c Counts) Total() int64 { return c.Gate + c.Latch }

// TogglesPerCycle returns average transitions per clock cycle.
func (c Counts) TogglesPerCycle() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Total()) / float64(c.Cycles)
}

// DelayModel assigns a propagation delay to every gate.
type DelayModel int

const (
	// DelayUnit gives every gate one time unit — the estimator's model.
	DelayUnit DelayModel = iota
	// DelayHeterogeneous gives each gate a deterministic pseudo-random
	// delay of 1..3 time units, modelling the spread of LUT + routing
	// delays a placed-and-routed FPGA design exhibits. Real delay skew
	// desynchronizes arrival times and lengthens glitch trains, which is
	// the behaviour the paper's Quartus timing simulation measures.
	DelayHeterogeneous
)

// Simulator simulates one network. Not safe for concurrent use.
type Simulator struct {
	net     *logic.Network
	fanouts [][]int
	delays  []int
	val     []bool
	latchSt []bool

	// Per-node transition tallies for the whole run.
	NodeTransitions []int64

	counts Counts

	// scratch
	startVal []bool

	// vcd is the optional value-change-dump sink (see EnableVCD).
	vcd *vcdState
}

// New creates a unit-delay simulator with all values initialized to the
// network's reset state (latch init values, inputs low, gates settled).
func New(net *logic.Network) (*Simulator, error) {
	return NewWithDelays(net, DelayUnit, 0)
}

// NewWithDelays creates a simulator under the given delay model; seed
// selects the deterministic delay assignment for DelayHeterogeneous.
func NewWithDelays(net *logic.Network, model DelayModel, seed int64) (*Simulator, error) {
	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Simulator{
		net:             net,
		fanouts:         net.Fanouts(),
		delays:          make([]int, net.NumNodes()),
		NodeTransitions: make([]int64, net.NumNodes()),
		startVal:        make([]bool, net.NumNodes()),
	}
	for id := range s.delays {
		s.delays[id] = 1
		if model == DelayHeterogeneous {
			// Deterministic per-node jitter (splitmix-style hash).
			h := uint64(id)*0x9E3779B97F4A7C15 + uint64(seed)*0xBF58476D1CE4E5B9
			h ^= h >> 31
			h *= 0x94D049BB133111EB
			h ^= h >> 27
			s.delays[id] = 1 + int(h%3)
		}
	}
	s.Reset()
	return s, nil
}

// Reset restores the power-on state, clears counters, and detaches any
// VCD sink.
func (s *Simulator) Reset() {
	s.vcd = nil
	s.latchSt = s.net.InitialLatchState()
	s.val = s.net.Eval(make([]bool, len(s.net.Inputs)), s.latchSt)
	for i := range s.NodeTransitions {
		s.NodeTransitions[i] = 0
	}
	s.counts = Counts{}
}

// Counts returns the accumulated transition counts.
func (s *Simulator) Counts() Counts { return s.counts }

// Values returns the current settled node values (read-only view).
func (s *Simulator) Values() []bool { return s.val }

// Step simulates one clock cycle: latches capture last cycle's D values,
// the new input vector is applied, and events propagate with per-gate
// transport delays until the network settles. Transition counts include
// every intermediate (glitch) change — the paper's "glitch filtering =
// never" setting.
func (s *Simulator) Step(inputs []bool) {
	if len(inputs) != len(s.net.Inputs) {
		panic("sim: input vector length mismatch")
	}
	copy(s.startVal, s.val)

	// Time 0: latch outputs and primary inputs change together. Latch
	// updates are two-phase: all D values are sampled before any Q
	// changes, so chains of directly connected latches (pipeline banks,
	// shift registers) shift by exactly one stage per clock instead of
	// shooting through.
	var changedNow []int
	dVals := make([]bool, len(s.net.Latches))
	for i, q := range s.net.Latches {
		dVals[i] = s.val[s.net.Node(q).LatchInput]
	}
	for i, q := range s.net.Latches {
		nv := dVals[i]
		if nv != s.val[q] {
			s.val[q] = nv
			s.counts.Latch++
			s.NodeTransitions[q]++
			s.vcdEmit(q, 0, nv)
			changedNow = append(changedNow, q)
		}
	}
	for i, id := range s.net.Inputs {
		if s.val[id] != inputs[i] {
			s.val[id] = inputs[i]
			s.vcdEmit(id, 0, inputs[i])
			changedNow = append(changedNow, id)
		}
	}

	// Transport-delay event simulation. futureVal tracks each gate's
	// most recently scheduled output so repeated evaluations within one
	// delay window enqueue only real changes.
	type event struct {
		node int
		v    bool
	}
	pending := make(map[int][]event) // time -> scheduled output changes
	futureVal := make(map[int]bool)
	future := func(g int) bool {
		if v, ok := futureVal[g]; ok {
			return v
		}
		return s.val[g]
	}
	evalFanouts := func(changed []int, t int) {
		seen := make(map[int]bool)
		for _, id := range changed {
			for _, g := range s.fanouts[id] {
				nd := s.net.Node(g)
				if nd.Kind != logic.KindGate || seen[g] {
					continue
				}
				seen[g] = true
				var assign uint
				for i, f := range nd.Fanins {
					if s.val[f] {
						assign |= 1 << uint(i)
					}
				}
				nv := nd.Func.Eval(assign)
				if nv != future(g) {
					futureVal[g] = nv
					at := t + s.delays[g]
					pending[at] = append(pending[at], event{g, nv})
				}
			}
		}
	}
	evalFanouts(changedNow, 0)
	for len(pending) > 0 {
		// Next event time.
		t := -1
		for at := range pending {
			if t < 0 || at < t {
				t = at
			}
		}
		events := pending[t]
		delete(pending, t)
		var changed []int
		for _, e := range events {
			if s.val[e.node] == e.v {
				continue
			}
			s.val[e.node] = e.v
			s.counts.Gate++
			s.NodeTransitions[e.node]++
			s.vcdEmit(e.node, t, e.v)
			changed = append(changed, e.node)
		}
		evalFanouts(changed, t)
	}

	// Functional transitions: settled value differs from cycle start.
	for _, nd := range s.net.Nodes {
		if nd.Kind == logic.KindGate && s.val[nd.ID] != s.startVal[nd.ID] {
			s.counts.GateFunctional++
		}
	}
	s.counts.Cycles++
}

// RunRandom applies n uniformly random input vectors from the given
// seed, one per clock cycle — the paper's 1000-random-vector .vwf
// methodology — and returns the transition counts.
func (s *Simulator) RunRandom(n int, seed int64) Counts {
	rng := rand.New(rand.NewSource(seed))
	in := make([]bool, len(s.net.Inputs))
	for c := 0; c < n; c++ {
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		s.Step(in)
	}
	return s.counts
}

// RunVectors applies the given vectors in order.
func (s *Simulator) RunVectors(vectors [][]bool) Counts {
	for _, v := range vectors {
		s.Step(v)
	}
	return s.counts
}

// RandomVectors generates n reproducible input vectors for a network,
// shared between designs under comparison (the paper reuses one .vwf
// for LOPASS and HLPower solutions).
func RandomVectors(numInputs, n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]bool, n)
	for c := range out {
		v := make([]bool, numInputs)
		for i := range v {
			v[i] = rng.Intn(2) == 0
		}
		out[c] = v
	}
	return out
}

// Package sim implements an event-driven, unit-delay, gate-level logic
// simulator with transition counting. It substitutes for the Quartus II
// simulation step of the paper's flow (§6.1): 1000 random input vectors
// are applied (one per clock cycle, glitch filtering off) and every
// signal transition — functional or glitch — is counted, yielding the
// measured switching-activity file the power analysis consumes.
package sim

import (
	"context"
	"fmt"

	"repro/internal/logic"
)

// Counts aggregates transition counts over a run.
type Counts struct {
	// Gate counts transitions at combinational gate/LUT outputs.
	Gate int64
	// GateFunctional counts the subset that are functional (net value
	// change over a full cycle); Gate - GateFunctional is glitches.
	GateFunctional int64
	// Latch counts register-output transitions (at most 1 per cycle).
	Latch int64
	// Cycles is the number of simulated clock cycles.
	Cycles int64
}

// Glitches returns the spurious gate transitions.
func (c Counts) Glitches() int64 { return c.Gate - c.GateFunctional }

// Total returns all counted transitions (gates + latches).
func (c Counts) Total() int64 { return c.Gate + c.Latch }

// TogglesPerCycle returns average transitions per clock cycle.
func (c Counts) TogglesPerCycle() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Total()) / float64(c.Cycles)
}

// DelayModel assigns a propagation delay to every gate.
type DelayModel int

const (
	// DelayUnit gives every gate one time unit — the estimator's model.
	DelayUnit DelayModel = iota
	// DelayHeterogeneous gives each gate a deterministic pseudo-random
	// delay of 1..3 time units, modelling the spread of LUT + routing
	// delays a placed-and-routed FPGA design exhibits. Real delay skew
	// desynchronizes arrival times and lengthens glitch trains, which is
	// the behaviour the paper's Quartus timing simulation measures.
	DelayHeterogeneous
)

// Simulator simulates one network, one bool per signal per event — the
// reference engine. VCD dumping and the oracle tests run here; the
// measurement flow runs the bit-identical WordSimulator (word.go),
// which packs 64 cycles per machine word. Not safe for concurrent use.
type Simulator struct {
	net     *logic.Network
	fanouts [][]int
	delays  []int
	val     []bool
	latchSt []bool

	// Per-node transition tallies for the whole run.
	NodeTransitions []int64

	counts Counts

	// startVal holds, for every gate in dirty, its value at the start of
	// the current cycle, recorded lazily at the gate's first transition.
	// Only transitioned gates can end a cycle away from their start
	// value, so settleCounts walks dirty instead of scanning all nodes.
	startVal  []bool
	dirty     []int
	dirtySeen []uint64

	// Event queue: gate delays are bounded by maxDelay, so at any
	// simulated time t every pending event lies in (t, t+maxDelay] and a
	// ring of maxDelay+1 time slots indexes the whole frontier — the
	// next-event search is O(maxDelay) instead of a scan over all
	// pending times. The slot slices are reused across Step calls.
	maxDelay int
	ring     [][]event
	npending int

	// Per-step scratch, reused across Step calls. futureVal/futureSeen
	// track each gate's most recently scheduled output for the current
	// step (futureSeen[g] == stepGen means futureVal[g] is live);
	// evalSeen dedups gate evaluations within one fanout sweep.
	futureVal  []bool
	futureSeen []uint64
	evalSeen   []uint64
	stepGen    uint64
	evalGen    uint64
	dVals      []bool
	changed    []int

	// vcd is the optional value-change-dump sink (see EnableVCD).
	vcd *vcdState
}

// event is one scheduled gate-output change.
type event struct {
	node int
	v    bool
}

// New creates a unit-delay simulator with all values initialized to the
// network's reset state (latch init values, inputs low, gates settled).
func New(net *logic.Network) (*Simulator, error) {
	return NewWithDelays(net, DelayUnit, 0)
}

// NewWithDelays creates a simulator under the given delay model; seed
// selects the deterministic delay assignment for DelayHeterogeneous.
func NewWithDelays(net *logic.Network, model DelayModel, seed int64) (*Simulator, error) {
	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Simulator{
		net:             net,
		fanouts:         net.Fanouts(),
		NodeTransitions: make([]int64, net.NumNodes()),
		startVal:        make([]bool, net.NumNodes()),
	}
	s.delays, s.maxDelay = assignDelays(net, model, seed)
	s.ring = make([][]event, s.maxDelay+1)
	n := net.NumNodes()
	s.futureVal = make([]bool, n)
	s.futureSeen = make([]uint64, n)
	s.evalSeen = make([]uint64, n)
	s.dirtySeen = make([]uint64, n)
	s.dVals = make([]bool, len(net.Latches))
	s.Reset()
	return s, nil
}

// assignDelays computes the per-node propagation delays of a delay model
// and their maximum. Shared by the scalar and word engines so the two
// can never drift on timing.
func assignDelays(net *logic.Network, model DelayModel, seed int64) (delays []int, maxDelay int) {
	delays = make([]int, net.NumNodes())
	maxDelay = 1
	for id := range delays {
		delays[id] = 1
		if model == DelayHeterogeneous {
			// Deterministic per-node jitter (splitmix-style hash).
			h := uint64(id)*0x9E3779B97F4A7C15 + uint64(seed)*0xBF58476D1CE4E5B9
			h ^= h >> 31
			h *= 0x94D049BB133111EB
			h ^= h >> 27
			delays[id] = 1 + int(h%3)
		}
		if delays[id] > maxDelay {
			maxDelay = delays[id]
		}
	}
	return delays, maxDelay
}

// Reset restores the power-on state, clears counters, and detaches any
// VCD sink.
func (s *Simulator) Reset() {
	s.vcd = nil
	s.latchSt = s.net.InitialLatchState()
	s.val = s.net.Eval(make([]bool, len(s.net.Inputs)), s.latchSt)
	for i := range s.NodeTransitions {
		s.NodeTransitions[i] = 0
	}
	s.counts = Counts{}
	for i := range s.ring {
		s.ring[i] = s.ring[i][:0]
	}
	s.npending = 0
	s.dirty = s.dirty[:0]
}

// Counts returns the accumulated transition counts.
func (s *Simulator) Counts() Counts { return s.counts }

// Values returns the current settled node values (read-only view).
func (s *Simulator) Values() []bool { return s.val }

// Step simulates one clock cycle: latches capture last cycle's D values,
// the new input vector is applied, and events propagate with per-gate
// transport delays until the network settles. Transition counts include
// every intermediate (glitch) change — the paper's "glitch filtering =
// never" setting.
func (s *Simulator) Step(inputs []bool) {
	if len(inputs) != len(s.net.Inputs) {
		panic("sim: input vector length mismatch")
	}
	s.dirty = s.dirty[:0]
	s.stepGen++

	// Time 0: latch outputs and primary inputs change together. Latch
	// updates are two-phase: all D values are sampled before any Q
	// changes, so chains of directly connected latches (pipeline banks,
	// shift registers) shift by exactly one stage per clock instead of
	// shooting through.
	s.changed = s.changed[:0]
	for i, q := range s.net.Latches {
		s.dVals[i] = s.val[s.net.Node(q).LatchInput]
	}
	for i, q := range s.net.Latches {
		nv := s.dVals[i]
		if nv != s.val[q] {
			s.val[q] = nv
			s.counts.Latch++
			s.NodeTransitions[q]++
			s.vcdEmit(q, 0, nv)
			s.changed = append(s.changed, q)
		}
	}
	for i, id := range s.net.Inputs {
		if s.val[id] != inputs[i] {
			s.val[id] = inputs[i]
			s.vcdEmit(id, 0, inputs[i])
			s.changed = append(s.changed, id)
		}
	}

	// Transport-delay event simulation. futureVal tracks each gate's
	// most recently scheduled output so repeated evaluations within one
	// delay window enqueue only real changes; the ring indexes pending
	// events by time modulo maxDelay+1 (see the Simulator field docs).
	s.evalFanouts(s.changed, 0)
	for t := 0; s.npending > 0; {
		t++
		slot := t % len(s.ring)
		events := s.ring[slot]
		if len(events) == 0 {
			continue
		}
		// Detach the slot before applying: new events land at
		// t+delay (delay in [1, maxDelay]), never back in this slot.
		s.ring[slot] = events[:0]
		s.npending -= len(events)
		s.changed = s.changed[:0]
		for _, e := range events {
			if s.val[e.node] == e.v {
				continue
			}
			// First transition this cycle: record the cycle-start value
			// settleCounts compares against (events touch gates only).
			if s.dirtySeen[e.node] != s.stepGen {
				s.dirtySeen[e.node] = s.stepGen
				s.startVal[e.node] = s.val[e.node]
				s.dirty = append(s.dirty, e.node)
			}
			s.val[e.node] = e.v
			s.counts.Gate++
			s.NodeTransitions[e.node]++
			s.vcdEmit(e.node, t, e.v)
			s.changed = append(s.changed, e.node)
		}
		s.evalFanouts(s.changed, t)
	}

	s.settleCounts()
}

// evalFanouts re-evaluates every gate fed by a changed node at time t
// and schedules real output changes at t + delay. futureVal-aware
// comparison makes repeated evaluations within one delay window enqueue
// only genuine changes, exactly like the original map-based queue.
func (s *Simulator) evalFanouts(changed []int, t int) {
	s.evalGen++
	for _, id := range changed {
		for _, g := range s.fanouts[id] {
			nd := s.net.Node(g)
			if nd.Kind != logic.KindGate || s.evalSeen[g] == s.evalGen {
				continue
			}
			s.evalSeen[g] = s.evalGen
			var assign uint
			for i, f := range nd.Fanins {
				if s.val[f] {
					assign |= 1 << uint(i)
				}
			}
			nv := nd.Func.Eval(assign)
			cur := s.val[g]
			if s.futureSeen[g] == s.stepGen {
				cur = s.futureVal[g]
			}
			if nv != cur {
				s.futureVal[g] = nv
				s.futureSeen[g] = s.stepGen
				slot := (t + s.delays[g]) % len(s.ring)
				s.ring[slot] = append(s.ring[slot], event{g, nv})
				s.npending++
			}
		}
	}
}

func (s *Simulator) settleCounts() {
	// Functional transitions: settled value differs from cycle start.
	// Only gates that transitioned this cycle (the dirty set) can
	// differ, so the scan is O(changed gates), not O(NumNodes).
	for _, g := range s.dirty {
		if s.val[g] != s.startVal[g] {
			s.counts.GateFunctional++
		}
	}
	s.counts.Cycles++
}

// RunRandom applies n uniformly random input vectors from the given
// seed, one per clock cycle — the paper's 1000-random-vector .vwf
// methodology — and returns the transition counts.
func (s *Simulator) RunRandom(n int, seed int64) Counts {
	// The background context never cancels, so the error is unreachable.
	c, _ := s.RunRandomCtx(context.Background(), n, seed)
	return c
}

// RunRandomCtx is RunRandom with cooperative cancellation at every
// vector boundary: a cancelled context stops the run before the next
// clock cycle and returns ctx's error alongside the counts accumulated
// so far. This is the simulation stage's cancellation point — a sweep
// under -timeout or Ctrl-C never waits for a long vector run to finish.
func (s *Simulator) RunRandomCtx(ctx context.Context, n int, seed int64) (Counts, error) {
	vs := newVectorSource(len(s.net.Inputs), seed)
	for c := 0; c < n; c++ {
		if err := ctx.Err(); err != nil {
			return s.counts, err
		}
		s.Step(vs.next())
	}
	return s.counts, nil
}

// RunVectors applies the given vectors in order.
func (s *Simulator) RunVectors(vectors [][]bool) Counts {
	for _, v := range vectors {
		s.Step(v)
	}
	return s.counts
}

package sim

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netgen"
)

func TestVCDHeaderAndChanges(t *testing.T) {
	net := logic.NewNetwork("v")
	a := net.AddInput("a")
	b := net.AddInput("b")
	y := net.AddGate("y", logic.TTXor2(), a, b)
	net.MarkOutput("y", y)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.EnableVCD(&sb, []int{a, b, y}); err != nil {
		t.Fatal(err)
	}
	s.Step([]bool{true, false}) // a rises; y follows at t=1
	s.Step([]bool{true, true})  // b rises; y falls
	if err := s.VCDErr(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ! a $end",
		"$var wire 1 \" b $end",
		"$var wire 1 # y $end",
		"$dumpvars",
		"#0",   // cycle-0 input change
		"#1",   // y's unit-delay transition
		"#100", // cycle-1 input change
		"#101",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	// Both polarities of y appear.
	if !strings.Contains(out, "1#") || !strings.Contains(out, "0#") {
		t.Fatalf("y transitions incomplete:\n%s", out)
	}
}

func TestVCDWatchSubset(t *testing.T) {
	net := netgen.AdderNetwork(4)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	// Watch only the first sum bit.
	id, ok := net.FindNode("s0")
	if !ok {
		t.Fatal("s0 missing")
	}
	var sb strings.Builder
	if err := s.EnableVCD(&sb, []int{id}); err != nil {
		t.Fatal(err)
	}
	s.RunRandom(20, 3)
	out := sb.String()
	if strings.Count(out, "$var") != 1 {
		t.Fatalf("expected a single watched signal:\n%s", out)
	}
	if strings.Count(out, "#") < 2 {
		t.Fatal("no transitions recorded")
	}
}

func TestVCDRequiresFreshSimulator(t *testing.T) {
	net := netgen.AdderNetwork(2)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	s.RunRandom(1, 1)
	var sb strings.Builder
	if err := s.EnableVCD(&sb, nil); err == nil {
		t.Fatal("EnableVCD after Step should fail")
	}
	s.Reset()
	if err := s.EnableVCD(&sb, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVCDCodes(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		c := vcdCode(i)
		if seen[c] {
			t.Fatalf("code collision at %d: %q", i, c)
		}
		seen[c] = true
		for _, r := range c {
			if r < 33 || r > 126 {
				t.Fatalf("non-printable code byte in %q", c)
			}
		}
	}
}

package sim

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netgen"
)

func TestHeterogeneousSettlesToSameValues(t *testing.T) {
	// Delay assignment changes glitch counts, never settled values.
	net := netgen.MultiplierNetwork(6)
	unit, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	het, err := NewWithDelays(net, DelayHeterogeneous, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for cyc := 0; cyc < 60; cyc++ {
		in := make([]bool, len(net.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		unit.Step(in)
		het.Step(in)
		for id := range unit.Values() {
			if unit.Values()[id] != het.Values()[id] {
				t.Fatalf("cycle %d node %d: settled values differ across delay models", cyc, id)
			}
		}
	}
	// Functional transitions agree; totals differ (extra glitches).
	cu, ch := unit.Counts(), het.Counts()
	if cu.GateFunctional != ch.GateFunctional {
		t.Fatalf("functional transitions differ: %d vs %d", cu.GateFunctional, ch.GateFunctional)
	}
	if ch.Gate <= cu.Gate {
		t.Fatalf("heterogeneous delays should add glitches: unit=%d het=%d", cu.Gate, ch.Gate)
	}
}

func TestHeterogeneousDeterministicPerSeed(t *testing.T) {
	// The multiplier's reconvergent structure makes glitch counts
	// sensitive to the delay assignment (a pure chain would not be).
	net := netgen.MultiplierNetwork(6)
	run := func(seed int64) Counts {
		s, err := NewWithDelays(net, DelayHeterogeneous, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s.RunRandom(200, 9)
	}
	a, b := run(5), run(5)
	if a != b {
		t.Fatalf("same delay seed gave different counts: %+v vs %+v", a, b)
	}
	c := run(6)
	if a == c {
		t.Fatal("different delay seeds gave identical counts (suspicious)")
	}
}

func TestTransportDelayProducesPulses(t *testing.T) {
	// A gate with delay d must reproduce an input pulse shorter than d
	// (transport semantics, i.e. glitch filtering off): two inverters in
	// series with different delays turn one input edge into a pulse at
	// the AND output.
	net := logic.NewNetwork("pulse")
	a := net.AddInput("a")
	inv := net.AddGate("inv", logic.TTNot(), a)
	and := net.AddGate("and", logic.TTAnd2(), a, inv)
	net.MarkOutput("y", and)
	s, err := New(net) // unit delays: a rises -> and sees (1, old inv=1) one step
	if err != nil {
		t.Fatal(err)
	}
	s.Step([]bool{true})
	// a: 0->1 at t0; inv falls at t1; and rises at t1 (a=1, inv still 1)
	// and falls at t2. Two transitions at the AND = one glitch pulse.
	if got := s.NodeTransitions[and]; got != 2 {
		t.Fatalf("AND transitions = %d, want 2 (pulse)", got)
	}
	if s.Values()[and] {
		t.Fatal("AND must settle low")
	}
}

func TestSequentialEquivalenceUnderHeterogeneousDelays(t *testing.T) {
	// Latches capture settled values, so cycle-accurate behaviour is
	// delay-independent. Accumulator: r <= r + a.
	net := logic.NewNetwork("acc")
	w := 4
	a := make([]int, w)
	for i := range a {
		a[i] = net.AddInput("a" + string(rune('0'+i)))
	}
	q := make([]int, w)
	for i := range q {
		q[i] = net.AddLatch("q"+string(rune('0'+i)), false)
	}
	sum, _ := netgen.BuildAdder(net, "s_", q, a, -1)
	for i := range q {
		net.ConnectLatch(q[i], sum[i])
	}
	for i, id := range sum {
		net.MarkOutput("y"+string(rune('0'+i)), id)
	}
	s, err := NewWithDelays(net, DelayHeterogeneous, 17)
	if err != nil {
		t.Fatal(err)
	}
	st := net.InitialLatchState()
	rng := rand.New(rand.NewSource(2))
	for cyc := 0; cyc < 40; cyc++ {
		in := make([]bool, w)
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		s.Step(in)
		ref := net.Eval(in, st)
		for i, o := range net.Outputs {
			if s.Values()[o.Node] != ref[o.Node] {
				t.Fatalf("cycle %d output %d differs", cyc, i)
			}
		}
		st = net.NextLatchState(ref)
	}
}

func BenchmarkSimulateHeterogeneousMult8(b *testing.B) {
	net := netgen.MultiplierNetwork(8)
	s, err := NewWithDelays(net, DelayHeterogeneous, 1)
	if err != nil {
		b.Fatal(err)
	}
	vec := RandomVectors(len(net.Inputs), 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunVectors(vec)
	}
}

// TestLatchChainShiftsOneStagePerClock is the regression test for the
// latch shoot-through bug: a 3-deep shift register of directly
// connected latches must delay its input by exactly 3 cycles.
func TestLatchChainShiftsOneStagePerClock(t *testing.T) {
	net := logic.NewNetwork("shift3")
	a := net.AddInput("a")
	q1 := net.AddLatch("q1", false)
	q2 := net.AddLatch("q2", false)
	q3 := net.AddLatch("q3", false)
	net.ConnectLatch(q1, a)
	net.ConnectLatch(q2, q1)
	net.ConnectLatch(q3, q2)
	net.MarkOutput("y", q3)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []bool{true, false, true, true, false, false, true, false}
	var got []bool
	for _, v := range pattern {
		s.Step([]bool{v})
		got = append(got, s.Values()[q3])
	}
	// Output is the input delayed by 3 (zeros before the pipe fills).
	for i, v := range got {
		want := false
		if i >= 3 {
			want = pattern[i-3]
		}
		if v != want {
			t.Fatalf("cycle %d: shift output %v, want %v (got %v)", i, v, want, got)
		}
	}
}

// TestRandomSequentialNetworksMatchEval fuzzes the simulator contract:
// on random sequential networks (gates + latch feedback), the settled
// state after each Step must match logic.Eval's cycle-accurate
// reference, under both delay models.
func TestRandomSequentialNetworksMatchEval(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := logic.NewNetwork("rnd")
		var pool []int
		for i := 0; i < 3; i++ {
			pool = append(pool, net.AddInput(""))
		}
		var latches []int
		for i := 0; i < 2+rng.Intn(3); i++ {
			q := net.AddLatch("", rng.Intn(2) == 0)
			latches = append(latches, q)
			pool = append(pool, q)
		}
		for i := 0; i < 10+rng.Intn(15); i++ {
			fns := []func() int{
				func() int {
					return net.AddGate("", logic.TTAnd2(), pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
				},
				func() int {
					return net.AddGate("", logic.TTXor2(), pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
				},
				func() int { return net.AddGate("", logic.TTNot(), pool[rng.Intn(len(pool))]) },
				func() int {
					return net.AddGate("", logic.TTMux2(), pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
				},
			}
			pool = append(pool, fns[rng.Intn(len(fns))]())
		}
		// Latch D: any node (including direct latch-to-latch chains).
		for _, q := range latches {
			net.ConnectLatch(q, pool[rng.Intn(len(pool))])
		}
		net.MarkOutput("y", pool[len(pool)-1])
		for _, model := range []DelayModel{DelayUnit, DelayHeterogeneous} {
			s, err := NewWithDelays(net, model, seed)
			if err != nil {
				t.Fatal(err)
			}
			// Step captures latches from the previous settled state before
			// applying inputs, so the reference state after the first Step
			// is one capture past the reset state (all-zero inputs).
			st := net.NextLatchState(net.Eval(make([]bool, 3), net.InitialLatchState()))
			for cyc := 0; cyc < 15; cyc++ {
				in := make([]bool, 3)
				for i := range in {
					in[i] = rng.Intn(2) == 0
				}
				s.Step(in)
				ref := net.Eval(in, st)
				for id := range ref {
					if s.Values()[id] != ref[id] {
						t.Fatalf("seed %d model %v cycle %d node %d: sim %v, eval %v",
							seed, model, cyc, id, s.Values()[id], ref[id])
					}
				}
				st = net.NextLatchState(ref)
			}
		}
	}
}

package sim

import (
	"math/rand"
	"testing"

	"repro/internal/glitch"
	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/netgen"
	"repro/internal/prob"
)

func TestStepMatchesZeroDelayEval(t *testing.T) {
	// The settled state after each Step must equal logic.Eval.
	net := netgen.MultiplierNetwork(5)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for cyc := 0; cyc < 50; cyc++ {
		in := make([]bool, len(net.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		s.Step(in)
		want := net.Eval(in, nil)
		got := s.Values()
		for id := range want {
			if want[id] != got[id] {
				t.Fatalf("cycle %d node %d: sim %v, eval %v", cyc, id, got[id], want[id])
			}
		}
	}
}

func TestSequentialStepMatchesCycleAccurateEval(t *testing.T) {
	// Accumulator: r <= r + a.
	net := logic.NewNetwork("acc")
	w := 4
	a := make([]int, w)
	for i := range a {
		a[i] = net.AddInput("a" + string(rune('0'+i)))
	}
	q := make([]int, w)
	for i := range q {
		q[i] = net.AddLatch("q"+string(rune('0'+i)), false)
	}
	sum, _ := netgen.BuildAdder(net, "s_", q, a, -1)
	for i := range q {
		net.ConnectLatch(q[i], sum[i])
	}
	for i, id := range sum {
		net.MarkOutput("y"+string(rune('0'+i)), id)
	}
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	st := net.InitialLatchState()
	rng := rand.New(rand.NewSource(2))
	for cyc := 0; cyc < 40; cyc++ {
		in := make([]bool, w)
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		s.Step(in)
		val := net.Eval(in, st)
		for i, o := range net.Outputs {
			if s.Values()[o.Node] != val[o.Node] {
				t.Fatalf("cycle %d output %d differs", cyc, i)
			}
		}
		st = net.NextLatchState(val)
	}
}

func TestGlitchCountingOnUnbalancedXor(t *testing.T) {
	// y = (a XOR b) XOR c via a chain: c arrives "earlier" than the
	// internal xor result, so flipping a and c together can glitch y.
	net := logic.NewNetwork("chain")
	a := net.AddInput("a")
	b := net.AddInput("b")
	c := net.AddInput("c")
	x1 := net.AddGate("x1", logic.TTXor2(), a, b)
	y := net.AddGate("y", logic.TTXor2(), x1, c)
	net.MarkOutput("y", y)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	// From (0,0,0): y=0. Flip a and c simultaneously.
	// t0: a=1,c=1 -> y sees c change: at t1, y = x1(old)=0 xor 1 = 1;
	// x1 becomes 1 at t1; at t2 y = 1 xor 1 = 0. Two transitions at y,
	// net value unchanged => 2 total, functional 0 at y.
	s.Step([]bool{false, false, false})
	s.Reset()
	s.Step([]bool{true, false, true})
	counts := s.Counts()
	yTrans := s.NodeTransitions[y]
	if yTrans != 2 {
		t.Fatalf("y transitions = %d, want 2 (glitch up+down)", yTrans)
	}
	if counts.Glitches() < 2 {
		t.Fatalf("glitches = %d, want >= 2", counts.Glitches())
	}
}

func TestBalancedXorDoesNotGlitch(t *testing.T) {
	// y = a XOR b: both inputs arrive at t0, y changes at most once.
	net := logic.NewNetwork("bal")
	a := net.AddInput("a")
	b := net.AddInput("b")
	y := net.AddGate("y", logic.TTXor2(), a, b)
	net.MarkOutput("y", y)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	counts := s.RunRandom(500, 7)
	if g := counts.Glitches(); g != 0 {
		t.Fatalf("balanced xor glitched %d times", g)
	}
}

func TestCountsDecompose(t *testing.T) {
	net := netgen.MultiplierNetwork(6)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	c := s.RunRandom(200, 3)
	if c.Cycles != 200 {
		t.Fatalf("cycles = %d", c.Cycles)
	}
	if c.Gate <= 0 || c.GateFunctional <= 0 {
		t.Fatal("expected gate activity")
	}
	if c.Glitches() < 0 || c.GateFunctional > c.Gate {
		t.Fatalf("inconsistent counts: %+v", c)
	}
	if c.Total() != c.Gate+c.Latch {
		t.Fatalf("Total inconsistent: %+v", c)
	}
	if c.TogglesPerCycle() <= 0 {
		t.Fatal("toggles per cycle should be positive")
	}
}

func TestMultiplierGlitchesInSimulation(t *testing.T) {
	net := netgen.MultiplierNetwork(8)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	c := s.RunRandom(300, 11)
	if c.Glitches() == 0 {
		t.Fatal("array multiplier must glitch under random stimulus")
	}
	share := float64(c.Glitches()) / float64(c.Gate)
	if share < 0.05 {
		t.Fatalf("glitch share suspiciously low: %v", share)
	}
}

func TestResetClearsState(t *testing.T) {
	net := netgen.AdderNetwork(4)
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	s.RunRandom(50, 1)
	s.Reset()
	c := s.Counts()
	if c.Gate != 0 || c.Cycles != 0 || c.Latch != 0 {
		t.Fatalf("reset did not clear counts: %+v", c)
	}
	for id, n := range s.NodeTransitions {
		if n != 0 {
			t.Fatalf("node %d transitions not cleared", id)
		}
	}
}

func TestRandomVectorsReproducible(t *testing.T) {
	a := RandomVectors(10, 20, 42)
	b := RandomVectors(10, 20, 42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("vectors not reproducible")
			}
		}
	}
	c := RandomVectors(10, 20, 43)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical vectors")
	}
}

// TestEstimatorTracksSimulator is the key validation of §4: the
// glitch-aware analytic estimate should correlate with measured toggle
// counts across structures, and both should agree that the glitch-aware
// estimate beats the glitch-blind one on glitchy logic.
func TestEstimatorTracksSimulator(t *testing.T) {
	nets := []*logic.Network{
		netgen.AdderNetwork(8),
		netgen.MultiplierNetwork(6),
		netgen.PartialDatapathNetwork(netgen.FUAdd, 4, 4, 6),
		netgen.PartialDatapathNetwork(netgen.FUAdd, 7, 1, 6),
	}
	var estRatios []float64
	for _, net := range nets {
		s, err := New(net)
		if err != nil {
			t.Fatal(err)
		}
		c := s.RunRandom(2000, 17)
		measured := float64(c.Gate) / float64(c.Cycles)
		est := glitch.EstimateNetwork(net, prob.DefaultSources()).TotalActivity(net)
		ratio := est / measured
		estRatios = append(estRatios, ratio)
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("%s: estimate %v vs measured %v (ratio %v) out of range", net.Name, est, measured, ratio)
		}
	}
	// Ordering: the unbalanced-mux datapath must be worse than balanced
	// both measured and estimated (checked in glitch tests for the
	// estimate; here for the measurement).
	bal := nets[2]
	unbal := nets[3]
	sb, _ := New(bal)
	su, _ := New(unbal)
	cb := sb.RunRandom(2000, 19)
	cu := su.RunRandom(2000, 19)
	if cb.Gate >= cu.Gate {
		t.Fatalf("measured: balanced muxes (%d) should toggle less than unbalanced (%d)", cb.Gate, cu.Gate)
	}
}

func TestSimOnMappedNetworkMatchesOriginalFunction(t *testing.T) {
	net := netgen.MultiplierNetwork(5)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := New(net)
	s2, _ := New(res.Mapped)
	rng := rand.New(rand.NewSource(5))
	for cyc := 0; cyc < 100; cyc++ {
		in := make([]bool, len(net.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		s1.Step(in)
		// Align by name.
		in2 := make([]bool, len(res.Mapped.Inputs))
		for i, id := range res.Mapped.Inputs {
			nm := res.Mapped.Node(id).Name
			for j, id1 := range net.Inputs {
				if net.Node(id1).Name == nm {
					in2[i] = in[j]
				}
			}
		}
		s2.Step(in2)
		for i := range net.Outputs {
			v1 := s1.Values()[net.Outputs[i].Node]
			v2 := s2.Values()[res.Mapped.Outputs[i].Node]
			if v1 != v2 {
				t.Fatalf("cycle %d: mapped sim diverges on output %d", cyc, i)
			}
		}
	}
}

func BenchmarkSimulateMult8(b *testing.B) {
	net := netgen.MultiplierNetwork(8)
	s, err := New(net)
	if err != nil {
		b.Fatal(err)
	}
	vec := RandomVectors(len(net.Inputs), 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunVectors(vec)
	}
}

func BenchmarkSimulateMappedMult8(b *testing.B) {
	net := netgen.MultiplierNetwork(8)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(res.Mapped)
	if err != nil {
		b.Fatal(err)
	}
	vec := RandomVectors(len(res.Mapped.Inputs), 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunVectors(vec)
	}
}

package prob

import "repro/internal/logic"

// Method selects the activity propagation model for network estimation.
type Method int

const (
	// MethodNajm propagates activities with Najm's Boolean-difference
	// formula (Eq. 1), the glitch-blind baseline.
	MethodNajm Method = iota
	// MethodChouRoy propagates activities with the pairwise
	// simultaneous-switching model (Eq. 2).
	MethodChouRoy
)

// SourceValues configures the probability/activity assumed at
// combinational sources. The paper assumes P = 0.5 and s = 0.5 at
// primary inputs (§4); latch (register) outputs get the same treatment
// by default since datapath registers carry fresh data each cycle.
type SourceValues struct {
	InputP, InputS float64
	LatchP, LatchS float64
}

// DefaultSources returns the paper's source assumptions.
func DefaultSources() SourceValues {
	return SourceValues{InputP: 0.5, InputS: 0.5, LatchP: 0.5, LatchS: 0.5}
}

// Estimate holds per-node signal probabilities and zero-delay switching
// activities for a network.
type Estimate struct {
	P []float64
	S []float64
}

// TotalActivity sums the activity over gate nodes only (sources switch
// for free as far as the fabric is concerned; their power is charged to
// the producing gates/IOBs).
func (e Estimate) TotalActivity(net *logic.Network) float64 {
	total := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			total += e.S[nd.ID]
		}
	}
	return total
}

// EstimateNetwork propagates signal probabilities and switching
// activities through the combinational network in topological order.
// This is the zero-delay (glitch-free) estimate; the glitch package
// provides the timed variant.
func EstimateNetwork(net *logic.Network, method Method, src SourceValues) Estimate {
	e := Estimate{
		P: make([]float64, net.NumNodes()),
		S: make([]float64, net.NumNodes()),
	}
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		switch nd.Kind {
		case logic.KindInput:
			e.P[id], e.S[id] = src.InputP, src.InputS
		case logic.KindLatchOut:
			e.P[id], e.S[id] = src.LatchP, src.LatchS
		case logic.KindConst:
			if nd.ConstVal {
				e.P[id] = 1
			}
			e.S[id] = 0
		case logic.KindGate:
			n := len(nd.Fanins)
			p := make([]float64, n)
			s := make([]float64, n)
			for i, f := range nd.Fanins {
				p[i], s[i] = e.P[f], e.S[f]
			}
			e.P[id] = SignalProb(nd.Func, p)
			switch method {
			case MethodNajm:
				e.S[id] = NajmActivity(nd.Func, p, s)
			default:
				e.S[id] = ChouRoyActivity(nd.Func, p, s)
			}
		}
	}
	return e
}

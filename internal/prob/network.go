package prob

import (
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/logic"
)

// Method selects the activity propagation model for network estimation.
type Method int

const (
	// MethodNajm propagates activities with Najm's Boolean-difference
	// formula (Eq. 1), the glitch-blind baseline.
	MethodNajm Method = iota
	// MethodChouRoy propagates activities with the pairwise
	// simultaneous-switching model (Eq. 2).
	MethodChouRoy
)

// SourceValues configures the probability/activity assumed at
// combinational sources. The paper assumes P = 0.5 and s = 0.5 at
// primary inputs (§4); latch (register) outputs get the same treatment
// by default since datapath registers carry fresh data each cycle.
type SourceValues struct {
	InputP, InputS float64
	LatchP, LatchS float64
}

// DefaultSources returns the paper's source assumptions.
func DefaultSources() SourceValues {
	return SourceValues{InputP: 0.5, InputS: 0.5, LatchP: 0.5, LatchS: 0.5}
}

// Estimate holds per-node signal probabilities and zero-delay switching
// activities for a network.
type Estimate struct {
	P []float64
	S []float64
}

// TotalActivity sums the activity over gate nodes only (sources switch
// for free as far as the fabric is concerned; their power is charged to
// the producing gates/IOBs).
func (e Estimate) TotalActivity(net *logic.Network) float64 {
	total := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			total += e.S[nd.ID]
		}
	}
	return total
}

// appendEvalKey renders a (function, p, s) evaluation site as a memo
// key: the characterization identity followed by the raw bit patterns
// of the fanin vectors. Bit patterns rather than values keep the key
// exact — two sites share a key only when a fresh evaluation would be
// bit-identical.
func appendEvalKey(b []byte, id uint64, method Method, p, s []float64) []byte {
	b = binary.LittleEndian.AppendUint64(b, id)
	b = append(b, byte(method))
	for _, v := range p {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	for _, v := range s {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// maxNetMemoEntries bounds the pooled network-evaluation memo: past the
// cap it is dropped and rebuilt rather than growing without bound
// across a long session.
const maxNetMemoEntries = 1 << 16

// netScratch is the pooled working state of EstimateNetwork. The memo
// persists across calls — its keys are exact (characterization identity
// plus float bit patterns), so a hit returns precisely what a fresh
// evaluation would, on any network.
type netScratch struct {
	sc     *Scratch
	p, s   []float64
	keyBuf []byte
	memo   map[string][2]float64
}

var netPool = sync.Pool{New: func() any {
	return &netScratch{sc: NewScratch(), memo: make(map[string][2]float64)}
}}

// EstimateNetwork propagates signal probabilities and switching
// activities through the combinational network in topological order.
// This is the zero-delay (glitch-free) estimate; the glitch package
// provides the timed variant.
//
// Evaluation runs against interned truth-table characterizations with
// per-call reusable scratch, and (char, p, s) sites are memoized within
// the call: bit-sliced datapaths instantiate the same LUT shape with
// the same fanin statistics across every slice, so most gates hit the
// memo instead of re-summing the on-set.
func EstimateNetwork(net *logic.Network, method Method, src SourceValues) Estimate {
	e := Estimate{
		P: make([]float64, net.NumNodes()),
		S: make([]float64, net.NumNodes()),
	}
	ns := netPool.Get().(*netScratch)
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		switch nd.Kind {
		case logic.KindInput:
			e.P[id], e.S[id] = src.InputP, src.InputS
		case logic.KindLatchOut:
			e.P[id], e.S[id] = src.LatchP, src.LatchS
		case logic.KindConst:
			if nd.ConstVal {
				e.P[id] = 1
			}
			e.S[id] = 0
		case logic.KindGate:
			n := len(nd.Fanins)
			if cap(ns.p) < n {
				ns.p = make([]float64, n)
				ns.s = make([]float64, n)
			} else {
				ns.p, ns.s = ns.p[:n], ns.s[:n]
			}
			p, s := ns.p, ns.s
			for i, f := range nd.Fanins {
				p[i], s[i] = e.P[f], e.S[f]
			}
			c := Characterize(nd.Func)
			ns.keyBuf = appendEvalKey(ns.keyBuf[:0], c.id, method, p, s)
			if v, ok := ns.memo[string(ns.keyBuf)]; ok {
				e.P[id], e.S[id] = v[0], v[1]
				continue
			}
			py := c.SignalProb(p, ns.sc)
			var sy float64
			switch method {
			case MethodNajm:
				sy = c.NajmActivity(p, s, ns.sc)
			default:
				sy = c.ChouRoyFromProb(py, p, s, ns.sc)
			}
			e.P[id], e.S[id] = py, sy
			if len(ns.memo) >= maxNetMemoEntries {
				ns.memo = make(map[string][2]float64)
			}
			ns.memo[string(ns.keyBuf)] = [2]float64{py, sy}
		}
	}
	netPool.Put(ns)
	return e
}

package prob

import (
	"math"
	"testing"

	"repro/internal/logic"
	"repro/internal/netgen"
)

func TestExactProbabilitiesTreeMatchesPropagation(t *testing.T) {
	// On a fanout-free tree the heuristic propagation is already exact.
	net := logic.NewNetwork("tree")
	a := net.AddInput("a")
	b := net.AddInput("b")
	c := net.AddInput("c")
	d := net.AddInput("d")
	g1 := net.AddGate("g1", logic.TTAnd2(), a, b)
	g2 := net.AddGate("g2", logic.TTOr2(), c, d)
	g3 := net.AddGate("g3", logic.TTXor2(), g1, g2)
	net.MarkOutput("y", g3)

	exact, err := ExactProbabilities(net, DefaultSources(), 0)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateNetwork(net, MethodChouRoy, DefaultSources())
	for _, id := range []int{g1, g2, g3} {
		if math.Abs(exact[id]-est.P[id]) > 1e-12 {
			t.Fatalf("node %d: exact %v vs propagated %v must agree on a tree", id, exact[id], est.P[id])
		}
	}
}

func TestExactProbabilitiesSeesReconvergence(t *testing.T) {
	// y = a AND (NOT a): exactly 0, but independence-assuming
	// propagation reports P(a)*(1-P(a)) = 0.25.
	net := logic.NewNetwork("reconv")
	a := net.AddInput("a")
	na := net.AddGate("na", logic.TTNot(), a)
	y := net.AddGate("y", logic.TTAnd2(), a, na)
	net.MarkOutput("y", y)

	exact, err := ExactProbabilities(net, DefaultSources(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact[y] != 0 {
		t.Fatalf("exact P(a AND NOT a) = %v, want 0", exact[y])
	}
	est := EstimateNetwork(net, MethodChouRoy, DefaultSources())
	if est.P[y] == 0 {
		t.Fatal("the heuristic should NOT see the reconvergence (that is its known error)")
	}
}

func TestExactProbabilitiesAdder(t *testing.T) {
	// Every sum bit of a ripple adder with uniform inputs is balanced.
	net := netgen.AdderNetwork(6)
	exact, err := ExactProbabilities(net, DefaultSources(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range net.Outputs {
		if math.Abs(exact[o.Node]-0.5) > 1e-9 {
			t.Fatalf("sum bit %s probability %v, want 0.5", o.Name, exact[o.Node])
		}
	}
}

func TestExactProbabilitiesHeuristicErrorBounded(t *testing.T) {
	// On the multiplier the heuristic propagation drifts from exact, but
	// must stay within a sane band (validating the estimator's fitness
	// for cost ranking).
	net := netgen.MultiplierNetwork(4)
	exact, err := ExactProbabilities(net, DefaultSources(), 0)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateNetwork(net, MethodChouRoy, DefaultSources())
	worst := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind != logic.KindGate {
			continue
		}
		if d := math.Abs(exact[nd.ID] - est.P[nd.ID]); d > worst {
			worst = d
		}
	}
	if worst > 0.25 {
		t.Fatalf("heuristic probability error %v too large", worst)
	}
	if worst == 0 {
		t.Fatal("expected some reconvergence error on a multiplier")
	}
}

func TestExactProbabilitiesNodeBudget(t *testing.T) {
	net := netgen.MultiplierNetwork(8)
	if _, err := ExactProbabilities(net, DefaultSources(), 64); err == nil {
		t.Fatal("tiny node budget should be exceeded")
	}
}

func TestExactProbabilitiesConstAndBias(t *testing.T) {
	net := logic.NewNetwork("bias")
	a := net.AddInput("a")
	one := net.AddConst("one", true)
	g := net.AddGate("g", logic.TTAnd2(), a, one)
	net.MarkOutput("y", g)
	src := DefaultSources()
	src.InputP = 0.3
	exact, err := ExactProbabilities(net, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact[g]-0.3) > 1e-12 {
		t.Fatalf("P = %v, want 0.3", exact[g])
	}
	if exact[one] != 1 {
		t.Fatal("constant probability wrong")
	}
}

// Package prob implements signal probability and switching-activity
// (transition-density) estimation for Boolean functions and logic
// networks, following the lineage the paper builds on (§4):
//
//   - Najm's transition density via Boolean differences (Eq. 1) [17],
//   - the Chou–Roy pairwise model that accounts for simultaneous input
//     switching, s(y) = 2(P(y(t)) − P(y(t)y(t+T))) (Eq. 2) [7],
//   - a Krishnamurthy–Tollis style weighted averaging of per-cut
//     probability estimates to soften reconvergent-fanout error [12].
//
// All computations treat fanins as independent, which is the standard
// assumption of these estimators; the glitch package layers the
// unit-delay time dimension on top.
package prob

import (
	"repro/internal/bitvec"
)

// SignalProb returns P(f = 1) given independent input probabilities p,
// by exact enumeration of the on-set.
func SignalProb(f *bitvec.TruthTable, p []float64) float64 {
	n := f.NumVars()
	if len(p) != n {
		panic("prob: probability vector length mismatch")
	}
	total := 0.0
	for m := 0; m < 1<<n; m++ {
		if !f.Get(uint(m)) {
			continue
		}
		prod := 1.0
		for i := 0; i < n; i++ {
			if uint(m)&(1<<uint(i)) != 0 {
				prod *= p[i]
			} else {
				prod *= 1 - p[i]
			}
		}
		total += prod
	}
	return total
}

// NajmActivity returns the transition density of f under Najm's model
// (paper Eq. 1): s(y) = sum_i P(df/dx_i) * s(x_i). It ignores
// simultaneous switching and so overestimates activity for wide gates.
func NajmActivity(f *bitvec.TruthTable, p, s []float64) float64 {
	n := f.NumVars()
	if len(p) != n || len(s) != n {
		panic("prob: vector length mismatch")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if s[i] == 0 {
			continue
		}
		total += SignalProb(f.BooleanDiff(i), p) * s[i]
	}
	return total
}

// clampActivity limits s so the pairwise joint distribution stays valid:
// s/2 <= min(p, 1-p). Estimated activities occasionally violate this by
// rounding; clamping keeps PairProb a true probability.
func clampActivity(p, s float64) float64 {
	limit := 2 * minf(p, 1-p)
	if s > limit {
		return limit
	}
	if s < 0 {
		return 0
	}
	return s
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// PairProb returns P(y(t) = 1 AND y(t+T) = 1) under the Chou–Roy model:
// each input i is a two-state process with marginal p[i] and transition
// probability s[i] per unit period, independent across inputs.
func PairProb(f *bitvec.TruthTable, p, s []float64) float64 {
	n := f.NumVars()
	if len(p) != n || len(s) != n {
		panic("prob: vector length mismatch")
	}
	// Per-input joint over (x(t), x(t+T)): J[a][b].
	type joint [2][2]float64
	js := make([]joint, n)
	for i := 0; i < n; i++ {
		si := clampActivity(p[i], s[i])
		half := si / 2
		js[i] = joint{
			{1 - p[i] - half, half},
			{half, p[i] - half},
		}
	}
	// Collect the on-set once; the sum runs over on-set pairs.
	var onset []uint
	for m := 0; m < 1<<n; m++ {
		if f.Get(uint(m)) {
			onset = append(onset, uint(m))
		}
	}
	total := 0.0
	for _, u := range onset {
		for _, v := range onset {
			prod := 1.0
			for i := 0; i < n; i++ {
				a := (u >> uint(i)) & 1
				b := (v >> uint(i)) & 1
				prod *= js[i][a][b]
				if prod == 0 {
					break
				}
			}
			total += prod
		}
	}
	return total
}

// ChouRoyActivity returns the normalized switching activity of f under
// the Chou–Roy simultaneous-switching model (paper Eq. 2):
// s(y) = 2 (P(y) − P(y(t) y(t+T))).
func ChouRoyActivity(f *bitvec.TruthTable, p, s []float64) float64 {
	py := SignalProb(f, p)
	pp := PairProb(f, p, s)
	a := 2 * (py - pp)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// WeightedAverage combines independent estimates of the same probability
// with the given nonnegative weights, in the spirit of the
// Krishnamurthy–Tollis improved-probability technique: estimates derived
// from larger (more encompassing) supports receive larger weights.
// Zero total weight yields the plain mean.
func WeightedAverage(estimates, weights []float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	if len(estimates) != len(weights) {
		panic("prob: estimate/weight length mismatch")
	}
	num, den := 0.0, 0.0
	for i, e := range estimates {
		num += e * weights[i]
		den += weights[i]
	}
	if den == 0 {
		sum := 0.0
		for _, e := range estimates {
			sum += e
		}
		return sum / float64(len(estimates))
	}
	return num / den
}

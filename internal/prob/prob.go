// Package prob implements signal probability and switching-activity
// (transition-density) estimation for Boolean functions and logic
// networks, following the lineage the paper builds on (§4):
//
//   - Najm's transition density via Boolean differences (Eq. 1) [17],
//   - the Chou–Roy pairwise model that accounts for simultaneous input
//     switching, s(y) = 2(P(y(t)) − P(y(t)y(t+T))) (Eq. 2) [7],
//   - a Krishnamurthy–Tollis style weighted averaging of per-cut
//     probability estimates to soften reconvergent-fanout error [12].
//
// All computations treat fanins as independent, which is the standard
// assumption of these estimators; the glitch package layers the
// unit-delay time dimension on top.
package prob

import (
	"repro/internal/bitvec"
)

// SignalProb returns P(f = 1) given independent input probabilities p,
// by exact enumeration of the on-set.
func SignalProb(f *bitvec.TruthTable, p []float64) float64 {
	sc := scratchPool.Get().(*Scratch)
	v := Characterize(f).SignalProb(p, sc)
	scratchPool.Put(sc)
	return v
}

// NajmActivity returns the transition density of f under Najm's model
// (paper Eq. 1): s(y) = sum_i P(df/dx_i) * s(x_i). It ignores
// simultaneous switching and so overestimates activity for wide gates.
func NajmActivity(f *bitvec.TruthTable, p, s []float64) float64 {
	sc := scratchPool.Get().(*Scratch)
	v := Characterize(f).NajmActivity(p, s, sc)
	scratchPool.Put(sc)
	return v
}

// clamp01 forces a propagated probability back into [0,1]. SignalProb
// sums products of independent marginals, so rounding can overshoot the
// unit interval by an ulp or two.
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// clampActivity limits s so the pairwise joint distribution stays valid:
// s/2 <= min(p, 1-p). Estimated activities occasionally violate this by
// rounding; clamping keeps PairProb a true probability. p is clamped
// into [0,1] first — a propagated probability of 1+ε would otherwise
// make the limit negative and the resulting joint invalid.
func clampActivity(p, s float64) float64 {
	p = clamp01(p)
	limit := 2 * minf(p, 1-p)
	if s > limit {
		return limit
	}
	if s < 0 {
		return 0
	}
	return s
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// PairProb returns P(y(t) = 1 AND y(t+T) = 1) under the Chou–Roy model:
// each input i is a two-state process with marginal p[i] and transition
// probability s[i] per unit period, independent across inputs.
func PairProb(f *bitvec.TruthTable, p, s []float64) float64 {
	sc := scratchPool.Get().(*Scratch)
	v := Characterize(f).PairProb(p, s, sc)
	scratchPool.Put(sc)
	return v
}

// ChouRoyActivity returns the normalized switching activity of f under
// the Chou–Roy simultaneous-switching model (paper Eq. 2):
// s(y) = 2 (P(y) − P(y(t) y(t+T))).
func ChouRoyActivity(f *bitvec.TruthTable, p, s []float64) float64 {
	sc := scratchPool.Get().(*Scratch)
	v := Characterize(f).ChouRoyActivity(p, s, sc)
	scratchPool.Put(sc)
	return v
}

// WeightedAverage combines independent estimates of the same probability
// with the given nonnegative weights, in the spirit of the
// Krishnamurthy–Tollis improved-probability technique: estimates derived
// from larger (more encompassing) supports receive larger weights.
// Negative weights panic — mixed signs can cancel the denominator to
// near zero and launch the result far outside [0,1]. Zero total weight
// yields the plain mean.
func WeightedAverage(estimates, weights []float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	if len(estimates) != len(weights) {
		panic("prob: estimate/weight length mismatch")
	}
	num, den := 0.0, 0.0
	for i, e := range estimates {
		if weights[i] < 0 {
			panic("prob: negative weight")
		}
		num += e * weights[i]
		den += weights[i]
	}
	if den == 0 {
		sum := 0.0
		for _, e := range estimates {
			sum += e
		}
		return sum / float64(len(estimates))
	}
	return num / den
}

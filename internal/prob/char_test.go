package prob

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitvec"
)

// ---------------------------------------------------------------------
// Verbatim pre-vectorization reference implementations. These are the
// scalar estimators exactly as they stood before the characterized
// (Char) fast path landed, kept as the bit-identity oracle: the
// vectorized code promises *identical* floats, not merely close ones,
// because flow-stage golden hashes depend on the exact bit patterns.
// (refClampActivity also preserves the old missing p-clamp; see
// TestClampActivityClampsProbability.)
// ---------------------------------------------------------------------

func refSignalProb(f *bitvec.TruthTable, p []float64) float64 {
	n := f.NumVars()
	if len(p) != n {
		panic("prob: probability vector length mismatch")
	}
	total := 0.0
	for m := 0; m < 1<<n; m++ {
		if !f.Get(uint(m)) {
			continue
		}
		prod := 1.0
		for i := 0; i < n; i++ {
			if uint(m)&(1<<uint(i)) != 0 {
				prod *= p[i]
			} else {
				prod *= 1 - p[i]
			}
		}
		total += prod
	}
	return total
}

func refNajmActivity(f *bitvec.TruthTable, p, s []float64) float64 {
	n := f.NumVars()
	if len(p) != n || len(s) != n {
		panic("prob: vector length mismatch")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if s[i] == 0 {
			continue
		}
		total += refSignalProb(f.BooleanDiff(i), p) * s[i]
	}
	return total
}

func refClampActivity(p, s float64) float64 {
	limit := 2 * refMinf(p, 1-p)
	if s > limit {
		return limit
	}
	if s < 0 {
		return 0
	}
	return s
}

func refMinf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func refPairProb(f *bitvec.TruthTable, p, s []float64) float64 {
	n := f.NumVars()
	if len(p) != n || len(s) != n {
		panic("prob: vector length mismatch")
	}
	type joint [2][2]float64
	js := make([]joint, n)
	for i := 0; i < n; i++ {
		si := refClampActivity(p[i], s[i])
		half := si / 2
		js[i] = joint{
			{1 - p[i] - half, half},
			{half, p[i] - half},
		}
	}
	var onset []uint
	for m := 0; m < 1<<n; m++ {
		if f.Get(uint(m)) {
			onset = append(onset, uint(m))
		}
	}
	total := 0.0
	for _, u := range onset {
		for _, v := range onset {
			prod := 1.0
			for i := 0; i < n; i++ {
				a := (u >> uint(i)) & 1
				b := (v >> uint(i)) & 1
				prod *= js[i][a][b]
				if prod == 0 {
					break
				}
			}
			total += prod
		}
	}
	return total
}

func refChouRoyActivity(f *bitvec.TruthTable, p, s []float64) float64 {
	py := refSignalProb(f, p)
	pp := refPairProb(f, p, s)
	a := 2 * (py - pp)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// randomTable returns a random n-variable truth table.
func randomTable(rng *rand.Rand, n int) *bitvec.TruthTable {
	tt := bitvec.New(n)
	for m := 0; m < 1<<n; m++ {
		if rng.Intn(2) == 0 {
			tt.Set(uint(m), true)
		}
	}
	return tt
}

// randomPS draws p and s vectors from [0,1], forcing a healthy share of
// exact 0/1 entries — the degenerate marginals where the joint
// distribution collapses and the prod==0 early-out triggers.
func randomPS(rng *rand.Rand, n int) (p, s []float64) {
	p = make([]float64, n)
	s = make([]float64, n)
	for i := range p {
		switch rng.Intn(8) {
		case 0:
			p[i] = 0
		case 1:
			p[i] = 1
		default:
			p[i] = rng.Float64()
		}
		switch rng.Intn(8) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = 1
		default:
			s[i] = rng.Float64()
		}
	}
	return p, s
}

// TestCharMatchesScalarReference is the bit-identity property test: for
// random truth tables (including ones past pairCodeMaxVars, covering the
// uncached pair path) and random p/s vectors with degenerate 0/1
// entries, every characterized estimator must return *exactly* the float
// the scalar enumeration returned — on the first (cold) evaluation and
// again against warm caches.
func TestCharMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(6)
		if trial%29 == 0 {
			n = pairCodeMaxVars + 1 // pair-code fallback path
		}
		tt := randomTable(rng, n)
		p, s := randomPS(rng, n)
		for round := 0; round < 2; round++ {
			if got, want := SignalProb(tt, p), refSignalProb(tt, p); got != want {
				t.Fatalf("trial %d round %d n=%d: SignalProb %v != scalar %v", trial, round, n, got, want)
			}
			if got, want := NajmActivity(tt, p, s), refNajmActivity(tt, p, s); got != want {
				t.Fatalf("trial %d round %d n=%d: NajmActivity %v != scalar %v", trial, round, n, got, want)
			}
			if got, want := PairProb(tt, p, s), refPairProb(tt, p, s); got != want {
				t.Fatalf("trial %d round %d n=%d: PairProb %v != scalar %v", trial, round, n, got, want)
			}
			if got, want := ChouRoyActivity(tt, p, s), refChouRoyActivity(tt, p, s); got != want {
				t.Fatalf("trial %d round %d n=%d: ChouRoyActivity %v != scalar %v", trial, round, n, got, want)
			}
		}
	}
}

// TestCharacterizeInternsByContent checks that structurally identical
// tables share one characterization (pointer equality == functional
// equality, the property network-level memo keys rely on).
func TestCharacterizeInternsByContent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomTable(rng, 4)
	b := bitvec.New(4)
	for m := 0; m < 16; m++ {
		b.Set(uint(m), a.Get(uint(m)))
	}
	if a == b {
		t.Fatal("test needs distinct table pointers")
	}
	ca, cb := Characterize(a), Characterize(b)
	if ca != cb {
		t.Fatal("identical tables got distinct characterizations")
	}
	if ca.ID() != cb.ID() {
		t.Fatal("shared characterization with distinct IDs")
	}
}

// TestClampActivityClampsProbability is the regression test for the
// missing probability clamp: a propagated p one ulp outside [0,1] made
// the old limit negative, so clampActivity returned a *negative*
// activity that then poisoned the pairwise joint distribution.
func TestClampActivityClampsProbability(t *testing.T) {
	over := 1 + 1e-12
	under := -1e-12
	// The fixed code treats out-of-range p as its nearest valid marginal:
	// both degenerate marginals admit zero switching.
	if got := clampActivity(over, 0.5); got != 0 {
		t.Fatalf("clampActivity(1+eps, 0.5) = %v, want 0", got)
	}
	if got := clampActivity(under, 0.5); got != 0 {
		t.Fatalf("clampActivity(-eps, 0.5) = %v, want 0", got)
	}
	// The reference still reproduces the bug; if it stops failing this
	// way the regression test has lost its subject.
	if ref := refClampActivity(over, 0.5); ref >= 0 {
		t.Fatalf("reference clamp no longer negative (%v); update this test", ref)
	}
	// In-range behavior is unchanged.
	for _, tc := range []struct{ p, s, want float64 }{
		{0.5, 0.3, 0.3},
		{0.5, 1.5, 1.0},
		{0.25, 0.9, 0.5},
		{0.5, -0.2, 0},
		{0, 0.7, 0},
		{1, 0.7, 0},
	} {
		if got := clampActivity(tc.p, tc.s); got != tc.want {
			t.Fatalf("clampActivity(%v, %v) = %v, want %v", tc.p, tc.s, got, tc.want)
		}
		if ref := refClampActivity(tc.p, tc.s); ref != tc.want {
			t.Fatalf("reference clampActivity(%v, %v) = %v, want %v", tc.p, tc.s, ref, tc.want)
		}
	}
}

// TestWeightedAveragePanicsOnNegativeWeight checks that a negative
// weight — which silently skews or sign-flips the average — is rejected
// loudly instead.
func TestWeightedAveragePanicsOnNegativeWeight(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("negative weight accepted")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "negative weight") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	WeightedAverage([]float64{0.5, 0.5}, []float64{1, -0.25})
}

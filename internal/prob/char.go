package prob

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
)

// This file implements the vectorized estimator core: a per-truth-table
// precomputed characterization (Char) that the package-level estimation
// functions and the glitch package evaluate against, instead of
// re-enumerating 2^n minterms and re-deriving BooleanDiff tables on
// every call.
//
// A Char caches three things:
//
//   - the on-set minterm list (ascending), so SignalProb and PairProb
//     iterate exactly the terms the scalar summation added and skip the
//     off-set entirely;
//   - the per-variable Boolean-difference characterizations driving
//     Najm's formula (Eq. 1), derived once instead of per call;
//   - the factored per-input joint codes of the Chou–Roy pairwise sum
//     (Eq. 2): for every on-set pair (u, v) and input i, the 2-bit
//     index (u_i, v_i) into input i's 2×2 joint distribution, packed
//     into one uint32 per pair.
//
// Chars are interned by table content in a package-global cache, so two
// structurally identical LUTs (ubiquitous in bit-sliced datapaths)
// share one characterization and pointer equality on *Char means
// functional equality — which is what makes (char, p, s) memoization in
// the network estimators sound.
//
// Every evaluation keeps the scalar implementation's summation and
// multiplication order exactly, so results are bit-identical to the
// historical per-call enumeration (asserted by TestCharMatchesScalar*).

// pairCodeMaxVars bounds the precomputed pair-code table: beyond 6
// variables the on-set can reach 2^n entries and the pair table grows
// as its square, so wider tables fall back to extracting the joint
// indexes on the fly (same arithmetic, no cache).
const pairCodeMaxVars = 6

// Char is the precomputed characterization of one Boolean function.
// Obtain one with Characterize; the zero value is not usable. A Char is
// immutable after construction and safe for concurrent use.
type Char struct {
	tt    *bitvec.TruthTable
	n     int
	onset []uint16 // ascending on-set minterms

	// id is the process-unique characterization identity memoization
	// keys embed (pointer identity without unsafe).
	id uint64

	pairOnce  sync.Once
	pairCodes []uint32 // len(onset)^2 packed joint indexes; nil if n > pairCodeMaxVars

	diffOnce sync.Once
	diffs    []*Char // per-variable BooleanDiff characterizations
}

// charSeq allocates Char identities.
var charSeq atomic.Uint64

// interns is the global content-keyed characterization cache.
var interns sync.Map // string -> *Char

// charByPtr is a pointer-keyed front cache over the content interns.
// Truth-table pointers are stable for the life of a network, so the
// warm estimation path resolves its characterization here without
// rendering the content key (which allocates). Capped drop-and-rebuild
// keeps a churn of throwaway tables from pinning unbounded memory.
var (
	charPtrMu sync.RWMutex
	charByPtr = make(map[*bitvec.TruthTable]*Char)
)

// maxPtrCacheEntries bounds charByPtr; past the cap it is dropped and
// rebuilt from subsequent lookups.
const maxPtrCacheEntries = 1 << 16

// internKey renders the table content (variable count + backing words)
// as a map key.
func internKey(f *bitvec.TruthTable) string {
	words := f.Words()
	b := make([]byte, 0, 1+8*len(words))
	b = append(b, byte(f.NumVars()))
	for _, w := range words {
		b = append(b,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(b)
}

// Characterize returns the interned characterization of f. Two tables
// computing the same function of the same arity share one *Char, so
// pointer equality on the result is functional equality.
func Characterize(f *bitvec.TruthTable) *Char {
	charPtrMu.RLock()
	c, ok := charByPtr[f]
	charPtrMu.RUnlock()
	if ok {
		return c
	}
	key := internKey(f)
	if v, loaded := interns.Load(key); loaded {
		c = v.(*Char)
	} else {
		v, _ = interns.LoadOrStore(key, newChar(f))
		c = v.(*Char)
	}
	charPtrMu.Lock()
	if len(charByPtr) >= maxPtrCacheEntries {
		charByPtr = make(map[*bitvec.TruthTable]*Char)
	}
	charByPtr[f] = c
	charPtrMu.Unlock()
	return c
}

// newChar builds a characterization without interning (used for the
// per-variable difference tables, which are reachable only from their
// parent).
func newChar(f *bitvec.TruthTable) *Char {
	return &Char{
		tt:    f,
		n:     f.NumVars(),
		onset: f.AppendOnSet(nil),
		id:    charSeq.Add(1),
	}
}

// NumVars returns the characterized function's variable count.
func (c *Char) NumVars() int { return c.n }

// ID returns the process-unique characterization identity. Memoization
// keys embed it: equal IDs imply the same function.
func (c *Char) ID() uint64 { return c.id }

// OnSetSize returns the number of on-set minterms.
func (c *Char) OnSetSize() int { return len(c.onset) }

// pairTable returns the packed joint-index table for the on-set pair
// sum, building it on first use. Returns nil when the function is too
// wide to cache (n > pairCodeMaxVars).
func (c *Char) pairTable() []uint32 {
	if c.n > pairCodeMaxVars {
		return nil
	}
	c.pairOnce.Do(func() {
		k := len(c.onset)
		codes := make([]uint32, k*k)
		for ui, u := range c.onset {
			for vi, v := range c.onset {
				var code uint32
				for i := 0; i < c.n; i++ {
					a := uint32(u>>uint(i)) & 1
					b := uint32(v>>uint(i)) & 1
					code |= (a<<1 | b) << uint(2*i)
				}
				codes[ui*k+vi] = code
			}
		}
		c.pairCodes = codes
	})
	return c.pairCodes
}

// diffChars returns the per-variable Boolean-difference
// characterizations, deriving them on first use.
func (c *Char) diffChars() []*Char {
	c.diffOnce.Do(func() {
		diffs := make([]*Char, c.n)
		for i := 0; i < c.n; i++ {
			diffs[i] = newChar(c.tt.BooleanDiff(i))
		}
		c.diffs = diffs
	})
	return c.diffs
}

// Scratch holds the reusable evaluation buffers a characterized
// estimation threads through its calls. One Scratch serves any function
// arity (buffers grow on demand and are reused); it is not safe for
// concurrent use — give each goroutine its own.
type Scratch struct {
	pq []float64 // [2i] = 1-p[i], [2i+1] = p[i]
	js []float64 // [4i+code] = input i's joint entry for 2-bit code
}

// NewScratch returns an empty evaluation scratch.
func NewScratch() *Scratch { return &Scratch{} }

// grow returns s sized to at least n entries of width per variable.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// scratchPool backs the historical package-level entry points so they
// stay allocation-light without changing signature.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// SignalProb returns P(f = 1) for the characterized function given
// independent input probabilities p — same summation order as the
// scalar enumeration, restricted to the cached on-set.
func (c *Char) SignalProb(p []float64, sc *Scratch) float64 {
	if len(p) != c.n {
		panic("prob: probability vector length mismatch")
	}
	sc.pq = growF(sc.pq, 2*c.n)
	pq := sc.pq
	for i, pi := range p {
		pq[2*i] = 1 - pi
		pq[2*i+1] = pi
	}
	total := 0.0
	for _, m := range c.onset {
		prod := 1.0
		for i := 0; i < c.n; i++ {
			prod *= pq[2*i+int(m>>uint(i))&1]
		}
		total += prod
	}
	return total
}

// NajmActivity returns the transition density under Najm's model
// (Eq. 1), evaluated against the cached per-variable difference
// characterizations.
func (c *Char) NajmActivity(p, s []float64, sc *Scratch) float64 {
	if len(p) != c.n || len(s) != c.n {
		panic("prob: vector length mismatch")
	}
	diffs := c.diffChars()
	total := 0.0
	for i := 0; i < c.n; i++ {
		if s[i] == 0 {
			continue
		}
		total += diffs[i].SignalProb(p, sc) * s[i]
	}
	return total
}

// fillJoints builds the per-input 2×2 joint distributions into the
// scratch: js[4i+(a<<1|b)] = P(x_i(t) = a, x_i(t+T) = b). Marginals are
// clamped into [0,1] first (see clampActivity) so the joint is a valid
// distribution even when a propagated probability overshoots 1 by
// rounding.
func (c *Char) fillJoints(p, s []float64, sc *Scratch) {
	sc.js = growF(sc.js, 4*c.n)
	js := sc.js
	for i := 0; i < c.n; i++ {
		pi := clamp01(p[i])
		si := clampActivity(pi, s[i])
		half := si / 2
		js[4*i+0] = 1 - pi - half // (0,0)
		js[4*i+1] = half          // (0,1)
		js[4*i+2] = half          // (1,0)
		js[4*i+3] = pi - half     // (1,1)
	}
}

// PairProb returns P(y(t) = 1 AND y(t+T) = 1) under the Chou–Roy model
// — the scalar double sum over on-set pairs, evaluated through the
// precomputed joint-index codes when available.
func (c *Char) PairProb(p, s []float64, sc *Scratch) float64 {
	if len(p) != c.n || len(s) != c.n {
		panic("prob: vector length mismatch")
	}
	c.fillJoints(p, s, sc)
	js := sc.js
	total := 0.0
	if codes := c.pairTable(); codes != nil {
		k := len(c.onset)
		for ui := 0; ui < k; ui++ {
			row := codes[ui*k : ui*k+k]
			for _, code := range row {
				prod := 1.0
				for i := 0; i < c.n; i++ {
					prod *= js[4*i+int(code>>uint(2*i))&3]
					if prod == 0 {
						break
					}
				}
				total += prod
			}
		}
		return total
	}
	for _, u := range c.onset {
		for _, v := range c.onset {
			prod := 1.0
			for i := 0; i < c.n; i++ {
				a := int(u>>uint(i)) & 1
				b := int(v>>uint(i)) & 1
				prod *= js[4*i+(a<<1|b)]
				if prod == 0 {
					break
				}
			}
			total += prod
		}
	}
	return total
}

// ChouRoyActivity returns the normalized Chou–Roy switching activity
// (Eq. 2) of the characterized function.
func (c *Char) ChouRoyActivity(p, s []float64, sc *Scratch) float64 {
	return c.ChouRoyFromProb(c.SignalProb(p, sc), p, s, sc)
}

// ChouRoyFromProb is ChouRoyActivity with the signal probability
// already in hand — the glitch propagator's per-time-step entry point:
// P(y) depends only on the settled input probabilities, so one
// evaluation serves every time step of a waveform.
func (c *Char) ChouRoyFromProb(py float64, p, s []float64, sc *Scratch) float64 {
	pp := c.PairProb(p, s, sc)
	a := 2 * (py - pp)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/netgen"
)

func and2() *bitvec.TruthTable { return logic.TTAnd2() }
func or2() *bitvec.TruthTable  { return logic.TTOr2() }
func xor2() *bitvec.TruthTable { return logic.TTXor2() }

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSignalProbBasicGates(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := SignalProb(and2(), p); !almost(got, 0.25, 1e-12) {
		t.Fatalf("P(and) = %v, want 0.25", got)
	}
	if got := SignalProb(or2(), p); !almost(got, 0.75, 1e-12) {
		t.Fatalf("P(or) = %v, want 0.75", got)
	}
	if got := SignalProb(xor2(), p); !almost(got, 0.5, 1e-12) {
		t.Fatalf("P(xor) = %v, want 0.5", got)
	}
	// Biased inputs: P(a AND b) = pa*pb.
	if got := SignalProb(and2(), []float64{0.3, 0.9}); !almost(got, 0.27, 1e-12) {
		t.Fatalf("P(and biased) = %v, want 0.27", got)
	}
}

func TestNajmActivityXorSumsInputs(t *testing.T) {
	// For XOR every Boolean difference is the constant 1, so Najm's
	// formula yields s(a)+s(b) (the known overestimate).
	got := NajmActivity(xor2(), []float64{0.5, 0.5}, []float64{0.5, 0.5})
	if !almost(got, 1.0, 1e-12) {
		t.Fatalf("Najm xor activity = %v, want 1.0", got)
	}
}

func TestChouRoyXorAccountsForSimultaneousSwitching(t *testing.T) {
	// Exact for independent inputs: output toggles iff exactly one input
	// toggles: s = s_a(1-s_b) + s_b(1-s_a) = 0.5 at s=0.5 each.
	got := ChouRoyActivity(xor2(), []float64{0.5, 0.5}, []float64{0.5, 0.5})
	if !almost(got, 0.5, 1e-12) {
		t.Fatalf("ChouRoy xor activity = %v, want 0.5", got)
	}
	najm := NajmActivity(xor2(), []float64{0.5, 0.5}, []float64{0.5, 0.5})
	if got >= najm {
		t.Fatalf("ChouRoy (%v) should be below Najm (%v) for xor", got, najm)
	}
}

func TestChouRoyAndGateExact(t *testing.T) {
	// Monte Carlo reference for AND with p=0.5, s=0.5 inputs.
	got := ChouRoyActivity(and2(), []float64{0.5, 0.5}, []float64{0.5, 0.5})
	ref := monteCarloActivity(t, and2(), []float64{0.5, 0.5}, []float64{0.5, 0.5}, 200000, 11)
	if !almost(got, ref, 0.01) {
		t.Fatalf("ChouRoy and activity = %v, Monte Carlo = %v", got, ref)
	}
}

// monteCarloActivity simulates independent two-state input processes and
// measures the output toggle rate — the ground truth that Chou–Roy's
// analytic model should match for independent inputs.
func monteCarloActivity(t *testing.T, f *bitvec.TruthTable, p, s []float64, steps int, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := f.NumVars()
	state := make([]bool, n)
	for i := range state {
		state[i] = rng.Float64() < p[i]
	}
	assign := func() uint {
		var a uint
		for i, v := range state {
			if v {
				a |= 1 << uint(i)
			}
		}
		return a
	}
	prev := f.Get(assign())
	toggles := 0
	for step := 0; step < steps; step++ {
		for i := range state {
			// Transition probabilities that preserve marginal p with
			// unconditional toggle rate s: P(0->1) = s/(2(1-p)),
			// P(1->0) = s/(2p).
			var pt float64
			if state[i] {
				pt = s[i] / (2 * p[i])
			} else {
				pt = s[i] / (2 * (1 - p[i]))
			}
			if rng.Float64() < pt {
				state[i] = !state[i]
			}
		}
		cur := f.Get(assign())
		if cur != prev {
			toggles++
		}
		prev = cur
	}
	return float64(toggles) / float64(steps)
}

func TestChouRoyMatchesMonteCarloOnRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(2)
		f := bitvec.New(n)
		for m := 0; m < 1<<n; m++ {
			if rng.Intn(2) == 0 {
				f.Set(uint(m), true)
			}
		}
		p := make([]float64, n)
		s := make([]float64, n)
		for i := range p {
			p[i] = 0.2 + 0.6*rng.Float64()
			s[i] = 0.5 * math.Min(p[i], 1-p[i]) * 2 * rng.Float64()
		}
		got := ChouRoyActivity(f, p, s)
		ref := monteCarloActivity(t, f, p, s, 300000, int64(trial+100))
		if !almost(got, ref, 0.015) {
			t.Fatalf("trial %d (f=%s): ChouRoy %v vs MC %v", trial, f, got, ref)
		}
	}
}

func TestPairProbBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%4)
		rng := rand.New(rand.NewSource(seed))
		tt := bitvec.New(n)
		for m := 0; m < 1<<n; m++ {
			if rng.Intn(2) == 0 {
				tt.Set(uint(m), true)
			}
		}
		p := make([]float64, n)
		s := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
			s[i] = rng.Float64()
		}
		pp := PairProb(tt, p, s)
		py := SignalProb(tt, p)
		// 0 <= P(y(t)y(t+T)) <= P(y).
		return pp >= -1e-9 && pp <= py+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestActivityNonNegativeAndBounded(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%4)
		rng := rand.New(rand.NewSource(seed))
		tt := bitvec.New(n)
		for m := 0; m < 1<<n; m++ {
			if rng.Intn(2) == 0 {
				tt.Set(uint(m), true)
			}
		}
		p := make([]float64, n)
		s := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
			s[i] = rng.Float64()
		}
		a := ChouRoyActivity(tt, p, s)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantFunctionNeverSwitches(t *testing.T) {
	for _, v := range []bool{false, true} {
		tt := bitvec.Const(3, v)
		p := []float64{0.5, 0.5, 0.5}
		s := []float64{0.5, 0.5, 0.5}
		if a := ChouRoyActivity(tt, p, s); a != 0 {
			t.Fatalf("constant %v: activity %v, want 0", v, a)
		}
		if a := NajmActivity(tt, p, s); a != 0 {
			t.Fatalf("constant %v: Najm activity %v, want 0", v, a)
		}
	}
}

func TestStaticInputsMeanNoSwitching(t *testing.T) {
	a := ChouRoyActivity(and2(), []float64{0.5, 0.5}, []float64{0, 0})
	if a != 0 {
		t.Fatalf("no input switching should give 0, got %v", a)
	}
}

func TestWeightedAverage(t *testing.T) {
	if got := WeightedAverage([]float64{0.2, 0.6}, []float64{1, 3}); !almost(got, 0.5, 1e-12) {
		t.Fatalf("weighted average = %v, want 0.5", got)
	}
	if got := WeightedAverage([]float64{0.2, 0.6}, []float64{0, 0}); !almost(got, 0.4, 1e-12) {
		t.Fatalf("zero-weight average = %v, want 0.4", got)
	}
	if got := WeightedAverage(nil, nil); got != 0 {
		t.Fatalf("empty average = %v, want 0", got)
	}
}

func TestEstimateNetworkFullAdder(t *testing.T) {
	net := logic.NewNetwork("fa")
	a := net.AddInput("a")
	b := net.AddInput("b")
	cin := net.AddInput("cin")
	sum := net.AddGate("sum", logic.TTXor3(), a, b, cin)
	cout := net.AddGate("cout", logic.TTMaj3(), a, b, cin)
	net.MarkOutput("sum", sum)
	net.MarkOutput("cout", cout)

	e := EstimateNetwork(net, MethodChouRoy, DefaultSources())
	if !almost(e.P[sum], 0.5, 1e-12) {
		t.Fatalf("P(sum) = %v, want 0.5", e.P[sum])
	}
	if !almost(e.P[cout], 0.5, 1e-12) {
		t.Fatalf("P(cout) = %v, want 0.5", e.P[cout])
	}
	if e.S[sum] <= 0 || e.S[cout] <= 0 {
		t.Fatal("activities should be positive")
	}
	total := e.TotalActivity(net)
	if !almost(total, e.S[sum]+e.S[cout], 1e-12) {
		t.Fatalf("TotalActivity = %v, want %v", total, e.S[sum]+e.S[cout])
	}
}

func TestEstimateNetworkConstAndLatch(t *testing.T) {
	net := logic.NewNetwork("m")
	q := net.AddLatch("q", false)
	c1 := net.AddConst("one", true)
	g := net.AddGate("g", logic.TTAnd2(), q, c1)
	net.ConnectLatch(q, g)
	net.MarkOutput("y", g)

	e := EstimateNetwork(net, MethodChouRoy, DefaultSources())
	if e.P[c1] != 1 || e.S[c1] != 0 {
		t.Fatalf("const estimate wrong: P=%v S=%v", e.P[c1], e.S[c1])
	}
	if e.P[q] != 0.5 || e.S[q] != 0.5 {
		t.Fatalf("latch source estimate wrong: P=%v S=%v", e.P[q], e.S[q])
	}
	// AND with constant 1 passes the latch signal through.
	if !almost(e.S[g], 0.5, 1e-12) {
		t.Fatalf("S(and with const 1) = %v, want 0.5", e.S[g])
	}
}

func TestNajmOverestimatesOnAdder(t *testing.T) {
	net := netgen.AdderNetwork(8)
	najm := EstimateNetwork(net, MethodNajm, DefaultSources()).TotalActivity(net)
	cr := EstimateNetwork(net, MethodChouRoy, DefaultSources()).TotalActivity(net)
	if najm <= cr {
		t.Fatalf("expected Najm (%v) > ChouRoy (%v) on a carry chain", najm, cr)
	}
}

func BenchmarkEstimateAdder8ChouRoy(b *testing.B) {
	net := netgen.AdderNetwork(8)
	src := DefaultSources()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EstimateNetwork(net, MethodChouRoy, src)
	}
}

func BenchmarkEstimateMult8ChouRoy(b *testing.B) {
	net := netgen.MultiplierNetwork(8)
	src := DefaultSources()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EstimateNetwork(net, MethodChouRoy, src)
	}
}

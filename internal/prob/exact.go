package prob

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/logic"
)

// ExactProbabilities computes the exact signal probability of every node
// of a combinational network by building global BDDs over the sources
// (primary inputs and latch outputs, assumed independent with the given
// source probabilities). Unlike the cut-local propagation in
// EstimateNetwork, this is immune to reconvergent-fanout error — it is
// the reference the heuristic estimators are validated against.
//
// BDD sizes can explode on multiplier-like structures; maxNodes bounds
// the manager (0 means 1<<20) and an error reports the node that
// exceeded it.
func ExactProbabilities(net *logic.Network, src SourceValues, maxNodes int) ([]float64, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	m := bdd.New()
	refs := make([]bdd.Ref, net.NumNodes())
	var varProb []float64
	nextVar := 0
	addSource := func(id int, p float64) {
		refs[id] = m.Var(nextVar)
		varProb = append(varProb, p)
		nextVar++
	}
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		switch nd.Kind {
		case logic.KindInput:
			addSource(id, src.InputP)
		case logic.KindLatchOut:
			addSource(id, src.LatchP)
		case logic.KindConst:
			refs[id] = bdd.False
			if nd.ConstVal {
				refs[id] = bdd.True
			}
		case logic.KindGate:
			// Compose: Shannon-expand the local function over the fanin
			// BDDs with ITE.
			n := len(nd.Fanins)
			var build func(assign uint, v int) bdd.Ref
			build = func(assign uint, v int) bdd.Ref {
				if v == n {
					if nd.Func.Get(assign) {
						return bdd.True
					}
					return bdd.False
				}
				lo := build(assign, v+1)
				hi := build(assign|1<<uint(v), v+1)
				if lo == hi {
					return lo
				}
				return m.ITE(refs[nd.Fanins[v]], hi, lo)
			}
			refs[id] = build(0, 0)
			if m.Size() > maxNodes {
				return nil, fmt.Errorf("prob: BDD exceeded %d nodes at %q", maxNodes, nd.Name)
			}
		}
	}
	out := make([]float64, net.NumNodes())
	for id := range out {
		out[id] = m.SignalProb(refs[id], varProb)
	}
	return out, nil
}

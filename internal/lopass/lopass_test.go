package lopass

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/workload"
)

func figure1() (*cdfg.Graph, *cdfg.Schedule) {
	g := cdfg.NewGraph("fig1")
	in := make([]int, 6)
	for i := range in {
		in[i] = g.AddInput("")
	}
	op1 := g.AddOp(cdfg.KindAdd, "1", in[0], in[1])
	op2 := g.AddOp(cdfg.KindAdd, "2", in[1], in[2])
	op3 := g.AddOp(cdfg.KindMult, "3", in[3], in[4])
	op4 := g.AddOp(cdfg.KindAdd, "4", op1, op2)
	op5 := g.AddOp(cdfg.KindMult, "5", op3, in[5])
	op6 := g.AddOp(cdfg.KindAdd, "6", op4, op5)
	op7 := g.AddOp(cdfg.KindMult, "7", op5, op4)
	op8 := g.AddOp(cdfg.KindAdd, "8", op4, op3)
	g.MarkOutput(op6)
	g.MarkOutput(op7)
	g.MarkOutput(op8)
	s := &cdfg.Schedule{Step: make([]int, len(g.Nodes)), Len: 3}
	s.Step[op1], s.Step[op2], s.Step[op3] = 1, 1, 1
	s.Step[op4], s.Step[op5] = 2, 2
	s.Step[op6], s.Step[op7], s.Step[op8] = 3, 3, 3
	return g, s
}

func TestBindFigure1(t *testing.T) {
	g, s := figure1()
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 1}
	res, rep, err := Bind(g, s, rb, rc, Options{PortSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g, s, rc); err != nil {
		t.Fatal(err)
	}
	counts := res.Counts()
	if counts[netgen.FUAdd] > 2 || counts[netgen.FUMult] > 1 {
		t.Fatalf("allocation %v violates constraint", counts)
	}
	if rep.FlowCost < 0 {
		t.Fatalf("negative real cost %v", rep.FlowCost)
	}
}

func TestBindInfeasibleConstraint(t *testing.T) {
	g, s := figure1()
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Bind(g, s, rb, cdfg.ResourceConstraint{Add: 1, Mult: 1}, Options{}); err == nil {
		t.Fatal("two same-step adds cannot fit one adder")
	}
}

func TestBindAllBenchmarks(t *testing.T) {
	for _, p := range workload.Benchmarks {
		g := workload.Generate(p)
		s, err := cdfg.ListSchedule(g, p.RC)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		rb, err := regbind.Bind(g, s)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res, _, err := Bind(g, s, rb, p.RC, Options{PortSeed: 1})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := res.Validate(g, s, p.RC); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestSharedPortAssignmentHonored(t *testing.T) {
	g, s := figure1()
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	swap := binding.RandomPortAssignment(g, 7)
	res, _, err := Bind(g, s, rb, cdfg.ResourceConstraint{Add: 2, Mult: 1}, Options{Swap: swap})
	if err != nil {
		t.Fatal(err)
	}
	for i := range swap {
		if res.SwapPorts[i] != swap[i] {
			t.Fatal("port assignment not honored")
		}
	}
}

func TestDeterministic(t *testing.T) {
	g, s := figure1()
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 1}
	r1, _, err := Bind(g, s, rb, rc, Options{PortSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Bind(g, s, rb, rc, Options{PortSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.FUOf {
		if r1.FUOf[i] != r2.FUOf[i] {
			t.Fatal("nondeterministic binding")
		}
	}
}

func TestChainCostCountsNewSources(t *testing.T) {
	g := cdfg.NewGraph("cc")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	op1 := g.AddOp(cdfg.KindAdd, "op1", a, b)
	op2 := g.AddOp(cdfg.KindAdd, "op2", a, b)
	op3 := g.AddOp(cdfg.KindAdd, "op3", op1, c)
	g.MarkOutput(op2)
	g.MarkOutput(op3)
	s, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	_ = rb
	res := binding.NewResult(g) // no swaps
	// op1 and op2 read the same values: chaining them is free.
	if c := chainCost(g, res, op1, op2); c != 0 {
		t.Fatalf("identical sources should cost 0, got %v", c)
	}
	// op1 -> op3 changes both sources.
	if c := chainCost(g, res, op1, op3); c == 0 {
		t.Fatal("new sources should cost > 0")
	}
}

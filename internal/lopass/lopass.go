// Package lopass implements the baseline binder HLPower is compared
// against: the LOPASS [3][4] low-power functional-unit binding. Per the
// paper's related-work description, LOPASS binds with minimum-weight
// bipartite matching: control steps are processed in order and the
// operations of each step are assigned to the allocated functional
// units by a min-cost assignment whose cost is the structural
// multiplexer-input growth of placing the operation on the unit. The
// cost model is mux-count driven and glitch-blind — precisely the gap
// HLPower's iterative, glitch-aware formulation exploits (§5.2.2).
//
// BindFlow additionally provides a min-cost max-flow path-cover binder
// in the spirit of Chen and Cong's network-flow formulation [2] (which
// LOPASS used to enhance register binding and port assignment). Binding
// all operations of a class in one flow solve makes each functional
// unit's execution sequence a flow path, so the pairwise chain costs
// also minimize source changes between consecutive executions — a
// temporal effect the structural binders do not see. It is kept as a
// stronger ablation baseline and reported separately in EXPERIMENTS.md.
package lopass

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/matching"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/satable"
)

// Options configures the baseline.
type Options struct {
	// PortSeed drives the random port assignment when Swap is nil.
	PortSeed int64
	// Swap overrides the port assignment (shared with HLPower).
	Swap []bool
	// Table, when set, supplies LOPASS's pre-characterized power
	// estimates: the assignment cost of an operation is the zero-delay
	// (glitch-blind) switching activity of the functional-unit
	// configuration that results — the high-level power model LOPASS
	// drove its binding with. When nil, the cost degrades to exact
	// incremental mux-input counting (a strictly sharper structural
	// objective than the original system had; useful as a strong
	// ablation baseline).
	Table *satable.Table
	// Jobs is the worker count for batched SA-table characterization of
	// a step's distinct mux shapes (0 = GOMAXPROCS). Non-semantic: the
	// binding is identical at every setting.
	Jobs int
}

// Report carries run statistics.
type Report struct {
	FlowCost float64
	Runtime  time.Duration
}

// opCover is the large negative reward ensuring every operation is
// covered by some flow path before cost optimization matters.
const opCover = -1e6

// Bind runs the LOPASS binding: step-by-step minimum-weight bipartite
// assignment of operations to functional units with structural
// mux-growth costs.
func Bind(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, rc cdfg.ResourceConstraint, opt Options) (*binding.Result, *Report, error) {
	start := time.Now()
	if err := cdfg.ValidateScheduleLat(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("lopass: %w", err)
	}
	res := binding.NewResult(g)
	if opt.Swap != nil {
		copy(res.SwapPorts, opt.Swap)
	} else {
		res.SwapPorts = binding.RandomPortAssignment(g, opt.PortSeed)
	}
	rep := &Report{}

	// Allocate the constrained number of FU instances per class up
	// front. Port source sets are tracked per VALUE, not per register:
	// in the LOPASS system functional units are bound before registers
	// exist (scheduling -> FU binding -> register binding [2]), so its
	// cost function cannot see register-level sharing — the structural
	// reason the published LOPASS solutions carry large, unbalanced
	// multiplexers that HLPower's register-aware Eq. 4 avoids.
	type fuState struct {
		fu        *binding.FU
		left      map[int]bool
		right     map[int]bool
		busyUntil int // last occupied step (multi-cycle resources)
	}
	var units []*fuState
	newUnit := func(kind netgen.FUKind) *fuState {
		fu := &binding.FU{ID: len(res.FUs), Kind: kind}
		res.FUs = append(res.FUs, fu)
		st := &fuState{fu: fu, left: map[int]bool{}, right: map[int]bool{}}
		units = append(units, st)
		return st
	}
	for i := 0; i < rc.Add; i++ {
		newUnit(netgen.FUAdd)
	}
	for i := 0; i < rc.Mult; i++ {
		newUnit(netgen.FUMult)
	}

	opsPerStep := make(map[int][]int)
	for _, id := range g.Ops() {
		opsPerStep[s.Step[id]] = append(opsPerStep[s.Step[id]], id)
	}
	for t := 1; t <= s.Len; t++ {
		ops := opsPerStep[t]
		if len(ops) == 0 {
			continue
		}
		// With a table, resolve the step's distinct mux shapes in one
		// batched characterization first: SA-table misses are expensive
		// (netgen -> mapper -> estimator), and GetBatch overlaps them
		// across workers instead of paying them serially edge by edge.
		var shapeCost map[satable.Key]float64
		if opt.Table != nil {
			shapes := make(map[satable.Key]bool)
			for _, op := range ops {
				class := g.Nodes[op].Kind.FUClass()
				l, r := res.PortArgs(g, op)
				for _, u := range units {
					if u.fu.Kind != class || u.busyUntil >= t {
						continue
					}
					kl, kr := len(u.left), len(u.right)
					if !u.left[l] {
						kl++
					}
					if !u.right[r] {
						kr++
					}
					shapes[satable.Key{Kind: class, KL: kl, KR: kr}] = true
				}
			}
			keys := make([]satable.Key, 0, len(shapes))
			for k := range shapes {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].Kind != keys[j].Kind {
					return keys[i].Kind < keys[j].Kind
				}
				if keys[i].KL != keys[j].KL {
					return keys[i].KL < keys[j].KL
				}
				return keys[i].KR < keys[j].KR
			})
			vals, err := opt.Table.GetBatch(context.Background(), keys, opt.Jobs)
			if err != nil {
				return nil, nil, fmt.Errorf("lopass: step %d: %w", t, err)
			}
			shapeCost = make(map[satable.Key]float64, len(keys))
			for i, k := range keys {
				shapeCost[k] = vals[i]
			}
		}
		// Min-weight assignment == max-weight with W = C - cost.
		const base = 100000.0
		var edges []matching.Edge
		for ui, op := range ops {
			class := g.Nodes[op].Kind.FUClass()
			l, r := res.PortArgs(g, op)
			for vi, u := range units {
				if u.fu.Kind != class || u.busyUntil >= t {
					continue
				}
				kl, kr := len(u.left), len(u.right)
				if !u.left[l] {
					kl++
				}
				if !u.right[r] {
					kr++
				}
				var cost float64
				if opt.Table != nil {
					// Estimated power of the resulting configuration
					// (zero-delay SA of FU + input muxes).
					cost = shapeCost[satable.Key{Kind: class, KL: kl, KR: kr}]
				} else {
					cost = float64(kl - len(u.left) + kr - len(u.right))
				}
				edges = append(edges, matching.Edge{U: ui, V: vi, W: base - cost})
			}
		}
		match, _ := matching.MaxWeight(len(ops), len(units), edges)
		for ui, vi := range match {
			op := ops[ui]
			if vi < 0 {
				return nil, nil, fmt.Errorf("lopass: step %d: op %d found no free %s unit (constraint too tight)",
					t, op, g.Nodes[op].Kind.FUClass())
			}
			u := units[vi]
			u.fu.Ops = append(u.fu.Ops, op)
			u.busyUntil = s.BusyUntil(g, op)
			res.FUOf[op] = u.fu.ID
			l, r := res.PortArgs(g, op)
			if !u.left[l] {
				rep.FlowCost++
			}
			if !u.right[r] {
				rep.FlowCost++
			}
			u.left[l] = true
			u.right[r] = true
		}
	}

	// Drop FU instances that never received an operation (the paper's
	// constraint is an upper bound).
	res = compact(g, res)

	rep.Runtime = time.Since(start)
	if err := res.Validate(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("lopass: produced invalid binding: %w", err)
	}
	return res, rep, nil
}

// compact renumbers FUs after removing empty instances.
func compact(g *cdfg.Graph, res *binding.Result) *binding.Result {
	out := binding.NewResult(g)
	copy(out.SwapPorts, res.SwapPorts)
	for _, fu := range res.FUs {
		if len(fu.Ops) == 0 {
			continue
		}
		nf := &binding.FU{ID: len(out.FUs), Kind: fu.Kind, Ops: append([]int(nil), fu.Ops...)}
		out.FUs = append(out.FUs, nf)
		for _, op := range nf.Ops {
			out.FUOf[op] = nf.ID
		}
	}
	return out
}

// BindFlow binds all operations of each class with one min-cost max-flow
// path cover (see the package comment; kept as an ablation baseline).
func BindFlow(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, rc cdfg.ResourceConstraint, opt Options) (*binding.Result, *Report, error) {
	start := time.Now()
	if err := cdfg.ValidateSchedule(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("lopass: %w", err)
	}
	res := binding.NewResult(g)
	if opt.Swap != nil {
		copy(res.SwapPorts, opt.Swap)
	} else {
		res.SwapPorts = binding.RandomPortAssignment(g, opt.PortSeed)
	}
	rep := &Report{}

	for _, class := range []netgen.FUKind{netgen.FUAdd, netgen.FUMult} {
		var ops []int
		for _, id := range g.Ops() {
			if g.Nodes[id].Kind.FUClass() == class {
				ops = append(ops, id)
			}
		}
		if len(ops) == 0 {
			continue
		}
		k := rc.Add
		if class == netgen.FUMult {
			k = rc.Mult
		}
		if k <= 0 {
			return nil, nil, fmt.Errorf("lopass: no %s units in resource constraint", class)
		}
		cost, err := bindClass(g, s, rb, res, class, ops, k)
		if err != nil {
			return nil, nil, err
		}
		rep.FlowCost += cost
	}

	rep.Runtime = time.Since(start)
	if err := res.Validate(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("lopass: produced invalid binding: %w", err)
	}
	return res, rep, nil
}

// bindClass assigns the class's operations to at most k FUs via min-cost
// max-flow path cover. Node layout: 0 = super source, 1 = source,
// 2+2i = opIn_i, 3+2i = opOut_i, last = sink.
func bindClass(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, class netgen.FUKind, ops []int, k int) (float64, error) {
	n := len(ops)
	superSrc := 0
	src := 1
	opIn := func(i int) int { return 2 + 2*i }
	opOut := func(i int) int { return 3 + 2*i }
	sink := 2 + 2*n

	f := matching.NewFlow(sink + 1)
	f.AddEdge(superSrc, src, k, 0) // at most k functional units

	startEdges := make([]int, n)
	chainEdges := make(map[[2]int]int)
	for i, op := range ops {
		startEdges[i] = f.AddEdge(src, opIn(i), 1, 0)
		f.AddEdge(opIn(i), opOut(i), 1, opCover)
		f.AddEdge(opOut(i), sink, 1, 0)
		for j, op2 := range ops {
			if s.Completion(g, op) < s.Step[op2] {
				c := chainCost(g, res, op, op2)
				chainEdges[[2]int{i, j}] = f.AddEdge(opOut(i), opIn(j), 1, c)
			}
		}
	}
	_, cost := f.MinCostMaxFlow(superSrc, sink)

	// Decode paths into FUs: heads are ops fed directly from the source.
	next := make([]int, n)
	for i := range next {
		next[i] = -1
	}
	for key, h := range chainEdges {
		if f.EdgeFlow(h) > 0 {
			next[key[0]] = key[1]
		}
	}
	covered := 0
	for i := range ops {
		if f.EdgeFlow(startEdges[i]) > 0 {
			fu := &binding.FU{ID: len(res.FUs), Kind: class}
			res.FUs = append(res.FUs, fu)
			for j := i; j >= 0; j = next[j] {
				fu.Ops = append(fu.Ops, ops[j])
				res.FUOf[ops[j]] = fu.ID
				covered++
			}
		}
	}
	if covered != n {
		return 0, fmt.Errorf("lopass: %s constraint %d cannot cover %d operations (max per-step density exceeds it)", class, k, n)
	}
	// Subtract the artificial coverage reward to report the real cost.
	return cost - float64(n)*opCover, nil
}

// chainCost estimates the interconnect cost of executing op2 after op1
// on the same FU: one new connection per port whose source value differs
// — the pairwise (flow-representable) approximation of interconnect
// growth a single-pass formulation is limited to. Like the bipartite
// binder, it works at value granularity because registers are not bound
// yet in the LOPASS ordering.
func chainCost(g *cdfg.Graph, res *binding.Result, op1, op2 int) float64 {
	l1, r1 := res.PortArgs(g, op1)
	l2, r2 := res.PortArgs(g, op2)
	c := 0.0
	if l1 != l2 {
		c++
	}
	if r1 != r2 {
		c++
	}
	return c
}

package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/matching"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/workload"
)

// referenceBind is the pre-engine monolithic implementation of
// Algorithm 1, kept verbatim as the oracle for the incremental engine:
// map-based occupation sets, full per-round rescoring of every
// compatible edge through MergedMuxSizes and Table.Get, and
// sort.SliceStable merge ordering. onEdges observes each round's edge
// list before the bipartite solve.
func referenceBind(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, rc cdfg.ResourceConstraint, opt Options,
	onEdges func(iter int, edges []matching.Edge)) (*binding.Result, *Report, error) {
	type refNode struct {
		kind  netgen.FUKind
		ops   []int
		inU   bool
		steps map[int]bool
	}
	compatible := func(a, b *refNode) bool {
		if a.kind != b.kind {
			return false
		}
		small, large := a, b
		if len(large.steps) < len(small.steps) {
			small, large = large, small
		}
		for st := range small.steps {
			if large.steps[st] {
				return false
			}
		}
		return true
	}
	weight := func(res *binding.Result, u, v *refNode) float64 {
		fa := &binding.FU{Kind: u.kind, Ops: u.ops}
		fb := &binding.FU{Kind: v.kind, Ops: v.ops}
		kl, kr := binding.MergedMuxSizes(g, rb, res, fa, fb)
		sa := opt.Table.Get(u.kind, kl, kr)
		muxDiff := kl - kr
		if muxDiff < 0 {
			muxDiff = -muxDiff
		}
		beta := opt.BetaAdd
		if u.kind == netgen.FUMult {
			beta = opt.BetaMult
		}
		return opt.Alpha*(1/sa) + (1-opt.Alpha)*(1/(float64(muxDiff+1)*beta))
	}

	rep := &Report{}
	res := binding.NewResult(g)
	if opt.Swap != nil {
		copy(res.SwapPorts, opt.Swap)
	} else {
		res.SwapPorts = binding.RandomPortAssignment(g, opt.PortSeed)
	}
	var nodes []*refNode
	for _, op := range g.Ops() {
		occ := map[int]bool{}
		for t := s.Step[op]; t <= s.BusyUntil(g, op); t++ {
			occ[t] = true
		}
		nodes = append(nodes, &refNode{kind: g.Nodes[op].Kind.FUClass(), ops: []int{op}, steps: occ})
	}
	for _, class := range []netgen.FUKind{netgen.FUAdd, netgen.FUMult} {
		perStep := make(map[int][]*refNode)
		for _, n := range nodes {
			if n.kind == class {
				perStep[s.Step[n.ops[0]]] = append(perStep[s.Step[n.ops[0]]], n)
			}
		}
		if len(perStep) == 0 {
			continue
		}
		steps := make([]int, 0, len(perStep))
		for step := range perStep {
			steps = append(steps, step)
		}
		sort.Slice(steps, func(i, j int) bool {
			if len(perStep[steps[i]]) != len(perStep[steps[j]]) {
				return len(perStep[steps[i]]) > len(perStep[steps[j]])
			}
			return steps[i] < steps[j]
		})
		target := limitFor(rc, class)
		if target <= 0 || target < len(perStep[steps[0]]) {
			target = len(perStep[steps[0]])
		}
		seeded := 0
		for _, step := range steps {
			for _, n := range perStep[step] {
				if seeded >= target {
					break
				}
				n.inU = true
				seeded++
			}
		}
	}
	count := func(class netgen.FUKind) int {
		c := 0
		for _, n := range nodes {
			if n.kind == class {
				c++
			}
		}
		return c
	}
	over := func(class netgen.FUKind) bool {
		l := limitFor(rc, class)
		return l > 0 && count(class) > l
	}
	for over(netgen.FUAdd) || over(netgen.FUMult) {
		rep.Iterations++
		var uList, vList []*refNode
		for _, n := range nodes {
			if !over(n.kind) {
				continue
			}
			if n.inU {
				uList = append(uList, n)
			} else {
				vList = append(vList, n)
			}
		}
		var edges []matching.Edge
		for ui, u := range uList {
			for vi, v := range vList {
				if !compatible(u, v) {
					continue
				}
				rep.EdgesScored++
				edges = append(edges, matching.Edge{U: ui, V: vi, W: weight(res, u, v)})
			}
		}
		if onEdges != nil {
			onEdges(rep.Iterations, edges)
		}
		weightOf := make(map[[2]int]float64, len(edges))
		for _, e := range edges {
			weightOf[[2]int{e.U, e.V}] = e.W
		}
		match, _ := matching.MaxWeight(len(uList), len(vList), edges)
		type pair struct {
			ui, vi int
			w      float64
		}
		var pairs []pair
		for ui, vi := range match {
			if vi >= 0 {
				pairs = append(pairs, pair{ui, vi, weightOf[[2]int{ui, vi}]})
			}
		}
		sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].w > pairs[j].w })
		merged := 0
		absorbed := make(map[*refNode]bool)
		live := map[netgen.FUKind]int{
			netgen.FUAdd:  count(netgen.FUAdd),
			netgen.FUMult: count(netgen.FUMult),
		}
		for _, pr := range pairs {
			if opt.MergesPerIteration > 0 && merged >= opt.MergesPerIteration {
				break
			}
			u, v := uList[pr.ui], vList[pr.vi]
			if live[u.kind] <= limitFor(rc, u.kind) {
				continue
			}
			u.ops = append(u.ops, v.ops...)
			for st := range v.steps {
				u.steps[st] = true
			}
			absorbed[v] = true
			live[u.kind]--
			merged++
		}
		if merged == 0 {
			return nil, nil, fmt.Errorf("reference: constraint unreachable")
		}
		keep := nodes[:0]
		for _, n := range nodes {
			if !absorbed[n] {
				keep = append(keep, n)
			}
		}
		nodes = keep
	}
	for _, n := range nodes {
		fu := &binding.FU{ID: len(res.FUs), Kind: n.kind, Ops: append([]int(nil), n.ops...)}
		res.FUs = append(res.FUs, fu)
		for _, op := range n.ops {
			res.FUOf[op] = fu.ID
		}
	}
	return res, rep, nil
}

// randomBindCase generates a seeded random scheduled CDFG with a
// register binding (the TestRandomGraphsBindValidly generator).
func randomBindCase(seed int64) (*cdfg.Graph, *cdfg.Schedule, *regbind.Binding, cdfg.ResourceConstraint, Options, bool) {
	rng := rand.New(rand.NewSource(seed))
	g := cdfg.NewGraph("rand")
	for i := 0; i < 2+rng.Intn(4); i++ {
		g.AddInput("")
	}
	ops := 5 + rng.Intn(25)
	for i := 0; i < ops; i++ {
		kind := cdfg.KindAdd
		switch rng.Intn(3) {
		case 1:
			kind = cdfg.KindMult
		case 2:
			kind = cdfg.KindSub
		}
		g.AddOp(kind, "", rng.Intn(len(g.Nodes)), rng.Intn(len(g.Nodes)))
	}
	consumers := g.Consumers()
	for _, nd := range g.Nodes {
		if nd.Kind.IsOp() && len(consumers[nd.ID]) == 0 {
			g.MarkOutput(nd.ID)
		}
	}
	lib := cdfg.Library{AddLatency: 1 + rng.Intn(2), MultLatency: 1 + rng.Intn(2)}
	rc := cdfg.ResourceConstraint{Add: 1 + rng.Intn(3), Mult: 1 + rng.Intn(3)}
	s, err := cdfg.ListScheduleLat(g, rc, lib)
	if err != nil {
		return nil, nil, nil, rc, Options{}, false
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		return nil, nil, nil, rc, Options{}, false
	}
	opt := DefaultOptions(sharedTable)
	opt.Alpha = []float64{0, 0.5, 1}[rng.Intn(3)]
	opt.MergesPerIteration = rng.Intn(3)
	return g, s, rb, rc, opt, true
}

// sortEdges orders an edge list canonically for set comparison.
func sortEdges(edges []matching.Edge) []matching.Edge {
	out := append([]matching.Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// TestEngineMatchesFullRescore is the refactor contract: across seeded
// random CDFGs and worker counts, the incremental engine must produce
// (a) the exact per-iteration compatible edge sets of a full rescore,
// with bit-identical weights, (b) the identical final binding, and
// (c) scored+reused bookkeeping summing to the rescore's evaluation
// count.
func TestEngineMatchesFullRescore(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 60 && cases < 25; seed++ {
		g, s, rb, rc, opt, ok := randomBindCase(seed)
		if !ok {
			continue
		}
		refEdges := map[int][]matching.Edge{}
		refRes, refRep, refErr := referenceBind(g, s, rb, rc, opt, func(iter int, edges []matching.Edge) {
			refEdges[iter] = sortEdges(edges)
		})

		for _, workers := range []int{1, 4} {
			engEdges := map[int][]matching.Edge{}
			testHookOnEdges = func(iter, nU, nV int, edges []matching.Edge) {
				engEdges[iter] = sortEdges(edges)
			}
			o := opt
			o.Workers = workers
			res, rep, err := Bind(g, s, rb, rc, o)
			testHookOnEdges = nil

			if (err != nil) != (refErr != nil) {
				t.Fatalf("seed %d workers %d: error mismatch: engine %v, reference %v", seed, workers, err, refErr)
			}
			if err != nil {
				continue
			}
			for iter, want := range refEdges {
				if !reflect.DeepEqual(engEdges[iter], want) {
					t.Fatalf("seed %d workers %d: iteration %d edge set diverges\nengine:    %v\nreference: %v",
						seed, workers, iter, engEdges[iter], want)
				}
			}
			if len(engEdges) != len(refEdges) {
				t.Fatalf("seed %d workers %d: %d engine iterations vs %d reference", seed, workers, len(engEdges), len(refEdges))
			}
			if !reflect.DeepEqual(res.FUOf, refRes.FUOf) {
				t.Fatalf("seed %d workers %d: FUOf diverges from full rescore", seed, workers)
			}
			if len(res.FUs) != len(refRes.FUs) {
				t.Fatalf("seed %d workers %d: FU count %d vs %d", seed, workers, len(res.FUs), len(refRes.FUs))
			}
			for i, fu := range res.FUs {
				if !reflect.DeepEqual(fu.Ops, refRes.FUs[i].Ops) || fu.Kind != refRes.FUs[i].Kind {
					t.Fatalf("seed %d workers %d: FU %d diverges", seed, workers, i)
				}
			}
			if rep.EdgesScored+rep.EdgesReused != refRep.EdgesScored {
				t.Fatalf("seed %d workers %d: scored %d + reused %d != reference evaluations %d",
					seed, workers, rep.EdgesScored, rep.EdgesReused, refRep.EdgesScored)
			}
			if rep.Iterations != refRep.Iterations {
				t.Fatalf("seed %d workers %d: iteration counts diverge", seed, workers)
			}
		}
		if refErr == nil {
			cases++
		}
	}
	if cases < 10 {
		t.Fatalf("only %d successful random cases exercised", cases)
	}
}

// BenchmarkEngineVsFullRescore pairs the incremental engine against
// the pre-engine full-rescore implementation (referenceBind) on the
// medium benchmark in the MergesPerIteration=1 regime — the
// wall-clock before/after recorded in EXPERIMENTS.md.
func BenchmarkEngineVsFullRescore(b *testing.B) {
	p, _ := workload.ByName("honda")
	g := workload.Generate(p)
	s, err := cdfg.ListSchedule(g, p.RC)
	if err != nil {
		b.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions(sharedTable)
	opt.MergesPerIteration = 1
	// Warm the SA table so both sides measure binding, not estimation.
	if _, _, err := Bind(g, s, rb, p.RC, opt); err != nil {
		b.Fatal(err)
	}
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Bind(g, s, rb, p.RC, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-rescore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := referenceBind(g, s, rb, p.RC, opt, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestWorkerCountInvariance binds the benchmark workloads at worker
// counts 1..8 and requires byte-identical bindings and identical
// scored/reused bookkeeping.
func TestWorkerCountInvariance(t *testing.T) {
	for _, name := range []string{"pr", "wang"} {
		p, _ := workload.ByName(name)
		g := workload.Generate(p)
		s, err := cdfg.ListSchedule(g, p.RC)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := regbind.Bind(g, s)
		if err != nil {
			t.Fatal(err)
		}
		var base *binding.Result
		var baseRep *Report
		for workers := 1; workers <= 8; workers++ {
			opt := DefaultOptions(sharedTable)
			opt.Workers = workers
			res, rep, err := Bind(g, s, rb, p.RC, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if base == nil {
				base, baseRep = res, rep
				continue
			}
			if !reflect.DeepEqual(res.FUOf, base.FUOf) {
				t.Fatalf("%s: binding at workers=%d diverges from workers=1", name, workers)
			}
			if rep.EdgesScored != baseRep.EdgesScored || rep.EdgesReused != baseRep.EdgesReused {
				t.Fatalf("%s: edge bookkeeping at workers=%d diverges (%d/%d vs %d/%d)",
					name, workers, rep.EdgesScored, rep.EdgesReused, baseRep.EdgesScored, baseRep.EdgesReused)
			}
		}
	}
}

// TestReportSplitAndReuse checks the new Report fields on a benchmark:
// reuse must actually happen (the engine's reason to exist), the
// invalidation ratio must be in (0,1), per-iteration stats must sum to
// the totals, and the weight memo must be far smaller than the number
// of evaluations it served.
func TestReportSplitAndReuse(t *testing.T) {
	p, _ := workload.ByName("pr")
	g := workload.Generate(p)
	s, err := cdfg.ListSchedule(g, p.RC)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(sharedTable)
	opt.MergesPerIteration = 1 // many rounds -> maximal reuse opportunity
	_, rep, err := Bind(g, s, rb, p.RC, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgesReused == 0 {
		t.Fatal("incremental engine reused no edges")
	}
	ratio := rep.InvalidationRatio()
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("invalidation ratio %v outside (0,1)", ratio)
	}
	if len(rep.Iters) != rep.Iterations {
		t.Fatalf("%d iteration stats for %d iterations", len(rep.Iters), rep.Iterations)
	}
	sumScored, sumReused, sumMerges := 0, 0, 0
	for _, it := range rep.Iters {
		sumScored += it.EdgesScored
		sumReused += it.EdgesReused
		sumMerges += it.Merges
	}
	if sumScored != rep.EdgesScored || sumReused != rep.EdgesReused {
		t.Fatalf("per-iteration stats (%d/%d) do not sum to totals (%d/%d)",
			sumScored, sumReused, rep.EdgesScored, rep.EdgesReused)
	}
	if sumMerges == 0 {
		t.Fatal("no merges recorded")
	}
	if rep.WeightShapes == 0 || rep.WeightShapes > rep.EdgesScored {
		t.Fatalf("weight memo size %d vs %d scored edges", rep.WeightShapes, rep.EdgesScored)
	}
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binding"
	"repro/internal/bitvec"
	"repro/internal/cdfg"
	"repro/internal/matching"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/satable"
)

// The incremental binding engine behind Bind.
//
// A full rescore evaluates every compatible U×V edge each merge round,
// but a round only mutates the U-nodes that absorbed a partner (their
// operation set, occupation interval, and port sources grow) and kills
// the absorbed V-nodes. Every other pair is untouched, so its
// compatibility verdict and Eq. 4 weight are still valid. The engine
// therefore keeps a persistent edge store keyed by node identity,
// drops a U-node's row whenever it merges (forcing a compatibility
// re-check against its new occupation interval and a rescore), and
// answers everything else from the store.
//
// Freshly scored edges split into two phases: a parallel pure phase
// (compatibility + merged mux shape, written to per-edge slots so no
// two workers share state) and a serial aggregation phase that memoizes
// Eq. 4 per distinct (kind, kL, kR) shape — the weight depends on the
// merged pair only through that shape, so one SA lookup and one Eq. 4
// evaluation serve every edge of the same shape. Aggregation walks the
// slots in a fixed order, which makes the result independent of worker
// count and keeps bindings bit-identical to the monolithic rescore.

// weightKey is the memoization key of one Eq. 4 evaluation: with alpha
// and beta fixed per run, the weight is a pure function of the merged
// mux shape.
type weightKey struct {
	kind   netgen.FUKind
	kl, kr int
}

// storedEdge is one persisted U×V verdict. Incompatible pairs persist
// too (compat false) so their occupation-interval check is also never
// repeated while both endpoints stand.
type storedEdge struct {
	w      float64
	compat bool
}

// fuNode is a working functional-unit node of the bipartite graph.
type fuNode struct {
	id   int // stable identity; edge-store key
	kind netgen.FUKind
	ops  []int
	inU  bool
	dead bool
	// occ is the control-step occupation interval union (multi-cycle
	// resources occupy start..BusyUntil).
	occ bitvec.Set
	// ports tracks the distinct register sources per FU port.
	ports binding.PortSets
	// pcost caches the node's total distinct port sources (|L| + |R|) —
	// the sparse admission score. Maintained on merge.
	pcost int
	// vStamp marks membership in the current round's V list and vIdx
	// the node's index in it (sparse mode; see scoreEdgesSparse).
	vStamp, vIdx int
}

type engine struct {
	rc  cdfg.ResourceConstraint
	opt Options

	nodes  []*fuNode
	counts map[netgen.FUKind]int // live nodes per class, maintained across merges
	store  map[int]map[int]storedEdge
	memo   map[weightKey]float64
	solver *matching.Solver

	// Sparse-mode state (sparse.go). The mode is decided once per run:
	// either the dense store above or the bounded candidate rows below
	// carry the whole binding, never a mix.
	sparse   bool
	k        int // per-U-node candidate bound
	shapeCap int // SA shape clamp (0 = none)
	round    int
	byID     []*fuNode        // stable node id -> node (dead nodes included)
	rows     map[int]*candRow // U-node id -> candidate row
	heap     []admitEnt       // bounded-selection scratch
}

// testHookOnEdges, when non-nil, observes every round's assembled edge
// list before the bipartite solve. Test-only.
var testHookOnEdges func(iter, nU, nV int, edges []matching.Edge)

func newEngine(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, rc cdfg.ResourceConstraint, opt Options) *engine {
	e := &engine{
		rc:     rc,
		opt:    opt,
		counts: map[netgen.FUKind]int{},
		store:  map[int]map[int]storedEdge{},
		memo:   map[weightKey]float64{},
		solver: matching.NewSolver(),
	}
	maxStep := 0
	for _, op := range g.Ops() {
		if bu := s.BusyUntil(g, op); bu > maxStep {
			maxStep = bu
		}
	}
	// Initial nodes: every operation is its own functional unit, with
	// its full occupation interval and port source sets.
	for _, op := range g.Ops() {
		occ := bitvec.NewSet(maxStep + 1)
		for t := s.Step[op]; t <= s.BusyUntil(g, op); t++ {
			occ.Add(t)
		}
		n := &fuNode{
			id:    len(e.nodes),
			kind:  g.Nodes[op].Kind.FUClass(),
			ops:   []int{op},
			occ:   occ,
			ports: binding.NewPortSets(g, rb, res, []int{op}),
		}
		l, r := n.ports.Sizes()
		n.pcost = l + r
		e.nodes = append(e.nodes, n)
		e.counts[n.kind]++
	}
	e.byID = append([]*fuNode(nil), e.nodes...)
	// Mode selection, fixed for the whole run: exact (dense) unless the
	// caller forces sparse via CandidateK, or auto-scale triggers
	// because the largest class outgrows the dense store. Every seed
	// benchmark and every historical golden sits far below the
	// threshold, so they stay bit-identical on the exact path.
	maxClass := 0
	for _, c := range e.counts {
		if c > maxClass {
			maxClass = c
		}
	}
	e.sparse = !opt.Exact && (opt.CandidateK > 0 || maxClass > sparseAutoMinNodes)
	if e.sparse {
		e.k = opt.CandidateK
		if e.k <= 0 {
			e.k = DefaultCandidateK
		}
		switch {
		case opt.ShapeCap > 0:
			e.shapeCap = opt.ShapeCap
		case opt.ShapeCap == 0 && opt.CandidateK == 0:
			// The clamp auto-engages only alongside auto-sparse:
			// explicitly forced sparse runs keep exact Eq. 4 weights.
			e.shapeCap = DefaultShapeCap
		}
		e.rows = map[int]*candRow{}
	}
	e.seedU(s)
	return e
}

// seedU seeds U with the densest control step per class (§5.2.1): those
// operations pairwise conflict, so they are a lower bound witness. When
// the resource constraint allows more units than the densest step
// holds, U is padded from the next-densest steps up to the constraint —
// otherwise every operation would merge into fewer units than
// allocated, bloating their multiplexers while leaving allocated units
// idle.
func (e *engine) seedU(s *cdfg.Schedule) {
	for _, class := range []netgen.FUKind{netgen.FUAdd, netgen.FUMult} {
		perStep := make(map[int][]*fuNode)
		for _, n := range e.nodes {
			if n.kind == class {
				step := s.Step[n.ops[0]]
				perStep[step] = append(perStep[step], n)
			}
		}
		if len(perStep) == 0 {
			continue
		}
		steps := make([]int, 0, len(perStep))
		for step := range perStep {
			steps = append(steps, step)
		}
		sort.Slice(steps, func(i, j int) bool {
			if len(perStep[steps[i]]) != len(perStep[steps[j]]) {
				return len(perStep[steps[i]]) > len(perStep[steps[j]])
			}
			return steps[i] < steps[j]
		})
		target := limitFor(e.rc, class)
		if target <= 0 || target < len(perStep[steps[0]]) {
			target = len(perStep[steps[0]])
		}
		seeded := 0
		for _, step := range steps {
			for _, n := range perStep[step] {
				if seeded >= target {
					break
				}
				n.inU = true
				seeded++
			}
		}
	}
}

// over reports whether a class still exceeds its resource constraint.
func (e *engine) over(class netgen.FUKind) bool {
	l := limitFor(e.rc, class)
	return l > 0 && e.counts[class] > l
}

// run drives the iterative bipartite matching (Algorithm 1, lines 7-16),
// recording one IterationStat per merge round.
func (e *engine) run(rep *Report) error {
	for e.over(netgen.FUAdd) || e.over(netgen.FUMult) {
		rep.Iterations++
		var uList, vList []*fuNode
		for _, n := range e.nodes {
			// Only classes still above their constraint participate.
			if !e.over(n.kind) {
				continue
			}
			if n.inU {
				uList = append(uList, n)
			} else {
				vList = append(vList, n)
			}
		}
		scoreStart := time.Now()
		var (
			edges          []matching.Edge
			scored, reused int
			err            error
		)
		if e.sparse {
			edges, scored, reused, err = e.scoreEdgesSparse(uList, vList)
		} else {
			edges, scored, reused, err = e.scoreEdges(uList, vList)
		}
		if err != nil {
			return err
		}
		scoreNs := time.Since(scoreStart).Nanoseconds()
		// Sample the store at its fullest — right after scoring, before
		// the merge round drains rows. The post-compact sample below only
		// sees slack capacity.
		if en, by := e.memFootprint(); en > rep.PeakEdges || by > rep.PeakStoreBytes {
			if en > rep.PeakEdges {
				rep.PeakEdges = en
			}
			if by > rep.PeakStoreBytes {
				rep.PeakStoreBytes = by
			}
		}
		if testHookOnEdges != nil {
			testHookOnEdges(rep.Iterations, len(uList), len(vList), edges)
		}
		weightOf := make(map[[2]int]float64, len(edges))
		for _, ed := range edges {
			weightOf[[2]int{ed.U, ed.V}] = ed.W
		}
		solveStart := time.Now()
		var match []int
		if e.sparse {
			// Candidate rounds are sparse by construction; the solver
			// routes big low-density rounds to SSP and the rest to the
			// dense Hungarian path.
			match, _ = e.solver.MaxWeightAuto(len(uList), len(vList), edges)
		} else {
			match, _ = e.solver.MaxWeight(len(uList), len(vList), edges)
		}
		solveNs := time.Since(solveStart).Nanoseconds()
		// Apply the matched merges best-weight first so that when the
		// class reaches its constraint mid-iteration, the low-value
		// merges are the ones skipped. Equal weights break on (ui, vi)
		// — with one match per U-node this reproduces the stable
		// by-weight order of the pre-engine implementation exactly.
		type pair struct {
			ui, vi int
			w      float64
		}
		var pairs []pair
		for ui, vi := range match {
			if vi >= 0 {
				pairs = append(pairs, pair{ui, vi, weightOf[[2]int{ui, vi}]})
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].w != pairs[j].w {
				return pairs[i].w > pairs[j].w
			}
			if pairs[i].ui != pairs[j].ui {
				return pairs[i].ui < pairs[j].ui
			}
			return pairs[i].vi < pairs[j].vi
		})
		merged := 0
		for _, pr := range pairs {
			if e.opt.MergesPerIteration > 0 && merged >= e.opt.MergesPerIteration {
				break
			}
			u, v := uList[pr.ui], vList[pr.vi]
			// Respect the constraint exactly: stop merging a class once
			// this iteration's merges bring it to its limit.
			if e.counts[u.kind] <= limitFor(e.rc, u.kind) {
				continue
			}
			e.merge(u, v)
			merged++
		}
		if merged == 0 {
			return fmt.Errorf("core: resource constraint {add:%d mult:%d} unreachable: no compatible merges remain (adds=%d mults=%d)",
				e.rc.Add, e.rc.Mult, e.counts[netgen.FUAdd], e.counts[netgen.FUMult])
		}
		e.compact()
		if en, by := e.memFootprint(); en > rep.PeakEdges || by > rep.PeakStoreBytes {
			if en > rep.PeakEdges {
				rep.PeakEdges = en
			}
			if by > rep.PeakStoreBytes {
				rep.PeakStoreBytes = by
			}
		}
		rep.EdgesScored += scored
		rep.EdgesReused += reused
		rep.Iters = append(rep.Iters, IterationStat{
			Iter:        rep.Iterations,
			UNodes:      len(uList),
			VNodes:      len(vList),
			EdgesScored: scored,
			EdgesReused: reused,
			Merges:      merged,
			ScoreNs:     scoreNs,
			SolveNs:     solveNs,
		})
	}
	return nil
}

// scoreEdges assembles the round's compatible weighted edges. Pairs
// with a stored verdict are answered from the store; the rest are
// evaluated — compatibility and merged mux shape in parallel over
// per-pair slots, then weights via the shape memo in a fixed serial
// order — and persisted. The returned edge list is identical at every
// worker count.
func (e *engine) scoreEdges(uList, vList []*fuNode) (edges []matching.Edge, scored, reused int, err error) {
	type slot struct {
		ui, vi int
		compat bool
		kl, kr int
	}
	var pending []slot
	for ui, u := range uList {
		row := e.store[u.id]
		for vi, v := range vList {
			if se, ok := row[v.id]; ok {
				if se.compat {
					edges = append(edges, matching.Edge{U: ui, V: vi, W: se.w})
					reused++
				}
				continue
			}
			pending = append(pending, slot{ui: ui, vi: vi})
		}
	}
	// Parallel pure phase: each worker writes only its own slots.
	parallelDo(len(pending), e.opt.Workers, func(i int) {
		sl := &pending[i]
		u, v := uList[sl.ui], vList[sl.vi]
		// The paper's two compatibility criteria: same operation class
		// and no overlapping occupation steps.
		if u.kind != v.kind || u.occ.Intersects(v.occ) {
			return
		}
		sl.compat = true
		sl.kl, sl.kr = binding.MergedMuxSizesSets(u.ports, v.ports)
	})
	// Serial aggregation: collect the distinct unmemoized shapes in
	// first-seen slot order, batch-fetch their SA, memoize Eq. 4.
	var missing []satable.Key
	seen := map[weightKey]bool{}
	for i := range pending {
		sl := &pending[i]
		if !sl.compat {
			continue
		}
		k := weightKey{uList[sl.ui].kind, sl.kl, sl.kr}
		if _, ok := e.memo[k]; ok || seen[k] {
			continue
		}
		seen[k] = true
		missing = append(missing, satable.Key{Kind: k.kind, KL: k.kl, KR: k.kr})
	}
	if len(missing) > 0 {
		vals, berr := e.opt.Table.GetBatch(context.Background(), missing, e.opt.Workers)
		if berr != nil {
			return nil, 0, 0, fmt.Errorf("core: SA lookup: %w", berr)
		}
		for i, key := range missing {
			e.memo[weightKey{key.Kind, key.KL, key.KR}] = e.weightFromShape(key.Kind, key.KL, key.KR, vals[i])
		}
	}
	for i := range pending {
		sl := &pending[i]
		u, v := uList[sl.ui], vList[sl.vi]
		row := e.store[u.id]
		if row == nil {
			row = map[int]storedEdge{}
			e.store[u.id] = row
		}
		if !sl.compat {
			row[v.id] = storedEdge{}
			continue
		}
		w := e.memo[weightKey{u.kind, sl.kl, sl.kr}]
		row[v.id] = storedEdge{w: w, compat: true}
		edges = append(edges, matching.Edge{U: sl.ui, V: sl.vi, W: w})
		scored++
	}
	return edges, scored, reused, nil
}

// weightFromShape evaluates Eq. 4 for a merged mux shape. The
// arithmetic is kept in exactly this form — alpha*(1/sa) +
// (1-alpha)*(1/((muxDiff+1)*beta)) — so memoized weights are
// bit-identical to per-edge recomputation.
func (e *engine) weightFromShape(kind netgen.FUKind, kl, kr int, sa float64) float64 {
	muxDiff := kl - kr
	if muxDiff < 0 {
		muxDiff = -muxDiff
	}
	beta := e.opt.BetaAdd
	if kind == netgen.FUMult {
		beta = e.opt.BetaMult
	}
	return e.opt.Alpha*(1/sa) + (1-e.opt.Alpha)*(1/(float64(muxDiff+1)*beta))
}

// merge folds v into u: operations, occupation, and port sources union;
// u's stored edges are invalidated (its intervals and shapes changed);
// v dies and its column is pruned during compaction.
func (e *engine) merge(u, v *fuNode) {
	u.ops = append(u.ops, v.ops...)
	u.occ.Union(v.occ)
	u.ports.Merge(v.ports)
	if e.sparse {
		delete(e.rows, u.id)
	} else {
		delete(e.store, u.id)
	}
	l, r := u.ports.Sizes()
	u.pcost = l + r
	e.counts[u.kind]--
	v.dead = true
}

// compact removes absorbed nodes and prunes their store columns.
func (e *engine) compact() {
	keep := e.nodes[:0]
	for _, n := range e.nodes {
		if n.dead {
			for _, row := range e.store {
				delete(row, n.id)
			}
			continue
		}
		keep = append(keep, n)
	}
	e.nodes = keep
}

// materialize writes the surviving nodes into the binding result.
func (e *engine) materialize(res *binding.Result) {
	for _, n := range e.nodes {
		fu := &binding.FU{ID: len(res.FUs), Kind: n.kind, Ops: append([]int(nil), n.ops...)}
		res.FUs = append(res.FUs, fu)
		for _, op := range n.ops {
			res.FUOf[op] = fu.ID
		}
	}
}

// parallelDo runs fn(0..n-1) over a pool of workers (0 = GOMAXPROCS,
// 1 = serial inline). Work items are claimed via an atomic counter;
// callers must make fn(i) touch only item-i state.
func parallelDo(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

package core_test

import (
	"fmt"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/regbind"
	"repro/internal/satable"
)

// Example binds a 4-operation CDFG to 1 adder and 1 multiplier.
func Example() {
	g := cdfg.NewGraph("demo")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	s1 := g.AddOp(cdfg.KindAdd, "s1", a, b)
	p1 := g.AddOp(cdfg.KindMult, "p1", s1, c)
	s2 := g.AddOp(cdfg.KindAdd, "s2", p1, a)
	p2 := g.AddOp(cdfg.KindMult, "p2", s2, b)
	g.MarkOutput(p2)

	sched, err := cdfg.ListSchedule(g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if err != nil {
		panic(err)
	}
	regs, err := regbind.Bind(g, sched)
	if err != nil {
		panic(err)
	}
	table := satable.New(8, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, sched, regs, cdfg.ResourceConstraint{Add: 1, Mult: 1}, core.DefaultOptions(table))
	if err != nil {
		panic(err)
	}
	for _, fu := range res.FUs {
		fmt.Printf("%s unit executes %d operations\n", fu.Kind, len(fu.Ops))
	}
	// Output:
	// add unit executes 2 operations
	// mult unit executes 2 operations
}

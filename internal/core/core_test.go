package core

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/workload"
)

// sharedTable keeps SA-table computations across tests (entries are
// deterministic, so sharing is safe and fast).
var sharedTable = satable.New(4, satable.EstimatorGlitch)

// figure1 builds the paper's Figure 1 CDFG and schedule.
func figure1() (*cdfg.Graph, *cdfg.Schedule) {
	g := cdfg.NewGraph("fig1")
	in := make([]int, 6)
	for i := range in {
		in[i] = g.AddInput("")
	}
	op1 := g.AddOp(cdfg.KindAdd, "1", in[0], in[1])
	op2 := g.AddOp(cdfg.KindAdd, "2", in[1], in[2])
	op3 := g.AddOp(cdfg.KindMult, "3", in[3], in[4])
	op4 := g.AddOp(cdfg.KindAdd, "4", op1, op2)
	op5 := g.AddOp(cdfg.KindMult, "5", op3, in[5])
	op6 := g.AddOp(cdfg.KindAdd, "6", op4, op5)
	op7 := g.AddOp(cdfg.KindMult, "7", op5, op4)
	op8 := g.AddOp(cdfg.KindAdd, "8", op4, op3)
	g.MarkOutput(op6)
	g.MarkOutput(op7)
	g.MarkOutput(op8)
	s := &cdfg.Schedule{Step: make([]int, len(g.Nodes)), Len: 3}
	s.Step[op1], s.Step[op2], s.Step[op3] = 1, 1, 1
	s.Step[op4], s.Step[op5] = 2, 2
	s.Step[op6], s.Step[op7], s.Step[op8] = 3, 3, 3
	return g, s
}

func bindFigure1(t *testing.T, rc cdfg.ResourceConstraint, alpha float64) (*binding.Result, *Report) {
	t.Helper()
	g, s := figure1()
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(sharedTable)
	opt.Alpha = alpha
	res, rep, err := Bind(g, s, rb, rc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g, s, rc); err != nil {
		t.Fatal(err)
	}
	return res, rep
}

// TestFigure1Example reproduces the paper's worked example: the minimum
// allocation of the Figure 1 CDFG is 2 adders and 1 multiplier, reached
// through iterative bipartite matching.
func TestFigure1Example(t *testing.T) {
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 1}
	res, rep := bindFigure1(t, rc, 0.5)
	counts := res.Counts()
	if counts[netgen.FUAdd] != 2 || counts[netgen.FUMult] != 1 {
		t.Fatalf("allocation = %v, want 2 adders + 1 multiplier", counts)
	}
	if rep.Iterations < 1 {
		t.Fatal("expected at least one matching iteration")
	}
	// All three multiplications share the single multiplier.
	for _, fu := range res.FUs {
		if fu.Kind == netgen.FUMult && len(fu.Ops) != 3 {
			t.Fatalf("multiplier carries %d ops, want 3", len(fu.Ops))
		}
	}
}

// TestTheorem1MinimumConstraint verifies the Theorem 1 guarantee on the
// benchmarks: binding always reaches the per-step-density lower bound.
func TestTheorem1MinimumConstraint(t *testing.T) {
	for _, name := range []string{"pr", "wang"} {
		p, _ := workload.ByName(name)
		g := workload.Generate(p)
		s, err := cdfg.ListSchedule(g, p.RC)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := regbind.Bind(g, s)
		if err != nil {
			t.Fatal(err)
		}
		min := cdfg.MinResources(g, s)
		res, _, err := Bind(g, s, rb, min, DefaultOptions(sharedTable))
		if err != nil {
			t.Fatalf("%s: minimum constraint not met: %v", name, err)
		}
		counts := res.Counts()
		if counts[netgen.FUAdd] > min.Add || counts[netgen.FUMult] > min.Mult {
			t.Fatalf("%s: allocation %v exceeds minimum %+v", name, counts, min)
		}
	}
}

func TestLooserConstraintStopsEarly(t *testing.T) {
	rc := cdfg.ResourceConstraint{Add: 3, Mult: 2}
	res, _ := bindFigure1(t, rc, 0.5)
	counts := res.Counts()
	// Merging stops exactly at the constraint, not below it.
	if counts[netgen.FUAdd] != 3 || counts[netgen.FUMult] != 2 {
		t.Fatalf("allocation = %v, want exactly {add:3 mult:2}", counts)
	}
}

func TestUnreachableConstraintFails(t *testing.T) {
	g, s := figure1()
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1 has two adds: one adder is impossible.
	_, _, err = Bind(g, s, rb, cdfg.ResourceConstraint{Add: 1, Mult: 1}, DefaultOptions(sharedTable))
	if err == nil {
		t.Fatal("impossible constraint should fail")
	}
}

func TestAlphaExtremesProduceValidBindings(t *testing.T) {
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, _ := bindFigure1(t, cdfg.ResourceConstraint{Add: 2, Mult: 1}, alpha)
		if len(res.FUs) != 3 {
			t.Fatalf("alpha=%v: %d FUs, want 3", alpha, len(res.FUs))
		}
	}
}

func TestInvalidOptionsRejected(t *testing.T) {
	g, s := figure1()
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(sharedTable)
	opt.Alpha = 1.5
	if _, _, err := Bind(g, s, rb, cdfg.ResourceConstraint{Add: 2, Mult: 1}, opt); err == nil {
		t.Fatal("alpha out of range accepted")
	}
	opt = DefaultOptions(nil)
	if _, _, err := Bind(g, s, rb, cdfg.ResourceConstraint{Add: 2, Mult: 1}, opt); err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestDeterministicBinding(t *testing.T) {
	r1, _ := bindFigure1(t, cdfg.ResourceConstraint{Add: 2, Mult: 1}, 0.5)
	r2, _ := bindFigure1(t, cdfg.ResourceConstraint{Add: 2, Mult: 1}, 0.5)
	if len(r1.FUs) != len(r2.FUs) {
		t.Fatal("nondeterministic FU count")
	}
	for i := range r1.FUOf {
		if r1.FUOf[i] != r2.FUOf[i] {
			t.Fatal("nondeterministic binding")
		}
	}
}

// TestMuxBalancingEffect: with alpha=0.5 the muxDiff statistics should
// not exceed those at alpha=1 on a benchmark-sized graph (Table 4's
// ordering), and the SA table must be exercised.
func TestMuxBalancingEffect(t *testing.T) {
	p, _ := workload.ByName("pr")
	g := workload.Generate(p)
	s, err := cdfg.ListSchedule(g, p.RC)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	swap := binding.RandomPortAssignment(g, 1)

	run := func(alpha float64) binding.MuxStats {
		opt := DefaultOptions(sharedTable)
		opt.Alpha = alpha
		opt.Swap = swap
		res, _, err := Bind(g, s, rb, p.RC, opt)
		if err != nil {
			t.Fatal(err)
		}
		return binding.ComputeMuxStats(g, rb, res)
	}
	bal := run(0.5)
	noBal := run(1.0)
	if bal.DiffMean > noBal.DiffMean+1e-9 {
		t.Fatalf("alpha=0.5 muxDiff mean %v should not exceed alpha=1's %v", bal.DiffMean, noBal.DiffMean)
	}
	// Same FU count in both (paper: same number of muxes allocated).
	if bal.NumFUs != noBal.NumFUs {
		t.Fatalf("FU counts differ: %d vs %d", bal.NumFUs, noBal.NumFUs)
	}
}

func TestReportFieldsPopulated(t *testing.T) {
	_, rep := bindFigure1(t, cdfg.ResourceConstraint{Add: 2, Mult: 1}, 0.5)
	if rep.EdgesScored == 0 {
		t.Fatal("no edges scored")
	}
	if rep.Runtime <= 0 {
		t.Fatal("runtime not measured")
	}
}

func BenchmarkBindPr(b *testing.B) {
	p, _ := workload.ByName("pr")
	g := workload.Generate(p)
	s, err := cdfg.ListSchedule(g, p.RC)
	if err != nil {
		b.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions(sharedTable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bind(g, s, rb, p.RC, opt); err != nil {
			b.Fatal(err)
		}
	}
}

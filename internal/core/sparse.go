package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/binding"
	"repro/internal/matching"
	"repro/internal/satable"
)

// Sparse candidate store: the scale path of the binding engine.
//
// The dense store persists every compatible U×V verdict, which is
// O(|U|·|V|) entries and forces a full-row rescore — |V| SA-shape
// evaluations — every time a U-node merges. At 10k operations both the
// resident edges and the per-round rescore dwarf the useful work: a
// merge round only ever commits a handful of pairs, and the pairs worth
// committing are overwhelmingly those whose merged multiplexers stay
// small (Eq. 4 rewards small SA and balanced muxes, and both grow with
// the merged port sets).
//
// Sparse mode therefore keeps, per U-node, a bounded candidate row of
// the k most promising partners:
//
//   - Admission is by a cheap O(1) score — the candidate's cached
//     distinct-source count |L|+|R| (an upper bound on its contribution
//     to the merged mux sizes) — after the exact compatibility filter
//     (same class, disjoint occupation intervals). Ties break on
//     ascending node id, so admission is a total order and the row is
//     deterministic regardless of scan order.
//   - Only admitted pairs are scored (mux shape + SA lookup + Eq. 4),
//     so per-round scoring cost is O(|U|·k), not O(|U|·|V|).
//   - Incremental repair: a merge invalidates exactly the survivor's
//     row (its occupation and ports changed) and any row holding the
//     absorbed node as a candidate (its slot freed). Only those rows
//     re-admit; every other row is reused verbatim, including its
//     scored weights. Candidate scores of live nodes never change
//     (only merge survivors change shape, and survivors are U-side,
//     never candidates), so an untouched row is still the true top-k.
//
// Invariants this file maintains:
//
//  1. Admitted candidates are always a subset of the exactly-compatible
//     pairs; no occupation-overlap or cross-class edge is ever emitted.
//  2. With k ≥ the live candidate count, admission degenerates to "all
//     compatible pairs" and — with the shape clamp off — the emitted
//     edge set, weights, and therefore the binding are bit-identical to
//     exact mode (property-tested on all seven seed benchmarks).
//  3. The SA shape clamp (shapeCap) only applies in sparse mode, and by
//     default only when sparse mode itself auto-engaged; exact mode and
//     forced-k runs evaluate Eq. 4 on the true merged shape.

// candEdge is one admitted candidate of a U-node's row.
type candEdge struct {
	vid int // candidate node id (stable identity)
	w   float64
}

// candRow is a U-node's bounded candidate list, ascending by vid.
type candRow struct {
	c []candEdge
}

// admitEnt is a bounded-selection heap entry: worst (highest score,
// then highest vid) at the root so better candidates displace it.
type admitEnt struct {
	score, vid int
}

func admitWorse(a, b admitEnt) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.vid > b.vid
}

// admit selects u's top-k compatible candidates from vList by ascending
// (pcost, id): a bounded max-heap keeps the k best seen, and the root —
// the worst survivor — gates admission in O(1) for the common reject.
func (e *engine) admit(u *fuNode, vList []*fuNode) []admitEnt {
	h := e.heap[:0]
	for _, v := range vList {
		if u.kind != v.kind || u.occ.Intersects(v.occ) {
			continue
		}
		ent := admitEnt{score: v.pcost, vid: v.id}
		if len(h) < e.k {
			h = append(h, ent)
			// Sift up.
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !admitWorse(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
			continue
		}
		if !admitWorse(h[0], ent) {
			continue // ent is no better than the current worst
		}
		// Replace the root and sift down.
		h[0] = ent
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(h) && admitWorse(h[l], h[worst]) {
				worst = l
			}
			if r < len(h) && admitWorse(h[r], h[worst]) {
				worst = r
			}
			if worst == i {
				break
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	e.heap = h
	return h
}

// scoreEdgesSparse is the sparse-mode counterpart of scoreEdges: it
// reconciles each U-node's candidate row (reusing untouched rows,
// re-admitting invalidated ones), scores only fresh pairs — the same
// parallel-shape / serial-weight split as the dense path, under the
// optional shape clamp — and emits the round's edge list in the fixed
// (U order, ascending vid) order, identical at every worker count.
func (e *engine) scoreEdgesSparse(uList, vList []*fuNode) (edges []matching.Edge, scored, reused int, err error) {
	e.round++
	for vi, v := range vList {
		v.vStamp = e.round
		v.vIdx = vi
	}
	type slot struct {
		u, v   *fuNode
		row    *candRow
		idx    int // position in row.c to receive the weight
		kl, kr int
	}
	var pending []slot
	for _, u := range uList {
		row := e.rows[u.id]
		if row != nil {
			valid := true
			for i := range row.c {
				if v := e.byID[row.c[i].vid]; v.dead || v.vStamp != e.round {
					valid = false
					break
				}
			}
			if valid {
				reused += len(row.c)
				continue
			}
		}
		// Re-admission. Weights scored for candidates that survive in
		// the new row are still valid (neither endpoint changed shape —
		// a changed u has no row at all) and are carried over.
		var oldW map[int]float64
		if row != nil {
			oldW = make(map[int]float64, len(row.c))
			for i := range row.c {
				if v := e.byID[row.c[i].vid]; !v.dead && v.vStamp == e.round {
					oldW[row.c[i].vid] = row.c[i].w
				}
			}
		}
		admitted := e.admit(u, vList)
		nr := &candRow{c: make([]candEdge, 0, len(admitted))}
		for _, ent := range admitted {
			nr.c = append(nr.c, candEdge{vid: ent.vid})
		}
		sort.Slice(nr.c, func(i, j int) bool { return nr.c[i].vid < nr.c[j].vid })
		for i := range nr.c {
			if w, ok := oldW[nr.c[i].vid]; ok {
				nr.c[i].w = w
				reused++
				continue
			}
			pending = append(pending, slot{u: u, v: e.byID[nr.c[i].vid], row: nr, idx: i})
		}
		e.rows[u.id] = nr
	}
	// Parallel pure phase: merged mux shapes for fresh pairs only.
	// Compatibility was already established during admission.
	parallelDo(len(pending), e.opt.Workers, func(i int) {
		sl := &pending[i]
		kl, kr := binding.MergedMuxSizesSets(sl.u.ports, sl.v.ports)
		if e.shapeCap > 0 {
			if kl > e.shapeCap {
				kl = e.shapeCap
			}
			if kr > e.shapeCap {
				kr = e.shapeCap
			}
		}
		sl.kl, sl.kr = kl, kr
	})
	// Serial aggregation, identical to the dense path: distinct
	// unmemoized shapes in first-seen order, one batched SA fetch,
	// Eq. 4 through the shape memo.
	var missing []satable.Key
	seen := map[weightKey]bool{}
	for i := range pending {
		sl := &pending[i]
		k := weightKey{sl.u.kind, sl.kl, sl.kr}
		if _, ok := e.memo[k]; ok || seen[k] {
			continue
		}
		seen[k] = true
		missing = append(missing, satable.Key{Kind: k.kind, KL: k.kl, KR: k.kr})
	}
	if len(missing) > 0 {
		vals, berr := e.opt.Table.GetBatch(context.Background(), missing, e.opt.Workers)
		if berr != nil {
			return nil, 0, 0, fmt.Errorf("core: SA lookup: %w", berr)
		}
		for i, key := range missing {
			e.memo[weightKey{key.Kind, key.KL, key.KR}] = e.weightFromShape(key.Kind, key.KL, key.KR, vals[i])
		}
	}
	for i := range pending {
		sl := &pending[i]
		sl.row.c[sl.idx].w = e.memo[weightKey{sl.u.kind, sl.kl, sl.kr}]
		scored++
	}
	// Emission in fixed (U order, ascending vid) order. vList is in
	// ascending id order too, so this matches the dense path's edge
	// order exactly when every compatible pair is admitted.
	for ui, u := range uList {
		row := e.rows[u.id]
		if row == nil {
			continue
		}
		for i := range row.c {
			v := e.byID[row.c[i].vid]
			edges = append(edges, matching.Edge{U: ui, V: v.vIdx, W: row.c[i].w})
		}
	}
	return edges, scored, reused, nil
}

// memFootprint estimates the resident edge-store size: entry count and
// approximate bytes (per-entry cost plus per-row overhead). It is the
// number the Report's memory accounting — and the scale benchmarks'
// memory-budget gate — reads.
func (e *engine) memFootprint() (entries int, bytes int64) {
	if e.sparse {
		for _, row := range e.rows {
			entries += len(row.c)
			bytes += 64 + int64(cap(row.c))*16
		}
		return entries, bytes
	}
	for _, row := range e.store {
		entries += len(row)
		bytes += 48 + int64(len(row))*64
	}
	return entries, bytes
}

// Package core implements HLPower, the paper's contribution: an
// FPGA-targeted, glitch-aware, high-level functional-unit binding
// algorithm for power and area reduction (Algorithm 1).
//
// Binding proceeds iteratively: the operations of the densest control
// step per class seed the set U of allocated functional units; all other
// operations form V; a weighted bipartite graph between U and V is
// solved for maximum weight; matched nodes merge; and the process
// repeats until the resource constraint is met. Edge weights combine a
// gate-level, glitch-aware switching-activity estimate of the merged
// partial datapath (via the precalculated SA table) with explicit
// multiplexer balancing:
//
//	w(e) = alpha * 1/SA + (1-alpha) * 1/((muxDiff+1) * beta)     (Eq. 4)
//
// with beta ~ 30 for adders and ~ 1000 for multipliers.
//
// The iteration is run by an incremental engine (engine.go): edge
// weights persist across merge rounds and only edges incident to
// changed U-nodes are rescored, Eq. 4 is memoized per distinct mux
// shape, and fresh scoring fans out over a deterministic worker pool.
// Bindings are bit-identical to a full per-round rescore at every
// worker count.
package core

import (
	"fmt"
	"time"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/satable"
)

// Options configures HLPower.
type Options struct {
	// Alpha balances SA against mux balancing in Eq. 4. The paper's main
	// results use 0.5; 1.0 disables the muxDiff term.
	Alpha float64
	// BetaAdd and BetaMult scale the muxDiff factor per FU class
	// (empirically ~30 for adds, ~1000 for mults per the paper).
	BetaAdd, BetaMult float64
	// Table is the precalculated SA store (required).
	Table *satable.Table
	// PortSeed drives the random port assignment when Swap is nil.
	PortSeed int64
	// Swap overrides the port assignment (shared with a baseline binder
	// for like-for-like comparison); nil derives one from PortSeed.
	Swap []bool
	// MergesPerIteration bounds how many matched pairs are combined per
	// bipartite solve. 0 combines every matched pair (one coarse
	// iteration per matching). Small values re-evaluate edge weights
	// after a few merges, trading runtime for solution quality; the
	// paper's complexity analysis (a linear number of bipartite solves)
	// corresponds to a small bound.
	MergesPerIteration int
	// Workers sets the scoring worker-pool size: 0 uses GOMAXPROCS,
	// 1 scores serially. The binding is identical at every setting —
	// parallelism only spreads pure per-edge evaluations; aggregation
	// is order-independent.
	Workers int
	// CandidateK bounds the per-U-node candidate list in sparse mode.
	// 0 selects the scale mode automatically: runs whose largest FU
	// class exceeds sparseAutoMinNodes live nodes go sparse with
	// DefaultCandidateK (and the auto SA shape clamp); smaller runs stay
	// on the exact dense store, bit-identical to the historical
	// behaviour. A positive value forces sparse mode at that k for the
	// whole run.
	CandidateK int
	// Exact forces the dense edge store and Hungarian solver regardless
	// of problem size — every compatible U×V pair is scored each round.
	// Small nets take this path automatically; the flag exists so large
	// nets can pay the quadratic cost when a reference binding is
	// wanted.
	Exact bool
	// ShapeCap clamps the (kL, kR) mux shape used for the SA lookup and
	// Eq. 4 in sparse mode, bounding SA-table cost on huge nets where
	// merged port sets reach hundreds of registers. 0 = automatic: the
	// DefaultShapeCap applies only when sparse mode itself was
	// auto-selected (CandidateK == 0); explicitly forced sparse runs
	// stay unclamped so they remain weight-identical to exact mode.
	// Negative disables clamping; positive forces that cap in sparse
	// mode. Exact mode never clamps.
	ShapeCap int
}

// Sparse-mode defaults. DefaultCandidateK is the per-U-node candidate
// bound when scale mode auto-engages; sparseAutoMinNodes is the live
// node count past which a class is considered too large for the dense
// store; DefaultShapeCap bounds SA-lookup mux shapes in auto-sparse
// runs.
const (
	DefaultCandidateK  = 64
	DefaultShapeCap    = 64
	sparseAutoMinNodes = 384
)

// DefaultOptions returns the paper's configuration (alpha = 0.5).
func DefaultOptions(table *satable.Table) Options {
	return Options{Alpha: 0.5, BetaAdd: 30, BetaMult: 1000, Table: table, PortSeed: 1}
}

// IterationStat records one merge round of the engine — the
// per-iteration observability behind the flow stage's bind.iter spans
// and cmd/hlpower's -bindstats.
type IterationStat struct {
	// Iter is the 1-based merge-round number.
	Iter int `json:"iter"`
	// UNodes and VNodes are the bipartite partition sizes this round.
	UNodes int `json:"u_nodes"`
	VNodes int `json:"v_nodes"`
	// EdgesScored counts compatible edges whose weight was freshly
	// evaluated this round; EdgesReused counts compatible edges served
	// from the persistent store.
	EdgesScored int `json:"edges_scored"`
	EdgesReused int `json:"edges_reused"`
	// Merges is the number of matched pairs combined this round.
	Merges int `json:"merges"`
	// ScoreNs and SolveNs split the round's wall time between edge
	// scoring and the bipartite solve.
	ScoreNs int64 `json:"score_ns"`
	SolveNs int64 `json:"solve_ns"`
}

// Report carries run statistics (Table 2's runtime column and the
// iteration behaviour discussed in §5.2).
type Report struct {
	Iterations int `json:"iterations"`
	// EdgesScored counts freshly evaluated edge weights; EdgesReused
	// counts compatible edges answered from the persistent edge store
	// without re-evaluation. Their sum equals the compatible-edge count
	// a full per-round rescore would have evaluated.
	EdgesScored int `json:"edges_scored"`
	EdgesReused int `json:"edges_reused"`
	// WeightShapes is the number of distinct (kind, kL, kR) mux shapes
	// Eq. 4 was evaluated for — the size of the weight memo.
	WeightShapes int           `json:"weight_shapes"`
	TableMisses  int           `json:"table_misses"`
	Runtime      time.Duration `json:"runtime_ns"`
	// Mode records which edge store ran: "exact" (dense, every
	// compatible pair scored and persisted) or "sparse" (bounded
	// per-U-node candidate lists).
	Mode string `json:"mode"`
	// Memory accounting for the edge/candidate store — the source the
	// scale benchmarks' memory-budget gate and hlpowerd's /statsz read
	// from. EdgesResident and StoreBytes describe the store when the
	// run finished; the Peak variants track the largest footprint any
	// merge round left behind. StoreBytes is an estimate (entries ×
	// per-entry cost + per-row overhead), not a heap measurement.
	EdgesResident  int   `json:"edges_resident"`
	StoreBytes     int64 `json:"store_bytes"`
	PeakEdges      int   `json:"peak_edges"`
	PeakStoreBytes int64 `json:"peak_store_bytes"`
	// Iters holds one entry per merge round.
	Iters []IterationStat `json:"iters,omitempty"`
}

// InvalidationRatio returns the fraction of compatible edge queries
// that required fresh evaluation — 1.0 means no reuse (every round
// rescored everything), lower is better.
func (r *Report) InvalidationRatio() float64 {
	total := r.EdgesScored + r.EdgesReused
	if total == 0 {
		return 0
	}
	return float64(r.EdgesScored) / float64(total)
}

// Bind runs Algorithm 1 on a scheduled graph with a completed register
// binding and returns the functional-unit binding.
func Bind(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, rc cdfg.ResourceConstraint, opt Options) (*binding.Result, *Report, error) {
	start := time.Now()
	if opt.Table == nil {
		return nil, nil, fmt.Errorf("core: Options.Table is required")
	}
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return nil, nil, fmt.Errorf("core: alpha %v out of [0,1]", opt.Alpha)
	}
	if err := cdfg.ValidateScheduleLat(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	rep := &Report{}
	missesBefore := opt.Table.Misses()

	res := binding.NewResult(g)
	if opt.Swap != nil {
		copy(res.SwapPorts, opt.Swap)
	} else {
		res.SwapPorts = binding.RandomPortAssignment(g, opt.PortSeed)
	}

	e := newEngine(g, s, rb, res, rc, opt)
	if err := e.run(rep); err != nil {
		return nil, nil, err
	}
	e.materialize(res)

	rep.WeightShapes = len(e.memo)
	rep.TableMisses = opt.Table.Misses() - missesBefore
	rep.Mode = "exact"
	if e.sparse {
		rep.Mode = "sparse"
	}
	rep.EdgesResident, rep.StoreBytes = e.memFootprint()
	rep.Runtime = time.Since(start)
	if err := res.Validate(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("core: produced invalid binding: %w", err)
	}
	return res, rep, nil
}

// limitFor returns the resource-constraint bound for an FU class.
func limitFor(rc cdfg.ResourceConstraint, class netgen.FUKind) int {
	if class == netgen.FUAdd {
		return rc.Add
	}
	return rc.Mult
}

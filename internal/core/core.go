// Package core implements HLPower, the paper's contribution: an
// FPGA-targeted, glitch-aware, high-level functional-unit binding
// algorithm for power and area reduction (Algorithm 1).
//
// Binding proceeds iteratively: the operations of the densest control
// step per class seed the set U of allocated functional units; all other
// operations form V; a weighted bipartite graph between U and V is
// solved for maximum weight; matched nodes merge; and the process
// repeats until the resource constraint is met. Edge weights combine a
// gate-level, glitch-aware switching-activity estimate of the merged
// partial datapath (via the precalculated SA table) with explicit
// multiplexer balancing:
//
//	w(e) = alpha * 1/SA + (1-alpha) * 1/((muxDiff+1) * beta)     (Eq. 4)
//
// with beta ~ 30 for adders and ~ 1000 for multipliers.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/matching"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/satable"
)

// Options configures HLPower.
type Options struct {
	// Alpha balances SA against mux balancing in Eq. 4. The paper's main
	// results use 0.5; 1.0 disables the muxDiff term.
	Alpha float64
	// BetaAdd and BetaMult scale the muxDiff factor per FU class
	// (empirically ~30 for adds, ~1000 for mults per the paper).
	BetaAdd, BetaMult float64
	// Table is the precalculated SA store (required).
	Table *satable.Table
	// PortSeed drives the random port assignment when Swap is nil.
	PortSeed int64
	// Swap overrides the port assignment (shared with a baseline binder
	// for like-for-like comparison); nil derives one from PortSeed.
	Swap []bool
	// MergesPerIteration bounds how many matched pairs are combined per
	// bipartite solve. 0 combines every matched pair (one coarse
	// iteration per matching). Small values re-evaluate edge weights
	// after a few merges, trading runtime for solution quality; the
	// paper's complexity analysis (a linear number of bipartite solves)
	// corresponds to a small bound.
	MergesPerIteration int
}

// DefaultOptions returns the paper's configuration (alpha = 0.5).
func DefaultOptions(table *satable.Table) Options {
	return Options{Alpha: 0.5, BetaAdd: 30, BetaMult: 1000, Table: table, PortSeed: 1}
}

// Report carries run statistics (Table 2's runtime column and the
// iteration behaviour discussed in §5.2).
type Report struct {
	Iterations  int
	EdgesScored int
	TableMisses int
	Runtime     time.Duration
}

// fuNode is a working functional-unit node of the bipartite graph.
type fuNode struct {
	kind  netgen.FUKind
	ops   []int
	inU   bool
	steps map[int]bool
}

// Bind runs Algorithm 1 on a scheduled graph with a completed register
// binding and returns the functional-unit binding.
func Bind(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, rc cdfg.ResourceConstraint, opt Options) (*binding.Result, *Report, error) {
	start := time.Now()
	if opt.Table == nil {
		return nil, nil, fmt.Errorf("core: Options.Table is required")
	}
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return nil, nil, fmt.Errorf("core: alpha %v out of [0,1]", opt.Alpha)
	}
	if err := cdfg.ValidateScheduleLat(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	rep := &Report{}
	missesBefore := opt.Table.Misses()

	res := binding.NewResult(g)
	if opt.Swap != nil {
		copy(res.SwapPorts, opt.Swap)
	} else {
		res.SwapPorts = binding.RandomPortAssignment(g, opt.PortSeed)
	}

	// Initial nodes: every operation is its own functional unit. The
	// steps set holds the full occupation interval so multi-cycle
	// resources merge correctly.
	nodes := make([]*fuNode, 0, len(g.Ops()))
	for _, op := range g.Ops() {
		occ := map[int]bool{}
		for t := s.Step[op]; t <= s.BusyUntil(g, op); t++ {
			occ[t] = true
		}
		nodes = append(nodes, &fuNode{
			kind:  g.Nodes[op].Kind.FUClass(),
			ops:   []int{op},
			steps: occ,
		})
	}

	// Seed U with the densest control step per class (§5.2.1): those
	// operations pairwise conflict, so they are a lower bound witness.
	// When the resource constraint allows more units than the densest
	// step holds, pad U from the next-densest steps up to the
	// constraint — otherwise every operation would merge into fewer
	// units than allocated, bloating their multiplexers while leaving
	// allocated units idle.
	for _, class := range []netgen.FUKind{netgen.FUAdd, netgen.FUMult} {
		perStep := make(map[int][]*fuNode)
		for _, n := range nodes {
			if n.kind == class {
				step := s.Step[n.ops[0]]
				perStep[step] = append(perStep[step], n)
			}
		}
		if len(perStep) == 0 {
			continue
		}
		steps := make([]int, 0, len(perStep))
		for step := range perStep {
			steps = append(steps, step)
		}
		sort.Slice(steps, func(i, j int) bool {
			if len(perStep[steps[i]]) != len(perStep[steps[j]]) {
				return len(perStep[steps[i]]) > len(perStep[steps[j]])
			}
			return steps[i] < steps[j]
		})
		target := limitFor(rc, class)
		if target <= 0 || target < len(perStep[steps[0]]) {
			target = len(perStep[steps[0]])
		}
		seeded := 0
		for _, step := range steps {
			for _, n := range perStep[step] {
				if seeded >= target {
					break
				}
				n.inU = true
				seeded++
			}
		}
	}

	count := func(class netgen.FUKind) int {
		c := 0
		for _, n := range nodes {
			if n.kind == class {
				c++
			}
		}
		return c
	}
	limit := func(class netgen.FUKind) int {
		return limitFor(rc, class)
	}
	over := func(class netgen.FUKind) bool {
		l := limit(class)
		return l > 0 && count(class) > l
	}

	// Iterative bipartite matching (Algorithm 1, lines 7-16).
	for over(netgen.FUAdd) || over(netgen.FUMult) {
		rep.Iterations++
		var uList, vList []*fuNode
		for _, n := range nodes {
			// Only classes still above their constraint participate.
			if !over(n.kind) {
				continue
			}
			if n.inU {
				uList = append(uList, n)
			} else {
				vList = append(vList, n)
			}
		}
		var edges []matching.Edge
		for ui, u := range uList {
			for vi, v := range vList {
				if !compatibleNodes(u, v) {
					continue
				}
				w := edgeWeight(g, rb, res, u, v, opt)
				rep.EdgesScored++
				edges = append(edges, matching.Edge{U: ui, V: vi, W: w})
			}
		}
		weightOf := make(map[[2]int]float64, len(edges))
		for _, e := range edges {
			weightOf[[2]int{e.U, e.V}] = e.W
		}
		match, _ := matching.MaxWeight(len(uList), len(vList), edges)
		// Apply the matched merges best-weight first so that when the
		// class reaches its constraint mid-iteration, the low-value
		// merges are the ones skipped.
		type pair struct {
			ui, vi int
			w      float64
		}
		var pairs []pair
		for ui, vi := range match {
			if vi >= 0 {
				pairs = append(pairs, pair{ui, vi, weightOf[[2]int{ui, vi}]})
			}
		}
		sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].w > pairs[j].w })
		merged := 0
		absorbed := make(map[*fuNode]bool)
		live := map[netgen.FUKind]int{
			netgen.FUAdd:  count(netgen.FUAdd),
			netgen.FUMult: count(netgen.FUMult),
		}
		for _, pr := range pairs {
			if opt.MergesPerIteration > 0 && merged >= opt.MergesPerIteration {
				break
			}
			u, v := uList[pr.ui], vList[pr.vi]
			// Respect the constraint exactly: stop merging a class once
			// this iteration's merges bring it to its limit.
			if live[u.kind] <= limit(u.kind) {
				continue
			}
			u.ops = append(u.ops, v.ops...)
			for st := range v.steps {
				u.steps[st] = true
			}
			absorbed[v] = true
			live[u.kind]--
			merged++
		}
		if merged == 0 {
			return nil, nil, fmt.Errorf("core: resource constraint {add:%d mult:%d} unreachable: no compatible merges remain (adds=%d mults=%d)",
				rc.Add, rc.Mult, count(netgen.FUAdd), count(netgen.FUMult))
		}
		keep := nodes[:0]
		for _, n := range nodes {
			if !absorbed[n] {
				keep = append(keep, n)
			}
		}
		nodes = keep
	}

	// Materialize the result.
	for _, n := range nodes {
		fu := &binding.FU{ID: len(res.FUs), Kind: n.kind, Ops: append([]int(nil), n.ops...)}
		res.FUs = append(res.FUs, fu)
		for _, op := range n.ops {
			res.FUOf[op] = fu.ID
		}
	}
	rep.TableMisses = opt.Table.Misses() - missesBefore
	rep.Runtime = time.Since(start)
	if err := res.Validate(g, s, rc); err != nil {
		return nil, nil, fmt.Errorf("core: produced invalid binding: %w", err)
	}
	return res, rep, nil
}

// limitFor returns the resource-constraint bound for an FU class.
func limitFor(rc cdfg.ResourceConstraint, class netgen.FUKind) int {
	if class == netgen.FUAdd {
		return rc.Add
	}
	return rc.Mult
}

// compatibleNodes applies the paper's two compatibility criteria: same
// operation class and no overlapping control steps.
func compatibleNodes(a, b *fuNode) bool {
	if a.kind != b.kind {
		return false
	}
	small, large := a, b
	if len(large.steps) < len(small.steps) {
		small, large = large, small
	}
	for st := range small.steps {
		if large.steps[st] {
			return false
		}
	}
	return true
}

// edgeWeight evaluates Eq. 4 for merging nodes u and v: the mux sizes of
// the combined FU are derived from the fixed register binding, the SA of
// the resulting partial datapath is looked up in the precalculated
// table, and the muxDiff term rewards balanced input multiplexers.
func edgeWeight(g *cdfg.Graph, rb *regbind.Binding, res *binding.Result, u, v *fuNode, opt Options) float64 {
	fa := &binding.FU{Kind: u.kind, Ops: u.ops}
	fb := &binding.FU{Kind: v.kind, Ops: v.ops}
	kl, kr := binding.MergedMuxSizes(g, rb, res, fa, fb)
	sa := opt.Table.Get(u.kind, kl, kr)
	muxDiff := kl - kr
	if muxDiff < 0 {
		muxDiff = -muxDiff
	}
	beta := opt.BetaAdd
	if u.kind == netgen.FUMult {
		beta = opt.BetaMult
	}
	return opt.Alpha*(1/sa) + (1-opt.Alpha)*(1/(float64(muxDiff+1)*beta))
}

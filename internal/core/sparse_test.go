package core

import (
	"reflect"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/regbind"
	"repro/internal/workload"
)

// bindBench binds one seed benchmark with the given options.
func bindBench(t *testing.T, name string, opt Options) (*Report, []int) {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	g := workload.Generate(p)
	s, err := cdfg.ListSchedule(g, p.RC)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Bind(g, s, rb, p.RC, opt)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep, res.FUOf
}

// TestSparseFullKMatchesExactOnSeeds is the sparsification soundness
// property: with the candidate bound k at least the live node count
// (and the shape clamp off), admission keeps every compatible pair, so
// the sparse path must reproduce the exact dense binding bit for bit —
// on all seven seed benchmarks.
func TestSparseFullKMatchesExactOnSeeds(t *testing.T) {
	for _, p := range workload.Benchmarks {
		exact := DefaultOptions(sharedTable)
		exact.Exact = true
		exactRep, exactFU := bindBench(t, p.Name, exact)
		if exactRep.Mode != "exact" {
			t.Fatalf("%s: Exact run reported mode %q", p.Name, exactRep.Mode)
		}

		sparse := DefaultOptions(sharedTable)
		sparse.CandidateK = p.Adds + p.Mults // ≥ live nodes of any class
		sparse.ShapeCap = -1
		sparseRep, sparseFU := bindBench(t, p.Name, sparse)
		if sparseRep.Mode != "sparse" {
			t.Fatalf("%s: CandidateK=%d run reported mode %q", p.Name, sparse.CandidateK, sparseRep.Mode)
		}
		if !reflect.DeepEqual(sparseFU, exactFU) {
			t.Fatalf("%s: sparse (k=%d) binding differs from exact dense binding", p.Name, sparse.CandidateK)
		}
		if sparseRep.Iterations != exactRep.Iterations {
			t.Fatalf("%s: sparse took %d iterations, exact %d", p.Name, sparseRep.Iterations, exactRep.Iterations)
		}
	}
}

// TestDefaultOptionsStayExactOnSeeds pins the auto mode selection: at
// default options every seed benchmark is far below the scale
// threshold and must keep running the historical dense path, so
// existing goldens can never shift under it.
func TestDefaultOptionsStayExactOnSeeds(t *testing.T) {
	for _, name := range []string{"pr", "chem"} {
		rep, _ := bindBench(t, name, DefaultOptions(sharedTable))
		if rep.Mode != "exact" {
			t.Fatalf("%s: default options selected mode %q, want exact", name, rep.Mode)
		}
	}
}

// scaleCase builds a mid-size random CDFG (several hundred ops) with a
// generous resource constraint so merged mux shapes stay modest.
func scaleCase(t testing.TB, adds, mults int, rc cdfg.ResourceConstraint, seed int64) (*cdfg.Graph, *cdfg.Schedule, *regbind.Binding) {
	p := workload.Profile{
		Name: "sparse-case", PIs: 16, POs: 12,
		Adds: adds, Mults: mults, RC: rc, Seed: seed,
	}
	g := workload.Generate(p)
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, rb
}

// TestSparseWorkerInvariance drives the sparse path (forced default k,
// clamped shapes to keep the SA table small) on mid-size random graphs
// at worker counts 1..8 — the -race half of the scale property test.
// Bindings and bookkeeping must be identical at every worker count.
func TestSparseWorkerInvariance(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		g, s, rb := scaleCase(t, 260, 240, cdfg.ResourceConstraint{Add: 24, Mult: 24}, seed)
		var baseFU []int
		var baseRep *Report
		for workers := 1; workers <= 8; workers++ {
			opt := DefaultOptions(sharedTable)
			opt.CandidateK = DefaultCandidateK
			opt.ShapeCap = 16
			opt.Workers = workers
			res, rep, err := Bind(g, s, rb, cdfg.ResourceConstraint{Add: 24, Mult: 24}, opt)
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			if rep.Mode != "sparse" {
				t.Fatalf("seed %d: mode %q, want sparse", seed, rep.Mode)
			}
			if baseFU == nil {
				baseFU, baseRep = res.FUOf, rep
				continue
			}
			if !reflect.DeepEqual(res.FUOf, baseFU) {
				t.Fatalf("seed %d: sparse binding at workers=%d diverges from workers=1", seed, workers)
			}
			if rep.EdgesScored != baseRep.EdgesScored || rep.EdgesReused != baseRep.EdgesReused {
				t.Fatalf("seed %d: bookkeeping at workers=%d diverges (%d/%d vs %d/%d)",
					seed, workers, rep.EdgesScored, rep.EdgesReused, baseRep.EdgesScored, baseRep.EdgesReused)
			}
		}
	}
}

// TestSparseAutoEngagesAtScale: past the live-node threshold, default
// options must auto-select sparse mode (with the auto shape clamp) and
// still produce a valid deterministic binding.
func TestSparseAutoEngagesAtScale(t *testing.T) {
	rc := cdfg.ResourceConstraint{Add: 48, Mult: 12}
	g, s, rb := scaleCase(t, 430, 70, rc, 21)
	opt := DefaultOptions(sharedTable)
	res1, rep1, err := Bind(g, s, rb, rc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Mode != "sparse" {
		t.Fatalf("auto mode = %q, want sparse (430 adds > threshold)", rep1.Mode)
	}
	res2, _, err := Bind(g, s, rb, rc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.FUOf, res2.FUOf) {
		t.Fatal("auto-sparse binding is not deterministic across runs")
	}
}

// TestSparseMemoryAccounting: the Report's store accounting must be
// populated in both modes, and the bounded candidate store must be
// dramatically smaller than the dense store on the same problem.
func TestSparseMemoryAccounting(t *testing.T) {
	// MergesPerIteration=1 is the flow mainline: rows persist across
	// rounds, so store residency is meaningful (at MergesPerIteration=0
	// every U-node merges each round and the store drains to zero).
	exact := DefaultOptions(sharedTable)
	exact.Exact = true
	exact.MergesPerIteration = 1
	exactRep, _ := bindBench(t, "honda", exact)
	if exactRep.PeakEdges == 0 || exactRep.PeakStoreBytes == 0 {
		t.Fatalf("exact peak accounting empty: %+v", exactRep)
	}

	sparse := DefaultOptions(sharedTable)
	sparse.CandidateK = 8
	sparse.ShapeCap = 16
	sparse.MergesPerIteration = 1
	sparseRep, _ := bindBench(t, "honda", sparse)
	if sparseRep.PeakEdges == 0 || sparseRep.PeakStoreBytes == 0 {
		t.Fatalf("sparse peak accounting empty: %+v", sparseRep)
	}
	if sparseRep.PeakEdges >= exactRep.PeakEdges {
		t.Fatalf("sparse peak edges %d not below exact %d", sparseRep.PeakEdges, exactRep.PeakEdges)
	}
	if sparseRep.PeakStoreBytes >= exactRep.PeakStoreBytes {
		t.Fatalf("sparse peak store bytes %d not below exact %d", sparseRep.PeakStoreBytes, exactRep.PeakStoreBytes)
	}
}

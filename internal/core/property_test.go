package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
	"repro/internal/regbind"
)

// TestRandomGraphsBindValidly drives Algorithm 1 over random scheduled
// CDFGs: every produced binding must validate (all ops bound, class
// match, no occupation clash, constraint met), including with
// multi-cycle libraries.
func TestRandomGraphsBindValidly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cdfg.NewGraph("rand")
		for i := 0; i < 2+rng.Intn(4); i++ {
			g.AddInput("")
		}
		ops := 5 + rng.Intn(25)
		for i := 0; i < ops; i++ {
			kind := cdfg.KindAdd
			switch rng.Intn(3) {
			case 1:
				kind = cdfg.KindMult
			case 2:
				kind = cdfg.KindSub
			}
			g.AddOp(kind, "", rng.Intn(len(g.Nodes)), rng.Intn(len(g.Nodes)))
		}
		consumers := g.Consumers()
		for _, nd := range g.Nodes {
			if nd.Kind.IsOp() && len(consumers[nd.ID]) == 0 {
				g.MarkOutput(nd.ID)
			}
		}
		lib := cdfg.Library{AddLatency: 1 + rng.Intn(2), MultLatency: 1 + rng.Intn(2)}
		rc := cdfg.ResourceConstraint{Add: 1 + rng.Intn(3), Mult: 1 + rng.Intn(3)}
		s, err := cdfg.ListScheduleLat(g, rc, lib)
		if err != nil {
			return false
		}
		rb, err := regbind.Bind(g, s)
		if err != nil {
			return false
		}
		opt := DefaultOptions(sharedTable)
		opt.Alpha = []float64{0, 0.5, 1}[rng.Intn(3)]
		opt.MergesPerIteration = rng.Intn(3)
		res, _, err := Bind(g, s, rb, rc, opt)
		if err != nil {
			// Theorem 1 guarantees the constraint is reachable only for
			// single-cycle libraries (paper §5.2.1); multi-cycle
			// occupation conflicts may legitimately make a schedule's
			// constraint unreachable by iterative merging.
			return lib != cdfg.SingleCycle()
		}
		return res.Validate(g, s, rc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

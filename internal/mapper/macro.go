// Macro-memoized covering. Datapath elaboration emits netlists that
// are overwhelmingly replicated structure — N identical mux trees,
// adders, register-steering blocks — and tags each builder-generated
// range as a logic.Macro. Instead of re-enumerating cuts over every
// instance, the mapper covers each *distinct* macro content once, in a
// canonical coordinate space, and stitches the memoized cover into
// every instance. Covers are keyed by a content hash of the macro's
// canonical encoding (gate functions + internal/external fanin
// references + the semantic mapping options), so the cache is immune
// to node-ID drift, bus aliasing, and shape-label collisions; a shared
// MacroCache (backed by pipeline.Cache and the durable store) reuses
// covers across calls, sessions and daemon restarts.
package mapper

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/cuts"
	"repro/internal/glitch"
	"repro/internal/logic"
	"repro/internal/pipeline"
)

// MacroPolicy selects whether tagged macros are covered by memoized
// canonical covers (see Options.MacroReuse).
type MacroPolicy int

const (
	// MacroAuto engages macro reuse only on large netlists (at least
	// MacroMinGates gates): below the threshold the flat mapper is fast
	// and its cut selection — which sees real arrival times and
	// waveforms at macro boundaries instead of canonical source
	// assumptions — is slightly better informed.
	MacroAuto MacroPolicy = iota
	// MacroOff always maps flat.
	MacroOff
	// MacroOn always uses tagged macros, regardless of size.
	MacroOn
)

func (p MacroPolicy) String() string {
	switch p {
	case MacroAuto:
		return "auto"
	case MacroOff:
		return "off"
	case MacroOn:
		return "on"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// DefaultMacroMinGates is the MacroAuto engagement threshold. Paper
// benchmarks elaborate to a few thousand gates and stay on the flat
// path (bit-identical goldens); the scale workloads (ctrl-2k ≈ 37k
// gates, ctrl-10k ≈ 145k) cross it and get memoized covering.
const DefaultMacroMinGates = 20000

// MacroCover is the canonical cover of one distinct macro content: for
// each gate of the macro, in ID order, the selected cut in canonical
// references. A reference r < NumExt denotes the r'th distinct
// external fanin of the macro in first-use order; r >= NumExt denotes
// internal gate r-NumExt. Covers are immutable once published.
type MacroCover struct {
	// NumExt is the number of distinct external fanins.
	NumExt int
	// Leaves holds the selected cut's canonical leaf references per gate.
	Leaves [][]int
	// Funcs holds the selected cut's function per gate (variable i =
	// Leaves[gate][i]).
	Funcs []*bitvec.TruthTable
	// Waves and Flows hold the canonical covering's selected waveform
	// and area-flow per gate, computed under canonical source
	// assumptions. Stitching reuses them for every instance instead of
	// re-propagating waveforms gate by gate; they only steer downstream
	// glue tie-breaks, so canonical values trade a sliver of estimator
	// fidelity at macro boundaries for skipping the dominant per-
	// instance cost.
	Waves []glitch.Waveform
	Flows []float64
}

// macroCoverJSON is the durable-store representation of a MacroCover.
type macroCoverJSON struct {
	NumExt int             `json:"ext"`
	Gates  []macroGateJSON `json:"gates"`
}

type macroGateJSON struct {
	Leaves []int    `json:"l"`
	Vars   int      `json:"v"`
	Words  []uint64 `json:"w"`
	// Canonical selected-cut waveform (settled probability plus timed
	// activity components) and flow.
	WaveP float64   `json:"p"`
	CompT []int     `json:"ct,omitempty"`
	CompS []float64 `json:"cs,omitempty"`
	Flow  float64   `json:"f"`
}

// MarshalJSON implements the durable-store encoding (see flow's codec
// registration).
func (c *MacroCover) MarshalJSON() ([]byte, error) {
	out := macroCoverJSON{NumExt: c.NumExt, Gates: make([]macroGateJSON, len(c.Leaves))}
	for i, l := range c.Leaves {
		g := macroGateJSON{
			Leaves: l, Vars: c.Funcs[i].NumVars(), Words: c.Funcs[i].Words(),
			WaveP: c.Waves[i].P, Flow: c.Flows[i],
		}
		for _, comp := range c.Waves[i].Comps {
			g.CompT = append(g.CompT, comp.Time)
			g.CompS = append(g.CompS, comp.S)
		}
		out.Gates[i] = g
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a stored cover. The input is
// untrusted (a store file may be corrupt or truncated); any structural
// violation fails the decode, which the store layer treats as a cache
// miss.
func (c *MacroCover) UnmarshalJSON(b []byte) error {
	var in macroCoverJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	if in.NumExt < 0 {
		return fmt.Errorf("mapper: macro cover: negative NumExt %d", in.NumExt)
	}
	leaves := make([][]int, len(in.Gates))
	funcs := make([]*bitvec.TruthTable, len(in.Gates))
	for i, g := range in.Gates {
		if len(g.Leaves) < 1 || len(g.Leaves) > MaxK {
			return fmt.Errorf("mapper: macro cover gate %d: %d leaves outside [1,%d]", i, len(g.Leaves), MaxK)
		}
		if g.Vars != len(g.Leaves) {
			return fmt.Errorf("mapper: macro cover gate %d: %d vars for %d leaves", i, g.Vars, len(g.Leaves))
		}
		for j, r := range g.Leaves {
			if r < 0 || r >= in.NumExt+i {
				return fmt.Errorf("mapper: macro cover gate %d: leaf ref %d out of range", i, r)
			}
			if j > 0 && g.Leaves[j-1] >= r {
				return fmt.Errorf("mapper: macro cover gate %d: leaf refs not strictly increasing", i)
			}
		}
		f, err := bitvec.FromWords(g.Vars, g.Words)
		if err != nil {
			return fmt.Errorf("mapper: macro cover gate %d: %w", i, err)
		}
		leaves[i], funcs[i] = g.Leaves, f
	}
	waves := make([]glitch.Waveform, len(in.Gates))
	flows := make([]float64, len(in.Gates))
	for i, g := range in.Gates {
		if len(g.CompT) != len(g.CompS) {
			return fmt.Errorf("mapper: macro cover gate %d: %d component times for %d activities", i, len(g.CompT), len(g.CompS))
		}
		wv := glitch.Waveform{P: g.WaveP}
		for j := range g.CompT {
			if j > 0 && g.CompT[j-1] >= g.CompT[j] {
				return fmt.Errorf("mapper: macro cover gate %d: component times not strictly increasing", i)
			}
			wv.Comps = append(wv.Comps, glitch.Component{Time: g.CompT[j], S: g.CompS[j]})
		}
		waves[i], flows[i] = wv, g.Flow
	}
	c.NumExt, c.Leaves, c.Funcs = in.NumExt, leaves, funcs
	c.Waves, c.Flows = waves, flows
	return nil
}

// MacroCache memoizes canonical macro covers by content key. Construct
// with NewMacroCache: with a pipeline.Cache it is shared across a
// flow.Session and writes through to the durable artifact store; with
// nil it degrades to a private in-process map. A nil *MacroCache is
// valid and means "no memoization across instances beyond this call" —
// Map still builds a per-call cache internally.
type MacroCache struct {
	stages *pipeline.Cache
	class  string

	mu  sync.Mutex
	mem map[string]*macroEntry

	hits, misses atomic.Int64
}

type macroEntry struct {
	once  sync.Once
	cover *MacroCover
	err   error
}

// NewMacroCache returns a cover cache. stages may be nil (private map);
// class namespaces the entries inside the shared cache and must embed
// every fingerprint the keys do not (flow uses "macro@" + archFP).
func NewMacroCache(stages *pipeline.Cache, class string) *MacroCache {
	return &MacroCache{stages: stages, class: class, mem: make(map[string]*macroEntry)}
}

// Stats reports (hit, miss) counters: hits are cover demands served
// without computing (including waits on another goroutine's in-flight
// computation and durable-store reads).
func (mc *MacroCache) Stats() (hits, misses int64) {
	return mc.hits.Load(), mc.misses.Load()
}

// do returns the cover for key, computing it at most once per key.
func (mc *MacroCache) do(key string, compute func() (*MacroCover, error)) (*MacroCover, error) {
	if mc.stages != nil {
		v, hit, err := mc.stages.Do(context.Background(), mc.class, key, func() (any, error) {
			return compute()
		})
		if err != nil {
			mc.misses.Add(1)
			return nil, err
		}
		cover, ok := v.(*MacroCover)
		if !ok {
			// A foreign artifact under our class (renamed backing
			// misconfiguration); behave like a miss.
			mc.misses.Add(1)
			return compute()
		}
		if hit {
			mc.hits.Add(1)
		} else {
			mc.misses.Add(1)
		}
		return cover, nil
	}
	mc.mu.Lock()
	e, ok := mc.mem[key]
	if !ok {
		e = &macroEntry{}
		mc.mem[key] = e
	}
	mc.mu.Unlock()
	computed := false
	e.once.Do(func() {
		e.cover, e.err = compute()
		computed = true
	})
	if e.err != nil {
		// Errors are not cached: drop the entry so a later call retries.
		mc.mu.Lock()
		if mc.mem[key] == e {
			delete(mc.mem, key)
		}
		mc.mu.Unlock()
		mc.misses.Add(1)
		return nil, e.err
	}
	if computed || !ok {
		mc.misses.Add(1)
	} else {
		mc.hits.Add(1)
	}
	return e.cover, nil
}

// macroInstance is the per-instance analysis of one tagged macro range:
// its distinct external fanins in first-use order and the canonical
// content key its cover is cached under.
type macroInstance struct {
	m      logic.Macro
	extIDs []int
	key    string
}

// analyzeMacro canonicalizes a macro instance. The key hashes the full
// canonical encoding — per gate: truth table and fanin references with
// externals renamed to first-use indices — plus the semantic mapping
// options, so two instances share a key exactly when they pose the
// identical covering sub-problem (same gates, same internal wiring,
// same external aliasing pattern).
func analyzeMacro(net *logic.Network, m logic.Macro, optFP string) macroInstance {
	h := pipeline.NewHasher()
	h.Str("macrocover/v1").Str(optFP).Int(m.Hi - m.Lo)
	extIdx := make(map[int]int)
	var extIDs []int
	for id := m.Lo; id < m.Hi; id++ {
		nd := net.Node(id)
		h.Int(nd.Func.NumVars())
		for _, w := range nd.Func.Words() {
			h.U64(w)
		}
		for _, f := range nd.Fanins {
			if f >= m.Lo {
				h.Int(-1).Int(f - m.Lo)
			} else {
				e, ok := extIdx[f]
				if !ok {
					e = len(extIDs)
					extIdx[f] = e
					extIDs = append(extIDs, f)
				}
				h.Int(-2).Int(e)
			}
		}
		h.Int(-3)
	}
	h.Int(len(extIDs))
	return macroInstance{m: m, extIDs: extIDs, key: h.Sum()}
}

// activeMacros validates the network's macro tags against the Macro
// invariants and the engagement policy, returning the instances to
// cover canonically. Tags that violate an invariant are silently
// demoted to glue (skipped) — tags are advisory.
func activeMacros(net *logic.Network, opt Options) []logic.Macro {
	switch opt.MacroReuse {
	case MacroOff:
		return nil
	case MacroAuto:
		min := opt.MacroMinGates
		if min <= 0 {
			min = DefaultMacroMinGates
		}
		if net.NumGates() < min {
			return nil
		}
	}
	if len(net.Macros) == 0 {
		return nil
	}
	var out []logic.Macro
	prevHi := 0
	for _, m := range net.Macros {
		if m.Lo < prevHi || m.Lo >= m.Hi || m.Hi > net.NumNodes() {
			continue
		}
		ok := true
		for id := m.Lo; id < m.Hi; id++ {
			if net.Node(id).Kind != logic.KindGate {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, m)
		prevHi = m.Hi
	}
	return out
}

// computeMacroCover maps the macro's canonical sub-network flat and
// records each gate's selected cut. External fanins become pseudo
// primary inputs with the combinational-source waveform; the cover is
// therefore a pure function of the canonical encoding, which is what
// makes it cacheable and deterministic under any execution order.
func computeMacroCover(net *logic.Network, inst macroInstance, opt Options) (*MacroCover, error) {
	m := inst.m
	numExt := len(inst.extIDs)
	cn := logic.NewNetwork("macro")
	for e := 0; e < numExt; e++ {
		cn.AddInput(fmt.Sprintf("x%d", e))
	}
	extIdx := make(map[int]int, numExt)
	for i, f := range inst.extIDs {
		extIdx[f] = i
	}
	for id := m.Lo; id < m.Hi; id++ {
		nd := net.Node(id)
		fanins := make([]int, len(nd.Fanins))
		for j, f := range nd.Fanins {
			if f >= m.Lo {
				fanins[j] = numExt + (f - m.Lo)
			} else {
				fanins[j] = extIdx[f]
			}
		}
		cn.AddGate("", nd.Func, fanins...)
	}

	fanout := cn.FanoutCounts()
	states := make([]nodeState, cn.NumNodes())
	sets := make([][]cuts.Cut, cn.NumNodes())
	w := newMapWorker()
	for e := 0; e < numExt; e++ {
		states[e].wave = glitch.SourceWaveform(opt.Sources.InputP, opt.Sources.InputS)
		sets[e] = []cuts.Cut{cuts.Trivial(e)}
	}
	for id := numExt; id < cn.NumNodes(); id++ {
		if err := mapGate(cn, id, states, sets, fanout, opt, w); err != nil {
			var me *MapError
			if errors.As(err, &me) {
				me.Macro = m.Name
				me.Node = nodeName(net, m.Lo+(id-numExt))
			}
			return nil, err
		}
	}
	cover := &MacroCover{
		NumExt: numExt,
		Leaves: make([][]int, m.Hi-m.Lo),
		Funcs:  make([]*bitvec.TruthTable, m.Hi-m.Lo),
		Waves:  make([]glitch.Waveform, m.Hi-m.Lo),
		Flows:  make([]float64, m.Hi-m.Lo),
	}
	for i := range cover.Leaves {
		st := &states[numExt+i]
		cover.Leaves[i] = st.best.Leaves
		cover.Funcs[i] = st.best.Func
		cover.Waves[i] = st.wave
		cover.Flows[i] = st.flow
	}
	return cover, nil
}

// coverFits reports whether a (possibly foreign, store-loaded) cover is
// structurally compatible with the instance. Keys make mismatches
// vanishingly unlikely; on mismatch the caller recomputes fresh.
func coverFits(cover *MacroCover, inst macroInstance) bool {
	if cover == nil || cover.NumExt != len(inst.extIDs) || len(cover.Leaves) != inst.m.Hi-inst.m.Lo {
		return false
	}
	if len(cover.Funcs) != len(cover.Leaves) ||
		len(cover.Waves) != len(cover.Leaves) || len(cover.Flows) != len(cover.Leaves) {
		return false
	}
	for i, ls := range cover.Leaves {
		if len(ls) < 1 || cover.Funcs[i] == nil || cover.Funcs[i].NumVars() != len(ls) {
			return false
		}
		for j, r := range ls {
			if r < 0 || r >= cover.NumExt+i {
				return false
			}
			if j > 0 && ls[j-1] >= r {
				return false
			}
		}
	}
	return true
}

// stitchMacro translates the canonical cover into the instance's node
// space. Translated leaves are in canonical (not sorted-ID) order; the
// cut function's variable order matches the leaf order, which is the
// only correspondence downstream consumers rely on. Arrival times are
// evaluated from the instance's real leaf states (they drive the
// depth-mode objective downstream); waveforms and flows are the
// canonical covering's, copied from the cover — glue consumers use
// them only for flow tie-breaks, and copying skips a per-gate waveform
// propagation per instance, which dominated stitch cost. Macro gates
// publish only their trivial cut to glue enumeration — the macro
// boundary is a cut barrier, which is what keeps the cover independent
// of the surrounding context.
func stitchMacro(inst macroInstance, cover *MacroCover, states []nodeState, sets [][]cuts.Cut) {
	m := inst.m
	// One backing array for all translated leaf slices of the instance.
	total := 0
	for _, canon := range cover.Leaves {
		total += len(canon)
	}
	backing := make([]int, 0, total)
	for i := 0; i < m.Hi-m.Lo; i++ {
		id := m.Lo + i
		canon := cover.Leaves[i]
		start := len(backing)
		for _, r := range canon {
			if r < cover.NumExt {
				backing = append(backing, inst.extIDs[r])
			} else {
				backing = append(backing, m.Lo+(r-cover.NumExt))
			}
		}
		leaves := backing[start:len(backing):len(backing)]
		arr := 0
		for _, l := range leaves {
			if states[l].arrival+1 > arr {
				arr = states[l].arrival + 1
			}
		}
		states[id] = nodeState{
			best:    cuts.Cut{Leaves: leaves, Func: cover.Funcs[i]},
			wave:    cover.Waves[i],
			arrival: arr,
			flow:    cover.Flows[i],
		}
		sets[id] = []cuts.Cut{cuts.Trivial(id)}
	}
}

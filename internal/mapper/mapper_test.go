package mapper

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netgen"
)

// assertEquivalent checks functional equivalence of the original and
// mapped combinational networks on random vectors (aligned by input
// name and output order).
func assertEquivalent(t *testing.T, orig, mapped *logic.Network, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if len(orig.Outputs) != len(mapped.Outputs) {
		t.Fatalf("output counts differ: %d vs %d", len(orig.Outputs), len(mapped.Outputs))
	}
	for trial := 0; trial < trials; trial++ {
		in := make([]bool, len(orig.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		in2 := make([]bool, len(mapped.Inputs))
		for i, id := range mapped.Inputs {
			name := mapped.Node(id).Name
			oid, ok := orig.FindNode(name)
			if !ok {
				t.Fatalf("mapped input %q missing from original", name)
			}
			for j, id1 := range orig.Inputs {
				if id1 == oid {
					in2[i] = in[j]
				}
			}
		}
		st1 := orig.InitialLatchState()
		st2 := mapped.InitialLatchState()
		o1 := orig.OutputValues(orig.Eval(in, st1))
		o2 := mapped.OutputValues(mapped.Eval(in2, st2))
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("trial %d: output %q differs after mapping", trial, orig.Outputs[i].Name)
			}
		}
	}
}

func TestMapAdderEquivalence(t *testing.T) {
	net := netgen.AdderNetwork(8)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, res.Mapped, 200, 1)
}

func TestMapMultiplierEquivalence(t *testing.T) {
	net := netgen.MultiplierNetwork(6)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, res.Mapped, 200, 2)
}

func TestMapPartialDatapathEquivalence(t *testing.T) {
	net := netgen.PartialDatapathNetwork(netgen.FUAdd, 3, 2, 6)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, net, res.Mapped, 200, 3)
}

func TestMapReducesGateCount(t *testing.T) {
	// 4-LUT mapping must pack multiple 2/3-input gates per LUT.
	net := netgen.AdderNetwork(8)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs >= net.NumGates() {
		t.Fatalf("mapping should reduce node count: %d LUTs vs %d gates", res.LUTs, net.NumGates())
	}
	if res.LUTs != res.Mapped.NumGates() {
		t.Fatalf("LUTs field (%d) disagrees with mapped network (%d)", res.LUTs, res.Mapped.NumGates())
	}
}

func TestMapDepthModeMinimizesDepth(t *testing.T) {
	net := netgen.MultiplierNetwork(8)
	optD := DefaultOptions()
	optD.Mode = ModeDepth
	optP := DefaultOptions()
	resD, err := Map(net, optD)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := Map(net, optP)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Depth > resP.Depth {
		t.Fatalf("depth mode (%d) deeper than power mode (%d)", resD.Depth, resP.Depth)
	}
	if resD.Depth > net.Depth() {
		t.Fatalf("mapped depth (%d) exceeds gate-level depth (%d)", resD.Depth, net.Depth())
	}
}

func TestMapPowerModeLowersSA(t *testing.T) {
	// The power-driven cover should have no more estimated SA than the
	// area-driven cover on a glitchy structure.
	net := netgen.MultiplierNetwork(8)
	optP := DefaultOptions()
	optA := DefaultOptions()
	optA.Mode = ModeArea
	resP, err := Map(net, optP)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := Map(net, optA)
	if err != nil {
		t.Fatal(err)
	}
	if resP.EstSA > resA.EstSA*1.05 {
		t.Fatalf("power mode SA %v should not exceed area mode SA %v", resP.EstSA, resA.EstSA)
	}
}

func TestMapRespectsK(t *testing.T) {
	net := netgen.MultiplierNetwork(6)
	for _, k := range []int{3, 4, 5, 6} {
		opt := DefaultOptions()
		opt.K = k
		res, err := Map(net, opt)
		if err != nil {
			t.Fatal(err)
		}
		if s := res.Mapped.Stats(); s.MaxFanin > k {
			t.Fatalf("K=%d violated: max fanin %d", k, s.MaxFanin)
		}
		assertEquivalent(t, net, res.Mapped, 50, int64(k))
	}
}

func TestMapSequentialNetwork(t *testing.T) {
	// Registered adder: r <= a + b; y = r + a.
	net := logic.NewNetwork("seqadd")
	w := 4
	a := make([]int, w)
	b := make([]int, w)
	for i := 0; i < w; i++ {
		a[i] = net.AddInput(name("a", i))
	}
	for i := 0; i < w; i++ {
		b[i] = net.AddInput(name("b", i))
	}
	s1, _ := netgen.BuildAdder(net, "s1_", a, b, -1)
	r := netgen.BuildRegister(net, "r_", s1, false)
	s2, _ := netgen.BuildAdder(net, "s2_", r, a, -1)
	for i, id := range s2 {
		net.MarkOutput(name("y", i), id)
	}
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mapped.Latches) != w {
		t.Fatalf("latches lost in mapping: %d, want %d", len(res.Mapped.Latches), w)
	}
	// Two-cycle simulation equivalence.
	rng := rand.New(rand.NewSource(9))
	st1 := net.InitialLatchState()
	st2 := res.Mapped.InitialLatchState()
	for cyc := 0; cyc < 20; cyc++ {
		in := make([]bool, len(net.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		v1 := net.Eval(in, st1)
		v2 := res.Mapped.Eval(alignInputs(t, net, res.Mapped, in), st2)
		o1 := net.OutputValues(v1)
		o2 := res.Mapped.OutputValues(v2)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("cycle %d output %d differs", cyc, i)
			}
		}
		st1 = net.NextLatchState(v1)
		st2 = res.Mapped.NextLatchState(v2)
	}
}

func alignInputs(t *testing.T, orig, mapped *logic.Network, in []bool) []bool {
	t.Helper()
	out := make([]bool, len(mapped.Inputs))
	for i, id := range mapped.Inputs {
		nm := mapped.Node(id).Name
		for j, id1 := range orig.Inputs {
			if orig.Node(id1).Name == nm {
				out[i] = in[j]
			}
		}
	}
	return out
}

func name(base string, i int) string {
	return base + string(rune('0'+i))
}

func TestMapRejectsBadOptions(t *testing.T) {
	net := netgen.AdderNetwork(2)
	// K outside [MinK, MaxK] yields the structured KRangeError so callers
	// (flag parsing, arch validation) can surface the supported range.
	for _, k := range []int{1, 7} {
		opt := DefaultOptions()
		opt.K = k
		_, err := Map(net, opt)
		if err == nil {
			t.Fatalf("K=%d should be rejected", k)
		}
		var kerr *KRangeError
		if !errors.As(err, &kerr) || kerr.K != k {
			t.Fatalf("K=%d: want *KRangeError carrying K, got %v", k, err)
		}
	}
	opt := DefaultOptions()
	opt.Keep = 0
	if _, err := Map(net, opt); err == nil {
		t.Fatal("Keep=0 should be rejected")
	}
}

func TestMapEstimatesDecompose(t *testing.T) {
	net := netgen.MultiplierNetwork(6)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EstSA <= 0 || res.EstGlitch < 0 || res.EstGlitch > res.EstSA {
		t.Fatalf("inconsistent SA estimates: total=%v glitch=%v", res.EstSA, res.EstGlitch)
	}
}

func BenchmarkMapMult8Power(b *testing.B) {
	net := netgen.MultiplierNetwork(8)
	opt := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(net, opt); err != nil {
			b.Fatal(err)
		}
	}
}

package mapper

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/netgen"
	"repro/internal/pipeline"
)

// resultFingerprint hashes every observable field of a mapping result:
// the full mapped netlist (IDs, names, truth tables, fanins, latch
// wiring), the node map, and all metrics down to the float bits. Equal
// fingerprints mean bit-identical results.
func resultFingerprint(res *Result) string {
	h := pipeline.NewHasher()
	net := res.Mapped
	h.Str(net.Name).Int(len(net.Nodes))
	for _, nd := range net.Nodes {
		h.Int(nd.ID).Int(int(nd.Kind)).Str(nd.Name).Ints(nd.Fanins)
		h.Bool(nd.ConstVal).Int(nd.LatchInput).Bool(nd.LatchInit)
		if nd.Func != nil {
			h.Int(nd.Func.NumVars())
			for _, w := range nd.Func.Words() {
				h.U64(w)
			}
		}
	}
	h.Ints(net.Inputs).Ints(net.Latches)
	for _, o := range net.Outputs {
		h.Str(o.Name).Int(o.Node)
	}
	h.Ints(res.NodeMap).Int(res.LUTs).Int(res.Depth)
	h.U64(math.Float64bits(res.EstSA)).U64(math.Float64bits(res.EstGlitch))
	h.Int(res.MacroInstances).Int(res.MacroDistinct).Int(res.MacroGates)
	return h.Sum()
}

// randomNet builds a seeded random combinational network (the
// formal_test generator shape).
func randomNet(seed int64) *logic.Network {
	rng := rand.New(rand.NewSource(seed))
	net := logic.NewNetwork("rnd")
	var pool []int
	for i := 0; i < 4+rng.Intn(4); i++ {
		pool = append(pool, net.AddInput("i"+string(rune('0'+i))))
	}
	fns := []*bitvec.TruthTable{
		logic.TTAnd2(), logic.TTOr2(), logic.TTXor2(), logic.TTNand2(),
		logic.TTNot(), logic.TTMaj3(), logic.TTXor3(), logic.TTMux2(),
	}
	for g := 0; g < 30+rng.Intn(40); g++ {
		fn := fns[rng.Intn(len(fns))]
		fanins := make([]int, fn.NumVars())
		for j := range fanins {
			fanins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, net.AddGate("", fn, fanins...))
	}
	for o := 0; o < 2+rng.Intn(3); o++ {
		net.MarkOutput("o"+string(rune('0'+o)), pool[len(pool)-1-rng.Intn(6)])
	}
	return net
}

// TestMapWorkerInvariance is the determinism property test for the
// level-parallel mapper: at worker counts 1 through 8 the full Result —
// mapped netlist, node map, LUT/depth counts, and the float SA
// estimates to the bit — is identical, on random nets, on macro-tagged
// generator nets with macro reuse forced on, and in every mapping mode.
func TestMapWorkerInvariance(t *testing.T) {
	nets := []*logic.Network{
		netgen.MuxNetwork(6, 8),
		netgen.AdderNetwork(8),
		netgen.MultiplierNetwork(5),
	}
	for seed := int64(0); seed < 6; seed++ {
		nets = append(nets, randomNet(seed))
	}
	for _, mode := range []Mode{ModePower, ModeDepth, ModeArea} {
		for _, macro := range []MacroPolicy{MacroOff, MacroOn} {
			for ni, net := range nets {
				opt := DefaultOptions()
				opt.Mode = mode
				opt.MacroReuse = macro
				opt.MacroMinGates = 1
				ref, err := Map(net, opt)
				if err != nil {
					t.Fatalf("net %d mode %v macro %v: %v", ni, mode, macro, err)
				}
				refFP := resultFingerprint(ref)
				for jobs := 2; jobs <= 8; jobs++ {
					o := opt
					o.Jobs = jobs
					got, err := Map(net, o)
					if err != nil {
						t.Fatalf("net %d mode %v macro %v jobs %d: %v", ni, mode, macro, jobs, err)
					}
					if fp := resultFingerprint(got); fp != refFP {
						t.Fatalf("net %d mode %v macro %v: jobs=%d result differs from serial", ni, mode, macro, jobs)
					}
				}
			}
		}
	}
}

// TestMacroReuseSharesCovers maps the same macro-tagged network twice
// through one shared MacroCache: the second run must hit the memo for
// every distinct macro, and both results must be bit-identical.
func TestMacroReuseSharesCovers(t *testing.T) {
	net := netgen.MuxNetwork(8, 8)
	opt := DefaultOptions()
	opt.MacroReuse = MacroOn
	opt.MacroMinGates = 1
	opt.Macros = NewMacroCache(pipeline.NewCache(), "macro-test")

	first, err := Map(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.MacroInstances == 0 {
		t.Fatal("macro reuse did not engage on a tagged mux network")
	}
	h0, m0 := opt.Macros.Stats()
	if m0 != int64(first.MacroDistinct) {
		t.Fatalf("first run misses = %d, want %d (one per distinct macro)", m0, first.MacroDistinct)
	}
	second, err := Map(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := opt.Macros.Stats()
	if m1 != m0 {
		t.Fatalf("second run recomputed covers: misses %d -> %d", m0, m1)
	}
	if h1-h0 != int64(second.MacroInstances) {
		t.Fatalf("second run hits = %d, want %d (every instance served from memo)", h1-h0, second.MacroInstances)
	}
	if resultFingerprint(first) != resultFingerprint(second) {
		t.Fatal("memo-served mapping differs from fresh mapping")
	}
}

// TestMacroModeQualityAndCorrectness forces macro covering on and
// checks the covered result is functionally equivalent to the input and
// within a bounded LUT-count distance of the flat cover (the macro cut
// barrier may cost a little area; it must not cost much).
func TestMacroModeQualityAndCorrectness(t *testing.T) {
	for _, net := range []*logic.Network{
		netgen.MuxNetwork(6, 8),
		netgen.AdderNetwork(8),
	} {
		flatOpt := DefaultOptions()
		flatOpt.MacroReuse = MacroOff
		flat, err := Map(net, flatOpt)
		if err != nil {
			t.Fatal(err)
		}
		macroOpt := DefaultOptions()
		macroOpt.MacroReuse = MacroOn
		macroOpt.MacroMinGates = 1
		covered, err := Map(net, macroOpt)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, net, covered.Mapped, 64, 77)
		if covered.LUTs > flat.LUTs*13/10 {
			t.Fatalf("%s: macro cover %d LUTs vs flat %d (> +30%%)", net.Name, covered.LUTs, flat.LUTs)
		}
	}
}

package mapper

import (
	"testing"

	"repro/internal/logic"
)

func TestMapPassThroughOutput(t *testing.T) {
	// PO driven directly by a PI: no LUTs needed, interface preserved.
	net := logic.NewNetwork("wire")
	a := net.AddInput("a")
	net.MarkOutput("y", a)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 0 {
		t.Fatalf("wire should map to 0 LUTs, got %d", res.LUTs)
	}
	if !res.Mapped.OutputValues(res.Mapped.Eval([]bool{true}, nil))[0] {
		t.Fatal("pass-through broken")
	}
}

func TestMapConstantOutput(t *testing.T) {
	net := logic.NewNetwork("const")
	net.AddInput("a") // unused input stays in the interface
	one := net.AddConst("one", true)
	net.MarkOutput("y", one)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mapped.Inputs) != 1 {
		t.Fatal("interface input lost")
	}
	if !res.Mapped.OutputValues(res.Mapped.Eval([]bool{false}, nil))[0] {
		t.Fatal("constant output wrong")
	}
}

func TestMapSingleGate(t *testing.T) {
	net := logic.NewNetwork("g1")
	a := net.AddInput("a")
	b := net.AddInput("b")
	g := net.AddGate("g", logic.TTXor2(), a, b)
	net.MarkOutput("y", g)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 1 || res.Depth != 1 {
		t.Fatalf("single gate maps to %d LUTs depth %d", res.LUTs, res.Depth)
	}
}

func TestMapDanglingLogicDropped(t *testing.T) {
	// Logic reaching no output is not covered.
	net := logic.NewNetwork("dangle")
	a := net.AddInput("a")
	b := net.AddInput("b")
	used := net.AddGate("used", logic.TTAnd2(), a, b)
	dead := net.AddGate("dead", logic.TTOr2(), a, b)
	net.AddGate("dead2", logic.TTNot(), dead)
	net.MarkOutput("y", used)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 1 {
		t.Fatalf("dead logic mapped: %d LUTs, want 1", res.LUTs)
	}
}

func TestMapLatchOnlyNetwork(t *testing.T) {
	// A shift register with no combinational logic at all.
	net := logic.NewNetwork("shift")
	a := net.AddInput("a")
	q1 := net.AddLatch("q1", false)
	q2 := net.AddLatch("q2", false)
	net.ConnectLatch(q1, a)
	net.ConnectLatch(q2, q1)
	net.MarkOutput("y", q2)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 0 || len(res.Mapped.Latches) != 2 {
		t.Fatalf("shift register mapping wrong: %d LUTs, %d latches", res.LUTs, len(res.Mapped.Latches))
	}
	if res.Depth != 0 {
		t.Fatalf("depth should be 0, got %d", res.Depth)
	}
}

func TestMapSharedLogicNotDuplicated(t *testing.T) {
	// A node feeding two outputs should produce a shared LUT, not two.
	net := logic.NewNetwork("share")
	a := net.AddInput("a")
	b := net.AddInput("b")
	x := net.AddGate("x", logic.TTXor2(), a, b)
	n1 := net.AddGate("n1", logic.TTNot(), x)
	n2 := net.AddGate("n2", logic.TTNot(), x)
	net.MarkOutput("y1", n1)
	net.MarkOutput("y2", n2)
	res, err := Map(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// n1 and n2 each absorb x into a 2-input LUT; the cover has exactly
	// two LUTs (x need not exist separately) or three if x is kept —
	// never four.
	if res.LUTs > 3 {
		t.Fatalf("shared logic duplicated: %d LUTs", res.LUTs)
	}
}

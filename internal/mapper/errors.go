package mapper

import (
	"fmt"

	"repro/internal/logic"
)

// MapError decorates a mapping failure with the cone it came from: the
// original network node and, when the failure happened while covering a
// tagged macro, the macro instance. Callers match with errors.As; the
// flow layer wraps it in a StageError so the full provenance chain
// (stage → macro → node → cause) survives to the report.
type MapError struct {
	// Node names the node whose cone failed (the original network's
	// node name, or "node <id>" for unnamed nodes).
	Node string
	// Macro names the macro instance being covered, if any.
	Macro string
	// Err is the underlying cause.
	Err error
}

func (e *MapError) Error() string {
	if e.Macro != "" {
		return fmt.Sprintf("mapper: macro %q, node %s: %v", e.Macro, e.Node, e.Err)
	}
	return fmt.Sprintf("mapper: node %s: %v", e.Node, e.Err)
}

func (e *MapError) Unwrap() error { return e.Err }

// nodeName labels a node for error messages.
func nodeName(net *logic.Network, id int) string {
	if name := net.Node(id).Name; name != "" {
		return fmt.Sprintf("%q (id %d)", name, id)
	}
	return fmt.Sprintf("node %d", id)
}

package mapper

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/verify"
)

// TestMapRandomNetworksFormallyEquivalent fuzzes the mapper (all three
// modes) over random combinational networks and proves equivalence of
// every cover with a BDD miter — stronger than the simulation-based
// checks elsewhere.
func TestMapRandomNetworksFormallyEquivalent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := logic.NewNetwork("fz")
		var pool []int
		for i := 0; i < 3+rng.Intn(4); i++ {
			pool = append(pool, net.AddInput("i"+string(rune('0'+i))))
		}
		if rng.Intn(2) == 0 {
			pool = append(pool, net.AddConst("c", rng.Intn(2) == 0))
		}
		fns := []*bitvec.TruthTable{
			logic.TTAnd2(), logic.TTOr2(), logic.TTXor2(), logic.TTNand2(),
			logic.TTNot(), logic.TTMaj3(), logic.TTXor3(), logic.TTMux2(),
		}
		for g := 0; g < 8+rng.Intn(25); g++ {
			fn := fns[rng.Intn(len(fns))]
			fanins := make([]int, fn.NumVars())
			for j := range fanins {
				fanins[j] = pool[rng.Intn(len(pool))]
			}
			pool = append(pool, net.AddGate("", fn, fanins...))
		}
		for o := 0; o < 1+rng.Intn(3); o++ {
			net.MarkOutput("o"+string(rune('0'+o)), pool[len(pool)-1-rng.Intn(4)])
		}

		for _, k := range []int{4, 6} {
			for _, mode := range []Mode{ModePower, ModeDepth, ModeArea} {
				opt := DefaultOptions()
				opt.K = k
				opt.Mode = mode
				res, err := Map(net, opt)
				if err != nil {
					t.Fatalf("seed %d K=%d mode %v: %v", seed, k, mode, err)
				}
				if s := res.Mapped.Stats(); s.MaxFanin > k {
					t.Fatalf("seed %d K=%d mode %v: max fanin %d", seed, k, mode, s.MaxFanin)
				}
				eq, err := verify.Equivalent(net, res.Mapped, verify.Options{})
				if err != nil {
					t.Fatalf("seed %d K=%d mode %v: %v", seed, k, mode, err)
				}
				if !eq.Equivalent {
					t.Fatalf("seed %d K=%d mode %v: cover differs at %s (counterexample %v)",
						seed, k, mode, eq.FailedOutput, eq.Counterexample)
				}
			}
		}

		// Optimize-then-map composes safely too.
		opt2, _ := logic.Optimize(net)
		res, err := Map(opt2, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d optimize+map: %v", seed, err)
		}
		eq, err := verify.Equivalent(net, res.Mapped, verify.Options{})
		if err != nil {
			t.Fatalf("seed %d optimize+map: %v", seed, err)
		}
		if !eq.Equivalent {
			t.Fatalf("seed %d: optimize+map differs at %s", seed, eq.FailedOutput)
		}
	}
}

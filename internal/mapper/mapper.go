// Package mapper implements FPGA technology mapping to K-input LUTs with
// glitch-aware switching-activity costing, in the style of GlitchMap [6
// in the paper]: K-feasible cuts are enumerated per node [8], each cut's
// output waveform is evaluated under the unit-delay discrete-time model,
// and the cover is chosen to minimize estimated switching activity
// (including glitches). The total estimated SA of the selected cover is
// the SA quantity of the paper's Eq. (3) that drives HLPower's binding
// edge weights.
package mapper

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cuts"
	"repro/internal/glitch"
	"repro/internal/logic"
	"repro/internal/prob"
)

// MinK and MaxK bound the supported LUT input counts, re-exported from
// the architecture package. The upper bound is an estimator contract,
// not a tuning choice: a K-input LUT computes a K-variable function,
// and prob.Char's packed joint-code tables plus the mapper's
// truth-table handling assume at most 6 variables — beyond that the
// validated fast paths silently degrade.
const (
	MinK = arch.MinK
	MaxK = arch.MaxK
)

// KRangeError reports a LUT input count outside [MinK, MaxK]. Map
// returns it (wrapped conventions apply: match with errors.As) instead
// of silently mis-mapping under an unsupported K.
type KRangeError struct {
	// K is the rejected LUT input count.
	K int
}

func (e *KRangeError) Error() string {
	return fmt.Sprintf("mapper: K=%d outside supported LUT range [%d,%d] (prob.Char joint codes and truth-table handling assume <= %d inputs)",
		e.K, MinK, MaxK, MaxK)
}

// Mode selects the mapping objective.
type Mode int

const (
	// ModePower minimizes glitch-aware switching-activity flow, with
	// arrival time as tie break (the GlitchMap objective).
	ModePower Mode = iota
	// ModeDepth minimizes arrival time first (a conventional speed-
	// oriented mapper, used as an ablation baseline).
	ModeDepth
	// ModeArea minimizes LUT-count flow, glitch-blind (ablation).
	ModeArea
)

func (m Mode) String() string {
	switch m {
	case ModePower:
		return "power"
	case ModeDepth:
		return "depth"
	case ModeArea:
		return "area"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures the mapper.
type Options struct {
	// K is the LUT input count (Cyclone II: 4).
	K int
	// Keep bounds the number of cuts retained per node during pruning.
	Keep int
	// Mode is the mapping objective.
	Mode Mode
	// Sources sets the probability/activity of combinational sources.
	Sources prob.SourceValues
}

// DefaultOptions returns the configuration used throughout the
// reproduction: 4-LUTs, 8 cuts per node, power-driven mapping with the
// paper's source assumptions.
func DefaultOptions() Options {
	return Options{K: 4, Keep: 8, Mode: ModePower, Sources: prob.DefaultSources()}
}

// OptionsForArch returns DefaultOptions retargeted to the descriptor's
// LUT input count.
func OptionsForArch(t arch.Target) Options {
	o := DefaultOptions()
	o.K = t.K
	return o
}

// Result is a completed mapping.
type Result struct {
	// Mapped is the LUT-level network (every gate is one LUT).
	Mapped *logic.Network
	// NodeMap maps original node IDs to mapped node IDs (-1 if the node
	// was absorbed into a LUT and has no mapped counterpart).
	NodeMap []int
	// LUTs is the number of LUTs in the cover (the paper's area metric).
	LUTs int
	// Depth is the LUT-level depth of the mapped network.
	Depth int
	// EstSA is the total estimated switching activity of the selected
	// cover under the unit-delay glitch model (paper Eq. 3).
	EstSA float64
	// EstGlitch is the glitch portion of EstSA.
	EstGlitch float64
}

type nodeState struct {
	best    cuts.Cut
	wave    glitch.Waveform
	arrival int
	flow    float64 // objective flow value of the selected cut
}

// Map covers the combinational logic of net with K-input LUTs.
func Map(net *logic.Network, opt Options) (*Result, error) {
	if opt.K < MinK || opt.K > MaxK {
		return nil, &KRangeError{K: opt.K}
	}
	if opt.Keep < 1 {
		return nil, fmt.Errorf("mapper: Keep must be >= 1, got %d", opt.Keep)
	}
	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("mapper: invalid input network: %w", err)
	}
	if maxFanin := net.Stats().MaxFanin; opt.K < maxFanin {
		return nil, fmt.Errorf("mapper: K=%d smaller than widest gate (%d inputs); decompose first", opt.K, maxFanin)
	}

	fanout := net.FanoutCounts()
	states := make([]*nodeState, net.NumNodes())

	// Forward pass: enumerate cuts per node, evaluate each cut's output
	// waveform from the leaves' selected waveforms, and keep the best.
	sets := make([][]cuts.Cut, net.NumNodes())
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		st := &nodeState{}
		switch nd.Kind {
		case logic.KindInput:
			st.wave = glitch.SourceWaveform(opt.Sources.InputP, opt.Sources.InputS)
			sets[id] = []cuts.Cut{cuts.Trivial(id)}
		case logic.KindLatchOut:
			st.wave = glitch.SourceWaveform(opt.Sources.LatchP, opt.Sources.LatchS)
			sets[id] = []cuts.Cut{cuts.Trivial(id)}
		case logic.KindConst:
			st.wave = glitch.ConstWaveform(nd.ConstVal)
			sets[id] = []cuts.Cut{cuts.Trivial(id)}
		case logic.KindGate:
			faninSets := make([][]cuts.Cut, len(nd.Fanins))
			for i, f := range nd.Fanins {
				faninSets[i] = sets[f]
			}
			candidates := cuts.EnumerateNode(nd, faninSets, opt.K)
			bestIdx := -1
			var bestWave glitch.Waveform
			var bestArr int
			var bestFlow float64
			for i, c := range candidates {
				if len(c.Leaves) == 1 && c.Leaves[0] == id {
					continue // trivial self-cut is not implementable
				}
				arr := 0
				flowIn := 0.0
				leafWaves := make([]glitch.Waveform, len(c.Leaves))
				for j, l := range c.Leaves {
					ls := states[l]
					if ls.arrival+1 > arr {
						arr = ls.arrival + 1
					}
					leafWaves[j] = ls.wave
					fo := fanout[l]
					if fo < 1 {
						fo = 1
					}
					flowIn += ls.flow / float64(fo)
				}
				wave := glitch.Propagate(c.Func, leafWaves)
				var flow float64
				switch opt.Mode {
				case ModeArea:
					flow = 1 + flowIn
				default:
					flow = wave.Total() + flowIn
				}
				if bestIdx < 0 || better(opt.Mode, flow, arr, len(c.Leaves), bestFlow, bestArr, len(candidates[bestIdx].Leaves)) {
					bestIdx, bestWave, bestArr, bestFlow = i, wave, arr, flow
				}
			}
			if bestIdx < 0 {
				return nil, fmt.Errorf("mapper: node %d (%s) has no implementable cut", id, nd.Name)
			}
			st.best = candidates[bestIdx]
			st.wave = bestWave
			st.arrival = bestArr
			st.flow = bestFlow
			// Prune the candidate set for consumers upstream.
			sets[id] = cuts.Prune(id, candidates, opt.Keep, func(_ int, a, b cuts.Cut) bool {
				return len(a.Leaves) < len(b.Leaves)
			})
		}
		states[id] = st
	}

	return extractCover(net, states, opt)
}

// better compares candidate cut costs lexicographically per mode.
func better(mode Mode, flow float64, arr, leaves int, bFlow float64, bArr, bLeaves int) bool {
	switch mode {
	case ModeDepth:
		if arr != bArr {
			return arr < bArr
		}
		if flow != bFlow {
			return flow < bFlow
		}
		return leaves < bLeaves
	default: // ModePower, ModeArea
		if flow != bFlow {
			return flow < bFlow
		}
		if arr != bArr {
			return arr < bArr
		}
		return leaves < bLeaves
	}
}

// extractCover walks backward from the roots (primary outputs and latch
// D inputs), instantiating one LUT per needed node, then rebuilds a
// LUT-level logic.Network and evaluates the cover's SA.
func extractCover(net *logic.Network, states []*nodeState, opt Options) (*Result, error) {
	needed := make([]bool, net.NumNodes())
	var need func(int)
	need = func(id int) {
		if needed[id] {
			return
		}
		needed[id] = true
		nd := net.Node(id)
		if nd.Kind != logic.KindGate {
			return
		}
		for _, l := range states[id].best.Leaves {
			need(l)
		}
	}
	for _, o := range net.Outputs {
		need(o.Node)
	}
	for _, q := range net.Latches {
		need(net.Node(q).LatchInput)
	}

	mapped := logic.NewNetwork(net.Name + "_mapped")
	nodeMap := make([]int, net.NumNodes())
	for i := range nodeMap {
		nodeMap[i] = -1
	}
	// Sources first (all kept to preserve the interface), then LUTs in
	// topological (ascending-ID) order.
	for _, id := range net.Inputs {
		nodeMap[id] = mapped.AddInput(net.Node(id).Name)
	}
	for _, q := range net.Latches {
		nodeMap[q] = mapped.AddLatch(net.Node(q).Name, net.Node(q).LatchInit)
	}
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindConst && needed[nd.ID] {
			nodeMap[nd.ID] = mapped.AddConst(nd.Name, nd.ConstVal)
		}
	}
	luts := 0
	for _, nd := range net.Nodes {
		if nd.Kind != logic.KindGate || !needed[nd.ID] {
			continue
		}
		c := states[nd.ID].best
		fanins := make([]int, len(c.Leaves))
		for i, l := range c.Leaves {
			if nodeMap[l] < 0 {
				return nil, fmt.Errorf("mapper: internal error: leaf %d unmapped", l)
			}
			fanins[i] = nodeMap[l]
		}
		nodeMap[nd.ID] = mapped.AddGate(lutName(net, nd.ID), c.Func.Clone(), fanins...)
		luts++
	}
	for _, q := range net.Latches {
		d := net.Node(q).LatchInput
		mapped.ConnectLatch(nodeMap[q], nodeMap[d])
	}
	for _, o := range net.Outputs {
		mapped.MarkOutput(o.Name, nodeMap[o.Node])
	}
	if err := mapped.Check(); err != nil {
		return nil, fmt.Errorf("mapper: produced invalid network: %w", err)
	}

	est := glitch.EstimateNetwork(mapped, opt.Sources)
	return &Result{
		Mapped:    mapped,
		NodeMap:   nodeMap,
		LUTs:      luts,
		Depth:     mapped.Depth(),
		EstSA:     est.TotalActivity(mapped),
		EstGlitch: est.TotalGlitch(mapped),
	}, nil
}

// lutName derives a stable, unique name for the LUT rooted at id.
func lutName(net *logic.Network, id int) string {
	if name := net.Node(id).Name; name != "" {
		return name
	}
	return fmt.Sprintf("lut_%d", id)
}

// Package mapper implements FPGA technology mapping to K-input LUTs with
// glitch-aware switching-activity costing, in the style of GlitchMap [6
// in the paper]: K-feasible cuts are enumerated per node [8], each cut's
// output waveform is evaluated under the unit-delay discrete-time model,
// and the cover is chosen to minimize estimated switching activity
// (including glitches). The total estimated SA of the selected cover is
// the SA quantity of the paper's Eq. (3) that drives HLPower's binding
// edge weights.
//
// Two scaling features are layered over the flat algorithm without
// changing it below their engagement thresholds: memoized macro covers
// for builder-tagged repeated structure (macro.go) and a level-parallel
// execution engine whose results are bit-identical at any worker count
// (the per-gate computation is a pure function of lower-level state, and
// all writes are slot-indexed).
package mapper

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/cuts"
	"repro/internal/glitch"
	"repro/internal/logic"
	"repro/internal/pipeline"
	"repro/internal/prob"
)

// MinK and MaxK bound the supported LUT input counts, re-exported from
// the architecture package. The upper bound is an estimator contract,
// not a tuning choice: a K-input LUT computes a K-variable function,
// and prob.Char's packed joint-code tables plus the mapper's
// truth-table handling assume at most 6 variables — beyond that the
// validated fast paths silently degrade.
const (
	MinK = arch.MinK
	MaxK = arch.MaxK
)

// KRangeError reports a LUT input count outside [MinK, MaxK]. Map
// returns it (wrapped conventions apply: match with errors.As) instead
// of silently mis-mapping under an unsupported K.
type KRangeError struct {
	// K is the rejected LUT input count.
	K int
}

func (e *KRangeError) Error() string {
	return fmt.Sprintf("mapper: K=%d outside supported LUT range [%d,%d] (prob.Char joint codes and truth-table handling assume <= %d inputs)",
		e.K, MinK, MaxK, MaxK)
}

// Mode selects the mapping objective.
type Mode int

const (
	// ModePower minimizes glitch-aware switching-activity flow, with
	// arrival time as tie break (the GlitchMap objective).
	ModePower Mode = iota
	// ModeDepth minimizes arrival time first (a conventional speed-
	// oriented mapper, used as an ablation baseline).
	ModeDepth
	// ModeArea minimizes LUT-count flow, glitch-blind (ablation).
	ModeArea
)

func (m Mode) String() string {
	switch m {
	case ModePower:
		return "power"
	case ModeDepth:
		return "depth"
	case ModeArea:
		return "area"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures the mapper. K, Keep, Mode, Sources, MacroReuse and
// MacroMinGates are semantic (they select the Result); Jobs and Macros
// are execution detail (any value yields a bit-identical Result) and
// are excluded from cache fingerprints.
type Options struct {
	// K is the LUT input count (Cyclone II: 4).
	K int
	// Keep bounds the number of cuts retained per node during pruning.
	Keep int
	// Mode is the mapping objective.
	Mode Mode
	// Sources sets the probability/activity of combinational sources.
	Sources prob.SourceValues

	// MacroReuse selects whether elaboration-tagged macros (the input
	// network's Macros) are covered once per distinct content and
	// stitched per instance. The zero value is MacroAuto.
	MacroReuse MacroPolicy
	// MacroMinGates is the MacroAuto engagement threshold; <= 0 means
	// DefaultMacroMinGates.
	MacroMinGates int

	// Jobs caps the worker goroutines of the level-parallel forward
	// pass; <= 1 maps serially. Results are bit-identical at any value.
	Jobs int
	// Macros shares memoized macro covers across calls (and, through
	// its pipeline.Cache backing, across sessions and restarts). nil
	// falls back to a private per-call cache.
	Macros *MacroCache
}

// DefaultOptions returns the configuration used throughout the
// reproduction: 4-LUTs, 8 cuts per node, power-driven mapping with the
// paper's source assumptions, macro reuse auto-engaged on large nets.
func DefaultOptions() Options {
	return Options{K: 4, Keep: 8, Mode: ModePower, Sources: prob.DefaultSources()}
}

// OptionsForArch returns DefaultOptions retargeted to the descriptor's
// LUT input count.
func OptionsForArch(t arch.Target) Options {
	o := DefaultOptions()
	o.K = t.K
	return o
}

// coverFP fingerprints the options that determine a canonical macro
// cover's content. MacroReuse/MacroMinGates are deliberately excluded:
// they decide whether covers are used, never what a cover contains, so
// MacroOn and MacroAuto share cache entries.
func (o Options) coverFP() string {
	h := pipeline.NewHasher()
	h.Int(o.K).Int(o.Keep).Int(int(o.Mode))
	h.F64(o.Sources.InputP).F64(o.Sources.InputS)
	h.F64(o.Sources.LatchP).F64(o.Sources.LatchS)
	return h.Sum()
}

// Result is a completed mapping.
type Result struct {
	// Mapped is the LUT-level network (every gate is one LUT).
	Mapped *logic.Network
	// NodeMap maps original node IDs to mapped node IDs (-1 if the node
	// was absorbed into a LUT and has no mapped counterpart).
	NodeMap []int
	// LUTs is the number of LUTs in the cover (the paper's area metric).
	LUTs int
	// Depth is the LUT-level depth of the mapped network.
	Depth int
	// EstSA is the total estimated switching activity of the selected
	// cover under the unit-delay glitch model (paper Eq. 3).
	EstSA float64
	// EstGlitch is the glitch portion of EstSA.
	EstGlitch float64

	// MacroInstances counts the macro instances covered by memoized
	// canonical covers (0 when macro reuse did not engage).
	MacroInstances int
	// MacroDistinct counts the distinct cover keys among those
	// instances; MacroInstances - MacroDistinct covers were reused.
	MacroDistinct int
	// MacroGates counts original gates inside covered macros.
	MacroGates int
}

type nodeState struct {
	best    cuts.Cut
	wave    glitch.Waveform
	arrival int
	flow    float64 // objective flow value of the selected cut
}

// mapWorker bundles the per-worker reusable state of the forward pass:
// cut-enumeration scratch, a private glitch estimator (its memo is
// exact, so per-worker memo state never changes values), and small
// buffers.
type mapWorker struct {
	scratch   *cuts.Scratch
	est       *glitch.Estimator
	waves     []glitch.Waveform
	faninSets [][]cuts.Cut
	arrs      []int
	flowIns   []float64
}

func newMapWorker() *mapWorker {
	return &mapWorker{scratch: cuts.NewScratch(), est: glitch.NewEstimator()}
}

var errNoCut = errors.New("no implementable cut")

// mapTask is one unit of the forward pass: a whole macro instance
// (macro >= 0, an index into the instance list) or a single glue gate.
type mapTask struct {
	macro int
	gate  int
}

// Map covers the combinational logic of net with K-input LUTs.
func Map(net *logic.Network, opt Options) (*Result, error) {
	if opt.K < MinK || opt.K > MaxK {
		return nil, &KRangeError{K: opt.K}
	}
	if opt.Keep < 1 {
		return nil, fmt.Errorf("mapper: Keep must be >= 1, got %d", opt.Keep)
	}
	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("mapper: invalid input network: %w", err)
	}
	if maxFanin := net.Stats().MaxFanin; opt.K < maxFanin {
		return nil, fmt.Errorf("mapper: K=%d smaller than widest gate (%d inputs); decompose first", opt.K, maxFanin)
	}

	n := net.NumNodes()
	fanout := net.FanoutCounts()
	states := make([]nodeState, n)
	sets := make([][]cuts.Cut, n)

	// Sources: fixed waveforms, trivial cut sets.
	for id := 0; id < n; id++ {
		nd := net.Node(id)
		switch nd.Kind {
		case logic.KindInput:
			states[id].wave = glitch.SourceWaveform(opt.Sources.InputP, opt.Sources.InputS)
			sets[id] = []cuts.Cut{cuts.Trivial(id)}
		case logic.KindLatchOut:
			states[id].wave = glitch.SourceWaveform(opt.Sources.LatchP, opt.Sources.LatchS)
			sets[id] = []cuts.Cut{cuts.Trivial(id)}
		case logic.KindConst:
			states[id].wave = glitch.ConstWaveform(nd.ConstVal)
			sets[id] = []cuts.Cut{cuts.Trivial(id)}
		}
	}

	macros := activeMacros(net, opt)
	var instances []macroInstance
	if len(macros) > 0 {
		fp := opt.coverFP()
		instances = make([]macroInstance, len(macros))
		for i, m := range macros {
			instances[i] = analyzeMacro(net, m, fp)
		}
	}
	mc := opt.Macros
	if mc == nil && len(instances) > 0 {
		mc = NewMacroCache(nil, "")
	}

	levels := buildPlan(net, instances)

	runTask := func(t mapTask, w *mapWorker) error {
		if t.macro >= 0 {
			inst := &instances[t.macro]
			cover, err := mc.do(inst.key, func() (*MacroCover, error) {
				return computeMacroCover(net, *inst, opt)
			})
			if err == nil && !coverFits(cover, *inst) {
				// A corrupt or colliding stored cover: recompute fresh,
				// bypassing the cache.
				cover, err = computeMacroCover(net, *inst, opt)
			}
			if err != nil {
				return err
			}
			stitchMacro(*inst, cover, states, sets)
			return nil
		}
		return mapGate(net, t.gate, states, sets, fanout, opt, w)
	}

	if opt.Jobs <= 1 {
		w := newMapWorker()
		for _, tasks := range levels {
			for _, t := range tasks {
				if err := runTask(t, w); err != nil {
					return nil, err
				}
			}
		}
	} else if err := runLevelsParallel(levels, opt.Jobs, runTask); err != nil {
		return nil, err
	}

	res, err := extractCover(net, states, opt)
	if err != nil {
		return nil, err
	}
	if len(instances) > 0 {
		distinct := make(map[string]struct{}, len(instances))
		for _, inst := range instances {
			distinct[inst.key] = struct{}{}
			res.MacroGates += inst.m.Hi - inst.m.Lo
		}
		res.MacroInstances = len(instances)
		res.MacroDistinct = len(distinct)
	}
	return res, nil
}

// runLevelsParallel executes each level's tasks over a worker pool.
// Within a level all tasks are independent (they read only lower-level
// slots and write only their own), so scheduling order cannot affect
// the Result; the wait at each level boundary supplies the
// happens-before edge for the next level's reads.
func runLevelsParallel(levels [][]mapTask, jobs int, run func(mapTask, *mapWorker) error) error {
	workers := make([]*mapWorker, jobs)
	for i := range workers {
		workers[i] = newMapWorker()
	}
	var errs []error
	for _, tasks := range levels {
		if len(tasks) == 0 {
			continue
		}
		if cap(errs) < len(tasks) {
			errs = make([]error, len(tasks))
		}
		errs = errs[:len(tasks)]
		for i := range errs {
			errs[i] = nil
		}
		nw := jobs
		if nw > len(tasks) {
			nw = len(tasks)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(nw)
		for wi := 0; wi < nw; wi++ {
			go func(w *mapWorker) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					errs[i] = run(tasks[i], w)
				}
			}(workers[wi])
		}
		wg.Wait()
		// First error in task order, for a deterministic report.
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// buildPlan groups the forward-pass work into condensed dependency
// levels: tasks are macro instances (supernodes) and glue-gate
// singletons; a task's level is 1 + the maximum level among the nodes
// it reads. One ascending-ID pass suffices: a macro's external
// references all precede its range, so its level is final by the time
// its first gate is visited, and glue reading macro internals always
// follows the whole macro in ID order.
func buildPlan(net *logic.Network, instances []macroInstance) [][]mapTask {
	n := net.NumNodes()
	nodeLevel := make([]int32, n)
	owner := make([]int32, n) // instance index + 1; 0 = glue
	for mi := range instances {
		for id := instances[mi].m.Lo; id < instances[mi].m.Hi; id++ {
			owner[id] = int32(mi + 1)
		}
	}
	var levels [][]mapTask
	add := func(lvl int32, t mapTask) {
		for len(levels) <= int(lvl) {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], t)
	}
	for id := 0; id < n; id++ {
		nd := net.Node(id)
		if nd.Kind != logic.KindGate {
			continue // sources stay at level 0
		}
		if o := owner[id]; o != 0 {
			inst := &instances[o-1]
			if id != inst.m.Lo {
				continue
			}
			lvl := int32(1)
			for _, f := range inst.extIDs {
				if nodeLevel[f]+1 > lvl {
					lvl = nodeLevel[f] + 1
				}
			}
			for g := inst.m.Lo; g < inst.m.Hi; g++ {
				nodeLevel[g] = lvl
			}
			add(lvl, mapTask{macro: int(o - 1)})
			continue
		}
		lvl := int32(1)
		for _, f := range nd.Fanins {
			if nodeLevel[f]+1 > lvl {
				lvl = nodeLevel[f] + 1
			}
		}
		nodeLevel[id] = lvl
		add(lvl, mapTask{macro: -1, gate: id})
	}
	return levels
}

// mapGate runs the per-gate forward step: enumerate K-feasible cuts
// from the fanins' kept sets, evaluate each candidate's arrival, flow
// and output waveform from the leaves' selected states, keep the best,
// and publish the pruned candidate set. It writes only states[id] and
// sets[id] and reads only fanin-side slots, which is what makes it safe
// to run level-parallel.
func mapGate(net *logic.Network, id int, states []nodeState, sets [][]cuts.Cut, fanout []int, opt Options, w *mapWorker) error {
	nd := net.Node(id)
	faninSets := w.faninSets[:0]
	for _, f := range nd.Fanins {
		faninSets = append(faninSets, sets[f])
	}
	w.faninSets = faninSets
	candidates := w.scratch.EnumerateNode(nd, faninSets, opt.K)
	var (
		bestIdx  int
		bestWave glitch.Waveform
		bestArr  int
		bestFlow float64
	)
	switch opt.Mode {
	case ModeDepth:
		bestIdx, bestWave, bestArr, bestFlow = selectDepth(id, candidates, states, fanout, w)
	case ModeArea:
		bestIdx, bestWave, bestArr, bestFlow = selectArea(id, candidates, states, fanout, w)
	default:
		bestIdx, bestWave, bestArr, bestFlow = selectFlow(id, candidates, states, fanout, opt.Mode, w)
	}
	if bestIdx < 0 {
		return &MapError{Node: nodeName(net, id), Err: errNoCut}
	}
	st := nodeState{best: candidates[bestIdx], wave: bestWave, arrival: bestArr, flow: bestFlow}
	// Prune the candidate set for consumers upstream, then detach it
	// from the scratch's reused backing array.
	kept := cuts.Prune(id, candidates, opt.Keep, func(_ int, a, b cuts.Cut) bool {
		return len(a.Leaves) < len(b.Leaves)
	})
	cp := make([]cuts.Cut, len(kept))
	copy(cp, kept)
	states[id] = st
	sets[id] = cp
	return nil
}

// candMeasure computes a candidate cut's arrival time and fanout-shared
// flow-in from the leaves' selected states, without touching waveforms.
func candMeasure(c cuts.Cut, states []nodeState, fanout []int) (arr int, flowIn float64) {
	for _, l := range c.Leaves {
		ls := &states[l]
		if ls.arrival+1 > arr {
			arr = ls.arrival + 1
		}
		fo := fanout[l]
		if fo < 1 {
			fo = 1
		}
		flowIn += ls.flow / float64(fo)
	}
	return arr, flowIn
}

// candWave propagates the candidate's output waveform from the leaves'
// selected waveforms.
func candWave(c cuts.Cut, states []nodeState, w *mapWorker) glitch.Waveform {
	leafWaves := w.waves[:0]
	for _, l := range c.Leaves {
		leafWaves = append(leafWaves, states[l].wave)
	}
	w.waves = leafWaves[:0]
	return w.est.Propagate(c.Func, leafWaves)
}

// selectFlow is flow-first (ModePower) selection. The flow objective is
// the propagated waveform's activity, so every candidate pays a
// propagation.
func selectFlow(id int, candidates []cuts.Cut, states []nodeState, fanout []int, mode Mode, w *mapWorker) (int, glitch.Waveform, int, float64) {
	bestIdx := -1
	var bestWave glitch.Waveform
	var bestArr int
	var bestFlow float64
	for i, c := range candidates {
		if len(c.Leaves) == 1 && c.Leaves[0] == id {
			continue // trivial self-cut is not implementable
		}
		arr, flowIn := candMeasure(c, states, fanout)
		wave := candWave(c, states, w)
		flow := wave.Total() + flowIn
		if bestIdx < 0 || better(mode, flow, arr, len(c.Leaves), bestFlow, bestArr, len(candidates[bestIdx].Leaves)) {
			bestIdx, bestWave, bestArr, bestFlow = i, wave, arr, flow
		}
	}
	return bestIdx, bestWave, bestArr, bestFlow
}

// selectDepth is arrival-first (ModeDepth) selection. Arrival and
// flow-in are cheap integer/float reductions; the waveform matters only
// for the flow tiebreak among minimum-arrival candidates, so
// propagation — the dominant per-candidate cost — runs exclusively for
// those. The winner, its waveform, and the published state are
// bit-identical to exhaustive evaluation: a candidate above the minimum
// arrival can never win the (arrival, flow, leaves) lexicographic
// comparison, and ties keep the first-seen candidate in both forms.
func selectDepth(id int, candidates []cuts.Cut, states []nodeState, fanout []int, w *mapWorker) (int, glitch.Waveform, int, float64) {
	arrs := w.arrs[:0]
	flowIns := w.flowIns[:0]
	minArr := -1
	for _, c := range candidates {
		if len(c.Leaves) == 1 && c.Leaves[0] == id {
			arrs = append(arrs, -1) // trivial self-cut is not implementable
			flowIns = append(flowIns, 0)
			continue
		}
		arr, flowIn := candMeasure(c, states, fanout)
		arrs = append(arrs, arr)
		flowIns = append(flowIns, flowIn)
		if minArr < 0 || arr < minArr {
			minArr = arr
		}
	}
	w.arrs, w.flowIns = arrs, flowIns
	bestIdx := -1
	var bestWave glitch.Waveform
	var bestFlow float64
	if minArr < 0 {
		return -1, bestWave, 0, 0
	}
	for i, c := range candidates {
		if arrs[i] != minArr { // arrivals are >= 1, so this also skips trivial cuts
			continue
		}
		wave := candWave(c, states, w)
		flow := wave.Total() + flowIns[i]
		if bestIdx < 0 || flow < bestFlow || (flow == bestFlow && len(c.Leaves) < len(candidates[bestIdx].Leaves)) {
			bestIdx, bestWave, bestFlow = i, wave, flow
		}
	}
	return bestIdx, bestWave, minArr, bestFlow
}

// selectArea is area-mode selection: the flow objective (1 + flow-in)
// is waveform-independent, so only the winning cut is propagated.
func selectArea(id int, candidates []cuts.Cut, states []nodeState, fanout []int, w *mapWorker) (int, glitch.Waveform, int, float64) {
	bestIdx := -1
	var bestArr int
	var bestFlow float64
	for i, c := range candidates {
		if len(c.Leaves) == 1 && c.Leaves[0] == id {
			continue // trivial self-cut is not implementable
		}
		arr, flowIn := candMeasure(c, states, fanout)
		flow := 1 + flowIn
		if bestIdx < 0 || better(ModeArea, flow, arr, len(c.Leaves), bestFlow, bestArr, len(candidates[bestIdx].Leaves)) {
			bestIdx, bestArr, bestFlow = i, arr, flow
		}
	}
	if bestIdx < 0 {
		return -1, glitch.Waveform{}, 0, 0
	}
	return bestIdx, candWave(candidates[bestIdx], states, w), bestArr, bestFlow
}

// better compares candidate cut costs lexicographically per mode.
func better(mode Mode, flow float64, arr, leaves int, bFlow float64, bArr, bLeaves int) bool {
	switch mode {
	case ModeDepth:
		if arr != bArr {
			return arr < bArr
		}
		if flow != bFlow {
			return flow < bFlow
		}
		return leaves < bLeaves
	default: // ModePower, ModeArea
		if flow != bFlow {
			return flow < bFlow
		}
		if arr != bArr {
			return arr < bArr
		}
		return leaves < bLeaves
	}
}

// extractCover walks backward from the roots (primary outputs and latch
// D inputs), instantiating one LUT per needed node, then rebuilds a
// LUT-level logic.Network and evaluates the cover's SA.
func extractCover(net *logic.Network, states []nodeState, opt Options) (*Result, error) {
	needed := make([]bool, net.NumNodes())
	var need func(int)
	need = func(id int) {
		if needed[id] {
			return
		}
		needed[id] = true
		nd := net.Node(id)
		if nd.Kind != logic.KindGate {
			return
		}
		for _, l := range states[id].best.Leaves {
			need(l)
		}
	}
	for _, o := range net.Outputs {
		need(o.Node)
	}
	for _, q := range net.Latches {
		need(net.Node(q).LatchInput)
	}

	mapped := logic.NewNetwork(net.Name + "_mapped")
	nodeMap := make([]int, net.NumNodes())
	for i := range nodeMap {
		nodeMap[i] = -1
	}
	// Sources first (all kept to preserve the interface), then LUTs in
	// topological (ascending-ID) order.
	for _, id := range net.Inputs {
		nodeMap[id] = mapped.AddInput(net.Node(id).Name)
	}
	for _, q := range net.Latches {
		nodeMap[q] = mapped.AddLatch(net.Node(q).Name, net.Node(q).LatchInit)
	}
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindConst && needed[nd.ID] {
			nodeMap[nd.ID] = mapped.AddConst(nd.Name, nd.ConstVal)
		}
	}
	luts := 0
	for _, nd := range net.Nodes {
		if nd.Kind != logic.KindGate || !needed[nd.ID] {
			continue
		}
		c := states[nd.ID].best
		fanins := make([]int, len(c.Leaves))
		for i, l := range c.Leaves {
			if nodeMap[l] < 0 {
				return nil, &MapError{
					Node: nodeName(net, nd.ID),
					Err:  fmt.Errorf("internal error: cut leaf %s unmapped", nodeName(net, l)),
				}
			}
			fanins[i] = nodeMap[l]
		}
		nodeMap[nd.ID] = mapped.AddGate(lutName(net, nd.ID), c.Func.Clone(), fanins...)
		luts++
	}
	for _, q := range net.Latches {
		d := net.Node(q).LatchInput
		mapped.ConnectLatch(nodeMap[q], nodeMap[d])
	}
	for _, o := range net.Outputs {
		mapped.MarkOutput(o.Name, nodeMap[o.Node])
	}
	if err := mapped.Check(); err != nil {
		return nil, fmt.Errorf("mapper: produced invalid network: %w", err)
	}

	est := glitch.EstimateNetworkJobs(mapped, opt.Sources, opt.Jobs)
	return &Result{
		Mapped:    mapped,
		NodeMap:   nodeMap,
		LUTs:      luts,
		Depth:     mapped.Depth(),
		EstSA:     est.TotalActivity(mapped),
		EstGlitch: est.TotalGlitch(mapped),
	}, nil
}

// lutName derives a stable, unique name for the LUT rooted at id.
func lutName(net *logic.Network, id int) string {
	if name := net.Node(id).Name; name != "" {
		return name
	}
	return fmt.Sprintf("lut_%d", id)
}

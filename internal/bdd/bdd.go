// Package bdd implements reduced ordered binary decision diagrams
// (Bryant's ROBDDs) with hash-consing and an ITE-based apply engine.
// The probability engine (internal/prob) computes exact signal
// probabilities by truth-table enumeration, which is fine for K-feasible
// cuts; BDDs extend the same computations to wider functions (weighted
// path counting is linear in the diagram size), and give the repository
// the canonical-form machinery an EDA codebase is expected to have.
package bdd

import (
	"fmt"

	"repro/internal/bitvec"
)

// Ref is a node reference. The constants False and True are terminals.
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	varIdx int32 // variable index (terminals use -1)
	lo, hi Ref
}

// Manager owns the node store, the unique table, and the ITE cache.
type Manager struct {
	nodes  []node
	unique map[node]Ref
	ite    map[[3]Ref]Ref
}

// New creates an empty manager.
func New() *Manager {
	m := &Manager{
		nodes:  make([]node, 2),
		unique: make(map[node]Ref),
		ite:    make(map[[3]Ref]Ref),
	}
	m.nodes[False] = node{varIdx: -1}
	m.nodes[True] = node{varIdx: -1}
	return m
}

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// mk returns the canonical node for (v, lo, hi).
func (m *Manager) mk(v int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{varIdx: v, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

// Var returns the BDD for variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 {
		panic("bdd: negative variable index")
	}
	return m.mk(int32(i), False, True)
}

// topVar returns the top variable of a reference (large sentinel for
// terminals, so terminals sort below every variable).
func (m *Manager) topVar(r Ref) int32 {
	if r <= True {
		return 1<<30 - 1
	}
	return m.nodes[r].varIdx
}

// cofactors splits r on variable v (which must be <= r's top variable).
func (m *Manager) cofactors(r Ref, v int32) (lo, hi Ref) {
	if r <= True || m.nodes[r].varIdx != v {
		return r, r
	}
	return m.nodes[r].lo, m.nodes[r].hi
}

// ITE computes if-then-else(f, g, h) — the universal operation.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r
	}
	v := m.topVar(f)
	if gv := m.topVar(g); gv < v {
		v = gv
	}
	if hv := m.topVar(h); hv < v {
		v = hv
	}
	f0, f1 := m.cofactors(f, v)
	g0, g1 := m.cofactors(g, v)
	h0, h1 := m.cofactors(h, v)
	r := m.mk(v, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.ite[key] = r
	return r
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Not returns NOT f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// FromTruthTable builds the BDD of a truth table over variables
// 0..n-1 by Shannon expansion.
func (m *Manager) FromTruthTable(tt *bitvec.TruthTable) Ref {
	var build func(assign uint, v int) Ref
	build = func(assign uint, v int) Ref {
		if v == tt.NumVars() {
			if tt.Get(assign) {
				return True
			}
			return False
		}
		lo := build(assign, v+1)
		hi := build(assign|1<<uint(v), v+1)
		return m.mk(int32(v), lo, hi)
	}
	return build(0, 0)
}

// Eval evaluates f on an assignment (bit i of assign = variable i).
func (m *Manager) Eval(f Ref, assign uint) bool {
	for f > True {
		n := m.nodes[f]
		if assign&(1<<uint(n.varIdx)) != 0 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SignalProb returns P(f = 1) given independent variable probabilities
// p[i] (variables beyond len(p) default to 0.5). Linear in BDD size.
func (m *Manager) SignalProb(f Ref, p []float64) float64 {
	memo := make(map[Ref]float64)
	var walk func(Ref) float64
	walk = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		pv := 0.5
		if int(n.varIdx) < len(p) {
			pv = p[n.varIdx]
		}
		val := (1-pv)*walk(n.lo) + pv*walk(n.hi)
		memo[r] = val
		return val
	}
	return walk(f)
}

// CountMinterms returns |f^{-1}(1)| over n variables.
func (m *Manager) CountMinterms(f Ref, n int) uint64 {
	memo := make(map[Ref]float64)
	var walk func(Ref) float64
	walk = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		nd := m.nodes[r]
		val := 0.5*walk(nd.lo) + 0.5*walk(nd.hi)
		memo[r] = val
		return val
	}
	frac := walk(f)
	return uint64(frac*float64(uint64(1)<<uint(n)) + 0.5)
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int32]bool)
	var walk func(Ref)
	walk = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		vars[m.nodes[r].varIdx] = true
		walk(m.nodes[r].lo)
		walk(m.nodes[r].hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NodeCount returns the number of distinct nodes reachable from f
// (excluding terminals) — the usual BDD size metric.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		walk(m.nodes[r].lo)
		walk(m.nodes[r].hi)
	}
	walk(f)
	return len(seen)
}

// String renders a small BDD for debugging.
func (m *Manager) String(f Ref) string {
	if f == False {
		return "0"
	}
	if f == True {
		return "1"
	}
	n := m.nodes[f]
	return fmt.Sprintf("(x%d ? %s : %s)", n.varIdx, m.String(n.hi), m.String(n.lo))
}

// Node exposes a non-terminal node's variable and cofactors (used by
// counterexample extraction in the verify package). Panics on terminals.
func (m *Manager) Node(r Ref) (varIdx int, lo, hi Ref) {
	if r <= True {
		panic("bdd: Node on terminal")
	}
	n := m.nodes[r]
	return int(n.varIdx), n.lo, n.hi
}

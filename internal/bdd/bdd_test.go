package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestTerminalsAndVar(t *testing.T) {
	m := New()
	x := m.Var(0)
	if m.Eval(x, 0) || !m.Eval(x, 1) {
		t.Fatal("variable semantics wrong")
	}
	if m.Not(m.Not(x)) != x {
		t.Fatal("double negation must be canonical")
	}
	if m.And(x, m.Not(x)) != False {
		t.Fatal("x AND NOT x must be False")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Fatal("x OR NOT x must be True")
	}
}

func TestCanonicity(t *testing.T) {
	// Structurally different constructions of the same function yield
	// the same reference — the ROBDD canonical-form property.
	m := New()
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	lhs := m.And(a, m.And(b, c))
	rhs := m.And(m.And(a, b), c)
	if lhs != rhs {
		t.Fatal("associativity lost canonicity")
	}
	// De Morgan.
	dm1 := m.Not(m.And(a, b))
	dm2 := m.Or(m.Not(a), m.Not(b))
	if dm1 != dm2 {
		t.Fatal("De Morgan lost canonicity")
	}
}

func TestFromTruthTableMatchesEval(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%6)
		rng := rand.New(rand.NewSource(seed))
		tt := bitvec.New(n)
		for i := 0; i < 1<<n; i++ {
			if rng.Intn(2) == 0 {
				tt.Set(uint(i), true)
			}
		}
		m := New()
		r := m.FromTruthTable(tt)
		for a := 0; a < 1<<n; a++ {
			if m.Eval(r, uint(a)) != tt.Get(uint(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestITEAgainstTruthTables(t *testing.T) {
	// Random ops composed in both worlds agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		m := New()
		ttPool := []*bitvec.TruthTable{}
		refPool := []Ref{}
		for i := 0; i < n; i++ {
			ttPool = append(ttPool, bitvec.Var(n, i))
			refPool = append(refPool, m.Var(i))
		}
		for step := 0; step < 12; step++ {
			i := rng.Intn(len(ttPool))
			j := rng.Intn(len(ttPool))
			var tt *bitvec.TruthTable
			var r Ref
			switch rng.Intn(4) {
			case 0:
				tt = bitvec.New(n).And(ttPool[i], ttPool[j])
				r = m.And(refPool[i], refPool[j])
			case 1:
				tt = bitvec.New(n).Or(ttPool[i], ttPool[j])
				r = m.Or(refPool[i], refPool[j])
			case 2:
				tt = bitvec.New(n).Xor(ttPool[i], ttPool[j])
				r = m.Xor(refPool[i], refPool[j])
			default:
				tt = bitvec.New(n).Not(ttPool[i])
				r = m.Not(refPool[i])
			}
			ttPool = append(ttPool, tt)
			refPool = append(refPool, r)
		}
		top := len(ttPool) - 1
		for a := 0; a < 1<<n; a++ {
			if m.Eval(refPool[top], uint(a)) != ttPool[top].Get(uint(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSignalProbMatchesEnumeration(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%5)
		rng := rand.New(rand.NewSource(seed))
		tt := bitvec.New(n)
		for i := 0; i < 1<<n; i++ {
			if rng.Intn(2) == 0 {
				tt.Set(uint(i), true)
			}
		}
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		m := New()
		r := m.FromTruthTable(tt)
		got := m.SignalProb(r, p)
		// Reference: direct on-set enumeration.
		want := 0.0
		for a := 0; a < 1<<n; a++ {
			if !tt.Get(uint(a)) {
				continue
			}
			prod := 1.0
			for i := 0; i < n; i++ {
				if a&(1<<uint(i)) != 0 {
					prod *= p[i]
				} else {
					prod *= 1 - p[i]
				}
			}
			want += prod
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMinterms(t *testing.T) {
	m := New()
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	maj := m.Or(m.Or(m.And(a, b), m.And(a, c)), m.And(b, c))
	if got := m.CountMinterms(maj, 3); got != 4 {
		t.Fatalf("majority minterms = %d, want 4", got)
	}
	if got := m.CountMinterms(True, 5); got != 32 {
		t.Fatalf("True over 5 vars = %d", got)
	}
	if got := m.CountMinterms(False, 5); got != 0 {
		t.Fatalf("False = %d", got)
	}
}

func TestSupport(t *testing.T) {
	m := New()
	x1, x3 := m.Var(1), m.Var(3)
	f := m.Xor(x1, x3)
	sup := m.Support(f)
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("support = %v, want [1 3]", sup)
	}
	if len(m.Support(True)) != 0 {
		t.Fatal("terminal support must be empty")
	}
}

func TestNodeCountCanonicalCompression(t *testing.T) {
	// XOR of n variables has exactly 2n-1 internal nodes in an ROBDD.
	m := New()
	f := False
	n := 8
	for i := 0; i < n; i++ {
		f = m.Xor(f, m.Var(i))
	}
	if got := m.NodeCount(f); got != 2*n-1 {
		t.Fatalf("xor%d node count = %d, want %d", n, got, 2*n-1)
	}
}

func TestWideFunctionBeyondEnumeration(t *testing.T) {
	// 24-variable parity: enumeration (2^24) would be slow; the BDD is
	// linear. P(parity) = 0.5 for any independent inputs with p = 0.5.
	m := New()
	f := False
	for i := 0; i < 24; i++ {
		f = m.Xor(f, m.Var(i))
	}
	p := m.SignalProb(f, nil)
	if math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("parity probability = %v", p)
	}
	if m.NodeCount(f) != 47 {
		t.Fatalf("parity-24 nodes = %d, want 47", m.NodeCount(f))
	}
}

func BenchmarkBuildParity32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New()
		f := False
		for v := 0; v < 32; v++ {
			f = m.Xor(f, m.Var(v))
		}
		_ = f
	}
}

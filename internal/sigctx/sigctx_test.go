package sigctx

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

// raise sends sig to the test process itself; the handler installed by
// notify intercepts it before the default disposition applies.
func raise(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), sig); err != nil {
		t.Fatalf("raise %v: %v", sig, err)
	}
}

// TestFirstSignalCancelsSecondForces is the satellite contract: signal
// one cancels the context (graceful drain), signal two invokes the
// force-exit path with the signal in hand.
func TestFirstSignalCancelsSecondForces(t *testing.T) {
	forced := make(chan os.Signal, 1)
	// SIGUSR1 keeps the test's signal traffic away from the harness's
	// own INT/TERM handling.
	ctx, stop := notify(context.Background(), func(sig os.Signal) { forced <- sig }, syscall.SIGUSR1)
	defer stop()

	raise(t, syscall.SIGUSR1)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	select {
	case sig := <-forced:
		t.Fatalf("force-exit ran after one signal (%v)", sig)
	case <-time.After(50 * time.Millisecond):
	}

	raise(t, syscall.SIGUSR1)
	select {
	case sig := <-forced:
		if sig != syscall.SIGUSR1 {
			t.Fatalf("forced with %v, want SIGUSR1", sig)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not invoke the force-exit path")
	}
}

// TestStopReleasesWithoutSignals pins the clean path: stop cancels the
// context, detaches the handler, and a later signal must not reach the
// force-exit hook (it would kill the process under the default
// disposition for real signals — harmless for USR1 here, but the hook
// firing would be the bug).
func TestStopReleasesWithoutSignals(t *testing.T) {
	forced := make(chan os.Signal, 1)
	ctx, stop := notify(context.Background(), func(sig os.Signal) { forced <- sig }, syscall.SIGUSR2)
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stop did not cancel the context")
	}
	// Idempotent.
	stop()
	select {
	case sig := <-forced:
		t.Fatalf("force-exit ran after stop (%v)", sig)
	case <-time.After(50 * time.Millisecond):
	}
}

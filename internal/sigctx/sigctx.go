// Package sigctx implements the two-stage interrupt contract shared by
// hlpower and hlpowerd: the first SIGINT/SIGTERM cancels the returned
// context (cooperative cancellation — sweeps wind down, the daemon
// drains in-flight requests and flushes its store), and a second signal
// forces immediate exit with status 2 instead of hanging on a stuck
// drain. signal.NotifyContext cannot express the second stage: it
// cancels once and swallows every later signal.
package sigctx

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Notify returns a context cancelled by the first SIGINT or SIGTERM. A
// second signal prints a diagnostic and exits the process with status 2
// (the bad-usage/forced-exit code of the CLI's exit contract) without
// waiting for the drain to finish. The returned stop function releases
// the signal registration and goroutine; call it on the clean path.
func Notify(parent context.Context) (context.Context, context.CancelFunc) {
	return notify(parent, func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "second %v during shutdown: forcing exit\n", sig)
		os.Exit(2)
	}, os.Interrupt, syscall.SIGTERM)
}

// notify is Notify with the force-exit action and signal set injectable
// so tests can observe the second-signal path without killing the test
// process.
func notify(parent context.Context, force func(os.Signal), sigs ...os.Signal) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	stopCh := make(chan struct{})
	var once sync.Once
	stop := func() {
		cancel()
		once.Do(func() {
			signal.Stop(ch)
			close(stopCh)
		})
	}
	go func() {
		select {
		case <-ch:
			cancel()
		case <-stopCh:
			return
		}
		// Armed: the graceful shutdown is underway. One more signal
		// abandons it.
		select {
		case sig := <-ch:
			force(sig)
		case <-stopCh:
		}
	}()
	return ctx, stop
}

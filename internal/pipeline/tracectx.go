package pipeline

import "context"

// tracesCtxKey carries a stage execution's traces through the context,
// so the stage body can record sub-spans without threading trace
// arguments through every layer.
type tracesCtxKey struct{}

// WithTraces returns a context carrying the traces for AddSpan. Exec
// installs it around each compute, replacing any traces an outer stage
// installed, so sub-spans always land in the traces of the stage
// actually running.
func WithTraces(ctx context.Context, traces ...*Trace) context.Context {
	if len(traces) == 0 {
		return ctx
	}
	return context.WithValue(ctx, tracesCtxKey{}, traces)
}

// AddSpan records a span into every trace carried by the context; with
// none attached it is a no-op. Stage bodies use it for finer-grained
// observability than the one span Exec records — e.g. the bind stage's
// per-merge-round spans.
func AddSpan(ctx context.Context, sp Span) {
	trs, _ := ctx.Value(tracesCtxKey{}).([]*Trace)
	for _, tr := range trs {
		tr.Add(sp)
	}
}

// Package pipeline provides the keyed, cached, instrumented stage
// primitives the experiment harness composes its end-to-end flow from.
// A pipeline is a chain of Stage values; each stage derives an explicit
// cache key from its input (configuration fields plus the content
// fingerprint of the upstream artifact), so independent runs that share
// a prefix — every binder over one benchmark, every ablation point of a
// parameter sweep — share the prefix's computed artifacts through one
// content-addressed Cache. The same Cache primitive backs the
// switching-activity table (internal/satable), unifying the repo's
// singleflight logic in one place.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Stats counts cache traffic for one artifact class. A waiter served by
// another goroutine's in-flight computation counts as a hit: the work
// ran once. A demand served from the backing store counts as a
// BackingHit — it avoided the computation but paid a disk read.
type Stats struct {
	Hits        int
	Misses      int
	BackingHits int
}

// Backing is a second-level artifact store a Cache consults on miss and
// writes through to on every successful computation. Implementations
// must be safe for concurrent use, must treat Get misses and Put
// failures as non-fatal (a durable store never fails a request — see
// internal/store), and must return values that satisfy the same
// immutability contract as cached artifacts.
type Backing interface {
	// Get returns the stored artifact for (class, key), or false. A
	// corrupt or undecodable entry is a miss, never an error.
	Get(ctx context.Context, class, key string) (any, bool)
	// Put stores an artifact. Best effort: errors are absorbed (and
	// logged) by the implementation.
	Put(ctx context.Context, class, key string, val any)
}

// renamedBacking rewrites the class of every Get/Put, so one physical
// store can namespace logically distinct caches (e.g. per-table SA
// entries, per-config run results) without the caches knowing.
type renamedBacking struct {
	b      Backing
	rename func(class string) string
}

func (r renamedBacking) Get(ctx context.Context, class, key string) (any, bool) {
	return r.b.Get(ctx, r.rename(class), key)
}

func (r renamedBacking) Put(ctx context.Context, class, key string, val any) {
	r.b.Put(ctx, r.rename(class), key, val)
}

// RenameBacking returns a view of b with every class rewritten through
// rename. Callers whose in-memory class names are not globally unique
// (satable's "sa", the session run cache's "run") use it to stamp the
// persisted class with the fingerprint that makes entries portable.
func RenameBacking(b Backing, rename func(class string) string) Backing {
	return renamedBacking{b: b, rename: rename}
}

// entry is one cached artifact slot. Waiters block on done and read
// val/err afterwards.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a content-addressed artifact cache with singleflight
// deduplication and per-class hit/miss accounting. Keys are namespaced
// by an artifact class (typically the stage name), so one Cache serves a
// whole pipeline. The zero value is not usable; construct with NewCache.
//
// Cached artifacts are shared across callers and must be treated as
// immutable by everyone downstream.
type Cache struct {
	mu      sync.Mutex
	classes map[string]map[string]*entry
	stats   map[string]*Stats
	backing Backing
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		classes: make(map[string]map[string]*entry),
		stats:   make(map[string]*Stats),
	}
}

// class returns the entry map and stats for a class, creating them on
// first use. Callers must hold c.mu.
func (c *Cache) class(class string) (map[string]*entry, *Stats) {
	m, ok := c.classes[class]
	if !ok {
		m = make(map[string]*entry)
		c.classes[class] = m
		c.stats[class] = &Stats{}
	}
	return m, c.stats[class]
}

// Do returns the artifact stored under (class, key), computing it with
// fn on first use. Concurrent calls on the same key share a single
// successful execution; the duplicates block and count as hits. Errors
// are never cached, and a waiter whose computation fails under another
// caller retries under its own call instead of adopting the foreign
// error — so the error every caller ultimately reports carries its own
// provenance and is deterministic regardless of which goroutine happened
// to compute first. (A retrying waiter counts one hit for the wait and
// one miss for its own computation.)
//
// ctx cancels the wait on an in-flight computation (and is checked
// before computing); the computation itself is fn's to cancel — stage
// closures thread their own context. If fn panics, the panic propagates
// to the caller that ran it and waiters retry.
//
// The returned hit flag reports whether this call was served without
// invoking fn — from memory, from an in-flight computation, or from the
// backing store (see SetBacking).
func (c *Cache) Do(ctx context.Context, class, key string, fn func() (any, error)) (val any, hit bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		m, st := c.class(class)
		if e, ok := m[key]; ok {
			st.Hits++
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if e.err != nil {
				// The shared computation failed (error, panic, or the
				// computing caller's cancellation). The entry is already
				// gone; compute under our own call.
				continue
			}
			return e.val, true, nil
		}
		e := &entry{done: make(chan struct{})}
		m[key] = e
		b := c.backing
		c.mu.Unlock()

		// Second level: a disk-backed store, consulted outside the lock
		// (it does I/O). Waiters block on e.done either way, so the read
		// is still singleflight.
		if b != nil {
			if v, ok := b.Get(ctx, class, key); ok {
				e.val = v
				c.mu.Lock()
				st.BackingHits++
				c.mu.Unlock()
				close(e.done)
				return v, true, nil
			}
		}
		c.mu.Lock()
		st.Misses++
		c.mu.Unlock()

		completed := false
		defer func() {
			if !completed {
				// fn panicked: unblock waiters with an error, drop the entry,
				// and let the panic propagate.
				e.err = fmt.Errorf("pipeline: computing %s/%s panicked", class, key)
			}
			c.mu.Lock()
			if e.err != nil {
				delete(m, key)
			}
			c.mu.Unlock()
			close(e.done)
		}()
		e.val, e.err = fn()
		completed = true
		if e.err == nil && b != nil {
			// Write-through before returning: the computing caller pays
			// the (small, atomic) disk write, so a drain that waits out
			// in-flight requests has durably stored everything they
			// computed. Put is best-effort by contract.
			b.Put(ctx, class, key, e.val)
		}
		return e.val, false, e.err
	}
}

// SetBacking attaches a second-level store: Do consults it after a
// memory miss and writes every successful computation through to it.
// Externally produced artifacts (Put) stay memory-only — they typically
// came *from* the backing store or a snapshot file in the first place.
// Pass nil to detach. Safe to call concurrently with Do; in-flight
// demands keep the backing they started with.
func (c *Cache) SetBacking(b Backing) {
	c.mu.Lock()
	c.backing = b
	c.mu.Unlock()
}

// Put stores an externally produced artifact (e.g. one loaded from
// disk), overwriting any completed entry. It does not count as a hit or
// a miss. Put on a key with an in-flight computation is a no-op: the
// running computation wins.
func (c *Cache) Put(class, key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, _ := c.class(class)
	if e, ok := m[key]; ok {
		select {
		case <-e.done:
		default:
			return // in flight; let the computation finish
		}
	}
	e := &entry{done: make(chan struct{}), val: val}
	close(e.done)
	m[key] = e
}

// Lookup returns the completed artifact under (class, key) without
// computing or touching the stats.
func (c *Cache) Lookup(class, key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.classes[class][key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, false // still computing
	}
	if e.err != nil {
		return nil, false
	}
	return e.val, true
}

// Len returns the number of completed entries in a class.
func (c *Cache) Len(class string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.classes[class] {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default:
		}
	}
	return n
}

// StatsFor returns the hit/miss counters of one class.
func (c *Cache) StatsFor(class string) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.stats[class]; ok {
		return *st
	}
	return Stats{}
}

// AllStats returns the hit/miss counters of every class with traffic.
func (c *Cache) AllStats() map[string]Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Stats, len(c.stats))
	for k, st := range c.stats {
		out[k] = *st
	}
	return out
}

// Snapshot returns a copy of the completed entries of a class, keyed as
// stored. Used by persistence layers (satable Save).
func (c *Cache) Snapshot(class string) map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]any, len(c.classes[class]))
	for k, e := range c.classes[class] {
		select {
		case <-e.done:
			if e.err == nil {
				out[k] = e.val
			}
		default:
		}
	}
	return out
}

// Classes returns the class names with any traffic or entries, sorted.
func (c *Cache) Classes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.classes))
	for k := range c.classes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

var bg = context.Background()

func TestDoComputesOnceAndCountsStats(t *testing.T) {
	c := NewCache()
	calls := 0
	fn := func() (any, error) { calls++; return 42, nil }
	v, hit, err := c.Do(bg, "s", "k", fn)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do(bg, "s", "k", fn)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if st := c.StatsFor("s"); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}
}

func TestDoKeysAreClassScoped(t *testing.T) {
	c := NewCache()
	c.Do(bg, "a", "k", func() (any, error) { return 1, nil })
	v, hit, _ := c.Do(bg, "b", "k", func() (any, error) { return 2, nil })
	if hit || v.(int) != 2 {
		t.Fatalf("class b key k leaked class a's entry: v=%v hit=%v", v, hit)
	}
}

func TestDoDoesNotCacheErrors(t *testing.T) {
	c := NewCache()
	boom := errors.New("boom")
	if _, _, err := c.Do(bg, "s", "k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do(bg, "s", "k", func() (any, error) { return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("error was cached: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestDoCanceledContext(t *testing.T) {
	c := NewCache()
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, _, err := c.Do(ctx, "s", "k", func() (any, error) { return 1, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The failed attempt must not leave an entry behind.
	if _, ok := c.Lookup("s", "k"); ok {
		t.Fatal("canceled Do left an entry")
	}
}

func TestDoWaiterCancellation(t *testing.T) {
	c := NewCache()
	gate := make(chan struct{})
	computing := make(chan struct{})
	go func() {
		c.Do(bg, "s", "k", func() (any, error) {
			close(computing)
			<-gate
			return 1, nil
		})
	}()
	<-computing
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, _, err := c.Do(ctx, "s", "k", func() (any, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(gate)
}

// TestDoWaitersRetryOnError proves the provenance-determinism contract:
// a waiter that observes another caller's failure recomputes under its
// own call instead of adopting the foreign error.
func TestDoWaitersRetryOnError(t *testing.T) {
	c := NewCache()
	gate := make(chan struct{})
	computing := make(chan struct{})
	firstErr := errors.New("first caller failed")
	go func() {
		c.Do(bg, "s", "k", func() (any, error) {
			close(computing)
			<-gate
			return nil, firstErr
		})
	}()
	<-computing
	done := make(chan struct{})
	var v any
	var err error
	go func() {
		defer close(done)
		v, _, err = c.Do(bg, "s", "k", func() (any, error) { return 7, nil })
	}()
	close(gate)
	<-done
	if err != nil || v.(int) != 7 {
		t.Fatalf("waiter adopted the foreign error: v=%v err=%v", v, err)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := NewCache()
	const workers = 16
	var calls int
	var start, done sync.WaitGroup
	gate := make(chan struct{})
	start.Add(1)
	vals := make([]int, workers)
	hits := make([]bool, workers)
	for w := 0; w < workers; w++ {
		w := w
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			v, hit, err := c.Do(bg, "s", "k", func() (any, error) {
				calls++ // safe: singleflight means exactly one runner
				<-gate
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[w], hits[w] = v.(int), hit
		}()
	}
	start.Done()
	close(gate)
	done.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	nHits := 0
	for w := range vals {
		if vals[w] != 99 {
			t.Fatalf("worker %d got %d", w, vals[w])
		}
		if hits[w] {
			nHits++
		}
	}
	if nHits != workers-1 {
		t.Fatalf("%d hits, want %d (every waiter counts as a hit)", nHits, workers-1)
	}
	if st := c.StatsFor("s"); st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoPanicUnblocksWaiters(t *testing.T) {
	c := NewCache()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do(bg, "s", "k", func() (any, error) { panic("bug") })
	}()
	// The failed entry must be gone: the next caller recomputes.
	v, hit, err := c.Do(bg, "s", "k", func() (any, error) { return 5, nil })
	if err != nil || hit || v.(int) != 5 {
		t.Fatalf("post-panic Do: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestPutLookupSnapshotLen(t *testing.T) {
	c := NewCache()
	c.Put("s", "a", 1.5)
	c.Put("s", "b", 2.5)
	if v, ok := c.Lookup("s", "a"); !ok || v.(float64) != 1.5 {
		t.Fatalf("Lookup a: %v %v", v, ok)
	}
	if _, ok := c.Lookup("s", "missing"); ok {
		t.Fatal("Lookup invented an entry")
	}
	if n := c.Len("s"); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	snap := c.Snapshot("s")
	if len(snap) != 2 || snap["b"].(float64) != 2.5 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// Put does not move the stats.
	if st := c.StatsFor("s"); st != (Stats{}) {
		t.Fatalf("Put counted as traffic: %+v", st)
	}
	// Put is served as a hit afterwards.
	v, hit, err := c.Do(bg, "s", "a", func() (any, error) { return nil, errors.New("must not run") })
	if err != nil || !hit || v.(float64) != 1.5 {
		t.Fatalf("Do after Put: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestStageExecCachesAndTraces(t *testing.T) {
	c := NewCache()
	runs := 0
	double := Stage[int, int]{
		Name: "double",
		Key:  func(in int) string { return fmt.Sprintf("%d", in) },
		Run:  func(_ context.Context, in int) (int, error) { runs++; return 2 * in, nil },
		Size: func(out int) int { return out },
	}
	var tr Trace
	for i := 0; i < 2; i++ {
		out, err := double.Exec(bg, c, 21, &tr)
		if err != nil || out != 42 {
			t.Fatalf("Exec: %v %v", out, err)
		}
	}
	if runs != 1 {
		t.Fatalf("Run ran %d times, want 1", runs)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].CacheHit || !spans[1].CacheHit {
		t.Fatalf("hit flags wrong: %+v", spans)
	}
	if spans[0].Stage != "double" || spans[0].Key != "21" || spans[0].Size != 42 {
		t.Fatalf("span fields wrong: %+v", spans[0])
	}
}

func TestStageExecNilCacheAndNilTrace(t *testing.T) {
	runs := 0
	st := Stage[int, int]{
		Name: "s",
		Key:  func(in int) string { return "k" },
		Run:  func(_ context.Context, in int) (int, error) { runs++; return in, nil },
	}
	var nilTrace *Trace
	for i := 0; i < 2; i++ {
		if _, err := st.Exec(bg, nil, 1, nilTrace); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 2 {
		t.Fatalf("nil cache must always compute; ran %d times", runs)
	}
}

func TestStageExecEmptyKeyDisablesCaching(t *testing.T) {
	c := NewCache()
	runs := 0
	st := Stage[int, int]{
		Name: "s",
		Key:  func(in int) string { return "" },
		Run:  func(_ context.Context, in int) (int, error) { runs++; return in, nil },
	}
	st.Exec(bg, c, 1)
	st.Exec(bg, c, 1)
	if runs != 2 {
		t.Fatalf("empty key must disable caching; ran %d times", runs)
	}
}

func TestHasherDistinguishesBoundaries(t *testing.T) {
	a := NewHasher().Str("ab").Str("c").Sum()
	b := NewHasher().Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("length delimiting failed")
	}
	x := NewHasher().Ints([]int{1, 2}).Ints(nil).Sum()
	y := NewHasher().Ints([]int{1}).Ints([]int{2}).Sum()
	if x == y {
		t.Fatal("slice delimiting failed")
	}
	if NewHasher().Int(3).Sum() != NewHasher().Int(3).Sum() {
		t.Fatal("hashing is not deterministic")
	}
}

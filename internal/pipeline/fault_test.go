package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// failingStage builds a stage whose Run fails or panics on demand.
func failingStage(name string, run func(ctx context.Context, in string) (int, error)) Stage[string, int] {
	return Stage[string, int]{
		Name:  name,
		Key:   func(in string) string { return in },
		Scope: func(in string) Scope { return Scope{Bench: in, Binder: "b"} },
		Run:   run,
	}
}

func TestStageErrorCarriesProvenance(t *testing.T) {
	cause := errors.New("mapper exploded")
	st := failingStage("map", func(ctx context.Context, in string) (int, error) { return 0, cause })
	_, err := st.Exec(bg, NewCache(), "chem")
	se, ok := AsStageError(err)
	if !ok {
		t.Fatalf("error is not a StageError: %v", err)
	}
	if se.Stage != "map" || se.Scope.Bench != "chem" || se.Scope.Binder != "b" || se.Key != "chem" {
		t.Fatalf("provenance wrong: %+v", se)
	}
	if !errors.Is(err, cause) {
		t.Fatal("errors.Is lost the cause")
	}
	if se.Panicked() {
		t.Fatal("plain error flagged as panic")
	}
	if want := "stage map (chem/b): mapper exploded"; se.Error() != want {
		t.Fatalf("Error() = %q, want %q", se.Error(), want)
	}
}

func TestStagePanicIsolation(t *testing.T) {
	st := failingStage("bind", func(ctx context.Context, in string) (int, error) {
		panic("index out of range [7]")
	})
	c := NewCache()
	_, err := st.Exec(bg, c, "wang")
	se, ok := AsStageError(err)
	if !ok {
		t.Fatalf("panic did not become a StageError: %v", err)
	}
	if !se.Panicked() || !errors.Is(err, ErrPanic) {
		t.Fatal("panic not flagged")
	}
	if se.PanicValue != "index out of range [7]" {
		t.Fatalf("panic value lost: %v", se.PanicValue)
	}
	if !strings.Contains(se.Stack, "runSafe") {
		t.Fatalf("stack not captured: %q", se.Stack[:min(len(se.Stack), 120)])
	}
	// The cache must not retain the poisoned key.
	if _, ok := c.Lookup("bind", "wang"); ok {
		t.Fatal("panicked computation was cached")
	}
}

func TestStageCancellationWrapsContextError(t *testing.T) {
	ran := false
	st := failingStage("sim", func(ctx context.Context, in string) (int, error) { ran = true; return 1, nil })
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, err := st.Exec(ctx, NewCache(), "chem")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if se, ok := AsStageError(err); !ok || se.Stage != "sim" {
		t.Fatalf("cancellation lost stage attribution: %v", err)
	}
	if ran {
		t.Fatal("Run executed under a canceled context")
	}
}

func TestInjectorDeterministicAcrossOrder(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	decide := func(shuffle bool) map[string]bool {
		fi := NewFaultInjector(42, FaultRule{Stage: "s", PError: 0.5})
		st := Stage[string, int]{
			Name: "s",
			Key:  func(in string) string { return in },
			Run:  func(_ context.Context, in string) (int, error) { return 1, nil },
		}
		ctx := WithInjector(bg, fi)
		order := keys
		if shuffle {
			order = []string{"h", "c", "a", "f", "b", "g", "e", "d"}
		}
		failed := make(map[string]bool)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, k := range order {
			k := k
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := st.Exec(ctx, nil, k)
				mu.Lock()
				failed[k] = err != nil
				mu.Unlock()
			}()
		}
		wg.Wait()
		return failed
	}
	a, b := decide(false), decide(true)
	nFail := 0
	for _, k := range keys {
		if a[k] != b[k] {
			t.Fatalf("key %s: injection depends on execution order", k)
		}
		if a[k] {
			nFail++
		}
	}
	if nFail == 0 || nFail == len(keys) {
		t.Fatalf("PError=0.5 over 8 keys injected %d faults; draw looks degenerate", nFail)
	}
}

func TestInjectorErrorAndPanicKinds(t *testing.T) {
	fi := NewFaultInjector(1,
		FaultRule{Stage: "err", PError: 1},
		FaultRule{Stage: "boom", PPanic: 1},
	)
	ctx := WithInjector(bg, fi)
	errStage := failingStage("err", func(ctx context.Context, in string) (int, error) { return 1, nil })
	boomStage := failingStage("boom", func(ctx context.Context, in string) (int, error) { return 1, nil })

	_, err := errStage.Exec(ctx, NewCache(), "k")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err-stage: %v, want ErrInjected", err)
	}
	if se, _ := AsStageError(err); se == nil || se.Panicked() {
		t.Fatalf("err-stage wrong shape: %v", err)
	}

	_, err = boomStage.Exec(ctx, NewCache(), "k")
	se, ok := AsStageError(err)
	if !ok || !se.Panicked() {
		t.Fatalf("boom-stage: %v, want panic-derived StageError", err)
	}

	log := fi.Injected()
	if len(log) != 2 || log[0].Kind != "panic" || log[1].Kind != "error" {
		t.Fatalf("injection log = %+v", log)
	}
}

func TestInjectorDelayHonorsCancellation(t *testing.T) {
	fi := NewFaultInjector(1, FaultRule{PDelay: 1, Delay: time.Hour})
	st := failingStage("slow", func(ctx context.Context, in string) (int, error) { return 1, nil })
	ctx, cancel := context.WithCancel(WithInjector(bg, fi))
	done := make(chan error, 1)
	go func() {
		_, err := st.Exec(ctx, NewCache(), "k")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injected delay ignored cancellation")
	}
}

// TestInjectedFailureNotCachedAndRecovers proves a poisoned key heals:
// after removing the injector from the context, the same stage/key
// computes cleanly.
func TestInjectedFailureNotCachedAndRecovers(t *testing.T) {
	fi := NewFaultInjector(7, FaultRule{Stage: "s", PPanic: 1})
	st := Stage[string, int]{
		Name: "s",
		Key:  func(in string) string { return in },
		Run:  func(_ context.Context, in string) (int, error) { return 99, nil },
	}
	c := NewCache()
	if _, err := st.Exec(WithInjector(bg, fi), c, "k"); err == nil {
		t.Fatal("injection did not fire")
	}
	if _, ok := c.Lookup("s", "k"); ok {
		t.Fatal("injected failure was cached")
	}
	v, err := st.Exec(bg, c, "k")
	if err != nil || v != 99 {
		t.Fatalf("key did not heal: v=%v err=%v", v, err)
	}
}

func TestScopeString(t *testing.T) {
	cases := []struct {
		sc   Scope
		want string
	}{
		{Scope{}, ""},
		{Scope{Bench: "chem"}, "chem"},
		{Scope{Binder: "LOPASS"}, "LOPASS"},
		{Scope{Bench: "chem", Binder: "LOPASS"}, "chem/LOPASS"},
	}
	for _, c := range cases {
		if got := c.sc.String(); got != c.want {
			t.Errorf("%+v => %q, want %q", c.sc, got, c.want)
		}
	}
}

// Ensure the example-style deterministic draw stays stable enough to use
// in docs (regression anchor, not a golden value test).
func ExampleFaultInjector() {
	fi := NewFaultInjector(3, FaultRule{Stage: "bind", Bench: "chem", PError: 1})
	st := Stage[string, int]{
		Name:  "bind",
		Key:   func(in string) string { return in },
		Scope: func(in string) Scope { return Scope{Bench: in, Binder: "HLPower a=0.5"} },
		Run:   func(_ context.Context, in string) (int, error) { return 1, nil },
	}
	ctx := WithInjector(context.Background(), fi)
	_, err := st.Exec(ctx, nil, "chem")
	se, _ := AsStageError(err)
	fmt.Println(se.Stage, se.Scope.Bench, errors.Is(err, ErrInjected))
	// Output: bind chem true
}

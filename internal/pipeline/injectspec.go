package pipeline

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseInjectSpec parses the -inject flag shared by hlpower and
// hlpowerd: a comma-separated key=value list describing one fault rule
// plus the injector seed. Stage-fault keys: seed, stage, bench, binder,
// perror, ppanic, pdelay, delay. Disk-fault keys (durable-store
// writes): class, pshortwrite, pchecksumflip, penospc. Example:
//
//	seed=1,stage=map,perror=1
//	class=sim,pshortwrite=1
func ParseInjectSpec(s string) (*FaultInjector, error) {
	var seed int64 = 1
	var rule FaultRule
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad inject entry %q (want key=value)", kv)
		}
		var err error
		switch strings.ToLower(k) {
		case "seed":
			seed, err = strconv.ParseInt(v, 10, 64)
		case "stage":
			rule.Stage = v
		case "bench":
			rule.Bench = v
		case "binder":
			rule.Binder = v
		case "class":
			rule.Class = v
		case "perror":
			rule.PError, err = strconv.ParseFloat(v, 64)
		case "ppanic":
			rule.PPanic, err = strconv.ParseFloat(v, 64)
		case "pdelay":
			rule.PDelay, err = strconv.ParseFloat(v, 64)
		case "delay":
			rule.Delay, err = time.ParseDuration(v)
		case "pshortwrite":
			rule.PShortWrite, err = strconv.ParseFloat(v, 64)
		case "pchecksumflip":
			rule.PChecksumFlip, err = strconv.ParseFloat(v, 64)
		case "penospc":
			rule.PENOSPC, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("unknown inject key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("bad inject value %q for %s: %w", v, k, err)
		}
	}
	return NewFaultInjector(seed, rule), nil
}

package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrInjected marks an error produced by a FaultInjector. Tests match it
// with errors.Is to separate injected failures from organic ones.
var ErrInjected = errors.New("injected fault")

// FaultRule describes one injection site. Empty match fields match
// everything, so {PError: 1} fails every stage execution and
// {Stage: "sim", Bench: "chem", PPanic: 1} panics exactly the sim-stage
// executions of benchmark chem.
//
// Probabilities partition a single uniform draw: a rule with PPanic=0.1,
// PError=0.2 panics 10% of matching executions, errors a further 20%,
// and leaves the rest alone (optionally delayed, see PDelay). The draw
// is a pure hash of (injector seed, rule index, stage, cache key) — not
// a shared RNG stream — so the set of injected faults is identical for
// any worker count and any execution order. That positional determinism
// is what lets tests require -j1 and -j8 sweeps to produce identical
// failure reports.
type FaultRule struct {
	// Stage matches the stage name ("" = every stage).
	Stage string
	// Bench and Binder match the execution's Scope ("" = any).
	Bench, Binder string
	// PPanic is the probability of panicking the execution.
	PPanic float64
	// PError is the probability of failing the execution with ErrInjected.
	PError float64
	// PDelay is the probability of sleeping for Delay before running
	// (cancellation tests use it to hold a stage open deterministically).
	PDelay float64
	// Delay is the injected sleep; it honors context cancellation.
	Delay time.Duration

	// Class matches the durable-store artifact class for disk-fault
	// draws ("" = every class). The fields below inject faults into
	// store writes (internal/store consults DiskFault on every Put);
	// they share one uniform draw per write, partitioned like the stage
	// probabilities above. Stage/Bench/Binder do not apply to disk
	// draws — a store write has no stage scope.
	Class string
	// PShortWrite truncates the entry's payload mid-write but lets the
	// rename land — the torn-entry shape a power cut or killed writer
	// leaves behind.
	PShortWrite float64
	// PChecksumFlip flips one payload bit after the checksum was
	// computed, emulating silent media corruption.
	PChecksumFlip float64
	// PENOSPC fails the write as with a full disk; the store must skip
	// the entry and serve the request from the computed value.
	PENOSPC float64
}

func (r FaultRule) matches(stage string, sc Scope) bool {
	if r.Stage != "" && r.Stage != stage {
		return false
	}
	if r.Bench != "" && r.Bench != sc.Bench {
		return false
	}
	if r.Binder != "" && r.Binder != sc.Binder {
		return false
	}
	return true
}

// InjectedFault is one logged injector decision.
type InjectedFault struct {
	Stage string
	Scope Scope
	Key   string
	// Kind is "panic", "error", or "delay".
	Kind string
}

// FaultInjector deterministically injects errors, panics, and delays at
// stage boundaries. It is the test harness the pipeline's failure model
// is proven with: seeded injection demonstrates that every stage
// converts faults into structured StageErrors, that the artifact cache
// never retains a poisoned entry, and that cancellation mid-sweep winds
// down cleanly.
//
// An injector travels in a context (WithInjector); Stage.Exec consults
// it inside the compute closure, so cache hits are never re-injected
// and injected failures are never cached. Safe for concurrent use.
type FaultInjector struct {
	seed  int64
	rules []FaultRule

	mu  sync.Mutex
	log []InjectedFault
}

// NewFaultInjector returns an injector whose decisions are a pure
// function of seed and the (stage, key) identity of each execution.
func NewFaultInjector(seed int64, rules ...FaultRule) *FaultInjector {
	return &FaultInjector{seed: seed, rules: rules}
}

// Add appends a rule. Rules are evaluated in order; every matching rule
// gets its own independent draw.
func (fi *FaultInjector) Add(r FaultRule) { fi.rules = append(fi.rules, r) }

// Injected returns the logged decisions sorted by (stage, bench, binder,
// key, kind) — a deterministic view regardless of execution order.
// Retried executions (singleflight waiters re-running a failed key)
// deduplicate: one logical fault appears once.
func (fi *FaultInjector) Injected() []InjectedFault {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	seen := make(map[InjectedFault]bool, len(fi.log))
	out := make([]InjectedFault, 0, len(fi.log))
	for _, f := range fi.log {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Scope.Bench != b.Scope.Bench {
			return a.Scope.Bench < b.Scope.Bench
		}
		if a.Scope.Binder != b.Scope.Binder {
			return a.Scope.Binder < b.Scope.Binder
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Kind < b.Kind
	})
	return out
}

func (fi *FaultInjector) record(stage string, sc Scope, key, kind string) {
	fi.mu.Lock()
	fi.log = append(fi.log, InjectedFault{Stage: stage, Scope: sc, Key: key, Kind: kind})
	fi.mu.Unlock()
}

// Inject applies the injector's rules to one stage execution: it may
// sleep, return an ErrInjected-wrapped error, or panic. Stage.Exec calls
// it just before Run; stage-level recovery converts the panic into a
// StageError like any library panic.
func (fi *FaultInjector) Inject(ctx context.Context, stage, key string, sc Scope) error {
	for ri, r := range fi.rules {
		if !r.matches(stage, sc) {
			continue
		}
		u := unitDraw(fi.seed, int64(ri), stage, key)
		switch {
		case u < r.PPanic:
			fi.record(stage, sc, key, "panic")
			// Panic with an error wrapping ErrInjected so the failure
			// stays identifiable as injected after stage-level recovery.
			panic(fmt.Errorf("%w: injected panic at stage %s (%s)", ErrInjected, stage, sc))
		case u < r.PPanic+r.PError:
			fi.record(stage, sc, key, "error")
			return fmt.Errorf("%w at stage %s (%s)", ErrInjected, stage, sc)
		case u < r.PPanic+r.PError+r.PDelay:
			fi.record(stage, sc, key, "delay")
			t := time.NewTimer(r.Delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// Disk-fault kinds DiskFault returns (and logs). Empty = no fault.
const (
	DiskShortWrite   = "short-write"
	DiskChecksumFlip = "checksum-flip"
	DiskENOSPC       = "enospc"
)

// DiskFault applies the injector's disk rules to one durable-store
// write, identified by (class, key). It returns the injected fault kind
// ("" = none) — the store itself performs the fault, since only it
// knows where the payload bytes are. Draws are positional like stage
// faults: a pure hash of (seed, rule index, class, key), so the set of
// torn or corrupted entries is identical for any write order. The draw
// stream is domain-separated from stage draws (the class is prefixed),
// so arming a disk rule never perturbs which stage faults fire.
func (fi *FaultInjector) DiskFault(class, key string) string {
	for ri, r := range fi.rules {
		if r.PShortWrite == 0 && r.PChecksumFlip == 0 && r.PENOSPC == 0 {
			continue
		}
		if r.Class != "" && r.Class != class {
			continue
		}
		u := unitDraw(fi.seed, int64(ri), "disk/"+class, key)
		var kind string
		switch {
		case u < r.PShortWrite:
			kind = DiskShortWrite
		case u < r.PShortWrite+r.PChecksumFlip:
			kind = DiskChecksumFlip
		case u < r.PShortWrite+r.PChecksumFlip+r.PENOSPC:
			kind = DiskENOSPC
		default:
			continue
		}
		fi.record("disk/"+class, Scope{}, key, kind)
		return kind
	}
	return ""
}

// unitDraw hashes (seed, rule, stage, key) into [0, 1) with a
// splitmix64-style finalizer over an FNV-1a digest. Positional: no
// shared state, so concurrent sweeps draw identically to serial ones.
func unitDraw(seed, rule int64, stage, key string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(rule) >> (8 * i)))
	}
	for i := 0; i < len(stage); i++ {
		mix(stage[i])
	}
	mix(0)
	for i := 0; i < len(key); i++ {
		mix(key[i])
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// injectorKey is the context key an injector travels under.
type injectorKey struct{}

// WithInjector returns a context carrying the injector; every Stage.Exec
// under that context consults it. A nil injector is equivalent to none.
func WithInjector(ctx context.Context, fi *FaultInjector) context.Context {
	return context.WithValue(ctx, injectorKey{}, fi)
}

// InjectorFrom returns the context's injector, or nil.
func InjectorFrom(ctx context.Context) *FaultInjector {
	fi, _ := ctx.Value(injectorKey{}).(*FaultInjector)
	return fi
}

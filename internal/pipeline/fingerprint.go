package pipeline

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strconv"
)

// Hasher accumulates a content fingerprint for cache-key derivation.
// Every write is length/type-delimited, so distinct value sequences
// yield distinct streams (e.g. "ab","c" vs "a","bc"). The digest is
// FNV-1a/64 — keys live in small in-process maps, where 64 bits of
// content addressing is ample.
type Hasher struct {
	h   uint64
	buf [8]byte
}

// NewHasher returns a fresh fingerprint accumulator.
func NewHasher() *Hasher {
	h := fnv.New64a()
	return &Hasher{h: h.Sum64()}
}

func (f *Hasher) write(p []byte) {
	const prime64 = 1099511628211
	for _, b := range p {
		f.h ^= uint64(b)
		f.h *= prime64
	}
}

// U64 hashes one unsigned 64-bit value.
func (f *Hasher) U64(v uint64) *Hasher {
	binary.LittleEndian.PutUint64(f.buf[:], v)
	f.write(f.buf[:])
	return f
}

// Int hashes one integer.
func (f *Hasher) Int(v int) *Hasher { return f.U64(uint64(int64(v))) }

// Int64 hashes one 64-bit integer.
func (f *Hasher) Int64(v int64) *Hasher { return f.U64(uint64(v)) }

// F64 hashes one float by its IEEE-754 bits.
func (f *Hasher) F64(v float64) *Hasher { return f.U64(math.Float64bits(v)) }

// Bool hashes one boolean.
func (f *Hasher) Bool(v bool) *Hasher {
	if v {
		return f.U64(1)
	}
	return f.U64(0)
}

// Str hashes one length-prefixed string.
func (f *Hasher) Str(s string) *Hasher {
	f.U64(uint64(len(s)))
	f.write([]byte(s))
	return f
}

// Ints hashes a length-prefixed integer slice.
func (f *Hasher) Ints(vs []int) *Hasher {
	f.U64(uint64(len(vs)))
	for _, v := range vs {
		f.Int(v)
	}
	return f
}

// Bools hashes a length-prefixed boolean slice.
func (f *Hasher) Bools(vs []bool) *Hasher {
	f.U64(uint64(len(vs)))
	for _, v := range vs {
		f.Bool(v)
	}
	return f
}

// Sum returns the fingerprint as a fixed-width hex string.
func (f *Hasher) Sum() string {
	return strconv.FormatUint(f.h, 16)
}

package pipeline

import (
	"errors"
	"fmt"
)

// Scope is the experiment-level provenance of a stage execution: which
// (benchmark, binder) pair demanded the artifact. Either field may be
// empty for stages that are not specific to one (the schedule stage is
// benchmark-only; ad-hoc stages may carry neither).
type Scope struct {
	Bench  string `json:"bench,omitempty"`
	Binder string `json:"binder,omitempty"`
}

func (sc Scope) String() string {
	switch {
	case sc.Bench == "" && sc.Binder == "":
		return ""
	case sc.Binder == "":
		return sc.Bench
	case sc.Bench == "":
		return sc.Binder
	}
	return sc.Bench + "/" + sc.Binder
}

// ErrPanic marks a StageError that was converted from a recovered panic.
// errors.Is(err, ErrPanic) identifies panic-derived failures anywhere in
// a wrapped chain.
var ErrPanic = errors.New("stage panicked")

// StageError is the structured failure record of one pipeline stage
// execution. Every error that escapes Stage.Exec is (or wraps) a
// StageError, so callers can recover the failing stage, its cache key,
// and its experiment provenance with errors.As, and match the underlying
// cause (context.Canceled, ErrPanic, ErrInjected, a library error) with
// errors.Is.
type StageError struct {
	// Stage is the stage name (one of the pipeline's stage constants, or
	// "sweep" for failures caught at the worker-pool boundary).
	Stage string
	// Scope is the (benchmark, binder) provenance of the failed demand.
	Scope Scope
	// Key is the stage cache key of the failed execution ("" when the
	// stage ran uncached).
	Key string
	// Err is the wrapped cause. For a recovered panic it wraps ErrPanic.
	Err error
	// PanicValue is the recovered panic value (nil unless the stage
	// panicked).
	PanicValue any
	// Stack is the goroutine stack captured at recovery time (empty
	// unless the stage panicked). It is diagnostic output only and is
	// excluded from deterministic failure reports.
	Stack string
}

// Error renders "stage <name> (<scope>): <cause>". The text is
// deterministic for deterministic causes: it never includes the stack,
// timestamps, or goroutine identities.
func (e *StageError) Error() string {
	sc := e.Scope.String()
	if sc != "" {
		sc = " (" + sc + ")"
	}
	return fmt.Sprintf("stage %s%s: %v", e.Stage, sc, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *StageError) Unwrap() error { return e.Err }

// Panicked reports whether the error was converted from a recovered
// panic.
func (e *StageError) Panicked() bool { return errors.Is(e.Err, ErrPanic) }

// AsStageError extracts the outermost StageError of a chain.
func AsStageError(err error) (*StageError, bool) {
	var se *StageError
	ok := errors.As(err, &se)
	return se, ok
}

// NewPanicError converts a recovered panic value into a StageError. The
// worker-pool boundary uses it for panics that escape stage-level
// recovery (glue code between stages); stage-level recovery builds the
// same shape internally. A panic value that is itself an error keeps its
// chain: errors.Is still matches its sentinels (e.g. ErrInjected for an
// injected panic) through the StageError.
func NewPanicError(stage string, sc Scope, key string, v any, stack []byte) *StageError {
	cause := fmt.Errorf("%w: %v", ErrPanic, v)
	if verr, ok := v.(error); ok {
		cause = fmt.Errorf("%w: %w", ErrPanic, verr)
	}
	return &StageError{
		Stage:      stage,
		Scope:      sc,
		Key:        key,
		Err:        cause,
		PanicValue: v,
		Stack:      string(stack),
	}
}

package pipeline

import (
	"sync"
	"time"
)

// Span is one stage execution record: what ran, under which cache key,
// whether the artifact came from cache, and how long serving it took.
// For a cache hit the duration is the lookup (or wait-on-inflight) time,
// not the original compute time.
type Span struct {
	Stage      string `json:"stage"`
	Key        string `json:"key"`
	CacheHit   bool   `json:"cache_hit"`
	DurationNs int64  `json:"duration_ns"`
	// Size is the stage's artifact size metric (stage-defined: nodes,
	// LUTs, transition count, ...). 0 when the stage defines none.
	Size int `json:"size,omitempty"`
}

// Duration returns the span's wall-clock duration.
func (s Span) Duration() time.Duration { return time.Duration(s.DurationNs) }

// Trace accumulates spans. It is safe for concurrent use; a nil *Trace
// discards everything, so traces are opt-in at every call site.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// Add appends one span.
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Stage is one typed, cached, instrumented pipeline step.
type Stage[In, Out any] struct {
	// Name labels the stage in traces and namespaces its cache class.
	Name string
	// Key derives the cache key from the input. It must cover every
	// configuration field Run's result depends on, plus the content
	// fingerprint of the upstream artifact. An empty key disables
	// caching for that input.
	Key func(In) string
	// Run computes the artifact. The result is shared through the cache
	// and must not be mutated afterwards, by Run's caller or anyone
	// downstream.
	Run func(In) (Out, error)
	// Size reports the artifact size metric recorded in spans (optional).
	Size func(Out) int
}

// Exec runs the stage on in through cache c (nil = always compute),
// recording one span into every non-nil trace. Concurrent Exec calls
// with the same key share a single Run.
func (s Stage[In, Out]) Exec(c *Cache, in In, traces ...*Trace) (Out, error) {
	start := time.Now()
	key := ""
	if s.Key != nil {
		key = s.Key(in)
	}
	var out Out
	var err error
	hit := false
	if c == nil || key == "" {
		out, err = s.Run(in)
	} else {
		var v any
		v, hit, err = c.Do(s.Name, key, func() (any, error) { return s.Run(in) })
		if err == nil {
			out = v.(Out)
		}
	}
	sp := Span{Stage: s.Name, Key: key, CacheHit: hit, DurationNs: int64(time.Since(start))}
	if err == nil && s.Size != nil {
		sp.Size = s.Size(out)
	}
	for _, tr := range traces {
		tr.Add(sp)
	}
	return out, err
}

package pipeline

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"time"
)

// Span is one stage execution record: what ran, under which cache key,
// whether the artifact came from cache, and how long serving it took.
// For a cache hit the duration is the lookup (or wait-on-inflight) time,
// not the original compute time.
type Span struct {
	Stage      string `json:"stage"`
	Key        string `json:"key"`
	CacheHit   bool   `json:"cache_hit"`
	DurationNs int64  `json:"duration_ns"`
	// Size is the stage's artifact size metric (stage-defined: nodes,
	// LUTs, transition count, ...). 0 when the stage defines none.
	Size int `json:"size,omitempty"`
	// Attrs carries stage-defined numeric detail (e.g. the bind stage's
	// per-iteration scoring counters). Nil for plain stage spans.
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// Duration returns the span's wall-clock duration.
func (s Span) Duration() time.Duration { return time.Duration(s.DurationNs) }

// Trace accumulates spans. It is safe for concurrent use; a nil *Trace
// discards everything, so traces are opt-in at every call site.
type Trace struct {
	mu       sync.Mutex
	spans    []Span
	observer func(Span)
}

// Add appends one span and notifies the observer, if any.
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	obs := t.observer
	t.mu.Unlock()
	if obs != nil {
		obs(sp)
	}
}

// SetObserver installs a callback invoked once per recorded span, after
// it lands in the trace. This is the live-progress hook the daemon's
// streaming responses use. The callback runs on whichever goroutine
// recorded the span (outside the trace lock) and may be invoked
// concurrently; observers that write to shared sinks must serialize
// themselves. Pass nil to remove.
func (t *Trace) SetObserver(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Stage is one typed, cached, instrumented pipeline step.
type Stage[In, Out any] struct {
	// Name labels the stage in traces, errors, and its cache class.
	Name string
	// Key derives the cache key from the input. It must cover every
	// configuration field Run's result depends on, plus the content
	// fingerprint of the upstream artifact. An empty key disables
	// caching for that input.
	Key func(In) string
	// Scope extracts the (benchmark, binder) provenance of an input for
	// structured errors and fault-injection matching (optional).
	Scope func(In) Scope
	// Run computes the artifact. The result is shared through the cache
	// and must not be mutated afterwards, by Run's caller or anyone
	// downstream. Run must honor ctx at its own internal boundaries if
	// it loops; Exec checks it once before invoking Run.
	Run func(ctx context.Context, in In) (Out, error)
	// Size reports the artifact size metric recorded in spans (optional).
	Size func(Out) int
}

// Exec runs the stage on in through cache c (nil = always compute),
// recording one span into every non-nil trace. Concurrent Exec calls
// with the same key share a single successful Run.
//
// Failure model: every error Exec returns is a *StageError (or wraps
// one) carrying the stage name, the input's Scope, and the cache key —
// including context cancellation (the cause is ctx.Err(), so errors.Is
// against context.Canceled / DeadlineExceeded still matches) and
// recovered panics (the cause wraps ErrPanic and the StageError records
// the panic value and stack). A failed computation is never cached, so
// the artifact cache cannot retain poisoned entries. If the context
// carries a FaultInjector (WithInjector), it is consulted inside the
// compute path — cache hits are never re-injected.
func (s Stage[In, Out]) Exec(ctx context.Context, c *Cache, in In, traces ...*Trace) (Out, error) {
	start := time.Now()
	key := ""
	if s.Key != nil {
		key = s.Key(in)
	}
	var sc Scope
	if s.Scope != nil {
		sc = s.Scope(in)
	}
	var out Out
	var err error
	hit := false
	// Run under a context carrying the call's traces so the stage body
	// can emit sub-spans (AddSpan). They ride the compute path only: a
	// cache hit never re-enters Run, so sub-spans are recorded exactly
	// once per computed artifact.
	rctx := WithTraces(ctx, traces...)
	if c == nil || key == "" {
		out, err = s.runSafe(rctx, in, key, sc)
	} else {
		var v any
		v, hit, err = c.Do(ctx, s.Name, key, func() (any, error) { return s.runSafe(rctx, in, key, sc) })
		if err == nil {
			out = v.(Out)
		}
	}
	if err != nil {
		err = s.wrapErr(err, key, sc)
	}
	sp := Span{Stage: s.Name, Key: key, CacheHit: hit, DurationNs: int64(time.Since(start))}
	if err == nil && s.Size != nil {
		sp.Size = s.Size(out)
	}
	for _, tr := range traces {
		tr.Add(sp)
	}
	return out, err
}

// runSafe is the isolated compute path: context check, fault injection,
// Run, and panic-to-StageError conversion. Panics never escape it, so
// neither the cache nor the worker pool above ever sees one from here.
func (s Stage[In, Out]) runSafe(ctx context.Context, in In, key string, sc Scope) (out Out, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(s.Name, sc, key, r, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if fi := InjectorFrom(ctx); fi != nil {
		if err := fi.Inject(ctx, s.Name, key, sc); err != nil {
			return out, err
		}
	}
	return s.Run(ctx, in)
}

// wrapErr guarantees the StageError contract: an error that is not
// already attributed to a stage gets this stage's identity; one that is
// (a StageError from runSafe, possibly from a retried waiter) passes
// through untouched.
func (s Stage[In, Out]) wrapErr(err error, key string, sc Scope) error {
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: s.Name, Scope: sc, Key: key, Err: err}
}

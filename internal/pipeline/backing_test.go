package pipeline

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// mapBacking is an in-memory Backing double with call counting.
type mapBacking struct {
	mu   sync.Mutex
	m    map[string]any
	gets atomic.Int64
	puts atomic.Int64
}

func newMapBacking() *mapBacking { return &mapBacking{m: make(map[string]any)} }

func (b *mapBacking) Get(_ context.Context, class, key string) (any, bool) {
	b.gets.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[class+"/"+key]
	return v, ok
}

func (b *mapBacking) Put(_ context.Context, class, key string, val any) {
	b.puts.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[class+"/"+key] = val
}

// TestBackingWriteThrough: a computed miss is written through to the
// backing before Do returns, and a fresh cache over the same backing
// serves it without computing.
func TestBackingWriteThrough(t *testing.T) {
	ctx := context.Background()
	b := newMapBacking()

	c := NewCache()
	c.SetBacking(b)
	v, hit, err := c.Do(ctx, "sim", "k", func() (any, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("Do = %v, %v, %v", v, hit, err)
	}
	if got := b.puts.Load(); got != 1 {
		t.Fatalf("backing Puts = %d, want 1 (write-through)", got)
	}

	c2 := NewCache()
	c2.SetBacking(b)
	ran := false
	v, hit, err = c2.Do(ctx, "sim", "k", func() (any, error) { ran = true; return 0, nil })
	if err != nil || v != 42 {
		t.Fatalf("backed Do = %v, %v, %v", v, hit, err)
	}
	if ran {
		t.Fatal("compute ran despite a backing hit")
	}
	st := c2.StatsFor("sim")
	if st.BackingHits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v, want BackingHits=1 Misses=0", st)
	}
	// The backing hit is now a memory entry: a second Do is a plain hit
	// that never re-consults the backing.
	before := b.gets.Load()
	if _, hit, _ := c2.Do(ctx, "sim", "k", func() (any, error) { return 0, nil }); !hit {
		t.Fatal("second Do missed")
	}
	if b.gets.Load() != before {
		t.Fatal("memory hit re-consulted the backing")
	}
}

// TestBackingErrorNotWritten: failed computations are never persisted.
func TestBackingErrorNotWritten(t *testing.T) {
	b := newMapBacking()
	c := NewCache()
	c.SetBacking(b)
	_, _, err := c.Do(context.Background(), "sim", "k", func() (any, error) {
		return nil, context.Canceled
	})
	if err == nil {
		t.Fatal("Do swallowed the error")
	}
	if got := b.puts.Load(); got != 0 {
		t.Fatalf("backing Puts = %d after a failed compute, want 0", got)
	}
}

// TestBackingSingleflight: concurrent demands for one key consult the
// backing once; the hit is shared by every waiter.
func TestBackingSingleflight(t *testing.T) {
	ctx := context.Background()
	b := newMapBacking()
	b.Put(ctx, "sim", "k", 7)
	b.gets.Store(0)

	c := NewCache()
	c.SetBacking(b)
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(ctx, "sim", "k", func() (any, error) {
				computes.Add(1)
				return 0, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 0 {
		t.Fatalf("compute ran %d times despite the backing holding the value", got)
	}
	if got := b.gets.Load(); got != 1 {
		t.Fatalf("backing consulted %d times, want 1 (singleflight)", got)
	}
}

// TestRenameBacking: the adapter rewrites classes on both paths, so a
// cache's internal class maps onto a namespaced store class.
func TestRenameBacking(t *testing.T) {
	ctx := context.Background()
	b := newMapBacking()
	rb := RenameBacking(b, func(class string) string { return class + "@fp1" })

	c := NewCache()
	c.SetBacking(rb)
	c.Do(ctx, "run", "k", func() (any, error) { return "v", nil })
	if _, ok := b.m["run@fp1/k"]; !ok {
		t.Fatalf("backing holds %v, want key under renamed class run@fp1", b.m)
	}

	c2 := NewCache()
	c2.SetBacking(rb)
	v, _, err := c2.Do(ctx, "run", "k", func() (any, error) {
		t.Error("compute ran")
		return nil, nil
	})
	if err != nil || v != "v" {
		t.Fatalf("renamed backed Do = %v, %v", v, err)
	}
}

// TestExternalPutStaysMemoryOnly: Cache.Put (pre-seeding, e.g. SA table
// bulk loads) must not write through — only computed artifacts carry
// the provenance the store wants.
func TestExternalPutStaysMemoryOnly(t *testing.T) {
	b := newMapBacking()
	c := NewCache()
	c.SetBacking(b)
	c.Put("sa", "k", 1.0)
	if got := b.puts.Load(); got != 0 {
		t.Fatalf("external Put wrote through (%d)", got)
	}
}

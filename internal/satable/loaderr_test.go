package satable

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netgen"
)

// TestLoadTruncationReportsOffsetAndRecovery pins the diagnostic
// contract for damaged table files (the shape a torn store write or a
// truncated scp leaves): the error must carry the byte offset of the
// offending line and the number of rows recovered before it, so the
// operator can seek straight to the damage — and the offset must be
// the line's actual position in the file.
func TestLoadTruncationReportsOffsetAndRecovery(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	tb.Get(netgen.FUAdd, 1, 1)
	tb.Get(netgen.FUAdd, 2, 3)
	tb.Get(netgen.FUMult, 1, 2)
	var sb strings.Builder
	if err := tb.Save(&sb); err != nil {
		t.Fatal(err)
	}
	full := sb.String()

	// Cut mid-way through the last row: two rows parse, the third is a
	// partial line.
	lastRow := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1
	truncated := full[:lastRow+4]

	_, err := Load(strings.NewReader(truncated))
	if err == nil {
		t.Fatal("Load accepted a truncated table")
	}
	msg := err.Error()
	if !strings.Contains(msg, fmt.Sprintf("byte offset %d", lastRow)) {
		t.Fatalf("error %q does not carry the damaged line's byte offset %d", msg, lastRow)
	}
	if !strings.Contains(msg, "2 rows recovered") {
		t.Fatalf("error %q does not report the 2 recovered rows", msg)
	}
}

// TestLoadOffsetAdvancesPerLine: damage on a later line must report a
// later offset — the offset is positional, not a constant.
func TestLoadOffsetAdvancesPerLine(t *testing.T) {
	header := "# hlpower-satable width=4 est=glitch\n"
	good := "add 1 1 12.5\n"
	bad := "add bogus\n"

	_, err1 := Load(strings.NewReader(header + bad))
	_, err2 := Load(strings.NewReader(header + good + bad))
	if err1 == nil || err2 == nil {
		t.Fatal("Load accepted a corrupt row")
	}
	if !strings.Contains(err1.Error(), fmt.Sprintf("byte offset %d", len(header))) {
		t.Fatalf("first-row error %q lacks offset %d", err1, len(header))
	}
	if !strings.Contains(err2.Error(), fmt.Sprintf("byte offset %d", len(header)+len(good))) {
		t.Fatalf("second-row error %q lacks offset %d", err2, len(header)+len(good))
	}
	if !strings.Contains(err2.Error(), "1 rows recovered") {
		t.Fatalf("second-row error %q lacks recovery count", err2)
	}
}

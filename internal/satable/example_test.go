package satable_test

import (
	"fmt"

	"repro/internal/netgen"
	"repro/internal/satable"
)

// Example shows the precalculated-table workflow of paper §5.2.2:
// values are computed on first use and then served from the hash table.
func Example() {
	table := satable.New(4, satable.EstimatorGlitch)
	first := table.Get(netgen.FUAdd, 2, 2) // computed (maps the partial datapath)
	again := table.Get(netgen.FUAdd, 2, 2) // hash hit
	fmt.Println(first == again, table.Misses())
	// Output:
	// true 1
}

package satable

import (
	"sync"
	"testing"

	"repro/internal/netgen"
)

// TestConcurrentGets hammers the table from many goroutines: no races
// (run with -race) and consistent values.
func TestConcurrentGets(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	var wg sync.WaitGroup
	results := make([][]float64, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []float64
			for i := 0; i < 20; i++ {
				kind := netgen.FUAdd
				if i%2 == 0 {
					kind = netgen.FUMult
				}
				out = append(out, tb.Get(kind, 1+i%3, 1+(i/2)%3))
			}
			results[w] = out
		}()
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d sees different value at %d", w, i)
			}
		}
	}
}

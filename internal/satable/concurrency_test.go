package satable

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/netgen"
)

// TestConcurrentGets hammers the table from many goroutines: no races
// (run with -race), consistent values, and — thanks to the per-key
// singleflight — exactly one lazy computation per unique key.
func TestConcurrentGets(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	var wg sync.WaitGroup
	results := make([][]float64, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []float64
			for i := 0; i < 20; i++ {
				kind := netgen.FUAdd
				if i%2 == 0 {
					kind = netgen.FUMult
				}
				out = append(out, tb.Get(kind, 1+i%3, 1+(i/2)%3))
			}
			results[w] = out
		}()
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d sees different value at %d", w, i)
			}
		}
	}
	// Every unique key was computed exactly once: no thundering herd.
	if tb.Misses() != tb.Len() {
		t.Fatalf("misses = %d, want exactly one per unique key (%d)", tb.Misses(), tb.Len())
	}
}

// TestSingleflightSameKey releases many goroutines at once on a single
// cold key: the expensive netgen -> mapper compute must run exactly once
// and every caller must see the same value.
func TestSingleflightSameKey(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	const workers = 16
	vals := make([]float64, workers)
	var start, done sync.WaitGroup
	start.Add(1)
	for w := 0; w < workers; w++ {
		w := w
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			vals[w] = tb.Get(netgen.FUMult, 3, 2)
		}()
	}
	start.Done()
	done.Wait()
	for w := 1; w < workers; w++ {
		if vals[w] != vals[0] {
			t.Fatalf("worker %d got %g, worker 0 got %g", w, vals[w], vals[0])
		}
	}
	if got := tb.Misses(); got != 1 {
		t.Fatalf("misses = %d, want 1: concurrent misses on one key must share a single compute", got)
	}
	if got := tb.Len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
}

// TestPrecomputeParallelMatchesSerial fills two tables — one serially,
// one on 8 workers — and requires identical persisted contents and
// exactly one computation per key.
func TestPrecomputeParallelMatchesSerial(t *testing.T) {
	serial := New(4, EstimatorGlitch)
	serial.PrecomputeParallel(3, 1)
	par := New(4, EstimatorGlitch)
	par.PrecomputeParallel(3, 8)

	if serial.Len() != par.Len() {
		t.Fatalf("len: serial %d, parallel %d", serial.Len(), par.Len())
	}
	if par.Misses() != par.Len() {
		t.Fatalf("parallel misses = %d, want %d", par.Misses(), par.Len())
	}
	var a, b strings.Builder
	if err := serial.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("parallel precompute produced different table:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
}

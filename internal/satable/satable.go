// Package satable implements the precalculated switching-activity table
// of paper §5.2.2: for every combination of functional unit and input
// multiplexer sizes, the gate-level partial datapath is generated, run
// through the glitch-aware technology mapper, and its estimated SA
// stored. The table persists to a text file and loads into a hash map at
// binder start-up, giving O(1) edge-weight lookups; missing entries are
// computed lazily (and cached), so the binder also works without a
// precomputed file — the paper verified both paths give identical
// binding results.
//
// The cache underneath is the shared pipeline.Cache primitive the
// experiment harness builds its stage cache on: concurrent misses on one
// key are deduplicated (singleflight), so the expensive netgen -> mapper
// computation runs exactly once per key no matter how many binder
// goroutines demand it.
package satable

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/mapper"
	"repro/internal/netgen"
	"repro/internal/pipeline"
	"repro/internal/prob"
	"repro/internal/store"
)

// Estimator selects the SA model used to fill the table.
type Estimator int

const (
	// EstimatorGlitch is the paper's estimator: unit-delay glitch-aware
	// SA of the mapped partial datapath (GlitchMap-derived).
	EstimatorGlitch Estimator = iota
	// EstimatorNajm is a glitch-blind ablation: zero-delay Najm
	// transition densities on the same mapped netlist. Najm's
	// single-input-switching assumption makes it a known overestimator.
	EstimatorNajm
	// EstimatorZeroDelay is the controlled glitch-blind ablation: the
	// same Chou–Roy switching model as EstimatorGlitch but without the
	// unit-delay time dimension, so it sees functional transitions only.
	EstimatorZeroDelay
)

func (e Estimator) String() string {
	switch e {
	case EstimatorGlitch:
		return "glitch"
	case EstimatorNajm:
		return "najm"
	case EstimatorZeroDelay:
		return "zerodelay"
	}
	return fmt.Sprintf("estimator(%d)", int(e))
}

// Key identifies one partial-datapath configuration.
type Key struct {
	Kind   netgen.FUKind
	KL, KR int
}

// saClass is the cache class table entries live under.
const saClass = "sa"

// keyString renders a Key as its cache key — the same "kind kl kr"
// triple the Save format's rows lead with.
func keyString(k Key) string {
	return fmt.Sprintf("%s %d %d", k.Kind, k.KL, k.KR)
}

// parseKey inverts keyString.
func parseKey(s string) (Key, error) {
	var kind string
	var kl, kr int
	if _, err := fmt.Sscanf(s, "%s %d %d", &kind, &kl, &kr); err != nil {
		return Key{}, fmt.Errorf("satable: bad key %q: %w", s, err)
	}
	return Key{Kind: netgen.FUKind(kind), KL: kl, KR: kr}, nil
}

// Table caches SA values per (FU, mux sizes) configuration. It is safe
// for concurrent use: entries live in a singleflight pipeline.Cache, so
// concurrent misses on the same key share one expensive netgen -> mapper
// computation.
type Table struct {
	// Width is the datapath bit width the entries were computed for.
	Width int
	// Est selects the SA model.
	Est Estimator
	// Arch is the target architecture the entries were characterized
	// under: its K drives the embedded mapper and its fingerprint stamps
	// Save/Load snapshots, so a table characterized for one fabric can
	// never silently serve another (see CheckArch).
	Arch arch.Target
	// MapOpt configures the embedded technology mapper.
	MapOpt mapper.Options

	cache *pipeline.Cache
}

// New returns an empty table for the given datapath width, characterized
// under the default Cyclone II architecture.
func New(width int, est Estimator) *Table {
	return NewForArch(width, est, arch.CycloneII())
}

// NewForArch returns an empty table characterized under the given
// target architecture: the embedded mapper covers with the target's
// LUT input count.
func NewForArch(width int, est Estimator, t arch.Target) *Table {
	return &Table{
		Width:  width,
		Est:    est,
		Arch:   t,
		MapOpt: mapper.OptionsForArch(t),
		cache:  pipeline.NewCache(),
	}
}

// Fingerprint canonically identifies the table's characterization: the
// datapath width, estimator, target architecture, and embedded mapper
// options — everything the entry values are deterministic in. Equal
// fingerprints mean interchangeable entries, which is the contract the
// durable store's sa@<fingerprint> class namespace is built on: a table
// characterized for one fabric can never warm-start another.
func (t *Table) Fingerprint() string {
	o := t.MapOpt
	return pipeline.NewHasher().
		Int(t.Width).Int(int(t.Est)).Str(t.Arch.Fingerprint()).
		Int(o.K).Int(o.Keep).Int(int(o.Mode)).
		F64(o.Sources.InputP).F64(o.Sources.InputS).
		F64(o.Sources.LatchP).F64(o.Sources.LatchS).
		Sum()
}

// AttachStore backs the table's entry cache with a durable store:
// misses consult the store before paying the netgen → mapper
// characterization, and every computed entry is written through.
// Entries live under the class "sa@<table fingerprint>", so one store
// safely serves any number of widths, estimators, and architectures.
func (t *Table) AttachStore(st *store.Store) {
	class := "sa@" + t.Fingerprint()
	st.RegisterCodec("sa@", store.Float64())
	t.cache.SetBacking(pipeline.RenameBacking(st, func(string) string { return class }))
}

// CheckArch reports an error when the table was characterized under a
// different architecture than want, naming both fingerprints. Callers
// adopting a loaded (or shared) table must check before binding with
// it: SA values are arch-specific, and a mismatched table would
// silently corrupt cross-arch comparisons.
func (t *Table) CheckArch(want arch.Target) error {
	got, wantFP := t.Arch.Fingerprint(), want.Fingerprint()
	if got != wantFP {
		return fmt.Errorf("satable: table characterized under arch %s cannot serve arch %s", got, wantFP)
	}
	return nil
}

// Get returns the estimated SA for the configuration, computing and
// caching it if absent. Mux sizes are clamped to >= 1.
//
// Get is the binder's hot-path accessor and keeps its historical
// value-only signature; it panics if the underlying computation fails
// (unknown FU kind, unmappable partial datapath), which only a
// programming bug can cause for the validated kinds the binders pass.
// Code handling untrusted or dynamic keys should call GetE instead —
// and any panic escaping here inside a pipeline stage is converted into
// a structured StageError by the stage's recovery boundary.
func (t *Table) Get(kind netgen.FUKind, kl, kr int) float64 {
	v, err := t.GetE(context.Background(), kind, kl, kr)
	if err != nil {
		panic(fmt.Sprintf("satable: %v", err))
	}
	return v
}

// GetE is Get with an error return: a failed computation (unknown FU
// kind, mapper failure, cancellation while waiting on another
// goroutine's in-flight computation) is reported instead of panicking.
// Mux sizes are clamped to >= 1. Errors are never cached, so a failed
// key heals on the next demand.
func (t *Table) GetE(ctx context.Context, kind netgen.FUKind, kl, kr int) (float64, error) {
	if kl < 1 {
		kl = 1
	}
	if kr < 1 {
		kr = 1
	}
	key := keyString(Key{Kind: kind, KL: kl, KR: kr})
	v, _, err := t.cache.Do(ctx, saClass, key, func() (any, error) {
		return t.compute(kind, kl, kr)
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// compute generates the partial datapath, maps it, and estimates SA —
// the "dynamic SA estimation" path of §5.2.2. Generator and mapper
// failures (including panics from invalid FU kinds) come back as
// errors so a bad key cannot take down a sweep.
func (t *Table) compute(kind netgen.FUKind, kl, kr int) (sa float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("satable: computing %s(%d,%d): %v", kind, kl, kr, r)
		}
	}()
	net := netgen.PartialDatapathNetwork(kind, kl, kr, t.Width)
	res, err := mapper.Map(net, t.MapOpt)
	if err != nil {
		return 0, fmt.Errorf("satable: mapping %s(%d,%d): %w", kind, kl, kr, err)
	}
	switch t.Est {
	case EstimatorNajm:
		e := prob.EstimateNetwork(res.Mapped, prob.MethodNajm, t.MapOpt.Sources)
		return e.TotalActivity(res.Mapped), nil
	case EstimatorZeroDelay:
		e := prob.EstimateNetwork(res.Mapped, prob.MethodChouRoy, t.MapOpt.Sources)
		return e.TotalActivity(res.Mapped), nil
	default:
		return res.EstSA, nil
	}
}

// Misses returns how many unique entries were computed lazily (not
// served from a preloaded file or cache). Concurrent misses on the same
// key share one computation and count once.
func (t *Table) Misses() int {
	return t.cache.StatsFor(saClass).Misses
}

// Len returns the number of cached entries.
func (t *Table) Len() int {
	return t.cache.Len(saClass)
}

// Precompute fills the table for every FU kind and all mux-size
// combinations up to maxMux inputs per port, computing missing entries
// on GOMAXPROCS workers. Entries are independent, so the filled table is
// identical to a serial fill.
func (t *Table) Precompute(maxMux int) {
	t.PrecomputeParallel(maxMux, 0)
}

// PrecomputeParallel is Precompute with an explicit worker count
// (jobs <= 0 selects GOMAXPROCS).
func (t *Table) PrecomputeParallel(maxMux, jobs int) {
	// The background context never cancels and the builtin FU kinds
	// always compute, so the error is unreachable here.
	_ = t.PrecomputeCtx(context.Background(), maxMux, jobs)
}

// PrecomputeCtx is the cancellable precompute: workers stop picking up
// new entries once ctx is done and the call returns ctx's error. A
// partially filled table stays valid — completed entries are kept and
// the next Precompute resumes from them. The first computation error
// (in key order, deterministic for any worker count) is returned.
func (t *Table) PrecomputeCtx(ctx context.Context, maxMux, jobs int) error {
	var keys []Key
	for _, kind := range []netgen.FUKind{netgen.FUAdd, netgen.FUMult} {
		for kl := 1; kl <= maxMux; kl++ {
			for kr := 1; kr <= maxMux; kr++ {
				keys = append(keys, Key{Kind: kind, KL: kl, KR: kr})
			}
		}
	}
	_, err := t.GetBatch(ctx, keys, jobs)
	return err
}

// GetBatch returns the SA values for keys in order, computing missing
// entries concurrently on up to jobs workers (jobs <= 0 selects
// GOMAXPROCS). This is the binding engine's scoring-round prefetch: one
// call resolves every distinct mux shape a round demands, overlapping
// the expensive netgen -> mapper characterizations instead of paying
// them serially edge by edge. Values are identical to sequential Get
// calls for any worker count, mux sizes are clamped to >= 1 like GetE,
// and concurrent misses on one key still share a single computation.
// On failure the first error in key order (deterministic for any worker
// count) is returned; completed entries remain cached.
func (t *Table) GetBatch(ctx context.Context, keys []Key, jobs int) ([]float64, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(keys) {
		jobs = len(keys)
	}
	vals := make([]float64, len(keys))
	errs := make([]error, len(keys))
	fill := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		vals[i], errs[i] = t.GetE(ctx, keys[i].Kind, keys[i].KL, keys[i].KR)
	}
	if jobs <= 1 {
		for i := range keys {
			fill(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(keys) {
						return
					}
					fill(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// Save writes the table as a text file (one "kind kl kr sa" row per
// entry), the storage format the paper describes. An out-of-range
// estimator is a save error: writing est=estimator(N) would produce a
// file Load itself rejects.
func (t *Table) Save(w io.Writer) error {
	switch t.Est {
	case EstimatorGlitch, EstimatorNajm, EstimatorZeroDelay:
	default:
		return fmt.Errorf("satable: cannot save table with invalid estimator %s", t.Est)
	}
	snap := t.cache.Snapshot(saClass)
	keys := make([]Key, 0, len(snap))
	vals := make(map[Key]float64, len(snap))
	for ks, v := range snap {
		k, err := parseKey(ks)
		if err != nil {
			return err
		}
		keys = append(keys, k)
		vals[k] = v.(float64)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		if keys[i].KL != keys[j].KL {
			return keys[i].KL < keys[j].KL
		}
		return keys[i].KR < keys[j].KR
	})
	if _, err := fmt.Fprintf(w, "# hlpower-satable width=%d est=%s arch=%s\n", t.Width, t.Est, t.Arch.Fingerprint()); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d %d %.9g\n", k.Kind, k.KL, k.KR, vals[k]); err != nil {
			return err
		}
	}
	return nil
}

// Bounds Load accepts. Wider than anything the flow generates, tight
// enough that a corrupt file cannot smuggle in absurd configurations
// that later panic the partial-datapath generator or mapper.
const (
	maxLoadWidth = 64
	maxLoadMux   = 256
)

// Load reads a table saved by Save. The estimator/width/architecture
// are recovered from the header; snapshots from before arch stamping
// carry no arch token and load as the default Cyclone II target (the
// only architecture that ever produced them). Loading never silently
// retargets: adopt a loaded table only after CheckArch against the
// architecture you intend to bind for.
//
// The input is treated as untrusted: a malformed header, an unknown
// estimator or FU kind, out-of-range widths or mux sizes, and
// non-finite or negative SA values are all load errors — never panics,
// and never entries that would poison a later binder run. (Entries a
// Save never emits used to flow straight into the cache and blow up
// deep inside netgen on first use.)
func Load(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("satable: reading header: %w", err)
		}
		return nil, fmt.Errorf("satable: empty input")
	}
	header := sc.Text()
	var width int
	var estName string
	if _, err := fmt.Sscanf(header, "# hlpower-satable width=%d est=%s", &width, &estName); err != nil {
		return nil, fmt.Errorf("satable: bad header %q: %w", header, err)
	}
	if width < 1 || width > maxLoadWidth {
		return nil, fmt.Errorf("satable: header width %d out of range [1,%d]", width, maxLoadWidth)
	}
	var est Estimator
	switch estName {
	case "glitch":
		est = EstimatorGlitch
	case "najm":
		est = EstimatorNajm
	case "zerodelay":
		est = EstimatorZeroDelay
	default:
		return nil, fmt.Errorf("satable: unknown estimator %q in header", estName)
	}
	tgt := arch.CycloneII()
	for _, field := range strings.Fields(header) {
		fp, ok := strings.CutPrefix(field, "arch=")
		if !ok {
			continue
		}
		parsed, err := arch.ParseFingerprint(fp)
		if err != nil {
			return nil, fmt.Errorf("satable: header %q: %w", header, err)
		}
		// The parsed target carries the stamped physics but no display
		// name; keep the fingerprint as the label.
		parsed.Name = fp
		tgt = parsed
		break
	}
	t := NewForArch(width, est, tgt)
	lineNo := 1
	// offset tracks the byte position of the current line's start so a
	// truncated or corrupt file reports *where* it broke and how many
	// rows survived — what makes a store quarantine log actionable
	// (dd/truncate straight to the damage) rather than just "bad row".
	offset := int64(len(header)) + 1
	seen := make(map[string]int)
	// rowErr decorates a row-level failure with its provenance: byte
	// offset of the offending line and rows recovered before it.
	rowErr := func(off int64, format string, args ...any) error {
		return fmt.Errorf("satable: line %d (byte offset %d, %d rows recovered): %w",
			lineNo, off, len(seen), fmt.Errorf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		lineStart := offset
		offset += int64(len(sc.Bytes())) + 1
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var kind string
		var kl, kr int
		var sa float64
		if _, err := fmt.Sscanf(line, "%s %d %d %g", &kind, &kl, &kr, &sa); err != nil {
			return nil, rowErr(lineStart, "%w", err)
		}
		switch netgen.FUKind(kind) {
		case netgen.FUAdd, netgen.FUMult:
		default:
			return nil, rowErr(lineStart, "unknown FU kind %q", kind)
		}
		if kl < 1 || kl > maxLoadMux || kr < 1 || kr > maxLoadMux {
			return nil, rowErr(lineStart, "mux sizes (%d,%d) out of range [1,%d]", kl, kr, maxLoadMux)
		}
		if math.IsNaN(sa) || math.IsInf(sa, 0) || sa < 0 {
			return nil, rowErr(lineStart, "SA value %g is not a finite non-negative number", sa)
		}
		ks := keyString(Key{Kind: netgen.FUKind(kind), KL: kl, KR: kr})
		if prev, dup := seen[ks]; dup {
			return nil, rowErr(lineStart, "duplicate entry (%s %d %d) shadows line %d", kind, kl, kr, prev)
		}
		seen[ks] = lineNo
		t.cache.Put(saClass, ks, sa)
	}
	if err := sc.Err(); err != nil {
		return nil, rowErr(offset, "%w", err)
	}
	return t, nil
}

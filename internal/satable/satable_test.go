package satable

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
)

func TestGetCachesValues(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	v1 := tb.Get(netgen.FUAdd, 2, 2)
	if v1 <= 0 {
		t.Fatalf("SA must be positive, got %v", v1)
	}
	m := tb.Misses()
	v2 := tb.Get(netgen.FUAdd, 2, 2)
	if v2 != v1 {
		t.Fatal("cache returned different value")
	}
	if tb.Misses() != m {
		t.Fatal("second Get should hit the cache")
	}
}

func TestGetClampsMuxSizes(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	a := tb.Get(netgen.FUAdd, 0, -3)
	b := tb.Get(netgen.FUAdd, 1, 1)
	if a != b {
		t.Fatal("sizes below 1 should clamp to 1")
	}
}

func TestSAGrowsWithMuxSizes(t *testing.T) {
	tb := New(6, EstimatorGlitch)
	s11 := tb.Get(netgen.FUAdd, 1, 1)
	s44 := tb.Get(netgen.FUAdd, 4, 4)
	if s44 <= s11 {
		t.Fatalf("bigger muxes should mean more SA: 1/1=%v 4/4=%v", s11, s44)
	}
}

func TestUnbalancedMuxesCostMore(t *testing.T) {
	// The physical basis of the muxDiff heuristic: same total inputs,
	// unbalanced split glitches more.
	tb := New(8, EstimatorGlitch)
	bal := tb.Get(netgen.FUAdd, 4, 4)
	unbal := tb.Get(netgen.FUAdd, 7, 1)
	if bal >= unbal {
		t.Fatalf("balanced (%v) should beat unbalanced (%v)", bal, unbal)
	}
}

func TestMultCostsMoreThanAdd(t *testing.T) {
	tb := New(6, EstimatorGlitch)
	if tb.Get(netgen.FUMult, 2, 2) <= tb.Get(netgen.FUAdd, 2, 2) {
		t.Fatal("multiplier partial datapath should out-switch adder's")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	tb.Get(netgen.FUAdd, 1, 1)
	tb.Get(netgen.FUAdd, 2, 3)
	tb.Get(netgen.FUMult, 1, 2)

	var sb strings.Builder
	if err := tb.Save(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 4 || back.Est != EstimatorGlitch {
		t.Fatalf("header lost: width=%d est=%v", back.Width, back.Est)
	}
	if back.Len() != tb.Len() {
		t.Fatalf("entry count %d != %d", back.Len(), tb.Len())
	}
	for _, k := range []Key{{netgen.FUAdd, 1, 1}, {netgen.FUAdd, 2, 3}, {netgen.FUMult, 1, 2}} {
		a := tb.Get(k.Kind, k.KL, k.KR)
		missesBefore := back.Misses()
		b := back.Get(k.Kind, k.KL, k.KR)
		if back.Misses() != missesBefore {
			t.Fatalf("loaded table missed on %+v", k)
		}
		if math.Abs(a-b)/a > 1e-6 {
			t.Fatalf("value drifted through save/load: %v vs %v", a, b)
		}
	}
}

// TestSaveLoadRoundTripAllEstimators round-trips a populated table
// through Save/Load for every valid estimator, and requires Save to
// refuse an out-of-range one — writing est=estimator(N) would produce
// a file Load itself rejects.
func TestSaveLoadRoundTripAllEstimators(t *testing.T) {
	for _, est := range []Estimator{EstimatorGlitch, EstimatorNajm, EstimatorZeroDelay} {
		tb := New(4, est)
		tb.Get(netgen.FUAdd, 1, 2)
		var sb strings.Builder
		if err := tb.Save(&sb); err != nil {
			t.Fatalf("est=%v: %v", est, err)
		}
		back, err := Load(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("est=%v: %v", est, err)
		}
		if back.Est != est || back.Width != 4 {
			t.Fatalf("est=%v: header lost: width=%d est=%v", est, back.Width, back.Est)
		}
		if back.Len() != tb.Len() {
			t.Fatalf("est=%v: entry count %d != %d", est, back.Len(), tb.Len())
		}
	}

	bad := New(4, Estimator(42))
	var sb strings.Builder
	if err := bad.Save(&sb); err == nil {
		t.Fatal("Save accepted an out-of-range estimator")
	}
	if sb.Len() != 0 {
		t.Fatalf("Save wrote %q before rejecting the estimator", sb.String())
	}
}

// TestLoadRejectsDuplicateRows is the regression test for silent
// last-row-wins shadowing: a duplicate (kind, kl, kr) row must be a
// line-numbered load error, not a quiet overwrite.
func TestLoadRejectsDuplicateRows(t *testing.T) {
	in := "# hlpower-satable width=8 est=glitch\n" +
		"add 1 1 0.5\n" +
		"add 2 2 0.75\n" +
		"add 1 1 0.9\n"
	_, err := Load(strings.NewReader(in))
	if err == nil {
		t.Fatal("duplicate row accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 4") || !strings.Contains(msg, "line 2") {
		t.Fatalf("error %q does not name both the duplicate and the shadowed line", msg)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(strings.NewReader("not a header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := Load(strings.NewReader("# hlpower-satable width=8 est=glitch\nbroken line\n")); err == nil {
		t.Fatal("bad row accepted")
	}
}

func TestPrecompute(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	tb.Precompute(2)
	// 2 kinds x 2 x 2 entries.
	if tb.Len() != 8 {
		t.Fatalf("precompute filled %d entries, want 8", tb.Len())
	}
	m := tb.Misses()
	tb.Get(netgen.FUMult, 2, 2)
	if tb.Misses() != m {
		t.Fatal("precomputed entry missed")
	}
}

func TestEstimatorsDiffer(t *testing.T) {
	g := New(6, EstimatorGlitch)
	n := New(6, EstimatorNajm)
	z := New(6, EstimatorZeroDelay)
	vg := g.Get(netgen.FUMult, 3, 3)
	vn := n.Get(netgen.FUMult, 3, 3)
	vz := z.Get(netgen.FUMult, 3, 3)
	if vg == vn || vg == vz {
		t.Fatal("estimators should differ")
	}
	// The glitch-aware estimate sees the glitches the zero-delay
	// Chou–Roy model misses (same switching model, added time axis).
	if vg <= vz {
		t.Fatalf("glitch estimate (%v) should exceed zero-delay (%v) on a multiplier", vg, vz)
	}
	// Najm's single-switching assumption is a known overestimator
	// relative to the simultaneous-switching zero-delay model.
	if vn <= vz {
		t.Fatalf("Najm (%v) should exceed zero-delay Chou-Roy (%v)", vn, vz)
	}
}

func BenchmarkTableHitVsCompute(b *testing.B) {
	tb := New(8, EstimatorGlitch)
	tb.Get(netgen.FUMult, 4, 4)
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb.Get(netgen.FUMult, 4, 4)
		}
	})
	b.Run("compute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := New(8, EstimatorGlitch)
			fresh.Get(netgen.FUMult, 4, 4)
		}
	})
}

// TestGetBatchMatchesSequentialGet checks the batch prefetch contract:
// values identical to serial Gets at every worker count, duplicate and
// unclamped keys included, with misses counted once per unique key.
func TestGetBatchMatchesSequentialGet(t *testing.T) {
	keys := []Key{
		{Kind: netgen.FUAdd, KL: 1, KR: 2},
		{Kind: netgen.FUMult, KL: 2, KR: 1},
		{Kind: netgen.FUAdd, KL: 2, KR: 2},
		{Kind: netgen.FUAdd, KL: 1, KR: 2},  // duplicate
		{Kind: netgen.FUAdd, KL: 0, KR: -1}, // clamps to (1,1)
	}
	ref := New(4, EstimatorGlitch)
	want := make([]float64, len(keys))
	for i, k := range keys {
		want[i] = ref.Get(k.Kind, k.KL, k.KR)
	}
	for _, jobs := range []int{1, 4} {
		tb := New(4, EstimatorGlitch)
		got, err := tb.GetBatch(context.Background(), keys, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range keys {
			if got[i] != want[i] {
				t.Fatalf("jobs=%d: keys[%d] = %v, want %v", jobs, i, got[i], want[i])
			}
		}
		if tb.Misses() != 4 { // 4 unique keys after clamping/dedup
			t.Fatalf("jobs=%d: misses = %d, want 4", jobs, tb.Misses())
		}
	}
}

func TestGetBatchCancellation(t *testing.T) {
	tb := New(4, EstimatorGlitch)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tb.GetBatch(ctx, []Key{{Kind: netgen.FUAdd, KL: 1, KR: 1}}, 2); err == nil {
		t.Fatal("cancelled batch should fail")
	}
}

// TestSaveLoadArchRoundTrip characterizes a table under a non-default
// architecture and requires the arch fingerprint to survive Save/Load:
// the loaded table must serve the same target (CheckArch nil) and carry
// the target's K into its mapper options.
func TestSaveLoadArchRoundTrip(t *testing.T) {
	k6 := arch.StratixLike6LUT()
	tb := NewForArch(4, EstimatorGlitch, k6)
	tb.Get(netgen.FUAdd, 2, 2)
	var sb strings.Builder
	if err := tb.Save(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "arch="+k6.Fingerprint()) {
		t.Fatalf("header missing arch stamp:\n%s", sb.String())
	}
	back, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckArch(k6); err != nil {
		t.Fatalf("round-tripped table refuses its own arch: %v", err)
	}
	if back.MapOpt.K != 6 {
		t.Fatalf("loaded MapOpt.K = %d, want 6", back.MapOpt.K)
	}
	if back.Arch.Fingerprint() != k6.Fingerprint() {
		t.Fatalf("fingerprint drifted: %s vs %s", back.Arch.Fingerprint(), k6.Fingerprint())
	}
}

// TestCheckArchMismatchNamesBoth requires the refusal error to carry
// both fingerprints so a stale snapshot is diagnosable from the message
// alone.
func TestCheckArchMismatchNamesBoth(t *testing.T) {
	tb := NewForArch(4, EstimatorGlitch, arch.CycloneII())
	want := arch.StratixLike6LUT()
	err := tb.CheckArch(want)
	if err == nil {
		t.Fatal("K=4 table accepted for a K=6 target")
	}
	msg := err.Error()
	if !strings.Contains(msg, tb.Arch.Fingerprint()) || !strings.Contains(msg, want.Fingerprint()) {
		t.Fatalf("error %q does not name both fingerprints", msg)
	}
}

// TestLoadLegacyHeaderDefaultsCycloneII: snapshots written before the
// arch stamp existed (no arch= token) must load as the CycloneII
// default they were characterized under, not be rejected.
func TestLoadLegacyHeaderDefaultsCycloneII(t *testing.T) {
	in := "# hlpower-satable width=8 est=glitch\n" +
		"add 1 1 0.5\n"
	tb, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckArch(arch.CycloneII()); err != nil {
		t.Fatalf("legacy snapshot should serve CycloneII: %v", err)
	}
	if tb.MapOpt.K != 4 {
		t.Fatalf("legacy MapOpt.K = %d, want 4", tb.MapOpt.K)
	}
}

// TestLoadRejectsMalformedArchToken: a present-but-unparseable arch
// stamp is corruption, not a legacy file.
func TestLoadRejectsMalformedArchToken(t *testing.T) {
	in := "# hlpower-satable width=8 est=glitch arch=K9;bogus\n" +
		"add 1 1 0.5\n"
	if _, err := Load(strings.NewReader(in)); err == nil {
		t.Fatal("malformed arch token accepted")
	}
}

// Package cuts implements K-feasible cut enumeration for technology
// mapping, after Cong, Wu and Ding's cut ranking and pruning [8 in the
// paper]. A cut of node n is a set of "leaf" nodes that separates n from
// the sources; implementing n as one K-input LUT requires a cut with at
// most K leaves. The package provides cut merging with on-the-fly
// function composition (so every cut carries its local function over its
// leaves, which the glitch-aware SA evaluator consumes) and leaves
// ranking policy to the mapper.
package cuts

import (
	"sort"
	"strconv"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

// Cut is a K-feasible cut: sorted leaf node IDs and the function of the
// cut's root expressed over those leaves (variable i = Leaves[i]).
type Cut struct {
	Leaves []int
	Func   *bitvec.TruthTable
}

// Key returns a canonical identity for deduplication.
func (c Cut) Key() string {
	b := make([]byte, 0, 8*len(c.Leaves))
	for i, l := range c.Leaves {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(l), 10)
	}
	return string(b)
}

// Trivial returns the trivial cut {n}: the node itself as its only leaf.
func Trivial(n int) Cut {
	return Cut{Leaves: []int{n}, Func: bitvec.Var(1, 0)}
}

// Merge combines one chosen cut per fanin of a gate into a cut of the
// gate, or reports ok = false if the union of leaves exceeds maxLeaves.
// fn is the gate's local function over its fanins.
func Merge(fn *bitvec.TruthTable, faninCuts []Cut, maxLeaves int) (Cut, bool) {
	// Union the leaves.
	var leaves []int
	seen := make(map[int]bool)
	for _, c := range faninCuts {
		for _, l := range c.Leaves {
			if !seen[l] {
				seen[l] = true
				leaves = append(leaves, l)
			}
		}
	}
	if len(leaves) > maxLeaves {
		return Cut{}, false
	}
	sort.Ints(leaves)
	pos := make(map[int]int, len(leaves))
	for i, l := range leaves {
		pos[l] = i
	}
	// Compose: substitute each fanin's cut function (expanded to the
	// union leaf space) into the gate function.
	n := len(leaves)
	sub := make([]*bitvec.TruthTable, len(faninCuts))
	for i, c := range faninCuts {
		mapping := make([]int, len(c.Leaves))
		for j, l := range c.Leaves {
			mapping[j] = pos[l]
		}
		sub[i] = c.Func.Expand(n, mapping)
	}
	out := bitvec.FromFunc(n, func(assign uint) bool {
		var inner uint
		for i := range sub {
			if sub[i].Get(assign) {
				inner |= 1 << uint(i)
			}
		}
		return fn.Get(inner)
	})
	return Cut{Leaves: leaves, Func: out}, true
}

// EnumerateNode produces all K-feasible cuts of a gate given the kept
// cut sets of its fanins, by cartesian merging, deduplicated, with the
// trivial cut appended. The caller ranks and prunes the result. This is
// the convenience form; hot loops hold a Scratch and call its method to
// amortize the per-node buffers.
func EnumerateNode(nd *logic.Node, faninSets [][]Cut, k int) []Cut {
	s := scratchPool.Get().(*Scratch)
	res := s.EnumerateNode(nd, faninSets, k)
	out := make([]Cut, len(res))
	copy(out, res)
	scratchPool.Put(s)
	return out
}

// Enumerate computes pruned cut sets for every node of the network.
// k bounds cut size (LUT inputs); keep bounds the number of cuts
// retained per node; rank orders cuts before pruning (smaller is kept).
// The trivial cut is always retained so a cover exists. A nil rank keeps
// cuts ordered by leaf count.
func Enumerate(net *logic.Network, k, keep int, rank func(node int, a, b Cut) bool) [][]Cut {
	if rank == nil {
		rank = func(_ int, a, b Cut) bool { return len(a.Leaves) < len(b.Leaves) }
	}
	sets := make([][]Cut, net.NumNodes())
	s := NewScratch()
	var faninSets [][]Cut
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		if nd.Kind != logic.KindGate {
			sets[id] = []Cut{Trivial(id)}
			continue
		}
		faninSets = faninSets[:0]
		for _, f := range nd.Fanins {
			faninSets = append(faninSets, sets[f])
		}
		all := s.EnumerateNode(nd, faninSets, k)
		kept := Prune(id, all, keep, rank)
		cp := make([]Cut, len(kept))
		copy(cp, kept)
		sets[id] = cp
	}
	return sets
}

// Prune sorts cuts with rank and keeps the best `keep`, always retaining
// the trivial cut (the single leaf equal to the node itself).
func Prune(node int, all []Cut, keep int, rank func(node int, a, b Cut) bool) []Cut {
	// Stable binary-insertion sort: candidate lists are small (tens of
	// cuts) and this runs once per gate, where sort.SliceStable's
	// closure plumbing and reflection-based swapper allocate enough to
	// show up in mapping profiles. Insertion sort is stable, so the
	// resulting order — and every downstream cover decision — is
	// identical.
	for i := 1; i < len(all); i++ {
		c := all[i]
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if rank(node, c, all[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(all[lo+1:i+1], all[lo:i])
		all[lo] = c
	}
	if len(all) <= keep {
		return all
	}
	kept := all[:keep:keep]
	hasTrivial := false
	for _, c := range kept {
		if len(c.Leaves) == 1 && c.Leaves[0] == node {
			hasTrivial = true
			break
		}
	}
	if !hasTrivial {
		for _, c := range all[keep:] {
			if len(c.Leaves) == 1 && c.Leaves[0] == node {
				kept = append(kept, c)
				break
			}
		}
	}
	return kept
}

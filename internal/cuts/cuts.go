// Package cuts implements K-feasible cut enumeration for technology
// mapping, after Cong, Wu and Ding's cut ranking and pruning [8 in the
// paper]. A cut of node n is a set of "leaf" nodes that separates n from
// the sources; implementing n as one K-input LUT requires a cut with at
// most K leaves. The package provides cut merging with on-the-fly
// function composition (so every cut carries its local function over its
// leaves, which the glitch-aware SA evaluator consumes) and leaves
// ranking policy to the mapper.
package cuts

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

// Cut is a K-feasible cut: sorted leaf node IDs and the function of the
// cut's root expressed over those leaves (variable i = Leaves[i]).
type Cut struct {
	Leaves []int
	Func   *bitvec.TruthTable
}

// Key returns a canonical identity for deduplication.
func (c Cut) Key() string {
	return fmt.Sprint(c.Leaves)
}

// Trivial returns the trivial cut {n}: the node itself as its only leaf.
func Trivial(n int) Cut {
	return Cut{Leaves: []int{n}, Func: bitvec.Var(1, 0)}
}

// Merge combines one chosen cut per fanin of a gate into a cut of the
// gate, or reports ok = false if the union of leaves exceeds maxLeaves.
// fn is the gate's local function over its fanins.
func Merge(fn *bitvec.TruthTable, faninCuts []Cut, maxLeaves int) (Cut, bool) {
	// Union the leaves.
	var leaves []int
	seen := make(map[int]bool)
	for _, c := range faninCuts {
		for _, l := range c.Leaves {
			if !seen[l] {
				seen[l] = true
				leaves = append(leaves, l)
			}
		}
	}
	if len(leaves) > maxLeaves {
		return Cut{}, false
	}
	sort.Ints(leaves)
	pos := make(map[int]int, len(leaves))
	for i, l := range leaves {
		pos[l] = i
	}
	// Compose: substitute each fanin's cut function (expanded to the
	// union leaf space) into the gate function.
	n := len(leaves)
	sub := make([]*bitvec.TruthTable, len(faninCuts))
	for i, c := range faninCuts {
		mapping := make([]int, len(c.Leaves))
		for j, l := range c.Leaves {
			mapping[j] = pos[l]
		}
		sub[i] = c.Func.Expand(n, mapping)
	}
	out := bitvec.FromFunc(n, func(assign uint) bool {
		var inner uint
		for i := range sub {
			if sub[i].Get(assign) {
				inner |= 1 << uint(i)
			}
		}
		return fn.Get(inner)
	})
	return Cut{Leaves: leaves, Func: out}, true
}

// EnumerateNode produces all K-feasible cuts of a gate given the kept
// cut sets of its fanins, by cartesian merging, deduplicated, with the
// trivial cut appended. The caller ranks and prunes the result.
func EnumerateNode(nd *logic.Node, faninSets [][]Cut, k int) []Cut {
	var out []Cut
	dedup := make(map[string]bool)
	add := func(c Cut) {
		key := c.Key()
		if !dedup[key] {
			dedup[key] = true
			out = append(out, c)
		}
	}
	chosen := make([]Cut, len(nd.Fanins))
	var rec func(i int)
	rec = func(i int) {
		if i == len(nd.Fanins) {
			if c, ok := Merge(nd.Func, chosen, k); ok {
				add(c)
			}
			return
		}
		for _, c := range faninSets[i] {
			chosen[i] = c
			rec(i + 1)
		}
	}
	if len(nd.Fanins) > 0 {
		rec(0)
	}
	add(Trivial(nd.ID))
	return out
}

// Enumerate computes pruned cut sets for every node of the network.
// k bounds cut size (LUT inputs); keep bounds the number of cuts
// retained per node; rank orders cuts before pruning (smaller is kept).
// The trivial cut is always retained so a cover exists. A nil rank keeps
// cuts ordered by leaf count.
func Enumerate(net *logic.Network, k, keep int, rank func(node int, a, b Cut) bool) [][]Cut {
	if rank == nil {
		rank = func(_ int, a, b Cut) bool { return len(a.Leaves) < len(b.Leaves) }
	}
	sets := make([][]Cut, net.NumNodes())
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		if nd.Kind != logic.KindGate {
			sets[id] = []Cut{Trivial(id)}
			continue
		}
		faninSets := make([][]Cut, len(nd.Fanins))
		for i, f := range nd.Fanins {
			faninSets[i] = sets[f]
		}
		all := EnumerateNode(nd, faninSets, k)
		sets[id] = Prune(id, all, keep, rank)
	}
	return sets
}

// Prune sorts cuts with rank and keeps the best `keep`, always retaining
// the trivial cut (the single leaf equal to the node itself).
func Prune(node int, all []Cut, keep int, rank func(node int, a, b Cut) bool) []Cut {
	sort.SliceStable(all, func(i, j int) bool { return rank(node, all[i], all[j]) })
	if len(all) <= keep {
		return all
	}
	kept := all[:keep:keep]
	hasTrivial := false
	for _, c := range kept {
		if len(c.Leaves) == 1 && c.Leaves[0] == node {
			hasTrivial = true
			break
		}
	}
	if !hasTrivial {
		for _, c := range all[keep:] {
			if len(c.Leaves) == 1 && c.Leaves[0] == node {
				kept = append(kept, c)
				break
			}
		}
	}
	return kept
}

package cuts_test

// K=6 property tests for the cut enumerator and the mapper built on it,
// in an external test package so the netgen/mapper imports cannot cycle.
// They back the 6-LUT target (arch.StratixLike6LUT): every enumerated
// cut respects the K bound, and a depth-oriented K=6 cover is never
// deeper than the K=4 cover of the same network — wider LUTs can only
// absorb more logic per level.

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cuts"
	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/netgen"
)

// randomNet builds a seeded random combinational network with gate
// fanins up to 3, the same shape the mapper's formal fuzz uses.
func randomNet(seed int64) *logic.Network {
	rng := rand.New(rand.NewSource(seed))
	net := logic.NewNetwork("k6fz")
	var pool []int
	for i := 0; i < 3+rng.Intn(5); i++ {
		pool = append(pool, net.AddInput("i"+string(rune('0'+i))))
	}
	fns := []*bitvec.TruthTable{
		logic.TTAnd2(), logic.TTOr2(), logic.TTXor2(), logic.TTNand2(),
		logic.TTNot(), logic.TTMaj3(), logic.TTXor3(), logic.TTMux2(),
	}
	for g := 0; g < 10+rng.Intn(30); g++ {
		fn := fns[rng.Intn(len(fns))]
		fanins := make([]int, fn.NumVars())
		for j := range fanins {
			fanins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, net.AddGate("", fn, fanins...))
	}
	for o := 0; o < 1+rng.Intn(3); o++ {
		net.MarkOutput("o"+string(rune('0'+o)), pool[len(pool)-1-rng.Intn(4)])
	}
	return net
}

// TestEnumerateRespectsK checks no enumerated cut ever exceeds the K
// bound, at every supported K, on random and library networks.
func TestEnumerateRespectsK(t *testing.T) {
	nets := []*logic.Network{
		netgen.AdderNetwork(8),
		netgen.MultiplierNetwork(6),
	}
	for seed := int64(0); seed < 10; seed++ {
		nets = append(nets, randomNet(seed))
	}
	for ni, net := range nets {
		for k := 2; k <= 6; k++ {
			if k < net.Stats().MaxFanin {
				continue // not coverable at this K
			}
			sets := cuts.Enumerate(net, k, 8, nil)
			for node, set := range sets {
				for _, c := range set {
					if len(c.Leaves) > k {
						t.Fatalf("net %d K=%d: node %d has a %d-leaf cut %v",
							ni, k, node, len(c.Leaves), c.Leaves)
					}
				}
			}
		}
	}
}

// TestDepthMonotoneK4ToK6 maps the same networks depth-oriented at K=4
// and K=6 and requires the 6-LUT cover never be deeper (and never use
// more LUTs): each 6-cut set is a superset of the 4-cut set, so the
// optimal depth cannot increase.
func TestDepthMonotoneK4ToK6(t *testing.T) {
	nets := []*logic.Network{
		netgen.AdderNetwork(8),
		netgen.SubtractorNetwork(8),
		netgen.MultiplierNetwork(6),
		netgen.MuxNetwork(4, 8),
	}
	for seed := int64(0); seed < 15; seed++ {
		nets = append(nets, randomNet(seed))
	}
	for ni, net := range nets {
		opt4 := mapper.DefaultOptions()
		opt4.Mode = mapper.ModeDepth
		opt6 := opt4
		opt6.K = 6
		r4, err := mapper.Map(net, opt4)
		if err != nil {
			t.Fatalf("net %d K=4: %v", ni, err)
		}
		r6, err := mapper.Map(net, opt6)
		if err != nil {
			t.Fatalf("net %d K=6: %v", ni, err)
		}
		if r6.Depth > r4.Depth {
			t.Errorf("net %d: K=6 depth %d exceeds K=4 depth %d", ni, r6.Depth, r4.Depth)
		}
		if r6.LUTs > r4.LUTs {
			t.Errorf("net %d: K=6 area %d exceeds K=4 area %d under depth mapping", ni, r6.LUTs, r4.LUTs)
		}
	}
}

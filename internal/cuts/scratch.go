package cuts

import (
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

// Scratch holds the transient state of per-node cut enumeration —
// dedup set, leaf-union buffer, fanin variable maps, candidate list —
// so a mapping pass over a large network reuses one allocation set per
// worker instead of allocating fresh maps and slices at every gate.
//
// A Scratch is not safe for concurrent use; give each worker its own.
type Scratch struct {
	seen   map[string]struct{}
	out    []Cut
	chosen []Cut
	union  []int
	maps   [][]int
	key    []byte
}

// NewScratch returns an empty enumeration scratch.
func NewScratch() *Scratch {
	return &Scratch{seen: make(map[string]struct{}, 64)}
}

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// EnumerateNode produces all K-feasible cuts of the gate by cartesian
// merging of its fanins' kept cut sets, deduplicated by leaf set, with
// the trivial cut appended — the same contract as the package-level
// EnumerateNode, minus the per-call allocations. The returned slice and
// its backing array are valid only until the next call on this scratch;
// the Cuts themselves (Leaves, Func) are freshly allocated and safe to
// retain.
func (s *Scratch) EnumerateNode(nd *logic.Node, faninSets [][]Cut, k int) []Cut {
	s.out = s.out[:0]
	clear(s.seen)
	nf := len(nd.Fanins)
	if cap(s.chosen) < nf {
		s.chosen = make([]Cut, nf)
	}
	chosen := s.chosen[:nf]
	var rec func(i int)
	rec = func(i int) {
		if i == nf {
			s.merge(nd.Func, chosen, k)
			return
		}
		for _, c := range faninSets[i] {
			chosen[i] = c
			rec(i + 1)
		}
	}
	if nf > 0 {
		rec(0)
	}
	s.addTrivial(nd.ID)
	return s.out
}

// merge unions the chosen fanin cuts' leaves, rejects oversize unions,
// deduplicates by leaf set, and composes the cut function for first
// occurrences only. Deduplicating BEFORE composing is result-identical
// to the compose-then-dedup order of the original Merge/EnumerateNode
// pair: any leaf set reached here separates the root from the sources,
// so the root's function over those leaves is unique — two fanin-cut
// combinations with the same leaf union always compose to the same
// function. Skipping the duplicate compositions is where most of the
// enumeration time on reconvergent netlists goes.
func (s *Scratch) merge(fn *bitvec.TruthTable, faninCuts []Cut, maxLeaves int) {
	s.union = s.union[:0]
	for _, c := range faninCuts {
		s.union = append(s.union, c.Leaves...)
	}
	sort.Ints(s.union)
	u := s.union[:0]
	for i, l := range s.union {
		if i == 0 || l != s.union[i-1] {
			u = append(u, l)
		}
	}
	if len(u) > maxLeaves {
		return
	}
	s.key = appendLeafKey(s.key[:0], u)
	if _, dup := s.seen[string(s.key)]; dup {
		return
	}
	s.seen[string(s.key)] = struct{}{}

	// First occurrence: compose by direct evaluation over the union
	// minterm space (equivalent to Expand-then-substitute, without the
	// intermediate expanded tables).
	for cap(s.maps) < len(faninCuts) {
		s.maps = append(s.maps[:cap(s.maps)], nil)
	}
	maps := s.maps[:len(faninCuts)]
	for i, c := range faninCuts {
		mi := maps[i][:0]
		for _, l := range c.Leaves {
			mi = append(mi, indexOf(u, l))
		}
		maps[i] = mi
	}
	n := len(u)
	out := bitvec.New(n)
	size := 1 << n
	for m := 0; m < size; m++ {
		var inner uint
		for i, c := range faninCuts {
			var a uint
			for j, p := range maps[i] {
				if m&(1<<uint(p)) != 0 {
					a |= 1 << uint(j)
				}
			}
			if c.Func.Get(a) {
				inner |= 1 << uint(i)
			}
		}
		if fn.Get(inner) {
			out.Set(uint(m), true)
		}
	}
	leaves := make([]int, n)
	copy(leaves, u)
	s.out = append(s.out, Cut{Leaves: leaves, Func: out})
}

func (s *Scratch) addTrivial(id int) {
	s.key = appendLeafKey(s.key[:0], []int{id})
	if _, dup := s.seen[string(s.key)]; dup {
		return
	}
	s.seen[string(s.key)] = struct{}{}
	s.out = append(s.out, Trivial(id))
}

// appendLeafKey appends a fixed-width binary encoding of the (sorted)
// leaf IDs — injective, and cheaper than formatting decimal.
func appendLeafKey(dst []byte, leaves []int) []byte {
	for _, l := range leaves {
		dst = append(dst, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return dst
}

// indexOf returns the position of l in the sorted slice u. Unions are
// at most K (<= 6) wide, so a linear scan beats binary search.
func indexOf(u []int, l int) int {
	for i, v := range u {
		if v == l {
			return i
		}
	}
	panic("cuts: leaf missing from its own union")
}

package cuts

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netgen"
)

// refEnumerateNode is the original compose-then-dedup enumeration,
// kept as the oracle for the dedup-before-compose scratch path.
func refEnumerateNode(nd *logic.Node, faninSets [][]Cut, k int) []Cut {
	var out []Cut
	dedup := make(map[string]bool)
	add := func(c Cut) {
		key := c.Key()
		if !dedup[key] {
			dedup[key] = true
			out = append(out, c)
		}
	}
	chosen := make([]Cut, len(nd.Fanins))
	var rec func(i int)
	rec = func(i int) {
		if i == len(nd.Fanins) {
			if c, ok := Merge(nd.Func, chosen, k); ok {
				add(c)
			}
			return
		}
		for _, c := range faninSets[i] {
			chosen[i] = c
			rec(i + 1)
		}
	}
	if len(nd.Fanins) > 0 {
		rec(0)
	}
	add(Trivial(nd.ID))
	return out
}

func TestScratchMatchesReferenceEnumeration(t *testing.T) {
	for _, net := range []*logic.Network{
		netgen.AdderNetwork(6),
		netgen.MultiplierNetwork(5),
	} {
		for _, k := range []int{3, 4, 5} {
			s := NewScratch()
			refSets := make([][]Cut, net.NumNodes())
			for _, id := range net.TopoOrder() {
				nd := net.Node(id)
				if nd.Kind != logic.KindGate {
					refSets[id] = []Cut{Trivial(id)}
					continue
				}
				faninSets := make([][]Cut, len(nd.Fanins))
				for i, f := range nd.Fanins {
					faninSets[i] = refSets[f]
				}
				want := refEnumerateNode(nd, faninSets, k)
				got := s.EnumerateNode(nd, faninSets, k)
				if len(got) != len(want) {
					t.Fatalf("%s k=%d node %d: %d cuts, want %d", net.Name, k, id, len(got), len(want))
				}
				for i := range got {
					if len(got[i].Leaves) != len(want[i].Leaves) {
						t.Fatalf("%s k=%d node %d cut %d: leaves %v, want %v", net.Name, k, id, i, got[i].Leaves, want[i].Leaves)
					}
					for j := range got[i].Leaves {
						if got[i].Leaves[j] != want[i].Leaves[j] {
							t.Fatalf("%s k=%d node %d cut %d: leaves %v, want %v", net.Name, k, id, i, got[i].Leaves, want[i].Leaves)
						}
					}
					if !got[i].Func.Equal(want[i].Func) {
						t.Fatalf("%s k=%d node %d cut %d (%v): func %s, want %s",
							net.Name, k, id, i, got[i].Leaves, got[i].Func, want[i].Func)
					}
				}
				// Seed the next node's fanin sets with the reference (pruned)
				// result so both paths see identical inputs throughout.
				refSets[id] = Prune(id, want, 6, func(_ int, a, b Cut) bool {
					return len(a.Leaves) < len(b.Leaves)
				})
			}
		}
	}
}

package cuts

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/netgen"
)

func TestTrivialCut(t *testing.T) {
	c := Trivial(42)
	if len(c.Leaves) != 1 || c.Leaves[0] != 42 {
		t.Fatalf("trivial cut leaves = %v", c.Leaves)
	}
	if !c.Func.Get(1) || c.Func.Get(0) {
		t.Fatal("trivial cut function must be identity")
	}
}

func TestMergeComposesFunctions(t *testing.T) {
	// y = (a AND b) XOR c; cut of the XOR through the AND gives the
	// 3-leaf function (a AND b) XOR c.
	net := logic.NewNetwork("m")
	a := net.AddInput("a")
	b := net.AddInput("b")
	c := net.AddInput("c")
	andG := net.AddGate("and", logic.TTAnd2(), a, b)
	_ = andG

	andCut, ok := Merge(logic.TTAnd2(), []Cut{Trivial(a), Trivial(b)}, 4)
	if !ok {
		t.Fatal("merge failed")
	}
	xorCut, ok := Merge(logic.TTXor2(), []Cut{andCut, Trivial(c)}, 4)
	if !ok {
		t.Fatal("merge failed")
	}
	if len(xorCut.Leaves) != 3 {
		t.Fatalf("leaves = %v, want 3 leaves", xorCut.Leaves)
	}
	want := bitvec.FromFunc(3, func(m uint) bool {
		av := m&1 != 0 // leaves sorted: a, b, c by node id
		bv := m&2 != 0
		cv := m&4 != 0
		return (av && bv) != cv
	})
	if !xorCut.Func.Equal(want) {
		t.Fatalf("composed function %s, want %s", xorCut.Func, want)
	}
}

func TestMergeRespectsLeafLimit(t *testing.T) {
	net := logic.NewNetwork("m")
	ins := make([]Cut, 5)
	for i := range ins {
		ins[i] = Trivial(net.AddInput(""))
	}
	wide := bitvec.Const(5, true)
	if _, ok := Merge(wide, ins, 4); ok {
		t.Fatal("merge of 5 distinct leaves must fail with K=4")
	}
	if _, ok := Merge(wide, ins, 5); !ok {
		t.Fatal("merge of 5 leaves must succeed with K=5")
	}
}

func TestMergeSharedLeavesDeduplicate(t *testing.T) {
	// Reconvergence: both fanins rooted at the same leaf — union is 1 leaf.
	net := logic.NewNetwork("m")
	a := net.AddInput("a")
	c, ok := Merge(logic.TTXor2(), []Cut{Trivial(a), Trivial(a)}, 2)
	if !ok {
		t.Fatal("merge failed")
	}
	if len(c.Leaves) != 1 {
		t.Fatalf("shared leaf not deduplicated: %v", c.Leaves)
	}
	// x XOR x == 0.
	if v, isConst := c.Func.IsConst(); !isConst || v {
		t.Fatalf("x xor x should be constant 0, got %s", c.Func)
	}
}

func TestEnumerateFullAdder(t *testing.T) {
	net := logic.NewNetwork("fa")
	a := net.AddInput("a")
	b := net.AddInput("b")
	cin := net.AddInput("cin")
	sum := net.AddGate("sum", logic.TTXor3(), a, b, cin)
	net.MarkOutput("s", sum)

	sets := Enumerate(net, 4, 8, nil)
	// The sum gate must own a 3-leaf cut over the PIs plus its trivial cut.
	found3 := false
	for _, c := range sets[sum] {
		if len(c.Leaves) == 3 {
			found3 = true
			if !c.Func.Equal(logic.TTXor3()) {
				t.Fatalf("3-leaf cut function %s, want xor3", c.Func)
			}
		}
	}
	if !found3 {
		t.Fatal("missing PI-level cut of the sum gate")
	}
}

func TestEnumerateCutFunctionsMatchNetwork(t *testing.T) {
	// Every enumerated cut's function, evaluated on the leaves' simulated
	// values, must equal the node's simulated value.
	net := netgen.AdderNetwork(4)
	sets := Enumerate(net, 4, 6, nil)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		in := make([]bool, len(net.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		val := net.Eval(in, nil)
		for id, cs := range sets {
			for _, c := range cs {
				var assign uint
				for i, l := range c.Leaves {
					if val[l] {
						assign |= 1 << uint(i)
					}
				}
				if c.Func.Get(assign) != val[id] {
					t.Fatalf("node %d cut %v: function disagrees with simulation", id, c.Leaves)
				}
			}
		}
	}
}

func TestEnumerateKeepsTrivialUnderPruning(t *testing.T) {
	net := netgen.MultiplierNetwork(4)
	sets := Enumerate(net, 4, 2, nil)
	for id, cs := range sets {
		hasTrivial := false
		for _, c := range cs {
			if len(c.Leaves) == 1 && c.Leaves[0] == id {
				hasTrivial = true
			}
			if len(c.Leaves) > 4 {
				t.Fatalf("node %d: cut wider than K: %v", id, c.Leaves)
			}
		}
		if !hasTrivial {
			t.Fatalf("node %d lost its trivial cut", id)
		}
	}
}

func TestPruneKeepLimit(t *testing.T) {
	net := netgen.MultiplierNetwork(5)
	for _, keep := range []int{1, 3, 8} {
		sets := Enumerate(net, 4, keep, nil)
		for id, cs := range sets {
			if len(cs) > keep+1 { // +1 for a re-added trivial cut
				t.Fatalf("node %d: kept %d cuts with keep=%d", id, len(cs), keep)
			}
		}
	}
}

func TestCustomRankOrdersCuts(t *testing.T) {
	net := netgen.AdderNetwork(3)
	// Rank by descending leaf count: widest first.
	sets := Enumerate(net, 4, 4, func(_ int, a, b Cut) bool {
		return len(a.Leaves) > len(b.Leaves)
	})
	for _, cs := range sets {
		for i := 1; i < len(cs)-1; i++ { // last may be re-added trivial
			if len(cs[i].Leaves) > len(cs[i-1].Leaves) {
				t.Fatalf("rank not respected: %v after %v", cs[i].Leaves, cs[i-1].Leaves)
			}
		}
	}
}

func BenchmarkEnumerateMult8(b *testing.B) {
	net := netgen.MultiplierNetwork(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Enumerate(net, 4, 6, nil)
	}
}

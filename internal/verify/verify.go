// Package verify implements combinational equivalence checking between
// logic networks, the sign-off step an EDA flow runs after every
// netlist transformation (optimization, technology mapping, BLIF round
// trips). Primary inputs are matched by name and outputs by name (or
// position when names are absent); each output pair is compared exactly
// by building a BDD miter. Sequential networks are checked on their
// combinational surface: latch outputs pair up as pseudo-inputs and
// latch D inputs as pseudo-outputs, which proves cycle-accurate
// equivalence when the latch correspondence is by name.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/logic"
)

// Result reports an equivalence check.
type Result struct {
	// Equivalent is true when every compared output pair matched.
	Equivalent bool
	// FailedOutput names the first differing output.
	FailedOutput string
	// Counterexample assigns a value per matched input name
	// demonstrating the difference (nil when equivalent).
	Counterexample map[string]bool
}

// Options bounds the check.
type Options struct {
	// MaxNodes bounds the BDD manager (0 = 1<<21). Exceeding it returns
	// an error rather than an unsound verdict.
	MaxNodes int
}

// Equivalent checks combinational equivalence of two networks.
func Equivalent(a, b *logic.Network, opt Options) (*Result, error) {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 1 << 21
	}

	// Pair inputs by name: the union of both networks' source names maps
	// to one BDD variable each.
	m := bdd.New()
	varOf := make(map[string]int)
	varName := []string{}
	sourceVar := func(name string) bdd.Ref {
		if name == "" {
			name = fmt.Sprintf("_anon%d", len(varOf))
		}
		v, ok := varOf[name]
		if !ok {
			v = len(varName)
			varOf[name] = v
			varName = append(varName, name)
		}
		return m.Var(v)
	}

	build := func(net *logic.Network) (map[string]bdd.Ref, error) {
		refs := make([]bdd.Ref, net.NumNodes())
		for _, id := range net.TopoOrder() {
			nd := net.Node(id)
			switch nd.Kind {
			case logic.KindInput, logic.KindLatchOut:
				refs[id] = sourceVar(nd.Name)
			case logic.KindConst:
				refs[id] = bdd.False
				if nd.ConstVal {
					refs[id] = bdd.True
				}
			case logic.KindGate:
				n := len(nd.Fanins)
				var compose func(assign uint, v int) bdd.Ref
				compose = func(assign uint, v int) bdd.Ref {
					if v == n {
						if nd.Func.Get(assign) {
							return bdd.True
						}
						return bdd.False
					}
					lo := compose(assign, v+1)
					hi := compose(assign|1<<uint(v), v+1)
					if lo == hi {
						return lo
					}
					return m.ITE(refs[nd.Fanins[v]], hi, lo)
				}
				refs[id] = compose(0, 0)
				if m.Size() > opt.MaxNodes {
					return nil, fmt.Errorf("verify: BDD exceeded %d nodes at %q", opt.MaxNodes, nd.Name)
				}
			}
		}
		outs := make(map[string]bdd.Ref, len(net.Outputs)+len(net.Latches))
		for i, o := range net.Outputs {
			name := o.Name
			if name == "" {
				name = fmt.Sprintf("_out%d", i)
			}
			outs[name] = refs[o.Node]
		}
		// Latch D inputs are pseudo-outputs keyed by the latch name.
		for _, q := range net.Latches {
			nd := net.Node(q)
			outs["_latch_"+nd.Name] = refs[nd.LatchInput]
		}
		return outs, nil
	}

	oa, err := build(a)
	if err != nil {
		return nil, err
	}
	ob, err := build(b)
	if err != nil {
		return nil, err
	}
	if len(oa) != len(ob) {
		return nil, fmt.Errorf("verify: output counts differ (%d vs %d)", len(oa), len(ob))
	}
	names := make([]string, 0, len(oa))
	for name := range oa {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rb, ok := ob[name]
		if !ok {
			return nil, fmt.Errorf("verify: output %q missing from second network", name)
		}
		miter := m.Xor(oa[name], rb)
		if miter == bdd.False {
			continue
		}
		// Extract a satisfying assignment of the miter.
		assign := satAssign(m, miter)
		ce := make(map[string]bool, len(varName))
		for v, nm := range varName {
			ce[nm] = assign&(1<<uint(v)) != 0
		}
		return &Result{Equivalent: false, FailedOutput: name, Counterexample: ce}, nil
	}
	return &Result{Equivalent: true}, nil
}

// satAssign walks any path to True in f and returns the input assignment
// as a bit mask over BDD variables (unconstrained variables read 0).
func satAssign(m *bdd.Manager, f bdd.Ref) uint {
	var assign uint
	for f != bdd.True {
		v, lo, hi := m.Node(f)
		if hi != bdd.False {
			assign |= 1 << uint(v)
			f = hi
		} else {
			f = lo
		}
	}
	return assign
}

package verify

import (
	"testing"

	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/netgen"
)

func TestEquivalentIdentical(t *testing.T) {
	a := netgen.AdderNetwork(6)
	b := netgen.AdderNetwork(6)
	res, err := Equivalent(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("identical adders reported different at %s with %v", res.FailedOutput, res.Counterexample)
	}
}

func TestEquivalentArchitectures(t *testing.T) {
	// Ripple, CLA, and carry-select adders are all the same function.
	ripple := netgen.AdderArchNetwork(netgen.AdderRipple, 8)
	cla := netgen.AdderArchNetwork(netgen.AdderCLA, 8)
	csel := netgen.AdderArchNetwork(netgen.AdderCarrySelect, 8)
	for _, other := range []*logic.Network{cla, csel} {
		res, err := Equivalent(ripple, other, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("%s differs from ripple at %s, counterexample %v", other.Name, res.FailedOutput, res.Counterexample)
		}
	}
	// Array vs Wallace multipliers.
	arr := netgen.MultArchNetwork(netgen.MultArray, 6)
	wal := netgen.MultArchNetwork(netgen.MultWallace, 6)
	res, err := Equivalent(arr, wal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("wallace differs from array at %s", res.FailedOutput)
	}
}

func TestEquivalentMapping(t *testing.T) {
	// Formal sign-off of the technology mapper.
	net := netgen.MultiplierNetwork(5)
	m, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Equivalent(net, m.Mapped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("mapping changed the function at %s (counterexample %v)", res.FailedOutput, res.Counterexample)
	}
}

func TestEquivalentOptimization(t *testing.T) {
	net := netgen.PartialDatapathNetwork(netgen.FUAdd, 3, 2, 5)
	opt, _ := logic.Optimize(net)
	res, err := Equivalent(net, opt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("Optimize changed the function at %s", res.FailedOutput)
	}
}

func TestInequivalenceDetectedWithCounterexample(t *testing.T) {
	a := logic.NewNetwork("a")
	x := a.AddInput("x")
	y := a.AddInput("y")
	a.MarkOutput("o", a.AddGate("g", logic.TTAnd2(), x, y))

	b := logic.NewNetwork("b")
	x2 := b.AddInput("x")
	y2 := b.AddInput("y")
	b.MarkOutput("o", b.AddGate("g", logic.TTOr2(), x2, y2))

	res, err := Equivalent(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("AND vs OR reported equivalent")
	}
	if res.FailedOutput != "o" {
		t.Fatalf("failed output %q", res.FailedOutput)
	}
	// The counterexample must actually distinguish them.
	in := func(net *logic.Network) []bool {
		v := make([]bool, len(net.Inputs))
		for i, id := range net.Inputs {
			v[i] = res.Counterexample[net.Node(id).Name]
		}
		return v
	}
	oa := a.OutputValues(a.Eval(in(a), nil))[0]
	ob := b.OutputValues(b.Eval(in(b), nil))[0]
	if oa == ob {
		t.Fatalf("counterexample %v does not distinguish the networks", res.Counterexample)
	}
}

func TestSequentialEquivalenceViaLatchSurface(t *testing.T) {
	// Same toggle FF built two ways: q' = NOT q vs q' = q XOR 1.
	mk := func(viaXor bool) *logic.Network {
		n := logic.NewNetwork("t")
		q := n.AddLatch("q", false)
		var d int
		if viaXor {
			one := n.AddConst("one", true)
			d = n.AddGate("d", logic.TTXor2(), q, one)
		} else {
			d = n.AddGate("d", logic.TTNot(), q)
		}
		n.ConnectLatch(q, d)
		n.MarkOutput("y", q)
		return n
	}
	res, err := Equivalent(mk(false), mk(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("equivalent sequential circuits rejected at %s", res.FailedOutput)
	}
}

func TestBlifRoundTripSignOff(t *testing.T) {
	net := netgen.PartialDatapathNetwork(netgen.FUMult, 2, 2, 4)
	m := blif.FromNetwork(net)
	lib := blif.NewLibrary()
	lib.Add(m)
	back, err := blif.Flatten(lib, net.Name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Equivalent(net, back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("BLIF round trip changed the function at %s", res.FailedOutput)
	}
}

func TestNodeBudgetReported(t *testing.T) {
	a := netgen.MultiplierNetwork(8)
	b := netgen.MultiplierNetwork(8)
	if _, err := Equivalent(a, b, Options{MaxNodes: 128}); err == nil {
		t.Fatal("tiny budget should error, not mis-report")
	}
}

func TestOutputMismatchErrors(t *testing.T) {
	a := netgen.AdderNetwork(3)
	b := netgen.AdderNetwork(4)
	if _, err := Equivalent(a, b, Options{}); err == nil {
		t.Fatal("different output sets should be an error")
	}
}

// Package modsel implements module selection — the paper's stated
// future work (§7): after binding, choose a gate-level implementation
// for every functional unit (ripple/carry-lookahead/carry-select adder;
// array/Wallace multiplier) that minimizes the glitch-aware estimated
// switching activity of the unit's partial datapath, optionally under a
// LUT-depth budget. The evaluation reuses exactly the machinery the
// binder's SA table is built on: generate the partial datapath with the
// candidate architecture, map it to 4-LUTs, and read the unit-delay
// glitch estimate.
package modsel

import (
	"fmt"
	"sync"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/netgen"
	"repro/internal/regbind"
)

// Options configures module selection.
type Options struct {
	// Width is the datapath bit width.
	Width int
	// MaxDepth bounds the mapped LUT depth of a unit's partial datapath
	// (0 = unconstrained). Candidates deeper than the budget are
	// rejected; if none fits, the shallowest candidate wins.
	MaxDepth int
	// MapOpt configures the embedded mapper.
	MapOpt mapper.Options
	// Margin is the minimum relative SA improvement a non-baseline
	// architecture must show to displace the baseline (the estimator is
	// evaluated on free-running partial datapaths, which is optimistic
	// about in-situ gains; a margin keeps selection conservative).
	Margin float64
}

// DefaultOptions returns an 8-bit, depth-unconstrained configuration
// with a 25% switching margin (ablation runs showed the free-running
// estimate overstates in-situ gains by roughly 10-20%, so smaller
// margins flip units that do not pay off on the measured datapath).
func DefaultOptions() Options {
	return Options{Width: netgen.DefaultWidth, MapOpt: mapper.DefaultOptions(), Margin: 0.25}
}

// Selection holds the chosen architecture per functional unit.
type Selection struct {
	// Adders maps adder-class FU IDs to their selected architecture.
	Adders map[int]netgen.AdderArch
	// Mults maps multiplier FU IDs to their selected architecture.
	Mults map[int]netgen.MultArch
	// EstSA is the summed estimated SA of the selected partial
	// datapaths; BaselineSA is the same sum with the baseline library.
	EstSA, BaselineSA float64
}

// Arch adapts the selection for datapath.ElaborateArch.
func (sel *Selection) Arch() (adder func(*binding.FU) netgen.AdderArch, mult func(*binding.FU) netgen.MultArch) {
	return func(fu *binding.FU) netgen.AdderArch {
			if a, ok := sel.Adders[fu.ID]; ok {
				return a
			}
			return netgen.AdderRipple
		}, func(fu *binding.FU) netgen.MultArch {
			if m, ok := sel.Mults[fu.ID]; ok {
				return m
			}
			return netgen.MultArray
		}
}

// evaluation caches (kind, arch, kl, kr) -> (estSA, depth).
type evalKey struct {
	kind netgen.FUKind
	arch string
	kl   int
	kr   int
}

type evalResult struct {
	sa    float64
	depth int
}

// Selector performs module selection with a shared evaluation cache.
type Selector struct {
	Opt Options

	mu    sync.Mutex
	cache map[evalKey]evalResult
}

// NewSelector returns a selector with an empty cache.
func NewSelector(opt Options) *Selector {
	return &Selector{Opt: opt, cache: make(map[evalKey]evalResult)}
}

// Select chooses an architecture for every FU of the binding. FUs that
// execute subtractions keep the ripple add/sub unit (the variant
// library has no carry-in).
func (se *Selector) Select(g *cdfg.Graph, rb *regbind.Binding, res *binding.Result) (*Selection, error) {
	sel := &Selection{
		Adders: make(map[int]netgen.AdderArch),
		Mults:  make(map[int]netgen.MultArch),
	}
	for _, fu := range res.FUs {
		kl, kr := binding.MuxSizes(g, rb, res, fu)
		switch fu.Kind {
		case netgen.FUAdd:
			if hasSub(g, fu) {
				sel.Adders[fu.ID] = netgen.AdderRipple
				base, err := se.evaluate(fu.Kind, "ripple", kl, kr)
				if err != nil {
					return nil, err
				}
				sel.EstSA += base.sa
				sel.BaselineSA += base.sa
				continue
			}
			best := netgen.AdderRipple
			var bestRes, baseRes evalResult
			first := true
			for _, arch := range []netgen.AdderArch{netgen.AdderRipple, netgen.AdderCLA, netgen.AdderCarrySelect} {
				r, err := se.evaluate(fu.Kind, arch.String(), kl, kr)
				if err != nil {
					return nil, err
				}
				if arch == netgen.AdderRipple {
					baseRes = r
				}
				if se.better(r, bestRes, first) {
					best, bestRes, first = arch, r, false
				}
			}
			if best != netgen.AdderRipple && !se.clearsMargin(bestRes, baseRes) {
				best, bestRes = netgen.AdderRipple, baseRes
			}
			sel.Adders[fu.ID] = best
			sel.EstSA += bestRes.sa
			sel.BaselineSA += baseRes.sa
		case netgen.FUMult:
			best := netgen.MultArray
			var bestRes, baseRes evalResult
			first := true
			for _, arch := range []netgen.MultArch{netgen.MultArray, netgen.MultWallace} {
				r, err := se.evaluate(fu.Kind, arch.String(), kl, kr)
				if err != nil {
					return nil, err
				}
				if arch == netgen.MultArray {
					baseRes = r
				}
				if se.better(r, bestRes, first) {
					best, bestRes, first = arch, r, false
				}
			}
			if best != netgen.MultArray && !se.clearsMargin(bestRes, baseRes) {
				best, bestRes = netgen.MultArray, baseRes
			}
			sel.Mults[fu.ID] = best
			sel.EstSA += bestRes.sa
			sel.BaselineSA += baseRes.sa
		}
	}
	return sel, nil
}

// clearsMargin reports whether a non-baseline candidate improves on the
// baseline by at least the configured margin. Depth-budget rescues (the
// baseline violating MaxDepth while the candidate fits) bypass the
// margin.
func (se *Selector) clearsMargin(candidate, baseline evalResult) bool {
	if se.Opt.MaxDepth > 0 && baseline.depth > se.Opt.MaxDepth && candidate.depth <= se.Opt.MaxDepth {
		return true
	}
	return candidate.sa < baseline.sa*(1-se.Opt.Margin)
}

// better compares candidates: prefer fitting the depth budget, then
// lower SA, then lower depth.
func (se *Selector) better(candidate, best evalResult, first bool) bool {
	if first {
		return true
	}
	if se.Opt.MaxDepth > 0 {
		cFits := candidate.depth <= se.Opt.MaxDepth
		bFits := best.depth <= se.Opt.MaxDepth
		if cFits != bFits {
			return cFits
		}
		if !cFits && !bFits {
			return candidate.depth < best.depth
		}
	}
	if candidate.sa != best.sa {
		return candidate.sa < best.sa
	}
	return candidate.depth < best.depth
}

// evaluate maps the candidate partial datapath and reads its estimate.
func (se *Selector) evaluate(kind netgen.FUKind, arch string, kl, kr int) (evalResult, error) {
	if kl < 1 {
		kl = 1
	}
	if kr < 1 {
		kr = 1
	}
	key := evalKey{kind: kind, arch: arch, kl: kl, kr: kr}
	se.mu.Lock()
	if r, ok := se.cache[key]; ok {
		se.mu.Unlock()
		return r, nil
	}
	se.mu.Unlock()

	net := buildVariantPartial(kind, arch, kl, kr, se.Opt.Width)
	mres, err := mapper.Map(net, se.Opt.MapOpt)
	if err != nil {
		return evalResult{}, fmt.Errorf("modsel: %s/%s(%d,%d): %w", kind, arch, kl, kr, err)
	}
	r := evalResult{sa: mres.EstSA, depth: mres.Depth}
	se.mu.Lock()
	se.cache[key] = r
	se.mu.Unlock()
	return r, nil
}

// buildVariantPartial is netgen.PartialDatapathNetwork with a selectable
// FU architecture.
func buildVariantPartial(kind netgen.FUKind, arch string, kL, kR, w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("%s_%s_%d_%d_w%d", kind, arch, kL, kR, w))
	buildPort := func(side string, k int) []int {
		sel := make([]int, netgen.SelBits(k))
		for i := range sel {
			sel[i] = net.AddInput(fmt.Sprintf("SEL%s%d", side, i))
		}
		data := make([][]int, k)
		for i := range data {
			data[i] = make([]int, w)
			for b := 0; b < w; b++ {
				data[i][b] = net.AddInput(fmt.Sprintf("%s%d_%d", side, i, b))
			}
		}
		return netgen.BuildMux(net, side+"mux_", sel, data)
	}
	left := buildPort("L", kL)
	right := buildPort("R", kR)
	var out []int
	if kind == netgen.FUAdd {
		out = netgen.BuildAdderArch(net, adderArchByName(arch), "fu_", left, right)
	} else {
		out = netgen.BuildMultArch(net, multArchByName(arch), "fu_", left, right)
	}
	for b, id := range out {
		net.MarkOutput(fmt.Sprintf("O%d", b), id)
	}
	return net
}

func adderArchByName(name string) netgen.AdderArch {
	switch name {
	case "cla":
		return netgen.AdderCLA
	case "cselect":
		return netgen.AdderCarrySelect
	}
	return netgen.AdderRipple
}

func multArchByName(name string) netgen.MultArch {
	if name == "wallace" {
		return netgen.MultWallace
	}
	return netgen.MultArray
}

func hasSub(g *cdfg.Graph, fu *binding.FU) bool {
	for _, op := range fu.Ops {
		if g.Nodes[op].Kind == cdfg.KindSub {
			return true
		}
	}
	return false
}

package modsel

import (
	"math/rand"
	"testing"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

func boundKernel(t *testing.T) (*cdfg.Graph, *cdfg.Schedule, *regbind.Binding, *binding.Result) {
	t.Helper()
	g := workload.FIR(6)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	return g, s, rb, res
}

func TestSelectCoversEveryFU(t *testing.T) {
	g, _, rb, res := boundKernel(t)
	opt := DefaultOptions()
	opt.Width = 4
	sel, err := NewSelector(opt).Select(g, rb, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, fu := range res.FUs {
		switch fu.Kind {
		case netgen.FUAdd:
			if _, ok := sel.Adders[fu.ID]; !ok {
				t.Fatalf("adder FU %d unselected", fu.ID)
			}
		case netgen.FUMult:
			if _, ok := sel.Mults[fu.ID]; !ok {
				t.Fatalf("mult FU %d unselected", fu.ID)
			}
		}
	}
	if sel.EstSA <= 0 || sel.BaselineSA <= 0 {
		t.Fatal("SA sums not populated")
	}
	// Selection never estimates worse than the baseline library.
	if sel.EstSA > sel.BaselineSA+1e-9 {
		t.Fatalf("selection (%v) worse than baseline (%v)", sel.EstSA, sel.BaselineSA)
	}
}

func TestSelectedDatapathStaysFunctional(t *testing.T) {
	g, s, rb, res := boundKernel(t)
	opt := DefaultOptions()
	opt.Width = 4
	sel, err := NewSelector(opt).Select(g, rb, res)
	if err != nil {
		t.Fatal(err)
	}
	adder, mult := sel.Arch()
	d, err := datapath.ElaborateArch(g, s, rb, res, 4, &datapath.Arch{Adder: adder, Mult: mult})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, g, d, 15, 3)
}

func TestDepthBudgetForcesShallowArch(t *testing.T) {
	g, _, rb, res := boundKernel(t)
	opt := DefaultOptions()
	opt.Width = 8
	opt.MaxDepth = 1 // unsatisfiable: falls back to the shallowest
	sel, err := NewSelector(opt).Select(g, rb, res)
	if err != nil {
		t.Fatal(err)
	}
	// Under an unsatisfiable budget the selector picks by depth; the
	// Wallace tree is the shallow multiplier.
	for id, m := range sel.Mults {
		if m != netgen.MultWallace {
			t.Fatalf("mult FU %d: depth budget should force wallace, got %s", id, m)
		}
	}
}

func TestSubtractionFUsStayRipple(t *testing.T) {
	g := workload.Butterfly(2)
	rc := cdfg.ResourceConstraint{Add: 4, Mult: 2}
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Width = 4
	sel, err := NewSelector(opt).Select(g, rb, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, fu := range res.FUs {
		if fu.Kind != netgen.FUAdd {
			continue
		}
		hasSubOp := false
		for _, op := range fu.Ops {
			if g.Nodes[op].Kind == cdfg.KindSub {
				hasSubOp = true
			}
		}
		if hasSubOp && sel.Adders[fu.ID] != netgen.AdderRipple {
			t.Fatalf("sub-carrying FU %d must stay ripple, got %s", fu.ID, sel.Adders[fu.ID])
		}
	}
	// And the selected design still computes the butterfly.
	adder, mult := sel.Arch()
	d, err := datapath.ElaborateArch(g, s, rb, res, 4, &datapath.Arch{Adder: adder, Mult: mult})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, g, d, 10, 5)
}

func TestEvaluationCacheHits(t *testing.T) {
	se := NewSelector(Options{Width: 4, MapOpt: DefaultOptions().MapOpt})
	r1, err := se.evaluate(netgen.FUAdd, "cla", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := se.evaluate(netgen.FUAdd, "cla", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("cache returned different result")
	}
	if len(se.cache) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(se.cache))
	}
}

// verify simulates the design against the CDFG arithmetic reference
// (same harness as the datapath tests).
func verify(t *testing.T, g *cdfg.Graph, d *datapath.Design, trials int, seed int64) {
	t.Helper()
	simr, err := sim.New(d.Net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		values := make([]uint64, len(g.Inputs))
		for i := range values {
			values[i] = uint64(rng.Intn(1 << d.Width))
		}
		in := d.SetInputVector(g, values)
		ref := cdfg.Eval(g, values, d.Width)
		sampled := false
		for cyc := 0; cyc < 3*d.StepCount+2; cyc++ {
			simr.Step(in)
			if cyc >= 2*d.StepCount && d.CounterValue(simr.Values()) == d.StepCount-1 {
				for i, o := range g.Outputs {
					if got := d.ReadOutput(simr.Values(), i); got != ref[o] {
						t.Fatalf("trial %d output %d: got %d want %d", trial, i, got, ref[o])
					}
				}
				sampled = true
				break
			}
		}
		if !sampled {
			t.Fatal("never reached sampling step")
		}
	}
}

package matching

import (
	"container/list"
	"math"
)

// Flow is a min-cost max-flow network (successive shortest augmenting
// paths with SPFA, adequate for binding-sized graphs).
type Flow struct {
	n     int
	head  [][]int // adjacency: node -> edge indices
	to    []int
	cap   []int
	cost  []float64
	first []int // index of each user-added edge (for EdgeFlow)
}

// NewFlow creates a flow network with n nodes (0..n-1).
func NewFlow(n int) *Flow {
	return &Flow{n: n, head: make([][]int, n)}
}

// AddEdge adds a directed edge u->v with the given capacity and cost and
// returns an edge handle usable with EdgeFlow.
func (f *Flow) AddEdge(u, v, capacity int, cost float64) int {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		panic("matching: flow edge endpoint out of range")
	}
	id := len(f.to)
	f.to = append(f.to, v)
	f.cap = append(f.cap, capacity)
	f.cost = append(f.cost, cost)
	f.head[u] = append(f.head[u], id)
	// Reverse edge.
	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.cost = append(f.cost, -cost)
	f.head[v] = append(f.head[v], id+1)
	f.first = append(f.first, id)
	return len(f.first) - 1
}

// EdgeFlow returns the flow pushed through a user-added edge.
func (f *Flow) EdgeFlow(handle int) int {
	id := f.first[handle]
	return f.cap[id^1] // reverse capacity accumulates the pushed flow
}

// MinCostMaxFlow augments along successive cheapest paths from s to t
// until no augmenting path remains, returning total flow and cost.
func (f *Flow) MinCostMaxFlow(s, t int) (flow int, cost float64) {
	for {
		dist := make([]float64, f.n)
		inQueue := make([]bool, f.n)
		prevEdge := make([]int, f.n)
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		q := list.New()
		q.PushBack(s)
		inQueue[s] = true
		for q.Len() > 0 {
			u := q.Remove(q.Front()).(int)
			inQueue[u] = false
			for _, id := range f.head[u] {
				if f.cap[id] <= 0 {
					continue
				}
				v := f.to[id]
				nd := dist[u] + f.cost[id]
				if nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = id
					if !inQueue[v] {
						q.PushBack(v)
						inQueue[v] = true
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return flow, cost
		}
		// Bottleneck along the path.
		push := math.MaxInt32
		for v := t; v != s; {
			id := prevEdge[v]
			if f.cap[id] < push {
				push = f.cap[id]
			}
			v = f.to[id^1]
		}
		for v := t; v != s; {
			id := prevEdge[v]
			f.cap[id] -= push
			f.cap[id^1] += push
			v = f.to[id^1]
		}
		flow += push
		cost += float64(push) * dist[t]
	}
}

package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxWeightSimple(t *testing.T) {
	// 2x2 with a clear optimum: (0-1, 1-0) = 5 + 4 = 9.
	edges := []Edge{
		{0, 0, 1}, {0, 1, 5},
		{1, 0, 4}, {1, 1, 2},
	}
	match, total := MaxWeight(2, 2, edges)
	if total != 9 {
		t.Fatalf("total = %v, want 9", total)
	}
	if match[0] != 1 || match[1] != 0 {
		t.Fatalf("match = %v, want [1 0]", match)
	}
}

func TestMaxWeightLeavesUnmatched(t *testing.T) {
	// A single edge: the other vertices stay unmatched.
	match, total := MaxWeight(3, 3, []Edge{{1, 2, 7}})
	if total != 7 {
		t.Fatalf("total = %v", total)
	}
	if match[0] != -1 || match[1] != 2 || match[2] != -1 {
		t.Fatalf("match = %v", match)
	}
}

func TestMaxWeightRectangular(t *testing.T) {
	// More left than right vertices.
	edges := []Edge{
		{0, 0, 3}, {1, 0, 5}, {2, 0, 4},
	}
	match, total := MaxWeight(3, 1, edges)
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
	if match[1] != 0 || match[0] != -1 || match[2] != -1 {
		t.Fatalf("match = %v", match)
	}
}

func TestMaxWeightEmpty(t *testing.T) {
	match, total := MaxWeight(0, 5, nil)
	if len(match) != 0 || total != 0 {
		t.Fatal("empty left side should yield empty matching")
	}
	match, total = MaxWeight(3, 3, nil)
	if total != 0 {
		t.Fatal("no edges should yield zero weight")
	}
	for _, m := range match {
		if m != -1 {
			t.Fatal("no edges should leave all unmatched")
		}
	}
}

func TestMaxWeightIgnoresNonPositive(t *testing.T) {
	match, total := MaxWeight(2, 2, []Edge{{0, 0, -5}, {1, 1, 0}})
	if total != 0 || match[0] != -1 || match[1] != -1 {
		t.Fatalf("non-positive edges selected: %v %v", match, total)
	}
}

// bruteForceMax enumerates all matchings (small sizes).
func bruteForceMax(nU, nV int, edges []Edge) float64 {
	w := make(map[[2]int]float64)
	for _, e := range edges {
		if e.W > 0 {
			if old, ok := w[[2]int{e.U, e.V}]; !ok || e.W > old {
				w[[2]int{e.U, e.V}] = e.W
			}
		}
	}
	usedV := make([]bool, nV)
	var rec func(u int) float64
	rec = func(u int) float64 {
		if u == nU {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for v := 0; v < nV; v++ {
			if usedV[v] {
				continue
			}
			if wt, ok := w[[2]int{u, v}]; ok {
				usedV[v] = true
				if c := wt + rec(u+1); c > best {
					best = c
				}
				usedV[v] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestMaxWeightMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU := 1 + rng.Intn(5)
		nV := 1 + rng.Intn(5)
		var edges []Edge
		for u := 0; u < nU; u++ {
			for v := 0; v < nV; v++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, Edge{u, v, float64(1+rng.Intn(20)) / 2})
				}
			}
		}
		_, got := MaxWeight(nU, nV, edges)
		want := bruteForceMax(nU, nV, edges)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU := 1 + rng.Intn(8)
		nV := 1 + rng.Intn(8)
		var edges []Edge
		exists := make(map[[2]int]bool)
		for u := 0; u < nU; u++ {
			for v := 0; v < nV; v++ {
				if rng.Intn(3) == 0 {
					edges = append(edges, Edge{u, v, rng.Float64() * 10})
					exists[[2]int{u, v}] = true
				}
			}
		}
		match, _ := MaxWeight(nU, nV, edges)
		seen := make(map[int]bool)
		for u, v := range match {
			if v == -1 {
				continue
			}
			if !exists[[2]int{u, v}] {
				return false // matched a non-edge
			}
			if seen[v] {
				return false // right vertex used twice
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowSimplePath(t *testing.T) {
	f := NewFlow(4)
	e0 := f.AddEdge(0, 1, 3, 1)
	e1 := f.AddEdge(1, 2, 2, 1)
	e2 := f.AddEdge(2, 3, 3, 1)
	flow, cost := f.MinCostMaxFlow(0, 3)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2 (bottleneck)", flow)
	}
	if math.Abs(cost-6) > 1e-9 {
		t.Fatalf("cost = %v, want 6", cost)
	}
	if f.EdgeFlow(e0) != 2 || f.EdgeFlow(e1) != 2 || f.EdgeFlow(e2) != 2 {
		t.Fatal("edge flows wrong")
	}
}

func TestFlowPrefersCheapPath(t *testing.T) {
	// Two parallel paths; cheaper one must carry the flow.
	f := NewFlow(4)
	cheap := f.AddEdge(0, 1, 1, 1)
	f.AddEdge(1, 3, 1, 1)
	exp := f.AddEdge(0, 2, 1, 10)
	f.AddEdge(2, 3, 1, 10)
	flow, cost := f.MinCostMaxFlow(0, 3)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2", flow)
	}
	if math.Abs(cost-22) > 1e-9 {
		t.Fatalf("cost = %v, want 22", cost)
	}
	if f.EdgeFlow(cheap) != 1 || f.EdgeFlow(exp) != 1 {
		t.Fatal("both paths should be used at max flow")
	}
}

func TestFlowAsAssignment(t *testing.T) {
	// Min-cost flow solves the assignment problem; compare against the
	// Hungarian solver on random instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = float64(1 + rng.Intn(30))
			}
		}
		// Hungarian maximization.
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				edges = append(edges, Edge{i, j, w[i][j]})
			}
		}
		_, best := MaxWeight(n, n, edges)

		// Flow formulation: source->left, left->right (cost = -w),
		// right->sink; max flow n, min cost = -max weight.
		fl := NewFlow(2*n + 2)
		s, t0 := 2*n, 2*n+1
		for i := 0; i < n; i++ {
			fl.AddEdge(s, i, 1, 0)
			fl.AddEdge(n+i, t0, 1, 0)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				fl.AddEdge(i, n+j, 1, -w[i][j])
			}
		}
		flow, cost := fl.MinCostMaxFlow(s, t0)
		return flow == n && math.Abs(-cost-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowDisconnected(t *testing.T) {
	f := NewFlow(2)
	flow, cost := f.MinCostMaxFlow(0, 1)
	if flow != 0 || cost != 0 {
		t.Fatal("disconnected network should carry no flow")
	}
}

func BenchmarkMaxWeight50x50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			if rng.Intn(3) != 0 {
				edges = append(edges, Edge{u, v, rng.Float64() * 100})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeight(50, 50, edges)
	}
}

// TestSolverReuseMatchesMaxWeight drives one Solver through a sequence
// of random problems of varying (and shrinking) dimensions — the shape
// of the binding engine's iteration loop — and requires every solve to
// match a fresh package-level MaxWeight bit for bit.
func TestSolverReuseMatchesMaxWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSolver()
	for trial := 0; trial < 60; trial++ {
		nU, nV := 1+rng.Intn(12), 1+rng.Intn(20)
		var edges []Edge
		for u := 0; u < nU; u++ {
			for v := 0; v < nV; v++ {
				if rng.Intn(3) != 0 {
					// Mix duplicates and non-positive weights in: both are
					// part of MaxWeight's contract.
					w := rng.Float64()*10 - 1
					edges = append(edges, Edge{u, v, w})
					if rng.Intn(8) == 0 {
						edges = append(edges, Edge{u, v, w / 2})
					}
				}
			}
		}
		wantM, wantT := MaxWeight(nU, nV, edges)
		gotM, gotT := s.MaxWeight(nU, nV, edges)
		if gotT != wantT {
			t.Fatalf("trial %d: total %v, want %v", trial, gotT, wantT)
		}
		for i := range wantM {
			if gotM[i] != wantM[i] {
				t.Fatalf("trial %d: matchU[%d] = %d, want %d", trial, i, gotM[i], wantM[i])
			}
		}
	}
}

func BenchmarkSolverReuse50x50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			if rng.Intn(3) != 0 {
				edges = append(edges, Edge{u, v, rng.Float64() * 100})
			}
		}
	}
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MaxWeight(50, 50, edges)
	}
}

package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSparseMatchesBruteForce: the SSP solver must reach the same
// optimal total as exhaustive enumeration on small random instances,
// and produce a valid matching.
func TestSparseMatchesBruteForce(t *testing.T) {
	s := NewSolver()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU := 1 + rng.Intn(5)
		nV := 1 + rng.Intn(5)
		var edges []Edge
		for u := 0; u < nU; u++ {
			for v := 0; v < nV; v++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, Edge{u, v, float64(1+rng.Intn(20)) / 2})
				}
			}
		}
		match, got := s.MaxWeightSparse(nU, nV, edges)
		want := bruteForceMax(nU, nV, edges)
		if math.Abs(got-want) > 1e-9 {
			return false
		}
		seen := map[int]bool{}
		sum := 0.0
		for u, v := range match {
			if v == -1 {
				continue
			}
			if seen[v] {
				return false
			}
			seen[v] = true
			best := 0.0
			for _, e := range edges {
				if e.U == u && e.V == v && e.W > best {
					best = e.W
				}
			}
			if best == 0 {
				return false // matched a non-edge
			}
			sum += best
		}
		return math.Abs(sum-got) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseTotalMatchesHungarian: on larger sparse instances, totals
// from both solvers must agree to float tolerance (the matchings
// themselves may differ between equally-optimal solutions).
func TestSparseTotalMatchesHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dense := NewSolver()
	sparse := NewSolver()
	for trial := 0; trial < 40; trial++ {
		nU := 1 + rng.Intn(20)
		nV := 1 + rng.Intn(200)
		var edges []Edge
		for u := 0; u < nU; u++ {
			for k := 0; k < 8; k++ {
				edges = append(edges, Edge{u, rng.Intn(nV), rng.Float64()*10 - 1})
			}
		}
		_, wantT := dense.MaxWeight(nU, nV, edges)
		_, gotT := sparse.MaxWeightSparse(nU, nV, edges)
		if math.Abs(gotT-wantT) > 1e-9 {
			t.Fatalf("trial %d (nU=%d nV=%d): sparse total %v, hungarian %v", trial, nU, nV, gotT, wantT)
		}
	}
}

// TestSparseDeterministic: identical inputs yield identical matchings
// from a reused solver — the property the binding engine's
// reproducibility rests on.
func TestSparseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var edges []Edge
	for u := 0; u < 16; u++ {
		for k := 0; k < 12; k++ {
			edges = append(edges, Edge{u, rng.Intn(300), rng.Float64() * 5})
		}
	}
	s := NewSolver()
	first, firstT := s.MaxWeightSparse(16, 300, edges)
	for i := 0; i < 5; i++ {
		m, tot := s.MaxWeightSparse(16, 300, edges)
		if tot != firstT {
			t.Fatalf("run %d: total %v != %v", i, tot, firstT)
		}
		for u := range m {
			if m[u] != first[u] {
				t.Fatalf("run %d: matchU[%d] = %d != %d", i, u, m[u], first[u])
			}
		}
	}
}

// TestAutoSelection: small problems take the Hungarian path and stay
// bit-identical to it; a large sparse problem routes to SSP and still
// reaches the dense optimum.
func TestAutoSelection(t *testing.T) {
	s := NewSolver()
	small := []Edge{{0, 0, 1}, {0, 1, 5}, {1, 0, 4}, {1, 1, 2}}
	m, tot := s.MaxWeightAuto(2, 2, small)
	if tot != 9 || m[0] != 1 || m[1] != 0 {
		t.Fatalf("auto small: %v %v", m, tot)
	}
	rng := rand.New(rand.NewSource(3))
	var edges []Edge
	for u := 0; u < 8; u++ {
		for k := 0; k < 16; k++ {
			edges = append(edges, Edge{u, rng.Intn(2000), rng.Float64() * 3})
		}
	}
	_, wantT := NewSolver().MaxWeight(8, 2000, edges)
	_, gotT := s.MaxWeightAuto(8, 2000, edges)
	if math.Abs(gotT-wantT) > 1e-9 {
		t.Fatalf("auto large: total %v, want %v", gotT, wantT)
	}
}

// TestSolverShrinks: after one oversized solve, a sequence of small
// solves must release the O(n²) scratch instead of pinning it forever.
func TestSolverShrinks(t *testing.T) {
	s := NewSolver()
	var big []Edge
	for u := 0; u < 600; u++ {
		big = append(big, Edge{u, u, 1})
	}
	s.MaxWeight(600, 600, big)
	if cap(s.cost) < 600*600 {
		t.Fatalf("big solve should have grown cost to 600x600, got %d", cap(s.cost))
	}
	s.MaxWeight(4, 4, []Edge{{0, 1, 2}})
	if cap(s.cost) > shrinkFloorSq {
		t.Fatalf("cost scratch not released after small solve: cap %d", cap(s.cost))
	}
	if cap(s.u) > shrinkFloorVec {
		t.Fatalf("potential scratch not released after small solve: cap %d", cap(s.u))
	}
	// And the shrunk solver still solves correctly.
	m, tot := s.MaxWeight(2, 2, []Edge{{0, 0, 1}, {0, 1, 5}, {1, 0, 4}, {1, 1, 2}})
	if tot != 9 || m[0] != 1 || m[1] != 0 {
		t.Fatalf("post-shrink solve wrong: %v %v", m, tot)
	}
}

func BenchmarkSparseSolve32x10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	for u := 0; u < 32; u++ {
		for k := 0; k < 64; k++ {
			edges = append(edges, Edge{u, rng.Intn(10000), rng.Float64() * 10})
		}
	}
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MaxWeightSparse(32, 10000, edges)
	}
}

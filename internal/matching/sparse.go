package matching

// Sparse maximum-weight bipartite matching by successive shortest
// augmenting paths on the edge list itself — no padded n×n matrix. The
// binding engine's sparse candidate rounds have nU ~ the resource
// constraint, nV ~ the live node count, and only nU·k real edges, so
// the dense Hungarian solve (which pads to max(nU,nV)² cells and runs
// O(n³)) is the wrong shape; SSP runs in O(matches · E) with E the
// real edge count.
//
// Semantics match Solver.MaxWeight exactly: vertices may stay
// unmatched, only positive-weight edges are ever taken, and the
// returned total is the maximum achievable matching weight. Augmenting
// stops as soon as the shortest residual path cost turns non-negative,
// which is what makes this a maximum-weight matching rather than a
// min-cost maximum-cardinality assignment.
//
// The result is deterministic for a fixed edge slice: the SPFA relax
// order is fixed by edge insertion order and improvements are strict.
// Ties between equally-optimal matchings may resolve differently than
// the Hungarian solver's, so callers that need bit-identical results
// across solver choices must pin one solver (the binding engine only
// routes rounds to SSP in sparse mode, where no bit-identity is
// promised).

// sparseArc is one residual arc of the SSP network.
type sparseArc struct {
	to   int
	cap  int
	cost float64
}

// sparseState carries the reusable SSP scratch. It lives inside Solver
// so engine callers recycle one allocation set across merge rounds, and
// shrinks alongside the dense scratch (see Solver.shrink).
type sparseState struct {
	arcs  []sparseArc
	head  [][]int // adjacency: node -> arc indices
	dist  []float64
	inQ   []bool
	prevA []int
	queue []int
	vID   []int // compacted V index -> caller V index
	vComp []int // caller V index -> compacted index +1 (0 = absent)
}

// MaxWeightSparse computes the same maximum-total-weight matching as
// MaxWeight, via successive shortest paths over the sparse edge list.
// Only V vertices incident to an edge are materialized, so cost scales
// with len(edges), not nV.
func (s *Solver) MaxWeightSparse(nU, nV int, edges []Edge) (matchU []int, total float64) {
	matchU = make([]int, nU)
	for i := range matchU {
		matchU[i] = -1
	}
	if nU == 0 || nV == 0 || len(edges) == 0 {
		return matchU, 0
	}
	st := &s.sp
	// Same shrink policy as the dense scratch: release oversized SSP
	// buffers so one huge round doesn't pin memory for the session.
	if need := 2 * (nU + 2*len(edges) + 2); cap(st.arcs) > shrinkFloorVec && cap(st.arcs) > shrinkFactor*need {
		st.arcs, st.head, st.dist, st.inQ, st.prevA, st.queue = nil, nil, nil, nil, nil, nil
	}
	if cap(st.vComp) > shrinkFloorVec && cap(st.vComp) > shrinkFactor*nV {
		st.vComp, st.vID = nil, nil
	}
	// Compact the V side to the vertices that actually carry edges, and
	// record the weight scale for the relaxation epsilon below.
	if cap(st.vComp) < nV {
		st.vComp = make([]int, nV)
	}
	st.vComp = st.vComp[:nV]
	st.vID = st.vID[:0]
	maxW := 0.0
	for _, e := range edges {
		if e.U < 0 || e.U >= nU || e.V < 0 || e.V >= nV {
			panic("matching: edge endpoint out of range")
		}
		if e.W <= 0 {
			continue
		}
		if e.W > maxW {
			maxW = e.W
		}
		if st.vComp[e.V] == 0 {
			st.vID = append(st.vID, e.V)
			st.vComp[e.V] = len(st.vID)
		}
	}
	nVc := len(st.vID)
	if nVc == 0 { // no positive-weight edges
		return matchU, 0
	}
	// Node numbering: 0..nU-1 left, nU..nU+nVc-1 compacted right,
	// then source S and sink T.
	S := nU + nVc
	T := S + 1
	n := T + 1
	st.arcs = st.arcs[:0]
	if cap(st.head) < n {
		st.head = make([][]int, n)
	}
	st.head = st.head[:n]
	for i := range st.head {
		st.head[i] = st.head[i][:0]
	}
	addArc := func(from, to int, capacity int, cost float64) {
		st.head[from] = append(st.head[from], len(st.arcs))
		st.arcs = append(st.arcs, sparseArc{to: to, cap: capacity, cost: cost})
		st.head[to] = append(st.head[to], len(st.arcs))
		st.arcs = append(st.arcs, sparseArc{to: from, cap: 0, cost: -cost})
	}
	for u := 0; u < nU; u++ {
		addArc(S, u, 1, 0)
	}
	for _, e := range edges {
		if e.W <= 0 {
			continue
		}
		addArc(e.U, nU+st.vComp[e.V]-1, 1, -e.W)
	}
	for vc := 0; vc < nVc; vc++ {
		addArc(nU+vc, T, 1, 0)
	}
	if cap(st.dist) < n {
		st.dist = make([]float64, n)
		st.inQ = make([]bool, n)
		st.prevA = make([]int, n)
	}
	st.dist = st.dist[:n]
	st.inQ = st.inQ[:n]
	st.prevA = st.prevA[:n]

	const inf = 1e300
	// eps guards every relaxation and the augmentation cutoff against
	// floating-point residue. Binding rounds carry heavily tied weights
	// (many edges share one memoized Eq. 4 value), so the residual
	// network is full of cycles whose exact cost is zero but whose
	// float sum is ~±1e-16·maxW; accepting those as "improvements"
	// plants cycles in the predecessor pointers and the augmentation
	// walk below never reaches S. Requiring every improvement to beat
	// eps keeps the predecessor graph a tree: any prevA cycle would
	// need a residual cycle costing < -(cycle length)·eps, which
	// successive shortest-path augmentation never creates.
	eps := maxW * 1e-12
	for {
		// SPFA shortest path S -> T on the residual network. Costs are
		// negative on unused real edges, so Bellman-Ford-style
		// relaxation (not Dijkstra) is required.
		for i := 0; i < n; i++ {
			st.dist[i] = inf
			st.inQ[i] = false
			st.prevA[i] = -1
		}
		st.dist[S] = 0
		st.queue = append(st.queue[:0], S)
		st.inQ[S] = true
		for len(st.queue) > 0 {
			x := st.queue[0]
			st.queue = st.queue[1:]
			st.inQ[x] = false
			dx := st.dist[x]
			for _, ai := range st.head[x] {
				a := &st.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				if nd := dx + a.cost; nd < st.dist[a.to]-eps {
					st.dist[a.to] = nd
					st.prevA[a.to] = ai
					if !st.inQ[a.to] {
						st.queue = append(st.queue, a.to)
						st.inQ[a.to] = true
					}
				}
			}
		}
		// Augment only while it increases total weight: a path with
		// non-negative residual cost would trade matched weight away
		// for cardinality.
		if st.prevA[T] == -1 || st.dist[T] >= -eps {
			break
		}
		for x, steps := T, 0; x != S; steps++ {
			if steps > n {
				panic("matching: augmenting path is cyclic")
			}
			ai := st.prevA[x]
			st.arcs[ai].cap--
			st.arcs[ai^1].cap++
			x = st.arcs[ai^1].to
		}
		total += -st.dist[T]
	}
	// Read the matching off the saturated U->V arcs. Forward arcs sit at
	// even indices; a used U->V arc has residual cap 0 and its reverse 1.
	for u := 0; u < nU; u++ {
		for _, ai := range st.head[u] {
			if ai%2 != 0 {
				continue
			}
			a := st.arcs[ai]
			if a.to >= nU && a.to < S && a.cap == 0 && st.arcs[ai^1].cap == 1 {
				matchU[u] = st.vID[a.to-nU]
				break
			}
		}
	}
	for _, v := range st.vID {
		st.vComp[v] = 0
	}
	return matchU, total
}

// sparseAutoMinN and sparseAutoDensity gate the automatic solver
// choice: below this problem size the padded dense Hungarian solve is
// cheap and (being the historical solver) keeps results bit-identical
// to every golden; above it, rounds whose real-edge density is low run
// the SSP path instead.
const (
	sparseAutoMinN    = 512
	sparseAutoDensity = 0.10
)

// MaxWeightAuto picks the solver by problem shape: dense Hungarian for
// small or dense rounds (bit-identical to the historical behaviour),
// SSP for large sparse ones. The crossover is deliberately
// conservative — Hungarian pads to max(nU,nV)², so a 10k-node round
// with 2k candidate edges would touch 10⁸ cells for 2·10³ real ones.
func (s *Solver) MaxWeightAuto(nU, nV int, edges []Edge) (matchU []int, total float64) {
	n := nU
	if nV > n {
		n = nV
	}
	if n >= sparseAutoMinN && float64(len(edges)) < sparseAutoDensity*float64(n)*float64(n) {
		return s.MaxWeightSparse(nU, nV, edges)
	}
	return s.MaxWeight(nU, nV, edges)
}

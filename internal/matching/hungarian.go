// Package matching provides the exact combinatorial solvers both binders
// are built on: maximum-weight bipartite matching (the core of HLPower's
// iterative binding, Alg. 1 line 14, and of Huang et al.'s register
// binding [11]) and min-cost max-flow (the network-flow simultaneous
// binding of the LOPASS baseline [2]).
package matching

import (
	"math"
)

// Edge is a weighted edge between left vertex U and right vertex V.
type Edge struct {
	U, V int
	W    float64
}

// MaxWeight computes a maximum-total-weight matching of a bipartite
// graph with nU left and nV right vertices. Vertices may stay unmatched
// (this is not an assignment problem: only edges with positive
// contribution are taken). It returns matchU (for each left vertex the
// matched right vertex or -1) and the total weight.
//
// Weights must be finite; non-positive-weight edges are never selected.
// Runs the O(n^3) Hungarian algorithm on a padded square matrix.
//
// Each call allocates fresh working matrices; iterative callers (the
// binding engine solves one matching per merge round) should hold a
// Solver and reuse its buffers across solves.
func MaxWeight(nU, nV int, edges []Edge) (matchU []int, total float64) {
	return NewSolver().MaxWeight(nU, nV, edges)
}

// Solver runs maximum-weight bipartite matchings with reusable working
// storage: the padded square cost matrix, the real-edge mask, and the
// Hungarian potential/augmentation arrays are grown once to the largest
// problem seen and recycled across solves. A Solver is not safe for
// concurrent use; results are identical to the package-level MaxWeight
// for every solve.
type Solver struct {
	n        int       // current padded dimension
	cost     []float64 // n*n row-major: negative weight for minimization
	real     []bool    // n*n row-major: true where a real edge exists
	u, v     []float64 // Hungarian potentials (1-based, n+1)
	p, way   []int     // column assignment and augmenting-path links
	minv     []float64
	used     []bool
	assigned []int       // scratch for the row -> column result
	sp       sparseState // SSP scratch (MaxWeightSparse)
}

// NewSolver returns an empty solver; buffers grow on first use.
func NewSolver() *Solver {
	return &Solver{}
}

// Scratch shrinking: the working arrays historically grew to the
// largest n ever seen and were never released, so one oversized solve
// pinned O(n²) memory for the rest of a long-lived process (hlpowerd
// holds engine solvers for hours). grow now reallocates at the needed
// size whenever held capacity exceeds shrinkFactor× the need and the
// excess is big enough to matter.
const (
	shrinkFactor   = 4
	shrinkFloorSq  = 1 << 16 // ~64k float64 matrix cells (512 KiB)
	shrinkFloorVec = 1 << 12 // potential/augmentation vectors
)

// grow sizes (and clears) the working storage for an n x n problem,
// releasing oversized scratch past the shrink threshold.
func (s *Solver) grow(n int) {
	s.n = n
	if cap(s.cost) > shrinkFloorSq && cap(s.cost) > shrinkFactor*n*n {
		s.cost = nil
		s.real = nil
	}
	if cap(s.u) > shrinkFloorVec && cap(s.u) > shrinkFactor*(n+1) {
		s.u, s.v, s.p, s.way, s.minv, s.used, s.assigned = nil, nil, nil, nil, nil, nil, nil
	}
	if cap(s.cost) < n*n {
		s.cost = make([]float64, n*n)
		s.real = make([]bool, n*n)
	}
	s.cost = s.cost[:n*n]
	s.real = s.real[:n*n]
	for i := range s.cost {
		s.cost[i] = 0
		s.real[i] = false
	}
	if cap(s.u) < n+1 {
		s.u = make([]float64, n+1)
		s.v = make([]float64, n+1)
		s.p = make([]int, n+1)
		s.way = make([]int, n+1)
		s.minv = make([]float64, n+1)
		s.used = make([]bool, n+1)
		s.assigned = make([]int, n)
	}
	s.u = s.u[:n+1]
	s.v = s.v[:n+1]
	s.p = s.p[:n+1]
	s.way = s.way[:n+1]
	s.minv = s.minv[:n+1]
	s.used = s.used[:n+1]
	s.assigned = s.assigned[:n]
	for j := 0; j <= n; j++ {
		s.u[j], s.v[j] = 0, 0
		s.p[j], s.way[j] = 0, 0
	}
}

// MaxWeight solves one matching with the solver's buffers. The returned
// matchU slice is freshly allocated (safe to retain); everything else is
// recycled on the next call.
func (s *Solver) MaxWeight(nU, nV int, edges []Edge) (matchU []int, total float64) {
	matchU = make([]int, nU)
	for i := range matchU {
		matchU[i] = -1
	}
	if nU == 0 || nV == 0 || len(edges) == 0 {
		return matchU, 0
	}
	n := nU
	if nV > n {
		n = nV
	}
	s.grow(n)
	// cost[i*n+j]: negative weight for minimization; 0 for dummy pairs so
	// "unmatched" is free.
	for _, e := range edges {
		if e.U < 0 || e.U >= nU || e.V < 0 || e.V >= nV {
			panic("matching: edge endpoint out of range")
		}
		if e.W > 0 && -e.W < s.cost[e.U*n+e.V] {
			s.cost[e.U*n+e.V] = -e.W
			s.real[e.U*n+e.V] = true
		}
	}

	s.solveAssignment()
	for i := 0; i < nU; i++ {
		j := s.assigned[i]
		if j >= 0 && j < nV && s.real[i*n+j] {
			matchU[i] = j
			total += -s.cost[i*n+j]
		}
	}
	return matchU, total
}

// solveAssignment solves the square min-cost assignment problem with the
// standard potentials-based Hungarian algorithm (O(n^3)), leaving each
// row's assigned column in s.assigned.
func (s *Solver) solveAssignment() {
	n := s.n
	const inf = math.MaxFloat64
	a, u, v, p, way := s.cost, s.u, s.v, s.p, s.way
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv, used := s.minv, s.used
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			row := a[(i0-1)*n:]
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := row[j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	for i := range s.assigned {
		s.assigned[i] = 0
	}
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			s.assigned[p[j]-1] = j - 1
		}
	}
}

// Package matching provides the exact combinatorial solvers both binders
// are built on: maximum-weight bipartite matching (the core of HLPower's
// iterative binding, Alg. 1 line 14, and of Huang et al.'s register
// binding [11]) and min-cost max-flow (the network-flow simultaneous
// binding of the LOPASS baseline [2]).
package matching

import (
	"math"
)

// Edge is a weighted edge between left vertex U and right vertex V.
type Edge struct {
	U, V int
	W    float64
}

// MaxWeight computes a maximum-total-weight matching of a bipartite
// graph with nU left and nV right vertices. Vertices may stay unmatched
// (this is not an assignment problem: only edges with positive
// contribution are taken). It returns matchU (for each left vertex the
// matched right vertex or -1) and the total weight.
//
// Weights must be finite; non-positive-weight edges are never selected.
// Runs the O(n^3) Hungarian algorithm on a padded square matrix.
func MaxWeight(nU, nV int, edges []Edge) (matchU []int, total float64) {
	matchU = make([]int, nU)
	for i := range matchU {
		matchU[i] = -1
	}
	if nU == 0 || nV == 0 || len(edges) == 0 {
		return matchU, 0
	}
	n := nU
	if nV > n {
		n = nV
	}
	// cost[i][j]: negative weight for minimization; 0 for dummy pairs so
	// "unmatched" is free.
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	real := make([][]bool, n)
	for i := range real {
		real[i] = make([]bool, n)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= nU || e.V < 0 || e.V >= nV {
			panic("matching: edge endpoint out of range")
		}
		if e.W > 0 && -e.W < cost[e.U][e.V] {
			cost[e.U][e.V] = -e.W
			real[e.U][e.V] = true
		}
	}

	assignment := solveAssignment(cost)
	for i := 0; i < nU; i++ {
		j := assignment[i]
		if j >= 0 && j < nV && real[i][j] {
			matchU[i] = j
			total += -cost[i][j]
		}
	}
	return matchU, total
}

// solveAssignment solves the square min-cost assignment problem with the
// standard potentials-based Hungarian algorithm (O(n^3)). Returns for
// each row its assigned column.
func solveAssignment(a [][]float64) []int {
	n := len(a)
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j]: row assigned to column j (1-based rows)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	res := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			res[p[j]-1] = j - 1
		}
	}
	return res
}

package workload

import (
	"testing"

	"repro/internal/cdfg"
)

// TestScaleFamilies checks every scale-tier profile builds a valid
// CDFG of the advertised size class and schedules under its RC.
func TestScaleFamilies(t *testing.T) {
	// Expected operation counts per profile (exact — generators are
	// deterministic).
	wantOps := map[string]int{
		"dsp-2k":   2160,
		"mm-4k":    4225,
		"fft-4k":   4032,
		"ctrl-2k":  1920,
		"ctrl-10k": 10032,
	}
	for _, p := range ScaleBenchmarks {
		g := p.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", p.Name, err)
		}
		st := g.Stats()
		ops := st.Adds + st.Mults
		if want := wantOps[p.Name]; ops != want {
			t.Errorf("%s: %d ops (%d adds, %d mults), want %d",
				p.Name, ops, st.Adds, st.Mults, want)
		}
		if _, err := cdfg.ListSchedule(g, p.RC); err != nil {
			t.Fatalf("%s: unschedulable under rc{add:%d mult:%d}: %v",
				p.Name, p.RC.Add, p.RC.Mult, err)
		}
	}
}

// TestScaleByName covers the registry lookup.
func TestScaleByName(t *testing.T) {
	if _, ok := ScaleByName("ctrl-10k"); !ok {
		t.Fatal("ctrl-10k missing from scale registry")
	}
	if _, ok := ScaleByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

// TestScaleGraphsPinned guards the scale tier the same way
// TestBenchmarkGraphsPinned guards the seed benchmarks: the generators
// must keep producing byte-identical graphs, or the recorded scale
// benchmarks (BENCH_9.json) silently describe different inputs.
func TestScaleGraphsPinned(t *testing.T) {
	pinned := map[string]uint64{
		"dsp-2k":   0x2bfe91d1cd8abace,
		"mm-4k":    0xc06352b5293ab932,
		"fft-4k":   0x5a3221d947ea93e0,
		"ctrl-2k":  0x4cbb73b61824ac30,
		"ctrl-10k": 0xdd971caf82719948,
	}
	for _, p := range ScaleBenchmarks {
		got := graphHash(p.Build())
		if got != graphHash(p.Build()) {
			t.Fatalf("%s: generator not deterministic within a process", p.Name)
		}
		if want := pinned[p.Name]; got != want {
			t.Errorf("%s: graph fingerprint %#x, want %#x — the generator changed; "+
				"regenerate the scale benchmark record and update this pin", p.Name, got, want)
		}
	}
}

// Package workload provides the benchmark CDFGs of the paper's
// evaluation (§6.1, Table 1): several DCT algorithms (pr, wang, dir) and
// DSP programs (chem, steam, mcm, honda). The original CDFG files are
// not distributed with the paper, so each benchmark is regenerated as a
// seeded synthetic data-flow graph matched to the published profile —
// identical primary input/output counts and add/mult operation mix (the
// paper's edge totals additionally count structural edges that binary-
// operation dataflow graphs do not have). Resource constraints
// come from Table 2. The package also provides hand-written real kernels
// (an 8-point DCT and FIR filters) used by the examples.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cdfg"
)

// Profile describes one benchmark: the Table 1 shape and the Table 2
// resource constraint.
type Profile struct {
	Name     string
	PIs, POs int
	Adds     int
	Mults    int
	RC       cdfg.ResourceConstraint
	// Cycle is the paper's Table 2 schedule length; benchmark schedules
	// target it (clamped below by the generated graph's critical path).
	Cycle      int
	Seed       int64
	PaperEdges int // the edge count Table 1 reports (informational)
}

// Benchmarks lists the seven paper benchmarks with their published
// profiles (Table 1) and resource constraints (Table 2).
var Benchmarks = []Profile{
	{Name: "chem", PIs: 20, POs: 10, Adds: 171, Mults: 176, RC: cdfg.ResourceConstraint{Add: 9, Mult: 7}, Cycle: 39, Seed: 101, PaperEdges: 731},
	{Name: "dir", PIs: 8, POs: 8, Adds: 84, Mults: 64, RC: cdfg.ResourceConstraint{Add: 3, Mult: 2}, Cycle: 41, Seed: 102, PaperEdges: 314},
	{Name: "honda", PIs: 9, POs: 2, Adds: 45, Mults: 52, RC: cdfg.ResourceConstraint{Add: 4, Mult: 4}, Cycle: 18, Seed: 103, PaperEdges: 214},
	{Name: "mcm", PIs: 8, POs: 8, Adds: 64, Mults: 30, RC: cdfg.ResourceConstraint{Add: 4, Mult: 2}, Cycle: 27, Seed: 104, PaperEdges: 252},
	{Name: "pr", PIs: 8, POs: 8, Adds: 26, Mults: 16, RC: cdfg.ResourceConstraint{Add: 2, Mult: 2}, Cycle: 16, Seed: 105, PaperEdges: 134},
	{Name: "steam", PIs: 5, POs: 5, Adds: 105, Mults: 115, RC: cdfg.ResourceConstraint{Add: 7, Mult: 6}, Cycle: 28, Seed: 106, PaperEdges: 472},
	{Name: "wang", PIs: 8, POs: 8, Adds: 26, Mults: 22, RC: cdfg.ResourceConstraint{Add: 2, Mult: 2}, Cycle: 18, Seed: 107, PaperEdges: 134},
}

// ByName returns the named benchmark profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Benchmarks {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate builds the benchmark CDFG for a profile. Generation is
// deterministic in the profile's seed: operations draw arguments from a
// queue of not-yet-consumed values (keeping the dangling-value count
// near the output count, so the graph converges onto its primary
// outputs) mixed with random earlier values (creating the value reuse
// that makes binding and register sharing non-trivial).
func Generate(p Profile) *cdfg.Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	g := cdfg.NewGraph(p.Name)
	for i := 0; i < p.PIs; i++ {
		g.AddInput(fmt.Sprintf("in%d", i))
	}

	// Shuffled kind sequence with the exact add/mult mix.
	kinds := make([]cdfg.NodeKind, 0, p.Adds+p.Mults)
	for i := 0; i < p.Adds; i++ {
		k := cdfg.KindAdd
		// A realistic share of the "add" class are subtractions.
		if rng.Intn(4) == 0 {
			k = cdfg.KindSub
		}
		kinds = append(kinds, k)
	}
	for i := 0; i < p.Mults; i++ {
		kinds = append(kinds, cdfg.KindMult)
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	// unconsumed tracks op values with no consumer yet.
	var unconsumed []int
	takeUnconsumed := func() int {
		i := rng.Intn(len(unconsumed))
		v := unconsumed[i]
		unconsumed[i] = unconsumed[len(unconsumed)-1]
		unconsumed = unconsumed[:len(unconsumed)-1]
		return v
	}
	pickArg := func(force bool) int {
		// Drain the unconsumed queue whenever it exceeds the output
		// budget; otherwise reuse an earlier value. Reuse is structured
		// the way DSP/DCT kernels are: primary inputs (signal samples
		// and coefficients) fan out to many operations, while op values
		// see occasional reuse with recency bias. This sharing is what
		// gives binding algorithms room to keep multiplexers small.
		if len(unconsumed) > 0 && (force || (len(unconsumed) > p.POs && rng.Intn(4) != 0)) {
			return takeUnconsumed()
		}
		if rng.Intn(2) == 0 {
			return rng.Intn(p.PIs) // broadcast-style PI reuse
		}
		n := len(g.Nodes)
		// Triangular bias toward recent nodes.
		a, b := rng.Intn(n), rng.Intn(n)
		if a < b {
			a = b
		}
		return a
	}
	consume := func(v int) {
		for i, u := range unconsumed {
			if u == v {
				unconsumed[i] = unconsumed[len(unconsumed)-1]
				unconsumed = unconsumed[:len(unconsumed)-1]
				return
			}
		}
	}

	for i, k := range kinds {
		// Toward the end, force queue drainage so the dangling-value
		// count lands exactly on the output budget.
		remaining := len(kinds) - i
		force := len(unconsumed)-p.POs >= remaining-1
		a := pickArg(force)
		b := pickArg(force)
		consume(a)
		consume(b)
		id := g.AddOp(k, fmt.Sprintf("op%d", i), a, b)
		unconsumed = append(unconsumed, id)
	}

	// Outputs: all remaining sinks, topped up with random op values if
	// the profile wants more outputs than sinks remain.
	outs := map[int]bool{}
	for _, v := range unconsumed {
		if len(outs) < p.POs {
			outs[v] = true
		}
	}
	ops := g.Ops()
	for len(outs) < p.POs && len(outs) < len(ops) {
		outs[ops[rng.Intn(len(ops))]] = true
	}
	// Any excess sinks beyond the PO budget must still be outputs to
	// keep the graph dead-code free.
	for _, v := range unconsumed {
		outs[v] = true
	}
	for _, id := range ops {
		if outs[id] {
			g.MarkOutput(id)
		}
	}
	return g
}

// GenerateAll returns every benchmark graph keyed by name.
func GenerateAll() map[string]*cdfg.Graph {
	out := make(map[string]*cdfg.Graph, len(Benchmarks))
	for _, p := range Benchmarks {
		out[p.Name] = Generate(p)
	}
	return out
}

// Schedule produces the benchmark's scheduled CDFG: balanced (force-
// directed style) scheduling to the paper's Table 2 cycle count, clamped
// below by the generated graph's critical path.
func Schedule(p Profile, g *cdfg.Graph) (*cdfg.Schedule, error) {
	return cdfg.BalancedSchedule(g, p.RC, p.Cycle)
}

package workload

import (
	"hash/fnv"
	"testing"

	"repro/internal/cdfg"
)

// graphHash fingerprints a CDFG's exact structure.
func graphHash(g *cdfg.Graph) uint64 {
	h := fnv.New64a()
	write := func(v int) {
		var b [4]byte
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		h.Write(b[:])
	}
	for _, n := range g.Nodes {
		write(int(n.Kind))
		for _, a := range n.Args {
			write(a)
		}
	}
	for _, o := range g.Outputs {
		write(o)
	}
	return h.Sum64()
}

// TestBenchmarkGraphsPinned guards the recorded EXPERIMENTS.md numbers:
// the seeded generator must keep producing byte-identical benchmark
// graphs. If a deliberate generator change breaks this test, regenerate
// the experiment record and update these fingerprints.
func TestBenchmarkGraphsPinned(t *testing.T) {
	golden := map[string]uint64{}
	for _, p := range Benchmarks {
		golden[p.Name] = graphHash(Generate(p))
	}
	// Self-consistency (same run).
	for _, p := range Benchmarks {
		if graphHash(Generate(p)) != golden[p.Name] {
			t.Fatalf("%s: generator not deterministic within a process", p.Name)
		}
	}
	// Cross-run stability: pin the actual values.
	pinned := map[string]uint64{
		"chem":  0x2af3c8bfb04b9c12,
		"dir":   0xeb21a87ef7d9fbbb,
		"honda": 0x1c3fb3de3145f499,
		"mcm":   0x9c0cb40cbe36de1d,
		"pr":    0xd60c6fd4c17a80d2,
		"steam": 0x88f1a1a5a9f1df4c,
		"wang":  0x3de6882a054927db,
	}
	for name, want := range pinned {
		if got := golden[name]; got != want {
			t.Errorf("%s: graph fingerprint %#x, want %#x — the generator changed; "+
				"regenerate EXPERIMENTS.md and update this pin", name, got, want)
		}
	}
}

package workload

import (
	"fmt"

	"repro/internal/cdfg"
)

// DCT8 builds a real 8-point one-dimensional DCT kernel as a CDFG in the
// dense matrix-vector form: y[k] = sum_n c[k][n] * x[n]. Constant
// coefficients arrive as primary inputs (the binder sees the same
// add/mult structure either way). 64 multiplications + 56 additions —
// the same workload family as the paper's pr/wang/dir benchmarks.
func DCT8() *cdfg.Graph {
	g := cdfg.NewGraph("dct8")
	x := make([]int, 8)
	for i := range x {
		x[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	c := make([][]int, 8)
	for k := range c {
		c[k] = make([]int, 8)
		for n := range c[k] {
			c[k][n] = g.AddInput(fmt.Sprintf("c%d_%d", k, n))
		}
	}
	for k := 0; k < 8; k++ {
		acc := -1
		for n := 0; n < 8; n++ {
			p := g.AddOp(cdfg.KindMult, fmt.Sprintf("m%d_%d", k, n), c[k][n], x[n])
			if acc < 0 {
				acc = p
			} else {
				acc = g.AddOp(cdfg.KindAdd, fmt.Sprintf("a%d_%d", k, n), acc, p)
			}
		}
		g.MarkOutput(acc)
	}
	return g
}

// FIR builds an n-tap finite-impulse-response filter kernel:
// y = sum_i h[i] * x[i] with a balanced adder tree (tree reduction keeps
// the critical path logarithmic — a scheduling-friendly shape).
func FIR(taps int) *cdfg.Graph {
	if taps < 1 {
		panic("workload: FIR needs at least one tap")
	}
	g := cdfg.NewGraph(fmt.Sprintf("fir%d", taps))
	prods := make([]int, taps)
	for i := 0; i < taps; i++ {
		x := g.AddInput(fmt.Sprintf("x%d", i))
		h := g.AddInput(fmt.Sprintf("h%d", i))
		prods[i] = g.AddOp(cdfg.KindMult, fmt.Sprintf("p%d", i), h, x)
	}
	level := 0
	for len(prods) > 1 {
		var next []int
		for i := 0; i < len(prods); i += 2 {
			if i+1 == len(prods) {
				next = append(next, prods[i])
				continue
			}
			next = append(next, g.AddOp(cdfg.KindAdd, fmt.Sprintf("s%d_%d", level, i/2), prods[i], prods[i+1]))
		}
		prods = next
		level++
	}
	g.MarkOutput(prods[0])
	return g
}

// Butterfly builds a radix-2 FFT-like butterfly stage cascade over 2^n
// points with add/sub pairs and twiddle multiplies — a third realistic
// kernel shape (heavily subtract-laden, unlike DCT8/FIR).
func Butterfly(logN int) *cdfg.Graph {
	if logN < 1 || logN > 5 {
		panic("workload: Butterfly wants 1 <= logN <= 5")
	}
	n := 1 << logN
	g := cdfg.NewGraph(fmt.Sprintf("bfly%d", n))
	vals := make([]int, n)
	for i := range vals {
		vals[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	tw := make([]int, logN)
	for s := range tw {
		tw[s] = g.AddInput(fmt.Sprintf("w%d", s))
	}
	for s := 0; s < logN; s++ {
		half := n >> (s + 1)
		next := make([]int, n)
		for b := 0; b < (1 << s); b++ {
			base := b * 2 * half
			for i := 0; i < half; i++ {
				hi := vals[base+i]
				lo := g.AddOp(cdfg.KindMult, fmt.Sprintf("t%d_%d_%d", s, b, i), vals[base+half+i], tw[s])
				next[base+i] = g.AddOp(cdfg.KindAdd, fmt.Sprintf("u%d_%d_%d", s, b, i), hi, lo)
				next[base+half+i] = g.AddOp(cdfg.KindSub, fmt.Sprintf("v%d_%d_%d", s, b, i), hi, lo)
			}
		}
		vals = next
	}
	for _, v := range vals {
		g.MarkOutput(v)
	}
	return g
}

// IIR builds a cascade of direct-form-I biquad sections:
// y = b0*x + b1*xd1 + b2*xd2 - a1*yd1 - a2*yd2, with the delayed taps
// supplied as primary inputs (the CDFG captures one evaluation). Heavy
// in subtractions and accumulation chains — the adder-class stress
// kernel.
func IIR(sections int) *cdfg.Graph {
	if sections < 1 {
		panic("workload: IIR needs at least one section")
	}
	g := cdfg.NewGraph(fmt.Sprintf("iir%d", sections))
	x := g.AddInput("x")
	for s := 0; s < sections; s++ {
		coef := func(name string) int { return g.AddInput(fmt.Sprintf("%s_%d", name, s)) }
		b0, b1, b2 := coef("b0"), coef("b1"), coef("b2")
		a1, a2 := coef("a1"), coef("a2")
		xd1, xd2 := coef("xd1"), coef("xd2")
		yd1, yd2 := coef("yd1"), coef("yd2")
		t0 := g.AddOp(cdfg.KindMult, fmt.Sprintf("s%d_b0x", s), b0, x)
		t1 := g.AddOp(cdfg.KindMult, fmt.Sprintf("s%d_b1x", s), b1, xd1)
		t2 := g.AddOp(cdfg.KindMult, fmt.Sprintf("s%d_b2x", s), b2, xd2)
		t3 := g.AddOp(cdfg.KindMult, fmt.Sprintf("s%d_a1y", s), a1, yd1)
		t4 := g.AddOp(cdfg.KindMult, fmt.Sprintf("s%d_a2y", s), a2, yd2)
		acc := g.AddOp(cdfg.KindAdd, fmt.Sprintf("s%d_acc0", s), t0, t1)
		acc = g.AddOp(cdfg.KindAdd, fmt.Sprintf("s%d_acc1", s), acc, t2)
		acc = g.AddOp(cdfg.KindSub, fmt.Sprintf("s%d_acc2", s), acc, t3)
		acc = g.AddOp(cdfg.KindSub, fmt.Sprintf("s%d_acc3", s), acc, t4)
		x = acc // cascade into the next section
	}
	g.MarkOutput(x)
	return g
}

// MatMul builds an n-by-n matrix-vector product y = A*x — the densest
// regular mult/add mix, with every x element fanning out n ways.
func MatMul(n int) *cdfg.Graph {
	if n < 1 {
		panic("workload: MatMul needs n >= 1")
	}
	g := cdfg.NewGraph(fmt.Sprintf("matmul%d", n))
	x := make([]int, n)
	for i := range x {
		x[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	for r := 0; r < n; r++ {
		acc := -1
		for c := 0; c < n; c++ {
			a := g.AddInput(fmt.Sprintf("a%d_%d", r, c))
			p := g.AddOp(cdfg.KindMult, fmt.Sprintf("m%d_%d", r, c), a, x[c])
			if acc < 0 {
				acc = p
			} else {
				acc = g.AddOp(cdfg.KindAdd, fmt.Sprintf("s%d_%d", r, c), acc, p)
			}
		}
		g.MarkOutput(acc)
	}
	return g
}

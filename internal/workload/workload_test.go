package workload

import (
	"testing"

	"repro/internal/cdfg"
)

func TestProfilesMatchTable1(t *testing.T) {
	for _, p := range Benchmarks {
		g := Generate(p)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		st := g.Stats()
		if st.PIs != p.PIs {
			t.Fatalf("%s: PIs = %d, want %d", p.Name, st.PIs, p.PIs)
		}
		if st.POs != p.POs {
			t.Fatalf("%s: POs = %d, want %d", p.Name, st.POs, p.POs)
		}
		if st.Adds != p.Adds {
			t.Fatalf("%s: Adds = %d, want %d", p.Name, st.Adds, p.Adds)
		}
		if st.Mults != p.Mults {
			t.Fatalf("%s: Mults = %d, want %d", p.Name, st.Mults, p.Mults)
		}
		// Edge counts land near the paper's (binary ops: 2 per op + POs).
		want := 2*(p.Adds+p.Mults) + p.POs
		if st.Edges != want {
			t.Fatalf("%s: Edges = %d, want %d", p.Name, st.Edges, want)
		}
		// The paper's Table 1 edge counts are higher than 2*ops + POs
		// (they include I/O or register-transfer edges binary-op dataflow
		// graphs do not have), so PaperEdges stays informational only.
		if st.Edges > p.PaperEdges {
			t.Fatalf("%s: edge count %d exceeds the paper's %d", p.Name, st.Edges, p.PaperEdges)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("pr")
	g1 := Generate(p)
	g2 := Generate(p)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatal("node counts differ")
	}
	for i := range g1.Nodes {
		a, b := g1.Nodes[i], g2.Nodes[i]
		if a.Kind != b.Kind || len(a.Args) != len(b.Args) {
			t.Fatal("generation not deterministic")
		}
		for j := range a.Args {
			if a.Args[j] != b.Args[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestBenchmarksSchedulable(t *testing.T) {
	for _, p := range Benchmarks {
		g := Generate(p)
		s, err := cdfg.ListSchedule(g, p.RC)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := cdfg.ValidateSchedule(g, s, p.RC); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		t.Logf("%s: %d csteps under rc={add:%d mult:%d}", p.Name, s.Len, p.RC.Add, p.RC.Mult)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("chem"); !ok {
		t.Fatal("chem missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unexpected benchmark")
	}
}

func TestGenerateAll(t *testing.T) {
	all := GenerateAll()
	if len(all) != len(Benchmarks) {
		t.Fatalf("GenerateAll returned %d graphs", len(all))
	}
}

func TestDCT8Shape(t *testing.T) {
	g := DCT8()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Mults != 64 || st.Adds != 56 || st.POs != 8 || st.PIs != 72 {
		t.Fatalf("dct8 stats: %+v", st)
	}
}

func TestFIRShape(t *testing.T) {
	for _, taps := range []int{1, 2, 7, 16} {
		g := FIR(taps)
		if err := g.Validate(); err != nil {
			t.Fatalf("fir%d: %v", taps, err)
		}
		st := g.Stats()
		if st.Mults != taps || st.Adds != taps-1 {
			t.Fatalf("fir%d stats: %+v", taps, st)
		}
	}
}

func TestButterflyShape(t *testing.T) {
	g := Butterfly(3) // 8-point
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	// 3 stages x 4 butterflies x (1 mult + 1 add + 1 sub).
	if st.Mults != 12 || st.Adds != 24 {
		t.Fatalf("butterfly stats: %+v", st)
	}
	if st.POs != 8 {
		t.Fatalf("butterfly POs = %d", st.POs)
	}
	// Subtractions present (non-commutative port handling downstream).
	subs := 0
	for _, n := range g.Nodes {
		if n.Kind == cdfg.KindSub {
			subs++
		}
	}
	if subs != 12 {
		t.Fatalf("butterfly subs = %d, want 12", subs)
	}
}

func TestKernelsSchedulable(t *testing.T) {
	for _, g := range []*cdfg.Graph{DCT8(), FIR(8), Butterfly(3)} {
		rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
		s, err := cdfg.ListSchedule(g, rc)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := cdfg.ValidateSchedule(g, s, rc); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func TestIIRShape(t *testing.T) {
	g := IIR(3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	// Per section: 5 mults, 2 adds, 2 subs.
	if st.Mults != 15 || st.Adds != 12 {
		t.Fatalf("iir3 stats: %+v", st)
	}
	subs := 0
	for _, n := range g.Nodes {
		if n.Kind == cdfg.KindSub {
			subs++
		}
	}
	if subs != 6 {
		t.Fatalf("iir3 subs = %d, want 6", subs)
	}
}

func TestMatMulShape(t *testing.T) {
	g := MatMul(3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Mults != 9 || st.Adds != 6 || st.POs != 3 {
		t.Fatalf("matmul3 stats: %+v", st)
	}
}

func TestNewKernelsSchedulable(t *testing.T) {
	for _, g := range []*cdfg.Graph{IIR(2), MatMul(3)} {
		rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
		s, err := cdfg.ListSchedule(g, rc)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := cdfg.ValidateSchedule(g, s, rc); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

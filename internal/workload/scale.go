package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cdfg"
)

// Scale-tier workload families: structured 2k-10k+ operation CDFGs that
// stress the binder at the sizes the seed benchmarks (≤ ~350 ops) never
// reach. Three shapes matter at scale, and each family isolates one:
//
//   - DeepDSP: long MAC pipelines with periodic cross-lane coupling —
//     the deep dataflow shape of real DSP cascades (FIR chains, polyphase
//     filters), where lifetime pressure and register fan-in grow with
//     depth.
//   - BlockedMatMul / FFTCascade: blocked matrix and butterfly kernels —
//     the wide, regular, high-fanout shape of blocked linear algebra.
//   - ControlHeavy: multi-basic-block control flow with mux-heavy joins.
//     The CDFG model is pure dataflow (Input/Add/Sub/Mult only), so
//     branch joins are lowered to predicated selects — thenV*p + elseV*q
//     with per-block predicate inputs — exactly the if-conversion a
//     front end performs before binding. Every join lane funnels two arm
//     values through shared predicate registers, which is what makes the
//     family multiplexer-heavy: the structure the paper's glitch model
//     penalizes hardest.
//
// All generators are deterministic (seeded where randomized), so the
// scale tier is fingerprint-pinned alongside the seed benchmarks.

// DeepDSP builds `lanes` parallel multiply-accumulate pipelines of
// `stages` stages (y = y*c + x per stage) with a cross-lane coupling
// add every fourth stage. Roughly lanes*stages*2 operations.
func DeepDSP(lanes, stages int) *cdfg.Graph {
	if lanes < 1 || stages < 1 {
		panic("workload: DeepDSP wants lanes >= 1, stages >= 1")
	}
	g := cdfg.NewGraph(fmt.Sprintf("deepdsp%dx%d", lanes, stages))
	acc := make([]int, lanes)
	for i := range acc {
		acc[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	for s := 0; s < stages; s++ {
		c := g.AddInput(fmt.Sprintf("c%d", s))
		for i := 0; i < lanes; i++ {
			m := g.AddOp(cdfg.KindMult, fmt.Sprintf("m%d_%d", s, i), acc[i], c)
			acc[i] = g.AddOp(cdfg.KindAdd, fmt.Sprintf("a%d_%d", s, i), m, g.AddInput(fmt.Sprintf("in%d_%d", s, i)))
		}
		if s%4 == 3 {
			for i := 0; i < lanes; i++ {
				acc[i] = g.AddOp(cdfg.KindAdd, fmt.Sprintf("x%d_%d", s, i), acc[i], acc[(i+1)%lanes])
			}
		}
	}
	for _, v := range acc {
		g.MarkOutput(v)
	}
	return g
}

// BlockedMatMul builds C = A*B for n×n matrices with blk×blk tiling:
// per output element the products accumulate within each block tile
// first, then across tiles — the blocked-kernel accumulation shape.
// n³ multiplications and n²·(n-1) additions.
func BlockedMatMul(n, blk int) *cdfg.Graph {
	if n < 1 || blk < 1 {
		panic("workload: BlockedMatMul wants n >= 1, blk >= 1")
	}
	g := cdfg.NewGraph(fmt.Sprintf("bmm%db%d", n, blk))
	a := make([][]int, n)
	b := make([][]int, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int, n)
		b[i] = make([]int, n)
		for j := 0; j < n; j++ {
			a[i][j] = g.AddInput(fmt.Sprintf("a%d_%d", i, j))
			b[i][j] = g.AddInput(fmt.Sprintf("b%d_%d", i, j))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total := -1
			for k0 := 0; k0 < n; k0 += blk {
				part := -1
				for k := k0; k < k0+blk && k < n; k++ {
					p := g.AddOp(cdfg.KindMult, fmt.Sprintf("m%d_%d_%d", i, j, k), a[i][k], b[k][j])
					if part < 0 {
						part = p
					} else {
						part = g.AddOp(cdfg.KindAdd, fmt.Sprintf("p%d_%d_%d", i, j, k), part, p)
					}
				}
				if total < 0 {
					total = part
				} else {
					total = g.AddOp(cdfg.KindAdd, fmt.Sprintf("t%d_%d_%d", i, j, k0), total, part)
				}
			}
			g.MarkOutput(total)
		}
	}
	return g
}

// FFTCascade builds `reps` back-to-back radix-2 butterfly cascades over
// 2^logN points (twiddle multiply + add/sub pair per butterfly) — the
// FFT-like scale kernel, free of Butterfly's logN ≤ 5 bound.
// reps * logN * 2^(logN-1) * 3 operations.
func FFTCascade(logN, reps int) *cdfg.Graph {
	if logN < 1 || reps < 1 {
		panic("workload: FFTCascade wants logN >= 1, reps >= 1")
	}
	n := 1 << logN
	g := cdfg.NewGraph(fmt.Sprintf("fftc%dx%d", n, reps))
	vals := make([]int, n)
	for i := range vals {
		vals[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	for r := 0; r < reps; r++ {
		for s := 0; s < logN; s++ {
			w := g.AddInput(fmt.Sprintf("w%d_%d", r, s))
			half := n >> (s + 1)
			next := make([]int, n)
			for b := 0; b < (1 << s); b++ {
				base := b * 2 * half
				for i := 0; i < half; i++ {
					hi := vals[base+i]
					lo := g.AddOp(cdfg.KindMult, fmt.Sprintf("t%d_%d_%d_%d", r, s, b, i), vals[base+half+i], w)
					next[base+i] = g.AddOp(cdfg.KindAdd, fmt.Sprintf("u%d_%d_%d_%d", r, s, b, i), hi, lo)
					next[base+half+i] = g.AddOp(cdfg.KindSub, fmt.Sprintf("v%d_%d_%d_%d", r, s, b, i), hi, lo)
				}
			}
			vals = next
		}
	}
	for _, v := range vals {
		g.MarkOutput(v)
	}
	return g
}

// ControlHeavy builds a multi-basic-block CDFG: `blocks` sequential
// basic blocks over `width` live values, each block evaluating a then
// arm and an else arm of `depth` seeded-random operation rounds, merged
// by a predicated-select join per lane (then*p + else*q, two mults and
// an add). Joins share the block's predicate pair across all lanes, so
// select multiplexers overlap heavily — the mux-pressure workload.
// Roughly blocks * width * (2*depth + 3) operations.
func ControlHeavy(width, depth, blocks int, seed int64) *cdfg.Graph {
	if width < 2 || depth < 1 || blocks < 1 {
		panic("workload: ControlHeavy wants width >= 2, depth >= 1, blocks >= 1")
	}
	g := cdfg.NewGraph(fmt.Sprintf("ctrl%dx%dx%d", width, depth, blocks))
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int, width)
	for i := range vals {
		vals[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	arm := func(b int, name string, in []int) []int {
		cur := append([]int(nil), in...)
		for d := 0; d < depth; d++ {
			next := make([]int, width)
			shift := 1 + rng.Intn(width-1)
			for i := 0; i < width; i++ {
				var kind cdfg.NodeKind
				switch rng.Intn(4) {
				case 0:
					kind = cdfg.KindSub
				case 1, 2:
					kind = cdfg.KindAdd
				default:
					kind = cdfg.KindMult
				}
				next[i] = g.AddOp(kind, fmt.Sprintf("b%d%s%d_%d", b, name, d, i), cur[i], cur[(i+shift)%width])
			}
			cur = next
		}
		return cur
	}
	for b := 0; b < blocks; b++ {
		p := g.AddInput(fmt.Sprintf("p%d", b))
		q := g.AddInput(fmt.Sprintf("q%d", b))
		thenV := arm(b, "t", vals)
		elseV := arm(b, "e", vals)
		for i := 0; i < width; i++ {
			tm := g.AddOp(cdfg.KindMult, fmt.Sprintf("b%dst%d", b, i), thenV[i], p)
			em := g.AddOp(cdfg.KindMult, fmt.Sprintf("b%dse%d", b, i), elseV[i], q)
			vals[i] = g.AddOp(cdfg.KindAdd, fmt.Sprintf("b%dj%d", b, i), tm, em)
		}
	}
	for _, v := range vals {
		g.MarkOutput(v)
	}
	return g
}

// ScaleProfile names one scale-tier workload: a deterministic graph
// builder plus the resource constraint its benchmarks bind under.
type ScaleProfile struct {
	Name  string
	Build func() *cdfg.Graph
	RC    cdfg.ResourceConstraint
}

// ScaleBenchmarks is the scale benchmark tier. Sizes are chosen so the
// tier brackets the binder's sparse-mode threshold: dsp-2k/ctrl-2k sit
// just past auto-sparse engagement, ctrl-10k is the 10k-operation
// control-heavy net the scale acceptance gate (BENCH_9.json) runs on.
var ScaleBenchmarks = []ScaleProfile{
	{Name: "dsp-2k", Build: func() *cdfg.Graph { return DeepDSP(16, 60) },
		RC: cdfg.ResourceConstraint{Add: 12, Mult: 10}},
	{Name: "mm-4k", Build: func() *cdfg.Graph { return BlockedMatMul(13, 4) },
		RC: cdfg.ResourceConstraint{Add: 16, Mult: 16}},
	{Name: "fft-4k", Build: func() *cdfg.Graph { return FFTCascade(6, 7) },
		RC: cdfg.ResourceConstraint{Add: 16, Mult: 12}},
	{Name: "ctrl-2k", Build: func() *cdfg.Graph { return ControlHeavy(16, 6, 8, 931) },
		RC: cdfg.ResourceConstraint{Add: 10, Mult: 12}},
	{Name: "ctrl-10k", Build: func() *cdfg.Graph { return ControlHeavy(24, 8, 22, 932) },
		RC: cdfg.ResourceConstraint{Add: 16, Mult: 16}},
}

// ScaleByName returns the named scale profile.
func ScaleByName(name string) (ScaleProfile, bool) {
	for _, p := range ScaleBenchmarks {
		if p.Name == name {
			return p, true
		}
	}
	return ScaleProfile{}, false
}

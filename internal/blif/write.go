package blif

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
)

// WriteModel renders a single model as BLIF text.
func WriteModel(w io.Writer, m *Model) error {
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s\n", m.Name)
	writeNameList(&b, ".inputs", m.Inputs)
	writeNameList(&b, ".outputs", m.Outputs)
	for _, la := range m.Latches {
		fmt.Fprintf(&b, ".latch %s %s %d\n", la.Input, la.Output, la.Init)
	}
	for _, sc := range m.Subckts {
		fmt.Fprintf(&b, ".subckt %s", sc.Model)
		// Deterministic binding order.
		keys := make([]string, 0, len(sc.Bindings))
		for k := range sc.Bindings {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, sc.Bindings[k])
		}
		b.WriteByte('\n')
	}
	for _, g := range m.Gates {
		fmt.Fprintf(&b, ".names %s %s\n", strings.Join(g.Inputs, " "), g.Output)
		for _, c := range g.Cover {
			if len(g.Inputs) == 0 {
				fmt.Fprintf(&b, "%c\n", c.Output)
			} else {
				fmt.Fprintf(&b, "%s %c\n", c.Inputs, c.Output)
			}
		}
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteLibrary renders every model in definition order.
func WriteLibrary(w io.Writer, lib *Library) error {
	for _, name := range lib.Order {
		if err := WriteModel(w, lib.Models[name]); err != nil {
			return err
		}
	}
	return nil
}

// ModelString renders a model to a string.
func ModelString(m *Model) string {
	var b strings.Builder
	_ = WriteModel(&b, m)
	return b.String()
}

func writeNameList(b *strings.Builder, directive string, names []string) {
	if len(names) == 0 {
		return
	}
	b.WriteString(directive)
	col := len(directive)
	for _, n := range names {
		if col+1+len(n) > 78 {
			b.WriteString(" \\\n ")
			col = 1
		}
		b.WriteByte(' ')
		b.WriteString(n)
		col += 1 + len(n)
	}
	b.WriteByte('\n')
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FromNetwork converts a flat logic.Network into a single BLIF model.
// Unnamed nodes receive synthetic names n<ID>.
func FromNetwork(n *logic.Network) *Model {
	m := &Model{Name: n.Name}
	name := nodeNamer(n)
	for _, id := range n.Inputs {
		m.Inputs = append(m.Inputs, name(id))
	}
	for _, o := range n.Outputs {
		m.Outputs = append(m.Outputs, o.Name)
	}
	for _, q := range n.Latches {
		nd := n.Node(q)
		init := 0
		if nd.LatchInit {
			init = 1
		}
		m.Latches = append(m.Latches, Latch{Input: name(nd.LatchInput), Output: name(q), Init: init})
	}
	for _, nd := range n.Nodes {
		switch nd.Kind {
		case logic.KindConst:
			cover := []Cube{}
			if nd.ConstVal {
				cover = append(cover, Cube{Inputs: "", Output: '1'})
			}
			m.Gates = append(m.Gates, Gate{Output: name(nd.ID), Cover: cover})
		case logic.KindGate:
			ins := make([]string, len(nd.Fanins))
			for i, f := range nd.Fanins {
				ins[i] = name(f)
			}
			m.Gates = append(m.Gates, Gate{
				Inputs: ins,
				Output: name(nd.ID),
				Cover:  TruthTableToCover(nd.Func),
			})
		}
	}
	// Primary outputs must be driven by a node of the same name; insert
	// buffers where the driver's name differs.
	for _, o := range n.Outputs {
		driver := name(o.Node)
		if driver != o.Name {
			m.Gates = append(m.Gates, Gate{
				Inputs: []string{driver},
				Output: o.Name,
				Cover:  []Cube{{Inputs: "1", Output: '1'}},
			})
		}
	}
	return m
}

// nodeNamer returns a naming function that uses the node's declared name
// when present and unique synthetic names otherwise. If an output shares
// its driver node and the node is unnamed, the driver gets the output
// name directly to avoid a useless buffer.
func nodeNamer(n *logic.Network) func(int) string {
	names := make([]string, n.NumNodes())
	used := make(map[string]bool)
	for _, nd := range n.Nodes {
		if nd.Name != "" {
			names[nd.ID] = nd.Name
			used[nd.Name] = true
		}
	}
	// Give unnamed output drivers the output's name (first output wins).
	for _, o := range n.Outputs {
		if names[o.Node] == "" && !used[o.Name] {
			names[o.Node] = o.Name
			used[o.Name] = true
		}
	}
	return func(id int) string {
		if names[id] == "" {
			c := fmt.Sprintf("n%d", id)
			for used[c] {
				c = "_" + c
			}
			names[id] = c
			used[c] = true
		}
		return names[id]
	}
}

package blif

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Resolver locates files referenced by .search directives. The default
// resolver used by ParseFile opens paths relative to the including file.
type Resolver func(name string) (io.ReadCloser, error)

// Parser reads BLIF text into a Library.
type Parser struct {
	resolve Resolver
	lib     *Library
}

// NewParser returns a parser that resolves .search includes with resolve
// (nil disables includes).
func NewParser(resolve Resolver) *Parser {
	return &Parser{resolve: resolve, lib: NewLibrary()}
}

// Library returns the models parsed so far.
func (p *Parser) Library() *Library { return p.lib }

// Parse reads every model from r into the parser's library. src is used
// in error messages.
func (p *Parser) Parse(r io.Reader, src string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var logical []string // logical lines after continuation splicing
	var pending strings.Builder
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		cont := strings.HasSuffix(line, "\\")
		if cont {
			line = strings.TrimSuffix(line, "\\")
		}
		pending.WriteString(line)
		if cont {
			pending.WriteByte(' ')
			continue
		}
		logical = append(logical, pending.String())
		pending.Reset()
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("blif: reading %s: %w", src, err)
	}
	if pending.Len() > 0 {
		logical = append(logical, pending.String())
	}

	var cur *Model
	var curGate *Gate
	flushGate := func() {
		if curGate != nil {
			cur.Gates = append(cur.Gates, *curGate)
			curGate = nil
		}
	}
	for idx, raw := range logical {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("blif: %s:%d: %s", src, idx+1, fmt.Sprintf(format, args...))
		}
		if !strings.HasPrefix(fields[0], ".") {
			// Cover row for the current .names.
			if curGate == nil {
				return errf("cover row %q outside .names", line)
			}
			switch {
			case len(curGate.Inputs) == 0 && len(fields) == 1 && len(fields[0]) == 1:
				curGate.Cover = append(curGate.Cover, Cube{Inputs: "", Output: fields[0][0]})
			case len(fields) == 2:
				curGate.Cover = append(curGate.Cover, Cube{Inputs: fields[0], Output: fields[1][0]})
			default:
				return errf("malformed cover row %q", line)
			}
			continue
		}
		switch fields[0] {
		case ".model":
			flushGate()
			if cur != nil {
				p.lib.Add(cur)
			}
			name := ""
			if len(fields) > 1 {
				name = fields[1]
			}
			cur = &Model{Name: name}
		case ".inputs":
			if cur == nil {
				return errf(".inputs outside .model")
			}
			flushGate()
			cur.Inputs = append(cur.Inputs, fields[1:]...)
		case ".outputs":
			if cur == nil {
				return errf(".outputs outside .model")
			}
			flushGate()
			cur.Outputs = append(cur.Outputs, fields[1:]...)
		case ".names":
			if cur == nil {
				return errf(".names outside .model")
			}
			flushGate()
			if len(fields) < 2 {
				return errf(".names needs at least an output")
			}
			curGate = &Gate{
				Inputs: append([]string(nil), fields[1:len(fields)-1]...),
				Output: fields[len(fields)-1],
			}
		case ".latch":
			if cur == nil {
				return errf(".latch outside .model")
			}
			flushGate()
			if len(fields) < 3 {
				return errf(".latch needs input and output")
			}
			la := Latch{Input: fields[1], Output: fields[2], Init: 3}
			// Optional trailing fields: [type control] [init].
			if len(fields) >= 4 {
				if v, err := strconv.Atoi(fields[len(fields)-1]); err == nil {
					la.Init = v
				}
			}
			cur.Latches = append(cur.Latches, la)
		case ".subckt":
			if cur == nil {
				return errf(".subckt outside .model")
			}
			flushGate()
			if len(fields) < 2 {
				return errf(".subckt needs a model name")
			}
			sc := Subckt{Model: fields[1], Bindings: make(map[string]string)}
			for _, b := range fields[2:] {
				eq := strings.Index(b, "=")
				if eq <= 0 {
					return errf("malformed binding %q", b)
				}
				sc.Bindings[b[:eq]] = b[eq+1:]
			}
			cur.Subckts = append(cur.Subckts, sc)
		case ".search":
			flushGate()
			if len(fields) < 2 {
				return errf(".search needs a file name")
			}
			if p.resolve == nil {
				return errf(".search %q: no resolver configured", fields[1])
			}
			rc, err := p.resolve(fields[1])
			if err != nil {
				return errf(".search %q: %v", fields[1], err)
			}
			err = p.Parse(rc, fields[1])
			rc.Close()
			if err != nil {
				return err
			}
		case ".end":
			flushGate()
			if cur != nil {
				p.lib.Add(cur)
				cur = nil
			}
		case ".exdc", ".wire_load_slope", ".clock", ".default_input_arrival",
			".default_output_required", ".area", ".delay":
			// Recognized but irrelevant directives: ignore.
			flushGate()
		default:
			return errf("unknown directive %q", fields[0])
		}
	}
	flushGate()
	if cur != nil {
		p.lib.Add(cur)
	}
	return nil
}

// ParseString parses BLIF text from a string into a fresh library.
func ParseString(text string) (*Library, error) {
	p := NewParser(nil)
	if err := p.Parse(strings.NewReader(text), "<string>"); err != nil {
		return nil, err
	}
	return p.Library(), nil
}

// ParseFile parses a BLIF file; .search references resolve relative to
// the file's directory.
func ParseFile(path string) (*Library, error) {
	dir := filepath.Dir(path)
	p := NewParser(func(name string) (io.ReadCloser, error) {
		if filepath.IsAbs(name) {
			return os.Open(name)
		}
		return os.Open(filepath.Join(dir, name))
	})
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := p.Parse(f, path); err != nil {
		return nil, err
	}
	return p.Library(), nil
}

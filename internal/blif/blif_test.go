package blif

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

const fullAdderBlif = `
# 1-bit full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func TestParseFullAdder(t *testing.T) {
	lib, err := ParseString(fullAdderBlif)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := lib.Get("fa")
	if !ok {
		t.Fatal("model fa not found")
	}
	if len(m.Inputs) != 3 || len(m.Outputs) != 2 || len(m.Gates) != 2 {
		t.Fatalf("unexpected shape: %d in, %d out, %d gates", len(m.Inputs), len(m.Outputs), len(m.Gates))
	}
	net, err := Flatten(lib, "fa")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		out := net.OutputValues(net.Eval(in, nil))
		ones := (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1)
		if out[0] != (ones%2 == 1) || out[1] != (ones >= 2) {
			t.Fatalf("full adder wrong at inputs %03b: %v", v, out)
		}
	}
}

func TestCoverToTruthTable(t *testing.T) {
	// Off-set cover of AND: output 0 rows.
	tt, err := CoverToTruthTable(2, []Cube{
		{Inputs: "0-", Output: '0'},
		{Inputs: "-0", Output: '0'},
	})
	if err != nil {
		t.Fatal(err)
	}
	and := bitvec.FromFunc(2, func(a uint) bool { return a == 3 })
	if !tt.Equal(and) {
		t.Fatalf("off-set AND decode wrong: %s", tt)
	}
	// Empty cover is constant 0.
	tt, err = CoverToTruthTable(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tt.IsConst(); !ok || v {
		t.Fatal("empty cover should be constant 0")
	}
	// Mixed phases rejected.
	if _, err := CoverToTruthTable(1, []Cube{{Inputs: "1", Output: '1'}, {Inputs: "0", Output: '0'}}); err == nil {
		t.Fatal("mixed phases should be rejected")
	}
}

func TestTruthTableCoverRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 6)
		rng := rand.New(rand.NewSource(seed))
		tt := bitvec.New(n)
		for m := 0; m < 1<<n; m++ {
			if rng.Intn(2) == 0 {
				tt.Set(uint(m), true)
			}
		}
		cover := TruthTableToCover(tt)
		back, err := CoverToTruthTable(n, cover)
		if err != nil {
			return false
		}
		return back.Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantCovers(t *testing.T) {
	one := TruthTableToCover(bitvec.Const(2, true))
	tt, err := CoverToTruthTable(2, one)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tt.IsConst(); !ok || !v {
		t.Fatalf("const-1 cover round trip failed: %v", one)
	}
	zero := TruthTableToCover(bitvec.Const(2, false))
	tt, err = CoverToTruthTable(2, zero)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tt.IsConst(); !ok || v {
		t.Fatalf("const-0 cover round trip failed: %v", zero)
	}
}

func TestHierarchyFlatten(t *testing.T) {
	text := `
.model and2
.inputs x y
.outputs z
.names x y z
11 1
.end

.model top
.inputs a b c
.outputs o
.subckt and2 x=a y=b z=ab
.subckt and2 x=ab y=c z=o
.end
`
	lib, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Flatten(lib, "top")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		out := net.OutputValues(net.Eval(in, nil))[0]
		if out != (v == 7) {
			t.Fatalf("and3 hierarchy wrong at %03b", v)
		}
	}
}

func TestFlattenOutOfOrderGates(t *testing.T) {
	// Gate g2 textually precedes its fanin definition g1.
	text := `
.model ooo
.inputs a
.outputs y
.names g1 y
1 1
.names a g1
0 1
.end
`
	lib, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Flatten(lib, "ooo")
	if err != nil {
		t.Fatal(err)
	}
	if got := net.OutputValues(net.Eval([]bool{false}, nil))[0]; !got {
		t.Fatal("out-of-order flatten produced wrong function")
	}
}

func TestFlattenDetectsCycle(t *testing.T) {
	text := `
.model cyc
.inputs a
.outputs y
.names a x y
11 1
.names y x
1 1
.end
`
	lib, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Flatten(lib, "cyc"); err == nil {
		t.Fatal("expected cycle detection to fail")
	}
}

func TestLatchParseAndFlatten(t *testing.T) {
	text := `
.model counterbit
.inputs en
.outputs q
.latch d q 0
.names en q d
10 1
01 1
.end
`
	lib, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Flatten(lib, "counterbit")
	if err != nil {
		t.Fatal(err)
	}
	st := net.InitialLatchState()
	// With en=1 the bit toggles every cycle.
	want := []bool{false, true, false, true}
	for i, w := range want {
		val := net.Eval([]bool{true}, st)
		if net.OutputValues(val)[0] != w {
			t.Fatalf("cycle %d: got %v want %v", i, net.OutputValues(val)[0], w)
		}
		st = net.NextLatchState(val)
	}
}

func TestSearchDirective(t *testing.T) {
	files := map[string]string{
		"lib.blif": `
.model inv
.inputs a
.outputs y
.names a y
0 1
.end
`,
	}
	p := NewParser(func(name string) (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader(files[name])), nil
	})
	top := `
.search lib.blif
.model top
.inputs a
.outputs y
.subckt inv a=a y=y
.end
`
	if err := p.Parse(strings.NewReader(top), "top.blif"); err != nil {
		t.Fatal(err)
	}
	net, err := Flatten(p.Library(), "top")
	if err != nil {
		t.Fatal(err)
	}
	if !net.OutputValues(net.Eval([]bool{false}, nil))[0] {
		t.Fatal("inverter through .search wrong")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	lib, err := ParseString(fullAdderBlif)
	if err != nil {
		t.Fatal(err)
	}
	text := ModelString(lib.Models["fa"])
	lib2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	net1, err := Flatten(lib, "fa")
	if err != nil {
		t.Fatal(err)
	}
	net2, err := Flatten(lib2, "fa")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		o1 := net1.OutputValues(net1.Eval(in, nil))
		o2 := net2.OutputValues(net2.Eval(in, nil))
		if o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("round trip changed function at %03b", v)
		}
	}
}

func TestFromNetworkRoundTrip(t *testing.T) {
	n := logic.NewNetwork("xor3")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	x1 := n.AddGate("x1", logic.TTXor2(), a, b)
	x2 := n.AddGate("", logic.TTXor2(), x1, c)
	n.MarkOutput("y", x2)

	m := FromNetwork(n)
	lib := NewLibrary()
	lib.Add(m)
	back, err := Flatten(lib, "xor3")
	if err != nil {
		t.Fatalf("%v\n%s", err, ModelString(m))
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		want := n.OutputValues(n.Eval(in, nil))[0]
		got := back.OutputValues(back.Eval(in, nil))[0]
		if want != got {
			t.Fatalf("FromNetwork round trip wrong at %03b", v)
		}
	}
}

func TestFromNetworkWithLatchAndConst(t *testing.T) {
	n := logic.NewNetwork("seq")
	q := n.AddLatch("q", true)
	one := n.AddConst("one", true)
	d := n.AddGate("d", logic.TTXor2(), q, one) // invert q
	n.ConnectLatch(q, d)
	n.MarkOutput("q", q)

	m := FromNetwork(n)
	lib := NewLibrary()
	lib.Add(m)
	back, err := Flatten(lib, "seq")
	if err != nil {
		t.Fatalf("%v\n%s", err, ModelString(m))
	}
	st := back.InitialLatchState()
	if len(st) != 1 || !st[0] {
		t.Fatalf("latch init lost: %v", st)
	}
	val := back.Eval(nil, st)
	if next := back.NextLatchState(val); next[0] {
		t.Fatal("inverted latch should go to 0")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		".model m\n.names\n.end",                // .names with no output
		".model m\n.inputs a\n11 1\n.end",       // cover row outside .names
		".model m\n.subckt\n.end",               // .subckt without model
		".model m\n.subckt x broken\n.end",      // malformed binding
		".model m\n.latch onlyinput\n.end",      // incomplete latch
		".model m\n.bogus directive\n.end",      // unknown directive
		".search lib.blif\n.model m\n.end",      // search without resolver
		".model m\n.names a b\nbroken\n.end",    // malformed cover row
		".model m\n.names a y\n2 1\n.end x y z", // bad cube char (flatten-time ok, decode fails)
	}
	for i, text := range bad {
		lib, err := ParseString(text)
		if err != nil {
			continue // parse-time rejection is fine
		}
		// Some malformed covers only fail at flatten time.
		if _, err := Flatten(lib, "m"); err == nil {
			t.Fatalf("case %d: expected an error somewhere for %q", i, text)
		}
	}
}

func TestContinuationLines(t *testing.T) {
	text := ".model m\n.inputs a b \\\nc d\n.outputs y\n.names a b c d y\n1111 1\n.end\n"
	lib, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	m := lib.Models["m"]
	if len(m.Inputs) != 4 {
		t.Fatalf("continuation line lost inputs: %v", m.Inputs)
	}
}

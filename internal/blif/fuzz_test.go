package blif

import (
	"strings"
	"testing"
)

// FuzzBlifParse feeds arbitrary text through the full untrusted-input
// path: ParseString, then Flatten of every model in definition order.
// Both must return errors for malformed input, never panic, and a
// successfully flattened network must pass its own consistency check
// (Flatten runs net.Check before returning).
func FuzzBlifParse(f *testing.F) {
	f.Add(".model top\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
	f.Add(".model top\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n")
	f.Add(strings.Join([]string{
		".model top", ".inputs a b", ".outputs y",
		".subckt leaf x=a z=t", ".names t b y", "11 1", ".end",
		".model leaf", ".inputs x", ".outputs z", ".names x z", "1 1", ".end", "",
	}, "\n"))
	// Crasher shapes fixed by the hardening pass: recursion, a signal
	// name colliding with the hierarchical instance namespace, and an
	// over-wide cover.
	f.Add(".model a\n.inputs x\n.outputs y\n.subckt a x=x y=y\n.end\n")
	f.Add(".model t\n.inputs u0/x\n.outputs y\n.subckt s x=u0/x z=y\n.end\n.model s\n.inputs x\n.outputs z\n.names x z\n1 1\n.end\n")
	f.Add(".model w\n.inputs " + strings.Repeat("i ", 20) + "\n.outputs y\n.names " +
		strings.Repeat("i ", 20) + "y\n" + strings.Repeat("-", 20) + " 1\n.end\n")
	f.Fuzz(func(t *testing.T, text string) {
		lib, err := ParseString(text)
		if err != nil {
			return
		}
		for _, name := range lib.Order {
			if _, err := Flatten(lib, name); err != nil {
				continue
			}
		}
	})
}

package blif

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
)

// These tests pin the untrusted-input hardening of the parse/flatten
// path: inputs that previously panicked (or recursed without bound) now
// return errors.

func mustParse(t *testing.T, text string) *Library {
	t.Helper()
	lib, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestFlattenRejectsSelfRecursion(t *testing.T) {
	lib := mustParse(t, ".model a\n.inputs x\n.outputs y\n.subckt a x=x y=y\n.end\n")
	if _, err := Flatten(lib, "a"); err == nil || !strings.Contains(err.Error(), "recursively") {
		t.Fatalf("self-recursive model: err = %v", err)
	}
}

func TestFlattenRejectsMutualRecursion(t *testing.T) {
	lib := mustParse(t, strings.Join([]string{
		".model a", ".inputs x", ".outputs y", ".subckt b x=x y=y", ".end",
		".model b", ".inputs x", ".outputs y", ".subckt a x=x y=y", ".end", "",
	}, "\n"))
	if _, err := Flatten(lib, "a"); err == nil || !strings.Contains(err.Error(), "recursively") {
		t.Fatalf("mutually recursive models: err = %v", err)
	}
}

// TestFlattenInstanceCap builds a doubling hierarchy: each of 20 levels
// instantiates the next level twice, demanding 2^20 leaf instances from
// ~100 lines of BLIF. The cap must stop elaboration.
func TestFlattenInstanceCap(t *testing.T) {
	var sb strings.Builder
	const depth = 20
	for i := 0; i < depth; i++ {
		name := levelName(i)
		sub := levelName(i + 1)
		sb.WriteString(".model " + name + "\n.inputs x\n.outputs y\n")
		sb.WriteString(".subckt " + sub + " x=x y=t\n")
		sb.WriteString(".subckt " + sub + " x=t y=y\n.end\n")
	}
	sb.WriteString(".model " + levelName(depth) + "\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\n")
	lib := mustParse(t, sb.String())
	_, err := Flatten(lib, levelName(0))
	if err == nil || !strings.Contains(err.Error(), "instances") {
		t.Fatalf("doubling hierarchy: err = %v", err)
	}
}

func levelName(i int) string {
	return "lvl" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestFlattenNamespaceCollision feeds a top-level signal literally named
// like a hierarchical instance path. logic.Network panics on the
// duplicate node name; Flatten must convert that to an error.
func TestFlattenNamespaceCollision(t *testing.T) {
	lib := mustParse(t, strings.Join([]string{
		".model t", ".inputs a", ".outputs y",
		".names a u0/z", "1 1",
		".subckt s x=a z=y", ".end",
		".model s", ".inputs x", ".outputs z", ".names x z", "1 1", ".end", "",
	}, "\n"))
	if _, err := Flatten(lib, "t"); err == nil || !strings.Contains(err.Error(), "malformed netlist") {
		t.Fatalf("namespace collision: err = %v", err)
	}
}

func TestCoverToTruthTableRejectsWideCovers(t *testing.T) {
	n := bitvec.MaxVars + 1
	_, err := CoverToTruthTable(n, []Cube{{Inputs: strings.Repeat("-", n), Output: '1'}})
	if err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("wide cover: err = %v", err)
	}
	if _, err := CoverToTruthTable(-1, nil); err == nil {
		t.Fatal("negative input count accepted")
	}
}

// TestFlattenWideGateError checks the wide-cover error surfaces through
// Flatten with gate provenance instead of a bitvec panic.
func TestFlattenWideGateError(t *testing.T) {
	n := bitvec.MaxVars + 1
	ins := make([]string, n)
	for i := range ins {
		ins[i] = "i" + levelName(i)
	}
	text := ".model w\n.inputs " + strings.Join(ins, " ") + "\n.outputs y\n.names " +
		strings.Join(ins, " ") + " y\n" + strings.Repeat("-", n) + " 1\n.end\n"
	lib := mustParse(t, text)
	_, err := Flatten(lib, "w")
	if err == nil || !strings.Contains(err.Error(), `gate "y"`) {
		t.Fatalf("wide gate: err = %v", err)
	}
}

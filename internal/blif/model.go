// Package blif reads and writes netlists in the Berkeley Logic Interchange
// Format (BLIF) as defined by SIS [19 in the paper]. It supports the
// constructs the HLPower flow needs: .model/.inputs/.outputs/.names
// two-level covers, .latch, hierarchical .subckt instantiation, .search
// includes, and flattening a hierarchy into a logic.Network. The paper's
// partial-datapath generation (Fig. 2) emits exactly this subset.
package blif

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
)

// Cube is one row of a two-level cover: one input character per input
// ('0', '1' or '-') and an output value.
type Cube struct {
	Inputs string
	Output byte // '1' for on-set rows, '0' for off-set rows
}

// Gate is a .names logic function: a named single-output node defined by
// a two-level cover over named inputs.
type Gate struct {
	Inputs []string
	Output string
	Cover  []Cube
}

// Latch is a .latch D flip-flop. Init follows BLIF: 0, 1, 2 (don't care)
// or 3 (unknown); we treat anything other than 1 as reset-to-0.
type Latch struct {
	Input  string
	Output string
	Init   int
}

// Subckt is a .subckt instantiation: formal-to-actual pin bindings of a
// referenced model.
type Subckt struct {
	Model    string
	Bindings map[string]string
}

// Model is one .model section.
type Model struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []Gate
	Latches []Latch
	Subckts []Subckt
}

// Library is a set of models indexed by name, e.g. the resource library
// (mux2.blif, mux3.blif, mult.blif, ...) the binder draws from.
type Library struct {
	Models map[string]*Model
	// Order preserves first-definition order for deterministic output.
	Order []string
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{Models: make(map[string]*Model)}
}

// Add inserts a model, replacing any previous definition of the same name.
func (l *Library) Add(m *Model) {
	if _, ok := l.Models[m.Name]; !ok {
		l.Order = append(l.Order, m.Name)
	}
	l.Models[m.Name] = m
}

// Get returns the named model.
func (l *Library) Get(name string) (*Model, bool) {
	m, ok := l.Models[name]
	return m, ok
}

// CoverToTruthTable converts a two-level cover over n inputs into a truth
// table. BLIF semantics: all rows of a cover must share the same output
// phase; a '1' phase cover lists the on-set, a '0' phase cover the
// off-set. An empty cover is constant 0 (".names x" with no rows).
// Covers wider than bitvec.MaxVars inputs are rejected (truth tables are
// explicit, so the width bound is a hard resource limit, not a parser
// restriction).
func CoverToTruthTable(n int, cover []Cube) (*bitvec.TruthTable, error) {
	if n < 0 || n > bitvec.MaxVars {
		return nil, fmt.Errorf("blif: cover has %d inputs, max %d", n, bitvec.MaxVars)
	}
	if len(cover) == 0 {
		return bitvec.Const(n, false), nil
	}
	phase := cover[0].Output
	for _, c := range cover {
		if c.Output != phase {
			return nil, fmt.Errorf("blif: mixed output phases in cover")
		}
		if len(c.Inputs) != n {
			return nil, fmt.Errorf("blif: cube %q has %d literals, want %d", c.Inputs, len(c.Inputs), n)
		}
	}
	set := bitvec.New(n)
	for _, c := range cover {
		// Expand the cube over its don't-cares.
		var fixedMask, fixedVal uint
		for i := 0; i < n; i++ {
			switch c.Inputs[i] {
			case '1':
				fixedMask |= 1 << uint(i)
				fixedVal |= 1 << uint(i)
			case '0':
				fixedMask |= 1 << uint(i)
			case '-':
			default:
				return nil, fmt.Errorf("blif: bad cube character %q", c.Inputs[i])
			}
		}
		for m := 0; m < 1<<n; m++ {
			if uint(m)&fixedMask == fixedVal {
				set.Set(uint(m), true)
			}
		}
	}
	if phase == '0' {
		return set.Not(set), nil
	}
	return set, nil
}

// TruthTableToCover converts a truth table into a two-level cover. It
// emits whichever of on-set/off-set is smaller, one cube per minterm with
// a light single-pass cube-merging cleanup (adjacent minterms differing in
// one variable merge into a '-'). The result is valid BLIF, not a minimal
// cover.
func TruthTableToCover(tt *bitvec.TruthTable) []Cube {
	n := tt.NumVars()
	ones := tt.CountOnes()
	size := tt.Size()
	phase := byte('1')
	want := true
	if ones > size/2 {
		phase = '0'
		want = false
	}
	// Collect minterms of the chosen phase.
	terms := make([]uint, 0, size)
	for m := 0; m < size; m++ {
		if tt.Get(uint(m)) == want {
			terms = append(terms, uint(m))
		}
	}
	// Greedy pairwise merge on one variable: repeatedly combine pairs that
	// differ in exactly one bit. Represent a cube as (value, careMask).
	type cube struct{ val, care uint }
	cubes := make([]cube, len(terms))
	full := uint(1<<n) - 1
	for i, m := range terms {
		cubes[i] = cube{val: m, care: full}
	}
	merged := true
	for merged {
		merged = false
		seen := make(map[[2]uint]bool, len(cubes))
		var next []cube
		used := make([]bool, len(cubes))
		for i := 0; i < len(cubes); i++ {
			if used[i] {
				continue
			}
			found := false
			for j := i + 1; j < len(cubes); j++ {
				if used[j] || cubes[i].care != cubes[j].care {
					continue
				}
				diff := (cubes[i].val ^ cubes[j].val) & cubes[i].care
				if diff != 0 && diff&(diff-1) == 0 { // exactly one differing care bit
					nc := cube{val: cubes[i].val &^ diff, care: cubes[i].care &^ diff}
					key := [2]uint{nc.val, nc.care}
					if !seen[key] {
						seen[key] = true
						next = append(next, nc)
					}
					used[i], used[j] = true, true
					found, merged = true, true
					break
				}
			}
			if !found {
				key := [2]uint{cubes[i].val, cubes[i].care}
				if !seen[key] {
					seen[key] = true
					next = append(next, cubes[i])
				}
				used[i] = true
			}
		}
		cubes = next
	}
	out := make([]Cube, 0, len(cubes))
	for _, c := range cubes {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			bit := uint(1) << uint(i)
			switch {
			case c.care&bit == 0:
				sb.WriteByte('-')
			case c.val&bit != 0:
				sb.WriteByte('1')
			default:
				sb.WriteByte('0')
			}
		}
		out = append(out, Cube{Inputs: sb.String(), Output: phase})
	}
	if len(out) == 0 {
		// Constant function: on-set empty => const 0 (no rows); off-set
		// empty => const 1 (single all-dash row with output 1).
		if v, ok := tt.IsConst(); ok && v {
			return []Cube{{Inputs: strings.Repeat("-", n), Output: '1'}}
		}
		return nil
	}
	return out
}

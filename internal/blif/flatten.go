package blif

import (
	"fmt"

	"repro/internal/logic"
)

// maxFlattenInstances bounds the total .subckt instantiations one
// Flatten may perform. Hierarchies double per level with one line of
// BLIF each, so without a cap a few dozen lines of input can demand
// exponential work; real resource libraries sit far below this bound.
const maxFlattenInstances = 1 << 16

// Flatten elaborates the named top model of the library into a flat
// logic.Network, recursively instantiating every .subckt. Node names are
// hierarchical: "u0/u1/sig" for nested instances. Gates may appear in any
// textual order inside a model; Flatten resolves dependencies and reports
// combinational cycles or undefined signals.
//
// Flatten treats the library as untrusted input: recursive model
// hierarchies, instantiation blow-ups, over-wide covers, and name
// collisions with the hierarchical "uN/" namespace are reported as
// errors, never panics.
func Flatten(lib *Library, top string) (net *logic.Network, err error) {
	m, ok := lib.Get(top)
	if !ok {
		return nil, fmt.Errorf("blif: model %q not found", top)
	}
	// logic.Network reports construction-contract violations (duplicate
	// node names, arity mismatches) by panicking, which is right for
	// generated netlists but not for netlists parsed from disk: a BLIF
	// signal named like a hierarchical instance path ("u0/x") collides
	// with Flatten's own namespace. Convert those to errors here, at the
	// untrusted-input boundary.
	defer func() {
		if r := recover(); r != nil {
			net, err = nil, fmt.Errorf("blif: model %q: malformed netlist: %v", top, r)
		}
	}()
	net = logic.NewNetwork(top)
	portMap := make(map[string]int, len(m.Inputs))
	for _, in := range m.Inputs {
		portMap[in] = net.AddInput(in)
	}
	f := &flattener{lib: lib, net: net, stack: map[string]bool{top: true}}
	outs, err := f.elaborate(m, "", portMap)
	if err != nil {
		return nil, err
	}
	for _, out := range m.Outputs {
		id, ok := outs[out]
		if !ok {
			return nil, fmt.Errorf("blif: model %q: output %q is undriven", top, out)
		}
		net.MarkOutput(out, id)
	}
	if err := net.Check(); err != nil {
		return nil, err
	}
	return net, nil
}

type flattener struct {
	lib  *Library
	net  *logic.Network
	inst int // instance counter for unique hierarchical prefixes
	// stack holds the models currently being elaborated; a .subckt
	// referencing any of them is a recursive hierarchy (infinite
	// elaboration), reported instead of recursed into.
	stack map[string]bool
}

// elaborate instantiates model m with the given hierarchical name prefix
// and input bindings, returning the node IDs of the model's outputs (and
// of every internal signal, keyed by local name).
func (f *flattener) elaborate(m *Model, prefix string, portMap map[string]int) (map[string]int, error) {
	scope := make(map[string]int, len(m.Gates)+len(m.Inputs))
	for _, in := range m.Inputs {
		id, ok := portMap[in]
		if !ok {
			return nil, fmt.Errorf("blif: model %q: input %q unconnected", m.Name, in)
		}
		scope[in] = id
	}

	// Latch outputs are combinational sources: define them up front.
	for _, la := range m.Latches {
		init := la.Init == 1
		scope[la.Output] = f.net.AddLatch(prefix+la.Output, init)
	}

	// Work items resolved iteratively as their inputs become defined.
	type item struct {
		gate   *Gate
		subckt *Subckt
	}
	var pending []item
	for i := range m.Gates {
		pending = append(pending, item{gate: &m.Gates[i]})
	}
	for i := range m.Subckts {
		pending = append(pending, item{subckt: &m.Subckts[i]})
	}

	for len(pending) > 0 {
		progress := false
		var next []item
		for _, it := range pending {
			switch {
			case it.gate != nil:
				g := it.gate
				fanins := make([]int, len(g.Inputs))
				ready := true
				for i, in := range g.Inputs {
					id, ok := scope[in]
					if !ok {
						ready = false
						break
					}
					fanins[i] = id
				}
				if !ready {
					next = append(next, it)
					continue
				}
				tt, err := CoverToTruthTable(len(g.Inputs), g.Cover)
				if err != nil {
					return nil, fmt.Errorf("blif: model %q, gate %q: %w", m.Name, g.Output, err)
				}
				var id int
				if v, ok := tt.IsConst(); ok && len(g.Inputs) == 0 {
					id = f.net.AddConst(prefix+g.Output, v)
				} else {
					id = f.net.AddGate(prefix+g.Output, tt, fanins...)
				}
				if _, dup := scope[g.Output]; dup {
					return nil, fmt.Errorf("blif: model %q: signal %q multiply driven", m.Name, g.Output)
				}
				scope[g.Output] = id
				progress = true
			case it.subckt != nil:
				sc := it.subckt
				inner, ok := f.lib.Get(sc.Model)
				if !ok {
					return nil, fmt.Errorf("blif: model %q references unknown model %q", m.Name, sc.Model)
				}
				innerPorts := make(map[string]int, len(inner.Inputs))
				ready := true
				for _, formal := range inner.Inputs {
					actual, bound := sc.Bindings[formal]
					if !bound {
						return nil, fmt.Errorf("blif: %q instance in %q: input %q unbound", sc.Model, m.Name, formal)
					}
					id, defined := scope[actual]
					if !defined {
						ready = false
						break
					}
					innerPorts[formal] = id
				}
				if !ready {
					next = append(next, it)
					continue
				}
				if f.stack[inner.Name] {
					return nil, fmt.Errorf("blif: model %q instantiates %q recursively", m.Name, inner.Name)
				}
				if f.inst >= maxFlattenInstances {
					return nil, fmt.Errorf("blif: more than %d subcircuit instances", maxFlattenInstances)
				}
				instPrefix := fmt.Sprintf("%su%d/", prefix, f.inst)
				f.inst++
				f.stack[inner.Name] = true
				outs, err := f.elaborate(inner, instPrefix, innerPorts)
				delete(f.stack, inner.Name)
				if err != nil {
					return nil, err
				}
				for _, formal := range inner.Outputs {
					actual, bound := sc.Bindings[formal]
					if !bound {
						continue // unconnected output
					}
					id, ok := outs[formal]
					if !ok {
						return nil, fmt.Errorf("blif: model %q: output %q undriven", sc.Model, formal)
					}
					if _, dup := scope[actual]; dup {
						return nil, fmt.Errorf("blif: model %q: signal %q multiply driven", m.Name, actual)
					}
					scope[actual] = id
				}
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("blif: model %q: combinational cycle or undefined signal (%d items unresolved)", m.Name, len(next))
		}
		pending = next
	}

	// Connect latch D inputs now that all signals exist.
	for _, la := range m.Latches {
		d, ok := scope[la.Input]
		if !ok {
			return nil, fmt.Errorf("blif: model %q: latch input %q undefined", m.Name, la.Input)
		}
		f.net.ConnectLatch(scope[la.Output], d)
	}

	outs := make(map[string]int, len(m.Outputs))
	for _, out := range m.Outputs {
		id, ok := scope[out]
		if !ok {
			return nil, fmt.Errorf("blif: model %q: output %q undriven", m.Name, out)
		}
		outs[out] = id
	}
	// Return the full scope so callers binding internal names also work;
	// outputs are the contract, so return those.
	return outs, nil
}

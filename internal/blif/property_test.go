package blif

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

// randomNetwork builds a random combinational network with occasional
// constants and shared fanout.
func randomNetwork(rng *rand.Rand, name string) *logic.Network {
	net := logic.NewNetwork(name)
	var pool []int
	nIn := 2 + rng.Intn(4)
	for i := 0; i < nIn; i++ {
		pool = append(pool, net.AddInput("i"+string(rune('0'+i))))
	}
	if rng.Intn(3) == 0 {
		pool = append(pool, net.AddConst("", rng.Intn(2) == 0))
	}
	gates := 3 + rng.Intn(15)
	fns := []*bitvec.TruthTable{
		logic.TTAnd2(), logic.TTOr2(), logic.TTXor2(), logic.TTNand2(),
		logic.TTNot(), logic.TTMaj3(), logic.TTXor3(), logic.TTMux2(),
	}
	for i := 0; i < gates; i++ {
		fn := fns[rng.Intn(len(fns))]
		fanins := make([]int, fn.NumVars())
		for j := range fanins {
			fanins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, net.AddGate("", fn, fanins...))
	}
	outs := 1 + rng.Intn(3)
	for i := 0; i < outs; i++ {
		net.MarkOutput("o"+string(rune('0'+i)), pool[len(pool)-1-rng.Intn(3)])
	}
	return net
}

// TestWriteParseFlattenEquivalence: any network survives the full BLIF
// round trip functionally.
func TestWriteParseFlattenEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomNetwork(rng, "m")
		text := ModelString(FromNetwork(net))
		lib, err := ParseString(text)
		if err != nil {
			return false
		}
		back, err := Flatten(lib, "m")
		if err != nil {
			return false
		}
		// Inputs align by name.
		for trial := 0; trial < 20; trial++ {
			in := make([]bool, len(net.Inputs))
			for i := range in {
				in[i] = rng.Intn(2) == 0
			}
			in2 := make([]bool, len(back.Inputs))
			for i, id := range back.Inputs {
				nm := back.Node(id).Name
				oid, ok := net.FindNode(nm)
				if !ok {
					return false
				}
				for j, id1 := range net.Inputs {
					if id1 == oid {
						in2[i] = in[j]
					}
				}
			}
			o1 := net.OutputValues(net.Eval(in, nil))
			o2 := back.OutputValues(back.Eval(in2, nil))
			for i := range o1 {
				if o1[i] != o2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestWriterDeterministic: the same network always renders identically.
func TestWriterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := randomNetwork(rng, "d")
	a := ModelString(FromNetwork(net))
	b := ModelString(FromNetwork(net))
	if a != b {
		t.Fatal("writer output not deterministic")
	}
}

// TestCoverRowCounts: the emitted cover never exceeds the minterm count
// of the chosen phase (the merger only shrinks).
func TestCoverRowCounts(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 5)
		rng := rand.New(rand.NewSource(seed))
		tt := bitvec.New(n)
		for m := 0; m < 1<<n; m++ {
			if rng.Intn(2) == 0 {
				tt.Set(uint(m), true)
			}
		}
		cover := TruthTableToCover(tt)
		ones := tt.CountOnes()
		phaseSize := ones
		if ones > tt.Size()/2 {
			phaseSize = tt.Size() - ones
		}
		if phaseSize == 0 {
			return len(cover) <= 1
		}
		return len(cover) <= phaseSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDontCareExpansionConsistency: covers with '-' decode the same as
// their expanded minterm form.
func TestDontCareExpansionConsistency(t *testing.T) {
	cover := []Cube{{Inputs: "1-0-", Output: '1'}}
	tt, err := CoverToTruthTable(4, cover)
	if err != nil {
		t.Fatal(err)
	}
	var expanded []Cube
	for _, m := range []string{"1000", "1100", "1001", "1101"} {
		expanded = append(expanded, Cube{Inputs: m, Output: '1'})
	}
	tt2, err := CoverToTruthTable(4, expanded)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Equal(tt2) {
		t.Fatalf("dash expansion inconsistent: %s vs %s", tt, tt2)
	}
}

func TestModelStringContainsAllSections(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := randomNetwork(rng, "sec")
	text := ModelString(FromNetwork(net))
	for _, want := range []string{".model sec", ".inputs", ".outputs", ".names", ".end"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

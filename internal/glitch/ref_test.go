package glitch

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/netgen"
	"repro/internal/prob"
)

// refPropagate is the pre-rewrite propagation verbatim: collect distinct
// times into a map, sort them, rescan every fanin component list per
// time step. It is the bit-identity oracle for the k-way merge (the
// prob estimators it calls are themselves oracle-checked in that
// package's TestCharMatchesScalarReference).
func refPropagate(f *bitvec.TruthTable, ins []Waveform) Waveform {
	n := f.NumVars()
	if len(ins) != n {
		panic("glitch: fanin waveform count mismatch")
	}
	p := make([]float64, n)
	for i, w := range ins {
		p[i] = w.P
	}
	out := Waveform{P: prob.SignalProb(f, p)}

	var times []int
	seen := make(map[int]bool)
	for _, w := range ins {
		for _, c := range w.Comps {
			if !seen[c.Time] {
				seen[c.Time] = true
				times = append(times, c.Time)
			}
		}
	}
	if len(times) == 0 {
		return out
	}
	sort.Ints(times)

	s := make([]float64, n)
	for _, t := range times {
		for i, w := range ins {
			s[i] = 0
			for _, c := range w.Comps {
				if c.Time == t {
					s[i] = c.S
					break
				}
			}
		}
		a := prob.ChouRoyActivity(f, p, s)
		if a > 0 {
			out.Comps = append(out.Comps, Component{Time: t + 1, S: a})
		}
	}
	return out
}

func randomTable(rng *rand.Rand, n int) *bitvec.TruthTable {
	tt := bitvec.New(n)
	for m := 0; m < 1<<n; m++ {
		if rng.Intn(2) == 0 {
			tt.Set(uint(m), true)
		}
	}
	return tt
}

// randomWaveform draws a waveform with up to four components at
// non-decreasing times — repeats included, so the first-component-wins
// duplicate handling is exercised — plus occasional degenerate P.
func randomWaveform(rng *rand.Rand) Waveform {
	w := Waveform{P: rng.Float64()}
	if rng.Intn(6) == 0 {
		w.P = float64(rng.Intn(2))
	}
	t := 0
	for j := rng.Intn(5); j > 0; j-- {
		t += rng.Intn(3) // step 0 duplicates the previous time
		w.Comps = append(w.Comps, Component{Time: t, S: rng.Float64()})
	}
	return w
}

// TestPropagateMatchesScalarReference: for random functions and random
// fanin waveforms, the merged propagation must emit exactly the scalar
// rescan's components — same times, bit-identical activities — through
// both the package-level wrapper and a reused Estimator, cold and from
// the memo.
func TestPropagateMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	est := NewEstimator()
	check := func(trial int, label string, got, want Waveform) {
		t.Helper()
		if got.P != want.P {
			t.Fatalf("trial %d %s: P %v != scalar %v", trial, label, got.P, want.P)
		}
		if len(got.Comps) != len(want.Comps) {
			t.Fatalf("trial %d %s: %d components, scalar has %d", trial, label, len(got.Comps), len(want.Comps))
		}
		for k := range want.Comps {
			if got.Comps[k] != want.Comps[k] {
				t.Fatalf("trial %d %s: comp %d = %+v, scalar %+v", trial, label, k, got.Comps[k], want.Comps[k])
			}
		}
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		tt := randomTable(rng, n)
		ins := make([]Waveform, n)
		for i := range ins {
			ins[i] = randomWaveform(rng)
		}
		want := refPropagate(tt, ins)
		check(trial, "cold", est.Propagate(tt, ins), want)
		check(trial, "memo", est.Propagate(tt, ins), want)
		check(trial, "pooled", Propagate(tt, ins), want)
	}
}

// TestEstimateNetworkWarmPathAllocationFree pins the rewrite's headline
// property: once an Estimator has seen a network, re-estimating it
// allocates nothing — every waveform comes from the memo, every buffer
// is reused.
func TestEstimateNetworkWarmPathAllocationFree(t *testing.T) {
	e := NewEstimator()
	net := netgen.MultiplierNetwork(6)
	src := prob.DefaultSources()
	e.EstimateNetwork(net, src) // populate memo, caches, buffers
	allocs := testing.AllocsPerRun(50, func() {
		e.EstimateNetwork(net, src)
	})
	if allocs != 0 {
		t.Fatalf("warm EstimateNetwork allocates %.1f objects per call, want 0", allocs)
	}
}

// TestEstimatorReuseAcrossNetworks checks that one estimator instance
// (as pooled by the package-level wrappers) gives the same answers as
// fresh per-network estimation.
func TestEstimatorReuseAcrossNetworks(t *testing.T) {
	a := netgen.AdderNetwork(6)
	m := netgen.MultiplierNetwork(4)
	src := prob.DefaultSources()
	wantA := EstimateNetwork(a, src).TotalActivity(a)
	wantM := EstimateNetwork(m, src).TotalActivity(m)
	e := NewEstimator()
	for round := 0; round < 3; round++ {
		if got := e.EstimateNetwork(a, src).TotalActivity(a); got != wantA {
			t.Fatalf("round %d: adder activity %v != %v", round, got, wantA)
		}
		if got := e.EstimateNetwork(m, src).TotalActivity(m); got != wantM {
			t.Fatalf("round %d: multiplier activity %v != %v", round, got, wantM)
		}
	}
}

package glitch

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/netgen"
	"repro/internal/prob"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSourceWaveform(t *testing.T) {
	w := SourceWaveform(0.5, 0.5)
	if w.Settle() != 0 || !almost(w.Total(), 0.5, 0) || w.GlitchActivity() != 0 {
		t.Fatalf("unexpected source waveform %+v", w)
	}
	static := SourceWaveform(0.7, 0)
	if len(static.Comps) != 0 {
		t.Fatal("static source must have no components")
	}
}

func TestConstWaveform(t *testing.T) {
	c := ConstWaveform(true)
	if c.P != 1 || c.Total() != 0 {
		t.Fatalf("const waveform wrong: %+v", c)
	}
}

func TestPropagateBalancedInputsNoGlitch(t *testing.T) {
	// Two inputs both switching at time 0: the XOR output can only
	// switch at time 1 — a single functional transition, no glitches.
	ins := []Waveform{SourceWaveform(0.5, 0.5), SourceWaveform(0.5, 0.5)}
	out := Propagate(logic.TTXor2(), ins)
	if out.Settle() != 1 {
		t.Fatalf("settle = %d, want 1", out.Settle())
	}
	if g := out.GlitchActivity(); g != 0 {
		t.Fatalf("balanced paths should not glitch, got %v", g)
	}
	if !almost(out.Total(), 0.5, 1e-12) {
		t.Fatalf("xor activity = %v, want 0.5", out.Total())
	}
}

func TestPropagateUnbalancedInputsGlitch(t *testing.T) {
	// One input arrives at time 0, the other at time 3: the output can
	// switch at times 1 and 4. The time-4 transition is functional, the
	// time-1 one is a glitch — exactly the unbalanced-path mechanism the
	// paper's mux balancing targets.
	late := Waveform{P: 0.5, Comps: []Component{{Time: 3, S: 0.5}}}
	ins := []Waveform{SourceWaveform(0.5, 0.5), late}
	out := Propagate(logic.TTXor2(), ins)
	if out.Settle() != 4 {
		t.Fatalf("settle = %d, want 4", out.Settle())
	}
	if out.GlitchActivity() <= 0 {
		t.Fatal("unbalanced paths must produce glitch activity")
	}
	if len(out.Comps) != 2 {
		t.Fatalf("want 2 components, got %+v", out.Comps)
	}
	// Each single-input XOR toggle passes through with its activity.
	if !almost(out.Comps[0].S, 0.5, 1e-12) || !almost(out.Comps[1].S, 0.5, 1e-12) {
		t.Fatalf("xor passthrough activities wrong: %+v", out.Comps)
	}
}

func TestPropagateConstInputsKillActivity(t *testing.T) {
	// AND with a constant 0 never switches.
	ins := []Waveform{SourceWaveform(0.5, 0.5), ConstWaveform(false)}
	out := Propagate(logic.TTAnd2(), ins)
	if out.Total() != 0 {
		t.Fatalf("AND with const 0 should be static, got %+v", out)
	}
	if out.P != 0 {
		t.Fatalf("P should be 0, got %v", out.P)
	}
}

func TestPropagateTotalMatchesZeroDelayForSingleLevel(t *testing.T) {
	// For a gate whose inputs all arrive at the same time the timed
	// model must agree with the zero-delay Chou–Roy estimate.
	cases := map[string]*bitvec.TruthTable{
		"and":  logic.TTAnd2(),
		"or":   logic.TTOr2(),
		"xor3": logic.TTXor3(),
		"maj3": logic.TTMaj3(),
	}
	for name, tt := range cases {
		n := tt.NumVars()
		ins := make([]Waveform, n)
		p := make([]float64, n)
		s := make([]float64, n)
		for i := range ins {
			ins[i] = SourceWaveform(0.5, 0.5)
			p[i], s[i] = 0.5, 0.5
		}
		timed := Propagate(tt, ins).Total()
		flat := prob.ChouRoyActivity(tt, p, s)
		if !almost(timed, flat, 1e-12) {
			t.Fatalf("%s: timed %v != flat %v", name, timed, flat)
		}
	}
}

func TestEstimateNetworkRippleChainGlitches(t *testing.T) {
	// A ripple-carry adder has progressively later carries: high-order
	// sum bits glitch. The glitch estimate must be strictly positive and
	// grow with width.
	e8 := EstimateNetwork(netgen.AdderNetwork(8), prob.DefaultSources())
	e4 := EstimateNetwork(netgen.AdderNetwork(4), prob.DefaultSources())
	g8 := e8.TotalGlitch(netgen.AdderNetwork(8))
	g4 := e4.TotalGlitch(netgen.AdderNetwork(4))
	_ = g4
	if g8 <= 0 {
		t.Fatal("ripple adder should glitch")
	}
	net8 := netgen.AdderNetwork(8)
	net4 := netgen.AdderNetwork(4)
	ge8 := EstimateNetwork(net8, prob.DefaultSources()).TotalGlitch(net8)
	ge4 := EstimateNetwork(net4, prob.DefaultSources()).TotalGlitch(net4)
	if ge8 <= ge4 {
		t.Fatalf("glitch should grow with adder width: w4=%v w8=%v", ge4, ge8)
	}
}

func TestEstimateNetworkTotalsDecompose(t *testing.T) {
	net := netgen.MultiplierNetwork(4)
	e := EstimateNetwork(net, prob.DefaultSources())
	total := e.TotalActivity(net)
	fn := e.TotalFunctional(net)
	gl := e.TotalGlitch(net)
	if !almost(total, fn+gl, 1e-9) {
		t.Fatalf("total %v != functional %v + glitch %v", total, fn, gl)
	}
	if gl <= 0 {
		t.Fatal("array multiplier should glitch")
	}
}

func TestMultiplierGlitchesMoreThanAdder(t *testing.T) {
	// Per paper motivation: multipliers are glitch hot spots. The array
	// multiplier must produce far more absolute glitch activity than the
	// adder of the same width.
	add := netgen.AdderNetwork(8)
	mul := netgen.MultiplierNetwork(8)
	ea := EstimateNetwork(add, prob.DefaultSources())
	em := EstimateNetwork(mul, prob.DefaultSources())
	if em.TotalGlitch(mul) <= 2*ea.TotalGlitch(add) {
		t.Fatalf("multiplier glitch (%v) should far exceed adder's (%v)",
			em.TotalGlitch(mul), ea.TotalGlitch(add))
	}
}

func TestMuxTreeDepthAffectsGlitch(t *testing.T) {
	// Bigger muxes create deeper, less balanced structures in front of
	// the FU: a (8,1) mux split should glitch more than (4,4)... at the
	// level of the whole partial datapath the imbalance matters. Verify
	// the estimator sees a difference between balanced and unbalanced
	// mux pairs with the same total inputs.
	bal := netgen.PartialDatapathNetwork(netgen.FUAdd, 4, 4, 8)
	unbal := netgen.PartialDatapathNetwork(netgen.FUAdd, 7, 1, 8)
	eb := EstimateNetwork(bal, prob.DefaultSources())
	eu := EstimateNetwork(unbal, prob.DefaultSources())
	balSA := eb.TotalActivity(bal)
	unbalSA := eu.TotalActivity(unbal)
	if balSA >= unbalSA {
		t.Fatalf("balanced muxes should have lower SA: balanced=%v unbalanced=%v", balSA, unbalSA)
	}
}

func BenchmarkEstimateGlitchMult8(b *testing.B) {
	net := netgen.MultiplierNetwork(8)
	src := prob.DefaultSources()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EstimateNetwork(net, src)
	}
}

func BenchmarkEstimateGlitchPartialDatapath(b *testing.B) {
	net := netgen.PartialDatapathNetwork(netgen.FUMult, 6, 3, 8)
	src := prob.DefaultSources()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EstimateNetwork(net, src)
	}
}

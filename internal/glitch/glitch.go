// Package glitch implements the unit-delay, discrete-time switching
// model the paper adopts from GlitchMap [6] (§4): signal transitions
// occur only at integer time steps; a gate (or LUT) output may switch at
// time t+1 whenever any of its inputs switches at time t; the transition
// at the settling time D is the functional transition and every earlier
// one is a glitch. Per-time-step activities are computed with the
// Chou–Roy simultaneous-switching model (Eq. 2) and summed into an
// effective switching activity.
package glitch

import (
	"sort"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/prob"
)

// Component is one discrete-time activity contribution: the signal
// toggles at time Time with probability S per clock cycle.
type Component struct {
	Time int
	S    float64
}

// Waveform is the timed switching profile of one signal: its settled
// signal probability and its activity components sorted by time.
type Waveform struct {
	P     float64
	Comps []Component
}

// SourceWaveform models a combinational source (primary input or
// register output) that presents one potential transition at time 0.
func SourceWaveform(p, s float64) Waveform {
	if s == 0 {
		return Waveform{P: p}
	}
	return Waveform{P: p, Comps: []Component{{Time: 0, S: s}}}
}

// ConstWaveform models a constant driver: no transitions ever.
func ConstWaveform(v bool) Waveform {
	p := 0.0
	if v {
		p = 1.0
	}
	return Waveform{P: p}
}

// Total returns the effective switching activity: the sum over all time
// steps. With glitching this may exceed 1 transition per cycle.
func (w Waveform) Total() float64 {
	t := 0.0
	for _, c := range w.Comps {
		t += c.S
	}
	return t
}

// Settle returns the functional settling time: the last time step at
// which the signal may still switch (0 for static signals).
func (w Waveform) Settle() int {
	if len(w.Comps) == 0 {
		return 0
	}
	return w.Comps[len(w.Comps)-1].Time
}

// Functional returns the activity of the functional (final) transition.
func (w Waveform) Functional() float64 {
	if len(w.Comps) == 0 {
		return 0
	}
	return w.Comps[len(w.Comps)-1].S
}

// GlitchActivity returns the summed activity of the spurious (non-final)
// transitions.
func (w Waveform) GlitchActivity() float64 {
	return w.Total() - w.Functional()
}

// Propagate computes the output waveform of a unit-delay gate or LUT
// with local function f whose fanins carry the given waveforms. For each
// time step t at which at least one input may switch, the output may
// switch at t+1 with the Chou–Roy activity computed from the inputs'
// component activities at t. The settled output probability comes from
// the settled input probabilities.
func Propagate(f *bitvec.TruthTable, ins []Waveform) Waveform {
	n := f.NumVars()
	if len(ins) != n {
		panic("glitch: fanin waveform count mismatch")
	}
	p := make([]float64, n)
	for i, w := range ins {
		p[i] = w.P
	}
	out := Waveform{P: prob.SignalProb(f, p)}

	// Gather the distinct input transition times.
	var times []int
	seen := make(map[int]bool)
	for _, w := range ins {
		for _, c := range w.Comps {
			if !seen[c.Time] {
				seen[c.Time] = true
				times = append(times, c.Time)
			}
		}
	}
	if len(times) == 0 {
		return out
	}
	sort.Ints(times)

	s := make([]float64, n)
	for _, t := range times {
		for i, w := range ins {
			s[i] = 0
			for _, c := range w.Comps {
				if c.Time == t {
					s[i] = c.S
					break
				}
			}
		}
		a := prob.ChouRoyActivity(f, p, s)
		if a > 0 {
			out.Comps = append(out.Comps, Component{Time: t + 1, S: a})
		}
	}
	return out
}

// Estimate holds a waveform per network node.
type Estimate struct {
	Waves []Waveform
}

// EstimateNetwork propagates waveforms through every gate of the network
// under the unit-delay model. Sources follow src (paper: P = s = 0.5).
func EstimateNetwork(net *logic.Network, src prob.SourceValues) Estimate {
	e := Estimate{Waves: make([]Waveform, net.NumNodes())}
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		switch nd.Kind {
		case logic.KindInput:
			e.Waves[id] = SourceWaveform(src.InputP, src.InputS)
		case logic.KindLatchOut:
			e.Waves[id] = SourceWaveform(src.LatchP, src.LatchS)
		case logic.KindConst:
			e.Waves[id] = ConstWaveform(nd.ConstVal)
		case logic.KindGate:
			ins := make([]Waveform, len(nd.Fanins))
			for i, fid := range nd.Fanins {
				ins[i] = e.Waves[fid]
			}
			e.Waves[id] = Propagate(nd.Func, ins)
		}
	}
	return e
}

// TotalActivity sums effective switching activity over gate nodes
// (paper Eq. 3 at the gate level).
func (e Estimate) TotalActivity(net *logic.Network) float64 {
	t := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			t += e.Waves[nd.ID].Total()
		}
	}
	return t
}

// TotalGlitch sums glitch (spurious-transition) activity over gates.
func (e Estimate) TotalGlitch(net *logic.Network) float64 {
	t := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			t += e.Waves[nd.ID].GlitchActivity()
		}
	}
	return t
}

// TotalFunctional sums functional-transition activity over gates.
func (e Estimate) TotalFunctional(net *logic.Network) float64 {
	t := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			t += e.Waves[nd.ID].Functional()
		}
	}
	return t
}

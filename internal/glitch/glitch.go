// Package glitch implements the unit-delay, discrete-time switching
// model the paper adopts from GlitchMap [6] (§4): signal transitions
// occur only at integer time steps; a gate (or LUT) output may switch at
// time t+1 whenever any of its inputs switches at time t; the transition
// at the settling time D is the functional transition and every earlier
// one is a glitch. Per-time-step activities are computed with the
// Chou–Roy simultaneous-switching model (Eq. 2) and summed into an
// effective switching activity.
package glitch

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/prob"
)

// Component is one discrete-time activity contribution: the signal
// toggles at time Time with probability S per clock cycle.
type Component struct {
	Time int
	S    float64
}

// Waveform is the timed switching profile of one signal: its settled
// signal probability and its activity components sorted by time.
type Waveform struct {
	P     float64
	Comps []Component
}

// SourceWaveform models a combinational source (primary input or
// register output) that presents one potential transition at time 0.
func SourceWaveform(p, s float64) Waveform {
	if s == 0 {
		return Waveform{P: p}
	}
	return Waveform{P: p, Comps: []Component{{Time: 0, S: s}}}
}

// ConstWaveform models a constant driver: no transitions ever.
func ConstWaveform(v bool) Waveform {
	p := 0.0
	if v {
		p = 1.0
	}
	return Waveform{P: p}
}

// Total returns the effective switching activity: the sum over all time
// steps. With glitching this may exceed 1 transition per cycle.
func (w Waveform) Total() float64 {
	t := 0.0
	for _, c := range w.Comps {
		t += c.S
	}
	return t
}

// Settle returns the functional settling time: the last time step at
// which the signal may still switch (0 for static signals).
func (w Waveform) Settle() int {
	if len(w.Comps) == 0 {
		return 0
	}
	return w.Comps[len(w.Comps)-1].Time
}

// Functional returns the activity of the functional (final) transition.
func (w Waveform) Functional() float64 {
	if len(w.Comps) == 0 {
		return 0
	}
	return w.Comps[len(w.Comps)-1].S
}

// GlitchActivity returns the summed activity of the spurious (non-final)
// transitions.
func (w Waveform) GlitchActivity() float64 {
	return w.Total() - w.Functional()
}

// maxMemoEntries bounds an Estimator's propagation memo. The memo is a
// cross-call cache keyed by full waveform content, so a long-lived
// pooled estimator characterizing many unrelated networks could grow
// without bound; past the cap it is simply dropped and rebuilt.
const maxMemoEntries = 1 << 16

// srcWave is one cached source waveform (see Estimator.sourceWave).
type srcWave struct {
	p, s float64
	w    Waveform
}

// Estimator carries the reusable scratch and memoization state for
// repeated waveform propagation. A fresh zero-cost instance comes from
// NewEstimator; one estimator is NOT safe for concurrent use (the
// package-level Propagate/EstimateNetwork functions draw from a pool
// and are).
//
// Waveforms returned by an estimator share their Comps slices with its
// internal memo — callers must treat them as read-only, which every
// consumer in this repository already does.
type Estimator struct {
	p, s  []float64 // settled fanin probabilities / per-step activities
	pos   []int     // k-way merge cursor per fanin
	ins   []Waveform
	kbuf  []byte
	sc    *prob.Scratch
	memo  map[string]Waveform
	srcs  []srcWave
	waves []Waveform // reusable node-indexed output buffer
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{sc: prob.NewScratch(), memo: make(map[string]Waveform)}
}

// estPool backs the package-level entry points.
var estPool = sync.Pool{New: func() any { return NewEstimator() }}

// growVecs sizes the per-fanin scratch for n inputs.
func (e *Estimator) growVecs(n int) {
	if cap(e.p) < n {
		e.p = make([]float64, n)
		e.s = make([]float64, n)
		e.pos = make([]int, n)
	} else {
		e.p, e.s, e.pos = e.p[:n], e.s[:n], e.pos[:n]
	}
}

// waveKey renders (function identity, fanin waveforms) into the
// estimator's key buffer. Float bit patterns keep the key exact: a memo
// hit returns precisely what recomputation would.
func (e *Estimator) waveKey(id uint64, ins []Waveform) []byte {
	b := e.kbuf[:0]
	b = binary.LittleEndian.AppendUint64(b, id)
	for _, w := range ins {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w.P))
		b = binary.LittleEndian.AppendUint64(b, uint64(len(w.Comps)))
		for _, c := range w.Comps {
			b = binary.LittleEndian.AppendUint64(b, uint64(c.Time))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.S))
		}
	}
	e.kbuf = b
	return b
}

// Propagate computes the output waveform of a unit-delay gate or LUT
// with local function f whose fanins carry the given waveforms. For each
// time step t at which at least one input may switch, the output may
// switch at t+1 with the Chou–Roy activity computed from the inputs'
// component activities at t. The settled output probability comes from
// the settled input probabilities.
//
// The returned waveform may share storage with the estimator's memo;
// treat Comps as read-only.
func (e *Estimator) Propagate(f *bitvec.TruthTable, ins []Waveform) Waveform {
	return e.propagate(prob.Characterize(f), ins)
}

func (e *Estimator) propagate(c *prob.Char, ins []Waveform) Waveform {
	if len(ins) != c.NumVars() {
		panic("glitch: fanin waveform count mismatch")
	}
	key := e.waveKey(c.ID(), ins)
	if w, ok := e.memo[string(key)]; ok {
		return w
	}
	w := e.compute(c, ins)
	if len(e.memo) >= maxMemoEntries {
		e.memo = make(map[string]Waveform)
	}
	e.memo[string(key)] = w
	return w
}

// compute is the uncached propagation: a k-way pointer merge over the
// already-sorted fanin component lists replaces the historical
// map-collect + sort + per-time rescan. The merge visits the same
// ascending distinct times and gathers the same per-input activities
// (first component at each time wins), so the emitted components are
// bit-identical to the old code's.
func (e *Estimator) compute(c *prob.Char, ins []Waveform) Waveform {
	n := len(ins)
	e.growVecs(n)
	total := 0
	for i, w := range ins {
		e.p[i] = w.P
		e.pos[i] = 0
		total += len(w.Comps)
	}
	py := c.SignalProb(e.p, e.sc)
	out := Waveform{P: py}
	if total == 0 {
		return out
	}
	var comps []Component
	for {
		// Next distinct transition time = min over fanin cursors.
		t, any := 0, false
		for i, w := range ins {
			if e.pos[i] < len(w.Comps) {
				if ct := w.Comps[e.pos[i]].Time; !any || ct < t {
					t, any = ct, true
				}
			}
		}
		if !any {
			break
		}
		// Gather per-input activity at t: the first component at t
		// supplies S (matching the historical first-match scan), and
		// the cursor advances past any duplicates.
		for i, w := range ins {
			e.s[i] = 0
			j := e.pos[i]
			if j < len(w.Comps) && w.Comps[j].Time == t {
				e.s[i] = w.Comps[j].S
				for j < len(w.Comps) && w.Comps[j].Time == t {
					j++
				}
				e.pos[i] = j
			}
		}
		// P(y) depends only on settled probabilities — one evaluation
		// serves every time step.
		a := c.ChouRoyFromProb(py, e.p, e.s, e.sc)
		if a > 0 {
			comps = append(comps, Component{Time: t + 1, S: a})
		}
	}
	out.Comps = comps
	return out
}

// sourceWave returns the (cached) waveform of a combinational source.
// A network presents at most a couple of distinct (p, s) source pairs,
// so a tiny linear cache removes the per-source allocation.
func (e *Estimator) sourceWave(p, s float64) Waveform {
	for _, sw := range e.srcs {
		if sw.p == p && sw.s == s {
			return sw.w
		}
	}
	w := SourceWaveform(p, s)
	e.srcs = append(e.srcs, srcWave{p: p, s: s, w: w})
	return w
}

// Propagate is the package-level convenience wrapper over a pooled
// Estimator; see Estimator.Propagate. The returned waveform's Comps
// must be treated as read-only.
func Propagate(f *bitvec.TruthTable, ins []Waveform) Waveform {
	e := estPool.Get().(*Estimator)
	w := e.Propagate(f, ins)
	estPool.Put(e)
	return w
}

// Estimate holds a waveform per network node.
type Estimate struct {
	Waves []Waveform
}

// EstimateNetwork propagates waveforms through every gate of the
// network under the unit-delay model, reusing the estimator's buffers:
// warm calls allocate nothing. The returned estimate shares the
// estimator's node-indexed buffer and is valid until the next
// EstimateNetwork call on the same estimator. Sources follow src
// (paper: P = s = 0.5).
func (e *Estimator) EstimateNetwork(net *logic.Network, src prob.SourceValues) Estimate {
	nn := net.NumNodes()
	if cap(e.waves) < nn {
		e.waves = make([]Waveform, nn)
	} else {
		e.waves = e.waves[:nn]
		for i := range e.waves {
			e.waves[i] = Waveform{}
		}
	}
	waves := e.waves
	// Ascending node IDs are topological (Network.TopoOrder is the
	// identity permutation); iterating directly keeps the warm path
	// allocation-free.
	for id := 0; id < nn; id++ {
		nd := net.Node(id)
		switch nd.Kind {
		case logic.KindInput:
			waves[id] = e.sourceWave(src.InputP, src.InputS)
		case logic.KindLatchOut:
			waves[id] = e.sourceWave(src.LatchP, src.LatchS)
		case logic.KindConst:
			waves[id] = ConstWaveform(nd.ConstVal)
		case logic.KindGate:
			n := len(nd.Fanins)
			if cap(e.ins) < n {
				e.ins = make([]Waveform, n)
			}
			ins := e.ins[:n]
			for i, fid := range nd.Fanins {
				ins[i] = waves[fid]
			}
			waves[id] = e.propagate(prob.Characterize(nd.Func), ins)
		}
	}
	return Estimate{Waves: waves}
}

// EstimateNetwork is the package-level wrapper: it runs a pooled
// estimator and detaches the per-node slice so the result outlives the
// estimator's reuse. Waveform Comps remain read-only shared storage.
func EstimateNetwork(net *logic.Network, src prob.SourceValues) Estimate {
	e := estPool.Get().(*Estimator)
	res := e.EstimateNetwork(net, src)
	waves := make([]Waveform, len(res.Waves))
	copy(waves, res.Waves)
	estPool.Put(e)
	return Estimate{Waves: waves}
}

// EstimateNetworkJobs is EstimateNetwork with the per-gate propagation
// fanned out over a worker pool, level by level. Within a level every
// gate's waveform is a pure function of lower-level waveforms (each
// worker's estimator memo is exact — a hit returns precisely what
// recomputation would), and all writes are slot-indexed, so the result
// is bit-identical to the serial estimator at any worker count.
// jobs <= 1 falls back to the serial path.
func EstimateNetworkJobs(net *logic.Network, src prob.SourceValues, jobs int) Estimate {
	nn := net.NumNodes()
	if jobs <= 1 || nn == 0 {
		return EstimateNetwork(net, src)
	}
	waves := make([]Waveform, nn)
	levels := net.Levels()
	maxLvl := 0
	for _, l := range levels {
		if l > maxLvl {
			maxLvl = l
		}
	}
	byLevel := make([][]int32, maxLvl+1)
	for id := 0; id < nn; id++ {
		if net.Node(id).Kind == logic.KindGate {
			byLevel[levels[id]] = append(byLevel[levels[id]], int32(id))
		}
	}
	// Sources are cheap; fill them serially.
	for id := 0; id < nn; id++ {
		switch nd := net.Node(id); nd.Kind {
		case logic.KindInput:
			waves[id] = SourceWaveform(src.InputP, src.InputS)
		case logic.KindLatchOut:
			waves[id] = SourceWaveform(src.LatchP, src.LatchS)
		case logic.KindConst:
			waves[id] = ConstWaveform(nd.ConstVal)
		}
	}
	workers := make([]*Estimator, jobs)
	for i := range workers {
		workers[i] = NewEstimator()
	}
	for _, ids := range byLevel {
		if len(ids) == 0 {
			continue
		}
		nw := jobs
		if nw > len(ids) {
			nw = len(ids)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(nw)
		for wi := 0; wi < nw; wi++ {
			go func(e *Estimator) {
				defer wg.Done()
				var ins []Waveform
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ids) {
						return
					}
					nd := net.Node(int(ids[i]))
					ins = ins[:0]
					for _, f := range nd.Fanins {
						ins = append(ins, waves[f])
					}
					waves[nd.ID] = e.propagate(prob.Characterize(nd.Func), ins)
				}
			}(workers[wi])
		}
		wg.Wait()
	}
	return Estimate{Waves: waves}
}

// TotalActivity sums effective switching activity over gate nodes
// (paper Eq. 3 at the gate level).
func (e Estimate) TotalActivity(net *logic.Network) float64 {
	t := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			t += e.Waves[nd.ID].Total()
		}
	}
	return t
}

// TotalGlitch sums glitch (spurious-transition) activity over gates.
func (e Estimate) TotalGlitch(net *logic.Network) float64 {
	t := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			t += e.Waves[nd.ID].GlitchActivity()
		}
	}
	return t
}

// TotalFunctional sums functional-transition activity over gates.
func (e Estimate) TotalFunctional(net *logic.Network) float64 {
	t := 0.0
	for _, nd := range net.Nodes {
		if nd.Kind == logic.KindGate {
			t += e.Waves[nd.ID].Functional()
		}
	}
	return t
}

package logic

import "sort"

// LatchCones describes the latch D-input cones of a network — the only
// logic that stands between one clock cycle's latch state and the
// next. Both slices are indexed like Network.Latches.
type LatchCones struct {
	// Gates lists, per latch, the gate IDs in the transitive fanin of
	// its D pin, in ascending (topological) order.
	Gates [][]int
	// Deps lists, per latch, the indices of latches whose Q outputs the
	// cone reads — the latch dependency graph. A pipeline's graph is
	// acyclic; FSM-style feedback (a latch reachable from its own Q)
	// makes it cyclic.
	Deps [][]int
}

// LatchCones computes the D-input cone of every latch by depth-first
// traversal from the D pin through gate fanins, stopping at inputs,
// constants, and latch outputs.
func (n *Network) LatchCones() LatchCones {
	numL := len(n.Latches)
	c := LatchCones{Gates: make([][]int, numL), Deps: make([][]int, numL)}
	latchIdx := make([]int, n.NumNodes())
	for i := range latchIdx {
		latchIdx[i] = -1
	}
	for i, q := range n.Latches {
		latchIdx[q] = i
	}
	seen := make([]int, n.NumNodes())
	for i := range seen {
		seen[i] = -1
	}
	var stack []int
	for i, q := range n.Latches {
		visit := func(id int) {
			if seen[id] != i {
				seen[id] = i
				stack = append(stack, id)
			}
		}
		visit(n.Node(q).LatchInput)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nd := n.Node(id)
			switch nd.Kind {
			case KindGate:
				c.Gates[i] = append(c.Gates[i], id)
				for _, f := range nd.Fanins {
					visit(f)
				}
			case KindLatchOut:
				c.Deps[i] = append(c.Deps[i], latchIdx[id])
			}
		}
		sort.Ints(c.Gates[i])
	}
	return c
}

package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestOptimizeConstantFolding(t *testing.T) {
	net := NewNetwork("cf")
	a := net.AddInput("a")
	zero := net.AddConst("z", false)
	and := net.AddGate("and", TTAnd2(), a, zero) // always 0
	or := net.AddGate("or", TTOr2(), and, a)     // collapses to a
	net.MarkOutput("y", or)

	opt, remap := Optimize(net)
	if err := opt.Check(); err != nil {
		t.Fatal(err)
	}
	// The AND folds to constant 0; the OR becomes a buffer of a and
	// collapses; the output is driven directly by the input.
	if opt.NumGates() != 0 {
		t.Fatalf("expected full collapse, got %d gates", opt.NumGates())
	}
	if remap[or] != remap[a] {
		t.Fatal("OR should collapse onto input a")
	}
	for m := 0; m < 2; m++ {
		in := []bool{m == 1}
		if net.OutputValues(net.Eval(in, nil))[0] != opt.OutputValues(opt.Eval(in, nil))[0] {
			t.Fatal("optimization changed function")
		}
	}
}

func TestOptimizeRedundantInput(t *testing.T) {
	// A 3-input gate that ignores its middle input.
	net := NewNetwork("ri")
	a := net.AddInput("a")
	b := net.AddInput("b")
	c := net.AddInput("c")
	fn := bitvec.FromFunc(3, func(m uint) bool { return (m&1 != 0) != (m&4 != 0) }) // a xor c
	g := net.AddGate("g", fn, a, b, c)
	net.MarkOutput("y", g)

	opt, remap := Optimize(net)
	nd := opt.Node(remap[g])
	if len(nd.Fanins) != 2 {
		t.Fatalf("redundant input kept: %d fanins", len(nd.Fanins))
	}
}

func TestOptimizeStructuralHashing(t *testing.T) {
	net := NewNetwork("sh")
	a := net.AddInput("a")
	b := net.AddInput("b")
	x1 := net.AddGate("x1", TTXor2(), a, b)
	x2 := net.AddGate("x2", TTXor2(), a, b) // duplicate
	o := net.AddGate("o", TTOr2(), x1, x2)  // or(x, x) -> buffer -> collapse
	net.MarkOutput("y", o)

	opt, remap := Optimize(net)
	if opt.NumGates() != 1 {
		t.Fatalf("strash should leave a single XOR, got %d gates", opt.NumGates())
	}
	if remap[x1] != remap[x2] {
		t.Fatal("duplicates not merged")
	}
}

func TestOptimizeKeepsLatches(t *testing.T) {
	net := NewNetwork("seq")
	q := net.AddLatch("q", true)
	inv := net.AddGate("inv", TTNot(), q)
	net.ConnectLatch(q, inv)
	net.MarkOutput("y", q)

	opt, _ := Optimize(net)
	if len(opt.Latches) != 1 || opt.NumGates() != 1 {
		t.Fatalf("sequential structure damaged: %s", opt.Stats())
	}
	if !opt.InitialLatchState()[0] {
		t.Fatal("latch init lost")
	}
	// Two-cycle behaviour preserved.
	st := opt.InitialLatchState()
	v1 := opt.Eval(nil, st)
	if !opt.OutputValues(v1)[0] {
		t.Fatal("cycle 0 wrong")
	}
	st = opt.NextLatchState(v1)
	if opt.OutputValues(opt.Eval(nil, st))[0] {
		t.Fatal("cycle 1 wrong")
	}
}

// TestOptimizeEquivalenceRandom: optimization never changes the function.
func TestOptimizeEquivalenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := NewNetwork("rand")
		pool := []int{}
		for i := 0; i < 4; i++ {
			pool = append(pool, net.AddInput(""))
		}
		pool = append(pool, net.AddConst("", rng.Intn(2) == 0))
		fns := []*bitvec.TruthTable{TTAnd2(), TTOr2(), TTXor2(), TTNand2(), TTNot(), TTMux2(), TTMaj3()}
		for i := 0; i < 15; i++ {
			fn := fns[rng.Intn(len(fns))]
			fanins := make([]int, fn.NumVars())
			for j := range fanins {
				fanins[j] = pool[rng.Intn(len(pool))]
			}
			pool = append(pool, net.AddGate("", fn, fanins...))
		}
		net.MarkOutput("y", pool[len(pool)-1])
		net.MarkOutput("z", pool[len(pool)-2])

		opt, _ := Optimize(net)
		if opt.Check() != nil {
			return false
		}
		if opt.NumGates() > net.NumGates() {
			return false // optimization must never grow the netlist
		}
		for m := 0; m < 16; m++ {
			in := []bool{m&1 != 0, m&2 != 0, m&4 != 0, m&8 != 0}
			o1 := net.OutputValues(net.Eval(in, nil))
			o2 := opt.OutputValues(opt.Eval(in, nil))
			for i := range o1 {
				if o1[i] != o2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net := NewNetwork("idem")
	var pool []int
	for i := 0; i < 4; i++ {
		pool = append(pool, net.AddInput(""))
	}
	for i := 0; i < 12; i++ {
		fn := []*bitvec.TruthTable{TTAnd2(), TTXor2(), TTNot()}[rng.Intn(3)]
		fanins := make([]int, fn.NumVars())
		for j := range fanins {
			fanins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, net.AddGate("", fn, fanins...))
	}
	net.MarkOutput("y", pool[len(pool)-1])
	once, _ := Optimize(net)
	twice, _ := Optimize(once)
	if twice.NumGates() != once.NumGates() {
		t.Fatalf("not idempotent: %d then %d gates", once.NumGates(), twice.NumGates())
	}
}

package logic

import (
	"reflect"
	"testing"

	"repro/internal/bitvec"
)

// TestLatchCones covers the cone/dependency analysis on a two-stage
// structure: in -> g0 -> L0 -> g1 -> L1, plus a latch fed directly by
// another latch's Q (no gates in its cone).
func TestLatchCones(t *testing.T) {
	net := NewNetwork("cones")
	in := net.AddInput("in")
	q0 := net.AddLatch("q0", false)
	q1 := net.AddLatch("q1", false)
	q2 := net.AddLatch("q2", false)
	buf := bitvec.FromFunc(1, func(m uint) bool { return m == 1 })
	g0 := net.AddGate("g0", buf, in)
	g1 := net.AddGate("g1", buf, q0)
	net.ConnectLatch(q0, g0)
	net.ConnectLatch(q1, g1)
	net.ConnectLatch(q2, q1)
	net.MarkOutput("out", q2)

	c := net.LatchCones()
	if want := [][]int{{g0}, {g1}, nil}; !reflect.DeepEqual(c.Gates, want) {
		t.Errorf("Gates = %v, want %v", c.Gates, want)
	}
	if want := [][]int{nil, {0}, {1}}; !reflect.DeepEqual(c.Deps, want) {
		t.Errorf("Deps = %v, want %v", c.Deps, want)
	}
}

// TestLatchConesSharedGate: one gate feeding two latch D pins shows up
// in both cones, and a self-loop (q -> q) reports the self dependency.
func TestLatchConesSharedGate(t *testing.T) {
	net := NewNetwork("shared")
	in := net.AddInput("in")
	qa := net.AddLatch("qa", false)
	qb := net.AddLatch("qb", false)
	qc := net.AddLatch("qc", false)
	and := bitvec.FromFunc(2, func(m uint) bool { return m == 3 })
	g := net.AddGate("g", and, in, qc)
	net.ConnectLatch(qa, g)
	net.ConnectLatch(qb, g)
	net.ConnectLatch(qc, qc)
	net.MarkOutput("out", g)

	c := net.LatchCones()
	if want := [][]int{{g}, {g}, nil}; !reflect.DeepEqual(c.Gates, want) {
		t.Errorf("Gates = %v, want %v", c.Gates, want)
	}
	if want := [][]int{{2}, {2}, {2}}; !reflect.DeepEqual(c.Deps, want) {
		t.Errorf("Deps = %v, want %v", c.Deps, want)
	}
}

package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

// buildFullAdder creates a 1-bit full adder network for reuse in tests.
func buildFullAdder() (*Network, int, int) {
	n := NewNetwork("fa")
	a := n.AddInput("a")
	b := n.AddInput("b")
	cin := n.AddInput("cin")
	sum := n.AddGate("sum", TTXor3(), a, b, cin)
	cout := n.AddGate("cout", TTMaj3(), a, b, cin)
	n.MarkOutput("sum", sum)
	n.MarkOutput("cout", cout)
	return n, sum, cout
}

func TestFullAdderEval(t *testing.T) {
	n, _, _ := buildFullAdder()
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		in := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
		val := n.Eval(in, nil)
		out := n.OutputValues(val)
		ones := (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1)
		if out[0] != (ones%2 == 1) {
			t.Fatalf("sum wrong for inputs %03b", m)
		}
		if out[1] != (ones >= 2) {
			t.Fatalf("cout wrong for inputs %03b", m)
		}
	}
}

func TestLevelsAndDepth(t *testing.T) {
	n := NewNetwork("chain")
	x := n.AddInput("x")
	cur := x
	for i := 0; i < 5; i++ {
		cur = n.AddGate("", TTNot(), cur)
	}
	n.MarkOutput("y", cur)
	lv := n.Levels()
	if lv[x] != 0 {
		t.Fatalf("input level = %d, want 0", lv[x])
	}
	if lv[cur] != 5 {
		t.Fatalf("chain end level = %d, want 5", lv[cur])
	}
	if d := n.Depth(); d != 5 {
		t.Fatalf("depth = %d, want 5", d)
	}
}

func TestLatchRoundTrip(t *testing.T) {
	// Toggle flip-flop: q' = NOT q.
	n := NewNetwork("toggle")
	q := n.AddLatch("q", false)
	d := n.AddGate("d", TTNot(), q)
	n.ConnectLatch(q, d)
	n.MarkOutput("q", q)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	st := n.InitialLatchState()
	seq := make([]bool, 0, 4)
	for cyc := 0; cyc < 4; cyc++ {
		val := n.Eval(nil, st)
		seq = append(seq, n.OutputValues(val)[0])
		st = n.NextLatchState(val)
	}
	want := []bool{false, true, false, true}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("toggle sequence %v, want %v", seq, want)
		}
	}
}

func TestCheckCatchesUnconnectedLatch(t *testing.T) {
	n := NewNetwork("bad")
	n.AddLatch("q", false)
	if err := n.Check(); err == nil {
		t.Fatal("expected Check to fail for unconnected latch")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	n := NewNetwork("dup")
	n.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	n.AddInput("a")
}

func TestGateArityMismatchPanics(t *testing.T) {
	n := NewNetwork("bad")
	a := n.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	n.AddGate("g", TTAnd2(), a) // 2-var function, 1 fanin
}

func TestFanoutCounts(t *testing.T) {
	n, sum, cout := buildFullAdder()
	fo := n.FanoutCounts()
	a, _ := n.FindNode("a")
	if fo[a] != 2 {
		t.Fatalf("fanout of a = %d, want 2", fo[a])
	}
	if fo[sum] != 1 || fo[cout] != 1 {
		t.Fatalf("output driver fanouts = %d,%d, want 1,1", fo[sum], fo[cout])
	}
	adj := n.Fanouts()
	if len(adj[a]) != 2 {
		t.Fatalf("fanout adjacency of a = %v, want 2 entries", adj[a])
	}
}

func TestStats(t *testing.T) {
	n, _, _ := buildFullAdder()
	s := n.Stats()
	if s.Inputs != 3 || s.Outputs != 2 || s.Gates != 2 || s.Depth != 1 || s.MaxFanin != 3 {
		t.Fatalf("unexpected stats: %s", s)
	}
}

func TestSweepDangling(t *testing.T) {
	n := NewNetwork("sweep")
	a := n.AddInput("a")
	b := n.AddInput("b")
	used := n.AddGate("used", TTAnd2(), a, b)
	n.AddGate("dead", TTOr2(), a, b)
	deadChain := n.AddGate("dead2", TTNot(), a)
	n.AddGate("dead3", TTNot(), deadChain)
	n.MarkOutput("y", used)

	swept, remap := n.SweepDangling()
	if err := swept.Check(); err != nil {
		t.Fatal(err)
	}
	if swept.NumGates() != 1 {
		t.Fatalf("swept gates = %d, want 1", swept.NumGates())
	}
	if remap[used] < 0 {
		t.Fatal("live gate was removed")
	}
	if _, ok := swept.FindNode("dead"); ok {
		t.Fatal("dead gate survived sweep")
	}
	// Functional equivalence on all input vectors.
	for m := 0; m < 4; m++ {
		in := []bool{m&1 != 0, m&2 != 0}
		if n.OutputValues(n.Eval(in, nil))[0] != swept.OutputValues(swept.Eval(in, nil))[0] {
			t.Fatalf("sweep changed function at input %02b", m)
		}
	}
}

// TestRandomNetworkEvalAgainstTruthTable builds random 4-input single-output
// networks and checks Eval against a flattened truth-table computation.
func TestRandomNetworkEvalAgainstTruthTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork("rand")
		ids := make([]int, 0, 20)
		tts := make([]*bitvec.TruthTable, 0, 20) // function of the 4 PIs
		for i := 0; i < 4; i++ {
			ids = append(ids, n.AddInput(""))
			tts = append(tts, bitvec.Var(4, i))
		}
		gateFns := []*bitvec.TruthTable{TTAnd2(), TTOr2(), TTXor2(), TTNand2(), TTNor2()}
		for g := 0; g < 12; g++ {
			fn := gateFns[rng.Intn(len(gateFns))]
			i := rng.Intn(len(ids))
			j := rng.Intn(len(ids))
			id := n.AddGate("", fn, ids[i], ids[j])
			// Flatten: substitute fanin functions into the gate function.
			ref := bitvec.FromFunc(4, func(a uint) bool {
				var assign uint
				if tts[i].Get(a) {
					assign |= 1
				}
				if tts[j].Get(a) {
					assign |= 2
				}
				return fn.Get(assign)
			})
			ids = append(ids, id)
			tts = append(tts, ref)
		}
		top := len(ids) - 1
		n.MarkOutput("y", ids[top])
		for m := 0; m < 16; m++ {
			in := []bool{m&1 != 0, m&2 != 0, m&4 != 0, m&8 != 0}
			got := n.OutputValues(n.Eval(in, nil))[0]
			if got != tts[top].Get(uint(m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGateTruthTables(t *testing.T) {
	cases := []struct {
		name string
		tt   *bitvec.TruthTable
		f    func(a uint) bool
	}{
		{"buf", TTBuf(), func(a uint) bool { return a&1 != 0 }},
		{"not", TTNot(), func(a uint) bool { return a&1 == 0 }},
		{"and2", TTAnd2(), func(a uint) bool { return a == 3 }},
		{"or2", TTOr2(), func(a uint) bool { return a != 0 }},
		{"xor2", TTXor2(), func(a uint) bool { return a == 1 || a == 2 }},
		{"nand2", TTNand2(), func(a uint) bool { return a != 3 }},
		{"nor2", TTNor2(), func(a uint) bool { return a == 0 }},
		{"mux2", TTMux2(), func(a uint) bool {
			if a&1 != 0 {
				return a&4 != 0
			}
			return a&2 != 0
		}},
	}
	for _, c := range cases {
		for m := 0; m < c.tt.Size(); m++ {
			if c.tt.Get(uint(m)) != c.f(uint(m)) {
				t.Fatalf("%s: wrong value at minterm %d", c.name, m)
			}
		}
	}
}

package logic

import "repro/internal/bitvec"

// Canonical small-gate truth tables shared by the library generators and
// the BLIF front end. Variable 0 is the first fanin.

// TTBuf returns the 1-input identity function.
func TTBuf() *bitvec.TruthTable { return bitvec.Var(1, 0) }

// TTNot returns the 1-input inverter.
func TTNot() *bitvec.TruthTable {
	t := bitvec.New(1)
	return t.Not(bitvec.Var(1, 0))
}

// TTAnd2 returns the 2-input AND.
func TTAnd2() *bitvec.TruthTable {
	return bitvec.FromFunc(2, func(a uint) bool { return a == 3 })
}

// TTOr2 returns the 2-input OR.
func TTOr2() *bitvec.TruthTable {
	return bitvec.FromFunc(2, func(a uint) bool { return a != 0 })
}

// TTXor2 returns the 2-input XOR.
func TTXor2() *bitvec.TruthTable {
	return bitvec.FromFunc(2, func(a uint) bool { return a == 1 || a == 2 })
}

// TTNand2 returns the 2-input NAND.
func TTNand2() *bitvec.TruthTable {
	return bitvec.FromFunc(2, func(a uint) bool { return a != 3 })
}

// TTNor2 returns the 2-input NOR.
func TTNor2() *bitvec.TruthTable {
	return bitvec.FromFunc(2, func(a uint) bool { return a == 0 })
}

// TTXor3 returns the 3-input XOR (full-adder sum).
func TTXor3() *bitvec.TruthTable {
	return bitvec.FromFunc(3, func(a uint) bool {
		return ((a>>0)&1 ^ (a>>1)&1 ^ (a>>2)&1) == 1
	})
}

// TTMaj3 returns the 3-input majority (full-adder carry).
func TTMaj3() *bitvec.TruthTable {
	return bitvec.FromFunc(3, func(a uint) bool {
		ones := (a & 1) + ((a >> 1) & 1) + ((a >> 2) & 1)
		return ones >= 2
	})
}

// TTMux2 returns the 2:1 multiplexer with fanins (sel, d0, d1):
// out = d1 if sel else d0.
func TTMux2() *bitvec.TruthTable {
	return bitvec.FromFunc(3, func(a uint) bool {
		sel := a&1 != 0
		d0 := a&2 != 0
		d1 := a&4 != 0
		if sel {
			return d1
		}
		return d0
	})
}

package logic

// Eval computes the steady-state (zero-delay) value of every node given
// primary-input values and the current latch states. inputs is indexed
// like Network.Inputs; latchState like Network.Latches. The returned
// slice is indexed by node ID. This is the functional reference the
// event-driven simulator and the estimator are validated against.
func (n *Network) Eval(inputs []bool, latchState []bool) []bool {
	if len(inputs) != len(n.Inputs) {
		panic("logic: Eval input vector length mismatch")
	}
	if len(latchState) != len(n.Latches) {
		panic("logic: Eval latch state length mismatch")
	}
	val := make([]bool, len(n.Nodes))
	for i, id := range n.Inputs {
		val[id] = inputs[i]
	}
	for i, id := range n.Latches {
		val[id] = latchState[i]
	}
	for _, id := range n.TopoOrder() {
		nd := n.Nodes[id]
		switch nd.Kind {
		case KindConst:
			val[id] = nd.ConstVal
		case KindGate:
			var assign uint
			for i, f := range nd.Fanins {
				if val[f] {
					assign |= 1 << uint(i)
				}
			}
			val[id] = nd.Func.Eval(assign)
		}
	}
	return val
}

// OutputValues extracts primary-output values from a node-value slice.
func (n *Network) OutputValues(val []bool) []bool {
	out := make([]bool, len(n.Outputs))
	for i, o := range n.Outputs {
		out[i] = val[o.Node]
	}
	return out
}

// NextLatchState extracts the values presented at latch D inputs.
func (n *Network) NextLatchState(val []bool) []bool {
	next := make([]bool, len(n.Latches))
	for i, q := range n.Latches {
		next[i] = val[n.Nodes[q].LatchInput]
	}
	return next
}

// InitialLatchState returns the declared reset state of all latches.
func (n *Network) InitialLatchState() []bool {
	st := make([]bool, len(n.Latches))
	for i, q := range n.Latches {
		st[i] = n.Nodes[q].LatchInit
	}
	return st
}

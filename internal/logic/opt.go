package logic

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
)

// Optimize performs the technology-independent cleanup a synthesis front
// end applies before mapping: constant propagation (folding gates whose
// inputs are known), redundant-input elimination (dropping fanins the
// local function does not depend on), and structural hashing
// (deduplicating gates with identical function and fanins). The result
// is a new, functionally equivalent network plus the old-to-new node ID
// mapping (-1 for nodes folded away; their value is representable by the
// mapped constant or the deduplicated survivor).
func Optimize(n *Network) (*Network, []int) {
	out := NewNetwork(n.Name)
	remap := make([]int, len(n.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	// constOf[newID] holds the known constant value of a new node, used
	// for folding consumers.
	constOf := make(map[int]bool)
	// constNode lazily materializes shared constant sources.
	constNode := map[bool]int{}
	getConst := func(v bool) int {
		if id, ok := constNode[v]; ok {
			return id
		}
		name := fmt.Sprintf("const%d", b2i(v))
		if _, taken := out.FindNode(name); taken {
			name = "_" + name
		}
		id := out.AddConst(name, v)
		constOf[id] = v
		constNode[v] = id
		return id
	}
	// Structural hash: function + fanins -> existing node.
	strash := make(map[string]int)

	for _, id := range n.TopoOrder() {
		nd := n.Nodes[id]
		switch nd.Kind {
		case KindInput:
			remap[id] = out.AddInput(nd.Name)
		case KindLatchOut:
			remap[id] = out.AddLatch(nd.Name, nd.LatchInit)
		case KindConst:
			remap[id] = getConst(nd.ConstVal)
		case KindGate:
			remap[id] = foldGate(n, out, nd, remap, constOf, getConst, strash)
		}
	}
	for _, q := range n.Latches {
		out.ConnectLatch(remap[q], remap[n.Nodes[q].LatchInput])
	}
	for _, o := range n.Outputs {
		out.MarkOutput(o.Name, remap[o.Node])
	}
	swept, sweepMap := out.SweepDangling()
	final := make([]int, len(remap))
	for i, m := range remap {
		if m < 0 {
			final[i] = -1
		} else {
			final[i] = sweepMap[m]
		}
	}
	return swept, final
}

// foldGate rebuilds one gate with constants folded, redundant inputs
// dropped, and structure hashed.
func foldGate(n *Network, out *Network, nd *Node, remap []int, constOf map[int]bool, getConst func(bool) int, strash map[string]int) int {
	// Substitute known-constant fanins into the local function.
	fn := nd.Func
	var fanins []int
	var keepVars []int
	for i, f := range nd.Fanins {
		nf := remap[f]
		if v, isConst := constOf[nf]; isConst {
			fn = fn.Cofactor(i, v)
			continue
		}
		fanins = append(fanins, nf)
		keepVars = append(keepVars, i)
	}
	// Compress the function onto the surviving variables.
	compressed := bitvec.FromFunc(len(keepVars), func(assign uint) bool {
		var full uint
		for j, v := range keepVars {
			if assign&(1<<uint(j)) != 0 {
				full |= 1 << uint(v)
			}
		}
		return fn.Get(full)
	})
	// Tie duplicate fanins (common after structural hashing upstream) to
	// a single variable.
	var uniq []int
	varMap := make([]int, len(fanins))
	seen := map[int]int{}
	for i, f := range fanins {
		if u, ok := seen[f]; ok {
			varMap[i] = u
		} else {
			seen[f] = len(uniq)
			varMap[i] = len(uniq)
			uniq = append(uniq, f)
		}
	}
	if len(uniq) != len(fanins) {
		tied := bitvec.FromFunc(len(uniq), func(assign uint) bool {
			var full uint
			for i := range fanins {
				if assign&(1<<uint(varMap[i])) != 0 {
					full |= 1 << uint(i)
				}
			}
			return compressed.Get(full)
		})
		compressed, fanins = tied, uniq
	}
	// Drop inputs the compressed function ignores.
	var finalFanins []int
	var depVars []int
	for i := 0; i < compressed.NumVars(); i++ {
		if compressed.DependsOn(i) {
			depVars = append(depVars, i)
			finalFanins = append(finalFanins, fanins[i])
		}
	}
	reduced := bitvec.FromFunc(len(depVars), func(assign uint) bool {
		var full uint
		for j, v := range depVars {
			if assign&(1<<uint(j)) != 0 {
				full |= 1 << uint(v)
			}
		}
		// Don't-care variables read as 0.
		return compressed.Get(full)
	})

	if v, isConst := reduced.IsConst(); isConst {
		// After dependency pruning a constant function has zero arity.
		return getConst(v)
	}
	// Identity buffer collapses onto its fanin.
	if reduced.NumVars() == 1 {
		if reduced.Get(1) && !reduced.Get(0) {
			return finalFanins[0]
		}
	}
	// Structural hashing.
	key := strashKey(reduced, finalFanins)
	if prev, ok := strash[key]; ok {
		return prev
	}
	// Unique-ify the name if a folded sibling took it.
	name := nd.Name
	if name != "" {
		if _, taken := out.FindNode(name); taken {
			name = ""
		}
	}
	id := out.AddGate(name, reduced, finalFanins...)
	strash[key] = id
	return id
}

func strashKey(fn *bitvec.TruthTable, fanins []int) string {
	var sb strings.Builder
	sb.WriteString(fn.String())
	for _, f := range fanins {
		fmt.Fprintf(&sb, ",%d", f)
	}
	return sb.String()
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

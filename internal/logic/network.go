// Package logic implements a gate-level logic network.
//
// A Network is a directed acyclic graph of nodes. Each combinational node
// computes a local Boolean function (a truth table) of its fanins.
// Sequential behaviour is modelled with latches (D flip-flops): a latch
// output acts as a combinational source and a latch input as a sink, so
// the combinational core stays acyclic. This is the common substrate for
// the BLIF front end, the resource-library generators, the cut enumerator,
// the technology mapper, the probability engine, and the simulator.
package logic

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Kind classifies a node.
type Kind int

const (
	// KindInput is a primary input.
	KindInput Kind = iota
	// KindConst is a constant 0 or 1 source.
	KindConst
	// KindGate is a combinational node with a local function.
	KindGate
	// KindLatchOut is the Q output of a D flip-flop; a combinational source.
	KindLatchOut
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConst:
		return "const"
	case KindGate:
		return "gate"
	case KindLatchOut:
		return "latch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is a single vertex of the network. Nodes are created through the
// Network builder methods and identified by dense integer IDs.
type Node struct {
	ID     int
	Name   string
	Kind   Kind
	Fanins []int
	// Func is the local function over Fanins (gate nodes only). Variable i
	// of the truth table corresponds to Fanins[i].
	Func *bitvec.TruthTable
	// ConstVal is the value of a KindConst node.
	ConstVal bool
	// LatchInput is the node feeding the D pin (KindLatchOut only).
	LatchInput int
	// LatchInit is the initial value of the latch.
	LatchInit bool
}

// Network is a gate-level netlist. The zero value is an empty network
// ready for use.
type Network struct {
	Name  string
	Nodes []*Node
	// Inputs lists primary-input node IDs in declaration order.
	Inputs []int
	// Outputs lists primary outputs: named references to driver nodes.
	Outputs []Output
	// Latches lists latch-output node IDs in declaration order.
	Latches []int
	// Macros lists builder-generated sub-netlist ranges (see Macro).
	// Advisory: transforms that renumber nodes (SweepDangling, Optimize)
	// drop them rather than remapping.
	Macros []Macro

	byName map[string]int
}

// Output names a primary output and the node driving it.
type Output struct {
	Name string
	Node int
}

// NewNetwork returns an empty network with the given model name.
func NewNetwork(name string) *Network {
	return &Network{Name: name, byName: make(map[string]int)}
}

// NumNodes returns the total node count.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// NumGates returns the number of combinational gate nodes.
func (n *Network) NumGates() int {
	c := 0
	for _, nd := range n.Nodes {
		if nd.Kind == KindGate {
			c++
		}
	}
	return c
}

// Node returns the node with the given ID.
func (n *Network) Node(id int) *Node { return n.Nodes[id] }

// FindNode returns the ID of the node with the given name.
func (n *Network) FindNode(name string) (int, bool) {
	id, ok := n.byName[name]
	return id, ok
}

func (n *Network) register(nd *Node) int {
	nd.ID = len(n.Nodes)
	n.Nodes = append(n.Nodes, nd)
	if nd.Name != "" {
		if _, dup := n.byName[nd.Name]; dup {
			panic(fmt.Sprintf("logic: duplicate node name %q", nd.Name))
		}
		n.byName[nd.Name] = nd.ID
	}
	return nd.ID
}

// AddInput creates a primary input node.
func (n *Network) AddInput(name string) int {
	id := n.register(&Node{Name: name, Kind: KindInput})
	n.Inputs = append(n.Inputs, id)
	return id
}

// AddConst creates a constant source node.
func (n *Network) AddConst(name string, v bool) int {
	return n.register(&Node{Name: name, Kind: KindConst, ConstVal: v})
}

// AddGate creates a combinational node computing fn over the fanins.
// Every fanin must already exist; this keeps node IDs topologically
// ordered, which the traversals below rely on.
func (n *Network) AddGate(name string, fn *bitvec.TruthTable, fanins ...int) int {
	if fn.NumVars() != len(fanins) {
		panic(fmt.Sprintf("logic: gate %q: function has %d vars but %d fanins", name, fn.NumVars(), len(fanins)))
	}
	for _, f := range fanins {
		if f < 0 || f >= len(n.Nodes) {
			panic(fmt.Sprintf("logic: gate %q: fanin %d does not exist", name, f))
		}
	}
	return n.register(&Node{Name: name, Kind: KindGate, Fanins: fanins, Func: fn})
}

// AddLatch creates a latch output node. The D input may be connected later
// with ConnectLatch (BLIF allows forward references to latch inputs).
func (n *Network) AddLatch(name string, init bool) int {
	id := n.register(&Node{Name: name, Kind: KindLatchOut, LatchInput: -1, LatchInit: init})
	n.Latches = append(n.Latches, id)
	return id
}

// ConnectLatch wires the D input of the latch with node ID q to input d.
func (n *Network) ConnectLatch(q, d int) {
	nd := n.Nodes[q]
	if nd.Kind != KindLatchOut {
		panic(fmt.Sprintf("logic: node %d is not a latch", q))
	}
	nd.LatchInput = d
}

// MarkOutput declares node id as a primary output with the given name.
func (n *Network) MarkOutput(name string, id int) {
	n.Outputs = append(n.Outputs, Output{Name: name, Node: id})
}

// Check validates structural invariants: fanin IDs in range and strictly
// less than the gate ID (acyclicity by construction), latch inputs
// connected, outputs in range, truth-table arities consistent.
func (n *Network) Check() error {
	for _, nd := range n.Nodes {
		switch nd.Kind {
		case KindGate:
			if nd.Func == nil {
				return fmt.Errorf("logic: gate %d (%s) has no function", nd.ID, nd.Name)
			}
			if nd.Func.NumVars() != len(nd.Fanins) {
				return fmt.Errorf("logic: gate %d (%s): arity mismatch", nd.ID, nd.Name)
			}
			for _, f := range nd.Fanins {
				if f < 0 || f >= len(n.Nodes) {
					return fmt.Errorf("logic: gate %d (%s): fanin %d out of range", nd.ID, nd.Name, f)
				}
				if f >= nd.ID {
					return fmt.Errorf("logic: gate %d (%s): fanin %d not topologically earlier", nd.ID, nd.Name, f)
				}
			}
		case KindLatchOut:
			if nd.LatchInput < 0 || nd.LatchInput >= len(n.Nodes) {
				return fmt.Errorf("logic: latch %d (%s): input unconnected", nd.ID, nd.Name)
			}
		}
	}
	for _, o := range n.Outputs {
		if o.Node < 0 || o.Node >= len(n.Nodes) {
			return fmt.Errorf("logic: output %q references missing node %d", o.Name, o.Node)
		}
	}
	return nil
}

// TopoOrder returns all node IDs in a topological order of the
// combinational graph (sources first). Because AddGate requires fanins to
// exist, ascending ID order is already topological.
func (n *Network) TopoOrder() []int {
	order := make([]int, len(n.Nodes))
	for i := range order {
		order[i] = i
	}
	return order
}

// Levels returns the combinational depth of every node under a unit-delay
// model: sources (inputs, constants, latch outputs) are level 0 and each
// gate is 1 + max fanin level. This is the arrival-time model the glitch
// estimator uses.
func (n *Network) Levels() []int {
	lv := make([]int, len(n.Nodes))
	for _, id := range n.TopoOrder() {
		nd := n.Nodes[id]
		if nd.Kind != KindGate {
			lv[id] = 0
			continue
		}
		max := 0
		for _, f := range nd.Fanins {
			if lv[f] > max {
				max = lv[f]
			}
		}
		lv[id] = max + 1
	}
	return lv
}

// Depth returns the maximum gate level over output drivers and latch
// inputs (the combinational critical depth).
func (n *Network) Depth() int {
	lv := n.Levels()
	d := 0
	consider := func(id int) {
		if lv[id] > d {
			d = lv[id]
		}
	}
	for _, o := range n.Outputs {
		consider(o.Node)
	}
	for _, q := range n.Latches {
		consider(n.Nodes[q].LatchInput)
	}
	return d
}

// FanoutCounts returns, for each node, the number of combinational uses
// (as gate fanin, latch D input, or primary output).
func (n *Network) FanoutCounts() []int {
	fo := make([]int, len(n.Nodes))
	for _, nd := range n.Nodes {
		switch nd.Kind {
		case KindGate:
			for _, f := range nd.Fanins {
				fo[f]++
			}
		case KindLatchOut:
			if nd.LatchInput >= 0 {
				fo[nd.LatchInput]++
			}
		}
	}
	for _, o := range n.Outputs {
		fo[o.Node]++
	}
	return fo
}

// Fanouts returns the explicit fanout adjacency (gate and latch-D edges
// only; primary outputs are not nodes).
func (n *Network) Fanouts() [][]int {
	fo := make([][]int, len(n.Nodes))
	for _, nd := range n.Nodes {
		switch nd.Kind {
		case KindGate:
			for _, f := range nd.Fanins {
				fo[f] = append(fo[f], nd.ID)
			}
		case KindLatchOut:
			if nd.LatchInput >= 0 {
				fo[nd.LatchInput] = append(fo[nd.LatchInput], nd.ID)
			}
		}
	}
	return fo
}

// Stats summarizes a network.
type Stats struct {
	Inputs  int
	Outputs int
	Gates   int
	Latches int
	Depth   int
	// MaxFanin is the widest gate.
	MaxFanin int
}

// Stats computes summary statistics.
func (n *Network) Stats() Stats {
	s := Stats{
		Inputs:  len(n.Inputs),
		Outputs: len(n.Outputs),
		Latches: len(n.Latches),
		Depth:   n.Depth(),
	}
	for _, nd := range n.Nodes {
		if nd.Kind == KindGate {
			s.Gates++
			if len(nd.Fanins) > s.MaxFanin {
				s.MaxFanin = len(nd.Fanins)
			}
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("inputs=%d outputs=%d gates=%d latches=%d depth=%d maxFanin=%d",
		s.Inputs, s.Outputs, s.Gates, s.Latches, s.Depth, s.MaxFanin)
}

// SweepDangling removes gates that reach no output or latch input, and
// returns a new network plus the old→new ID mapping (-1 for removed).
// Inputs, latches, and constants are always kept so the interface is
// stable.
func (n *Network) SweepDangling() (*Network, []int) {
	live := make([]bool, len(n.Nodes))
	var mark func(int)
	mark = func(id int) {
		if live[id] {
			return
		}
		live[id] = true
		nd := n.Nodes[id]
		for _, f := range nd.Fanins {
			mark(f)
		}
		if nd.Kind == KindLatchOut && nd.LatchInput >= 0 {
			mark(nd.LatchInput)
		}
	}
	for _, o := range n.Outputs {
		mark(o.Node)
	}
	for _, q := range n.Latches {
		mark(q)
	}
	for _, pi := range n.Inputs {
		live[pi] = true
	}

	out := NewNetwork(n.Name)
	remap := make([]int, len(n.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	for _, nd := range n.Nodes {
		if !live[nd.ID] {
			continue
		}
		switch nd.Kind {
		case KindInput:
			remap[nd.ID] = out.AddInput(nd.Name)
		case KindConst:
			remap[nd.ID] = out.AddConst(nd.Name, nd.ConstVal)
		case KindLatchOut:
			remap[nd.ID] = out.AddLatch(nd.Name, nd.LatchInit)
		case KindGate:
			fanins := make([]int, len(nd.Fanins))
			for i, f := range nd.Fanins {
				fanins[i] = remap[f]
			}
			remap[nd.ID] = out.AddGate(nd.Name, nd.Func.Clone(), fanins...)
		}
	}
	for _, q := range n.Latches {
		if remap[q] >= 0 {
			out.ConnectLatch(remap[q], remap[n.Nodes[q].LatchInput])
		}
	}
	for _, o := range n.Outputs {
		out.MarkOutput(o.Name, remap[o.Node])
	}
	return out, remap
}

// SortedNames returns all node names in lexicographic order (testing aid).
func (n *Network) SortedNames() []string {
	names := make([]string, 0, len(n.byName))
	for name := range n.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

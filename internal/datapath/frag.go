package datapath

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/logic"
	"repro/internal/netgen"
)

// fragLocalBase is the ID offset for nodes created on a frag. Local IDs
// must stay positive (netgen builders use -1 as a "no carry-in"
// sentinel) and must never collide with real network IDs, so they start
// far above any realistic node count; replay subtracts the offset and
// adds the network's actual base.
const fragLocalBase = 1 << 30

const (
	fragGate uint8 = iota
	fragLatch
	fragConst
	fragConnect
	fragTag
)

type fragOp struct {
	kind   uint8
	name   string
	fn     *bitvec.TruthTable
	fanins []int // gate fanins, or [q, d] for a latch connection
	flag   bool  // latch init / const value
	shape  string
	lo     int // frag-local macro start (node count, not offset ID)
}

// frag is a recording netgen.NetBuilder: it captures the exact sequence
// of construction calls so they can be replayed onto a real network
// later. Fanins may mix pre-existing global IDs (passed in by the
// caller, e.g. register Q bits) with frag-local IDs returned by the
// frag itself; replay translates the local ones. Frags let per-FU
// sub-netlists be built concurrently and then stitched in serially in
// a deterministic order, yielding a network byte-identical to a fully
// serial build.
type frag struct {
	n   int // frag-local node count
	ops []fragOp
}

var _ netgen.NetBuilder = (*frag)(nil)

func (f *frag) nextID() int {
	id := fragLocalBase + f.n
	f.n++
	return id
}

func (f *frag) AddGate(name string, fn *bitvec.TruthTable, fanins ...int) int {
	f.ops = append(f.ops, fragOp{kind: fragGate, name: name, fn: fn, fanins: fanins})
	return f.nextID()
}

func (f *frag) AddLatch(name string, init bool) int {
	f.ops = append(f.ops, fragOp{kind: fragLatch, name: name, flag: init})
	return f.nextID()
}

func (f *frag) AddConst(name string, v bool) int {
	f.ops = append(f.ops, fragOp{kind: fragConst, name: name, flag: v})
	return f.nextID()
}

func (f *frag) ConnectLatch(q, d int) {
	f.ops = append(f.ops, fragOp{kind: fragConnect, fanins: []int{q, d}})
}

func (f *frag) NumNodes() int { return f.n }

func (f *frag) TagMacro(name, shape string, lo int) {
	if f.n > lo {
		f.ops = append(f.ops, fragOp{kind: fragTag, name: name, shape: shape, lo: lo})
	}
}

// fragResolve maps a fanin reference to a real node ID given the base
// the frag was replayed at: frag-local IDs shift down to base, global
// IDs pass through.
func fragResolve(base, id int) int {
	if id >= fragLocalBase {
		return base + id - fragLocalBase
	}
	return id
}

// replay appends the recorded construction onto net and returns the
// base ID its local nodes landed at. A frag may be replayed at most
// once: gate fanins are resolved in place (logic.Network retains the
// fanin slice, so replay must hand over a slice it will never touch
// again).
func (f *frag) replay(net *logic.Network) int {
	base := net.NumNodes()
	if base+f.n >= fragLocalBase {
		panic(fmt.Sprintf("datapath: network too large for frag replay (%d nodes)", base+f.n))
	}
	for i := range f.ops {
		op := &f.ops[i]
		switch op.kind {
		case fragGate:
			for j, fi := range op.fanins {
				op.fanins[j] = fragResolve(base, fi)
			}
			net.AddGate(op.name, op.fn, op.fanins...)
		case fragLatch:
			net.AddLatch(op.name, op.flag)
		case fragConst:
			net.AddConst(op.name, op.flag)
		case fragConnect:
			net.ConnectLatch(fragResolve(base, op.fanins[0]), fragResolve(base, op.fanins[1]))
		case fragTag:
			net.TagMacro(op.name, op.shape, base+op.lo)
		}
	}
	return base
}

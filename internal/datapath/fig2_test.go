package datapath

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/blif"
	"repro/internal/netgen"
)

// TestFigure2PartialDatapath reproduces the paper's Figure 2: generate
// the hierarchical .blif of a multiplier with a 2-input and a 3-input
// mux, flatten it, and check it computes the muxed product — i.e. the
// netlist the binder's SA estimator consumes is functionally the partial
// datapath.
func TestFigure2PartialDatapath(t *testing.T) {
	const w = 4
	lib, top := PartialDatapathLibrary(netgen.FUMult, 2, 3, w)
	net, err := blif.Flatten(lib, top)
	if err != nil {
		var sb strings.Builder
		_ = blif.WriteLibrary(&sb, lib)
		t.Fatalf("%v\n%s", err, sb.String())
	}
	// Reference: the monolithic generator.
	ref := netgen.PartialDatapathNetwork(netgen.FUMult, 2, 3, w)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		in := make(map[string]bool)
		for _, id := range ref.Inputs {
			in[ref.Node(id).Name] = rng.Intn(2) == 0
		}
		refIn := make([]bool, len(ref.Inputs))
		for i, id := range ref.Inputs {
			refIn[i] = in[ref.Node(id).Name]
		}
		flatIn := make([]bool, len(net.Inputs))
		for i, id := range net.Inputs {
			flatIn[i] = in[net.Node(id).Name]
		}
		want := ref.OutputValues(ref.Eval(refIn, nil))
		got := net.OutputValues(net.Eval(flatIn, nil))
		for b := range want {
			if want[b] != got[b] {
				t.Fatalf("trial %d: figure-2 netlist differs from generator at bit %d", trial, b)
			}
		}
	}
}

func TestFigure2BlifTextShape(t *testing.T) {
	lib, top := PartialDatapathLibrary(netgen.FUMult, 2, 3, 4)
	var sb strings.Builder
	if err := blif.WriteLibrary(&sb, lib); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	// The figure's ingredients: mux models, the mult model, and .subckt
	// instantiations in the composed model.
	for _, want := range []string{".model mux2_w4", ".model mux3_w4", ".model mult4", ".subckt mux2_w4", ".subckt mux3_w4", ".subckt mult4", ".model " + top} {
		if !strings.Contains(text, want) {
			t.Fatalf("figure-2 BLIF missing %q", want)
		}
	}
}

func TestFigure2DirectConnections(t *testing.T) {
	// Mux size 1 means a direct port: no mux model, fewer inputs.
	lib, top := PartialDatapathLibrary(netgen.FUAdd, 1, 1, 3)
	net, err := blif.Flatten(lib, top)
	if err != nil {
		t.Fatal(err)
	}
	ref := netgen.AdderNetwork(3)
	// BLIF emission may add one buffer per output to rename drivers.
	if net.NumGates() > ref.NumGates()+len(ref.Outputs) {
		t.Fatalf("1/1 partial datapath should be a bare adder (+output buffers): %d vs %d gates", net.NumGates(), ref.NumGates())
	}
}

package datapath

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/lopass"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/workload"
)

// TestMultiCycleDatapathFunctional is the end-to-end check of the
// multi-cycle extension (the paper's §7 future work): a FIR kernel
// scheduled with a 2-cycle multiplier, bound by HLPower, elaborated,
// and simulated against the arithmetic reference. Operand registers and
// port selections must hold across the multiplier's occupation
// interval, and results must be captured at completion edges.
func TestMultiCycleDatapathFunctional(t *testing.T) {
	g := workload.FIR(4)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	lib := cdfg.Library{AddLatency: 1, MultLatency: 2}
	s, err := cdfg.ListScheduleLat(g, rc, lib)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 20, 11)
}

func TestMultiCycleLOPASSDatapathFunctional(t *testing.T) {
	g := workload.DCT8()
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 3}
	lib := cdfg.Library{AddLatency: 1, MultLatency: 3}
	s, err := cdfg.ListScheduleLat(g, rc, lib)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := lopass.Bind(g, s, rb, rc, lopass.Options{PortSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 6, 12)
}

func TestMultiCycleBothLatencies(t *testing.T) {
	// 2-cycle adds AND 3-cycle mults together, with subtractions.
	g := workload.Butterfly(2)
	rc := cdfg.ResourceConstraint{Add: 3, Mult: 2}
	lib := cdfg.Library{AddLatency: 2, MultLatency: 3}
	s, err := cdfg.ListScheduleLat(g, rc, lib)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g, s, rc); err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 12, 13)
}

// TestMultiCycleSchedulesLonger sanity-checks that latency stretches the
// schedule (the price paid for smaller/faster clock periods).
func TestMultiCycleSchedulesLonger(t *testing.T) {
	g := workload.FIR(8)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	s1, err := cdfg.ListScheduleLat(g, rc, cdfg.SingleCycle())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cdfg.ListScheduleLat(g, rc, cdfg.Library{AddLatency: 1, MultLatency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len <= s1.Len {
		t.Fatalf("2-cycle mult schedule (%d) should be longer than single-cycle (%d)", s2.Len, s1.Len)
	}
}

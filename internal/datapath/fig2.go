package datapath

import (
	"fmt"

	"repro/internal/blif"
	"repro/internal/netgen"
)

// PartialDatapathLibrary builds the hierarchical BLIF library of the
// paper's Figure 2: one model per mux size and functional unit, plus the
// composed partial-datapath model that instantiates them with .subckt
// (mux2.blif, mux3.blif, mult.blif in the figure). The composed model is
// what the binder's SA estimator evaluates for an edge.
func PartialDatapathLibrary(kind netgen.FUKind, kL, kR, width int) (*blif.Library, string) {
	lib := blif.NewLibrary()
	add := func(m *blif.Model) { lib.Add(m) }

	muxName := func(k int) string { return fmt.Sprintf("mux%d_w%d", k, width) }
	if kL > 1 {
		add(blif.FromNetwork(netgen.MuxNetwork(kL, width)))
	}
	if kR > 1 && kR != kL {
		add(blif.FromNetwork(netgen.MuxNetwork(kR, width)))
	}
	var fuNet = netgen.AdderNetwork(width)
	if kind == netgen.FUMult {
		fuNet = netgen.MultiplierNetwork(width)
	}
	add(blif.FromNetwork(fuNet))

	// Composed model: input/output ports mirror the generator's partial
	// datapath, wiring muxes into the FU with .subckt instantiations —
	// the Figure 2 netlist.
	top := &blif.Model{Name: fmt.Sprintf("%s_%d_%d_w%d", kind, kL, kR, width)}
	outBase := "S"
	if kind == netgen.FUMult {
		outBase = "P"
	}

	wirePort := func(side string, k int) []string {
		bus := make([]string, width)
		if k == 1 {
			for b := 0; b < width; b++ {
				name := fmt.Sprintf("%s0_%d", side, b)
				top.Inputs = append(top.Inputs, name)
				bus[b] = name
			}
			return bus
		}
		sc := blif.Subckt{Model: muxName(k), Bindings: map[string]string{}}
		for s := 0; s < netgen.SelBits(k); s++ {
			name := fmt.Sprintf("SEL%s%d", side, s)
			top.Inputs = append(top.Inputs, name)
			sc.Bindings[fmt.Sprintf("SEL%d", s)] = name
		}
		for i := 0; i < k; i++ {
			for b := 0; b < width; b++ {
				name := fmt.Sprintf("%s%d_%d", side, i, b)
				top.Inputs = append(top.Inputs, name)
				sc.Bindings[fmt.Sprintf("D%d_%d", i, b)] = name
			}
		}
		for b := 0; b < width; b++ {
			wire := fmt.Sprintf("%smux_%d", side, b)
			sc.Bindings[fmt.Sprintf("Y%d", b)] = wire
			bus[b] = wire
		}
		top.Subckts = append(top.Subckts, sc)
		return bus
	}
	left := wirePort("L", kL)
	right := wirePort("R", kR)

	fu := blif.Subckt{Model: fuNet.Name, Bindings: map[string]string{}}
	for b := 0; b < width; b++ {
		fu.Bindings[fmt.Sprintf("A%d", b)] = left[b]
		fu.Bindings[fmt.Sprintf("B%d", b)] = right[b]
		out := fmt.Sprintf("O%d", b)
		fu.Bindings[fmt.Sprintf("%s%d", outBase, b)] = out
		top.Outputs = append(top.Outputs, out)
	}
	top.Subckts = append(top.Subckts, fu)
	add(top)
	return lib, top.Name
}

// Package datapath elaborates a bound CDFG into a complete gate-level
// RTL implementation: functional units, port multiplexers, shared
// registers with steering logic, and a control-step counter FSM with
// one-hot step decoding. This substitutes for the paper's CDFG-to-VHDL
// conversion followed by Quartus II RTL synthesis (§6.1) — the output
// network is what the technology mapper, the simulator, and the power
// analyzer consume.
//
// Timing model (single-cycle resources): during control step t the
// counter holds t-1; an operation scheduled at step t reads its argument
// registers combinationally and its result is captured at the clock edge
// ending step t. Primary-input registers capture the input pads at the
// edge ending the last step, making fresh inputs available from step 1
// of the following iteration.
package datapath

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/logic"
	"repro/internal/netgen"
	"repro/internal/regbind"
)

// Design is an elaborated datapath.
type Design struct {
	// Net is the gate-level implementation.
	Net *logic.Network
	// Width is the datapath bit width.
	Width int
	// Muxes summarizes all multiplexers in the design.
	Muxes MuxReport
	// CounterBits lists the FSM counter latch node IDs (LSB first).
	CounterBits []int
	// StepCount is the schedule length (iteration period in cycles).
	StepCount int
	// OutputRegs maps each CDFG output (by position) to how it is
	// observed: a register Q bus or a combinational FU output bus.
	OutputBuses [][]int
}

// MuxReport aggregates multiplexer statistics over the whole datapath.
type MuxReport struct {
	// FULargest/FULength cover the FU input port muxes — the Table 3
	// "Largest MUX" and "MUX length" metrics.
	FULargest, FULength int
	// RegLargest/RegLength cover the register steering muxes (data
	// sources only; the hold path is write-enable plumbing, not a data
	// input).
	RegLargest, RegLength int
}

// TotalLength returns the summed mux inputs over FU and register muxes.
func (m MuxReport) TotalLength() int { return m.FULength + m.RegLength }

// TotalLargest returns the largest mux anywhere in the datapath.
func (m MuxReport) TotalLargest() int {
	if m.RegLargest > m.FULargest {
		return m.RegLargest
	}
	return m.FULargest
}

// Arch selects the implementation architecture per functional unit
// (module selection, the paper's future-work extension). A nil Arch or
// nil selector uses the baseline library (ripple adder, array
// multiplier).
type Arch struct {
	// Adder returns the adder architecture for an adder-class FU.
	Adder func(fu *binding.FU) netgen.AdderArch
	// Mult returns the multiplier architecture for a multiplier FU.
	Mult func(fu *binding.FU) netgen.MultArch
}

// Elaborate builds the gate-level datapath for a scheduled, register-
// and FU-bound CDFG with the baseline resource library.
func Elaborate(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, width int) (*Design, error) {
	return ElaborateArch(g, s, rb, res, width, nil)
}

// ElaborateArch elaborates with per-FU module selection.
func ElaborateArch(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, width int, arch *Arch) (*Design, error) {
	return ElaborateArchJobs(g, s, rb, res, width, arch, 1)
}

// ElaborateArchJobs elaborates with per-FU module selection, building
// the per-FU sub-netlists (port muxes + functional unit) on up to jobs
// goroutines. Each worker records its FU onto a replay tape (frag);
// the tapes are then replayed into the network serially in FU order,
// so the resulting network — node IDs, names, macro tags, everything —
// is byte-identical to the jobs=1 build at any worker count. Arch
// selector callbacks must be safe for concurrent use when jobs > 1.
func ElaborateArchJobs(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, width int, arch *Arch, jobs int) (*Design, error) {
	if width < 1 {
		return nil, fmt.Errorf("datapath: width must be >= 1")
	}
	if err := res.Validate(g, s, cdfg.ResourceConstraint{}); err != nil {
		return nil, fmt.Errorf("datapath: %w", err)
	}
	if err := rb.Validate(g, s); err != nil {
		return nil, fmt.Errorf("datapath: %w", err)
	}

	d := &Design{Width: width, StepCount: s.Len}
	net := logic.NewNetwork(g.Name + "_dp")
	d.Net = net

	// --- Control FSM: a wrapping counter over 0..Len-1 plus one-hot
	// step decode. stepMatch[t] is active while the datapath executes
	// control step t (1-based).
	nb := 0
	for (1 << nb) < s.Len {
		nb++
	}
	ctr := make([]int, nb)
	for j := 0; j < nb; j++ {
		ctr[j] = net.AddLatch(fmt.Sprintf("cstep_b%d", j), false)
	}
	d.CounterBits = ctr

	matchValue := func(prefix string, value int) int {
		// AND tree over counter literals for the given counter value.
		var lits []int
		for j := 0; j < nb; j++ {
			if value&(1<<uint(j)) != 0 {
				lits = append(lits, ctr[j])
			} else {
				lits = append(lits, net.AddGate(fmt.Sprintf("%s_nb%d", prefix, j), logic.TTNot(), ctr[j]))
			}
		}
		return buildAnd(net, prefix, lits)
	}
	stepMatch := make([]int, s.Len+1)
	for t := 1; t <= s.Len; t++ {
		stepMatch[t] = matchValue(fmt.Sprintf("step%d", t), t-1)
	}

	if nb > 0 {
		// next = (ctr + 1) unless ctr == Len-1, then 0.
		isLast := matchValue("wrap", s.Len-1)
		notLast := net.AddGate("wrap_n", logic.TTNot(), isLast)
		carry := -1
		for j := 0; j < nb; j++ {
			var inc int
			if carry < 0 {
				inc = net.AddGate(fmt.Sprintf("ctr_inc%d", j), logic.TTNot(), ctr[j])
				carry = ctr[j]
			} else {
				inc = net.AddGate(fmt.Sprintf("ctr_inc%d", j), logic.TTXor2(), ctr[j], carry)
				carry = net.AddGate(fmt.Sprintf("ctr_c%d", j), logic.TTAnd2(), ctr[j], carry)
			}
			next := net.AddGate(fmt.Sprintf("ctr_next%d", j), logic.TTAnd2(), inc, notLast)
			net.ConnectLatch(ctr[j], next)
		}
	}

	// --- Primary input pads.
	pads := make(map[int][]int, len(g.Inputs))
	for _, pi := range g.Inputs {
		name := g.Nodes[pi].Name
		if name == "" {
			name = fmt.Sprintf("in%d", pi)
		}
		bus := make([]int, width)
		for b := 0; b < width; b++ {
			bus[b] = net.AddInput(fmt.Sprintf("%s_%d", name, b))
		}
		pads[pi] = bus
	}

	// --- Registers (latch banks); steering logic is wired after FUs.
	regQ := make([][]int, rb.NumRegs)
	for r := range regQ {
		regQ[r] = make([]int, width)
		for b := 0; b < width; b++ {
			regQ[r][b] = net.AddLatch(fmt.Sprintf("r%d_q%d", r, b), false)
		}
	}

	// --- Functional units with input port muxes.
	fuOut := make([][]int, len(res.FUs))
	muxStats := func(nLeft, nRight int) {
		if nLeft > d.Muxes.FULargest {
			d.Muxes.FULargest = nLeft
		}
		if nRight > d.Muxes.FULargest {
			d.Muxes.FULargest = nRight
		}
		d.Muxes.FULength += nLeft + nRight
	}
	if jobs > 1 && len(res.FUs) > 1 {
		type fuBuild struct {
			frag           *frag
			out            []int
			nLeft, nRight  int
		}
		builds := make([]fuBuild, len(res.FUs))
		nw := jobs
		if nw > len(res.FUs) {
			nw = len(res.FUs)
		}
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(res.FUs) {
						return
					}
					f := &frag{}
					out, nl, nr := buildFU(f, g, s, rb, res, res.FUs[i], arch, regQ, stepMatch)
					builds[i] = fuBuild{frag: f, out: out, nLeft: nl, nRight: nr}
				}
			}()
		}
		wg.Wait()
		for i, fu := range res.FUs {
			b := builds[i]
			base := b.frag.replay(net)
			bus := make([]int, len(b.out))
			for j, id := range b.out {
				bus[j] = fragResolve(base, id)
			}
			fuOut[fu.ID] = bus
			muxStats(b.nLeft, b.nRight)
		}
	} else {
		for _, fu := range res.FUs {
			out, nl, nr := buildFU(net, g, s, rb, res, fu, arch, regQ, stepMatch)
			fuOut[fu.ID] = out
			muxStats(nl, nr)
		}
	}

	// --- Register steering: group writes by data source, gate each with
	// the OR of its trigger steps, and fall back to the hold path.
	vpr := rb.ValuesPerRegister(g)
	for r, values := range vpr {
		type write struct {
			bus      []int
			triggers []int // step numbers whose ending edge captures
			key      string
		}
		var writes []write
		bySrc := make(map[string]int)
		for _, v := range values {
			var bus []int
			var key string
			var trigStep int
			if g.Nodes[v].Kind.IsOp() {
				fu := res.FUOf[v]
				bus = fuOut[fu]
				key = fmt.Sprintf("fu%d", fu)
				trigStep = s.Completion(g, v) // captured when the op completes
			} else {
				bus = pads[v]
				key = fmt.Sprintf("pi%d", v)
				trigStep = s.Len // pads captured at the iteration boundary
			}
			if i, ok := bySrc[key]; ok {
				writes[i].triggers = append(writes[i].triggers, trigStep)
			} else {
				bySrc[key] = len(writes)
				writes = append(writes, write{bus: bus, triggers: []int{trigStep}, key: key})
			}
		}
		sort.Slice(writes, func(i, j int) bool { return writes[i].key < writes[j].key })

		if len(writes) > d.Muxes.RegLargest {
			d.Muxes.RegLargest = len(writes)
		}
		d.Muxes.RegLength += len(writes)

		// Write triggers fire in distinct control steps, so the steering
		// logic is a one-hot AND-OR tree rather than a mux chain: each
		// source is gated by its select, the hold path by none-active,
		// and a balanced OR tree combines them. Depth stays logarithmic
		// in the source count regardless of the binding. The whole
		// steering cone for the register is one macro region (all inner
		// or-trees stay untagged).
		steerLo := net.NumNodes()
		sels := make([]int, len(writes))
		for wi, w := range writes {
			var trigs []int
			for _, t := range w.triggers {
				trigs = append(trigs, stepMatch[t])
			}
			sels[wi] = buildOr(net, fmt.Sprintf("r%d_w%d_en", r, wi), trigs)
		}
		hold := net.AddGate(fmt.Sprintf("r%d_hold", r), logic.TTNot(),
			buildOr(net, fmt.Sprintf("r%d_any", r), sels))
		for b := 0; b < width; b++ {
			terms := make([]int, 0, len(writes)+1)
			for wi, w := range writes {
				terms = append(terms, net.AddGate(fmt.Sprintf("r%d_w%d_d%d", r, wi, b), logic.TTAnd2(), sels[wi], w.bus[b]))
			}
			terms = append(terms, net.AddGate(fmt.Sprintf("r%d_h_d%d", r, b), logic.TTAnd2(), hold, regQ[r][b]))
			net.ConnectLatch(regQ[r][b], buildOr(net, fmt.Sprintf("r%d_d%d", r, b), terms))
		}
		net.TagMacro(fmt.Sprintf("r%d_steer", r), fmt.Sprintf("steer/%d/%d", len(writes), width), steerLo)
	}

	// --- Primary outputs: register Q when stored, FU output for values
	// born in the final step (readable combinationally during it).
	for i, v := range g.Outputs {
		var bus []int
		if r := rb.Reg[v]; r >= 0 {
			bus = regQ[r]
		} else {
			bus = fuOut[res.FUOf[v]]
		}
		d.OutputBuses = append(d.OutputBuses, bus)
		for b := 0; b < width; b++ {
			net.MarkOutput(fmt.Sprintf("out%d_%d", i, b), bus[b])
		}
	}

	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("datapath: produced invalid network: %w", err)
	}
	return d, nil
}

// buildFU constructs one functional unit and its two input port muxes
// onto nb (a live network or a replay frag), returning the FU output
// bus and the two port-mux input counts for the mux report.
func buildFU(nb netgen.NetBuilder, g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, fu *binding.FU, arch *Arch, regQ [][]int, stepMatch []int) (out []int, nLeft, nRight int) {
	left, right := binding.PortSources(g, rb, res, fu)
	lbus := buildPortMux(nb, g, s, rb, res, fu, "L", left, regQ, stepMatch, true)
	rbus := buildPortMux(nb, g, s, rb, res, fu, "R", right, regQ, stepMatch, false)
	prefix := fmt.Sprintf("fu%d_", fu.ID)
	if fu.Kind == netgen.FUAdd {
		aArch := netgen.AdderRipple
		if arch != nil && arch.Adder != nil {
			aArch = arch.Adder(fu)
		}
		out = buildAddSub(nb, g, s, res, fu, prefix, aArch, lbus, rbus, stepMatch)
	} else if s.Lib.MultPipelined && s.Lib.Latency(cdfg.KindMult) > 1 {
		out = netgen.BuildPipelinedMultiplier(nb, prefix, lbus, rbus, s.Lib.Latency(cdfg.KindMult))
	} else {
		mArch := netgen.MultArray
		if arch != nil && arch.Mult != nil {
			mArch = arch.Mult(fu)
		}
		out = netgen.BuildMultArch(nb, mArch, prefix, lbus, rbus)
	}
	return out, len(left), len(right)
}

// buildPortMux constructs one FU input port: a mux over the distinct
// source registers with gate-level select decoding derived from the
// schedule. sources is the sorted register list for the port.
func buildPortMux(net netgen.NetBuilder, g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, fu *binding.FU, side string, sources []int, regQ [][]int, stepMatch []int, isLeft bool) []int {
	prefix := fmt.Sprintf("fu%d_%s", fu.ID, side)
	if len(sources) == 1 {
		return regQ[sources[0]]
	}
	index := make(map[int]int, len(sources))
	for i, r := range sources {
		index[r] = i
	}
	nb := netgen.SelBits(len(sources))
	// sel bit j = OR of step matches of ops whose source index has bit j.
	selSteps := make([][]int, nb)
	for _, op := range fu.Ops {
		l, r := res.PortArgs(g, op)
		arg := l
		if !isLeft {
			arg = r
		}
		idx := index[rb.Reg[arg]]
		for j := 0; j < nb; j++ {
			if idx&(1<<uint(j)) != 0 {
				selSteps[j] = append(selSteps[j], stepMatch[s.Step[op]])
			}
		}
	}
	// Select lines hold their last value through idle steps (registered
	// Moore-style decode): without the hold, an idle port would bounce
	// to an arbitrary source and every write to that register would
	// needlessly recompute the functional unit.
	var active []int
	for _, op := range fu.Ops {
		active = append(active, stepMatch[s.Step[op]])
	}
	busy := buildOrTagged(net, prefix+"_busy", active)
	sel := make([]int, nb)
	for j := 0; j < nb; j++ {
		raw := buildOrTagged(net, fmt.Sprintf("%s_sel%d", prefix, j), selSteps[j])
		held := net.AddLatch(fmt.Sprintf("%s_selq%d", prefix, j), false)
		eff := net.AddGate(fmt.Sprintf("%s_sele%d", prefix, j), logic.TTMux2(), busy, held, raw)
		net.ConnectLatch(held, eff)
		sel[j] = eff
	}
	data := make([][]int, len(sources))
	for i, r := range sources {
		data[i] = regQ[r]
	}
	return netgen.BuildMux(net, prefix+"m_", sel, data)
}

// buildAddSub constructs the adder-class FU: the selected adder
// architecture when every bound operation is an addition, or a ripple
// add/sub unit (a + (b XOR mode) + mode) whose mode line is the OR of
// the step matches of the subtractions (the architecture variants do
// not expose a carry-in, so mixed add/sub units stay ripple).
func buildAddSub(net netgen.NetBuilder, g *cdfg.Graph, s *cdfg.Schedule, res *binding.Result, fu *binding.FU, prefix string, arch netgen.AdderArch, a, b []int, stepMatch []int) []int {
	var subSteps []int
	for _, op := range fu.Ops {
		if g.Nodes[op].Kind == cdfg.KindSub {
			// The mode line must stay asserted for the operation's whole
			// occupation interval (multi-cycle units compute across
			// several steps).
			for t := s.Step[op]; t <= s.Completion(g, op); t++ {
				subSteps = append(subSteps, stepMatch[t])
			}
		}
	}
	if len(subSteps) == 0 {
		return netgen.BuildAdderArch(net, arch, prefix, a, b)
	}
	// The whole add/sub unit (mode decode + operand XORs + adder) is one
	// macro region; the inner buildOr stays untagged so the region has a
	// single non-nested tag.
	lo := net.NumNodes()
	mode := buildOr(net, prefix+"mode", subSteps)
	bx := make([]int, len(b))
	for i := range b {
		bx[i] = net.AddGate(fmt.Sprintf("%sbx%d", prefix, i), logic.TTXor2(), b[i], mode)
	}
	sum, _ := netgen.BuildAdder(net, prefix, a, bx, mode)
	net.TagMacro(prefix+"addsub", fmt.Sprintf("addsub/%d", len(a)), lo)
	return sum
}

// buildOrTagged is buildOr plus a macro tag over the tree's gate range
// when the tree actually materializes gates (>= 2 inputs). Callers must
// ensure the region is not nested inside another tagged region.
func buildOrTagged(net netgen.NetBuilder, prefix string, nodes []int) int {
	if len(nodes) < 2 {
		return buildOr(net, prefix, nodes)
	}
	lo := net.NumNodes()
	out := buildOr(net, prefix, nodes)
	net.TagMacro(prefix, fmt.Sprintf("or/%d", len(nodes)), lo)
	return out
}

// buildOr reduces nodes with a balanced OR tree (empty -> const 0).
func buildOr(net netgen.NetBuilder, prefix string, nodes []int) int {
	switch len(nodes) {
	case 0:
		return net.AddConst(prefix+"_c0", false)
	case 1:
		return nodes[0]
	}
	level := 0
	cur := nodes
	for len(cur) > 1 {
		var next []int
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i])
				continue
			}
			next = append(next, net.AddGate(fmt.Sprintf("%s_o%d_%d", prefix, level, i/2), logic.TTOr2(), cur[i], cur[i+1]))
		}
		cur = next
		level++
	}
	return cur[0]
}

// buildAnd reduces nodes with a balanced AND tree (empty -> const 1).
func buildAnd(net netgen.NetBuilder, prefix string, nodes []int) int {
	switch len(nodes) {
	case 0:
		return net.AddConst(prefix+"_c1", true)
	case 1:
		return nodes[0]
	}
	level := 0
	cur := nodes
	for len(cur) > 1 {
		var next []int
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i])
				continue
			}
			next = append(next, net.AddGate(fmt.Sprintf("%s_a%d_%d", prefix, level, i/2), logic.TTAnd2(), cur[i], cur[i+1]))
		}
		cur = next
		level++
	}
	return cur[0]
}

// CounterValue decodes the FSM counter from a simulator value slice.
func (d *Design) CounterValue(val []bool) int {
	v := 0
	for j, id := range d.CounterBits {
		if val[id] {
			v |= 1 << uint(j)
		}
	}
	return v
}

// ReadOutput decodes primary output i from a value slice.
func (d *Design) ReadOutput(val []bool, i int) uint64 {
	var out uint64
	for b, id := range d.OutputBuses[i] {
		if val[id] {
			out |= 1 << uint(b)
		}
	}
	return out
}

// SetInputVector fills a simulator input vector (indexed like
// Net.Inputs) from per-PI values. PIs are ordered as in the CDFG.
func (d *Design) SetInputVector(g *cdfg.Graph, values []uint64) []bool {
	if len(values) != len(g.Inputs) {
		panic("datapath: input value count mismatch")
	}
	in := make([]bool, len(d.Net.Inputs))
	pos := 0
	for pi := range g.Inputs {
		for b := 0; b < d.Width; b++ {
			in[pos] = values[pi]&(1<<uint(b)) != 0
			pos++
		}
	}
	return in
}

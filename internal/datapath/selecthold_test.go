package datapath

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/netgen"
	"repro/internal/regbind"
	"repro/internal/sim"
)

// TestSelectHoldFreezesIdlePorts builds a design where one FU is idle
// for several steps and checks that its port mux selection (and thus
// the FU inputs, absent register writes) stays frozen during idle
// steps instead of bouncing to source 0.
func TestSelectHoldFreezesIdlePorts(t *testing.T) {
	// Schedule: add at step 1 and step 4 (idle during 2-3); a mult keeps
	// the schedule 4 steps long.
	g := cdfg.NewGraph("hold")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	s1 := g.AddOp(cdfg.KindAdd, "s1", a, b)
	m1 := g.AddOp(cdfg.KindMult, "m1", s1, c)
	m2 := g.AddOp(cdfg.KindMult, "m2", m1, c)
	s2 := g.AddOp(cdfg.KindAdd, "s2", m2, s1)
	g.MarkOutput(s2)
	s := &cdfg.Schedule{Step: make([]int, len(g.Nodes)), Len: 4}
	s.Step[s1], s.Step[m1], s.Step[m2], s.Step[s2] = 1, 2, 3, 4

	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res := binding.NewResult(g)
	addFU := &binding.FU{ID: 0, Kind: netgen.FUAdd, Ops: []int{s1, s2}}
	mulFU := &binding.FU{ID: 1, Kind: netgen.FUMult, Ops: []int{m1, m2}}
	res.FUs = []*binding.FU{addFU, mulFU}
	res.FUOf[s1], res.FUOf[s2] = 0, 0
	res.FUOf[m1], res.FUOf[m2] = 1, 1

	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the adder's left-port select hold latch if any (the port
	// has >= 2 sources since s1 reads a and s2 reads m2's register).
	heldName := "fu0_L_selq0"
	held, ok := d.Net.FindNode(heldName)
	if !ok {
		t.Skipf("adder left port has a single source in this binding; no select latch %s", heldName)
	}

	simr, err := sim.New(d.Net)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, len(d.Net.Inputs))
	for i := range in {
		in[i] = i%2 == 0
	}
	// Run several full iterations tracking the held select at idle
	// steps: between the add's two executions the held value must stay
	// constant cycle over cycle.
	prevHeld := false
	havePrev := false
	for cyc := 0; cyc < 3*d.StepCount; cyc++ {
		simr.Step(in)
		step := d.CounterValue(simr.Values()) + 1
		v := simr.Values()[held]
		if step == 3 { // mid-idle window for the adder (busy at 1 and 4)
			if havePrev && v != prevHeld {
				t.Fatalf("cycle %d: held select changed during idle window", cyc)
			}
			prevHeld = v
			havePrev = true
		}
	}
	// And the design still computes the right value.
	verifyDesign(t, g, d, 10, 21)
}

func TestSetInputVectorPanicsOnMismatch(t *testing.T) {
	g := cdfg.NewGraph("p")
	g.AddInput("a")
	g.MarkOutput(g.AddOp(cdfg.KindAdd, "x", 0, 0))
	s := &cdfg.Schedule{Step: make([]int, len(g.Nodes)), Len: 1}
	s.Step[1] = 1
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res := binding.NewResult(g)
	fu := &binding.FU{ID: 0, Kind: netgen.FUAdd, Ops: []int{1}}
	res.FUs = []*binding.FU{fu}
	res.FUOf[1] = 0
	d, err := Elaborate(g, s, rb, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input count")
		}
	}()
	d.SetInputVector(g, []uint64{1, 2, 3})
}

package datapath

import (
	"fmt"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/logic"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// netFingerprint hashes everything observable about a network — node
// kinds, names, truth tables, fanins, latch wiring, constants, inputs,
// outputs, and macro tags — so equal fingerprints mean byte-identical
// netlists.
func netFingerprint(net *logic.Network) string {
	h := pipeline.NewHasher()
	h.Str(net.Name).Int(len(net.Nodes))
	for _, nd := range net.Nodes {
		h.Int(nd.ID).Int(int(nd.Kind)).Str(nd.Name).Ints(nd.Fanins)
		h.Bool(nd.ConstVal).Int(nd.LatchInput).Bool(nd.LatchInit)
		if nd.Func != nil {
			h.Int(nd.Func.NumVars())
			for _, w := range nd.Func.Words() {
				h.U64(w)
			}
		}
	}
	h.Ints(net.Inputs).Ints(net.Latches)
	for _, o := range net.Outputs {
		h.Str(o.Name).Int(o.Node)
	}
	h.Int(len(net.Macros))
	for _, m := range net.Macros {
		h.Str(m.Name).Str(m.Shape).Int(m.Lo).Int(m.Hi)
	}
	return h.Sum()
}

// TestElaborateJobsByteIdentical proves the tape-replay parallel
// elaboration contract: at every worker count the produced network —
// IDs, names, latch wiring, macro tags, mux statistics — is identical
// to the serial build. Covers an add/sub-mixed graph (butterfly), a
// mult-heavy one (DCT), and a benchmark-scale profile.
func TestElaborateJobsByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		g     *cdfg.Graph
		rc    cdfg.ResourceConstraint
		width int
	}{
		{"butterfly", workload.Butterfly(2), cdfg.ResourceConstraint{Add: 4, Mult: 2}, 5},
		{"dct8", workload.DCT8(), cdfg.ResourceConstraint{Add: 3, Mult: 4}, 4},
	}
	if !testing.Short() {
		p, _ := workload.ByName("pr")
		cases = append(cases, struct {
			name  string
			g     *cdfg.Graph
			rc    cdfg.ResourceConstraint
			width int
		}{"pr", workload.Generate(p), p.RC, 8})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, rb, res := bindWithHLPower(t, tc.g, tc.rc)
			ref, err := ElaborateArchJobs(tc.g, s, rb, res, tc.width, nil, 1)
			if err != nil {
				t.Fatal(err)
			}
			refFP := netFingerprint(ref.Net)
			if len(ref.Net.Macros) == 0 {
				t.Fatalf("%s: elaboration produced no macro tags", tc.name)
			}
			for _, jobs := range []int{2, 3, 8} {
				d, err := ElaborateArchJobs(tc.g, s, rb, res, tc.width, nil, jobs)
				if err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				if fp := netFingerprint(d.Net); fp != refFP {
					t.Fatalf("jobs=%d: network differs from serial build", jobs)
				}
				if d.Muxes != ref.Muxes {
					t.Fatalf("jobs=%d: mux report %+v != %+v", jobs, d.Muxes, ref.Muxes)
				}
				if fmt.Sprint(d.CounterBits) != fmt.Sprint(ref.CounterBits) ||
					fmt.Sprint(d.OutputBuses) != fmt.Sprint(ref.OutputBuses) {
					t.Fatalf("jobs=%d: design metadata differs", jobs)
				}
			}
		})
	}
}

// TestElaborateJobsFunctional re-runs the functional oracle on a
// parallel-elaborated design, guarding against a frag-replay bug that
// happened to preserve fingerprint-visible structure but broke wiring.
func TestElaborateJobsFunctional(t *testing.T) {
	g := workload.Butterfly(2)
	s, rb, res := bindWithHLPower(t, g, cdfg.ResourceConstraint{Add: 4, Mult: 2})
	d, err := ElaborateArchJobs(g, s, rb, res, 5, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 10, 11)
}

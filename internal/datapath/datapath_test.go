package datapath

import (
	"math/rand"
	"testing"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/lopass"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

var testTable = satable.New(4, satable.EstimatorGlitch)

// bindWithHLPower runs the full front end on a graph.
func bindWithHLPower(t *testing.T, g *cdfg.Graph, rc cdfg.ResourceConstraint) (*cdfg.Schedule, *regbind.Binding, *binding.Result) {
	t.Helper()
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(testTable))
	if err != nil {
		t.Fatal(err)
	}
	return s, rb, res
}

// verifyDesign simulates the elaborated datapath with constant input
// pads and checks every primary output against the CDFG arithmetic
// reference during the last control step of a settled iteration.
func verifyDesign(t *testing.T, g *cdfg.Graph, d *Design, trials int, seed int64) {
	t.Helper()
	simr, err := sim.New(d.Net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		values := make([]uint64, len(g.Inputs))
		for i := range values {
			values[i] = uint64(rng.Intn(1 << d.Width))
		}
		in := d.SetInputVector(g, values)
		ref := cdfg.Eval(g, values, d.Width)

		// Run enough full iterations for inputs to propagate, then
		// sample during the last step (counter == Len-1).
		sampled := false
		for cyc := 0; cyc < 3*d.StepCount+2; cyc++ {
			simr.Step(in)
			if cyc >= 2*d.StepCount && d.CounterValue(simr.Values()) == d.StepCount-1 {
				for i, o := range g.Outputs {
					got := d.ReadOutput(simr.Values(), i)
					if got != ref[o] {
						t.Fatalf("trial %d output %d: datapath %d, reference %d", trial, i, got, ref[o])
					}
				}
				sampled = true
				break
			}
		}
		if !sampled {
			t.Fatal("never reached the sampling step")
		}
	}
}

func TestElaborateFIRFunctional(t *testing.T) {
	g := workload.FIR(4)
	s, rb, res := bindWithHLPower(t, g, cdfg.ResourceConstraint{Add: 2, Mult: 2})
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 20, 1)
}

func TestElaborateDCT8Functional(t *testing.T) {
	g := workload.DCT8()
	s, rb, res := bindWithHLPower(t, g, cdfg.ResourceConstraint{Add: 3, Mult: 4})
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 8, 2)
}

func TestElaborateButterflyWithSubtractions(t *testing.T) {
	g := workload.Butterfly(2)
	s, rb, res := bindWithHLPower(t, g, cdfg.ResourceConstraint{Add: 4, Mult: 2})
	d, err := Elaborate(g, s, rb, res, 5)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 15, 3)
}

func TestElaborateLopassBindingFunctional(t *testing.T) {
	g := workload.FIR(6)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 3}
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := lopass.Bind(g, s, rb, rc, lopass.Options{PortSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 15, 4)
}

func TestElaborateBenchmarkScale(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-scale elaboration")
	}
	p, _ := workload.ByName("pr")
	g := workload.Generate(p)
	s, rb, res := bindWithHLPower(t, g, p.RC)
	d, err := Elaborate(g, s, rb, res, 8)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 3, 5)
	st := d.Net.Stats()
	if st.Gates < 500 {
		t.Fatalf("pr datapath suspiciously small: %s", st)
	}
}

func TestMuxReportConsistentWithBinding(t *testing.T) {
	g := workload.FIR(6)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	s, rb, res := bindWithHLPower(t, g, rc)
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := binding.ComputeMuxStats(g, rb, res)
	if d.Muxes.FULength != st.Length {
		t.Fatalf("datapath FULength %d != binding stats %d", d.Muxes.FULength, st.Length)
	}
	if d.Muxes.FULargest != st.Largest {
		t.Fatalf("datapath FULargest %d != binding stats %d", d.Muxes.FULargest, st.Largest)
	}
	if d.Muxes.RegLength < rb.NumRegs {
		t.Fatalf("register mux length %d below register count %d", d.Muxes.RegLength, rb.NumRegs)
	}
	if d.Muxes.TotalLength() != d.Muxes.FULength+d.Muxes.RegLength {
		t.Fatal("TotalLength inconsistent")
	}
	if d.Muxes.TotalLargest() < d.Muxes.FULargest {
		t.Fatal("TotalLargest inconsistent")
	}
}

func TestElaborateRejectsBadWidth(t *testing.T) {
	g := workload.FIR(2)
	s, rb, res := bindWithHLPower(t, g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	if _, err := Elaborate(g, s, rb, res, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
}

func TestCounterWraps(t *testing.T) {
	g := workload.FIR(4)
	s, rb, res := bindWithHLPower(t, g, cdfg.ResourceConstraint{Add: 1, Mult: 1})
	d, err := Elaborate(g, s, rb, res, 3)
	if err != nil {
		t.Fatal(err)
	}
	simr, err := sim.New(d.Net)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, len(d.Net.Inputs))
	seen := make(map[int]bool)
	for cyc := 0; cyc < 3*d.StepCount; cyc++ {
		simr.Step(in)
		v := d.CounterValue(simr.Values())
		if v < 0 || v >= d.StepCount {
			t.Fatalf("counter out of range: %d (len %d)", v, d.StepCount)
		}
		seen[v] = true
	}
	if len(seen) != d.StepCount {
		t.Fatalf("counter visited %d of %d steps", len(seen), d.StepCount)
	}
}

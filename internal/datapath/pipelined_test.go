package datapath

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/workload"
)

// pipelinedLib: 2-cycle multipliers with initiation interval 1.
func pipelinedLib() cdfg.Library {
	return cdfg.Library{AddLatency: 1, MultLatency: 2, MultPipelined: true}
}

func TestPipelinedSchedulingAllowsBackToBackMults(t *testing.T) {
	// Two independent mults must fit one pipelined unit in consecutive
	// steps (a non-pipelined 2-cycle unit forces a gap).
	g := cdfg.NewGraph("bb")
	a := g.AddInput("a")
	b := g.AddInput("b")
	m1 := g.AddOp(cdfg.KindMult, "m1", a, b)
	m2 := g.AddOp(cdfg.KindMult, "m2", b, a)
	g.MarkOutput(m1)
	g.MarkOutput(m2)
	s, err := cdfg.ListScheduleLat(g, cdfg.ResourceConstraint{Add: 1, Mult: 1}, pipelinedLib())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Step[m1], s.Step[m2]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo != 1 {
		t.Fatalf("pipelined unit should take back-to-back starts: steps %d, %d", s.Step[m1], s.Step[m2])
	}
	if err := cdfg.ValidateScheduleLat(g, s, cdfg.ResourceConstraint{Add: 1, Mult: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedDatapathFunctional(t *testing.T) {
	// FIR through a single pipelined multiplier at full rate.
	g := workload.FIR(4)
	rc := cdfg.ResourceConstraint{Add: 1, Mult: 1}
	s, err := cdfg.ListScheduleLat(g, rc, pipelinedLib())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	// The single multiplier executes all 4 mults.
	for _, fu := range res.FUs {
		if fu.Kind == "mult" && len(fu.Ops) != 4 {
			t.Fatalf("pipelined multiplier carries %d ops, want 4", len(fu.Ops))
		}
	}
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Net.Latches) == 0 {
		t.Fatal("no pipeline registers in the elaborated datapath")
	}
	verifyDesign(t, g, d, 20, 31)
}

func TestPipelinedShorterScheduleThanNonPipelined(t *testing.T) {
	g := workload.FIR(8)
	rc := cdfg.ResourceConstraint{Add: 1, Mult: 1}
	nonPiped := cdfg.Library{AddLatency: 1, MultLatency: 2}
	s1, err := cdfg.ListScheduleLat(g, rc, nonPiped)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cdfg.ListScheduleLat(g, rc, pipelinedLib())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len >= s1.Len {
		t.Fatalf("pipelining should shorten the schedule: %d vs %d", s2.Len, s1.Len)
	}
}

func TestPipelinedOperandLifetimesShorter(t *testing.T) {
	// Operands of a pipelined mult die at its start, not its completion.
	g := cdfg.NewGraph("olt")
	a := g.AddInput("a")
	b := g.AddInput("b")
	v := g.AddOp(cdfg.KindAdd, "v", a, b)
	m := g.AddOp(cdfg.KindMult, "m", v, b)
	w := g.AddOp(cdfg.KindAdd, "w", m, b)
	g.MarkOutput(w)

	mk := func(lib cdfg.Library) cdfg.Lifetime {
		s, err := cdfg.ListScheduleLat(g, cdfg.ResourceConstraint{Add: 1, Mult: 1}, lib)
		if err != nil {
			t.Fatal(err)
		}
		return cdfg.Lifetimes(g, s)[v]
	}
	piped := mk(pipelinedLib())
	nonPiped := mk(cdfg.Library{AddLatency: 1, MultLatency: 2})
	if piped.Death >= nonPiped.Death {
		t.Fatalf("pipelined operand lifetime (%+v) should end before non-pipelined (%+v)", piped, nonPiped)
	}
}

func TestPipelinedBindingValidates(t *testing.T) {
	g := workload.DCT8()
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	s, err := cdfg.ListScheduleLat(g, rc, cdfg.Library{AddLatency: 1, MultLatency: 3, MultPipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := regbind.Bind(g, s)
	if err != nil {
		t.Fatal(err)
	}
	table := satable.New(4, satable.EstimatorGlitch)
	res, _, err := core.Bind(g, s, rb, rc, core.DefaultOptions(table))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g, s, rc); err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(g, s, rb, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyDesign(t, g, d, 5, 33)
}

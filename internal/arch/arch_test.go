package arch

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, tgt := range Presets() {
		if err := tgt.Validate(); err != nil {
			t.Errorf("%s: %v", tgt.Name, err)
		}
	}
	if k := CycloneII().K; k != 4 {
		t.Errorf("CycloneII K = %d, want 4", k)
	}
	if k := StratixLike6LUT().K; k != 6 {
		t.Errorf("StratixLike6LUT K = %d, want 6", k)
	}
}

// TestCycloneIIConstants pins the default target to the constants every
// golden result was recorded under — bit-identity of the default arch is
// the refactor's compatibility bar.
func TestCycloneIIConstants(t *testing.T) {
	c := CycloneII()
	if c.Vdd != 1.2 || c.CLut != 4.5e-12 || c.CReg != 3.0e-12 ||
		c.LUTDelayNs != 0.9 || c.ClockOverheadNs != 3.0 || c.Projection != nil {
		t.Errorf("CycloneII constants drifted: %+v", c)
	}
}

func TestLogicProjectionFactors(t *testing.T) {
	p := LogicProjection()
	if p.AreaDiv != 35 || p.PowerDiv != 14 || p.FreqMult != 3.4 {
		t.Errorf("logic projection %+v, want 35/14/3.4", p)
	}
	if got := p.Area(70); got != 2 {
		t.Errorf("Area(70) = %g, want 2", got)
	}
	if got := p.Power(28); got != 2 {
		t.Errorf("Power(28) = %g, want 2", got)
	}
	if got := p.PeriodNs(6.8); got != 2 {
		t.Errorf("PeriodNs(6.8) = %g, want 2", got)
	}
}

func TestFingerprintsDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, tgt := range Presets() {
		fp := tgt.Fingerprint()
		if strings.ContainsAny(fp, " \t\n") {
			t.Errorf("%s: fingerprint %q contains whitespace", tgt.Name, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("targets %s and %s share fingerprint %q", prev, tgt.Name, fp)
		}
		seen[fp] = tgt.Name
	}
	// The name is display-only: renaming must not change identity.
	a, b := CycloneII(), CycloneII()
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("display name leaked into the fingerprint")
	}
}

func TestParseFingerprintRoundTrip(t *testing.T) {
	for _, tgt := range Presets() {
		fp := tgt.Fingerprint()
		parsed, err := ParseFingerprint(fp)
		if err != nil {
			t.Fatalf("%s: %v", tgt.Name, err)
		}
		if got := parsed.Fingerprint(); got != fp {
			t.Errorf("%s: round trip %q != %q", tgt.Name, got, fp)
		}
	}
	for _, bad := range []string{
		"", "garbage", "K4", "K4;vdd=1.2", "Kx;vdd=1;clut=1;creg=1;lutns=1;clkns=1;proj=none",
		"K4;vdd=1.2;clut=4.5e-12;creg=3e-12;lutns=0.9;clkns=3;proj=35:14",
		"K9;vdd=1.2;clut=4.5e-12;creg=3e-12;lutns=0.9;clkns=3;proj=none",
		"K4;vdd=-1;clut=4.5e-12;creg=3e-12;lutns=0.9;clkns=3;proj=none",
	} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Errorf("ParseFingerprint(%q) accepted malformed input", bad)
		}
	}
}

func TestByName(t *testing.T) {
	for name, wantK := range map[string]int{"k4": 4, "K6": 6, " asic ": 4} {
		tgt, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		if tgt.K != wantK {
			t.Errorf("ByName(%q).K = %d, want %d", name, tgt.K, wantK)
		}
	}
	if tgt, _ := ByName("asic"); tgt.Projection == nil {
		t.Error("ByName(asic) carries no projection")
	}
	if _, ok := ByName("k9"); ok {
		t.Error("ByName accepted an unknown architecture")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Target){
		"K too small": func(t *Target) { t.K = 1 },
		"K too large": func(t *Target) { t.K = 7 },
		"zero Vdd":    func(t *Target) { t.Vdd = 0 },
		"neg CLut":    func(t *Target) { t.CLut = -1 },
		"zero delay":  func(t *Target) { t.LUTDelayNs = 0 },
		"bad proj":    func(t *Target) { t.Projection = &Projection{AreaDiv: 35, PowerDiv: 0, FreqMult: 3.4} },
	}
	for name, mutate := range cases {
		tgt := CycloneII()
		mutate(&tgt)
		if err := tgt.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, tgt)
		}
	}
}

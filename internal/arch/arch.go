// Package arch defines target-architecture descriptors for the flow:
// the LUT input count the technology mapper covers with, the electrical
// and timing constants the power model analyzes under, and an optional
// FPGA→ASIC projection block. The paper evaluates one fabric (Altera
// Cyclone II, 90 nm, 4-input LUTs); this package generalizes the
// reproduction to a parameterized family so K-sweeps and projected-ASIC
// scenarios run through the same pipeline.
//
// Presets:
//
//   - CycloneII: the paper's testbed, bit-identical to the constants
//     the reproduction has always used.
//   - StratixLike6LUT: a 6-input-LUT fabric in the style of Stratix-era
//     parts, with constants scaled following the COFFE custom-flow
//     report for an N=10, K=6 fracturable-LUT architecture
//     (SNIPPETS.md §1): a 6-LUT cell is roughly twice the 4-LUT's
//     transistor count, so its switched capacitance and intrinsic delay
//     both grow, while the shallower covers it enables claw the delay
//     back at the network level.
//   - ASICProjected: any FPGA base plus the measured FPGA↔ASIC gap
//     factors of Kuon & Rose's empirical study (logic-only designs:
//     area ÷35, dynamic power ÷14 at iso-frequency, achievable
//     frequency ×3.4), as carried by the Charm fpga2asic model
//     (SNIPPETS.md §2).
//
// A Target's Fingerprint is its cache and snapshot identity: every
// pipeline stage whose result depends on the fabric keys on it, and SA
// tables are stamped with it so a table characterized under one arch can
// never silently serve another. The fingerprint covers the physics
// (K, constants, projection) and excludes the display Name, matching
// the flow-wide rule that labels never enter cache identity.
package arch

import (
	"fmt"
	"strconv"
	"strings"
)

// MinK and MaxK bound the supported LUT input counts. The lower bound is
// structural (a 1-input LUT cannot cover logic); the upper bound is the
// estimator contract: prob.Char's packed pair-code tables and the
// mapper's truth-table fast paths assume functions of at most 6
// variables (prob.pairCodeMaxVars), so a K beyond 6 would silently fall
// off the validated paths.
const (
	MinK = 2
	MaxK = 6
)

// Projection holds empirical FPGA→ASIC gap factors. The reference
// values (LogicProjection) come from Kuon & Rose's measured comparison
// of logic-only designs on a 90 nm Stratix II against standard-cell
// ASICs on the same node; dynamic power is compared with both
// implementations clocked at the same frequency, while FreqMult reports
// the separately achievable clock speedup.
type Projection struct {
	// AreaDiv divides FPGA logic area (LUT count as the proxy).
	AreaDiv float64
	// PowerDiv divides FPGA dynamic power (iso-frequency comparison).
	PowerDiv float64
	// FreqMult multiplies the achievable clock frequency (divides the
	// clock period).
	FreqMult float64
}

// LogicProjection returns the measured logic-only gap factors
// (area ÷35, dynamic power ÷14, frequency ×3.4).
func LogicProjection() Projection {
	return Projection{AreaDiv: 35, PowerDiv: 14, FreqMult: 3.4}
}

// Area projects an FPGA logic area onto the ASIC.
func (p Projection) Area(fpga float64) float64 {
	if p.AreaDiv <= 0 {
		return fpga
	}
	return fpga / p.AreaDiv
}

// Power projects an FPGA dynamic power onto the ASIC (iso-frequency).
func (p Projection) Power(fpga float64) float64 {
	if p.PowerDiv <= 0 {
		return fpga
	}
	return fpga / p.PowerDiv
}

// PeriodNs projects an FPGA clock period onto the ASIC's achievable
// period.
func (p Projection) PeriodNs(fpga float64) float64 {
	if p.FreqMult <= 0 {
		return fpga
	}
	return fpga / p.FreqMult
}

// Target describes one implementation fabric: the LUT input count the
// mapper targets and the electrical/timing constants the power model
// runs with. The zero value is not a valid target; start from a preset
// or fill every field and Validate.
type Target struct {
	// Name is the display label ("k4", "k6", ...). Display-only: it is
	// excluded from Fingerprint and so from every cache key.
	Name string
	// K is the LUT input count the mapper covers with.
	K int
	// Vdd is the core supply voltage in volts.
	Vdd float64
	// CLut is the effective switched capacitance per LUT output in
	// farads, including average routing load.
	CLut float64
	// CReg is the effective switched capacitance per register output.
	CReg float64
	// LUTDelayNs is the per-level LUT+routing delay in nanoseconds.
	LUTDelayNs float64
	// ClockOverheadNs covers clock-to-Q, setup, and global network skew.
	ClockOverheadNs float64
	// Projection, when non-nil, applies FPGA→ASIC gap factors to the
	// final power report (the mapping and simulation still model the
	// FPGA fabric; the projection rescales the measured outcome).
	Projection *Projection
}

// CycloneII returns the paper's testbed architecture: Altera Cyclone II,
// 90 nm, 4-input LUTs, 1.2 V. The constants are bit-identical to the
// ones the reproduction's power model has always used, so every golden
// result is unchanged under this target.
func CycloneII() Target {
	return Target{
		Name:            "k4",
		K:               4,
		Vdd:             1.2,
		CLut:            4.5e-12,
		CReg:            3.0e-12,
		LUTDelayNs:      0.9,
		ClockOverheadNs: 3.0,
	}
}

// StratixLike6LUT returns a 6-input-LUT fabric on the same 90 nm / 1.2 V
// node, in the style of Stratix-era adaptive logic modules. Constants
// follow the scaling the COFFE K=6 custom-flow report (SNIPPETS.md §1)
// implies relative to a 4-LUT cell: the larger LUT mux tree and its
// wider local interconnect raise the per-output switched capacitance
// (~1.4×) and the intrinsic per-level delay (~1.2×); the register and
// clock-network constants are fabric-level and stay put.
func StratixLike6LUT() Target {
	return Target{
		Name:            "k6",
		K:               6,
		Vdd:             1.2,
		CLut:            6.3e-12,
		CReg:            3.0e-12,
		LUTDelayNs:      1.08,
		ClockOverheadNs: 3.0,
	}
}

// ASICProjected returns base with the measured logic-only FPGA→ASIC
// gap factors attached (LogicProjection). Mapping and simulation still
// run on the base FPGA fabric — the projection is an empirical rescale
// of the final report, the way Kuon & Rose's factors are meant to be
// applied.
func ASICProjected(base Target) Target {
	t := base
	t.Name = base.Name + "-asic"
	p := LogicProjection()
	t.Projection = &p
	return t
}

// Presets returns the built-in target set the cross-architecture sweep
// compares: K=4, K=6, and the ASIC projection of the K=4 base.
func Presets() []Target {
	return []Target{CycloneII(), StratixLike6LUT(), ASICProjected(CycloneII())}
}

// ByName resolves a CLI architecture name. Recognized: "k4" (Cyclone
// II), "k6" (Stratix-like 6-LUT), "asic" (K=4 with the ASIC
// projection).
func ByName(name string) (Target, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "k4", "cyclone2", "cycloneii":
		return CycloneII(), true
	case "k6", "stratix6", "stratixlike6lut":
		return StratixLike6LUT(), true
	case "asic":
		return ASICProjected(CycloneII()), true
	}
	return Target{}, false
}

// Validate reports whether the descriptor is usable: K within
// [MinK, MaxK], every electrical/timing constant positive, and — when a
// projection is attached — every gap factor positive.
func (t Target) Validate() error {
	if t.K < MinK || t.K > MaxK {
		return fmt.Errorf("arch: K=%d outside supported range [%d,%d]", t.K, MinK, MaxK)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"Vdd", t.Vdd},
		{"CLut", t.CLut},
		{"CReg", t.CReg},
		{"LUTDelayNs", t.LUTDelayNs},
		{"ClockOverheadNs", t.ClockOverheadNs},
	} {
		if !(c.v > 0) {
			return fmt.Errorf("arch: %s=%g must be positive", c.name, c.v)
		}
	}
	if p := t.Projection; p != nil {
		if !(p.AreaDiv > 0) || !(p.PowerDiv > 0) || !(p.FreqMult > 0) {
			return fmt.Errorf("arch: projection factors (%g,%g,%g) must be positive",
				p.AreaDiv, p.PowerDiv, p.FreqMult)
		}
	}
	return nil
}

// g renders a float the way Fingerprint and ParseFingerprint agree on.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Fingerprint renders the target's physics as a canonical, space-free,
// parseable token: equal fingerprints mean interchangeable targets. It
// is the arch identity stage cache keys and SA-table snapshots embed.
// The display Name is deliberately excluded.
func (t Target) Fingerprint() string {
	proj := "none"
	if p := t.Projection; p != nil {
		proj = g(p.AreaDiv) + ":" + g(p.PowerDiv) + ":" + g(p.FreqMult)
	}
	return fmt.Sprintf("K%d;vdd=%s;clut=%s;creg=%s;lutns=%s;clkns=%s;proj=%s",
		t.K, g(t.Vdd), g(t.CLut), g(t.CReg), g(t.LUTDelayNs), g(t.ClockOverheadNs), proj)
}

// ParseFingerprint inverts Fingerprint. The returned Target carries no
// display Name (fingerprints never do); attach one if needed. Round
// trip: ParseFingerprint(t.Fingerprint()).Fingerprint() == t.Fingerprint().
func ParseFingerprint(s string) (Target, error) {
	var t Target
	fields := strings.Split(s, ";")
	if len(fields) != 7 || !strings.HasPrefix(fields[0], "K") {
		return Target{}, fmt.Errorf("arch: bad fingerprint %q", s)
	}
	k, err := strconv.Atoi(fields[0][1:])
	if err != nil {
		return Target{}, fmt.Errorf("arch: bad fingerprint %q: %w", s, err)
	}
	t.K = k
	want := []string{"vdd", "clut", "creg", "lutns", "clkns"}
	dst := []*float64{&t.Vdd, &t.CLut, &t.CReg, &t.LUTDelayNs, &t.ClockOverheadNs}
	for i, f := range fields[1 : 1+len(want)] {
		key, val, ok := strings.Cut(f, "=")
		if !ok || key != want[i] {
			return Target{}, fmt.Errorf("arch: bad fingerprint field %q (want %s=...)", f, want[i])
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Target{}, fmt.Errorf("arch: bad fingerprint field %q: %w", f, err)
		}
		*dst[i] = v
	}
	proj, ok := strings.CutPrefix(fields[6], "proj=")
	if !ok {
		return Target{}, fmt.Errorf("arch: bad fingerprint field %q (want proj=...)", fields[6])
	}
	if proj != "none" {
		parts := strings.Split(proj, ":")
		if len(parts) != 3 {
			return Target{}, fmt.Errorf("arch: bad projection %q in fingerprint", proj)
		}
		var p Projection
		for i, d := range []*float64{&p.AreaDiv, &p.PowerDiv, &p.FreqMult} {
			v, err := strconv.ParseFloat(parts[i], 64)
			if err != nil {
				return Target{}, fmt.Errorf("arch: bad projection %q in fingerprint: %w", proj, err)
			}
			*d = v
		}
		t.Projection = &p
	}
	if err := t.Validate(); err != nil {
		return Target{}, fmt.Errorf("arch: fingerprint %q: %w", s, err)
	}
	return t, nil
}

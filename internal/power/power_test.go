package power

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/mapper"
	"repro/internal/netgen"
	"repro/internal/sim"
)

// TestFromArchMatchesCycloneII pins the descriptor-built model to the
// historical constants: the default arch must be bit-identical.
func TestFromArchMatchesCycloneII(t *testing.T) {
	want := Model{
		Vdd:             1.2,
		CLut:            4.5e-12,
		CReg:            3.0e-12,
		LUTDelayNs:      0.9,
		ClockOverheadNs: 3.0,
	}
	if got := FromArch(arch.CycloneII()); got != want {
		t.Errorf("FromArch(CycloneII) = %+v, want %+v", got, want)
	}
	if got := CycloneII(); got != want {
		t.Errorf("CycloneII() = %+v, want %+v", got, want)
	}
}

// TestProjectAppliesGapFactors checks the FPGA→ASIC rescale: power ÷14
// (iso-frequency), period ÷3.4, activity metrics untouched.
func TestProjectAppliesGapFactors(t *testing.T) {
	in := Report{
		DynamicPowerMW:       14,
		ClockPeriodNs:        6.8,
		AvgToggleRateMHz:     5,
		TotalTogglesPerCycle: 123,
		GlitchShare:          0.25,
	}
	out := Project(arch.LogicProjection(), in)
	if math.Abs(out.DynamicPowerMW-1) > 1e-12 {
		t.Errorf("projected power %g, want 1", out.DynamicPowerMW)
	}
	if math.Abs(out.ClockPeriodNs-2) > 1e-12 {
		t.Errorf("projected period %g, want 2", out.ClockPeriodNs)
	}
	if out.AvgToggleRateMHz != in.AvgToggleRateMHz ||
		out.TotalTogglesPerCycle != in.TotalTogglesPerCycle ||
		out.GlitchShare != in.GlitchShare {
		t.Errorf("projection touched activity metrics: %+v", out)
	}
}

func TestClockPeriodScalesWithDepth(t *testing.T) {
	m := CycloneII()
	if m.ClockPeriodNs(0) != m.ClockOverheadNs {
		t.Fatal("zero-depth period should be pure overhead")
	}
	if m.ClockPeriodNs(10) <= m.ClockPeriodNs(5) {
		t.Fatal("period must grow with depth")
	}
}

func TestFrequency(t *testing.T) {
	if f := FrequencyHz(10); math.Abs(f-1e8) > 1 {
		t.Fatalf("10 ns -> %v Hz, want 1e8", f)
	}
	if FrequencyHz(0) != 0 {
		t.Fatal("zero period should return 0")
	}
}

func TestAnalyzeProducesConsistentReport(t *testing.T) {
	net := netgen.MultiplierNetwork(8)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(res.Mapped)
	if err != nil {
		t.Fatal(err)
	}
	counts := s.RunRandom(1000, 21)
	rep := CycloneII().Analyze(res.Mapped, counts)

	if rep.DynamicPowerMW <= 0 {
		t.Fatal("dynamic power should be positive")
	}
	if rep.ClockPeriodNs <= CycloneII().ClockOverheadNs {
		t.Fatal("clock period should include logic depth")
	}
	if rep.AvgToggleRateMHz <= 0 {
		t.Fatal("toggle rate should be positive")
	}
	if rep.GlitchShare <= 0 || rep.GlitchShare >= 1 {
		t.Fatalf("glitch share out of range: %v", rep.GlitchShare)
	}
	if rep.TotalTogglesPerCycle <= 0 {
		t.Fatal("toggles per cycle should be positive")
	}
}

func TestAnalyzeZeroCycles(t *testing.T) {
	net := netgen.AdderNetwork(4)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := CycloneII().Analyze(res.Mapped, sim.Counts{})
	if rep.DynamicPowerMW != 0 {
		t.Fatal("no cycles should mean no measured power")
	}
	if rep.ClockPeriodNs <= 0 {
		t.Fatal("period should still be reported")
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	// Doubling transition counts (same cycles) should double power.
	net := netgen.AdderNetwork(8)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c1 := sim.Counts{Gate: 1000, GateFunctional: 800, Latch: 100, Cycles: 100}
	c2 := sim.Counts{Gate: 2000, GateFunctional: 1600, Latch: 200, Cycles: 100}
	m := CycloneII()
	p1 := m.Analyze(res.Mapped, c1).DynamicPowerMW
	p2 := m.Analyze(res.Mapped, c2).DynamicPowerMW
	if math.Abs(p2-2*p1) > 1e-9 {
		t.Fatalf("power not linear in activity: %v vs %v", p1, p2)
	}
}

func TestDynamicPowerEquation(t *testing.T) {
	// Hand-check the Pd equation on synthetic counts: only gates, no
	// latches. Pd = 0.5 * Vdd^2 * CLut * toggles_per_second.
	net := netgen.AdderNetwork(4)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := CycloneII()
	counts := sim.Counts{Gate: 500, GateFunctional: 500, Cycles: 100}
	period := m.ClockPeriodNs(res.Mapped.Depth())
	f := 1e9 / period
	want := 0.5 * m.Vdd * m.Vdd * m.CLut * (500.0 / 100.0 * f) * 1e3
	got := m.Analyze(res.Mapped, counts).DynamicPowerMW
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Pd = %v, want %v", got, want)
	}
}

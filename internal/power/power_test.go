package power

import (
	"math"
	"testing"

	"repro/internal/mapper"
	"repro/internal/netgen"
	"repro/internal/sim"
)

func TestClockPeriodScalesWithDepth(t *testing.T) {
	m := CycloneII()
	if m.ClockPeriodNs(0) != m.ClockOverheadNs {
		t.Fatal("zero-depth period should be pure overhead")
	}
	if m.ClockPeriodNs(10) <= m.ClockPeriodNs(5) {
		t.Fatal("period must grow with depth")
	}
}

func TestFrequency(t *testing.T) {
	if f := FrequencyHz(10); math.Abs(f-1e8) > 1 {
		t.Fatalf("10 ns -> %v Hz, want 1e8", f)
	}
	if FrequencyHz(0) != 0 {
		t.Fatal("zero period should return 0")
	}
}

func TestAnalyzeProducesConsistentReport(t *testing.T) {
	net := netgen.MultiplierNetwork(8)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(res.Mapped)
	if err != nil {
		t.Fatal(err)
	}
	counts := s.RunRandom(1000, 21)
	rep := CycloneII().Analyze(res.Mapped, counts)

	if rep.DynamicPowerMW <= 0 {
		t.Fatal("dynamic power should be positive")
	}
	if rep.ClockPeriodNs <= CycloneII().ClockOverheadNs {
		t.Fatal("clock period should include logic depth")
	}
	if rep.AvgToggleRateMHz <= 0 {
		t.Fatal("toggle rate should be positive")
	}
	if rep.GlitchShare <= 0 || rep.GlitchShare >= 1 {
		t.Fatalf("glitch share out of range: %v", rep.GlitchShare)
	}
	if rep.TotalTogglesPerCycle <= 0 {
		t.Fatal("toggles per cycle should be positive")
	}
}

func TestAnalyzeZeroCycles(t *testing.T) {
	net := netgen.AdderNetwork(4)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := CycloneII().Analyze(res.Mapped, sim.Counts{})
	if rep.DynamicPowerMW != 0 {
		t.Fatal("no cycles should mean no measured power")
	}
	if rep.ClockPeriodNs <= 0 {
		t.Fatal("period should still be reported")
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	// Doubling transition counts (same cycles) should double power.
	net := netgen.AdderNetwork(8)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c1 := sim.Counts{Gate: 1000, GateFunctional: 800, Latch: 100, Cycles: 100}
	c2 := sim.Counts{Gate: 2000, GateFunctional: 1600, Latch: 200, Cycles: 100}
	m := CycloneII()
	p1 := m.Analyze(res.Mapped, c1).DynamicPowerMW
	p2 := m.Analyze(res.Mapped, c2).DynamicPowerMW
	if math.Abs(p2-2*p1) > 1e-9 {
		t.Fatalf("power not linear in activity: %v vs %v", p1, p2)
	}
}

func TestDynamicPowerEquation(t *testing.T) {
	// Hand-check the Pd equation on synthetic counts: only gates, no
	// latches. Pd = 0.5 * Vdd^2 * CLut * toggles_per_second.
	net := netgen.AdderNetwork(4)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := CycloneII()
	counts := sim.Counts{Gate: 500, GateFunctional: 500, Cycles: 100}
	period := m.ClockPeriodNs(res.Mapped.Depth())
	f := 1e9 / period
	want := 0.5 * m.Vdd * m.Vdd * m.CLut * (500.0 / 100.0 * f) * 1e3
	got := m.Analyze(res.Mapped, counts).DynamicPowerMW
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Pd = %v, want %v", got, want)
	}
}

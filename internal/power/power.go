// Package power implements the dynamic-power and timing models that
// substitute for Altera's Quartus II PowerPlay Power Analyzer and timing
// analysis in the paper's flow (§6.1). Dynamic power follows the
// standard equation the paper quotes in §1:
//
//	Pd = 0.5 × SA × C × Vdd² × f
//
// where SA is measured switching activity (transitions per cycle from
// the gate-level simulator), C an effective per-node capacitance
// calibrated to Cyclone II's 90 nm fabric (LUT output + average routing
// load), Vdd the 1.2 V core supply, and f the clock frequency derived
// from the mapped critical path. Absolute milliwatts are a calibration,
// not a measurement — the experiments compare ratios, which do not
// depend on the constants.
package power

import (
	"sync"

	"repro/internal/arch"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Model holds the electrical and timing constants of the target fabric.
type Model struct {
	// Vdd is the core supply voltage in volts.
	Vdd float64
	// CLut is the effective switched capacitance per LUT output in
	// farads, including average local/global routing load.
	CLut float64
	// CReg is the effective switched capacitance per register output.
	CReg float64
	// LUTDelayNs is the per-level LUT+routing delay in nanoseconds.
	LUTDelayNs float64
	// ClockOverheadNs covers clock-to-Q, setup, and global network skew.
	ClockOverheadNs float64
}

// CycloneII returns constants calibrated for the Altera Cyclone II
// (90 nm, 4-input LUTs, 1.2 V) — the paper's testbed architecture.
// Identical to FromArch(arch.CycloneII()); kept as the historical
// constructor.
func CycloneII() Model {
	return FromArch(arch.CycloneII())
}

// FromArch builds the power model from a target-architecture
// descriptor. The descriptor's Projection block is not consumed here —
// Analyze always reports the FPGA-fabric numbers; apply the projection
// afterwards with Project.
func FromArch(t arch.Target) Model {
	return Model{
		Vdd:             t.Vdd,
		CLut:            t.CLut,
		CReg:            t.CReg,
		LUTDelayNs:      t.LUTDelayNs,
		ClockOverheadNs: t.ClockOverheadNs,
	}
}

// ClockPeriodNs returns the achievable clock period for a mapped network
// of the given LUT depth.
func (m Model) ClockPeriodNs(depth int) float64 {
	return m.ClockOverheadNs + float64(depth)*m.LUTDelayNs
}

// FrequencyHz converts a clock period in nanoseconds to hertz.
func FrequencyHz(periodNs float64) float64 {
	if periodNs <= 0 {
		return 0
	}
	return 1e9 / periodNs
}

// Report is a power/timing summary for one design, mirroring the columns
// of the paper's Table 3.
type Report struct {
	// DynamicPowerMW is the estimated dynamic power in milliwatts.
	DynamicPowerMW float64
	// ClockPeriodNs is the achievable clock period.
	ClockPeriodNs float64
	// AvgToggleRateMHz is the per-signal average toggle rate in millions
	// of transitions per second (the Figure 3 metric, as reported by
	// Quartus II).
	AvgToggleRateMHz float64
	// TotalTogglesPerCycle is the raw switching activity per clock.
	TotalTogglesPerCycle float64
	// GlitchShare is the fraction of gate transitions that are spurious.
	GlitchShare float64
}

// Analyze produces the power/timing report for a mapped network and its
// measured transition counts.
func (m Model) Analyze(mapped *logic.Network, counts sim.Counts) Report {
	return m.analyze(mapped, counts, mapped.NumGates())
}

// AnalyzeJobs is Analyze with the per-node classification scan chunked
// across up to jobs goroutines. The chunk partials are integers reduced
// in fixed chunk order, so the Report is bit-identical to Analyze's at
// any worker count.
func (m Model) AnalyzeJobs(mapped *logic.Network, counts sim.Counts, jobs int) Report {
	if jobs <= 1 {
		return m.Analyze(mapped, counts)
	}
	return m.analyze(mapped, counts, numGatesJobs(mapped, jobs))
}

// numGatesJobs counts KindGate nodes with a chunked parallel scan and a
// fixed-order reduction over the per-chunk partial counts.
func numGatesJobs(mapped *logic.Network, jobs int) int {
	n := len(mapped.Nodes)
	chunk := (n + jobs - 1) / jobs
	if chunk < 1 {
		chunk = 1
	}
	nc := (n + chunk - 1) / chunk
	partial := make([]int, nc)
	var wg sync.WaitGroup
	for c := 0; c < nc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			cnt := 0
			for _, nd := range mapped.Nodes[lo:hi] {
				if nd.Kind == logic.KindGate {
					cnt++
				}
			}
			partial[c] = cnt
		}(c)
	}
	wg.Wait()
	total := 0
	for _, p := range partial {
		total += p
	}
	return total
}

func (m Model) analyze(mapped *logic.Network, counts sim.Counts, numGates int) Report {
	period := m.ClockPeriodNs(mapped.Depth())
	f := FrequencyHz(period)
	cycles := float64(counts.Cycles)
	if cycles == 0 {
		return Report{ClockPeriodNs: period}
	}
	gateTps := float64(counts.Gate) / cycles * f
	latchTps := float64(counts.Latch) / cycles * f

	pd := 0.5 * m.Vdd * m.Vdd * (m.CLut*gateTps + m.CReg*latchTps)

	numSignals := numGates + len(mapped.Latches)
	avgToggle := 0.0
	if numSignals > 0 {
		avgToggle = (gateTps + latchTps) / float64(numSignals) / 1e6
	}
	glitchShare := 0.0
	if counts.Gate > 0 {
		glitchShare = float64(counts.Glitches()) / float64(counts.Gate)
	}
	return Report{
		DynamicPowerMW:       pd * 1e3,
		ClockPeriodNs:        period,
		AvgToggleRateMHz:     avgToggle,
		TotalTogglesPerCycle: counts.TogglesPerCycle(),
		GlitchShare:          glitchShare,
	}
}

// Project applies FPGA→ASIC gap factors to an FPGA-fabric report:
// dynamic power divides by PowerDiv (Kuon & Rose compare dynamic power
// with both implementations at the same frequency, so the measured
// toggle basis is unchanged) and the clock period divides by FreqMult
// (the separately achievable speedup). The per-cycle and per-signal
// activity metrics (AvgToggleRateMHz, TotalTogglesPerCycle,
// GlitchShare) describe the logic's switching behaviour at the
// comparison frequency and pass through untouched. Area has no Report
// field; project LUT counts with Projection.Area directly.
func Project(p arch.Projection, r Report) Report {
	r.DynamicPowerMW = p.Power(r.DynamicPowerMW)
	r.ClockPeriodNs = p.PeriodNs(r.ClockPeriodNs)
	return r
}

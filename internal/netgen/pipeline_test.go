package netgen

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// stepPipe drives the pipelined multiplier one clock cycle and returns
// the settled output value.
func stepPipe(net *logic.Network, st *[]bool, w int, a, b uint64) uint64 {
	in := make([]bool, len(net.Inputs))
	for i, id := range net.Inputs {
		name := net.Node(id).Name
		var v uint64
		var bit int
		if name[0] == 'A' {
			v = a
			bit = int(name[1] - '0')
		} else {
			v = b
			bit = int(name[1] - '0')
		}
		in[i] = v&(1<<uint(bit)) != 0
	}
	val := net.Eval(in, *st)
	*st = net.NextLatchState(val)
	var out uint64
	for i, o := range net.Outputs {
		if val[o.Node] {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestPipelinedMultiplierLatencyAndThroughput(t *testing.T) {
	const w = 6
	for _, stages := range []int{2, 3} {
		net := PipelinedMultiplierNetwork(w, stages)
		if err := net.Check(); err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if len(net.Latches) == 0 {
			t.Fatalf("stages=%d: no pipeline registers", stages)
		}
		st := net.InitialLatchState()
		rng := rand.New(rand.NewSource(int64(stages)))
		mask := uint64(1<<w - 1)
		// Stream random operand pairs at full rate (II = 1) and check
		// each product appears stages-1 cycles after its operands.
		type pair struct{ a, b uint64 }
		var history []pair
		for cyc := 0; cyc < 40; cyc++ {
			p := pair{uint64(rng.Intn(1 << w)), uint64(rng.Intn(1 << w))}
			history = append(history, p)
			out := stepPipe(net, &st, w, p.a, p.b)
			if lag := stages - 1; cyc >= lag {
				src := history[cyc-lag]
				want := (src.a * src.b) & mask
				if out != want {
					t.Fatalf("stages=%d cycle %d: out %d, want %d*%d=%d", stages, cyc, out, src.a, src.b, want)
				}
			}
		}
	}
}

func TestPipelinedStagesOneIsCombinational(t *testing.T) {
	net := PipelinedMultiplierNetwork(5, 1)
	if len(net.Latches) != 0 {
		t.Fatal("1-stage pipeline should have no registers")
	}
	ref := MultiplierNetwork(5)
	if net.NumGates() != ref.NumGates() {
		t.Fatalf("1-stage pipelined gates %d != array %d", net.NumGates(), ref.NumGates())
	}
}

func TestPipelineCutsShortenCriticalDepth(t *testing.T) {
	comb := MultiplierNetwork(8).Depth()
	piped := PipelinedMultiplierNetwork(8, 2).Depth()
	if piped >= comb {
		t.Fatalf("pipeline cut should shorten depth: %d vs %d", piped, comb)
	}
}

func TestPipelinedBankCountMatchesStages(t *testing.T) {
	const w = 8
	for _, stages := range []int{2, 3, 4} {
		net := PipelinedMultiplierNetwork(w, stages)
		// Latch count must be a multiple of banks; more importantly the
		// functional latency test above pins the cycle count. Here just
		// ensure deeper pipelines have more registers.
		if stages > 2 {
			prev := PipelinedMultiplierNetwork(w, stages-1)
			if len(net.Latches) <= len(prev.Latches) {
				t.Fatalf("stages=%d has %d latches, stages=%d has %d", stages, len(net.Latches), stages-1, len(prev.Latches))
			}
		}
	}
}

package netgen

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

// This file provides architectural variants of the arithmetic units:
// carry-lookahead and carry-select adders and a Wallace-tree multiplier.
// They give the module-selection extension (internal/modsel) a real
// design space: the variants trade LUT count against depth and glitch
// behaviour, which is exactly the trade-off the paper's future-work
// section ("module selection") wants a binder to navigate.

// AdderArch identifies an adder implementation.
type AdderArch int

const (
	// AdderRipple is the baseline ripple-carry adder: smallest, deepest,
	// and the glitchiest per bit of width.
	AdderRipple AdderArch = iota
	// AdderCLA is a 4-bit-group carry-lookahead adder: logarithmic-ish
	// carry depth at moderate area.
	AdderCLA
	// AdderCarrySelect duplicates the upper half for both carry
	// hypotheses: shallow but area-hungry.
	AdderCarrySelect
)

func (a AdderArch) String() string {
	switch a {
	case AdderRipple:
		return "ripple"
	case AdderCLA:
		return "cla"
	case AdderCarrySelect:
		return "cselect"
	}
	return fmt.Sprintf("adder(%d)", int(a))
}

// MultArch identifies a multiplier implementation.
type MultArch int

const (
	// MultArray is the baseline shift-and-add array multiplier.
	MultArray MultArch = iota
	// MultWallace reduces partial products with a carry-save tree and a
	// final ripple adder: shallower and less glitchy than the array.
	MultWallace
)

func (m MultArch) String() string {
	switch m {
	case MultArray:
		return "array"
	case MultWallace:
		return "wallace"
	}
	return fmt.Sprintf("mult(%d)", int(m))
}

// BuildAdderArch appends the selected adder architecture. The built
// range is tagged as a macro; architectures whose structure includes
// constant nodes (CLA, carry-select) are demoted back to glue by the
// mapper's validation, so only the all-gate ripple core is memoized.
func BuildAdderArch(net NetBuilder, arch AdderArch, prefix string, a, b []int) []int {
	lo := net.NumNodes()
	var sum []int
	switch arch {
	case AdderCLA:
		sum = buildCLA(net, prefix, a, b)
	case AdderCarrySelect:
		sum = buildCarrySelect(net, prefix, a, b)
	default:
		sum, _ = BuildAdder(net, prefix, a, b, -1)
	}
	net.TagMacro(prefix+"add", fmt.Sprintf("add/%s/%d", arch, len(a)), lo)
	return sum
}

// BuildMultArch appends the selected multiplier architecture, tagged as
// a macro (see BuildAdderArch on constant-node demotion).
func BuildMultArch(net NetBuilder, arch MultArch, prefix string, a, b []int) []int {
	lo := net.NumNodes()
	var p []int
	switch arch {
	case MultWallace:
		p = buildWallace(net, prefix, a, b)
	default:
		p = BuildMultiplier(net, prefix, a, b)
	}
	net.TagMacro(prefix+"mult", fmt.Sprintf("mult/%s/%d", arch, len(a)), lo)
	return p
}

// wideAnd and wideOr build n-ary gates as trees of up-to-4-input gates
// (one 4-LUT each after mapping), keeping lookahead logic shallow.
func wideAnd(net NetBuilder, prefix string, ins []int) int {
	return wideGate(net, prefix, ins, func(n int) *bitvec.TruthTable {
		return bitvec.FromFunc(n, func(a uint) bool { return a == 1<<uint(n)-1 })
	})
}

func wideOr(net NetBuilder, prefix string, ins []int) int {
	return wideGate(net, prefix, ins, func(n int) *bitvec.TruthTable {
		return bitvec.FromFunc(n, func(a uint) bool { return a != 0 })
	})
}

func wideGate(net NetBuilder, prefix string, ins []int, tt func(int) *bitvec.TruthTable) int {
	if len(ins) == 0 {
		panic("netgen: wide gate with no inputs")
	}
	level := 0
	cur := ins
	for len(cur) > 1 {
		var next []int
		for i := 0; i < len(cur); i += 4 {
			end := i + 4
			if end > len(cur) {
				end = len(cur)
			}
			if end-i == 1 {
				next = append(next, cur[i])
				continue
			}
			next = append(next, net.AddGate(
				fmt.Sprintf("%s_w%d_%d", prefix, level, i/4), tt(end-i), cur[i:end]...))
		}
		cur = next
		level++
	}
	return cur[0]
}

// buildCLA builds a carry-lookahead adder with 4-bit groups: bit-level
// generate/propagate, group G/P in two wide-gate levels, a short
// inter-group carry chain, and in-group carry expansion — the classic
// structure, shallow because each lookahead term is one 4-LUT.
func buildCLA(net NetBuilder, prefix string, a, b []int) []int {
	if len(a) != len(b) {
		panic("netgen: adder operand widths differ")
	}
	w := len(a)
	gBit := make([]int, w)
	pBit := make([]int, w)
	for i := 0; i < w; i++ {
		gBit[i] = net.AddGate(fmt.Sprintf("%sg%d", prefix, i), logic.TTAnd2(), a[i], b[i])
		pBit[i] = net.AddGate(fmt.Sprintf("%sp%d", prefix, i), logic.TTXor2(), a[i], b[i])
	}
	carry := make([]int, w+1)
	carry[0] = net.AddConst(prefix+"c0", false)
	for base := 0; base < w; base += 4 {
		end := base + 4
		if end > w {
			end = w
		}
		// In-group carries: c[i+1] = OR over j<=i of (g[j] & p[j+1..i])
		// OR (c[base] & p[base..i]); every AND term fits one wide gate.
		for i := base; i < end; i++ {
			var terms []int
			for j := i; j >= base; j-- {
				ins := []int{gBit[j]}
				for k := j + 1; k <= i; k++ {
					ins = append(ins, pBit[k])
				}
				terms = append(terms, wideAnd(net, fmt.Sprintf("%st%d_%d", prefix, i, j), ins))
			}
			ins := []int{carry[base]}
			for k := base; k <= i; k++ {
				ins = append(ins, pBit[k])
			}
			terms = append(terms, wideAnd(net, fmt.Sprintf("%su%d", prefix, i), ins))
			carry[i+1] = wideOr(net, fmt.Sprintf("%sc%d", prefix, i+1), terms)
		}
	}
	sum := make([]int, w)
	for i := 0; i < w; i++ {
		sum[i] = net.AddGate(fmt.Sprintf("%ss%d", prefix, i), logic.TTXor2(), pBit[i], carry[i])
	}
	return sum
}

// buildCarrySelect splits the operands in half: the low half is a ripple
// adder; the high half is computed for both carry-in hypotheses and
// selected by the low half's carry out.
func buildCarrySelect(net NetBuilder, prefix string, a, b []int) []int {
	if len(a) != len(b) {
		panic("netgen: adder operand widths differ")
	}
	w := len(a)
	if w < 4 {
		sum, _ := BuildAdder(net, prefix, a, b, -1)
		return sum
	}
	half := w / 2
	low, cmid := BuildAdder(net, prefix+"lo_", a[:half], b[:half], -1)
	zero := net.AddConst(prefix+"zero", false)
	one := net.AddConst(prefix+"one", true)
	hi0, _ := BuildAdder(net, prefix+"h0_", a[half:], b[half:], zero)
	hi1, _ := BuildAdder(net, prefix+"h1_", a[half:], b[half:], one)
	sum := make([]int, w)
	copy(sum, low)
	for i := half; i < w; i++ {
		sum[i] = net.AddGate(fmt.Sprintf("%ssel%d", prefix, i), logic.TTMux2(), cmid, hi0[i-half], hi1[i-half])
	}
	return sum
}

// buildWallace reduces the truncated partial-product matrix with 3:2
// carry-save compressors until two rows remain, then adds them with a
// ripple adder.
func buildWallace(net NetBuilder, prefix string, a, b []int) []int {
	if len(a) != len(b) {
		panic("netgen: multiplier operand widths differ")
	}
	w := len(a)
	// cols[c] = list of partial-product bits of weight c (c < w).
	cols := make([][]int, w)
	for i := 0; i < w; i++ {
		for j := 0; i+j < w; j++ {
			cols[i+j] = append(cols[i+j], net.AddGate(fmt.Sprintf("%spp%d_%d", prefix, i, j), logic.TTAnd2(), a[i], b[j]))
		}
	}
	// Carry-save reduction: full adders compress 3 bits of one column
	// into 1 sum (same column) + 1 carry (next column); half adders
	// compress 2 into 1+1 when it helps reach the 2-row goal.
	round := 0
	for {
		max := 0
		for _, col := range cols {
			if len(col) > max {
				max = len(col)
			}
		}
		if max <= 2 {
			break
		}
		next := make([][]int, w)
		for c := 0; c < w; c++ {
			col := cols[c]
			i := 0
			for len(col)-i >= 3 {
				s := net.AddGate(fmt.Sprintf("%sw%d_s%d_%d", prefix, round, c, i), logic.TTXor3(), col[i], col[i+1], col[i+2])
				cy := net.AddGate(fmt.Sprintf("%sw%d_c%d_%d", prefix, round, c, i), logic.TTMaj3(), col[i], col[i+1], col[i+2])
				next[c] = append(next[c], s)
				if c+1 < w {
					next[c+1] = append(next[c+1], cy)
				}
				i += 3
			}
			if len(col)-i == 2 && len(col) > 2 {
				s := net.AddGate(fmt.Sprintf("%sw%d_hs%d", prefix, round, c), logic.TTXor2(), col[i], col[i+1])
				cy := net.AddGate(fmt.Sprintf("%sw%d_hc%d", prefix, round, c), logic.TTAnd2(), col[i], col[i+1])
				next[c] = append(next[c], s)
				if c+1 < w {
					next[c+1] = append(next[c+1], cy)
				}
				i += 2
			}
			for ; i < len(col); i++ {
				next[c] = append(next[c], col[i])
			}
		}
		cols = next
		round++
	}
	// Final two rows -> ripple addition.
	zero := -1
	rowBit := func(col []int, idx int) int {
		if idx < len(col) {
			return col[idx]
		}
		if zero < 0 {
			zero = net.AddConst(prefix+"z", false)
		}
		return zero
	}
	rowA := make([]int, w)
	rowB := make([]int, w)
	for c := 0; c < w; c++ {
		rowA[c] = rowBit(cols[c], 0)
		rowB[c] = rowBit(cols[c], 1)
	}
	sum, _ := BuildAdder(net, prefix+"fa_", rowA, rowB, -1)
	return sum
}

// AdderArchNetwork returns a standalone adder of the given architecture.
func AdderArchNetwork(arch AdderArch, w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("add_%s%d", arch, w))
	a := addInputBus(net, "A", w)
	b := addInputBus(net, "B", w)
	markOutputBus(net, "S", BuildAdderArch(net, arch, "", a, b))
	return net
}

// MultArchNetwork returns a standalone multiplier of the given
// architecture.
func MultArchNetwork(arch MultArch, w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("mult_%s%d", arch, w))
	a := addInputBus(net, "A", w)
	b := addInputBus(net, "B", w)
	markOutputBus(net, "P", BuildMultArch(net, arch, "", a, b))
	return net
}

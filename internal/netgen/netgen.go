// Package netgen generates gate-level implementations of the HLPower
// resource library: ripple-carry adders/subtractors, array multipliers,
// multiplexer trees, and registers, plus the partial datapaths
// (mux + mux + functional unit) whose switching activity drives the
// binder's edge weights (paper §5.2.2, Fig. 2). All generators build into
// a logic.Network out of 2- and 3-input gates so the 4-LUT mapper has
// realistic structure (and realistic glitching) to work with.
package netgen

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/logic"
)

// NetBuilder is the narrow construction surface the generators need.
// *logic.Network satisfies it directly; datapath's parallel elaboration
// substitutes a recording fragment that replays the same calls into the
// final network in deterministic order, so the generators never know
// whether they are building live or onto a tape.
type NetBuilder interface {
	AddGate(name string, fn *bitvec.TruthTable, fanins ...int) int
	AddLatch(name string, init bool) int
	AddConst(name string, v bool) int
	ConnectLatch(q, d int)
	NumNodes() int
	TagMacro(name, shape string, lo int)
}

var _ NetBuilder = (*logic.Network)(nil)

// DefaultWidth is the datapath bit width used throughout the
// reproduction when no width is specified. The paper's flow is
// width-agnostic; 8 bits keeps the gate-level experiments tractable
// while exercising multi-level carry and partial-product glitching.
const DefaultWidth = 8

// BuildAdder appends a ripple-carry adder to net computing sum = a + b +
// cin, returning the sum bits (LSB first) and the carry out. cin may be
// -1 for no carry in. Names are prefixed for hierarchy-style readability.
func BuildAdder(net NetBuilder, prefix string, a, b []int, cin int) (sum []int, cout int) {
	if len(a) != len(b) {
		panic("netgen: adder operand widths differ")
	}
	carry := cin
	sum = make([]int, len(a))
	for i := range a {
		if carry < 0 {
			// Half adder for the first stage without carry-in.
			sum[i] = net.AddGate(fmt.Sprintf("%ss%d", prefix, i), logic.TTXor2(), a[i], b[i])
			carry = net.AddGate(fmt.Sprintf("%sc%d", prefix, i), logic.TTAnd2(), a[i], b[i])
			continue
		}
		sum[i] = net.AddGate(fmt.Sprintf("%ss%d", prefix, i), logic.TTXor3(), a[i], b[i], carry)
		carry = net.AddGate(fmt.Sprintf("%sc%d", prefix, i), logic.TTMaj3(), a[i], b[i], carry)
	}
	return sum, carry
}

// BuildSubtractor appends a ripple-borrow subtractor computing a - b
// (two's complement: a + ^b + 1), returning the difference bits.
func BuildSubtractor(net NetBuilder, prefix string, a, b []int) []int {
	nb := make([]int, len(b))
	for i := range b {
		nb[i] = net.AddGate(fmt.Sprintf("%snb%d", prefix, i), logic.TTNot(), b[i])
	}
	one := net.AddConst(fmt.Sprintf("%sone", prefix), true)
	diff, _ := BuildAdder(net, prefix, a, nb, one)
	return diff
}

// BuildMultiplier appends an unsigned array (shift-and-add) multiplier
// truncated to the operand width, matching a fixed-width datapath.
// Partial products are accumulated with ripple adders row by row; the
// long unbalanced carry chains are exactly the structures whose glitches
// the paper's estimator targets.
func BuildMultiplier(net NetBuilder, prefix string, a, b []int) []int {
	if len(a) != len(b) {
		panic("netgen: multiplier operand widths differ")
	}
	w := len(a)
	// Row 0: pp[0][j] = a0 & bj placed at bit j.
	acc := make([]int, w)
	for j := 0; j < w; j++ {
		acc[j] = net.AddGate(fmt.Sprintf("%spp0_%d", prefix, j), logic.TTAnd2(), a[0], b[j])
	}
	for i := 1; i < w; i++ {
		// Row i contributes to bits i..w-1 (truncated product).
		row := make([]int, 0, w-i)
		for j := 0; i+j < w; j++ {
			row = append(row, net.AddGate(fmt.Sprintf("%spp%d_%d", prefix, i, j), logic.TTAnd2(), a[i], b[j]))
		}
		// acc[i..w-1] += row, rippling a carry to the truncated top.
		carry := -1
		for j := range row {
			bit := i + j
			if carry < 0 {
				s := net.AddGate(fmt.Sprintf("%sr%d_s%d", prefix, i, j), logic.TTXor2(), acc[bit], row[j])
				carry = net.AddGate(fmt.Sprintf("%sr%d_c%d", prefix, i, j), logic.TTAnd2(), acc[bit], row[j])
				acc[bit] = s
			} else {
				s := net.AddGate(fmt.Sprintf("%sr%d_s%d", prefix, i, j), logic.TTXor3(), acc[bit], row[j], carry)
				carry = net.AddGate(fmt.Sprintf("%sr%d_c%d", prefix, i, j), logic.TTMaj3(), acc[bit], row[j], carry)
				acc[bit] = s
			}
		}
	}
	return acc
}

// BuildMux appends a W-bit K-input multiplexer tree built from 2:1 muxes.
// sel supplies ceil(log2(K)) select lines (LSB first); data[k] is the
// W-bit input selected when the select value equals k. Returns the W
// output bits. K = 1 returns data[0] unchanged (no hardware).
func BuildMux(net NetBuilder, prefix string, sel []int, data [][]int) []int {
	k := len(data)
	if k == 0 {
		panic("netgen: mux with no data inputs")
	}
	w := len(data[0])
	for _, d := range data {
		if len(d) != w {
			panic("netgen: mux data width mismatch")
		}
	}
	if k == 1 {
		return data[0]
	}
	need := selBits(k)
	if len(sel) < need {
		panic(fmt.Sprintf("netgen: mux of %d inputs needs %d select lines, got %d", k, need, len(sel)))
	}
	lo := net.NumNodes()
	cur := make([][]int, k)
	copy(cur, data)
	level := 0
	for len(cur) > 1 {
		var next [][]int
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i])
				continue
			}
			y := make([]int, w)
			for bitIdx := 0; bitIdx < w; bitIdx++ {
				y[bitIdx] = net.AddGate(
					fmt.Sprintf("%sl%d_m%d_b%d", prefix, level, i/2, bitIdx),
					logic.TTMux2(), sel[level], cur[i][bitIdx], cur[i+1][bitIdx])
			}
			next = append(next, y)
		}
		cur = next
		level++
	}
	net.TagMacro(prefix+"mux", fmt.Sprintf("mux/%d/%d", k, w), lo)
	return cur[0]
}

// BuildRegister appends a W-bit register (bank of D flip-flops) with the
// given initial value, returning the Q bits. The D inputs are connected
// immediately from d.
func BuildRegister(net NetBuilder, prefix string, d []int, init bool) []int {
	q := make([]int, len(d))
	for i := range d {
		q[i] = net.AddLatch(fmt.Sprintf("%sq%d", prefix, i), init)
		net.ConnectLatch(q[i], d[i])
	}
	return q
}

// selBits returns ceil(log2(k)) with selBits(1) = 0.
func selBits(k int) int {
	b := 0
	for (1 << b) < k {
		b++
	}
	return b
}

// SelBits exposes the select-line count needed by a K-input mux.
func SelBits(k int) int { return selBits(k) }

// addInputBus declares a W-bit input bus named <name>0..<name>{w-1}.
func addInputBus(net *logic.Network, name string, w int) []int {
	ids := make([]int, w)
	for i := range ids {
		ids[i] = net.AddInput(fmt.Sprintf("%s%d", name, i))
	}
	return ids
}

// markOutputBus declares W outputs named <name>0..<name>{w-1}.
func markOutputBus(net *logic.Network, name string, bits []int) {
	for i, id := range bits {
		net.MarkOutput(fmt.Sprintf("%s%d", name, i), id)
	}
}

// AdderNetwork returns a standalone W-bit adder with inputs A*/B* and
// outputs S* (truncated sum, no carry out — fixed-width datapath).
func AdderNetwork(w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("add%d", w))
	a := addInputBus(net, "A", w)
	b := addInputBus(net, "B", w)
	s, _ := BuildAdder(net, "", a, b, -1)
	markOutputBus(net, "S", s)
	return net
}

// SubtractorNetwork returns a standalone W-bit subtractor (A - B).
func SubtractorNetwork(w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("sub%d", w))
	a := addInputBus(net, "A", w)
	b := addInputBus(net, "B", w)
	d := BuildSubtractor(net, "", a, b)
	markOutputBus(net, "S", d)
	return net
}

// MultiplierNetwork returns a standalone W-bit (truncated) multiplier.
func MultiplierNetwork(w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("mult%d", w))
	a := addInputBus(net, "A", w)
	b := addInputBus(net, "B", w)
	p := BuildMultiplier(net, "", a, b)
	markOutputBus(net, "P", p)
	return net
}

// MuxNetwork returns a standalone K-input, W-bit multiplexer with select
// inputs SEL*, data inputs D<k>_<bit>, and outputs Y*.
func MuxNetwork(k, w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("mux%d_w%d", k, w))
	sel := addInputBus(net, "SEL", selBits(k))
	data := make([][]int, k)
	for i := range data {
		data[i] = addInputBus(net, fmt.Sprintf("D%d_", i), w)
	}
	y := BuildMux(net, "", sel, data)
	markOutputBus(net, "Y", y)
	return net
}

// RegisterNetwork returns a standalone W-bit register with inputs D* and
// outputs Q*.
func RegisterNetwork(w int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("reg%d", w))
	d := addInputBus(net, "D", w)
	q := BuildRegister(net, "", d, false)
	markOutputBus(net, "Q", q)
	return net
}

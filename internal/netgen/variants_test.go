package netgen

import (
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

func evalAdd(t *testing.T, net *logic.Network, w int, a, b uint64) uint64 {
	t.Helper()
	in := map[string]bool{}
	busAssign(in, "A", w, a)
	busAssign(in, "B", w, b)
	return evalUnsigned(t, net, in)
}

func TestAdderArchitecturesFunctional(t *testing.T) {
	for _, arch := range []AdderArch{AdderRipple, AdderCLA, AdderCarrySelect} {
		for _, w := range []int{3, 4, 6, 8} {
			net := AdderArchNetwork(arch, w)
			if err := net.Check(); err != nil {
				t.Fatalf("%s w=%d: %v", arch, w, err)
			}
			mask := uint64(1)<<uint(w) - 1
			f := func(a, b uint16) bool {
				av, bv := uint64(a)&mask, uint64(b)&mask
				return evalAdd(t, net, w, av, bv) == (av+bv)&mask
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatalf("%s w=%d: %v", arch, w, err)
			}
		}
	}
}

func TestAdderArchitecturesExhaustiveSmall(t *testing.T) {
	const w = 5
	for _, arch := range []AdderArch{AdderCLA, AdderCarrySelect} {
		net := AdderArchNetwork(arch, w)
		for a := uint64(0); a < 1<<w; a++ {
			for b := uint64(0); b < 1<<w; b++ {
				if got := evalAdd(t, net, w, a, b); got != (a+b)&31 {
					t.Fatalf("%s: %d+%d = %d, want %d", arch, a, b, got, (a+b)&31)
				}
			}
		}
	}
}

func TestWallaceMultiplierFunctional(t *testing.T) {
	const w = 6
	net := MultArchNetwork(MultWallace, w)
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 1<<w; a++ {
		for b := uint64(0); b < 1<<w; b++ {
			in := map[string]bool{}
			busAssign(in, "A", w, a)
			busAssign(in, "B", w, b)
			got := evalUnsigned(t, net, in)
			if got != (a*b)&((1<<w)-1) {
				t.Fatalf("wallace %d*%d = %d, want %d", a, b, got, (a*b)&((1<<w)-1))
			}
		}
	}
}

func TestArchDepthOrdering(t *testing.T) {
	const w = 8
	ripple := AdderArchNetwork(AdderRipple, w).Depth()
	cla := AdderArchNetwork(AdderCLA, w).Depth()
	csel := AdderArchNetwork(AdderCarrySelect, w).Depth()
	if cla >= ripple {
		t.Fatalf("CLA depth %d should beat ripple %d", cla, ripple)
	}
	if csel >= ripple {
		t.Fatalf("carry-select depth %d should beat ripple %d", csel, ripple)
	}
	array := MultArchNetwork(MultArray, w).Depth()
	wallace := MultArchNetwork(MultWallace, w).Depth()
	if wallace >= array {
		t.Fatalf("wallace depth %d should beat array %d", wallace, array)
	}
}

func TestArchAreaOrdering(t *testing.T) {
	const w = 8
	ripple := AdderArchNetwork(AdderRipple, w).NumGates()
	cla := AdderArchNetwork(AdderCLA, w).NumGates()
	csel := AdderArchNetwork(AdderCarrySelect, w).NumGates()
	if ripple >= cla || ripple >= csel {
		t.Fatalf("ripple (%d gates) should be the smallest (cla %d, cselect %d)", ripple, cla, csel)
	}
}

func TestArchStrings(t *testing.T) {
	if AdderRipple.String() != "ripple" || AdderCLA.String() != "cla" || AdderCarrySelect.String() != "cselect" {
		t.Fatal("adder arch names wrong")
	}
	if MultArray.String() != "array" || MultWallace.String() != "wallace" {
		t.Fatal("mult arch names wrong")
	}
}

func TestCarrySelectSmallWidthFallsBack(t *testing.T) {
	// Below 4 bits carry-select degenerates to ripple.
	net := AdderArchNetwork(AdderCarrySelect, 3)
	ref := AdderArchNetwork(AdderRipple, 3)
	if net.NumGates() != ref.NumGates() {
		t.Fatalf("w=3 carry-select should fall back to ripple: %d vs %d gates", net.NumGates(), ref.NumGates())
	}
}

func BenchmarkBuildWallace8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MultArchNetwork(MultWallace, 8)
	}
}

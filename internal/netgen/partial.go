package netgen

import (
	"fmt"

	"repro/internal/logic"
)

// FUKind identifies a functional-unit type in the resource library. The
// paper's benchmarks contain two operation classes: additions (including
// subtractions) and multiplications.
type FUKind string

const (
	// FUAdd is the adder/subtractor class.
	FUAdd FUKind = "add"
	// FUMult is the multiplier class.
	FUMult FUKind = "mult"
)

// BuildFU appends the gate-level implementation of an FU to net.
func BuildFU(net NetBuilder, kind FUKind, prefix string, a, b []int) []int {
	switch kind {
	case FUAdd:
		s, _ := BuildAdder(net, prefix, a, b, -1)
		return s
	case FUMult:
		return BuildMultiplier(net, prefix, a, b)
	}
	panic(fmt.Sprintf("netgen: unknown FU kind %q", kind))
}

// PartialDatapathNetwork generates the gate-level netlist of a partial
// datapath exactly as the paper's Fig. 2 describes: a kL-input mux on the
// left FU port, a kR-input mux on the right port, and the functional
// unit. Mux sizes of 1 mean a direct connection (no mux hardware). The
// switching-activity estimate of this netlist is the SA term in the edge
// weight of Eq. (4).
//
// Inputs: SELL*/SELR* (select lines, omitted for k<=1), L<k>_<bit> and
// R<k>_<bit> (data). Outputs: O<bit>.
func PartialDatapathNetwork(kind FUKind, kL, kR, w int) *logic.Network {
	if kL < 1 || kR < 1 {
		panic("netgen: mux sizes must be >= 1")
	}
	net := logic.NewNetwork(fmt.Sprintf("%s_%d_%d_w%d", kind, kL, kR, w))

	buildPort := func(side string, k int) []int {
		sel := addInputBus(net, "SEL"+side, selBits(k))
		data := make([][]int, k)
		for i := range data {
			data[i] = addInputBus(net, fmt.Sprintf("%s%d_", side, i), w)
		}
		return BuildMux(net, side+"mux_", sel, data)
	}
	left := buildPort("L", kL)
	right := buildPort("R", kR)
	out := BuildFU(net, kind, "fu_", left, right)
	markOutputBus(net, "O", out)
	return net
}

package netgen

import (
	"fmt"

	"repro/internal/logic"
)

// BuildPipelinedMultiplier appends an array multiplier with `stages`
// pipeline stages (stages-1 internal register banks inserted between
// partial-product row groups): latency = stages cycles, initiation
// interval = 1 (a new operation can start every cycle). The register
// cuts shorten the worst combinational cone roughly in proportion,
// which is what buys the faster clock the multi-cycle extension is
// after.
func BuildPipelinedMultiplier(net NetBuilder, prefix string, a, b []int, stages int) []int {
	if len(a) != len(b) {
		panic("netgen: multiplier operand widths differ")
	}
	if stages < 1 {
		stages = 1
	}
	w := len(a)
	if stages > w {
		stages = w
	}
	// Row 0.
	acc := make([]int, w)
	for j := 0; j < w; j++ {
		acc[j] = net.AddGate(fmt.Sprintf("%spp0_%d", prefix, j), logic.TTAnd2(), a[0], b[j])
	}
	// Stage boundaries: rows 1..w-1 split into `stages` groups; after
	// each group except the last, register acc plus the operand bits the
	// remaining rows still need.
	rowsPerStage := (w - 1 + stages - 1) / stages
	if rowsPerStage < 1 {
		rowsPerStage = 1
	}
	aCur := append([]int(nil), a...)
	bCur := append([]int(nil), b...)
	stage := 0
	for i := 1; i < w; i++ {
		row := make([]int, 0, w-i)
		for j := 0; i+j < w; j++ {
			row = append(row, net.AddGate(fmt.Sprintf("%spp%d_%d", prefix, i, j), logic.TTAnd2(), aCur[i], bCur[j]))
		}
		carry := -1
		for j := range row {
			bit := i + j
			if carry < 0 {
				s := net.AddGate(fmt.Sprintf("%sr%d_s%d", prefix, i, j), logic.TTXor2(), acc[bit], row[j])
				carry = net.AddGate(fmt.Sprintf("%sr%d_c%d", prefix, i, j), logic.TTAnd2(), acc[bit], row[j])
				acc[bit] = s
			} else {
				s := net.AddGate(fmt.Sprintf("%sr%d_s%d", prefix, i, j), logic.TTXor3(), acc[bit], row[j], carry)
				carry = net.AddGate(fmt.Sprintf("%sr%d_c%d", prefix, i, j), logic.TTMaj3(), acc[bit], row[j], carry)
				acc[bit] = s
			}
		}
		// Insert a pipeline cut after each full group (but not after the
		// final row).
		if i%rowsPerStage == 0 && i < w-1 && stage < stages-1 {
			cut := fmt.Sprintf("%sst%d_", prefix, stage)
			acc = BuildRegister(net, cut+"acc", acc, false)
			aCur = BuildRegister(net, cut+"a", aCur, false)
			bCur = BuildRegister(net, cut+"b", bCur, false)
			stage++
		}
	}
	// Guarantee exactly stages-1 register banks so the unit's latency
	// matches the scheduler's assumption even for degenerate widths.
	for stage < stages-1 {
		acc = BuildRegister(net, fmt.Sprintf("%sst%d_acc", prefix, stage), acc, false)
		stage++
	}
	return acc
}

// PipelinedMultiplierNetwork returns a standalone pipelined multiplier.
func PipelinedMultiplierNetwork(w, stages int) *logic.Network {
	net := logic.NewNetwork(fmt.Sprintf("pmult%d_s%d", w, stages))
	a := addInputBus(net, "A", w)
	b := addInputBus(net, "B", w)
	markOutputBus(net, "P", BuildPipelinedMultiplier(net, "", a, b, stages))
	return net
}

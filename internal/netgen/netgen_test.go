package netgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blif"
	"repro/internal/logic"
)

// evalBus drives a network's inputs from a name->value map and returns
// the outputs as an unsigned integer built from outputs named base0..N.
func evalUnsigned(t *testing.T, net *logic.Network, inputs map[string]bool) uint64 {
	t.Helper()
	in := make([]bool, len(net.Inputs))
	for i, id := range net.Inputs {
		in[i] = inputs[net.Node(id).Name]
	}
	val := net.Eval(in, nil)
	var out uint64
	for i, o := range net.Outputs {
		if val[o.Node] {
			out |= 1 << uint(i)
		}
	}
	return out
}

func busAssign(m map[string]bool, base string, w int, v uint64) {
	for i := 0; i < w; i++ {
		m[fmtName(base, i)] = v&(1<<uint(i)) != 0
	}
}

func fmtName(base string, i int) string {
	return base + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestAdderFunctional(t *testing.T) {
	const w = 6
	net := AdderNetwork(w)
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		av := uint64(a) & ((1 << w) - 1)
		bv := uint64(b) & ((1 << w) - 1)
		in := map[string]bool{}
		busAssign(in, "A", w, av)
		busAssign(in, "B", w, bv)
		got := evalUnsigned(t, net, in)
		return got == (av+bv)&((1<<w)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractorFunctional(t *testing.T) {
	const w = 6
	net := SubtractorNetwork(w)
	f := func(a, b uint16) bool {
		av := uint64(a) & ((1 << w) - 1)
		bv := uint64(b) & ((1 << w) - 1)
		in := map[string]bool{}
		busAssign(in, "A", w, av)
		busAssign(in, "B", w, bv)
		got := evalUnsigned(t, net, in)
		return got == (av-bv)&((1<<w)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplierFunctional(t *testing.T) {
	const w = 6
	net := MultiplierNetwork(w)
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	// Exhaustive over 6x6 bits.
	for a := uint64(0); a < 1<<w; a++ {
		for b := uint64(0); b < 1<<w; b++ {
			in := map[string]bool{}
			busAssign(in, "A", w, a)
			busAssign(in, "B", w, b)
			got := evalUnsigned(t, net, in)
			want := (a * b) & ((1 << w) - 1)
			if got != want {
				t.Fatalf("%d * %d = %d, want %d (mod 2^%d)", a, b, got, want, w)
			}
		}
	}
}

func TestMuxSelectsEveryInput(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 11} {
		const w = 4
		net := MuxNetwork(k, w)
		if err := net.Check(); err != nil {
			t.Fatalf("mux%d: %v", k, err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for sel := 0; sel < k; sel++ {
			in := map[string]bool{}
			vals := make([]uint64, k)
			for i := range vals {
				vals[i] = uint64(rng.Intn(1 << w))
				busAssign(in, fmtName("D", i)+"_", w, vals[i])
			}
			for s := 0; s < SelBits(k); s++ {
				in[fmtName("SEL", s)] = sel&(1<<uint(s)) != 0
			}
			got := evalUnsigned(t, net, in)
			if got != vals[sel] {
				t.Fatalf("mux%d sel=%d: got %d want %d", k, sel, got, vals[sel])
			}
		}
	}
}

func TestMuxSizeOneIsWireOnly(t *testing.T) {
	net := MuxNetwork(1, 8)
	if g := net.NumGates(); g != 0 {
		t.Fatalf("1-input mux should cost no gates, got %d", g)
	}
}

func TestRegisterHoldsValue(t *testing.T) {
	const w = 4
	net := RegisterNetwork(w)
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	st := net.InitialLatchState()
	in := make([]bool, w)
	in[1], in[3] = true, true // load 0b1010
	val := net.Eval(in, st)
	st = net.NextLatchState(val)
	// Next cycle with different input: Q shows the stored value.
	val = net.Eval(make([]bool, w), st)
	var q uint64
	for i, o := range net.Outputs {
		if val[o.Node] {
			q |= 1 << uint(i)
		}
	}
	if q != 0b1010 {
		t.Fatalf("register Q = %#b, want 0b1010", q)
	}
}

func TestSelBits(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for k, want := range cases {
		if got := SelBits(k); got != want {
			t.Fatalf("SelBits(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestPartialDatapathAdd(t *testing.T) {
	const w = 4
	net := PartialDatapathNetwork(FUAdd, 3, 2, w)
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		selL := rng.Intn(3)
		selR := rng.Intn(2)
		in := map[string]bool{}
		lv := make([]uint64, 3)
		rv := make([]uint64, 2)
		for i := range lv {
			lv[i] = uint64(rng.Intn(1 << w))
			busAssign(in, fmtName("L", i)+"_", w, lv[i])
		}
		for i := range rv {
			rv[i] = uint64(rng.Intn(1 << w))
			busAssign(in, fmtName("R", i)+"_", w, rv[i])
		}
		for s := 0; s < SelBits(3); s++ {
			in[fmtName("SELL", s)] = selL&(1<<uint(s)) != 0
		}
		for s := 0; s < SelBits(2); s++ {
			in[fmtName("SELR", s)] = selR&(1<<uint(s)) != 0
		}
		got := evalUnsigned(t, net, in)
		want := (lv[selL] + rv[selR]) & ((1 << w) - 1)
		if got != want {
			t.Fatalf("partial datapath add: got %d want %d", got, want)
		}
	}
}

func TestPartialDatapathMultNoMux(t *testing.T) {
	const w = 4
	net := PartialDatapathNetwork(FUMult, 1, 1, w)
	mult := MultiplierNetwork(w)
	// Same gate count as a bare multiplier: muxes of size 1 are free.
	if net.NumGates() != mult.NumGates() {
		t.Fatalf("1/1 partial datapath gates = %d, bare mult = %d", net.NumGates(), mult.NumGates())
	}
}

func TestPartialDatapathGateCountsGrowWithMuxSizes(t *testing.T) {
	const w = 8
	prev := -1
	for _, k := range []int{1, 2, 4, 8} {
		n := PartialDatapathNetwork(FUAdd, k, k, w).NumGates()
		if n <= prev {
			t.Fatalf("gate count did not grow: k=%d gives %d (prev %d)", k, n, prev)
		}
		prev = n
	}
}

func TestLibraryNetworksRoundTripThroughBlif(t *testing.T) {
	nets := []*logic.Network{
		AdderNetwork(4),
		MultiplierNetwork(3),
		MuxNetwork(3, 2),
		PartialDatapathNetwork(FUAdd, 2, 3, 3),
	}
	for _, net := range nets {
		m := blif.FromNetwork(net)
		lib := blif.NewLibrary()
		lib.Add(m)
		back, err := blif.Flatten(lib, net.Name)
		if err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
		// Spot-check functional equivalence on random vectors.
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 30; trial++ {
			in := make([]bool, len(net.Inputs))
			for i := range in {
				in[i] = rng.Intn(2) == 0
			}
			// Align by input name.
			in2 := make([]bool, len(back.Inputs))
			for i, id := range back.Inputs {
				name := back.Node(id).Name
				for j, id1 := range net.Inputs {
					if net.Node(id1).Name == name {
						in2[i] = in[j]
					}
				}
			}
			o1 := net.OutputValues(net.Eval(in, nil))
			o2 := back.OutputValues(back.Eval(in2, nil))
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("%s: blif round trip diverges on output %d", net.Name, i)
				}
			}
		}
	}
}

func TestAdderDepthIsLinear(t *testing.T) {
	d4 := AdderNetwork(4).Depth()
	d8 := AdderNetwork(8).Depth()
	if d8 <= d4 {
		t.Fatalf("ripple adder depth should grow with width: d4=%d d8=%d", d4, d8)
	}
}

func BenchmarkBuildMultiplier8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MultiplierNetwork(8)
	}
}

func BenchmarkBuildPartialDatapath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PartialDatapathNetwork(FUMult, 4, 4, 8)
	}
}

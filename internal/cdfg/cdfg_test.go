package cdfg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/netgen"
)

// figure1Graph reproduces the 8-operation CDFG of the paper's Figure 1:
// cstep1: ops 1(+), 2(+), 3(x); cstep2: 4(+), 5(x); cstep3: 6(+), 7(x), 8(+).
func figure1Graph() (*Graph, *Schedule) {
	g := NewGraph("fig1")
	in := make([]int, 6)
	for i := range in {
		in[i] = g.AddInput("")
	}
	op1 := g.AddOp(KindAdd, "1", in[0], in[1])
	op2 := g.AddOp(KindAdd, "2", in[1], in[2])
	op3 := g.AddOp(KindMult, "3", in[3], in[4])
	op4 := g.AddOp(KindAdd, "4", op1, op2)
	op5 := g.AddOp(KindMult, "5", op3, in[5])
	op6 := g.AddOp(KindAdd, "6", op4, op5)
	op7 := g.AddOp(KindMult, "7", op5, op4)
	op8 := g.AddOp(KindAdd, "8", op4, op3)
	g.MarkOutput(op6)
	g.MarkOutput(op7)
	g.MarkOutput(op8)
	s := &Schedule{Step: make([]int, len(g.Nodes)), Len: 3}
	s.Step[op1], s.Step[op2], s.Step[op3] = 1, 1, 1
	s.Step[op4], s.Step[op5] = 2, 2
	s.Step[op6], s.Step[op7], s.Step[op8] = 3, 3, 3
	return g, s
}

func TestGraphConstructionAndStats(t *testing.T) {
	g, _ := figure1Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.PIs != 6 || st.POs != 3 || st.Adds != 5 || st.Mults != 3 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Edges != 8*2+3 {
		t.Fatalf("edges = %d, want %d", st.Edges, 19)
	}
}

func TestValidateCatchesDeadOp(t *testing.T) {
	g := NewGraph("dead")
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOp(KindAdd, "dead", a, b)
	if err := g.Validate(); err == nil {
		t.Fatal("expected dead-op detection")
	}
}

func TestASAPRespectsPrecedence(t *testing.T) {
	g, _ := figure1Graph()
	s := ASAP(g)
	if s.Len != 3 {
		t.Fatalf("ASAP length = %d, want 3", s.Len)
	}
	if err := ValidateSchedule(g, s, ResourceConstraint{}); err != nil {
		t.Fatal(err)
	}
}

func TestALAPPushesLate(t *testing.T) {
	g, _ := figure1Graph()
	s, err := ALAP(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(g, s, ResourceConstraint{}); err != nil {
		t.Fatal(err)
	}
	if s.Len != 5 {
		t.Fatalf("ALAP length = %d", s.Len)
	}
	// Outputs must sit at the last step.
	for _, o := range g.Outputs {
		if s.Step[o] != 5 {
			t.Fatalf("output op %d at step %d, want 5", o, s.Step[o])
		}
	}
	if _, err := ALAP(g, 2); err == nil {
		t.Fatal("ALAP below critical path must fail")
	}
}

func TestListScheduleMeetsConstraint(t *testing.T) {
	g, _ := figure1Graph()
	rc := ResourceConstraint{Add: 1, Mult: 1}
	s, err := ListSchedule(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(g, s, rc); err != nil {
		t.Fatal(err)
	}
	// 5 adds with 1 adder needs at least 5 steps.
	if s.Len < 5 {
		t.Fatalf("schedule length %d too short for 5 adds on 1 adder", s.Len)
	}
}

func TestListScheduleUnboundedMatchesASAPLength(t *testing.T) {
	g, _ := figure1Graph()
	s, err := ListSchedule(g, ResourceConstraint{Add: 100, Mult: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len != ASAP(g).Len {
		t.Fatalf("unbounded list schedule length %d != ASAP %d", s.Len, ASAP(g).Len)
	}
}

func TestListScheduleRejectsZeroResource(t *testing.T) {
	g, _ := figure1Graph()
	if _, err := ListSchedule(g, ResourceConstraint{Add: 1, Mult: 0}); err == nil {
		t.Fatal("zero mult units should be rejected for a graph with mults")
	}
}

func TestMinResources(t *testing.T) {
	g, s := figure1Graph()
	rc := MinResources(g, s)
	// cstep1 has 2 adds + 1 mult; cstep3 has 2 adds + 1 mult.
	if rc.Add != 2 || rc.Mult != 1 {
		t.Fatalf("min resources = %+v, want {2 1}", rc)
	}
}

func TestRandomListSchedulesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 5+rng.Intn(40))
		rc := ResourceConstraint{Add: 1 + rng.Intn(3), Mult: 1 + rng.Intn(3)}
		s, err := ListSchedule(g, rc)
		if err != nil {
			return false
		}
		return ValidateSchedule(g, s, rc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a random valid DAG with the given number of ops.
func randomGraph(rng *rand.Rand, ops int) *Graph {
	g := NewGraph("rand")
	nPI := 2 + rng.Intn(6)
	for i := 0; i < nPI; i++ {
		g.AddInput("")
	}
	for i := 0; i < ops; i++ {
		kind := KindAdd
		switch rng.Intn(3) {
		case 1:
			kind = KindMult
		case 2:
			kind = KindSub
		}
		a := rng.Intn(len(g.Nodes))
		b := rng.Intn(len(g.Nodes))
		g.AddOp(kind, "", a, b)
	}
	// Mark every sink as output so validation passes.
	consumers := g.Consumers()
	for _, n := range g.Nodes {
		if n.Kind.IsOp() && len(consumers[n.ID]) == 0 {
			g.MarkOutput(n.ID)
		}
	}
	return g
}

func TestLifetimes(t *testing.T) {
	g, s := figure1Graph()
	lt := Lifetimes(g, s)
	// op4 (step 2) is read by ops 6, 7, 8 (step 3): lifetime (2,3].
	op4 := g.Ops()[3]
	if lt[op4].Birth != 2 || lt[op4].Death != 3 {
		t.Fatalf("op4 lifetime = %+v, want {2 3}", lt[op4])
	}
	// op3 (step 1) read by op5 (step 2) and op8 (step 3): (1,3].
	op3 := g.Ops()[2]
	if lt[op3].Birth != 1 || lt[op3].Death != 3 {
		t.Fatalf("op3 lifetime = %+v, want {1 3}", lt[op3])
	}
	// Outputs live to the end.
	for _, o := range g.Outputs {
		if lt[o].Death != s.Len {
			t.Fatalf("output %d death = %d, want %d", o, lt[o].Death, s.Len)
		}
	}
}

func TestLifetimeOverlap(t *testing.T) {
	a := Lifetime{Birth: 1, Death: 3}
	b := Lifetime{Birth: 3, Death: 5}
	if a.Overlaps(b) {
		t.Fatal("(1,3] and (3,5] must not overlap")
	}
	c := Lifetime{Birth: 2, Death: 4}
	if !a.Overlaps(c) {
		t.Fatal("(1,3] and (2,4] must overlap")
	}
	if !c.Overlaps(a) {
		t.Fatal("overlap must be symmetric")
	}
	// Zero-length lifetime overlaps nothing.
	z := Lifetime{Birth: 2, Death: 2}
	if z.Overlaps(a) || a.Overlaps(z) {
		t.Fatal("empty lifetime should not overlap")
	}
}

func TestFUClass(t *testing.T) {
	if KindAdd.FUClass() != netgen.FUAdd || KindSub.FUClass() != netgen.FUAdd {
		t.Fatal("add/sub must map to the adder class")
	}
	if KindMult.FUClass() != netgen.FUMult {
		t.Fatal("mult must map to the multiplier class")
	}
}

func TestDOTExport(t *testing.T) {
	g, s := figure1Graph()
	dot := g.DOT(s)
	for _, want := range []string{"digraph", "cstep 1", "cstep 3", "->", "diamond"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestAddOpPanicsOnBadArgs(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddOp(KindAdd, "x", a, 99)
}

package cdfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func balancedTestGraph(rng *rand.Rand, ops int) *Graph {
	g := NewGraph("bal")
	n := 3 + rng.Intn(4)
	for i := 0; i < n; i++ {
		g.AddInput("")
	}
	for i := 0; i < ops; i++ {
		kind := KindAdd
		if rng.Intn(2) == 0 {
			kind = KindMult
		}
		g.AddOp(kind, "", rng.Intn(len(g.Nodes)), rng.Intn(len(g.Nodes)))
	}
	consumers := g.Consumers()
	for _, nd := range g.Nodes {
		if nd.Kind.IsOp() && len(consumers[nd.ID]) == 0 {
			g.MarkOutput(nd.ID)
		}
	}
	return g
}

func TestBalancedScheduleMeetsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := balancedTestGraph(rng, 30)
	rc := ResourceConstraint{Add: 3, Mult: 3}
	asap := ASAP(g)
	target := asap.Len + 10
	s, err := BalancedSchedule(g, rc, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(g, s, rc); err != nil {
		t.Fatal(err)
	}
	if s.Len != target {
		t.Fatalf("length %d, want target %d", s.Len, target)
	}
}

func TestBalancedScheduleClampsToCriticalPath(t *testing.T) {
	// Target below the critical path clamps up.
	g := NewGraph("chain")
	prev := g.AddInput("a")
	b := g.AddInput("b")
	for i := 0; i < 6; i++ {
		prev = g.AddOp(KindAdd, "", prev, b)
	}
	g.MarkOutput(prev)
	s, err := BalancedSchedule(g, ResourceConstraint{Add: 1, Mult: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len < 6 {
		t.Fatalf("length %d below the 6-op chain", s.Len)
	}
}

func TestBalancedScheduleSpreadsLoad(t *testing.T) {
	// 12 independent adds with rc 4 and a target of 6 should use ~2 per
	// step, not 4-4-4-0-0-0.
	g := NewGraph("spread")
	a := g.AddInput("a")
	b := g.AddInput("b")
	for i := 0; i < 12; i++ {
		g.MarkOutput(g.AddOp(KindAdd, "", a, b))
	}
	s, err := BalancedSchedule(g, ResourceConstraint{Add: 4, Mult: 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	perStep := map[int]int{}
	for _, id := range g.Ops() {
		perStep[s.Step[id]]++
	}
	for step, c := range perStep {
		if c > 2 {
			t.Fatalf("step %d packs %d ops; balanced target is 2", step, c)
		}
	}
	if s.Len != 6 {
		t.Fatalf("length %d, want 6", s.Len)
	}
}

func TestBalancedScheduleRandomValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := balancedTestGraph(rng, 5+rng.Intn(40))
		rc := ResourceConstraint{Add: 1 + rng.Intn(3), Mult: 1 + rng.Intn(3)}
		target := rng.Intn(30)
		s, err := BalancedSchedule(g, rc, target)
		if err != nil {
			return false
		}
		return ValidateSchedule(g, s, rc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedScheduleRejectsZeroResource(t *testing.T) {
	g := NewGraph("z")
	a := g.AddInput("a")
	g.MarkOutput(g.AddOp(KindMult, "", a, a))
	if _, err := BalancedSchedule(g, ResourceConstraint{Add: 1, Mult: 0}, 4); err == nil {
		t.Fatal("zero mult units should be rejected")
	}
}

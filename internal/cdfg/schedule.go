package cdfg

import (
	"fmt"

	"repro/internal/netgen"
)

// Schedule assigns every operation a control step in 1..Len. Inputs are
// available from step 0. All library resources are single-cycle (paper
// §6.1), so an operation occupies exactly its assigned step.
type Schedule struct {
	// Step is each operation's start step (1..Len); 0 for inputs.
	Step []int
	// Len is the schedule length in control steps.
	Len int
	// Lib carries the resource latencies the schedule was built for;
	// the zero value is the single-cycle library.
	Lib Library
}

// ResourceConstraint bounds the number of concurrently usable FUs per
// class, e.g. {Add: 3, Mult: 2} like the paper's Table 2.
type ResourceConstraint struct {
	Add  int
	Mult int
}

// Limit returns the bound for an FU class (0 means unbounded).
func (rc ResourceConstraint) Limit(class netgen.FUKind) int {
	switch class {
	case netgen.FUAdd:
		return rc.Add
	case netgen.FUMult:
		return rc.Mult
	}
	return 0
}

// ASAP returns the as-soon-as-possible schedule (unlimited resources).
func ASAP(g *Graph) *Schedule {
	s := &Schedule{Step: make([]int, len(g.Nodes))}
	for _, n := range g.Nodes {
		if !n.Kind.IsOp() {
			s.Step[n.ID] = 0
			continue
		}
		max := 0
		for _, a := range n.Args {
			if s.Step[a] > max {
				max = s.Step[a]
			}
		}
		s.Step[n.ID] = max + 1
		if s.Step[n.ID] > s.Len {
			s.Len = s.Step[n.ID]
		}
	}
	return s
}

// ALAP returns the as-late-as-possible schedule for a target length L
// (which must be >= the critical path length).
func ALAP(g *Graph, L int) (*Schedule, error) {
	asap := ASAP(g)
	if L < asap.Len {
		return nil, fmt.Errorf("cdfg: ALAP length %d below critical path %d", L, asap.Len)
	}
	s := &Schedule{Step: make([]int, len(g.Nodes)), Len: L}
	consumers := g.Consumers()
	for id := len(g.Nodes) - 1; id >= 0; id-- {
		n := g.Nodes[id]
		if !n.Kind.IsOp() {
			s.Step[id] = 0
			continue
		}
		late := L
		for _, c := range consumers[id] {
			if s.Step[c]-1 < late {
				late = s.Step[c] - 1
			}
		}
		s.Step[id] = late
	}
	return s, nil
}

// ListSchedule performs resource-constrained list scheduling with
// ALAP-slack priority (most urgent first). It returns the schedule, or
// an error if the constraint has a zero entry for a class that is used.
func ListSchedule(g *Graph, rc ResourceConstraint) (*Schedule, error) {
	asap := ASAP(g)
	alap, err := ALAP(g, asap.Len)
	if err != nil {
		return nil, err
	}
	for _, id := range g.Ops() {
		class := g.Nodes[id].Kind.FUClass()
		if rc.Limit(class) <= 0 {
			return nil, fmt.Errorf("cdfg: resource constraint has no %s units", class)
		}
	}

	s := &Schedule{Step: make([]int, len(g.Nodes))}
	scheduled := make([]bool, len(g.Nodes))
	for _, id := range g.Inputs {
		scheduled[id] = true
	}
	remaining := len(g.Ops())
	step := 0
	for remaining > 0 {
		step++
		used := map[netgen.FUKind]int{}
		// Ready ops: all args scheduled in earlier steps.
		var ready []int
		for _, id := range g.Ops() {
			if scheduled[id] {
				continue
			}
			ok := true
			for _, a := range g.Nodes[id].Args {
				if !scheduled[a] || (g.Nodes[a].Kind.IsOp() && s.Step[a] >= step) {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, id)
			}
		}
		// Priority: smaller ALAP step = less slack = more urgent; break
		// ties by ID for determinism.
		sortByKey(ready, func(id int) int { return alap.Step[id]*len(g.Nodes) + id })
		for _, id := range ready {
			class := g.Nodes[id].Kind.FUClass()
			if used[class] >= rc.Limit(class) {
				continue
			}
			used[class]++
			s.Step[id] = step
			scheduled[id] = true
			remaining--
		}
		if step > 4*len(g.Nodes)+16 {
			return nil, fmt.Errorf("cdfg: list scheduling did not converge")
		}
	}
	s.Len = step
	return s, nil
}

// sortByKey sorts ints ascending by a key function (insertion sort; the
// ready lists are small).
func sortByKey(xs []int, key func(int) int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && key(xs[j]) < key(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// MinResources returns, per FU class, the maximum number of operations
// of that class in any single control step — the lower bound on the
// resource constraint that Theorem 1 guarantees the binder can meet.
func MinResources(g *Graph, s *Schedule) ResourceConstraint {
	addPerStep := make(map[int]int)
	multPerStep := make(map[int]int)
	for _, id := range g.Ops() {
		switch g.Nodes[id].Kind.FUClass() {
		case netgen.FUAdd:
			addPerStep[s.Step[id]]++
		case netgen.FUMult:
			multPerStep[s.Step[id]]++
		}
	}
	rc := ResourceConstraint{}
	for _, c := range addPerStep {
		if c > rc.Add {
			rc.Add = c
		}
	}
	for _, c := range multPerStep {
		if c > rc.Mult {
			rc.Mult = c
		}
	}
	return rc
}

// ValidateSchedule checks precedence (args strictly earlier), range, and
// the resource constraint (zero limits are ignored).
func ValidateSchedule(g *Graph, s *Schedule, rc ResourceConstraint) error {
	if len(s.Step) != len(g.Nodes) {
		return fmt.Errorf("cdfg: schedule size mismatch")
	}
	used := make(map[[2]int]int) // (step, classIdx) -> count
	for _, n := range g.Nodes {
		if !n.Kind.IsOp() {
			continue
		}
		st := s.Step[n.ID]
		if st < 1 || st > s.Len {
			return fmt.Errorf("cdfg: op %d scheduled at invalid step %d", n.ID, st)
		}
		for _, a := range n.Args {
			if g.Nodes[a].Kind.IsOp() && s.Step[a] >= st {
				return fmt.Errorf("cdfg: op %d at step %d uses value %d from step %d", n.ID, st, a, s.Step[a])
			}
		}
		ci := 0
		if n.Kind.FUClass() == netgen.FUMult {
			ci = 1
		}
		used[[2]int{st, ci}]++
	}
	if rc.Add > 0 || rc.Mult > 0 {
		for k, c := range used {
			limit := rc.Add
			if k[1] == 1 {
				limit = rc.Mult
			}
			if limit > 0 && c > limit {
				return fmt.Errorf("cdfg: step %d exceeds resource constraint (%d used, %d allowed)", k[0], c, limit)
			}
		}
	}
	return nil
}

// Lifetime is the register-lifetime interval of a value: the value is
// born at the end of step Birth and must be held through step Death
// (i.e. it is read during steps Birth+1..Death). Two values can share a
// register iff their (Birth, Death] intervals do not overlap.
type Lifetime struct {
	Birth, Death int
}

// Overlaps reports whether two lifetimes conflict. Empty lifetimes
// (Birth == Death, a value never stored across a step boundary) overlap
// nothing.
func (l Lifetime) Overlaps(o Lifetime) bool {
	if l.Birth >= l.Death || o.Birth >= o.Death {
		return false
	}
	return l.Birth < o.Death && o.Birth < l.Death
}

// Lifetimes computes value lifetimes under the schedule. Inputs are born
// at step 0; an operation's value is born at its completion step. A
// value dies at its last consumer's completion step (a multi-cycle
// consumer holds its operands for its whole occupation); primary
// outputs live through the end of the schedule.
func Lifetimes(g *Graph, s *Schedule) []Lifetime {
	lt := make([]Lifetime, len(g.Nodes))
	isOutput := make(map[int]bool)
	for _, o := range g.Outputs {
		isOutput[o] = true
	}
	consumers := g.Consumers()
	for _, n := range g.Nodes {
		birth := 0
		if n.Kind.IsOp() {
			birth = s.Completion(g, n.ID)
		}
		death := birth
		for _, c := range consumers[n.ID] {
			// Pipelined consumers capture operands at their start step;
			// non-pipelined units hold them through completion.
			if d := s.Step[c] + s.Lib.OperandHold(g.Nodes[c].Kind) - 1; d > death {
				death = d
			}
		}
		if isOutput[n.ID] && s.Len > death {
			death = s.Len
		}
		lt[n.ID] = Lifetime{Birth: birth, Death: death}
	}
	return lt
}

package cdfg

import "fmt"

// BalancedSchedule performs resource-constrained scheduling to a target
// length in the force-directed style of Paulin and Knight (the scheduler
// family the LOPASS system uses): operation time frames come from
// ASAP/ALAP analysis at the target length, zero-slack operations are
// issued when forced, and remaining resource slots are filled only up to
// a per-class distribution quota so operations spread evenly over the
// schedule instead of packing into the earliest steps. Both binders
// consume the resulting schedule, mirroring the paper's setup where the
// schedule comes from LOPASS and is reused by HLPower.
//
// The target is clamped below by the critical path; if the resource
// constraint makes the target infeasible the schedule is lengthened
// until the forced operations fit.
func BalancedSchedule(g *Graph, rc ResourceConstraint, targetLen int) (*Schedule, error) {
	asap := ASAP(g)
	if targetLen < asap.Len {
		targetLen = asap.Len
	}
	for _, id := range g.Ops() {
		class := g.Nodes[id].Kind.FUClass()
		if rc.Limit(class) <= 0 {
			return nil, fmt.Errorf("cdfg: resource constraint has no %s units", class)
		}
	}
	// Try increasing lengths until the forced sets fit the constraint.
	for l := targetLen; l <= targetLen+4*len(g.Nodes)+16; l++ {
		if s, ok := balancedAttempt(g, rc, l); ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("cdfg: balanced scheduling did not converge for %s", g.Name)
}

func balancedAttempt(g *Graph, rc ResourceConstraint, targetLen int) (*Schedule, bool) {
	alap, err := ALAP(g, targetLen)
	if err != nil {
		return nil, false
	}
	s := &Schedule{Step: make([]int, len(g.Nodes)), Len: targetLen}
	scheduled := make([]bool, len(g.Nodes))
	for _, id := range g.Inputs {
		scheduled[id] = true
	}
	remaining := map[bool]int{} // isMult -> count
	for _, id := range g.Ops() {
		remaining[g.Nodes[id].Kind == KindMult]++
	}

	for t := 1; t <= targetLen; t++ {
		// Ready operations, most urgent first.
		var ready []int
		for _, id := range g.Ops() {
			if scheduled[id] {
				continue
			}
			ok := true
			for _, a := range g.Nodes[id].Args {
				if !scheduled[a] || (g.Nodes[a].Kind.IsOp() && s.Step[a] >= t) {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, id)
			}
		}
		sortByKey(ready, func(id int) int { return alap.Step[id]*len(g.Nodes) + id })

		stepsLeft := targetLen - t + 1
		used := map[bool]int{}
		for _, id := range ready {
			isMult := g.Nodes[id].Kind == KindMult
			limit := rc.Add
			if isMult {
				limit = rc.Mult
			}
			quota := (remaining[isMult] + stepsLeft - 1) / stepsLeft
			if quota > limit {
				quota = limit
			}
			forced := alap.Step[id] <= t
			if forced {
				if used[isMult] >= limit {
					return nil, false // constraint cannot absorb the forced set
				}
			} else if used[isMult] >= quota {
				continue
			}
			used[isMult]++
			s.Step[id] = t
			scheduled[id] = true
			remaining[isMult]--
		}
	}
	for _, id := range g.Ops() {
		if !scheduled[id] {
			return nil, false
		}
	}
	return s, true
}

// Package cdfg implements the scheduled control/data-flow graphs that
// are the input to high-level binding (paper §3). Nodes are primary
// inputs or single-cycle arithmetic operations (additions/subtractions
// and multiplications — the two classes present in the paper's
// benchmarks); edges carry values. The package provides ASAP/ALAP and
// resource-constrained list scheduling, lifetime analysis for register
// binding, validation, and DOT export.
package cdfg

import (
	"fmt"
	"strings"

	"repro/internal/netgen"
)

// NodeKind classifies a CDFG node.
type NodeKind int

const (
	// KindInput is a primary input value.
	KindInput NodeKind = iota
	// KindAdd is a two-operand addition.
	KindAdd
	// KindSub is a two-operand subtraction (same FU class as add).
	KindSub
	// KindMult is a two-operand multiplication.
	KindMult
)

func (k NodeKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindAdd:
		return "add"
	case KindSub:
		return "sub"
	case KindMult:
		return "mult"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsOp reports whether the kind is an operation (not an input).
func (k NodeKind) IsOp() bool { return k != KindInput }

// FUClass maps an operation kind to the functional-unit class that can
// execute it. Additions and subtractions share the adder class.
func (k NodeKind) FUClass() netgen.FUKind {
	switch k {
	case KindAdd, KindSub:
		return netgen.FUAdd
	case KindMult:
		return netgen.FUMult
	}
	panic(fmt.Sprintf("cdfg: kind %v has no FU class", k))
}

// Node is one CDFG vertex. Operations have exactly two arguments
// (earlier node IDs); the produced value is identified with the node ID.
type Node struct {
	ID   int
	Name string
	Kind NodeKind
	Args []int
}

// Graph is a data-flow graph. Build with NewGraph/AddInput/AddOp.
type Graph struct {
	Name    string
	Nodes   []*Node
	Inputs  []int
	Outputs []int // node IDs whose values leave the design
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// AddInput creates a primary-input node.
func (g *Graph) AddInput(name string) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, &Node{ID: id, Name: name, Kind: KindInput})
	g.Inputs = append(g.Inputs, id)
	return id
}

// AddOp creates an operation node consuming two earlier values.
func (g *Graph) AddOp(kind NodeKind, name string, a, b int) int {
	if !kind.IsOp() {
		panic("cdfg: AddOp requires an operation kind")
	}
	if a < 0 || a >= len(g.Nodes) || b < 0 || b >= len(g.Nodes) {
		panic(fmt.Sprintf("cdfg: op %q: argument out of range", name))
	}
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, &Node{ID: id, Name: name, Kind: kind, Args: []int{a, b}})
	return id
}

// MarkOutput flags a node's value as a primary output.
func (g *Graph) MarkOutput(id int) {
	g.Outputs = append(g.Outputs, id)
}

// Ops returns the operation node IDs in topological (ID) order.
func (g *Graph) Ops() []int {
	var ops []int
	for _, n := range g.Nodes {
		if n.Kind.IsOp() {
			ops = append(ops, n.ID)
		}
	}
	return ops
}

// Consumers returns, for every node, the operation nodes reading its value.
func (g *Graph) Consumers() [][]int {
	out := make([][]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			out[a] = append(out[a], n.ID)
		}
	}
	return out
}

// Stats mirrors the paper's Table 1 benchmark profile.
type Stats struct {
	PIs, POs, Adds, Mults, Edges int
}

// Stats computes the Table 1 profile: adds include subtractions; edges
// count every value use (operation arguments) plus primary outputs.
func (g *Graph) Stats() Stats {
	s := Stats{PIs: len(g.Inputs), POs: len(g.Outputs)}
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindAdd, KindSub:
			s.Adds++
		case KindMult:
			s.Mults++
		}
		s.Edges += len(n.Args)
	}
	s.Edges += len(g.Outputs)
	return s
}

// Validate checks structural sanity: args precede uses, ops are binary,
// outputs exist, and every non-output value has at least one consumer
// (no dead operations).
func (g *Graph) Validate() error {
	isOutput := make(map[int]bool)
	for _, o := range g.Outputs {
		if o < 0 || o >= len(g.Nodes) {
			return fmt.Errorf("cdfg %s: output %d out of range", g.Name, o)
		}
		isOutput[o] = true
	}
	consumers := g.Consumers()
	for _, n := range g.Nodes {
		if n.Kind.IsOp() {
			if len(n.Args) != 2 {
				return fmt.Errorf("cdfg %s: op %d is not binary", g.Name, n.ID)
			}
			for _, a := range n.Args {
				if a >= n.ID {
					return fmt.Errorf("cdfg %s: op %d uses later value %d", g.Name, n.ID, a)
				}
			}
			if len(consumers[n.ID]) == 0 && !isOutput[n.ID] {
				return fmt.Errorf("cdfg %s: op %d (%s) is dead", g.Name, n.ID, n.Name)
			}
		}
	}
	return nil
}

// DOT renders the graph in Graphviz format, one rank per control step if
// a schedule is supplied (may be nil).
func (g *Graph) DOT(sched *Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, n := range g.Nodes {
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("%s%d", n.Kind, n.ID)
		}
		shape := "ellipse"
		if n.Kind == KindInput {
			shape = "box"
		}
		extra := ""
		if sched != nil && n.Kind.IsOp() {
			extra = fmt.Sprintf("\\ncstep %d", sched.Step[n.ID])
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s%s\" shape=%s];\n", n.ID, label, extra, shape)
	}
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", a, n.ID)
		}
	}
	for _, o := range g.Outputs {
		fmt.Fprintf(&b, "  out%d [label=\"out\" shape=diamond];\n  n%d -> out%d;\n", o, o, o)
	}
	b.WriteString("}\n")
	return b.String()
}

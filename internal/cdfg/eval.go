package cdfg

// Eval computes every node's value for a W-bit datapath given primary
// input values (indexed like Graph.Inputs). Arithmetic is unsigned
// modulo 2^width, matching the truncating gate-level resource library —
// the functional reference the elaborated datapath is verified against.
func Eval(g *Graph, inputs []uint64, width int) []uint64 {
	if len(inputs) != len(g.Inputs) {
		panic("cdfg: Eval input count mismatch")
	}
	mask := uint64(1)<<uint(width) - 1
	val := make([]uint64, len(g.Nodes))
	for i, id := range g.Inputs {
		val[id] = inputs[i] & mask
	}
	for _, n := range g.Nodes {
		if !n.Kind.IsOp() {
			continue
		}
		a, b := val[n.Args[0]], val[n.Args[1]]
		switch n.Kind {
		case KindAdd:
			val[n.ID] = (a + b) & mask
		case KindSub:
			val[n.ID] = (a - b) & mask
		case KindMult:
			val[n.ID] = (a * b) & mask
		}
	}
	return val
}

// OutputValues extracts the primary-output values from an Eval result.
func OutputValues(g *Graph, val []uint64) []uint64 {
	out := make([]uint64, len(g.Outputs))
	for i, o := range g.Outputs {
		out[i] = val[o]
	}
	return out
}

package cdfg

import "fmt"

// Library describes per-class resource latencies in cycles. The paper's
// experiments use a single-cycle library (§6.1) and its future work
// names better multi-cycle support (§7); this reproduction implements
// both. The zero value behaves as the single-cycle library so existing
// schedules keep working.
type Library struct {
	// AddLatency and MultLatency are the cycle counts of the adder and
	// multiplier classes (values below 1 mean 1). Units are
	// non-pipelined by default: an operation occupies its unit for the
	// full latency.
	AddLatency, MultLatency int
	// MultPipelined marks the multiplier class as fully pipelined
	// (initiation interval 1): an operation occupies its unit only at
	// its start step, and operands are captured into the pipeline at
	// the start rather than held for the whole latency.
	MultPipelined bool
}

// SingleCycle returns the paper's library.
func SingleCycle() Library { return Library{AddLatency: 1, MultLatency: 1} }

// Latency returns the latency of an operation kind (at least 1).
func (l Library) Latency(k NodeKind) int {
	v := 1
	switch k {
	case KindAdd, KindSub:
		v = l.AddLatency
	case KindMult:
		v = l.MultLatency
	}
	if v < 1 {
		v = 1
	}
	return v
}

// Completion returns the last step an operation occupies: the value is
// available to consumers from the following step.
func (s *Schedule) Completion(g *Graph, id int) int {
	return s.Step[id] + s.Lib.Latency(g.Nodes[id].Kind) - 1
}

// Occupies reports whether the operation occupies control step t.
func (s *Schedule) Occupies(g *Graph, id, t int) bool {
	return s.Step[id] <= t && t <= s.BusyUntil(g, id)
}

// BusyUntil returns the last step the operation occupies its unit: the
// start step for pipelined units (new work may enter every cycle), the
// completion step otherwise.
func (s *Schedule) BusyUntil(g *Graph, id int) int {
	if g.Nodes[id].Kind == KindMult && s.Lib.MultPipelined {
		return s.Step[id]
	}
	return s.Completion(g, id)
}

// OperandHold returns how many steps an operation needs its operands
// stable: one step for pipelined units (captured into the pipeline),
// the full latency otherwise.
func (l Library) OperandHold(k NodeKind) int {
	if k == KindMult && l.MultPipelined {
		return 1
	}
	return l.Latency(k)
}

// ListScheduleLat performs resource-constrained list scheduling with
// multi-cycle, non-pipelined resources: an operation starting at step t
// occupies one unit of its class for steps t..t+latency-1, and its
// value becomes available at step t+latency.
func ListScheduleLat(g *Graph, rc ResourceConstraint, lib Library) (*Schedule, error) {
	for _, id := range g.Ops() {
		if rc.Limit(g.Nodes[id].Kind.FUClass()) <= 0 {
			return nil, fmt.Errorf("cdfg: resource constraint has no %s units", g.Nodes[id].Kind.FUClass())
		}
	}
	s := &Schedule{Step: make([]int, len(g.Nodes)), Lib: lib}
	scheduled := make([]bool, len(g.Nodes))
	for _, id := range g.Inputs {
		scheduled[id] = true
	}
	// Urgency from a latency-aware ALAP against the latency-aware ASAP
	// length.
	asapLen := asapLat(g, lib, s0(g))
	alap := alapLat(g, lib, asapLen)

	// occupancy[isMult][t] counts units of the class busy at step t.
	occupancy := map[bool]map[int]int{false: {}, true: {}}
	remaining := len(g.Ops())
	step := 0
	for remaining > 0 {
		step++
		var ready []int
		for _, id := range g.Ops() {
			if scheduled[id] {
				continue
			}
			ok := true
			for _, a := range g.Nodes[id].Args {
				if !scheduled[a] {
					ok = false
					break
				}
				if g.Nodes[a].Kind.IsOp() && s.Completion(g, a) >= step {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, id)
			}
		}
		sortByKey(ready, func(id int) int { return alap[id]*len(g.Nodes) + id })
		for _, id := range ready {
			kind := g.Nodes[id].Kind
			isMult := kind == KindMult
			limit := rc.Add
			if isMult {
				limit = rc.Mult
			}
			lat := lib.Latency(kind)
			occ := lat
			if isMult && lib.MultPipelined {
				occ = 1
			}
			fits := true
			for t := step; t < step+occ; t++ {
				if occupancy[isMult][t] >= limit {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			for t := step; t < step+occ; t++ {
				occupancy[isMult][t]++
			}
			s.Step[id] = step
			scheduled[id] = true
			remaining--
			if c := step + lat - 1; c > s.Len {
				s.Len = c
			}
		}
		if step > 8*len(g.Nodes)+16 {
			return nil, fmt.Errorf("cdfg: multi-cycle list scheduling did not converge")
		}
	}
	if s.Len < step {
		s.Len = step
	}
	return s, nil
}

// s0 builds an empty schedule shell used by the latency-aware ASAP/ALAP
// helpers (they only need Step storage).
func s0(g *Graph) *Schedule {
	return &Schedule{Step: make([]int, len(g.Nodes))}
}

// asapLat computes the latency-aware ASAP start steps into sched.Step
// and returns the overall completion length.
func asapLat(g *Graph, lib Library, sched *Schedule) int {
	length := 0
	for _, n := range g.Nodes {
		if !n.Kind.IsOp() {
			sched.Step[n.ID] = 0
			continue
		}
		start := 1
		for _, a := range n.Args {
			an := g.Nodes[a]
			if !an.Kind.IsOp() {
				continue
			}
			ready := sched.Step[a] + lib.Latency(an.Kind) // first step after completion
			if ready > start {
				start = ready
			}
		}
		sched.Step[n.ID] = start
		if c := start + lib.Latency(n.Kind) - 1; c > length {
			length = c
		}
	}
	return length
}

// alapLat computes latency-aware ALAP start steps for a target length.
func alapLat(g *Graph, lib Library, length int) []int {
	alap := make([]int, len(g.Nodes))
	consumers := g.Consumers()
	for id := len(g.Nodes) - 1; id >= 0; id-- {
		n := g.Nodes[id]
		if !n.Kind.IsOp() {
			continue
		}
		late := length - lib.Latency(n.Kind) + 1
		for _, c := range consumers[id] {
			if v := alap[c] - lib.Latency(n.Kind); v < late {
				late = v
			}
		}
		alap[id] = late
	}
	return alap
}

// ValidateScheduleLat checks a multi-cycle schedule: starts in range,
// completions within the schedule, latency-aware precedence, and
// per-step class occupancy within the constraint.
func ValidateScheduleLat(g *Graph, s *Schedule, rc ResourceConstraint) error {
	occupancy := map[bool]map[int]int{false: {}, true: {}}
	for _, n := range g.Nodes {
		if !n.Kind.IsOp() {
			continue
		}
		start := s.Step[n.ID]
		comp := s.Completion(g, n.ID)
		if start < 1 || comp > s.Len {
			return fmt.Errorf("cdfg: op %d occupies steps %d..%d outside 1..%d", n.ID, start, comp, s.Len)
		}
		for _, a := range n.Args {
			an := g.Nodes[a]
			if an.Kind.IsOp() && s.Completion(g, a) >= start {
				return fmt.Errorf("cdfg: op %d starts at %d before arg %d completes at %d", n.ID, start, a, s.Completion(g, a))
			}
		}
		isMult := n.Kind == KindMult
		for t := start; t <= s.BusyUntil(g, n.ID); t++ {
			occupancy[isMult][t]++
		}
	}
	check := func(isMult bool, limit int) error {
		if limit <= 0 {
			return nil
		}
		for t, c := range occupancy[isMult] {
			if c > limit {
				return fmt.Errorf("cdfg: step %d uses %d units (limit %d)", t, c, limit)
			}
		}
		return nil
	}
	if err := check(false, rc.Add); err != nil {
		return err
	}
	return check(true, rc.Mult)
}

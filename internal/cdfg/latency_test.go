package cdfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func twoCycleMult() Library { return Library{AddLatency: 1, MultLatency: 2} }

func TestLibraryDefaults(t *testing.T) {
	var zero Library
	if zero.Latency(KindAdd) != 1 || zero.Latency(KindMult) != 1 {
		t.Fatal("zero library must be single-cycle")
	}
	lib := twoCycleMult()
	if lib.Latency(KindMult) != 2 || lib.Latency(KindSub) != 1 {
		t.Fatal("latencies wrong")
	}
}

func TestCompletionAndOccupies(t *testing.T) {
	g := NewGraph("m")
	a := g.AddInput("a")
	b := g.AddInput("b")
	m := g.AddOp(KindMult, "m", a, b)
	g.MarkOutput(m)
	s := &Schedule{Step: make([]int, len(g.Nodes)), Len: 4, Lib: twoCycleMult()}
	s.Step[m] = 2
	if s.Completion(g, m) != 3 {
		t.Fatalf("completion = %d, want 3", s.Completion(g, m))
	}
	for step, want := range map[int]bool{1: false, 2: true, 3: true, 4: false} {
		if s.Occupies(g, m, step) != want {
			t.Fatalf("Occupies(%d) = %v", step, !want)
		}
	}
}

func TestListScheduleLatRespectsLatency(t *testing.T) {
	// mult (2 cycles) feeding an add: the add must start two steps later.
	g := NewGraph("chain")
	a := g.AddInput("a")
	b := g.AddInput("b")
	m := g.AddOp(KindMult, "m", a, b)
	add := g.AddOp(KindAdd, "add", m, a)
	g.MarkOutput(add)
	s, err := ListScheduleLat(g, ResourceConstraint{Add: 1, Mult: 1}, twoCycleMult())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateScheduleLat(g, s, ResourceConstraint{Add: 1, Mult: 1}); err != nil {
		t.Fatal(err)
	}
	if s.Step[add] <= s.Completion(g, m) {
		t.Fatalf("add at %d but mult completes at %d", s.Step[add], s.Completion(g, m))
	}
	if s.Len < 3 {
		t.Fatalf("length %d too short for a 2-cycle mult + add", s.Len)
	}
}

func TestListScheduleLatSerializesOnOneUnit(t *testing.T) {
	// Two independent mults on one 2-cycle multiplier must not overlap.
	g := NewGraph("two")
	a := g.AddInput("a")
	b := g.AddInput("b")
	m1 := g.AddOp(KindMult, "m1", a, b)
	m2 := g.AddOp(KindMult, "m2", b, a)
	g.MarkOutput(m1)
	g.MarkOutput(m2)
	s, err := ListScheduleLat(g, ResourceConstraint{Add: 1, Mult: 1}, twoCycleMult())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Step[m1], s.Step[m2]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo < 2 {
		t.Fatalf("2-cycle mults overlap: steps %d and %d", s.Step[m1], s.Step[m2])
	}
}

func TestListScheduleLatMatchesSingleCycleListSchedule(t *testing.T) {
	// With the single-cycle library the two schedulers agree on length.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := randomLatGraph(rng, 15+rng.Intn(20))
		rc := ResourceConstraint{Add: 2, Mult: 2}
		s1, err := ListSchedule(g, rc)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := ListScheduleLat(g, rc, SingleCycle())
		if err != nil {
			t.Fatal(err)
		}
		if s1.Len != s2.Len {
			t.Fatalf("lengths differ: %d vs %d", s1.Len, s2.Len)
		}
	}
}

func TestRandomLatSchedulesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLatGraph(rng, 5+rng.Intn(30))
		lib := Library{AddLatency: 1 + rng.Intn(2), MultLatency: 1 + rng.Intn(3)}
		rc := ResourceConstraint{Add: 1 + rng.Intn(3), Mult: 1 + rng.Intn(3)}
		s, err := ListScheduleLat(g, rc, lib)
		if err != nil {
			return false
		}
		return ValidateScheduleLat(g, s, rc) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyLifetimes(t *testing.T) {
	// Value of a 2-cycle mult is born at its completion step, and its
	// operands live until the mult completes.
	g := NewGraph("lt")
	a := g.AddInput("a")
	b := g.AddInput("b")
	add := g.AddOp(KindAdd, "add", a, b)
	m := g.AddOp(KindMult, "m", add, a)
	g.MarkOutput(m)
	s := &Schedule{Step: make([]int, len(g.Nodes)), Len: 3, Lib: twoCycleMult()}
	s.Step[add] = 1
	s.Step[m] = 2 // occupies 2..3
	lt := Lifetimes(g, s)
	if lt[add].Birth != 1 || lt[add].Death != 3 {
		t.Fatalf("add lifetime %+v, want {1 3} (held through the mult)", lt[add])
	}
	if lt[m].Birth != 3 {
		t.Fatalf("mult value born at %d, want its completion step 3", lt[m].Birth)
	}
}

func TestValidateScheduleLatCatchesViolations(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddInput("a")
	b := g.AddInput("b")
	m := g.AddOp(KindMult, "m", a, b)
	add := g.AddOp(KindAdd, "add", m, a)
	g.MarkOutput(add)
	lib := twoCycleMult()

	// Consumer starts before the mult completes.
	s := &Schedule{Step: make([]int, len(g.Nodes)), Len: 4, Lib: lib}
	s.Step[m], s.Step[add] = 1, 2 // mult occupies 1..2
	if err := ValidateScheduleLat(g, s, ResourceConstraint{}); err == nil {
		t.Fatal("precedence violation not caught")
	}
	// Completion past the schedule end.
	s.Step[m], s.Step[add] = 4, 5
	s.Len = 4
	if err := ValidateScheduleLat(g, s, ResourceConstraint{}); err == nil {
		t.Fatal("overrun not caught")
	}
	// Occupancy over the constraint.
	g2 := NewGraph("occ")
	x := g2.AddInput("x")
	y := g2.AddInput("y")
	o1 := g2.AddOp(KindMult, "o1", x, y)
	o2 := g2.AddOp(KindMult, "o2", y, x)
	g2.MarkOutput(o1)
	g2.MarkOutput(o2)
	s2 := &Schedule{Step: make([]int, len(g2.Nodes)), Len: 3, Lib: lib}
	s2.Step[o1], s2.Step[o2] = 1, 2 // occupations 1..2 and 2..3 overlap at 2
	if err := ValidateScheduleLat(g2, s2, ResourceConstraint{Add: 1, Mult: 1}); err == nil {
		t.Fatal("occupancy violation not caught")
	}
}

func randomLatGraph(rng *rand.Rand, ops int) *Graph {
	g := NewGraph("rand")
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		g.AddInput("")
	}
	for i := 0; i < ops; i++ {
		kind := KindAdd
		if rng.Intn(2) == 0 {
			kind = KindMult
		}
		g.AddOp(kind, "", rng.Intn(len(g.Nodes)), rng.Intn(len(g.Nodes)))
	}
	consumers := g.Consumers()
	for _, nd := range g.Nodes {
		if nd.Kind.IsOp() && len(consumers[nd.ID]) == 0 {
			g.MarkOutput(nd.ID)
		}
	}
	return g
}

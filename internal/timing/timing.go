// Package timing implements static timing analysis over mapped LUT
// networks: arrival times under a LUT + fanout-loaded wire delay model,
// required times, slacks, and critical-path extraction. It refines the
// depth-only clock-period estimate in internal/power with the per-node
// detail a Quartus timing report provides (§6.1 runs full timing
// analysis as part of the flow).
package timing

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/logic"
)

// Model holds the delay constants.
type Model struct {
	// LUTDelayNs is the intrinsic LUT cell delay.
	LUTDelayNs float64
	// WirePerFanoutNs models routing load. High-fanout nets are buffered
	// by the routing fabric, so the load grows logarithmically: a driver
	// with fanout f pays WirePerFanoutNs * (1 + log2(f)).
	WirePerFanoutNs float64
	// ClockOverheadNs covers clock-to-Q, setup, and skew.
	ClockOverheadNs float64
}

// CycloneII returns constants consistent with internal/power's model
// (0.9 ns split between cell and nominal wire load).
func CycloneII() Model {
	return Model{LUTDelayNs: 0.45, WirePerFanoutNs: 0.15, ClockOverheadNs: 3.0}
}

// Analysis is a completed timing analysis.
type Analysis struct {
	// Arrival is the worst-case arrival time (ns) at each node's output.
	Arrival []float64
	// Slack is the timing slack of each node against the critical sink.
	Slack []float64
	// CriticalPath lists node IDs from a source to the critical sink.
	CriticalPath []int
	// CritFanin records, per node, the fanin on its worst arrival path
	// (-1 for sources); PathTo reconstructs any node's critical path.
	CritFanin []int
	// CriticalNs is the worst combinational delay.
	CriticalNs float64
	// PeriodNs is the achievable clock period (critical + overhead).
	PeriodNs float64
}

// Analyze runs STA on the combinational view of the network.
func Analyze(net *logic.Network, m Model) *Analysis {
	n := net.NumNodes()
	a := &Analysis{
		Arrival: make([]float64, n),
		Slack:   make([]float64, n),
	}
	fanouts := net.FanoutCounts()
	// Output delay of a node once it computes: cell + buffered wire load.
	outDelay := func(id int) float64 {
		fo := fanouts[id]
		if fo < 1 {
			fo = 1
		}
		return m.LUTDelayNs + (1+math.Log2(float64(fo)))*m.WirePerFanoutNs
	}
	critFanin := make([]int, n)
	for i := range critFanin {
		critFanin[i] = -1
	}
	a.CritFanin = critFanin
	for _, id := range net.TopoOrder() {
		nd := net.Node(id)
		if nd.Kind != logic.KindGate {
			a.Arrival[id] = 0
			continue
		}
		worst := 0.0
		pick := -1
		for _, f := range nd.Fanins {
			if a.Arrival[f] >= worst {
				worst = a.Arrival[f]
				pick = f
			}
		}
		a.Arrival[id] = worst + outDelay(id)
		critFanin[id] = pick
	}

	// Sinks: primary outputs and latch D inputs.
	sink := -1
	for _, o := range net.Outputs {
		if a.Arrival[o.Node] > a.CriticalNs {
			a.CriticalNs = a.Arrival[o.Node]
			sink = o.Node
		}
	}
	for _, q := range net.Latches {
		d := net.Node(q).LatchInput
		if a.Arrival[d] > a.CriticalNs {
			a.CriticalNs = a.Arrival[d]
			sink = d
		}
	}
	a.PeriodNs = a.CriticalNs + m.ClockOverheadNs

	// Required times / slack via reverse propagation.
	required := make([]float64, n)
	for i := range required {
		required[i] = a.CriticalNs
	}
	order := net.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		nd := net.Node(id)
		if nd.Kind != logic.KindGate {
			continue
		}
		for _, f := range nd.Fanins {
			if r := required[id] - outDelay(id); r < required[f] {
				required[f] = r
			}
		}
	}
	for id := range a.Slack {
		a.Slack[id] = required[id] - a.Arrival[id]
	}

	// Critical path extraction.
	for id := sink; id >= 0; id = critFanin[id] {
		a.CriticalPath = append(a.CriticalPath, id)
	}
	// Reverse into source→sink order.
	for i, j := 0, len(a.CriticalPath)-1; i < j; i, j = i+1, j-1 {
		a.CriticalPath[i], a.CriticalPath[j] = a.CriticalPath[j], a.CriticalPath[i]
	}
	return a
}

// MultiCyclePeriodNs returns the clock period when the worst
// combinational cone is allowed `cycles` clock periods to settle (the
// multi-cycle-path timing exception the latency extension exploits):
// the combinational delay amortizes over the allowance while the
// overhead is paid once per cycle.
func MultiCyclePeriodNs(an *Analysis, m Model, cycles int) float64 {
	if cycles < 1 {
		cycles = 1
	}
	return an.CriticalNs/float64(cycles) + m.ClockOverheadNs
}

// Report renders a human-readable timing summary with the named
// critical path.
func (a *Analysis) Report(net *logic.Network) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical delay %.2f ns, period %.2f ns\n", a.CriticalNs, a.PeriodNs)
	sb.WriteString("critical path:\n")
	for _, id := range a.CriticalPath {
		nd := net.Node(id)
		name := nd.Name
		if name == "" {
			name = fmt.Sprintf("n%d", id)
		}
		fmt.Fprintf(&sb, "  %-30s %-6s arrival %.2f ns\n", name, nd.Kind, a.Arrival[id])
	}
	return sb.String()
}

// PathTo reconstructs the worst arrival path ending at the given node,
// source first.
func (a *Analysis) PathTo(id int) []int {
	var rev []int
	for cur := id; cur >= 0; cur = a.CritFanin[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PeriodWithAllowance computes the clock period when each register/output
// sink may take allowance(sink) clock cycles to settle (multi-cycle path
// constraints): sinks with allowance k contribute arrival/k. The sink
// set is primary-output drivers plus latch D inputs; allowance is
// consulted per sink node ID and clamps below at 1.
func PeriodWithAllowance(net *logic.Network, an *Analysis, m Model, allowance func(sink int) int) float64 {
	worst := 0.0
	consider := func(id int) {
		k := 1
		if allowance != nil {
			if v := allowance(id); v > 1 {
				k = v
			}
		}
		if c := an.Arrival[id] / float64(k); c > worst {
			worst = c
		}
	}
	for _, o := range net.Outputs {
		consider(o.Node)
	}
	for _, q := range net.Latches {
		consider(net.Node(q).LatchInput)
	}
	return worst + m.ClockOverheadNs
}

package timing

import (
	"math"
	"testing"

	"repro/internal/logic"
)

// twoConeNetwork: a shallow cone into latch qa and a deep cone into
// latch qb, so per-sink allowances matter.
func twoConeNetwork() (*logic.Network, int, int) {
	net := logic.NewNetwork("cones")
	a := net.AddInput("a")
	qa := net.AddLatch("qa", false)
	qb := net.AddLatch("qb", false)
	short := net.AddGate("short", logic.TTNot(), a)
	net.ConnectLatch(qa, short)
	cur := a
	for i := 0; i < 6; i++ {
		cur = net.AddGate("", logic.TTNot(), cur)
	}
	net.ConnectLatch(qb, cur)
	net.MarkOutput("ya", qa)
	return net, short, cur
}

func TestPeriodWithAllowanceSelective(t *testing.T) {
	net, shortSink, deepSink := twoConeNetwork()
	m := Model{LUTDelayNs: 1, WirePerFanoutNs: 0, ClockOverheadNs: 2}
	an := Analyze(net, m)

	// No allowance: period set by the deep cone.
	base := PeriodWithAllowance(net, an, m, nil)
	if math.Abs(base-an.PeriodNs) > 1e-9 {
		t.Fatalf("nil allowance should equal STA period: %v vs %v", base, an.PeriodNs)
	}
	// Give only the deep sink 3 cycles: period drops to max(short, deep/3).
	relaxed := PeriodWithAllowance(net, an, m, func(sink int) int {
		if sink == deepSink {
			return 3
		}
		return 1
	})
	want := math.Max(an.Arrival[shortSink], an.Arrival[deepSink]/3) + m.ClockOverheadNs
	if math.Abs(relaxed-want) > 1e-9 {
		t.Fatalf("relaxed period %v, want %v", relaxed, want)
	}
	if relaxed >= base {
		t.Fatal("allowance should shorten the period")
	}
	// Allowance below 1 clamps.
	clamped := PeriodWithAllowance(net, an, m, func(int) int { return 0 })
	if math.Abs(clamped-base) > 1e-9 {
		t.Fatal("allowance 0 should clamp to 1")
	}
}

func TestPeriodWithAllowanceCoversOutputs(t *testing.T) {
	// Primary-output sinks participate too.
	net := logic.NewNetwork("po")
	a := net.AddInput("a")
	cur := a
	for i := 0; i < 4; i++ {
		cur = net.AddGate("", logic.TTNot(), cur)
	}
	net.MarkOutput("y", cur)
	m := Model{LUTDelayNs: 1, WirePerFanoutNs: 0, ClockOverheadNs: 1}
	an := Analyze(net, m)
	p := PeriodWithAllowance(net, an, m, func(int) int { return 2 })
	if math.Abs(p-(4.0/2+1)) > 1e-9 {
		t.Fatalf("PO allowance period %v, want 3", p)
	}
}

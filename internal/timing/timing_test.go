package timing

import (
	"math"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/netgen"
)

func TestChainArrival(t *testing.T) {
	// A 3-inverter chain with fanout 1 everywhere: arrival = k * (cell + wire).
	net := logic.NewNetwork("chain")
	cur := net.AddInput("a")
	var ids []int
	for i := 0; i < 3; i++ {
		cur = net.AddGate("", logic.TTNot(), cur)
		ids = append(ids, cur)
	}
	net.MarkOutput("y", cur)
	m := Model{LUTDelayNs: 1, WirePerFanoutNs: 0.5, ClockOverheadNs: 2}
	an := Analyze(net, m)
	per := 1.5
	for i, id := range ids {
		want := float64(i+1) * per
		if math.Abs(an.Arrival[id]-want) > 1e-9 {
			t.Fatalf("node %d arrival %.2f, want %.2f", id, an.Arrival[id], want)
		}
	}
	if math.Abs(an.CriticalNs-3*per) > 1e-9 {
		t.Fatalf("critical %.2f, want %.2f", an.CriticalNs, 3*per)
	}
	if math.Abs(an.PeriodNs-(3*per+2)) > 1e-9 {
		t.Fatalf("period %.2f", an.PeriodNs)
	}
	// The whole chain is the critical path (plus the PI source).
	if len(an.CriticalPath) != 4 {
		t.Fatalf("critical path has %d nodes, want 4", len(an.CriticalPath))
	}
	// Zero slack along the critical path.
	for _, id := range ids {
		if math.Abs(an.Slack[id]) > 1e-9 {
			t.Fatalf("critical node %d has slack %.3f", id, an.Slack[id])
		}
	}
}

func TestFanoutLoadsDriver(t *testing.T) {
	// A driver with 4 fanouts is slower than one with 1.
	build := func(fanouts int) float64 {
		net := logic.NewNetwork("f")
		a := net.AddInput("a")
		drv := net.AddGate("drv", logic.TTNot(), a)
		for i := 0; i < fanouts; i++ {
			s := net.AddGate("", logic.TTNot(), drv)
			net.MarkOutput("y"+string(rune('0'+i)), s)
		}
		an := Analyze(net, CycloneII())
		return an.Arrival[drv]
	}
	if build(4) <= build(1) {
		t.Fatal("fanout load should slow the driver")
	}
}

func TestOffPathHasPositiveSlack(t *testing.T) {
	// Short side branch next to a long chain: the branch has slack.
	net := logic.NewNetwork("slack")
	a := net.AddInput("a")
	short := net.AddGate("short", logic.TTNot(), a)
	net.MarkOutput("s", short)
	cur := a
	for i := 0; i < 5; i++ {
		cur = net.AddGate("", logic.TTNot(), cur)
	}
	net.MarkOutput("l", cur)
	an := Analyze(net, CycloneII())
	if an.Slack[short] <= 0 {
		t.Fatalf("short branch slack %.2f, want > 0", an.Slack[short])
	}
	if math.Abs(an.Slack[cur]) > 1e-9 {
		t.Fatal("long branch should be critical (zero slack)")
	}
}

func TestLatchBoundaries(t *testing.T) {
	// Latch D inputs are sinks; latch outputs are sources.
	net := logic.NewNetwork("seq")
	a := net.AddInput("a")
	q := net.AddLatch("q", false)
	g1 := net.AddGate("g1", logic.TTAnd2(), a, q)
	net.ConnectLatch(q, g1)
	g2 := net.AddGate("g2", logic.TTNot(), q)
	net.MarkOutput("y", g2)
	an := Analyze(net, CycloneII())
	if an.Arrival[q] != 0 {
		t.Fatal("latch output must be a timing source")
	}
	if an.CriticalNs <= 0 {
		t.Fatal("no critical delay found")
	}
}

func TestAnalyzeMappedMultiplier(t *testing.T) {
	net := netgen.MultiplierNetwork(8)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(res.Mapped, CycloneII())
	if an.CriticalNs <= 0 {
		t.Fatal("no delay on a multiplier?")
	}
	// The critical path must be contiguous (each node a fanin of the next).
	for i := 1; i < len(an.CriticalPath); i++ {
		nd := res.Mapped.Node(an.CriticalPath[i])
		found := false
		for _, f := range nd.Fanins {
			if f == an.CriticalPath[i-1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("critical path broken between %d and %d", an.CriticalPath[i-1], an.CriticalPath[i])
		}
	}
	// Period grows monotonically with depth-proportional critical delay
	// and the report names the path.
	rep := an.Report(res.Mapped)
	if !strings.Contains(rep, "critical path") || !strings.Contains(rep, "ns") {
		t.Fatalf("report malformed:\n%s", rep)
	}
}

func TestMultiCyclePeriod(t *testing.T) {
	net := netgen.MultiplierNetwork(8)
	res, err := mapper.Map(net, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := CycloneII()
	an := Analyze(res.Mapped, m)
	p1 := MultiCyclePeriodNs(an, m, 1)
	p2 := MultiCyclePeriodNs(an, m, 2)
	if math.Abs(p1-an.PeriodNs) > 1e-9 {
		t.Fatal("1-cycle period must equal the STA period")
	}
	if p2 >= p1 {
		t.Fatal("2-cycle allowance must shorten the period")
	}
	if p2 <= m.ClockOverheadNs {
		t.Fatal("period cannot go below the overhead")
	}
	if got := MultiCyclePeriodNs(an, m, 0); math.Abs(got-p1) > 1e-9 {
		t.Fatal("cycles < 1 should clamp to 1")
	}
}

func TestSlackNonNegativeOffCritical(t *testing.T) {
	net := netgen.AdderNetwork(8)
	an := Analyze(net, CycloneII())
	for id, s := range an.Slack {
		if s < -1e-9 {
			t.Fatalf("node %d has negative slack %.3f", id, s)
		}
	}
}

package store

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Codec serializes one artifact class. Implementations must round-trip
// exactly: Decode(Encode(v)) must be semantically identical to v, and
// for numeric payloads bit-identical — the store's contract is that a
// warm request and the recompute it replaces produce byte-identical
// reports. Codecs must treat Decode input as untrusted (it survived a
// checksum, not a semantic check) and return an error rather than
// panic on malformed bytes; the store quarantines the entry.
type Codec interface {
	Encode(w io.Writer, v any) error
	Decode(r io.Reader) (any, error)
}

// Float64 returns the codec for plain float64 artifacts (the SA-table
// entry class). Values are stored in Go's shortest round-trip decimal
// form, the same discipline satable's text snapshots rely on, so the
// decoded float is bit-identical to the encoded one.
func Float64() Codec { return float64Codec{} }

type float64Codec struct{}

func (float64Codec) Encode(w io.Writer, v any) error {
	f, ok := v.(float64)
	if !ok {
		return fmt.Errorf("store: float64 codec cannot encode %T", v)
	}
	_, err := io.WriteString(w, strconv.FormatFloat(f, 'g', -1, 64))
	return err
}

func (float64Codec) Decode(r io.Reader) (any, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return nil, fmt.Errorf("store: float64 codec: %w", err)
	}
	return f, nil
}

// JSONOf returns a codec for value-typed artifacts (sim.Counts,
// power.Report, ...): Decode returns a T. encoding/json marshals
// float64 in shortest round-trip form, so numeric fields survive the
// disk round trip bit-identically.
func JSONOf[T any]() Codec { return jsonCodec[T]{} }

type jsonCodec[T any] struct{}

func (jsonCodec[T]) Encode(w io.Writer, v any) error {
	if _, ok := v.(T); !ok {
		return fmt.Errorf("store: JSON codec for %T cannot encode %T", *new(T), v)
	}
	return json.NewEncoder(w).Encode(v)
}

func (jsonCodec[T]) Decode(r io.Reader) (any, error) {
	var out T
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("store: JSON codec: %w", err)
	}
	return out, nil
}

// JSONPtr returns a codec for pointer-typed artifacts (*flow.Result,
// ...): Decode returns a *T.
func JSONPtr[T any]() Codec { return jsonPtrCodec[T]{} }

type jsonPtrCodec[T any] struct{}

func (jsonPtrCodec[T]) Encode(w io.Writer, v any) error {
	if _, ok := v.(*T); !ok {
		return fmt.Errorf("store: JSON codec for %T cannot encode %T", new(T), v)
	}
	return json.NewEncoder(w).Encode(v)
}

func (jsonPtrCodec[T]) Decode(r io.Reader) (any, error) {
	out := new(T)
	if err := json.NewDecoder(r).Decode(out); err != nil {
		return nil, fmt.Errorf("store: JSON codec: %w", err)
	}
	return out, nil
}

package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func openT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRoundTrip pins the basic durability contract: a Put survives
// Close and a fresh Open, decoding to the identical value.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s := openT(t, dir, Options{})
	s.RegisterCodec("sa@", Float64())
	s.Put(ctx, "sa@abc", "mux/4/7", 0.123456789012345678)
	if v, ok := s.Get(ctx, "sa@abc", "mux/4/7"); !ok || v.(float64) != 0.123456789012345678 {
		t.Fatalf("same-process Get = %v, %v", v, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir, Options{})
	s2.RegisterCodec("sa@", Float64())
	v, ok := s2.Get(ctx, "sa@abc", "mux/4/7")
	if !ok {
		t.Fatal("entry did not survive reopen")
	}
	if v.(float64) != 0.123456789012345678 {
		t.Fatalf("reopened value %v is not bit-identical", v)
	}
	// A different key or class must never alias.
	if _, ok := s2.Get(ctx, "sa@abc", "mux/4/8"); ok {
		t.Fatal("Get hit a key never written")
	}
	if _, ok := s2.Get(ctx, "sa@other", "mux/4/7"); ok {
		t.Fatal("Get hit a class never written")
	}
}

// TestCodeclessClassIsMemoryOnly: classes with no registered codec are
// skipped on Put and always miss on Get — never an error.
func TestCodeclessClassIsMemoryOnly(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	ctx := context.Background()
	s.Put(ctx, "bind", "k1", struct{ X chan int }{}) // not even encodable
	if got := s.Stats().PutSkips; got != 1 {
		t.Fatalf("PutSkips = %d, want 1", got)
	}
	if _, ok := s.Get(ctx, "bind", "k1"); ok {
		t.Fatal("Get hit a codec-less class")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

// TestCorruptEntryQuarantineAndHeal flips one on-disk payload bit: the
// next Get must miss (never error), move the file to quarantine/, and a
// re-Put must heal the slot.
func TestCorruptEntryQuarantineAndHeal(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := openT(t, dir, Options{})
	s.RegisterCodec("power", JSONOf[map[string]float64]())
	want := map[string]float64{"mw": 76.5}
	s.Put(ctx, "power", "k", want)

	names, _ := os.ReadDir(filepath.Join(dir, "objects"))
	if len(names) != 1 {
		t.Fatalf("objects holds %d files, want 1", len(names))
	}
	path := filepath.Join(dir, "objects", names[0].Name())
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x01 // payload byte: checksum now mismatches
	if err := os.WriteFile(path, b, 0o666); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(ctx, "power", "k"); ok {
		t.Fatal("Get returned a corrupt entry")
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if got := s.QuarantineLen(); got != 1 {
		t.Fatalf("QuarantineLen = %d, want 1 (corrupt bytes must be kept for post-mortem)", got)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", got)
	}

	// Recompute-and-heal: the caller re-Puts, the slot works again.
	s.Put(ctx, "power", "k", want)
	v, ok := s.Get(ctx, "power", "k")
	if !ok || v.(map[string]float64)["mw"] != want["mw"] {
		t.Fatalf("healed Get = %v, %v", v, ok)
	}
}

// TestTornWriteCrashRecovery is the crash drill: a writer killed
// mid-write (injected short write — the rename lands, the payload is
// half there) must, after "restart", yield a quarantined entry and a
// bit-identical recompute. This is the satellite-3 contract at the
// store level; the flow-level version is TestDurableStoreRoundTrip.
func TestTornWriteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	want := 3.14159265358979
	tear := pipeline.WithInjector(context.Background(),
		pipeline.NewFaultInjector(1, pipeline.FaultRule{Class: "sa@t", PShortWrite: 1}))

	s := openT(t, dir, Options{})
	s.RegisterCodec("sa@", Float64())
	s.Put(tear, "sa@t", "k", want)
	if got := s.Stats().Puts; got != 1 {
		t.Fatalf("Puts = %d, want 1 (a torn write still renames)", got)
	}
	// "Crash": drop the in-memory state, reopen the directory.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	s2.RegisterCodec("sa@", Float64())
	ctx := context.Background()
	if _, ok := s2.Get(ctx, "sa@t", "k"); ok {
		t.Fatal("Get returned a torn entry")
	}
	if got := s2.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	// Recompute (no fault this time) and verify bit-identical recovery.
	s2.Put(ctx, "sa@t", "k", want)
	v, ok := s2.Get(ctx, "sa@t", "k")
	if !ok {
		t.Fatal("recomputed entry missing")
	}
	if v.(float64) != want {
		t.Fatalf("recomputed value %v, want bit-identical %v", v, want)
	}
}

// TestInjectedENOSPCAbsorbed: a failed write is logged and absorbed,
// never surfaced, and leaves no entry behind.
func TestInjectedENOSPCAbsorbed(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	s.RegisterCodec("sim", Float64())
	full := pipeline.WithInjector(context.Background(),
		pipeline.NewFaultInjector(1, pipeline.FaultRule{PENOSPC: 1}))
	s.Put(full, "sim", "k", 1.0)
	st := s.Stats()
	if st.PutErrors != 1 || st.Puts != 0 || st.Entries != 0 {
		t.Fatalf("after injected ENOSPC: %+v", st)
	}
	if _, ok := s.Get(context.Background(), "sim", "k"); ok {
		t.Fatal("Get hit an entry whose write failed")
	}
}

// TestInjectedChecksumFlipCaught: silent media corruption (bit flipped
// after the CRC was computed) lands durably but is caught on read.
func TestInjectedChecksumFlipCaught(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	s.RegisterCodec("sim", Float64())
	flip := pipeline.WithInjector(context.Background(),
		pipeline.NewFaultInjector(1, pipeline.FaultRule{PChecksumFlip: 1}))
	s.Put(flip, "sim", "k", 2.5)
	if got := s.Stats().Puts; got != 1 {
		t.Fatalf("Puts = %d, want 1 (corruption is silent at write time)", got)
	}
	if _, ok := s.Get(context.Background(), "sim", "k"); ok {
		t.Fatal("checksum verification missed a flipped bit")
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
}

// TestLRUEvictionByteAccounting: a byte-bounded store evicts least
// recently used entries first and keeps Bytes equal to the on-disk sum.
func TestLRUEvictionByteAccounting(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := openT(t, dir, Options{MaxBytes: 1}) // every second Put evicts
	s.RegisterCodec("sa@", Float64())

	s.Put(ctx, "sa@e", "a", 1.0)
	s.Put(ctx, "sa@e", "b", 2.0) // evicts a (LRU)
	if _, ok := s.Get(ctx, "sa@e", "a"); ok {
		t.Fatal("evicted entry still served")
	}
	if v, ok := s.Get(ctx, "sa@e", "b"); !ok || v.(float64) != 2.0 {
		t.Fatal("surviving entry lost")
	}
	st := s.Stats()
	if st.Evicted != 1 || st.Entries != 1 {
		t.Fatalf("eviction stats %+v", st)
	}
	var diskBytes int64
	des, _ := os.ReadDir(filepath.Join(dir, "objects"))
	for _, de := range des {
		fi, _ := de.Info()
		diskBytes += fi.Size()
	}
	if st.Bytes != diskBytes {
		t.Fatalf("accounted %d bytes, disk holds %d", st.Bytes, diskBytes)
	}
}

// TestRecencySurvivesReopen: LRU order is seeded from mtimes at Open,
// so a restart evicts the same victims a long-lived process would.
func TestRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := openT(t, dir, Options{})
	s.RegisterCodec("sa@", Float64())
	s.Put(ctx, "sa@r", "old", 1.0)
	oneEntry := s.Stats().Bytes
	// Backdate the first entry so mtime ordering is unambiguous even on
	// coarse filesystem clocks.
	des, _ := os.ReadDir(filepath.Join(dir, "objects"))
	old := filepath.Join(dir, "objects", des[0].Name())
	past := time.Now().Add(-time.Hour)
	os.Chtimes(old, past, past)
	s.Put(ctx, "sa@r", "new", 2.0)
	s.Close()

	// A budget of exactly one entry forces Open's seeding pass to pick
	// a victim; mtime recency must make it the older one.
	s2 := openT(t, dir, Options{MaxBytes: oneEntry})
	s2.RegisterCodec("sa@", Float64())
	// Open's budget pass must have evicted the older entry.
	if _, ok := s2.Get(ctx, "sa@r", "old"); ok {
		t.Fatal("older entry survived the reopen budget")
	}
	if _, ok := s2.Get(ctx, "sa@r", "new"); !ok {
		t.Fatal("newer entry evicted instead of the older one")
	}
}

// TestSingleWriterLock: a second Open on a live store is refused with
// an error naming the directory; Close releases the lock.
func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a locked store succeeded")
	} else if !strings.Contains(err.Error(), dir) {
		t.Fatalf("lock error %q does not name the directory", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

// TestTmpDebrisRemovedAtOpen: temp files from a writer killed before
// its rename are swept at Open and never counted as entries.
func TestTmpDebrisRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Close()
	debris := filepath.Join(dir, "objects", ".tmp-12345")
	if err := os.WriteFile(debris, []byte("half an entr"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if got := s2.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("temp debris still present (stat err %v)", err)
	}
}

// TestFormatMismatchRefused: a directory stamped by a different layout
// version is refused outright rather than quarantined entry by entry.
func TestFormatMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "format"), []byte("hlpower-store v999\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open adopted a future-format store")
	}
}

// Package store implements the durable, crash-safe artifact store that
// backs the pipeline's in-memory caches (pipeline.Backing). It is what
// turns a cold hlpower invocation or a restarted hlpowerd daemon into a
// warm one: content-addressed stage artifacts (simulation counts, power
// reports), SA-table entries, and whole run results persist across
// processes, fingerprint-stamped so an entry computed under one
// architecture or configuration can never serve another.
//
// Durability discipline, in order of paranoia:
//
//   - Writes are atomic: encode to a temp file in the same directory,
//     fsync, rename. A crashed writer leaves only .tmp- debris (removed
//     at the next Open), never a half-visible entry under its final
//     name.
//   - Every entry carries its payload length and CRC-32 checksum in a
//     header that also repeats the class and key. A short read, a
//     flipped bit, a hash-collision mismatch, or an undecodable payload
//     quarantines the entry (moved aside for post-mortem, accounting
//     adjusted) and reports a miss — a corrupt cache file never fails a
//     request; the caller recomputes and the next Put heals the slot.
//   - The store is size-bounded: byte-accounted LRU eviction keeps the
//     on-disk footprint under Options.MaxBytes, recency seeded from
//     file mtimes at Open and maintained on every hit.
//   - One writer per store: Open takes an exclusive flock on the
//     directory's lock file, so two daemons pointed at one store fail
//     fast instead of tearing each other's entries. The lock dies with
//     the process, so a crashed daemon never wedges the store.
//
// Fault injection: Put consults the context's pipeline.FaultInjector
// (DiskFault) and will deliberately tear, corrupt, or fail its own
// write — the recovery paths above are tested exactly the way stage
// failures are.
package store

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/pipeline"
)

// formatLine is the first header line of every entry and the content of
// the store's format file; bump the version when the layout changes.
const formatLine = "hlpower-store v1"

// Options configures Open.
type Options struct {
	// MaxBytes bounds the summed entry payload+header bytes on disk
	// (0 = unbounded). When a Put pushes past it, least-recently-used
	// entries are evicted until the store fits (the entry just written
	// is never its own eviction victim).
	MaxBytes int64
	// Logf receives corruption, quarantine, and write-failure reports
	// (nil = silent). The store never fails a request over them; this is
	// the operator's only window into self-healing events.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of store traffic and state.
type Stats struct {
	// Hits and Misses count Get outcomes; Quarantined is the subset of
	// misses caused by corrupt entries moved aside.
	Hits, Misses, Quarantined int
	// Puts counts entries durably written; PutSkips counts Puts dropped
	// because no codec covers the class (memory-only artifact classes);
	// PutErrors counts write failures (ENOSPC, injected or real).
	Puts, PutSkips, PutErrors int
	// Evicted counts LRU eviction victims.
	Evicted int
	// Entries and Bytes describe the current on-disk footprint.
	Entries int
	Bytes   int64
}

// entryInfo is the in-memory accounting record of one on-disk entry.
type entryInfo struct {
	name string // file name under objects/
	size int64
}

type codecBinding struct {
	prefix string
	codec  Codec
}

// Store is the durable artifact store. It implements pipeline.Backing.
// Safe for concurrent use; operations serialize internally (entries are
// small — the expensive part of a miss is the recompute, not this
// lock).
type Store struct {
	dir    string
	objDir string
	qDir   string
	maxB   int64
	logf   func(string, ...any)
	lockF  *os.File

	mu     sync.Mutex
	codecs []codecBinding
	ent    map[string]*list.Element // objects/ file name -> LRU element
	lru    *list.List               // front = most recently used
	bytes  int64
	stats  Stats
	qseq   int
	closed bool
}

// Open opens (creating if needed) the store rooted at dir and takes the
// single-writer lock. A second Open on a locked store fails immediately
// with an error naming the directory. Crash debris from torn writers
// (temp files) is removed; entry recency is seeded from file mtimes.
func Open(dir string, opt Options) (*Store, error) {
	objDir := filepath.Join(dir, "objects")
	qDir := filepath.Join(dir, "quarantine")
	for _, d := range []string{dir, objDir, qDir} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}

	lockF, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lockF.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lockF.Close()
		return nil, fmt.Errorf("store: %s is locked by another process: %w", dir, err)
	}

	// Format stamp: refuse to adopt a directory written by a different
	// layout version rather than quarantining everything in it.
	fmtPath := filepath.Join(dir, "format")
	if b, err := os.ReadFile(fmtPath); err == nil {
		if got := strings.TrimSpace(string(b)); got != formatLine {
			lockF.Close()
			return nil, fmt.Errorf("store: %s holds format %q, this build writes %q", dir, got, formatLine)
		}
	} else if errors.Is(err, fs.ErrNotExist) {
		if err := os.WriteFile(fmtPath, []byte(formatLine+"\n"), 0o666); err != nil {
			lockF.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		lockF.Close()
		return nil, fmt.Errorf("store: %w", err)
	}

	s := &Store{
		dir: dir, objDir: objDir, qDir: qDir,
		maxB: opt.MaxBytes, logf: opt.Logf, lockF: lockF,
		ent: make(map[string]*list.Element), lru: list.New(),
	}

	// Scan existing entries: drop temp debris, seed LRU from mtimes
	// (oldest first so they evict first). Headers are verified lazily on
	// Get — a corrupt survivor costs nothing until demanded.
	des, err := os.ReadDir(objDir)
	if err != nil {
		lockF.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	type seed struct {
		name  string
		size  int64
		mtime time.Time
	}
	var seeds []seed
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(objDir, name))
			continue
		}
		if !strings.HasSuffix(name, ".art") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{name: name, size: fi.Size(), mtime: fi.ModTime()})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mtime.Before(seeds[j].mtime) })
	for _, sd := range seeds {
		s.ent[sd.name] = s.lru.PushFront(&entryInfo{name: sd.name, size: sd.size})
		s.bytes += sd.size
	}
	s.evictLocked(nil)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes directory metadata and releases the single-writer lock.
// The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncDirLocked()
	if uerr := syscall.Flock(int(s.lockF.Fd()), syscall.LOCK_UN); uerr != nil && err == nil {
		err = uerr
	}
	if cerr := s.lockF.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Flush fsyncs the objects directory so completed renames are durable.
// Entry payloads are fsynced before their rename, so this is the only
// deferred durability work; the daemon calls it on drain.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.syncDirLocked()
}

func (s *Store) syncDirLocked() error {
	d, err := os.Open(s.objDir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// RegisterCodec binds a codec to every class beginning with prefix
// (longest prefix wins; an exact class name is the degenerate prefix).
// Registering a prefix again replaces the codec. Classes with no codec
// are memory-only: Put skips them and Get always misses — which is how
// non-serializable artifact classes (bound netlists, mapped networks)
// coexist with durable ones on one cache.
func (s *Store) RegisterCodec(prefix string, c Codec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.codecs {
		if s.codecs[i].prefix == prefix {
			s.codecs[i].codec = c
			return
		}
	}
	s.codecs = append(s.codecs, codecBinding{prefix: prefix, codec: c})
}

func (s *Store) codecForLocked(class string) Codec {
	best := -1
	for i, cb := range s.codecs {
		if strings.HasPrefix(class, cb.prefix) && (best < 0 || len(cb.prefix) > len(s.codecs[best].prefix)) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return s.codecs[best].codec
}

// entryName maps (class, key) to the entry's file name. Content
// addressing by hash keeps arbitrary key bytes out of the filesystem;
// the header repeats both strings so a collision (or a renamed file)
// is detected on read.
func entryName(class, key string) string {
	h := sha256.Sum256([]byte(class + "\x00" + key))
	return hex.EncodeToString(h[:20]) + ".art"
}

// Stats returns a snapshot of the store's counters and footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}

// Len returns the number of on-disk entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Get implements pipeline.Backing: it returns the decoded artifact for
// (class, key), or false. Every corruption mode — missing bytes, bad
// checksum, header mismatch, undecodable payload — quarantines the
// entry and reports a miss; Get never returns an error and never
// panics on a bad file.
func (s *Store) Get(_ context.Context, class, key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	name := entryName(class, key)
	el, ok := s.ent[name]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	codec := s.codecForLocked(class)
	if codec == nil {
		// No codec (anymore): the file may be a survivor from a build
		// that had one. Not corruption — leave it for eviction.
		s.stats.Misses++
		return nil, false
	}
	path := filepath.Join(s.objDir, name)
	payload, err := readEntry(path, class, key)
	if err != nil {
		s.quarantineLocked(el, class, key, err)
		s.stats.Misses++
		return nil, false
	}
	v, err := codec.Decode(bytes.NewReader(payload))
	if err != nil {
		s.quarantineLocked(el, class, key, err)
		s.stats.Misses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort: persists recency across restarts
	s.stats.Hits++
	return v, true
}

// readEntry reads and verifies one entry file, returning its payload.
func readEntry(path, class, key string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line := func() (string, error) {
		l, err := br.ReadString('\n')
		if err != nil {
			return "", fmt.Errorf("truncated header: %w", err)
		}
		return strings.TrimSuffix(l, "\n"), nil
	}
	l, err := line()
	if err != nil {
		return nil, err
	}
	if l != formatLine {
		return nil, fmt.Errorf("bad magic %q", l)
	}
	var gotClass, gotKey string
	var wantLen int64 = -1
	var wantCRC uint64
	var haveCRC bool
	for {
		l, err := line()
		if err != nil {
			return nil, err
		}
		if l == "---" {
			break
		}
		k, v, ok := strings.Cut(l, "=")
		if !ok {
			return nil, fmt.Errorf("bad header line %q", l)
		}
		switch k {
		case "class":
			gotClass, err = url.QueryUnescape(v)
		case "key":
			gotKey, err = url.QueryUnescape(v)
		case "len":
			wantLen, err = strconv.ParseInt(v, 10, 64)
		case "crc32":
			wantCRC, err = strconv.ParseUint(v, 16, 32)
			haveCRC = true
		default:
			// Unknown header fields are forward-compatible padding.
		}
		if err != nil {
			return nil, fmt.Errorf("bad header line %q: %w", l, err)
		}
	}
	if gotClass != class || gotKey != key {
		return nil, fmt.Errorf("entry is %s/%s, want %s/%s (hash collision or relocated file)",
			gotClass, gotKey, class, key)
	}
	if wantLen < 0 || !haveCRC {
		return nil, fmt.Errorf("header missing len/crc32")
	}
	payload := make([]byte, wantLen)
	if n, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("payload truncated at %d of %d bytes: %w", n, wantLen, err)
	}
	if n, _ := br.Read(make([]byte, 1)); n != 0 {
		return nil, fmt.Errorf("trailing bytes after %d-byte payload", wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); uint64(got) != wantCRC {
		return nil, fmt.Errorf("checksum mismatch: payload crc32 %08x, header %08x", got, wantCRC)
	}
	return payload, nil
}

// Put implements pipeline.Backing: it durably stores the artifact,
// best-effort. A class without a codec is skipped; an encode or write
// failure (including injected ENOSPC) is logged and absorbed — the
// caller's request already has its value, so persistence failures must
// never surface. The context's FaultInjector, if any, is consulted for
// disk faults (short write, checksum flip, ENOSPC).
func (s *Store) Put(ctx context.Context, class, key string, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	codec := s.codecForLocked(class)
	if codec == nil {
		s.stats.PutSkips++
		return
	}
	var buf bytes.Buffer
	if err := codec.Encode(&buf, val); err != nil {
		s.stats.PutErrors++
		s.logfSafe("store: encoding %s/%s: %v", class, key, err)
		return
	}
	payload := buf.Bytes()
	crc := crc32.ChecksumIEEE(payload)

	fault := ""
	if fi := pipeline.InjectorFrom(ctx); fi != nil {
		fault = fi.DiskFault(class, key)
	}
	if fault == pipeline.DiskENOSPC {
		s.stats.PutErrors++
		s.logfSafe("store: writing %s/%s: %v (injected)", class, key, syscall.ENOSPC)
		return
	}
	if fault == pipeline.DiskChecksumFlip && len(payload) > 0 {
		// Flip a payload bit after the checksum was computed: the entry
		// lands durably but silently corrupt, the shape Get's checksum
		// verification exists to catch.
		payload = append([]byte(nil), payload...)
		payload[len(payload)/2] ^= 0x10
	}
	writeLen := len(payload)
	if fault == pipeline.DiskShortWrite {
		// Write only half the payload but still rename: the torn-entry
		// shape a killed writer (or a power cut beating the fsync)
		// leaves under the final name.
		writeLen /= 2
	}

	var header bytes.Buffer
	fmt.Fprintf(&header, "%s\nclass=%s\nkey=%s\nlen=%d\ncrc32=%08x\n---\n",
		formatLine, url.QueryEscape(class), url.QueryEscape(key), len(payload), crc)

	name := entryName(class, key)
	size, err := writeAtomic(s.objDir, name, header.Bytes(), payload[:writeLen])
	if err != nil {
		s.stats.PutErrors++
		s.logfSafe("store: writing %s/%s: %v", class, key, err)
		return
	}
	s.stats.Puts++
	if el, ok := s.ent[name]; ok {
		info := el.Value.(*entryInfo)
		s.bytes += size - info.size
		info.size = size
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entryInfo{name: name, size: size})
		s.ent[name] = el
		s.bytes += size
	}
	s.evictLocked(s.ent[name])
}

// writeAtomic writes header+payload to a temp file in dir, fsyncs, and
// renames it to name. Returns the entry's on-disk size.
func writeAtomic(dir, name string, header, payload []byte) (int64, error) {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	cleanup := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if _, err := f.Write(header); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return int64(len(header) + len(payload)), nil
}

// evictLocked removes least-recently-used entries until the store fits
// its byte budget. keep (the entry just written, if any) is exempt: a
// single oversized artifact may briefly exceed the budget rather than
// evict itself into a pointless recompute loop.
func (s *Store) evictLocked(keep *list.Element) {
	if s.maxB <= 0 {
		return
	}
	for s.bytes > s.maxB {
		el := s.lru.Back()
		if el == nil || el == keep {
			return
		}
		info := el.Value.(*entryInfo)
		os.Remove(filepath.Join(s.objDir, info.name))
		s.lru.Remove(el)
		delete(s.ent, info.name)
		s.bytes -= info.size
		s.stats.Evicted++
	}
}

// quarantineLocked moves a corrupt entry into quarantine/ (keeping the
// bytes for post-mortem) and drops it from the accounting, so the next
// Put writes a fresh entry in its place.
func (s *Store) quarantineLocked(el *list.Element, class, key string, cause error) {
	info := el.Value.(*entryInfo)
	s.qseq++
	dst := filepath.Join(s.qDir, fmt.Sprintf("%s.q%d", info.name, s.qseq))
	src := filepath.Join(s.objDir, info.name)
	if err := os.Rename(src, dst); err != nil {
		// Even the rename failing must not fail the request; removing
		// the corrupt entry is the fallback.
		os.Remove(src)
		dst = "(removed: " + err.Error() + ")"
	}
	s.lru.Remove(el)
	delete(s.ent, info.name)
	s.bytes -= info.size
	s.stats.Quarantined++
	s.logfSafe("store: quarantined corrupt entry %s/%s -> %s: %v", class, key, dst, cause)
}

// QuarantineLen returns the number of quarantined files on disk.
func (s *Store) QuarantineLen() int {
	des, err := os.ReadDir(s.qDir)
	if err != nil {
		return 0
	}
	return len(des)
}

func (s *Store) logfSafe(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

package flow

// This file defines the staged form of the HLPower pipeline: seven
// typed pipeline.Stage units (schedule, regbind, bind, datapath, map,
// sim, power) with explicit cache keys, composed by runPipeline. Keys
// chain: every stage's key combines the upstream artifact's fingerprint
// with exactly the configuration fields that stage reads, so a Session
// sharing one pipeline.Cache across its sweep recomputes only what a
// configuration point actually changes — every binder shares one
// schedule/regbind computation per benchmark, an alpha/beta ablation
// shares everything up to binding, and a delay-model or PreOptimize
// variant shares everything up to mapping. The bind stage's output
// fingerprint is content-addressed (a hash of the binding itself, not
// of the binder parameters), so sweep points whose bindings coincide
// share the whole back end too.
//
// Cached artifacts are shared across runs and must never be mutated
// downstream; passes that rewrite a binding (ports.OptimizePorts) run
// inside the producing stage so the cache only ever holds final
// artifacts.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/logic"
	"repro/internal/lopass"
	"repro/internal/mapper"
	"repro/internal/modsel"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Stage names, in pipeline order. Exported indirectly through
// Session.StageStats keys and trace spans.
const (
	StageSchedule = "schedule"
	StageRegbind  = "regbind"
	StageBind     = "bind"
	StageDatapath = "datapath"
	StageMap      = "map"
	StageSim      = "sim"
	StagePower    = "power"
)

// StageNames lists the pipeline stages in execution order.
var StageNames = []string{StageSchedule, StageRegbind, StageBind, StageDatapath, StageMap, StageSim, StagePower}

// ---------------------------------------------------------------------
// Fingerprints.

// profileKey fingerprints the workload-profile fields the schedule stage
// depends on (PaperEdges is informational and excluded).
func profileKey(p workload.Profile) string {
	return pipeline.NewHasher().
		Str(p.Name).Int(p.PIs).Int(p.POs).Int(p.Adds).Int(p.Mults).
		Int(p.RC.Add).Int(p.RC.Mult).Int(p.Cycle).Int64(p.Seed).
		Sum()
}

// contentFP fingerprints a scheduled graph by content, so externally
// scheduled graphs (RunScheduled) share downstream artifacts with
// profile-generated ones when they coincide.
func contentFP(g *cdfg.Graph, s *cdfg.Schedule) string {
	h := pipeline.NewHasher()
	h.Str(g.Name).Int(len(g.Nodes))
	for _, n := range g.Nodes {
		h.Int(n.ID).Int(int(n.Kind)).Str(n.Name).Ints(n.Args)
	}
	h.Ints(g.Inputs).Ints(g.Outputs)
	h.Ints(s.Step).Int(s.Len).Int(s.Lib.AddLatency).Int(s.Lib.MultLatency)
	return h.Sum()
}

// tableFP fingerprints an SA table by the values that determine its
// contents (width, estimator, target architecture, embedded mapper
// options). Table entries are deterministic in these, so equal
// fingerprints mean interchangeable tables — the contract that lets
// sessions share binds across identically configured table instances.
// (A table loaded from disk is assumed to hold its estimator's values,
// the same assumption satable itself documents; the arch stamp in its
// snapshot header backs the arch component.) The fingerprint is
// satable's own (Table.Fingerprint), so the stage cache keys and the
// durable store's sa@<fp> class namespace can never drift apart.
func tableFP(t *satable.Table) string {
	if t == nil {
		return "none"
	}
	return t.Fingerprint()
}

func mapOptFPInto(h *pipeline.Hasher, o mapper.Options) *pipeline.Hasher {
	return h.Int(o.K).Int(o.Keep).Int(int(o.Mode)).
		F64(o.Sources.InputP).F64(o.Sources.InputS).
		F64(o.Sources.LatchP).F64(o.Sources.LatchS).
		Int(int(o.MacroReuse)).Int(o.MacroMinGates)
}

// modselFP fingerprints a resolved module-selection request (nil =
// baseline resource library).
func modselFP(o *modsel.Options) string {
	if o == nil {
		return "none"
	}
	h := pipeline.NewHasher().Int(o.Width).Int(o.MaxDepth).F64(o.Margin)
	return mapOptFPInto(h, o.MapOpt).Sum()
}

// resFP fingerprints a binding result by content. Combined with the
// upstream fingerprint it addresses every downstream artifact: two
// sweep points that bind identically share datapath, mapping,
// simulation, and power analysis.
func resFP(res *binding.Result) string {
	h := pipeline.NewHasher()
	h.Int(len(res.FUs))
	for _, fu := range res.FUs {
		h.Int(fu.ID).Str(string(fu.Kind)).Ints(fu.Ops)
	}
	h.Ints(res.FUOf).Bools(res.SwapPorts)
	return h.Sum()
}

// ---------------------------------------------------------------------
// Artifacts. All artifacts are immutable once produced.

// schedArtifact is the scheduled benchmark graph: the output of the
// workload/schedule stage and the root of every downstream key.
type schedArtifact struct {
	g *cdfg.Graph
	s *cdfg.Schedule
	// fp is the content fingerprint of (g, s).
	fp string
}

func newSchedArtifact(g *cdfg.Graph, s *cdfg.Schedule) *schedArtifact {
	return &schedArtifact{g: g, s: s, fp: contentFP(g, s)}
}

// regbindArtifact is the shared front end both binders start from: the
// random port assignment and the register binding (paper §5.1).
type regbindArtifact struct {
	swap []bool
	rb   *regbind.Binding
	fp   string
}

// bindArtifact is one completed functional-unit binding.
type bindArtifact struct {
	res      *binding.Result
	bindTime time.Duration
	// bench and algo record deterministic provenance for
	// Session.BindStats (algo is the spec label, never the display-only
	// Binder name).
	bench, algo string
	// rep is the engine report with per-iteration stats (HLPower only;
	// nil for the baseline algorithms).
	rep *core.Report
	// fp is content-addressed: hash(upstream fp, binding content).
	fp string
}

// dpArtifact is the elaborated gate-level datapath.
type dpArtifact struct {
	d  *datapath.Design
	fp string
}

// mapArtifact is the 4-LUT technology-mapped implementation.
type mapArtifact struct {
	m  *mapper.Result
	fp string
}

// ---------------------------------------------------------------------
// Binder and datapath specifications.

// bindSpec is the resolved parameter set of one binding-stage
// invocation. It captures the effective values (post defaulting), so the
// cache key reflects what the binder actually runs with; the display
// name of a Binder is deliberately not part of it.
type bindSpec struct {
	// algo selects the algorithm: "hlpower", "lopass", or "lopass-flow".
	algo  string
	alpha float64
	// betaAdd/betaMult are HLPower's effective Eq. 4 scale factors.
	betaAdd, betaMult float64
	mergesPerIter     int
	// table is the SA table (HLPower's estimator, or LOPASS's
	// pre-characterized power model; nil for the structural variants).
	table *satable.Table
	// candidateK/exact select HLPower's edge-store mode (Config.BindK /
	// Config.BindExact). Semantic: sparse mode at a small k can change
	// the binding, so both are part of fp().
	candidateK int
	exact      bool
	// portOpt applies post-binding port re-assignment [2] inside the
	// stage, so the cached artifact is the final, optimized binding.
	portOpt bool
	// workers is the engine's scoring worker-pool size (Config.BindJobs).
	// Deliberately excluded from fp(): bindings are bit-identical at
	// every worker count, so it must not split the cache.
	workers int
}

// specForBinder resolves the mainline Binder configurations (flow.Run,
// Session sweeps) against a config, mirroring the defaulting rules the
// monolithic pipeline applied: zero-valued betas fall back to
// core.DefaultOptions.
func specForBinder(b Binder, cfg Config) bindSpec {
	if !b.UseHLPower {
		return bindSpec{algo: "lopass", table: cfg.BaselineTable, workers: cfg.BindJobs}
	}
	def := core.DefaultOptions(cfg.Table)
	spec := bindSpec{
		algo:          "hlpower",
		alpha:         b.Alpha,
		betaAdd:       def.BetaAdd,
		betaMult:      def.BetaMult,
		mergesPerIter: 1,
		table:         cfg.Table,
		candidateK:    cfg.BindK,
		exact:         cfg.BindExact,
		workers:       cfg.BindJobs,
	}
	if cfg.BetaAdd > 0 {
		spec.betaAdd = cfg.BetaAdd
	}
	if cfg.BetaMult > 0 {
		spec.betaMult = cfg.BetaMult
	}
	return spec
}

func (sp bindSpec) fp() string {
	return pipeline.NewHasher().
		Str(sp.algo).F64(sp.alpha).F64(sp.betaAdd).F64(sp.betaMult).
		Int(sp.mergesPerIter).Str(tableFP(sp.table)).Bool(sp.portOpt).
		Int(sp.candidateK).Bool(sp.exact).
		Sum()
}

// label is the deterministic algorithm tag bind statistics are reported
// under. Binder display names are free-form and excluded from cache
// identity, so they cannot serve as stable provenance.
func (sp bindSpec) label() string {
	if sp.algo == "hlpower" {
		l := fmt.Sprintf("hlpower alpha=%g", sp.alpha)
		if sp.exact {
			l += " exact"
		} else if sp.candidateK > 0 {
			l += fmt.Sprintf(" k=%d", sp.candidateK)
		}
		return l
	}
	return sp.algo
}

// resolveModSel returns the fully resolved module-selection options the
// mainline datapath stage elaborates with (nil = baseline library).
func resolveModSel(cfg Config) *modsel.Options {
	if cfg.ModSel == nil {
		return nil
	}
	opt := *cfg.ModSel
	if opt.Width == 0 {
		opt.Width = cfg.Width
	}
	return &opt
}

// ---------------------------------------------------------------------
// Stage inputs.

type regbindIn struct {
	name     string // benchmark name, for error context
	fe       *schedArtifact
	portSeed int64
}

type bindIn struct {
	name   string
	binder string // display name, for error context only
	fe     *schedArtifact
	rba    *regbindArtifact
	rc     cdfg.ResourceConstraint
	spec   bindSpec
}

type datapathIn struct {
	name   string
	binder string
	fe     *schedArtifact
	rba    *regbindArtifact
	ba     *bindArtifact
	width  int
	modsel *modsel.Options
	// jobs sizes the per-FU parallel elaboration (Config.MapJobs).
	// Non-semantic — the network is byte-identical at every worker
	// count — so the stage Key excludes it.
	jobs int
}

type mapIn struct {
	name   string
	binder string
	dp     *dpArtifact
	preOpt bool
	mapOpt mapper.Options
	// archFP is the target architecture's fingerprint. The mapper
	// itself reads only mapOpt (whose K the arch already owns), but the
	// full fingerprint keys the artifact so every fabric gets its own
	// mapped implementation — the contract that map, sim, and power
	// never share across archs, while schedule/regbind/datapath (which
	// are fabric-blind) still do.
	archFP string
}

type simIn struct {
	name       string
	binder     string
	ma         *mapArtifact
	delay      sim.DelayModel
	delaySeed  int64
	vectors    int
	vectorSeed int64
	// simJobs is the word engine's worker count and simWide its
	// lane-group width per event pass. Both non-semantic (counts are
	// bit-identical at every setting), so simKey excludes them.
	simJobs int
	simWide int
}

type powerIn struct {
	name   string
	binder string
	ma     *mapArtifact
	counts sim.Counts
	simKey string
	model  power.Model
	// jobs sizes the analyzer's chunked node scan (Config.MapJobs).
	// Non-semantic, excluded from the stage Key.
	jobs int
	// proj, when non-nil, applies the arch's FPGA→ASIC gap factors to
	// the analyzed report inside the stage, so the cached artifact is
	// the final (projected) report.
	proj *arch.Projection
}

// simKey derives the simulate stage's cache key; the power stage chains
// on it (the counts are fully determined by it).
func simKey(in simIn) string {
	return pipeline.NewHasher().
		Str(in.ma.fp).Int(int(in.delay)).Int64(in.delaySeed).
		Int(in.vectors).Int64(in.vectorSeed).
		Sum()
}

func powerFP(m power.Model) string {
	return pipeline.NewHasher().
		F64(m.Vdd).F64(m.CLut).F64(m.CReg).F64(m.LUTDelayNs).F64(m.ClockOverheadNs).
		Sum()
}

// projFP fingerprints an optional FPGA→ASIC projection (nil = native
// FPGA report).
func projFP(p *arch.Projection) string {
	if p == nil {
		return "none"
	}
	return pipeline.NewHasher().F64(p.AreaDiv).F64(p.PowerDiv).F64(p.FreqMult).Sum()
}

// ---------------------------------------------------------------------
// The stages.

// stageSchedule generates a benchmark CDFG and schedules it to the
// paper's Table 2 cycle count — the binder-independent root of the
// pipeline, computed once per benchmark per session.
var stageSchedule = pipeline.Stage[workload.Profile, *schedArtifact]{
	Name:  StageSchedule,
	Key:   func(p workload.Profile) string { return profileKey(p) },
	Scope: func(p workload.Profile) pipeline.Scope { return pipeline.Scope{Bench: p.Name} },
	Run: func(_ context.Context, p workload.Profile) (*schedArtifact, error) {
		g := workload.Generate(p)
		s, err := workload.Schedule(p, g)
		if err != nil {
			return nil, fmt.Errorf("flow: %s: %w", p.Name, err)
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("flow: %s: %w", p.Name, err)
		}
		if err := cdfg.ValidateSchedule(g, s, p.RC); err != nil {
			return nil, fmt.Errorf("flow: %s: %w", p.Name, err)
		}
		return newSchedArtifact(g, s), nil
	},
	Size: func(a *schedArtifact) int { return len(a.g.Nodes) },
}

// stageRegbind fixes the random port assignment and binds registers —
// the shared state both binders must agree on (paper §5.1).
var stageRegbind = pipeline.Stage[regbindIn, *regbindArtifact]{
	Name: StageRegbind,
	Key: func(in regbindIn) string {
		return pipeline.NewHasher().Str(in.fe.fp).Int64(in.portSeed).Sum()
	},
	Scope: func(in regbindIn) pipeline.Scope { return pipeline.Scope{Bench: in.name} },
	Run: func(_ context.Context, in regbindIn) (*regbindArtifact, error) {
		swap := binding.RandomPortAssignment(in.fe.g, in.portSeed)
		rb, err := regbind.BindOpt(in.fe.g, in.fe.s, regbind.Options{Swap: swap})
		if err != nil {
			return nil, fmt.Errorf("flow: %s: %w", in.name, err)
		}
		fp := pipeline.NewHasher().Str(in.fe.fp).Int64(in.portSeed).Str("regbind").Sum()
		return &regbindArtifact{swap: swap, rb: rb, fp: fp}, nil
	},
	Size: func(a *regbindArtifact) int { return a.rb.NumRegs },
}

// stageBind runs the selected binding algorithm. The artifact's
// fingerprint hashes the produced binding, not the parameters, so
// parameter points with coinciding bindings share every later stage.
var stageBind = pipeline.Stage[bindIn, *bindArtifact]{
	Name: StageBind,
	Key: func(in bindIn) string {
		return pipeline.NewHasher().
			Str(in.rba.fp).Int(in.rc.Add).Int(in.rc.Mult).Str(in.spec.fp()).
			Sum()
	},
	Scope: func(in bindIn) pipeline.Scope { return pipeline.Scope{Bench: in.name, Binder: in.binder} },
	Run: func(ctx context.Context, in bindIn) (*bindArtifact, error) {
		g, s, rb := in.fe.g, in.fe.s, in.rba.rb
		var res *binding.Result
		var rt time.Duration
		var engRep *core.Report
		switch in.spec.algo {
		case "hlpower":
			opt := core.DefaultOptions(in.spec.table)
			opt.Alpha = in.spec.alpha
			opt.BetaAdd, opt.BetaMult = in.spec.betaAdd, in.spec.betaMult
			opt.MergesPerIteration = in.spec.mergesPerIter
			opt.Swap = in.rba.swap
			opt.Workers = in.spec.workers
			opt.CandidateK = in.spec.candidateK
			opt.Exact = in.spec.exact
			r, rep, err := core.Bind(g, s, rb, in.rc, opt)
			if err != nil {
				return nil, fmt.Errorf("flow: %s/%s: %w", in.name, in.binder, err)
			}
			res, rt, engRep = r, rep.Runtime, rep
			emitIterSpans(ctx, in.name, in.spec.label(), rep)
		case "lopass":
			r, rep, err := lopass.Bind(g, s, rb, in.rc, lopass.Options{Swap: in.rba.swap, Table: in.spec.table, Jobs: in.spec.workers})
			if err != nil {
				return nil, fmt.Errorf("flow: %s/%s: %w", in.name, in.binder, err)
			}
			res, rt = r, rep.Runtime
		case "lopass-flow":
			r, rep, err := lopass.BindFlow(g, s, rb, in.rc, lopass.Options{Swap: in.rba.swap})
			if err != nil {
				return nil, fmt.Errorf("flow: %s/%s: %w", in.name, in.binder, err)
			}
			res, rt = r, rep.Runtime
		default:
			return nil, fmt.Errorf("flow: %s/%s: unknown binding algorithm %q", in.name, in.binder, in.spec.algo)
		}
		if in.spec.portOpt {
			// Mutating pass: runs here, inside the producing stage, so
			// the cached artifact is final (see package comment).
			binding.OptimizePorts(g, rb, res)
		}
		fp := pipeline.NewHasher().Str(in.rba.fp).Str(resFP(res)).Sum()
		return &bindArtifact{
			res: res, bindTime: rt,
			bench: in.name, algo: in.spec.label(), rep: engRep,
			fp: fp,
		}, nil
	},
	Size: func(a *bindArtifact) int { return len(a.res.FUs) },
}

// StageBindIter is the sub-span name the bind stage records once per
// engine merge round. These spans appear in traces only (they are not a
// pipeline stage and carry no cache key of their own).
const StageBindIter = "bind.iter"

// emitIterSpans records one bind.iter span per engine merge round into
// the traces of the executing stage call. Spans ride the compute path,
// so a cached binding never re-emits them.
func emitIterSpans(ctx context.Context, bench, algo string, rep *core.Report) {
	for _, it := range rep.Iters {
		ratio := 0.0
		if total := it.EdgesScored + it.EdgesReused; total > 0 {
			ratio = float64(it.EdgesScored) / float64(total)
		}
		pipeline.AddSpan(ctx, pipeline.Span{
			Stage:      StageBindIter,
			Key:        fmt.Sprintf("%s/%s#%d", bench, algo, it.Iter),
			DurationNs: it.ScoreNs + it.SolveNs,
			Attrs: map[string]float64{
				"iter":         float64(it.Iter),
				"u_nodes":      float64(it.UNodes),
				"v_nodes":      float64(it.VNodes),
				"edges_scored": float64(it.EdgesScored),
				"edges_reused": float64(it.EdgesReused),
				"merges":       float64(it.Merges),
				"invalidation": ratio,
				"score_ns":     float64(it.ScoreNs),
				"solve_ns":     float64(it.SolveNs),
			},
		})
	}
}

// stageDatapath selects module architectures (optional) and elaborates
// the gate-level datapath.
var stageDatapath = pipeline.Stage[datapathIn, *dpArtifact]{
	Name: StageDatapath,
	Key: func(in datapathIn) string {
		return pipeline.NewHasher().
			Str(in.ba.fp).Int(in.width).Str(modselFP(in.modsel)).
			Sum()
	},
	Scope: func(in datapathIn) pipeline.Scope { return pipeline.Scope{Bench: in.name, Binder: in.binder} },
	Run: func(_ context.Context, in datapathIn) (*dpArtifact, error) {
		var arch *datapath.Arch
		if in.modsel != nil {
			sel, err := modsel.NewSelector(*in.modsel).Select(in.fe.g, in.rba.rb, in.ba.res)
			if err != nil {
				return nil, fmt.Errorf("flow: %s/%s: %w", in.name, in.binder, err)
			}
			adder, mult := sel.Arch()
			arch = &datapath.Arch{Adder: adder, Mult: mult}
		}
		d, err := datapath.ElaborateArchJobs(in.fe.g, in.fe.s, in.rba.rb, in.ba.res, in.width, arch, in.jobs)
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", in.name, in.binder, err)
		}
		fp := pipeline.NewHasher().Str(in.ba.fp).Int(in.width).Str(modselFP(in.modsel)).Str("dp").Sum()
		return &dpArtifact{d: d, fp: fp}, nil
	},
	Size: func(a *dpArtifact) int { return len(a.d.Net.Nodes) },
}

// stageMap optionally pre-optimizes the netlist and runs the
// glitch-aware K-LUT technology mapper for the configured architecture.
var stageMap = pipeline.Stage[mapIn, *mapArtifact]{
	Name: StageMap,
	Key: func(in mapIn) string {
		h := pipeline.NewHasher().Str(in.dp.fp).Bool(in.preOpt).Str(in.archFP)
		return mapOptFPInto(h, in.mapOpt).Sum()
	},
	Scope: func(in mapIn) pipeline.Scope { return pipeline.Scope{Bench: in.name, Binder: in.binder} },
	Run: func(_ context.Context, in mapIn) (*mapArtifact, error) {
		toMap := in.dp.d.Net
		if in.preOpt {
			toMap, _ = logic.Optimize(toMap)
		}
		m, err := mapper.Map(toMap, in.mapOpt)
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", in.name, in.binder, err)
		}
		h := pipeline.NewHasher().Str(in.dp.fp).Bool(in.preOpt).Str(in.archFP).Str("map")
		fp := mapOptFPInto(h, in.mapOpt).Sum()
		return &mapArtifact{m: m, fp: fp}, nil
	},
	Size: func(a *mapArtifact) int { return a.m.LUTs },
}

// stageSim runs the random-vector delay simulation and counts
// transitions.
var stageSim = pipeline.Stage[simIn, sim.Counts]{
	Name:  StageSim,
	Key:   simKey,
	Scope: func(in simIn) pipeline.Scope { return pipeline.Scope{Bench: in.name, Binder: in.binder} },
	Run: func(ctx context.Context, in simIn) (sim.Counts, error) {
		// The word-parallel engine is bit-identical to the scalar
		// Simulator in every count (see internal/sim/word.go and its
		// equivalence tests), so the measurement flow runs it; the
		// scalar engine remains the reference path for VCD dumps and
		// oracle tests. RunRandomCtx checks ctx inside the run, so a
		// sweep under -timeout or Ctrl-C never waits out a long
		// vector run.
		sr, err := sim.NewWordWithDelays(in.ma.m.Mapped, in.delay, in.delaySeed)
		if err != nil {
			return sim.Counts{}, fmt.Errorf("flow: %s/%s: %w", in.name, in.binder, err)
		}
		if in.simWide != 0 {
			sr.SetWide(in.simWide)
		}
		return sr.RunRandomCtx(ctx, in.vectors, in.vectorSeed, in.simJobs)
	},
	Size: func(c sim.Counts) int { return int(c.Gate + c.Latch) },
}

// stagePower produces the PowerPlay-equivalent report, applying the
// architecture's FPGA→ASIC projection (if any) so the cached report is
// final.
var stagePower = pipeline.Stage[powerIn, power.Report]{
	Name: StagePower,
	Key: func(in powerIn) string {
		return pipeline.NewHasher().Str(in.simKey).Str(powerFP(in.model)).Str(projFP(in.proj)).Sum()
	},
	Scope: func(in powerIn) pipeline.Scope { return pipeline.Scope{Bench: in.name, Binder: in.binder} },
	Run: func(_ context.Context, in powerIn) (power.Report, error) {
		rep := in.model.AnalyzeJobs(in.ma.m.Mapped, in.counts, in.jobs)
		if in.proj != nil {
			rep = power.Project(*in.proj, rep)
		}
		return rep, nil
	},
}

// resolveJobs maps the 0 = GOMAXPROCS convention of the Config worker
// knobs to a concrete count.
func resolveJobs(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ---------------------------------------------------------------------
// Composition.

// runBackEnd executes the post-binding stages (datapath, map, sim,
// power) for one bound design. The ablation study and the mainline
// pipeline share it.
func runBackEnd(ctx context.Context, cache *pipeline.Cache, cfg Config, fe *schedArtifact, rba *regbindArtifact, ba *bindArtifact, name, binderName string, ms *modsel.Options, trs ...*pipeline.Trace) (*dpArtifact, *mapArtifact, sim.Counts, power.Report, error) {
	jobs := resolveJobs(cfg.MapJobs)
	dp, err := stageDatapath.Exec(ctx, cache, datapathIn{
		name: name, binder: binderName, fe: fe, rba: rba, ba: ba,
		width: cfg.Width, modsel: ms, jobs: jobs,
	}, trs...)
	if err != nil {
		return nil, nil, sim.Counts{}, power.Report{}, err
	}
	// The mapper's worker count and the macro-cover memo ride along in
	// the options but are excluded from mapOptFPInto, so they never split
	// the stage cache. The memo is backed by the session's stage cache
	// under a per-arch class ("macro@<archFP>"): covers persist across
	// runs and, with an attached store, across processes.
	mopt := cfg.MapOpt
	mopt.Jobs = jobs
	if cache != nil {
		mopt.Macros = mapper.NewMacroCache(cache, "macro@"+cfg.Arch.Fingerprint())
	}
	ma, err := stageMap.Exec(ctx, cache, mapIn{
		name: name, binder: binderName, dp: dp,
		preOpt: cfg.PreOptimize, mapOpt: mopt,
		archFP: cfg.Arch.Fingerprint(),
	}, trs...)
	if err != nil {
		return nil, nil, sim.Counts{}, power.Report{}, err
	}
	sin := simIn{
		name: name, binder: binderName, ma: ma,
		delay: cfg.Delay, delaySeed: cfg.DelaySeed,
		vectors: cfg.Vectors, vectorSeed: cfg.VectorSeed,
		simJobs: cfg.SimJobs, simWide: cfg.SimWide,
	}
	counts, err := stageSim.Exec(ctx, cache, sin, trs...)
	if err != nil {
		return nil, nil, sim.Counts{}, power.Report{}, err
	}
	rep, err := stagePower.Exec(ctx, cache, powerIn{
		name: name, binder: binderName,
		ma: ma, counts: counts, simKey: simKey(sin), model: cfg.Power,
		proj: cfg.Arch.Projection, jobs: jobs,
	}, trs...)
	if err != nil {
		return nil, nil, sim.Counts{}, power.Report{}, err
	}
	return dp, ma, counts, rep, nil
}

// runPipeline executes the staged pipeline from a scheduled front end
// through the measurement back end, assembling the full Result record.
func runPipeline(ctx context.Context, cache *pipeline.Cache, cfg Config, fe *schedArtifact, name string, rc cdfg.ResourceConstraint, b Binder, trs ...*pipeline.Trace) (*Result, error) {
	rba, err := stageRegbind.Exec(ctx, cache, regbindIn{name: name, fe: fe, portSeed: cfg.PortSeed}, trs...)
	if err != nil {
		return nil, err
	}
	ba, err := stageBind.Exec(ctx, cache, bindIn{
		name: name, binder: b.Name, fe: fe, rba: rba, rc: rc,
		spec: specForBinder(b, cfg),
	}, trs...)
	if err != nil {
		return nil, err
	}
	dp, ma, counts, rep, err := runBackEnd(ctx, cache, cfg, fe, rba, ba, name, b.Name, resolveModSel(cfg), trs...)
	if err != nil {
		return nil, err
	}
	return &Result{
		Bench:      name,
		Binder:     b,
		Schedule:   fe.s,
		NumRegs:    rba.rb.NumRegs,
		BindTime:   ba.bindTime,
		BindReport: ba.rep,
		FUMux:      binding.ComputeMuxStats(fe.g, rba.rb, ba.res),
		DPMux:      dp.d.Muxes,
		LUTs:       ma.m.LUTs,
		Depth:      ma.m.Depth,
		EstSA:      ma.m.EstSA,
		Counts:     counts,
		Power:      rep,
	}, nil
}

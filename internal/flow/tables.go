package flow

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/workload"
)

// Table1 prints the benchmark profiles (paper Table 1) from the actual
// generated graphs, with the paper's edge counts alongside for
// reference.
func Table1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tPIs\tPOs\tAdds\tMults\tEdges\tEdges(paper)")
	for _, p := range workload.Benchmarks {
		g := workload.Generate(p)
		st := g.Stats()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p.Name, st.PIs, st.POs, st.Adds, st.Mults, st.Edges, p.PaperEdges)
	}
	return tw.Flush()
}

// Table2 prints resource constraints, schedule length, register count,
// and HLPower runtime (paper Table 2).
func Table2(ctx context.Context, w io.Writer, se *Session) error {
	if err := se.RunAll(ctx, BinderHLPower05); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tAdd\tMult\tCycle\tReg\tHLPower Runtime")
	for _, p := range se.Benchmarks {
		r, err := se.Run(ctx, p, BinderHLPower05)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%v\n",
			p.Name, p.RC.Add, p.RC.Mult, r.Schedule.Len, r.NumRegs, r.BindTime.Round(1000))
	}
	return tw.Flush()
}

// Table3Row is one benchmark's LOPASS/HLPower comparison (paper Table 3).
type Table3Row struct {
	Bench              string
	PowerL, PowerH     float64 // dynamic power, mW
	ClkL, ClkH         float64 // clock period, ns
	LUTsL, LUTsH       int
	LargestL, LargestH int
	MuxLenL, MuxLenH   int
	PowerPct, ClkPct   float64
	LUTsPct            float64
	LargestDelta       int
	MuxLenPct          float64
}

// Table3Data computes the Table 3 comparison for every benchmark. The
// underlying runs execute on Session.Jobs workers; the rows are
// assembled from the warm cache in benchmark order, so the output is
// independent of the worker count.
func Table3Data(ctx context.Context, se *Session) ([]Table3Row, error) {
	if err := se.RunAll(ctx, BinderLOPASS, BinderHLPower05); err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, p := range se.Benchmarks {
		lo, err := se.Run(ctx, p, BinderLOPASS)
		if err != nil {
			return nil, err
		}
		hi, err := se.Run(ctx, p, BinderHLPower05)
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Bench:    p.Name,
			PowerL:   lo.Power.DynamicPowerMW,
			PowerH:   hi.Power.DynamicPowerMW,
			ClkL:     lo.Power.ClockPeriodNs,
			ClkH:     hi.Power.ClockPeriodNs,
			LUTsL:    lo.LUTs,
			LUTsH:    hi.LUTs,
			LargestL: lo.FUMux.Largest,
			LargestH: hi.FUMux.Largest,
			MuxLenL:  lo.FUMux.Length,
			MuxLenH:  hi.FUMux.Length,
		}
		row.PowerPct = pct(row.PowerL, row.PowerH)
		row.ClkPct = pct(row.ClkL, row.ClkH)
		row.LUTsPct = pct(float64(row.LUTsL), float64(row.LUTsH))
		row.LargestDelta = row.LargestH - row.LargestL
		row.MuxLenPct = pct(float64(row.MuxLenL), float64(row.MuxLenH))
		rows = append(rows, row)
	}
	return rows, nil
}

// pct returns the percentage change from base to new (negative = drop).
func pct(base, val float64) float64 {
	if base == 0 {
		return 0
	}
	return (val - base) / base * 100
}

// Table3 prints the power/area comparison (paper Table 3).
func Table3(ctx context.Context, w io.Writer, se *Session) error {
	rows, err := Table3Data(ctx, se)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tDynPow(mW) L/H\tClk(ns) L/H\tLUTs L/H\tLrgstMUX L/H\tMUXLen L/H\tPow%\tClk%\tLUTs%\tLrgst\tMUXLen%")
	var sp, sc, sl, sm float64
	var sd int
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f/%.1f\t%.1f/%.1f\t%d/%d\t%d/%d\t%d/%d\t%+.2f\t%+.2f\t%+.2f\t%+d\t%+.1f\n",
			r.Bench, r.PowerL, r.PowerH, r.ClkL, r.ClkH, r.LUTsL, r.LUTsH,
			r.LargestL, r.LargestH, r.MuxLenL, r.MuxLenH,
			r.PowerPct, r.ClkPct, r.LUTsPct, r.LargestDelta, r.MuxLenPct)
		sp += r.PowerPct
		sc += r.ClkPct
		sl += r.LUTsPct
		sd += r.LargestDelta
		sm += r.MuxLenPct
	}
	n := float64(len(rows))
	fmt.Fprintf(tw, "Average\t\t\t\t\t\t%+.2f\t%+.2f\t%+.2f\t%+.1f\t%+.1f\n",
		sp/n, sc/n, sl/n, float64(sd)/n, sm/n)
	return tw.Flush()
}

// Table4Row is one benchmark's muxDiff statistics (paper Table 4).
type Table4Row struct {
	Bench         string
	MeanL, VarL   float64 // LOPASS
	Mean1, Var1   float64 // HLPower alpha = 1
	Mean05, Var05 float64 // HLPower alpha = 0.5
	NumMuxes      int
}

// Table4Data computes muxDiff mean/variance for the three binders,
// fanning the runs out over Session.Jobs workers.
func Table4Data(ctx context.Context, se *Session) ([]Table4Row, error) {
	if err := se.RunAll(ctx); err != nil {
		return nil, err
	}
	var rows []Table4Row
	for _, p := range se.Benchmarks {
		lo, err := se.Run(ctx, p, BinderLOPASS)
		if err != nil {
			return nil, err
		}
		h1, err := se.Run(ctx, p, BinderHLPower1)
		if err != nil {
			return nil, err
		}
		h05, err := se.Run(ctx, p, BinderHLPower05)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Bench:    p.Name,
			MeanL:    lo.FUMux.DiffMean,
			VarL:     lo.FUMux.DiffVar,
			Mean1:    h1.FUMux.DiffMean,
			Var1:     h1.FUMux.DiffVar,
			Mean05:   h05.FUMux.DiffMean,
			Var05:    h05.FUMux.DiffVar,
			NumMuxes: h05.FUMux.NumFUs,
		})
	}
	return rows, nil
}

// Table4 prints the muxDiff statistics (paper Table 4).
func Table4(ctx context.Context, w io.Writer, se *Session) error {
	rows, err := Table4Data(ctx, se)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tLOPASS mean/var\ta=1 mean/var\ta=0.5 mean/var\t#muxes")
	var ml, vl, m1, v1, m5, v5 float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f/%.1f\t%.1f/%.1f\t%.1f/%.1f\t%d\n",
			r.Bench, r.MeanL, r.VarL, r.Mean1, r.Var1, r.Mean05, r.Var05, r.NumMuxes)
		ml += r.MeanL
		vl += r.VarL
		m1 += r.Mean1
		v1 += r.Var1
		m5 += r.Mean05
		v5 += r.Var05
	}
	n := float64(len(rows))
	fmt.Fprintf(tw, "average\t%.1f/%.1f\t%.1f/%.1f\t%.1f/%.1f\t\n", ml/n, vl/n, m1/n, v1/n, m5/n, v5/n)
	return tw.Flush()
}

// Figure3Row is one benchmark's average toggle rates (paper Figure 3).
type Figure3Row struct {
	Bench                string
	RateL, Rate1, Rate05 float64 // millions of transitions/sec
}

// Figure3Data computes the toggle-rate series of Figure 3, fanning the
// runs out over Session.Jobs workers.
func Figure3Data(ctx context.Context, se *Session) ([]Figure3Row, error) {
	if err := se.RunAll(ctx); err != nil {
		return nil, err
	}
	var rows []Figure3Row
	for _, p := range se.Benchmarks {
		lo, err := se.Run(ctx, p, BinderLOPASS)
		if err != nil {
			return nil, err
		}
		h1, err := se.Run(ctx, p, BinderHLPower1)
		if err != nil {
			return nil, err
		}
		h05, err := se.Run(ctx, p, BinderHLPower05)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure3Row{
			Bench:  p.Name,
			RateL:  lo.Power.AvgToggleRateMHz,
			Rate1:  h1.Power.AvgToggleRateMHz,
			Rate05: h05.Power.AvgToggleRateMHz,
		})
	}
	return rows, nil
}

// Figure3 prints the average toggle-rate comparison with an ASCII bar
// chart (paper Figure 3).
func Figure3(ctx context.Context, w io.Writer, se *Session) error {
	rows, err := Figure3Data(ctx, se)
	if err != nil {
		return err
	}
	max := 0.0
	for _, r := range rows {
		for _, v := range []float64{r.RateL, r.Rate1, r.Rate05} {
			if v > max {
				max = v
			}
		}
	}
	bar := func(v float64) string {
		n := 0
		if max > 0 {
			n = int(v / max * 40)
		}
		out := make([]byte, n)
		for i := range out {
			out[i] = '#'
		}
		return string(out)
	}
	var dec1, dec05 float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s LOPASS  %8.2f M/s %s\n", r.Bench, r.RateL, bar(r.RateL))
		fmt.Fprintf(w, "%-8s a=1.0   %8.2f M/s %s\n", "", r.Rate1, bar(r.Rate1))
		fmt.Fprintf(w, "%-8s a=0.5   %8.2f M/s %s\n", "", r.Rate05, bar(r.Rate05))
		dec1 += pct(r.RateL, r.Rate1)
		dec05 += pct(r.RateL, r.Rate05)
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "\nAverage toggle-rate change: a=1.0 %+.1f%%, a=0.5 %+.1f%%\n", dec1/n, dec05/n)
	return nil
}

// ValidateAgainstPaper checks the headline result shapes of the paper
// hold for the session's measurements: HLPower alpha=0.5 beats LOPASS on
// average power and toggle rate, muxDiff drops from LOPASS to alpha=0.5,
// and the clock-period change stays small. It returns a list of
// deviations (empty = all shapes hold).
func ValidateAgainstPaper(ctx context.Context, se *Session) ([]string, error) {
	var devs []string
	t3, err := Table3Data(ctx, se)
	if err != nil {
		return nil, err
	}
	var powAvg, clkAvg, lutAvg float64
	for _, r := range t3 {
		powAvg += r.PowerPct
		clkAvg += r.ClkPct
		lutAvg += r.LUTsPct
	}
	n := float64(len(t3))
	powAvg, clkAvg, lutAvg = powAvg/n, clkAvg/n, lutAvg/n
	if powAvg >= 0 {
		devs = append(devs, fmt.Sprintf("average dynamic power did not drop (%+.2f%%)", powAvg))
	}
	if clkAvg > 10 {
		devs = append(devs, fmt.Sprintf("clock period regression too large (%+.2f%%)", clkAvg))
	}
	if lutAvg >= 5 {
		devs = append(devs, fmt.Sprintf("LUT area grew (%+.2f%%)", lutAvg))
	}
	t4, err := Table4Data(ctx, se)
	if err != nil {
		return nil, err
	}
	var ml, m05 float64
	for _, r := range t4 {
		ml += r.MeanL
		m05 += r.Mean05
	}
	// Small slack: per-benchmark muxDiff means are quantized to a few
	// discrete values, so tiny subsets can tie or flip by one notch.
	if m05 > ml+0.25*n {
		devs = append(devs, fmt.Sprintf("muxDiff mean did not improve (LOPASS %.2f vs a=0.5 %.2f)", ml/n, m05/n))
	}
	f3, err := Figure3Data(ctx, se)
	if err != nil {
		return nil, err
	}
	var tr float64
	for _, r := range f3 {
		tr += pct(r.RateL, r.Rate05)
	}
	if tr/n >= 0 {
		devs = append(devs, fmt.Sprintf("average toggle rate did not drop (%+.2f%%)", tr/n))
	}
	return devs, nil
}

package flow

import (
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/modsel"
	"repro/internal/workload"
)

func TestAblationRendersAllVariants(t *testing.T) {
	se := NewSession(testConfig())
	pr, _ := workload.ByName("pr")
	se.Benchmarks = []workload.Profile{pr}
	var sb strings.Builder
	if err := Ablation(bgc, &sb, se); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"LOPASS", "LOPASS-flow", "HLPower-glitch", "HLPower-zerodelay", "HLPower-najm", "HLPower+modsel", "HLPower+portopt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithModSel(t *testing.T) {
	cfg := testConfig()
	ms := modsel.DefaultOptions()
	ms.Width = cfg.Width
	cfg.ModSel = &ms
	g := workload.FIR(6)
	r, err := RunGraph(g, "fir6", cdfg.ResourceConstraint{Add: 2, Mult: 2}, BinderHLPower05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs <= 0 || r.Power.DynamicPowerMW <= 0 {
		t.Fatal("modsel run produced no measurements")
	}
}

func TestRunScheduledMultiCycle(t *testing.T) {
	cfg := testConfig()
	g := workload.FIR(6)
	rc := cdfg.ResourceConstraint{Add: 2, Mult: 2}
	s, err := cdfg.ListScheduleLat(g, rc, cdfg.Library{AddLatency: 1, MultLatency: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunScheduled(g, "fir6mc", s, rc, BinderHLPower05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule.Len != s.Len {
		t.Fatal("schedule not carried through")
	}
	if r.Power.DynamicPowerMW <= 0 {
		t.Fatal("no power measured")
	}
}

package flow

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// TestBackEndWorkerInvariance runs every paper benchmark through the
// full back end (parallel elaboration, level-parallel mapping, chunked
// power scan) at several MapJobs settings and demands bit-identical
// measurements: LUTs, depth, the float SA estimate to the bit, the raw
// transition counts, and the final power report. This is the contract
// that lets MapJobs stay out of every stage cache key.
func TestBackEndWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	base := testConfig()
	base.Vectors = 50

	run := func(jobs int) map[string]*Result {
		cfg := base
		cfg.MapJobs = jobs
		se := NewSession(cfg)
		out := make(map[string]*Result, len(workload.Benchmarks))
		for _, p := range workload.Benchmarks {
			r, err := se.Run(bgc, p, BinderLOPASS)
			if err != nil {
				t.Fatalf("jobs=%d %s: %v", jobs, p.Name, err)
			}
			out[p.Name] = r
		}
		return out
	}

	ref := run(1)
	for _, jobs := range []int{3, 8} {
		got := run(jobs)
		for name, want := range ref {
			g := got[name]
			if g.LUTs != want.LUTs || g.Depth != want.Depth {
				t.Errorf("jobs=%d %s: LUTs/depth %d/%d, want %d/%d", jobs, name, g.LUTs, g.Depth, want.LUTs, want.Depth)
			}
			if math.Float64bits(g.EstSA) != math.Float64bits(want.EstSA) {
				t.Errorf("jobs=%d %s: EstSA %v != %v", jobs, name, g.EstSA, want.EstSA)
			}
			if g.Counts != want.Counts {
				t.Errorf("jobs=%d %s: counts %+v != %+v", jobs, name, g.Counts, want.Counts)
			}
			if g.Power != want.Power {
				t.Errorf("jobs=%d %s: power %+v != %+v", jobs, name, g.Power, want.Power)
			}
			if g.DPMux != want.DPMux {
				t.Errorf("jobs=%d %s: mux report %+v != %+v", jobs, name, g.DPMux, want.DPMux)
			}
		}
	}
}

// TestStageWallclockAggregates checks the session's cumulative
// per-stage timing rollup: every pipeline stage that ran appears, in
// StageNames order, with counts and wall-clock consistent with the
// recorded spans.
func TestStageWallclockAggregates(t *testing.T) {
	se := smallSession()
	p := se.Benchmarks[0]
	if _, err := se.Run(bgc, p, BinderLOPASS); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Run(bgc, p, BinderLOPASS); err != nil { // warm: run-cache hit, no new spans needed
		t.Fatal(err)
	}
	ws := se.StageWallclock()
	if len(ws) == 0 {
		t.Fatal("no stage wallclock rows")
	}
	pos := make(map[string]int, len(ws))
	for i, w := range ws {
		pos[w.Stage] = i
		if w.Count < 1 {
			t.Fatalf("%s: count %d", w.Stage, w.Count)
		}
		if w.TotalNs < w.ComputeNs {
			t.Fatalf("%s: total %d < compute %d", w.Stage, w.TotalNs, w.ComputeNs)
		}
		if w.CacheHits > w.Count {
			t.Fatalf("%s: hits %d > count %d", w.Stage, w.CacheHits, w.Count)
		}
	}
	for _, stage := range []string{StageSchedule, StageRegbind, StageBind, StageDatapath, StageMap, StageSim, StagePower} {
		if _, ok := pos[stage]; !ok {
			t.Fatalf("stage %s missing from wallclock rollup", stage)
		}
	}
	if pos[StageSchedule] > pos[StageMap] || pos[StageMap] > pos[StagePower] {
		t.Fatal("stages not in pipeline order")
	}
}

package flow

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestGoldenPr pins the vector-count-independent measurements of the pr
// benchmark under the default configuration — the regression guard for
// the numbers recorded in EXPERIMENTS.md (Table 3 row "pr"). A failure
// means some pipeline stage changed behaviour; regenerate the
// experiment record if the change is intentional.
func TestGoldenPr(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	cfg := DefaultConfig()
	cfg.Vectors = 10 // LUT/mux metrics do not depend on the vector count
	se := NewSession(cfg)
	p, _ := workload.ByName("pr")

	lo, err := se.Run(bgc, p, BinderLOPASS)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := se.Run(bgc, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}

	type pin struct {
		luts, largest, muxlen, regs, csteps int
	}
	wantLo := pin{luts: 1114, largest: 10, muxlen: 61, regs: 20, csteps: 16}
	wantHi := pin{luts: 1061, largest: 9, muxlen: 54, regs: 20, csteps: 16}
	check := func(name string, r *Result, want pin) {
		got := pin{
			luts:    r.LUTs,
			largest: r.FUMux.Largest,
			muxlen:  r.FUMux.Length,
			regs:    r.NumRegs,
			csteps:  r.Schedule.Len,
		}
		if got != want {
			t.Errorf("%s: %+v, want %+v — pipeline behaviour changed; update EXPERIMENTS.md and this pin", name, got, want)
		}
	}
	check("LOPASS", lo, wantLo)
	check("HLPower", hi, wantHi)

	// Transition counts (and therefore the power report, a pure function
	// of them) are pinned too: the measurement flow runs the word-
	// parallel engine, and these are the numbers the scalar reference
	// produced before the switch — the engines must stay bit-identical.
	wantLoCounts := sim.Counts{Gate: 1018, GateFunctional: 474, Latch: 113, Cycles: 10}
	wantHiCounts := sim.Counts{Gate: 1021, GateFunctional: 509, Latch: 102, Cycles: 10}
	if lo.Counts != wantLoCounts {
		t.Errorf("LOPASS counts %+v, want %+v", lo.Counts, wantLoCounts)
	}
	if hi.Counts != wantHiCounts {
		t.Errorf("HLPower counts %+v, want %+v", hi.Counts, wantHiCounts)
	}
}

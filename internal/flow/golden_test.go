package flow

import (
	"testing"

	"repro/internal/workload"
)

// TestGoldenPr pins the vector-count-independent measurements of the pr
// benchmark under the default configuration — the regression guard for
// the numbers recorded in EXPERIMENTS.md (Table 3 row "pr"). A failure
// means some pipeline stage changed behaviour; regenerate the
// experiment record if the change is intentional.
func TestGoldenPr(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	cfg := DefaultConfig()
	cfg.Vectors = 10 // LUT/mux metrics do not depend on the vector count
	se := NewSession(cfg)
	p, _ := workload.ByName("pr")

	lo, err := se.Run(bgc, p, BinderLOPASS)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := se.Run(bgc, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}

	type pin struct {
		luts, largest, muxlen, regs, csteps int
	}
	wantLo := pin{luts: 1114, largest: 10, muxlen: 61, regs: 20, csteps: 16}
	wantHi := pin{luts: 1061, largest: 9, muxlen: 54, regs: 20, csteps: 16}
	check := func(name string, r *Result, want pin) {
		got := pin{
			luts:    r.LUTs,
			largest: r.FUMux.Largest,
			muxlen:  r.FUMux.Length,
			regs:    r.NumRegs,
			csteps:  r.Schedule.Len,
		}
		if got != want {
			t.Errorf("%s: %+v, want %+v — pipeline behaviour changed; update EXPERIMENTS.md and this pin", name, got, want)
		}
	}
	check("LOPASS", lo, wantLo)
	check("HLPower", hi, wantHi)
}

package flow

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/arch"
	"repro/internal/power"
)

// ArchSweepRow is one (benchmark, architecture) point of the
// cross-architecture comparison: both binders' measurements on one
// fabric, with the HLPower-vs-LOPASS power reduction the paper's tables
// report.
type ArchSweepRow struct {
	Bench string
	// Arch is the target's display name ("k4", "k6", "k4-asic").
	Arch string
	// K is the target's LUT input count.
	K int
	// Projected reports whether the row carries an FPGA→ASIC projection.
	Projected bool
	// PowerL and PowerH are LOPASS's and HLPower a=0.5's dynamic power
	// (mW; projected for ASIC rows).
	PowerL, PowerH float64
	// ClockNsH is HLPower's achievable clock period (projected for ASIC
	// rows).
	ClockNsH float64
	// LUTsL and LUTsH are the mapped LUT counts (always the FPGA
	// mapping's — the projection rescales area separately, see AreaH).
	LUTsL, LUTsH int
	// AreaH is HLPower's logic area in LUT equivalents: the LUT count,
	// divided by the projection's area factor for ASIC rows.
	AreaH float64
	// DepthH is HLPower's mapped LUT depth.
	DepthH int
	// GlitchH is HLPower's glitch share of gate transitions.
	GlitchH float64
	// PowerPct is HLPower's power reduction vs LOPASS in percent
	// (positive = HLPower lower). Projection-invariant: both binders
	// scale by the same factor.
	PowerPct float64
}

// ArchSweepData runs LOPASS and HLPower a=0.5 over the session's
// benchmarks on every target architecture, deriving one session per
// target from se so all targets share the fabric-blind front end
// (schedule, regbind) through the common stage cache while bind, map,
// sim, and power are keyed per arch. Row order is deterministic:
// benchmark-major in suite order, then target order.
func ArchSweepData(ctx context.Context, se *Session, targets []arch.Target) ([]ArchSweepRow, error) {
	derived := make([]*Session, len(targets))
	for i, t := range targets {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("flow: archsweep: %w", err)
		}
		derived[i] = se.Derive(se.Cfg.WithArch(t))
	}
	// Warm each target's matrix with the session's own parallelism;
	// targets run in sequence so their SA-table characterizations don't
	// compete for workers.
	for _, ds := range derived {
		if err := ds.RunAll(ctx, BinderLOPASS, BinderHLPower05); err != nil {
			return nil, err
		}
	}
	var rows []ArchSweepRow
	for _, p := range se.Benchmarks {
		for i, t := range targets {
			lo, err := derived[i].Run(ctx, p, BinderLOPASS)
			if err != nil {
				return nil, err
			}
			hi, err := derived[i].Run(ctx, p, BinderHLPower05)
			if err != nil {
				return nil, err
			}
			area := float64(hi.LUTs)
			if t.Projection != nil {
				area = t.Projection.Area(area)
			}
			pct := 0.0
			if lo.Power.DynamicPowerMW > 0 {
				pct = (1 - hi.Power.DynamicPowerMW/lo.Power.DynamicPowerMW) * 100
			}
			rows = append(rows, ArchSweepRow{
				Bench:     p.Name,
				Arch:      t.Name,
				K:         t.K,
				Projected: t.Projection != nil,
				PowerL:    lo.Power.DynamicPowerMW,
				PowerH:    hi.Power.DynamicPowerMW,
				ClockNsH:  hi.Power.ClockPeriodNs,
				LUTsL:     lo.LUTs,
				LUTsH:     hi.LUTs,
				AreaH:     area,
				DepthH:    hi.Depth,
				GlitchH:   hi.Power.GlitchShare,
				PowerPct:  pct,
			})
		}
	}
	return rows, nil
}

// ArchSweep prints the cross-architecture comparison (K=4 vs K=6 vs the
// ASIC projection when given arch.Presets()).
func ArchSweep(ctx context.Context, w io.Writer, se *Session, targets []arch.Target) error {
	rows, err := ArchSweepData(ctx, se, targets)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tArch\tK\tPowerL(mW)\tPowerH(mW)\tHLPower%\tClkH(ns)\tFmaxH(MHz)\tLUTsH\tAreaH(eq)\tDepthH\tGlitchH%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t%.3f\t%.1f\t%.2f\t%.1f\t%d\t%.1f\t%d\t%.1f\n",
			r.Bench, r.Arch, r.K, r.PowerL, r.PowerH, r.PowerPct,
			r.ClockNsH, power.FrequencyHz(r.ClockNsH)/1e6, r.LUTsH, r.AreaH, r.DepthH, r.GlitchH*100)
	}
	return tw.Flush()
}

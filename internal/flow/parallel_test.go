package flow

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// comparableResult is the deterministic projection of a Result: every
// measured field except BindTime (wall clock) and the Schedule pointer.
type comparableResult struct {
	Bench   string
	Binder  string
	SchedL  int
	NumRegs int
	FUMux   interface{}
	DPMux   interface{}
	LUTs    int
	Depth   int
	EstSA   float64
	Counts  interface{}
	Power   interface{}
}

func project(r *Result) comparableResult {
	return comparableResult{
		Bench:   r.Bench,
		Binder:  r.Binder.Name,
		SchedL:  r.Schedule.Len,
		NumRegs: r.NumRegs,
		FUMux:   r.FUMux,
		DPMux:   r.DPMux,
		LUTs:    r.LUTs,
		Depth:   r.Depth,
		EstSA:   r.EstSA,
		Counts:  r.Counts,
		Power:   r.Power,
	}
}

// fullSuiteSession returns a session over the full seven-benchmark suite
// at reduced scale (width 4, 150 vectors) with the given worker count.
func fullSuiteSession(jobs int) *Session {
	cfg := testConfig()
	cfg.Vectors = 150
	se := NewSession(cfg)
	se.Jobs = jobs
	return se
}

// TestParallelMatchesSerial is the determinism guarantee of the harness:
// the full benchmark suite run at -j 1 and at -j 8 yields identical
// Result fields, identical Table3/Table4/Figure3 rows, and byte-identical
// rendered output. Every run is independently seeded (VectorSeed,
// PortSeed, DelaySeed), so fan-out must not change a single number.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	serial := fullSuiteSession(1)
	par := fullSuiteSession(8)

	if err := serial.RunAll(bgc); err != nil {
		t.Fatal(err)
	}
	if err := par.RunAll(bgc); err != nil {
		t.Fatal(err)
	}

	for _, p := range serial.Benchmarks {
		for _, b := range AllBinders {
			rs, err := serial.Run(bgc, p, b)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := par.Run(bgc, p, b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(project(rs), project(rp)) {
				t.Errorf("%s/%s: parallel result differs from serial:\nserial:   %+v\nparallel: %+v",
					p.Name, b.Name, project(rs), project(rp))
			}
		}
	}

	t3s, err := Table3Data(bgc, serial)
	if err != nil {
		t.Fatal(err)
	}
	t3p, err := Table3Data(bgc, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t3s, t3p) {
		t.Errorf("Table3Data rows differ between -j 1 and -j 8")
	}
	t4s, _ := Table4Data(bgc, serial)
	t4p, _ := Table4Data(bgc, par)
	if !reflect.DeepEqual(t4s, t4p) {
		t.Errorf("Table4Data rows differ between -j 1 and -j 8")
	}
	f3s, _ := Figure3Data(bgc, serial)
	f3p, _ := Figure3Data(bgc, par)
	if !reflect.DeepEqual(f3s, f3p) {
		t.Errorf("Figure3Data rows differ between -j 1 and -j 8")
	}

	// Rendered output must be byte-identical too.
	render := func(se *Session) string {
		var sb strings.Builder
		if err := Table3(bgc, &sb, se); err != nil {
			t.Fatal(err)
		}
		if err := Table4(bgc, &sb, se); err != nil {
			t.Fatal(err)
		}
		if err := Figure3(bgc, &sb, se); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if got, want := render(par), render(serial); got != want {
		t.Errorf("rendered tables differ between -j 1 and -j 8:\n-j 1:\n%s\n-j 8:\n%s", want, got)
	}
}

// TestSessionSingleflight hammers one (benchmark, binder) pair from many
// goroutines: the session must execute the pipeline once and hand every
// caller the identical *Result (exercised under -race in CI).
func TestSessionSingleflight(t *testing.T) {
	se := smallSession()
	p := se.Benchmarks[0]
	const workers = 16
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var start, done sync.WaitGroup
	start.Add(1)
	for w := 0; w < workers; w++ {
		w := w
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			results[w], errs[w] = se.Run(bgc, p, BinderLOPASS)
		}()
	}
	start.Done()
	done.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if results[w] != results[0] {
			t.Fatalf("worker %d got a different *Result: singleflight dedup failed", w)
		}
	}
}

// TestRunAllFillsCache checks RunAll executes the whole matrix and that
// subsequent Run calls are cache hits.
func TestRunAllFillsCache(t *testing.T) {
	se := smallSession()
	se.Jobs = 4
	if err := se.RunAll(bgc); err != nil {
		t.Fatal(err)
	}
	n := se.runs.Len(runClass)
	if want := len(se.Benchmarks) * len(AllBinders); n != want {
		t.Fatalf("cache holds %d runs, want %d", n, want)
	}
	r1, err := se.Run(bgc, se.Benchmarks[0], BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := se.Run(bgc, se.Benchmarks[0], BinderHLPower05)
	if r1 != r2 {
		t.Fatal("post-RunAll Run did not hit the cache")
	}
}

// TestRunAllPropagatesError checks a failing run surfaces its error (and
// the lowest-index one, independent of scheduling).
func TestRunAllPropagatesError(t *testing.T) {
	se := smallSession()
	se.Jobs = 4
	bad := se.Benchmarks[0]
	bad.Name = "bad"
	bad.RC = workload.Benchmarks[0].RC
	bad.RC.Add, bad.RC.Mult = 0, 0 // unschedulable: no units at all
	se.Benchmarks = append([]workload.Profile{bad}, se.Benchmarks...)
	err := se.RunAll(bgc)
	if err == nil {
		t.Fatal("RunAll ignored a failing benchmark")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRunItemsOrderedErrors checks the sweep reports the lowest-index
// error regardless of worker scheduling (keep-going mode, so both
// failures are recorded).
func TestRunItemsOrderedErrors(t *testing.T) {
	errA := &indexErr{3}
	errB := &indexErr{7}
	errs := runItems(bgc, 10, 4, false, func(_ context.Context, i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err := firstError(errs); err != errA {
		t.Fatalf("got %v, want the index-3 error", err)
	}
	if errs[7] != errB {
		t.Fatalf("keep-going lost the index-7 error: %v", errs[7])
	}
}

type indexErr struct{ i int }

func (e *indexErr) Error() string { return "fail" }

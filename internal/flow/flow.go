// Package flow wires the complete HLPower experimental pipeline of
// paper §6.1 end to end:
//
//	CDFG -> list schedule -> register binding -> {LOPASS | HLPower}
//	     -> gate-level datapath -> glitch-aware 4-LUT mapping
//	     -> 1000-random-vector unit-delay simulation -> power analysis
//
// and provides the experiment harness that regenerates every table and
// figure of the paper's evaluation section.
//
// The pipeline is a typed stage graph (see stages.go): seven cached,
// instrumented stages whose keys name exactly the inputs each depends
// on. A Session shares one stage cache across its whole sweep, so runs
// that differ only in their tail (another binder, another alpha, a
// different delay model) reuse every artifact up to the first stage
// that actually changes.
package flow

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/mapper"
	"repro/internal/modsel"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Binder selects the binding algorithm of a run.
type Binder struct {
	// Name labels the run ("LOPASS", "HLPower a=0.5", ...). The name is
	// display-only: stage cache keys derive from the algorithm and its
	// effective parameters, never from the label.
	Name string
	// UseHLPower selects the paper's algorithm; false runs the baseline.
	UseHLPower bool
	// Alpha is HLPower's Eq. 4 weighting (ignored for LOPASS).
	Alpha float64
}

// Standard binder configurations used across the experiments.
var (
	BinderLOPASS    = Binder{Name: "LOPASS"}
	BinderHLPower1  = Binder{Name: "HLPower a=1.0", UseHLPower: true, Alpha: 1.0}
	BinderHLPower05 = Binder{Name: "HLPower a=0.5", UseHLPower: true, Alpha: 0.5}
)

// Config holds the shared experimental parameters.
type Config struct {
	// Arch is the target-architecture descriptor: the LUT input count
	// the mapper covers with, the power model's constants, and an
	// optional FPGA→ASIC projection applied to the final report. The
	// arch owns the LUT input count — Normalize forces MapOpt.K to
	// Arch.K — and its fingerprint participates in the bind, map, sim,
	// and power stage cache keys (schedule/regbind are fabric-blind and
	// shared across archs). Retarget with WithArch, which keeps Power
	// and the SA tables consistent; a zero Arch normalizes to the
	// default CycloneII.
	Arch arch.Target
	// Width is the datapath bit width.
	Width int
	// Vectors is the number of random input vectors (paper: 1000).
	Vectors int
	// VectorSeed seeds the shared .vwf-equivalent stimulus.
	VectorSeed int64
	// PortSeed seeds the shared random port assignment.
	PortSeed int64
	// Table is the shared precalculated glitch-aware SA table HLPower
	// binds with. Sharing contract: SA tables memoize expensive partial-
	// datapath characterizations, so reuse one *satable.Table across
	// every session and run that can share it — DefaultConfig allocates
	// fresh (empty) tables on every call, so build one Config and reuse
	// it rather than calling DefaultConfig repeatedly. A nil or
	// width-mismatched table is replaced by Normalize (sessions and the
	// package-level Run entry points normalize automatically).
	Table *satable.Table
	// BaselineTable is the zero-delay (glitch-blind) SA table the LOPASS
	// baseline's power estimator uses. Same sharing contract as Table.
	BaselineTable *satable.Table
	// BetaAdd and BetaMult are HLPower's Eq. 4 muxDiff scale factors.
	// The paper's empirical values (30 / 1000) were calibrated for its
	// 16-bit resource library; the defaults here are the equivalent
	// empirical calibration for this reproduction's 8-bit library.
	BetaAdd, BetaMult float64
	// MapOpt configures the technology mapper.
	MapOpt mapper.Options
	// ModSel, when set, runs module selection (internal/modsel) after
	// binding and elaborates the datapath with the selected adder and
	// multiplier architectures — the future-work extension measured as
	// an ablation.
	ModSel *modsel.Options
	// PreOptimize runs technology-independent cleanup (constant
	// propagation, redundant-input elimination, structural hashing) on
	// the elaborated netlist before mapping. Off by default — the
	// recorded experiments map the raw elaboration; enabling it shrinks
	// both implementations ~2-8% and shifts the comparison slightly
	// (see EXPERIMENTS.md).
	PreOptimize bool
	// Delay selects the measurement simulator's delay model. The default
	// is heterogeneous (1..3 units per LUT), modelling post-route timing
	// spread as the paper's Quartus timing simulation does; the analytic
	// estimator inside the binder stays unit-delay per the paper.
	Delay sim.DelayModel
	// DelaySeed fixes the deterministic per-LUT delay assignment.
	DelaySeed int64
	// Power is the electrical/timing model.
	Power power.Model
	// BindJobs is the binding engine's scoring worker-pool size (0 =
	// GOMAXPROCS, 1 = serial). Non-semantic: bindings are bit-identical
	// at every setting, so it is excluded from stage cache keys.
	BindJobs int
	// BindK forces HLPower's sparse candidate store with the given
	// per-U-node bound (core.Options.CandidateK). 0 keeps the automatic
	// mode selection: small nets run the exact dense store, nets past
	// the scale threshold go sparse at the default k. Semantic — it can
	// change the binding — so it participates in stage cache keys and
	// the config fingerprint.
	BindK int
	// BindExact forces HLPower's exact dense store regardless of
	// problem size (core.Options.Exact). Semantic, like BindK.
	BindExact bool
	// SimJobs is the word-parallel simulator's lane-group worker-pool
	// size (0 = GOMAXPROCS, 1 = serial). Non-semantic: Counts and
	// NodeTransitions are bit-identical at every setting, so it is
	// excluded from stage cache keys.
	SimJobs int
	// SimWide is the number of 64-cycle lane groups the simulator
	// event-processes per pass (0 = sim.DefaultWide, clamped to
	// [1, sim.MaxWide]). Non-semantic: results are bit-identical at
	// every width, so it is excluded from stage cache keys.
	SimWide int
	// MapJobs sizes the back end's worker pools: parallel per-FU datapath
	// elaboration, the mapper's level-parallel forward pass, and the
	// power analyzer's chunked node scan (0 = GOMAXPROCS, 1 = serial).
	// Non-semantic: every artifact is bit-identical at every worker
	// count, so it is excluded from stage cache keys like SimJobs and
	// BindJobs.
	MapJobs int
}

// DefaultConfig returns the configuration the reproduction's experiments
// run with: 8-bit datapath, 1000 vectors, glitch-aware SA table, and
// Cyclone II constants. The final implementation mapping runs in depth
// mode, mirroring the paper's Quartus settings ("optimization technique
// = speed"); the glitch-aware power mapping is what the SA table uses
// inside the binder, exactly as GlitchMap is used as the paper's
// estimator rather than its implementation tool.
//
// Every call allocates fresh, empty SA tables. Callers running more
// than one session should construct one Config and share it (or share
// the tables explicitly) so the expensive SA characterizations are
// computed once — see the sharing contract on Config.Table.
func DefaultConfig() Config {
	mapOpt := mapper.DefaultOptions()
	mapOpt.Mode = mapper.ModeDepth
	return Config{
		Arch:          arch.CycloneII(),
		Width:         8,
		Vectors:       1000,
		VectorSeed:    2009,
		PortSeed:      26,
		Table:         satable.New(8, satable.EstimatorGlitch),
		BaselineTable: satable.New(8, satable.EstimatorZeroDelay),
		BetaAdd:       300,
		BetaMult:      10000,
		MapOpt:        mapOpt,
		Delay:         sim.DelayHeterogeneous,
		DelaySeed:     7,
		Power:         power.CycloneII(),
	}
}

// Normalize returns the config with its architecture and SA-table
// invariants restored: a zero Arch becomes the default CycloneII, the
// mapper's LUT input count follows the arch (the arch owns K), a
// zero-valued Power model is filled from the arch (a caller-tuned
// Power is preserved), and a nil, width-mismatched, or arch-mismatched
// Table/BaselineTable is replaced with a correctly characterized one.
// This is the safety net for callers that adjust Width or Arch after
// DefaultConfig (or build a Config by hand) and would otherwise
// silently bind against tables characterized for the wrong fabric.
// NewSession and the package-level Run entry points normalize
// automatically; direct stage users should call it themselves.
func (c Config) Normalize() Config {
	if c.Arch.K == 0 {
		c.Arch = arch.CycloneII()
	}
	c.MapOpt.K = c.Arch.K
	if c.Power == (power.Model{}) {
		c.Power = power.FromArch(c.Arch)
	}
	if c.Table == nil || c.Table.Width != c.Width || c.Table.CheckArch(c.Arch) != nil {
		c.Table = satable.NewForArch(c.Width, satable.EstimatorGlitch, c.Arch)
	}
	if c.BaselineTable == nil || c.BaselineTable.Width != c.Width || c.BaselineTable.CheckArch(c.Arch) != nil {
		c.BaselineTable = satable.NewForArch(c.Width, satable.EstimatorZeroDelay, c.Arch)
	}
	return c
}

// WithArch returns the config retargeted to t and normalized: the
// mapper's K, the power model, and the SA tables all follow the new
// descriptor. Unlike Normalize alone, WithArch rebuilds the Power model
// unconditionally — retargeting means adopting the new fabric's
// constants, not keeping the old ones.
func (c Config) WithArch(t arch.Target) Config {
	c.Arch = t
	c.Power = power.FromArch(t)
	return c.Normalize()
}

// Result is the full measurement record of one (benchmark, binder) run.
type Result struct {
	Bench    string
	Binder   Binder
	Schedule *cdfg.Schedule
	NumRegs  int
	// BindTime is the binder's runtime (Table 2 reports HLPower's).
	BindTime time.Duration
	// BindReport is the binding engine's run report — store mode, edge
	// reuse, peak memory, per-iteration stats (HLPower only; nil for the
	// baseline algorithms).
	BindReport *core.Report
	// FUMux summarizes FU input muxes (Tables 3 and 4).
	FUMux binding.MuxStats
	// DPMux includes register steering muxes.
	DPMux datapath.MuxReport
	// LUTs and Depth describe the mapped implementation (Table 3 area).
	LUTs  int
	Depth int
	// EstSA is the analytic glitch-aware SA of the mapped design.
	EstSA float64
	// Counts are the measured transitions.
	Counts sim.Counts
	// Power is the PowerPlay-equivalent report.
	Power power.Report
	// StageTrace records the pipeline stages this run executed (or
	// fetched from cache), in order, with durations and cache hits. For
	// a Result served from a Session's run cache the trace is the one
	// recorded when the run first executed.
	StageTrace []pipeline.Span
}

// Run executes the full pipeline for one benchmark profile and binder,
// scheduling to the paper's Table 2 cycle count. Each call is
// self-contained (no artifact reuse); use a Session to share work
// across runs. Cancellation-aware callers should use RunCtx.
func Run(p workload.Profile, b Binder, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), p, b, cfg)
}

// RunCtx is Run with cooperative cancellation: ctx flows through every
// stage, and stage failures surface as *pipeline.StageError values
// naming the stage and the (benchmark, binder) pair.
func RunCtx(ctx context.Context, p workload.Profile, b Binder, cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	var tr pipeline.Trace
	fe, err := stageSchedule.Exec(ctx, nil, p, &tr)
	if err != nil {
		return nil, err
	}
	r, err := runPipeline(ctx, nil, cfg, fe, p.Name, p.RC, b, &tr)
	if err != nil {
		return nil, err
	}
	r.StageTrace = tr.Spans()
	return r, nil
}

// RunGraph executes the pipeline on an arbitrary CDFG with
// resource-constrained list scheduling.
func RunGraph(g *cdfg.Graph, name string, rc cdfg.ResourceConstraint, b Binder, cfg Config) (*Result, error) {
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	return RunScheduled(g, name, s, rc, b, cfg)
}

// RunScheduled executes the pipeline on a pre-scheduled CDFG.
func RunScheduled(g *cdfg.Graph, name string, s *cdfg.Schedule, rc cdfg.ResourceConstraint, b Binder, cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	if err := cdfg.ValidateSchedule(g, s, rc); err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	var tr pipeline.Trace
	r, err := runPipeline(context.Background(), nil, cfg, newSchedArtifact(g, s), name, rc, b, &tr)
	if err != nil {
		return nil, err
	}
	r.StageTrace = tr.Spans()
	return r, nil
}

// Session caches pipeline runs so the table generators can share them
// (Table 3, Table 4 and Figure 3 reuse identical runs, like the paper's
// single experimental sweep). Underneath the per-(benchmark, binder)
// run cache sits a per-stage artifact cache: all binders (and all
// ablation variants) of one benchmark share a single schedule and
// register-binding computation, parameter sweeps share everything up to
// the first stage their parameter feeds, and sweep points whose
// bindings coincide share the mapped netlist, simulation, and power
// analysis too.
//
// A Session is safe for concurrent use: both caches are singleflight —
// concurrent demands for one artifact share a single computation — so
// RunAll can fan the sweep out over worker goroutines without
// duplicating or racing any work.
//
// Failures never poison a session: errors (including recovered panics,
// surfaced as *pipeline.StageError) are not cached, so a pair that
// failed under a cancelled context or an injected fault recomputes
// cleanly on the next demand.
type Session struct {
	// Cfg is the session's normalized configuration (see
	// Config.Normalize; NewSession normalizes its argument).
	Cfg Config
	// Benchmarks is the profile set the tables iterate over; defaults to
	// the full seven-benchmark suite of the paper.
	Benchmarks []workload.Profile
	// Jobs bounds the worker count RunAll (and the parallel table and
	// ablation generators) fan out with; 0 selects GOMAXPROCS.
	Jobs int

	// runs is the per-(benchmark, binder) result cache. It is a
	// pipeline.Cache of its own (class runClass) rather than a plain map
	// so run-level demands get the same semantics as stage artifacts:
	// singleflight sharing, context-aware waiting, no caching of errors,
	// and waiter-retry on failure (a caller never adopts a foreign
	// cancellation or injected fault as its own result).
	runs *pipeline.Cache

	// stages is the shared per-stage artifact cache; trace accumulates
	// every stage span recorded across the session.
	stages *pipeline.Cache
	trace  *pipeline.Trace
}

// runClass is the runs-cache class key; kept out of StageNames so
// Session.StageStats reports pipeline stages only.
const runClass = "run"

// NewSession creates a run cache over a configuration covering the full
// benchmark suite. The configuration is normalized (see
// Config.Normalize): nil or width-mismatched SA tables are replaced, so
// a zero-value or hand-edited table field cannot silently bind against
// the wrong characterization.
func NewSession(cfg Config) *Session {
	return &Session{
		Cfg:        cfg.Normalize(),
		Benchmarks: workload.Benchmarks,
		runs:       pipeline.NewCache(),
		stages:     pipeline.NewCache(),
		trace:      new(pipeline.Trace),
	}
}

// Derive returns a new Session for a different configuration that
// shares this session's stage-artifact cache (and trace). Runs in the
// derived session recompute only the stages whose inputs cfg actually
// changes — the cross-config analogue of the in-session sweep sharing:
// deriving a session per DelaySeed, say, reuses every artifact through
// mapping and re-runs only simulation and power analysis. The
// per-(benchmark, binder) run cache is not shared (its key does not
// cover the config). Safe for concurrent use like any Session.
func (se *Session) Derive(cfg Config) *Session {
	return &Session{
		Cfg:        cfg.Normalize(),
		Benchmarks: se.Benchmarks,
		Jobs:       se.Jobs,
		runs:       pipeline.NewCache(),
		stages:     se.stages,
		trace:      se.trace,
	}
}

// runKey derives the run cache key for (benchmark, binder): the
// profile's content fingerprint plus the binder's *resolved* parameter
// fingerprint. Semantic, never the display name — two Binder values
// that resolve to the same algorithm and parameters share one run, and
// a name reused across different parameters can never collide. The key
// is also stable across processes, which is what lets a durable store
// serve whole run results to a restarted daemon (the store additionally
// namespaces the class by the session's Config fingerprint, covering
// the fields runKey deliberately omits — see AttachStore).
func (se *Session) runKey(p workload.Profile, b Binder) string {
	return p.Name + "|" + pipeline.NewHasher().
		Str(profileKey(p)).Str(specForBinder(b, se.Cfg).fp()).
		Sum()
}

// Run returns the cached result for (benchmark, binder), executing the
// pipeline on first use. Concurrent calls for the same pair share one
// execution and return the identical *Result. A failed execution is not
// cached: concurrent waiters retry under their own context, and a later
// Run recomputes the pair from whatever stage artifacts survived.
func (se *Session) Run(ctx context.Context, p workload.Profile, b Binder) (*Result, error) {
	return se.RunTraced(ctx, p, b, nil)
}

// RunTraced is Run with a live per-request trace: if this call ends up
// executing the pipeline (rather than being served from the run cache
// or waiting out another caller's execution), every stage span is also
// recorded into tr as it completes — the daemon's progress streaming
// attaches an observer to tr. A nil tr is Run.
func (se *Session) RunTraced(ctx context.Context, p workload.Profile, b Binder, tr *pipeline.Trace) (*Result, error) {
	v, _, err := se.runs.Do(ctx, runClass, se.runKey(p, b), func() (any, error) {
		return se.runStaged(ctx, p, b, tr)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// RunGraphCtx executes the pipeline on an arbitrary CDFG through the
// session's stage and run caches — the streaming-ingestion entry point:
// graphs arriving continuously at the daemon all funnel through one
// session, so identical submissions (and submissions whose artifacts
// coincide partway down the pipeline) share work exactly like benchmark
// sweeps do. The run key is content-addressed (graph + schedule + rc +
// resolved binder parameters), so a resubmitted graph is a cache hit
// regardless of its display name.
func (se *Session) RunGraphCtx(ctx context.Context, g *cdfg.Graph, name string, rc cdfg.ResourceConstraint, b Binder) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	fe := newSchedArtifact(g, s)
	key := "graph|" + pipeline.NewHasher().
		Str(fe.fp).Int(rc.Add).Int(rc.Mult).Str(specForBinder(b, se.Cfg).fp()).
		Sum()
	v, _, err := se.runs.Do(ctx, runClass, key, func() (any, error) {
		var tr pipeline.Trace
		r, err := runPipeline(ctx, se.stages, se.Cfg, fe, name, rc, b, se.trace, &tr)
		if err != nil {
			return nil, err
		}
		r.StageTrace = tr.Spans()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// Peek returns the completed cached result for (benchmark, binder)
// without computing, waiting, or touching cache statistics. The daemon
// uses it to label responses warm before demanding the run.
func (se *Session) Peek(p workload.Profile, b Binder) (*Result, bool) {
	v, ok := se.runs.Lookup(runClass, se.runKey(p, b))
	if !ok {
		return nil, false
	}
	return v.(*Result), true
}

// runStaged executes one (benchmark, binder) pipeline through the
// session's stage cache.
func (se *Session) runStaged(ctx context.Context, p workload.Profile, b Binder, live *pipeline.Trace) (*Result, error) {
	var tr pipeline.Trace
	traces := []*pipeline.Trace{se.trace, &tr}
	if live != nil {
		traces = append(traces, live)
	}
	fe, err := stageSchedule.Exec(ctx, se.stages, p, traces...)
	if err != nil {
		return nil, err
	}
	r, err := runPipeline(ctx, se.stages, se.Cfg, fe, p.Name, p.RC, b, traces...)
	if err != nil {
		return nil, err
	}
	r.StageTrace = tr.Spans()
	return r, nil
}

// frontEnd returns the session's shared scheduled graph and register
// binding for a benchmark (computing or fetching them through the stage
// cache). The ablation and sweep generators start from it.
func (se *Session) frontEnd(ctx context.Context, p workload.Profile) (*schedArtifact, *regbindArtifact, error) {
	fe, err := stageSchedule.Exec(ctx, se.stages, p, se.trace)
	if err != nil {
		return nil, nil, err
	}
	rba, err := stageRegbind.Exec(ctx, se.stages, regbindIn{name: p.Name, fe: fe, portSeed: se.Cfg.PortSeed}, se.trace)
	if err != nil {
		return nil, nil, err
	}
	return fe, rba, nil
}

// StageStats returns the per-stage cache counters of the session's
// artifact cache: how many times each pipeline stage was demanded and
// how often the demand was served from cache. Stage names follow
// StageNames.
func (se *Session) StageStats() map[string]pipeline.Stats {
	return se.stages.AllStats()
}

// TraceSpans returns every stage span recorded across the session's
// lifetime, in completion order. With concurrent runs (RunAll) the
// interleaving follows goroutine scheduling; per-run ordered traces are
// on Result.StageTrace.
func (se *Session) TraceSpans() []pipeline.Span {
	return se.trace.Spans()
}

// StageWallclock is the cumulative wall-clock record of one pipeline
// stage across a session's lifetime: how many times the stage was
// demanded, how many demands were cache hits, and the total time spent
// (ComputeNs excludes the hits, so it is the time actually burned
// computing).
type StageWallclock struct {
	Stage     string `json:"stage"`
	Count     int    `json:"count"`
	CacheHits int    `json:"cache_hits"`
	TotalNs   int64  `json:"total_ns"`
	ComputeNs int64  `json:"compute_ns"`
}

// StageWallclock aggregates the session's trace spans into per-stage
// cumulative wall-clock totals, ordered as StageNames (stages that
// never ran are omitted; sub-spans such as bind.iter follow the
// pipeline stages, sorted by name).
func (se *Session) StageWallclock() []StageWallclock {
	agg := make(map[string]*StageWallclock)
	for _, sp := range se.trace.Spans() {
		w := agg[sp.Stage]
		if w == nil {
			w = &StageWallclock{Stage: sp.Stage}
			agg[sp.Stage] = w
		}
		w.Count++
		w.TotalNs += sp.DurationNs
		if sp.CacheHit {
			w.CacheHits++
		} else {
			w.ComputeNs += sp.DurationNs
		}
	}
	var out []StageWallclock
	for _, name := range StageNames {
		if w, ok := agg[name]; ok {
			out = append(out, *w)
			delete(agg, name)
		}
	}
	var rest []string
	for name := range agg {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	for _, name := range rest {
		out = append(out, *agg[name])
	}
	return out
}

// BindStat is one binding-engine report with its provenance: the
// benchmark and the deterministic algorithm label (never the display
// Binder name). cmd/hlpower serializes these for -bindstats.
type BindStat struct {
	Bench string `json:"bench"`
	// Algo identifies the algorithm and its distinguishing parameters,
	// e.g. "hlpower alpha=0.5".
	Algo   string       `json:"algo"`
	Report *core.Report `json:"report"`
}

// BindStats returns the engine reports of every HLPower binding the
// session's stage cache holds, sorted by (bench, algo). Baseline
// bindings carry no engine report and are omitted; cached bindings
// report the statistics recorded when they were first computed.
func (se *Session) BindStats() []BindStat {
	var out []BindStat
	for _, v := range se.stages.Snapshot(StageBind) {
		ba, ok := v.(*bindArtifact)
		if !ok || ba.rep == nil {
			continue
		}
		out = append(out, BindStat{Bench: ba.bench, Algo: ba.algo, Report: ba.rep})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Algo < out[j].Algo
	})
	return out
}

// Package flow wires the complete HLPower experimental pipeline of
// paper §6.1 end to end:
//
//	CDFG -> list schedule -> register binding -> {LOPASS | HLPower}
//	     -> gate-level datapath -> glitch-aware 4-LUT mapping
//	     -> 1000-random-vector unit-delay simulation -> power analysis
//
// and provides the experiment harness that regenerates every table and
// figure of the paper's evaluation section.
package flow

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/logic"
	"repro/internal/lopass"
	"repro/internal/mapper"
	"repro/internal/modsel"
	"repro/internal/power"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Binder selects the binding algorithm of a run.
type Binder struct {
	// Name labels the run ("LOPASS", "HLPower a=0.5", ...).
	Name string
	// UseHLPower selects the paper's algorithm; false runs the baseline.
	UseHLPower bool
	// Alpha is HLPower's Eq. 4 weighting (ignored for LOPASS).
	Alpha float64
}

// Standard binder configurations used across the experiments.
var (
	BinderLOPASS    = Binder{Name: "LOPASS"}
	BinderHLPower1  = Binder{Name: "HLPower a=1.0", UseHLPower: true, Alpha: 1.0}
	BinderHLPower05 = Binder{Name: "HLPower a=0.5", UseHLPower: true, Alpha: 0.5}
)

// Config holds the shared experimental parameters.
type Config struct {
	// Width is the datapath bit width.
	Width int
	// Vectors is the number of random input vectors (paper: 1000).
	Vectors int
	// VectorSeed seeds the shared .vwf-equivalent stimulus.
	VectorSeed int64
	// PortSeed seeds the shared random port assignment.
	PortSeed int64
	// Table is the shared precalculated glitch-aware SA table HLPower
	// binds with.
	Table *satable.Table
	// BaselineTable is the zero-delay (glitch-blind) SA table the LOPASS
	// baseline's power estimator uses.
	BaselineTable *satable.Table
	// BetaAdd and BetaMult are HLPower's Eq. 4 muxDiff scale factors.
	// The paper's empirical values (30 / 1000) were calibrated for its
	// 16-bit resource library; the defaults here are the equivalent
	// empirical calibration for this reproduction's 8-bit library.
	BetaAdd, BetaMult float64
	// MapOpt configures the technology mapper.
	MapOpt mapper.Options
	// ModSel, when set, runs module selection (internal/modsel) after
	// binding and elaborates the datapath with the selected adder and
	// multiplier architectures — the future-work extension measured as
	// an ablation.
	ModSel *modsel.Options
	// PreOptimize runs technology-independent cleanup (constant
	// propagation, redundant-input elimination, structural hashing) on
	// the elaborated netlist before mapping. Off by default — the
	// recorded experiments map the raw elaboration; enabling it shrinks
	// both implementations ~2-8% and shifts the comparison slightly
	// (see EXPERIMENTS.md).
	PreOptimize bool
	// Delay selects the measurement simulator's delay model. The default
	// is heterogeneous (1..3 units per LUT), modelling post-route timing
	// spread as the paper's Quartus timing simulation does; the analytic
	// estimator inside the binder stays unit-delay per the paper.
	Delay sim.DelayModel
	// DelaySeed fixes the deterministic per-LUT delay assignment.
	DelaySeed int64
	// Power is the electrical/timing model.
	Power power.Model
}

// DefaultConfig returns the configuration the reproduction's experiments
// run with: 8-bit datapath, 1000 vectors, glitch-aware SA table, and
// Cyclone II constants. The final implementation mapping runs in depth
// mode, mirroring the paper's Quartus settings ("optimization technique
// = speed"); the glitch-aware power mapping is what the SA table uses
// inside the binder, exactly as GlitchMap is used as the paper's
// estimator rather than its implementation tool.
func DefaultConfig() Config {
	mapOpt := mapper.DefaultOptions()
	mapOpt.Mode = mapper.ModeDepth
	return Config{
		Width:         8,
		Vectors:       1000,
		VectorSeed:    2009,
		PortSeed:      26,
		Table:         satable.New(8, satable.EstimatorGlitch),
		BaselineTable: satable.New(8, satable.EstimatorZeroDelay),
		BetaAdd:       300,
		BetaMult:      10000,
		MapOpt:        mapOpt,
		Delay:         sim.DelayHeterogeneous,
		DelaySeed:     7,
		Power:         power.CycloneII(),
	}
}

// Result is the full measurement record of one (benchmark, binder) run.
type Result struct {
	Bench    string
	Binder   Binder
	Schedule *cdfg.Schedule
	NumRegs  int
	// BindTime is the binder's runtime (Table 2 reports HLPower's).
	BindTime time.Duration
	// FUMux summarizes FU input muxes (Tables 3 and 4).
	FUMux binding.MuxStats
	// DPMux includes register steering muxes.
	DPMux datapath.MuxReport
	// LUTs and Depth describe the mapped implementation (Table 3 area).
	LUTs  int
	Depth int
	// EstSA is the analytic glitch-aware SA of the mapped design.
	EstSA float64
	// Counts are the measured transitions.
	Counts sim.Counts
	// Power is the PowerPlay-equivalent report.
	Power power.Report
}

// Run executes the full pipeline for one benchmark profile and binder,
// scheduling to the paper's Table 2 cycle count.
func Run(p workload.Profile, b Binder, cfg Config) (*Result, error) {
	g := workload.Generate(p)
	s, err := workload.Schedule(p, g)
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", p.Name, err)
	}
	return RunScheduled(g, p.Name, s, p.RC, b, cfg)
}

// RunGraph executes the pipeline on an arbitrary CDFG with
// resource-constrained list scheduling.
func RunGraph(g *cdfg.Graph, name string, rc cdfg.ResourceConstraint, b Binder, cfg Config) (*Result, error) {
	s, err := cdfg.ListSchedule(g, rc)
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	return RunScheduled(g, name, s, rc, b, cfg)
}

// RunScheduled executes the pipeline on a pre-scheduled CDFG.
func RunScheduled(g *cdfg.Graph, name string, s *cdfg.Schedule, rc cdfg.ResourceConstraint, b Binder, cfg Config) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	if err := cdfg.ValidateSchedule(g, s, rc); err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}
	swap := binding.RandomPortAssignment(g, cfg.PortSeed)
	rb, err := regbind.BindOpt(g, s, regbind.Options{Swap: swap})
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", name, err)
	}

	var res *binding.Result
	var bindTime time.Duration
	if b.UseHLPower {
		opt := core.DefaultOptions(cfg.Table)
		opt.Alpha = b.Alpha
		if cfg.BetaAdd > 0 {
			opt.BetaAdd = cfg.BetaAdd
		}
		if cfg.BetaMult > 0 {
			opt.BetaMult = cfg.BetaMult
		}
		// Fine-grained merging: re-evaluate Eq. 4 after every combine,
		// the granularity the paper's complexity analysis describes.
		opt.MergesPerIteration = 1
		opt.Swap = swap
		r, rep, err := core.Bind(g, s, rb, rc, opt)
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
		}
		res, bindTime = r, rep.Runtime
	} else {
		r, rep, err := lopass.Bind(g, s, rb, rc, lopass.Options{Swap: swap, Table: cfg.BaselineTable})
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
		}
		res, bindTime = r, rep.Runtime
	}

	var arch *datapath.Arch
	if cfg.ModSel != nil {
		opt := *cfg.ModSel
		if opt.Width == 0 {
			opt.Width = cfg.Width
		}
		sel, err := modsel.NewSelector(opt).Select(g, rb, res)
		if err != nil {
			return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
		}
		adder, mult := sel.Arch()
		arch = &datapath.Arch{Adder: adder, Mult: mult}
	}
	d, err := datapath.ElaborateArch(g, s, rb, res, cfg.Width, arch)
	if err != nil {
		return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
	}
	toMap := d.Net
	if cfg.PreOptimize {
		toMap, _ = logic.Optimize(d.Net)
	}
	mapped, err := mapper.Map(toMap, cfg.MapOpt)
	if err != nil {
		return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
	}
	simr, err := sim.NewWithDelays(mapped.Mapped, cfg.Delay, cfg.DelaySeed)
	if err != nil {
		return nil, fmt.Errorf("flow: %s/%s: %w", name, b.Name, err)
	}
	counts := simr.RunRandom(cfg.Vectors, cfg.VectorSeed)

	return &Result{
		Bench:    name,
		Binder:   b,
		Schedule: s,
		NumRegs:  rb.NumRegs,
		BindTime: bindTime,
		FUMux:    binding.ComputeMuxStats(g, rb, res),
		DPMux:    d.Muxes,
		LUTs:     mapped.LUTs,
		Depth:    mapped.Depth,
		EstSA:    mapped.EstSA,
		Counts:   counts,
		Power:    cfg.Power.Analyze(mapped.Mapped, counts),
	}, nil
}

// Session caches pipeline runs so the table generators can share them
// (Table 3, Table 4 and Figure 3 reuse identical runs, like the paper's
// single experimental sweep). A Session is safe for concurrent use:
// the cache is mutex-guarded and concurrent Run calls on the same
// (benchmark, binder) pair share a single pipeline execution
// (singleflight), so RunAll can fan the sweep out over worker
// goroutines without duplicating or racing any run.
type Session struct {
	Cfg Config
	// Benchmarks is the profile set the tables iterate over; defaults to
	// the full seven-benchmark suite of the paper.
	Benchmarks []workload.Profile
	// Jobs bounds the worker count RunAll (and the parallel table and
	// ablation generators) fan out with; 0 selects GOMAXPROCS.
	Jobs int

	mu       sync.Mutex
	cache    map[string]*Result
	inflight map[string]*inflightRun
}

// inflightRun is one in-progress pipeline execution; duplicate callers
// block on done and read res/err afterwards.
type inflightRun struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewSession creates a run cache over a configuration covering the full
// benchmark suite.
func NewSession(cfg Config) *Session {
	return &Session{
		Cfg:        cfg,
		Benchmarks: workload.Benchmarks,
		cache:      make(map[string]*Result),
		inflight:   make(map[string]*inflightRun),
	}
}

// Run returns the cached result for (benchmark, binder), executing the
// pipeline on first use. Concurrent calls for the same pair share one
// execution and return the identical *Result.
func (se *Session) Run(p workload.Profile, b Binder) (*Result, error) {
	key := p.Name + "|" + b.Name
	se.mu.Lock()
	if r, ok := se.cache[key]; ok {
		se.mu.Unlock()
		return r, nil
	}
	if c, ok := se.inflight[key]; ok {
		se.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &inflightRun{done: make(chan struct{})}
	se.inflight[key] = c
	se.mu.Unlock()

	c.res, c.err = Run(p, b, se.Cfg)

	se.mu.Lock()
	if c.err == nil {
		se.cache[key] = c.res
	}
	delete(se.inflight, key)
	se.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

package flow

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/workload"
)

// storeTestConfig is a small, fast configuration shared by the durable
// round-trip tests. Built once per call — equal Fingerprints are what
// lets a fresh Session adopt another session's persisted artifacts.
func storeTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Vectors = 50
	return cfg
}

func benchPR(t *testing.T) workload.Profile {
	t.Helper()
	p, ok := workload.ByName("pr")
	if !ok {
		t.Fatal("benchmark pr missing")
	}
	return p
}

// sameMeasurement asserts the fields the paper's tables are built from
// are bit-identical between two results — the store's round-trip
// contract (shortest round-trip float encoding, not approximate).
func sameMeasurement(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatalf("%s: transition counts differ: %+v vs %+v", label, a.Counts, b.Counts)
	}
	if !reflect.DeepEqual(a.Power, b.Power) {
		t.Fatalf("%s: power reports differ: %+v vs %+v", label, a.Power, b.Power)
	}
	if a.LUTs != b.LUTs || a.Depth != b.Depth || a.EstSA != b.EstSA {
		t.Fatalf("%s: implementation differs: LUTs %d/%d depth %d/%d estSA %v/%v",
			label, a.LUTs, b.LUTs, a.Depth, b.Depth, a.EstSA, b.EstSA)
	}
}

// TestDurableStoreRoundTrip is the acceptance drill for the durable
// store behind a real flow: a cold run persists, a fresh session over a
// reopened store serves the whole run from disk (no recompute),
// and the served measurements are bit-identical to the cold ones.
func TestDurableStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p := benchPR(t)

	st, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	se := NewSession(storeTestConfig())
	se.AttachStore(st)
	cold, err := se.Run(ctx, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Puts == 0 {
		t.Fatal("cold run persisted nothing")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: new store handle, new session, same configuration.
	st2, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	se2 := NewSession(storeTestConfig())
	se2.AttachStore(st2)
	warm, err := se2.Run(ctx, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "warm", cold, warm)
	if st2.Stats().Hits == 0 {
		t.Fatal("warm run never hit the store")
	}
	// The whole-run class must have served: no stage may have
	// recomputed (the run cache's backing hit short-circuits the
	// pipeline entirely).
	for stage, stats := range se2.StageStats() {
		if stats.Misses > 0 {
			t.Fatalf("warm run recomputed stage %s: %+v", stage, stats)
		}
	}
}

// TestDurableStoreCrashRecovery kills the store writer mid-snapshot
// (injected short write on the run class — the torn-entry shape of a
// crash between write and fsync), restarts, and requires the torn entry
// to be quarantined and the recompute to be bit-identical. Satellite 3.
func TestDurableStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	p := benchPR(t)
	cfg := storeTestConfig()
	runClass := "run@" + cfg.Fingerprint()

	// Tear exactly the whole-run entry's write; stage artifacts land
	// intact so the recompute exercises the mixed hit/recompute path.
	fi := pipeline.NewFaultInjector(1, pipeline.FaultRule{Class: runClass, PShortWrite: 1})
	ctx := pipeline.WithInjector(context.Background(), fi)

	st, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	se := NewSession(cfg)
	se.AttachStore(st)
	cold, err := se.Run(ctx, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	// The crash: the process dies before any orderly close. The flock
	// dies with it; reopening the directory is all a restart needs.
	// (Close here only releases the lock for the reopen — the torn
	// entry is already on disk under its final name.)
	st.Close()

	st2, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	se2 := NewSession(storeTestConfig())
	se2.AttachStore(st2)
	recovered, err := se2.Run(context.Background(), p, BinderHLPower05)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if got := st2.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1 (the torn run entry)", got)
	}
	if got := st2.QuarantineLen(); got != 1 {
		t.Fatalf("QuarantineLen = %d, want 1", got)
	}
	sameMeasurement(t, "post-crash", cold, recovered)
	// The recompute healed the slot: a third session gets a clean
	// whole-run hit.
	se3 := NewSession(storeTestConfig())
	se3.AttachStore(st2)
	again, err := se3.Run(context.Background(), p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "healed", cold, again)
	if got := st2.Stats().Quarantined; got != 1 {
		t.Fatalf("healed read quarantined again (%d)", got)
	}
}

// TestDurableStoreCorruptedEntryRecompute flips a bit in one persisted
// entry on disk: the next cold session must quarantine it, recompute,
// and still produce bit-identical measurements.
func TestDurableStoreCorruptedEntryRecompute(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p := benchPR(t)

	st, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	se := NewSession(storeTestConfig())
	se.AttachStore(st)
	cold, err := se.Run(ctx, p, BinderHLPower05)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt every entry: recovery must survive the worst case, not
	// just a single bad file.
	objDir := filepath.Join(dir, "objects")
	des, err := os.ReadDir(objDir)
	if err != nil || len(des) == 0 {
		t.Fatalf("objects dir: %v (%d entries)", err, len(des))
	}
	for _, de := range des {
		path := filepath.Join(objDir, de.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1] ^= 0x80
		if err := os.WriteFile(path, b, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	se2 := NewSession(storeTestConfig())
	se2.AttachStore(st2)
	recovered, err := se2.Run(ctx, p, BinderHLPower05)
	if err != nil {
		t.Fatalf("run over an all-corrupt store failed: %v", err)
	}
	sameMeasurement(t, "all-corrupt recompute", cold, recovered)
	if st2.Stats().Quarantined == 0 {
		t.Fatal("no entry was quarantined")
	}
}

// TestConfigFingerprintSeparatesRunClasses: two sessions whose configs
// differ semantically must not share whole-run entries through one
// store, while equal configs must.
func TestConfigFingerprintSeparatesRunClasses(t *testing.T) {
	cfgA := storeTestConfig()
	cfgB := storeTestConfig()
	cfgB.Vectors = 60
	if cfgA.Fingerprint() == cfgB.Fingerprint() {
		t.Fatal("configs with different Vectors share a fingerprint")
	}
	if storeTestConfig().Fingerprint() != cfgA.Fingerprint() {
		t.Fatal("identical configs disagree on fingerprint")
	}
	// Non-semantic knobs must not split the run class.
	cfgC := storeTestConfig()
	cfgC.BindJobs = 7
	cfgC.SimJobs = 3
	cfgC.SimWide = 2
	if cfgC.Fingerprint() != cfgA.Fingerprint() {
		t.Fatal("worker-count knobs changed the config fingerprint")
	}
}

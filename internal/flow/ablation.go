package flow

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/binding"
	"repro/internal/modsel"
	"repro/internal/satable"
)

// AblationRow is one (benchmark, variant) measurement of the ablation
// study: estimator variants inside HLPower, the stronger flow-based
// baseline, and module selection on top of the main configuration.
type AblationRow struct {
	Bench    string
	Variant  string
	PowerMW  float64
	LUTs     int
	MuxLen   int
	DiffMean float64
	BindTime time.Duration
}

// ablationVariants enumerates the study: binder/estimator combinations
// the paper's design decisions are tested against.
var ablationVariants = []string{
	"LOPASS",            // the paper's baseline (glitch-blind power table)
	"LOPASS-flow",       // path-cover flow binder (temporal-stability control)
	"HLPower-glitch",    // the paper's configuration
	"HLPower-zerodelay", // Eq. 4 with the glitch-blind SA table
	"HLPower-najm",      // Eq. 4 with Najm's overestimating table
	"HLPower+modsel",    // paper config + module selection (future work)
	"HLPower+portopt",   // paper config + post-binding port re-assignment [2]
}

// ablationSpec resolves one variant into its binding-stage spec and its
// (optional) module-selection request. The estimator variants allocate
// their own SA tables; the stage cache keys tables by content
// fingerprint, so repeated studies on one session still share binds.
func ablationSpec(variant string, cfg Config, zeroTable, najmTable *satable.Table) (bindSpec, *modsel.Options) {
	switch variant {
	case "LOPASS":
		return bindSpec{algo: "lopass", table: cfg.BaselineTable}, nil
	case "LOPASS-flow":
		return bindSpec{algo: "lopass-flow"}, nil
	}
	spec := bindSpec{
		algo:          "hlpower",
		alpha:         0.5,
		betaAdd:       cfg.BetaAdd,
		betaMult:      cfg.BetaMult,
		mergesPerIter: 1,
		table:         cfg.Table,
	}
	var ms *modsel.Options
	switch variant {
	case "HLPower-zerodelay":
		spec.table = zeroTable
	case "HLPower-najm":
		spec.table = najmTable
	case "HLPower+modsel":
		opt := modsel.DefaultOptions()
		opt.Width = cfg.Width
		opt.MapOpt = cfg.MapOpt
		ms = &opt
	case "HLPower+portopt":
		spec.portOpt = true
	}
	return spec, ms
}

// AblationData runs every ablation variant over the session's
// benchmarks, fanning the per-benchmark pipelines out over Session.Jobs
// workers. Every variant flows through the session's stage cache: all
// seven variants of a benchmark share its schedule and register-binding
// artifacts with each other and with the mainline sweep, the
// HLPower-glitch variant is the same bind-stage invocation as the
// mainline HLPower a=0.5 run, and variants whose bindings coincide
// (portopt frequently flips nothing) share the mapped netlist,
// simulation, and power analysis too. Row order is deterministic:
// benchmark-major in suite order, then variant order.
func AblationData(ctx context.Context, se *Session) ([]AblationRow, error) {
	cfg := se.Cfg
	zeroTable := satable.NewForArch(cfg.Width, satable.EstimatorZeroDelay, cfg.Arch)
	najmTable := satable.NewForArch(cfg.Width, satable.EstimatorNajm, cfg.Arch)
	perBench := make([][]AblationRow, len(se.Benchmarks))
	err := firstError(runItems(ctx, len(se.Benchmarks), se.Jobs, true, func(ctx context.Context, bi int) error {
		p := se.Benchmarks[bi]
		fe, rba, err := se.frontEnd(ctx, p)
		if err != nil {
			return err
		}
		for _, variant := range ablationVariants {
			spec, ms := ablationSpec(variant, cfg, zeroTable, najmTable)
			ba, err := stageBind.Exec(ctx, se.stages, bindIn{
				name: p.Name, binder: variant, fe: fe, rba: rba, rc: p.RC, spec: spec,
			}, se.trace)
			if err != nil {
				return err
			}
			_, ma, _, rep, err := runBackEnd(ctx, se.stages, cfg, fe, rba, ba, p.Name, variant, ms, se.trace)
			if err != nil {
				return err
			}
			st := binding.ComputeMuxStats(fe.g, rba.rb, ba.res)
			perBench[bi] = append(perBench[bi], AblationRow{
				Bench:    p.Name,
				Variant:  variant,
				PowerMW:  rep.DynamicPowerMW,
				LUTs:     ma.m.LUTs,
				MuxLen:   st.Length,
				DiffMean: st.DiffMean,
				BindTime: ba.bindTime,
			})
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, br := range perBench {
		rows = append(rows, br...)
	}
	return rows, nil
}

// Ablation prints the ablation study.
func Ablation(ctx context.Context, w io.Writer, se *Session) error {
	rows, err := AblationData(ctx, se)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tVariant\tPower(mW)\tLUTs\tMUXLen\tmuxDiff\tBindTime")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%d\t%.2f\t%v\n",
			r.Bench, r.Variant, r.PowerMW, r.LUTs, r.MuxLen, r.DiffMean, r.BindTime.Round(time.Millisecond))
	}
	return tw.Flush()
}

package flow

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/binding"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/logic"
	"repro/internal/lopass"
	"repro/internal/mapper"
	"repro/internal/modsel"
	"repro/internal/regbind"
	"repro/internal/satable"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationRow is one (benchmark, variant) measurement of the ablation
// study: estimator variants inside HLPower, the stronger flow-based
// baseline, and module selection on top of the main configuration.
type AblationRow struct {
	Bench    string
	Variant  string
	PowerMW  float64
	LUTs     int
	MuxLen   int
	DiffMean float64
	BindTime time.Duration
}

// ablationVariants enumerates the study: binder/estimator combinations
// the paper's design decisions are tested against.
var ablationVariants = []string{
	"LOPASS",            // the paper's baseline (glitch-blind power table)
	"LOPASS-flow",       // path-cover flow binder (temporal-stability control)
	"HLPower-glitch",    // the paper's configuration
	"HLPower-zerodelay", // Eq. 4 with the glitch-blind SA table
	"HLPower-najm",      // Eq. 4 with Najm's overestimating table
	"HLPower+modsel",    // paper config + module selection (future work)
	"HLPower+portopt",   // paper config + post-binding port re-assignment [2]
}

// AblationData runs every ablation variant over the session's
// benchmarks, fanning the per-benchmark pipelines out over Session.Jobs
// workers (the shared SA tables are concurrency-safe; everything else is
// per-run state). Runs are not cached in the session (variant space
// differs from the main binder matrix). Row order is deterministic:
// benchmark-major in suite order, then variant order.
func AblationData(se *Session) ([]AblationRow, error) {
	cfg := se.Cfg
	tables := map[string]*satable.Table{
		"HLPower-glitch":    cfg.Table,
		"HLPower-zerodelay": satable.New(cfg.Width, satable.EstimatorZeroDelay),
		"HLPower-najm":      satable.New(cfg.Width, satable.EstimatorNajm),
		"HLPower+modsel":    cfg.Table,
		"HLPower+portopt":   cfg.Table,
	}
	perBench := make([][]AblationRow, len(se.Benchmarks))
	err := forEach(len(se.Benchmarks), se.Jobs, func(bi int) error {
		p := se.Benchmarks[bi]
		g := workload.Generate(p)
		s, err := workload.Schedule(p, g)
		if err != nil {
			return err
		}
		swap := binding.RandomPortAssignment(g, cfg.PortSeed)
		rb, err := regbind.BindOpt(g, s, regbind.Options{Swap: swap})
		if err != nil {
			return err
		}
		for _, variant := range ablationVariants {
			var res *binding.Result
			var bindTime time.Duration
			switch variant {
			case "LOPASS":
				r, rep, err := lopass.Bind(g, s, rb, p.RC, lopass.Options{Swap: swap, Table: cfg.BaselineTable})
				if err != nil {
					return fmt.Errorf("flow: %s/%s: %w", p.Name, variant, err)
				}
				res, bindTime = r, rep.Runtime
			case "LOPASS-flow":
				r, rep, err := lopass.BindFlow(g, s, rb, p.RC, lopass.Options{Swap: swap})
				if err != nil {
					return fmt.Errorf("flow: %s/%s: %w", p.Name, variant, err)
				}
				res, bindTime = r, rep.Runtime
			default:
				opt := core.DefaultOptions(tables[variant])
				opt.Alpha = 0.5
				opt.BetaAdd, opt.BetaMult = cfg.BetaAdd, cfg.BetaMult
				opt.MergesPerIteration = 1
				opt.Swap = swap
				r, rep, err := core.Bind(g, s, rb, p.RC, opt)
				if err != nil {
					return fmt.Errorf("flow: %s/%s: %w", p.Name, variant, err)
				}
				res, bindTime = r, rep.Runtime
			}
			if variant == "HLPower+portopt" {
				binding.OptimizePorts(g, rb, res)
			}
			row, err := measureAblation(g, s, rb, res, cfg, variant == "HLPower+modsel")
			if err != nil {
				return fmt.Errorf("flow: %s/%s: %w", p.Name, variant, err)
			}
			row.Bench = p.Name
			row.Variant = variant
			row.BindTime = bindTime
			perBench[bi] = append(perBench[bi], *row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, br := range perBench {
		rows = append(rows, br...)
	}
	return rows, nil
}

func measureAblation(g *cdfg.Graph, s *cdfg.Schedule, rb *regbind.Binding, res *binding.Result, cfg Config, useModSel bool) (*AblationRow, error) {
	var arch *datapath.Arch
	if useModSel {
		opt := modsel.DefaultOptions()
		opt.Width = cfg.Width
		opt.MapOpt = cfg.MapOpt
		sel, err := modsel.NewSelector(opt).Select(g, rb, res)
		if err != nil {
			return nil, err
		}
		adder, mult := sel.Arch()
		arch = &datapath.Arch{Adder: adder, Mult: mult}
	}
	d, err := datapath.ElaborateArch(g, s, rb, res, cfg.Width, arch)
	if err != nil {
		return nil, err
	}
	toMap := d.Net
	if cfg.PreOptimize {
		toMap, _ = logic.Optimize(d.Net)
	}
	m, err := mapper.Map(toMap, cfg.MapOpt)
	if err != nil {
		return nil, err
	}
	sr, err := sim.NewWithDelays(m.Mapped, cfg.Delay, cfg.DelaySeed)
	if err != nil {
		return nil, err
	}
	counts := sr.RunRandom(cfg.Vectors, cfg.VectorSeed)
	rep := cfg.Power.Analyze(m.Mapped, counts)
	st := binding.ComputeMuxStats(g, rb, res)
	return &AblationRow{
		PowerMW:  rep.DynamicPowerMW,
		LUTs:     m.LUTs,
		MuxLen:   st.Length,
		DiffMean: st.DiffMean,
	}, nil
}

// Ablation prints the ablation study.
func Ablation(w io.Writer, se *Session) error {
	rows, err := AblationData(se)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tVariant\tPower(mW)\tLUTs\tMUXLen\tmuxDiff\tBindTime")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%d\t%.2f\t%v\n",
			r.Bench, r.Variant, r.PowerMW, r.LUTs, r.MuxLen, r.DiffMean, r.BindTime.Round(time.Millisecond))
	}
	return tw.Flush()
}

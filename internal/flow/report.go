package flow

import (
	"context"
	"encoding/json"
	"errors"
	"io"

	"repro/internal/pipeline"
)

// Failure is the machine-readable record of one failed (benchmark,
// binder) run: which pair, which pipeline stage, and why. It is what a
// keep-going sweep emits per casualty instead of aborting.
type Failure struct {
	// Bench and Binder identify the sweep pair.
	Bench  string `json:"bench"`
	Binder string `json:"binder"`
	// Stage names the pipeline stage that failed (see StageNames), or
	// "sweep" for a failure in harness glue outside any stage. Empty if
	// the pair was cancelled before any stage ran.
	Stage string `json:"stage,omitempty"`
	// Key is the failed stage's cache key, when one was computed.
	Key string `json:"key,omitempty"`
	// Panicked reports that the failure was a recovered panic.
	Panicked bool `json:"panicked,omitempty"`
	// Canceled reports that the run was cut short by context
	// cancellation (timeout, interrupt, or stop-on-error) rather than
	// failing on its own.
	Canceled bool `json:"canceled,omitempty"`
	// Injected reports that the failure originated in the fault-
	// injection harness (pipeline.ErrInjected).
	Injected bool `json:"injected,omitempty"`
	// Cause is the failure message (the full error chain, rendered).
	Cause string `json:"cause"`
	// Err is the underlying error for programmatic inspection
	// (errors.Is/errors.As); not serialized.
	Err error `json:"-"`
}

// newFailure builds the Failure record for a pair's error, lifting
// provenance from the *pipeline.StageError when one is in the chain.
func newFailure(bench, binder string, err error) *Failure {
	f := &Failure{
		Bench:    bench,
		Binder:   binder,
		Canceled: errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded),
		Injected: errors.Is(err, pipeline.ErrInjected),
		Cause:    err.Error(),
		Err:      err,
	}
	if se, ok := pipeline.AsStageError(err); ok {
		f.Stage = se.Stage
		f.Key = se.Key
		f.Panicked = se.Panicked()
	}
	return f
}

// PairStatus is the outcome of one (benchmark, binder) pair of a sweep:
// exactly one of Result and Failure is set.
type PairStatus struct {
	Bench   string   `json:"bench"`
	Binder  string   `json:"binder"`
	Result  *Result  `json:"-"`
	Failure *Failure `json:"failure,omitempty"`
}

// OK reports whether the pair completed.
func (ps PairStatus) OK() bool { return ps.Failure == nil }

// SweepReport is the complete outcome of a sweep: every pair's status in
// deterministic benchmark-major order, independent of worker count and
// goroutine scheduling.
type SweepReport struct {
	// Pairs holds one entry per (benchmark, binder) pair, in sweep
	// order (benchmark-major, binder order as given).
	Pairs []PairStatus `json:"pairs"`
}

// Failures returns the failed pairs' records, in sweep order.
func (r *SweepReport) Failures() []*Failure {
	var out []*Failure
	for _, ps := range r.Pairs {
		if ps.Failure != nil {
			out = append(out, ps.Failure)
		}
	}
	return out
}

// Completed returns how many pairs finished with a result.
func (r *SweepReport) Completed() int {
	n := 0
	for _, ps := range r.Pairs {
		if ps.OK() {
			n++
		}
	}
	return n
}

// OK reports whether every pair completed.
func (r *SweepReport) OK() bool { return r.Completed() == len(r.Pairs) }

// Err returns the sweep's representative error: the first failure in
// sweep order that is not a pure cancellation, else the first
// cancellation, else nil. The choice mirrors firstError, so it is
// deterministic across worker counts.
func (r *SweepReport) Err() error {
	errs := make([]error, 0, len(r.Pairs))
	for _, ps := range r.Pairs {
		if ps.Failure != nil {
			errs = append(errs, ps.Failure.Err)
		}
	}
	return firstError(errs)
}

// reportJSON is the serialized form of a SweepReport.
type reportJSON struct {
	Total     int        `json:"total"`
	Completed int        `json:"completed"`
	Failed    int        `json:"failed"`
	Failures  []*Failure `json:"failures"`
}

// WriteJSON writes the failure report as indented JSON: pair totals
// plus one record per failure (empty array when the sweep was clean).
// The output is deterministic for a given outcome set.
func (r *SweepReport) WriteJSON(w io.Writer) error {
	fails := r.Failures()
	if fails == nil {
		fails = []*Failure{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reportJSON{
		Total:     len(r.Pairs),
		Completed: r.Completed(),
		Failed:    len(fails),
		Failures:  fails,
	})
}

// SweepOptions configures Session.Sweep.
type SweepOptions struct {
	// Binders selects the binder matrix; nil runs AllBinders.
	Binders []Binder
	// KeepGoing keeps the sweep running after a pair fails: the failure
	// is recorded in the report and every other pair still executes.
	// Without it the first failure (in sweep order) cancels the
	// in-flight remainder.
	KeepGoing bool
}

// Sweep executes the session's (benchmark × binder) matrix on
// Session.Jobs workers and returns the per-pair outcome report. Failed
// or cancelled pairs carry a Failure with stage/bench/binder
// provenance; completed pairs carry their Result (also visible to
// subsequent Session.Run calls via the run cache).
//
// The returned error is the report's representative error (Report.Err):
// nil exactly when every pair completed. Under KeepGoing a partial
// sweep still returns the full report — callers decide whether partial
// results are usable.
func (se *Session) Sweep(ctx context.Context, opts SweepOptions) (*SweepReport, error) {
	pairs := se.sweepPairs(opts.Binders)
	results := make([]*Result, len(pairs))
	errs := runItems(ctx, len(pairs), se.Jobs, !opts.KeepGoing, func(ctx context.Context, i int) error {
		r, err := se.Run(ctx, pairs[i].p, pairs[i].b)
		results[i] = r
		return err
	})
	rep := &SweepReport{Pairs: make([]PairStatus, len(pairs))}
	for i, pr := range pairs {
		ps := PairStatus{Bench: pr.p.Name, Binder: pr.b.Name}
		if errs[i] != nil {
			ps.Failure = newFailure(pr.p.Name, pr.b.Name, errs[i])
		} else {
			ps.Result = results[i]
		}
		rep.Pairs[i] = ps
	}
	return rep, rep.Err()
}

package flow

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/mapper"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// BenchmarkFlowBackend measures the combined post-bind back end —
// datapath elaboration, LUT covering, power analysis — end-to-end on
// the ctrl-2k scale tier (ControlHeavy(16,6,8,931), ~1.9k ops, ~37k
// gates elaborated). The front end, binding, and simulation run once
// in setup; each timed iteration gets a fresh stage cache so nothing
// carries over between iterations.
//
// Two arms:
//
//   - flat: macro covering off, one worker — the historical
//     gate-at-a-time path.
//   - memo: default auto macro covering (engages above
//     mapper.DefaultMacroMinGates) with a session-style macro memo.
//
// Reported metrics: per-stage wall clock (dp-ms/op, map-ms/op,
// power-ms/op), the macro memo hit rate on the memo arm, and LUTs so a
// cover-quality regression shows up next to a speed one. CI runs both
// arms once and gates the memo arm's allocations (the map stage
// dominates them).
func BenchmarkFlowBackend(b *testing.B) {
	p, ok := workload.ScaleByName("ctrl-2k")
	if !ok {
		b.Fatal("ctrl-2k scale profile missing")
	}
	g := p.Build()
	cfg := DefaultConfig()
	cfg.Vectors = 64 // sim is measured elsewhere; keep setup cheap
	cfg = cfg.Normalize()

	s, err := cdfg.ListSchedule(g, p.RC)
	if err != nil {
		b.Fatal(err)
	}
	fe := newSchedArtifact(g, s)
	rba, err := stageRegbind.Exec(bgc, nil, regbindIn{name: p.Name, fe: fe, portSeed: cfg.PortSeed})
	if err != nil {
		b.Fatal(err)
	}
	ba, err := stageBind.Exec(bgc, nil, bindIn{
		name: p.Name, binder: BinderLOPASS.Name, fe: fe, rba: rba, rc: p.RC,
		spec: specForBinder(BinderLOPASS, cfg),
	})
	if err != nil {
		b.Fatal(err)
	}
	// One untimed back-end pass supplies the transition counts the
	// power stage consumes in the timed loop.
	_, ma0, counts, _, err := runBackEnd(bgc, pipeline.NewCache(), cfg, fe, rba, ba, p.Name, BinderLOPASS.Name, resolveModSel(cfg))
	if err != nil {
		b.Fatal(err)
	}
	sk := simKey(simIn{
		name: p.Name, binder: BinderLOPASS.Name, ma: ma0,
		delay: cfg.Delay, delaySeed: cfg.DelaySeed,
		vectors: cfg.Vectors, vectorSeed: cfg.VectorSeed,
		simJobs: cfg.SimJobs, simWide: cfg.SimWide,
	})
	ms := resolveModSel(cfg)
	archFP := cfg.Arch.Fingerprint()

	run := func(b *testing.B, memo bool) {
		jobs := 1
		if memo {
			jobs = resolveJobs(cfg.MapJobs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var tr pipeline.Trace
		var luts int
		var hits, misses int64
		for i := 0; i < b.N; i++ {
			cache := pipeline.NewCache()
			dp, err := stageDatapath.Exec(bgc, cache, datapathIn{
				name: p.Name, binder: BinderLOPASS.Name, fe: fe, rba: rba, ba: ba,
				width: cfg.Width, modsel: ms, jobs: jobs,
			}, &tr)
			if err != nil {
				b.Fatal(err)
			}
			mopt := cfg.MapOpt
			mopt.Jobs = jobs
			if memo {
				mopt.Macros = mapper.NewMacroCache(cache, "macro@"+archFP)
			} else {
				mopt.MacroReuse = mapper.MacroOff
			}
			ma, err := stageMap.Exec(bgc, cache, mapIn{
				name: p.Name, binder: BinderLOPASS.Name, dp: dp,
				preOpt: cfg.PreOptimize, mapOpt: mopt, archFP: archFP,
			}, &tr)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := stagePower.Exec(bgc, cache, powerIn{
				name: p.Name, binder: BinderLOPASS.Name,
				ma: ma, counts: counts, simKey: sk, model: cfg.Power,
				proj: cfg.Arch.Projection, jobs: jobs,
			}, &tr); err != nil {
				b.Fatal(err)
			}
			luts = ma.m.LUTs
			if memo {
				hits, misses = mopt.Macros.Stats()
			}
		}
		b.StopTimer()
		per := map[string]int64{}
		for _, sp := range tr.Spans() {
			per[sp.Stage] += sp.DurationNs
		}
		n := float64(b.N)
		b.ReportMetric(float64(per[StageDatapath])/n/1e6, "dp-ms/op")
		b.ReportMetric(float64(per[StageMap])/n/1e6, "map-ms/op")
		b.ReportMetric(float64(per[StagePower])/n/1e6, "power-ms/op")
		b.ReportMetric(float64(luts), "luts")
		if memo && hits+misses > 0 {
			b.ReportMetric(float64(hits)/float64(hits+misses), "macro-hitrate")
		}
	}
	b.Run("flat", func(b *testing.B) { run(b, false) })
	b.Run("memo", func(b *testing.B) { run(b, true) })
}
